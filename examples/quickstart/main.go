// Quickstart: build a tiny star schema, wire a select→build/probe→aggregate
// plan with the public API, and run it at both ends of the UoT spectrum —
// "pipelining" and "blocking" are the same plan with one knob changed.
package main

import (
	"fmt"
	"log"
	"time"

	uot "repro"
)

func main() {
	// A database of 8 KB column-store blocks (small, so the plan moves
	// many blocks even on toy data).
	db := uot.NewDB(8<<10, uot.ColumnStore)

	sales := db.CreateTable("sales", uot.NewSchema(
		uot.Column{Name: "product_id", Type: uot.TInt64},
		uot.Column{Name: "amount", Type: uot.TFloat64},
		uot.Column{Name: "region", Type: uot.TChar, Width: 8},
	))
	products := db.CreateTable("products", uot.NewSchema(
		uot.Column{Name: "id", Type: uot.TInt64},
		uot.Column{Name: "category", Type: uot.TChar, Width: 12},
	))
	loadData(sales, products)

	for _, cfg := range []struct {
		label string
		uot   int
	}{
		{"low UoT  (pipelining: transfer every block)", 1},
		{"high UoT (blocking: transfer whole tables)", uot.UoTTable},
	} {
		res, err := uot.Execute(buildPlan(sales, products), uot.Options{
			Workers:        4,
			UoTBlocks:      cfg.uot,
			TempBlockBytes: 8 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", cfg.label)
		for _, row := range uot.Rows(res.Table) {
			fmt.Printf("  category=%-12s revenue=%10.2f  orders=%d\n",
				row[0].Bytes(), row[1].F, row[2].I)
		}
		fmt.Printf("  wall %v | peak temp blocks %d B | peak hash tables %d B | pool checkouts %d\n\n",
			res.Run.WallTime().Round(10*time.Microsecond),
			res.Run.Intermediates.High(), res.Run.HashTables.High(), res.Run.Checkouts())
	}
}

// buildPlan wires:
//
//	SELECT p.category, SUM(s.amount), COUNT(*)
//	FROM   sales s JOIN products p ON s.product_id = p.id
//	WHERE  s.region = 'EMEA' AND s.amount > 10
//	GROUP  BY p.category ORDER BY category
func buildPlan(sales, products *uot.Table) *uot.Builder {
	b := uot.NewBuilder()
	ps, ss := products.Schema(), sales.Schema()

	selProd := b.ScanSelect(uot.SelectSpec{
		Name: "scan(products)", Base: products,
		Proj:      []uot.Expr{uot.Col(ps, "id"), uot.Col(ps, "category")},
		ProjNames: []string{"id", "category"},
	})
	buildProd, _ := b.Build(selProd, uot.BuildSpec{
		Name:    "build(products)",
		KeyCols: []int{0}, Payload: []int{1}, ExpectedRows: 256,
	})

	selSales := b.ScanSelect(uot.SelectSpec{
		Name: "scan(sales)", Base: sales,
		Pred: uot.And(
			uot.Eq(uot.Col(ss, "region"), uot.Str("EMEA")),
			uot.Gt(uot.Col(ss, "amount"), uot.Float(10)),
		),
		Proj:      []uot.Expr{uot.Col(ss, "product_id"), uot.Col(ss, "amount")},
		ProjNames: []string{"product_id", "amount"},
	})
	joined := b.Probe(selSales, buildProd, uot.ProbeSpec{
		Name:      "probe(products)",
		KeyCols:   []int{0},
		ProbeProj: []int{1}, BuildProj: []int{0},
		Rename: []string{"amount", "category"},
	})
	agg := b.Agg(joined, uot.AggOpSpec{
		Name:         "agg",
		GroupBy:      []uot.Expr{uot.Col(joined.Schema, "category")},
		GroupByNames: []string{"category"},
		Aggs: []uot.AggSpec{
			{Func: uot.Sum, Arg: uot.Col(joined.Schema, "amount"), Name: "revenue"},
			{Func: uot.Count, Name: "orders"},
		},
	})
	srt := b.Sort(agg, uot.SortSpec{
		Name:  "sort",
		Terms: []uot.SortTerm{{Key: uot.Col(agg.Schema, "category")}},
	})
	b.Collect(srt)
	return b
}

func loadData(sales, products *uot.Table) {
	categories := []string{"widgets", "gadgets", "gizmos", "sprockets"}
	lp := uot.NewLoader(products)
	for id := 0; id < 256; id++ {
		lp.Append(uot.Int64Val(int64(id)), uot.StringVal(categories[id%len(categories)]))
	}
	lp.Close()

	regions := []string{"EMEA", "APAC", "AMER"}
	ls := uot.NewLoader(sales)
	for i := 0; i < 50000; i++ {
		ls.Append(
			uot.Int64Val(int64(i*31%256)),
			uot.Float64Val(float64(i%500)/3),
			uot.StringVal(regions[i%len(regions)]),
		)
	}
	ls.Close()
}
