// tpch_uot sweeps a TPC-H query across the whole UoT spectrum — not just
// the two extremes the literature names, but the points in between — and
// reports time, memory, and the realized schedule profile at each point.
//
//	go run ./examples/tpch_uot -q 3 -sf 0.02 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	uot "repro"
)

func main() {
	q := flag.Int("q", 3, "TPC-H query number")
	sf := flag.Float64("sf", 0.02, "scale factor")
	workers := flag.Int("workers", 8, "worker threads")
	blockKB := flag.Int("block", 128, "block size in KiB")
	lip := flag.Bool("lip", false, "enable LIP bloom filters")
	flag.Parse()

	fmt.Printf("loading TPC-H SF %.3g (%d KiB column-store blocks)...\n", *sf, *blockKB)
	d := uot.LoadTPCH(*sf, *blockKB<<10, uot.ColumnStore)
	fmt.Printf("lineitem: %d rows in %d blocks\n\n", d.Lineitem.NumRows(), d.Lineitem.NumBlocks())

	fmt.Printf("%-12s %10s %14s %14s %12s\n",
		"UoT(blocks)", "wall(ms)", "peak_temp(B)", "peak_hash(B)", "work_orders")
	for _, u := range []int{1, 2, 4, 8, 16, 64, uot.UoTTable} {
		plan, err := uot.BuildTPCH(d, *q, *lip)
		if err != nil {
			log.Fatal(err)
		}
		res, err := uot.Execute(plan, uot.Options{
			Workers:        *workers,
			UoTBlocks:      u,
			TempBlockBytes: *blockKB << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		var wos int
		for _, op := range res.Run.PerOp() {
			wos += op.Count
		}
		label := fmt.Sprintf("%d", u)
		if u == uot.UoTTable {
			label = "table"
		}
		fmt.Printf("%-12s %10.2f %14d %14d %12d\n",
			label,
			float64(res.Run.WallTime())/float64(time.Millisecond),
			res.Run.Intermediates.High(),
			res.Run.HashTables.High(),
			wos)
	}

	// Print the result rows once (they are identical at every UoT — run
	// the test suite if you doubt it).
	plan, _ := uot.BuildTPCH(d, *q, *lip)
	res, err := uot.Execute(plan, uot.Options{Workers: *workers, UoTBlocks: 1, TempBlockBytes: *blockKB << 10})
	if err != nil {
		log.Fatal(err)
	}
	rows := uot.Rows(res.Table)
	fmt.Printf("\nQ%d result (%d rows):\n", *q, len(rows))
	for i, row := range rows {
		if i == 10 {
			fmt.Printf("  ... %d more\n", len(rows)-10)
			break
		}
		fmt.Print("  ")
		for j, dd := range row {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(dd.String())
		}
		fmt.Println()
	}
}
