// memory_analysis walks through the paper's Section VI memory story on
// TPC-H Q7: the pipelining strategy must keep every hash table of the probe
// cascade live at once, the blocking strategy materializes the selection
// output instead, and LIP pruning can make the blocking strategy's overhead
// the smaller of the two — contrary to the usual intuition that pipelining
// always saves memory.
package main

import (
	"flag"
	"fmt"
	"log"

	uot "repro"
)

func main() {
	sf := flag.Float64("sf", 0.02, "scale factor")
	flag.Parse()

	d := uot.LoadTPCH(*sf, 2<<20, uot.ColumnStore)
	fmt.Printf("TPC-H SF %.3g | lineitem %.1f MiB | orders %.1f MiB\n\n",
		*sf, mib(d.Lineitem.UsedBytes()), mib(d.Orders.UsedBytes()))

	type cell struct {
		label        string
		uotBlocks    int
		opts         uot.TPCHOpts
		hash, interm int64
	}
	cells := []cell{
		{label: "low UoT", uotBlocks: 1},
		{label: "high UoT", uotBlocks: uot.UoTTable},
		{label: "high UoT, staged", uotBlocks: uot.UoTTable, opts: uot.TPCHOpts{Staged: true}},
		{label: "low UoT, LIP", uotBlocks: 1, opts: uot.TPCHOpts{LIP: true}},
	}
	for i := range cells {
		plan, err := uot.BuildTPCHWith(d, 7, cells[i].opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := uot.Execute(plan, uot.Options{
			Workers: 1, UoTBlocks: cells[i].uotBlocks, TempBlockBytes: 128 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		cells[i].hash = res.Run.HashTables.High()
		cells[i].interm = res.Run.Intermediates.High()
	}

	fmt.Printf("%-22s %16s %20s\n", "strategy (Q7)", "peak hash (MiB)", "peak temp (MiB)")
	for _, c := range cells {
		fmt.Printf("%-22s %16.2f %20.2f\n", c.label, mib(c.hash), mib(c.interm))
	}

	// The closed-form side of the same story (Section VI-B): the hash-table
	// size model (M/w)(c/f) and the Table II overheads.
	fmt.Println("\nmodel check (Section VI-B):")
	ordersHT := uot.HashTableSize(d.Orders.UsedBytes(), d.Orders.Schema().RowWidth(), 40, 0.75)
	fmt.Printf("  (M/w)(c/f) for a hash table on all of orders: %.2f MiB\n", mib(ordersHT))
	fmt.Printf("  Table II low-UoT overhead for tables of 1, %.0f, 2 MiB: %.2f MiB (all but the first stay live)\n",
		mib(ordersHT), mib(uot.LowUoTOverhead([]int64{1 << 20, ordersHT, 2 << 20})))
	fmt.Printf("  Table II high-UoT overhead for a 3 MiB selection output: %.2f MiB\n",
		mib(uot.HighUoTOverhead(3<<20)))
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
