// prefetch_sim demonstrates the deterministic memory-hierarchy model that
// stands in for hardware the paper controls via MSRs: toggling the modeled
// prefetcher on and off (Section IV-D / Table VI) and watching how the cost
// of sequential scans, cold intermediate reads, and random hash-table probes
// responds. Run it, then flip the knobs and build intuition for why
// prefetching helps scans and hurts probes.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cachesim"
)

func main() {
	threads := flag.Int("threads", 20, "modeled concurrent threads")
	flag.Parse()

	fmt.Printf("%-44s %14s %14s %8s\n", "access pattern", "prefetch ON", "prefetch OFF", "on/off")
	row := func(label string, cost func(s *cachesim.Sim) int64) {
		on := cachesim.New(cachesim.Default())
		on.SetThreads(*threads)
		off := cachesim.New(cachesim.Default())
		off.SetThreads(*threads)
		off.SetPrefetch(false)
		a, b := cost(on), cost(off)
		fmt.Printf("%-44s %12dns %12dns %8.2f\n", label, a, b, float64(a)/float64(b))
	}

	row("sequential scan of a 2 MiB base block", func(s *cachesim.Sim) int64 {
		return s.ScannedBase(2 << 20)
	})
	row("cold read of a 128 KiB intermediate block", func(s *cachesim.Sim) int64 {
		return s.ConsumedSeq("blk", 128<<10)
	})
	row("hot read of a 128 KiB intermediate block", func(s *cachesim.Sim) int64 {
		s.Produced("blk", 128<<10)
		return s.ConsumedSeq("blk", 128<<10)
	})
	row("10k probes of a 2 MiB (cache-resident) table", func(s *cachesim.Sim) int64 {
		return s.RandomProbes(10000, 2<<20)
	})
	row("10k probes of a 100 MiB (memory) table", func(s *cachesim.Sim) int64 {
		return s.RandomProbes(10000, 100<<20)
	})

	fmt.Println("\ntakeaways (all from Section V's cost structure):")
	fmt.Println("  - prefetching slashes sequential costs (the select column of Table VI)")
	fmt.Println("  - prefetching inflates random-miss costs via wasted speculative lines")
	fmt.Println("    (the build/probe columns of Table VI)")
	fmt.Println("  - a hot intermediate read costs a fraction of a cold one: that is the")
	fmt.Println("    entire benefit low UoT values can ever deliver (Fig. 5)")
}
