// Package bloom implements a blocked bloom filter used for lookahead
// information passing (LIP) [Zhu et al., VLDB 2017]: build-side join keys
// populate the filter, and the filter is pushed sideways into the probe-side
// select operator so non-joining tuples are dropped before materialization.
// This reproduces the Section VI-C discussion: LIP cuts the size of
// materialized intermediates by an order of magnitude on queries like Q07.
package bloom

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/types"
)

// Filter is a blocked bloom filter over 64-bit keys. Each key sets k bits
// within one 64-byte (512-bit) block chosen by the high hash bits, keeping
// each membership test within a single cache line. Adds use lock-free atomic
// ORs on the block words, so concurrent build work orders populate the
// filter without any external mutex; probes are plain atomic loads and may
// run concurrently with the build.
type Filter struct {
	blocks []uint64 // 8 words per 512-bit block
	mask   uint64   // block index mask
	k      int
}

// New sizes a filter for n expected keys at roughly bitsPerKey bits each
// (10 bits/key ≈ 1% false-positive rate). k is fixed at 6.
func New(n int, bitsPerKey int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	bits := n * bitsPerKey
	nBlocks := nextPow2((bits + 511) / 512)
	return &Filter{blocks: make([]uint64, nBlocks*8), mask: uint64(nBlocks - 1), k: 6}
}

// orWord ORs v into *p atomically, skipping the CAS when every bit is
// already set (the common case once the filter warms up).
func orWord(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&v == v {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|v) {
			return
		}
	}
}

// Add inserts a key. Safe for concurrent use with other Adds and with
// MayContain.
func (f *Filter) Add(key int64) {
	h := types.HashInt64(key)
	base := (h & f.mask) * 8
	// Derive k bit positions within the 512-bit block from two independent
	// 9-bit streams (double hashing).
	h1 := (h >> 16) & 511
	h2 := ((h >> 32) & 511) | 1
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) & 511
		orWord(&f.blocks[base+bit/64], 1<<(bit%64))
	}
}

// AddMany inserts a batch of keys (the build operator hands over a whole
// block's gathered key column at once). Bits landing in the same word of a
// key's cache-line block are coalesced into one atomic OR, so a k=6 add
// issues at most 6 — typically fewer — atomics per key and zero when the
// block is already saturated.
func (f *Filter) AddMany(keys []int64) {
	words, mask, k := f.blocks, f.mask, f.k
	for _, key := range keys {
		h := types.HashInt64(key)
		base := (h & mask) * 8
		h1 := (h >> 16) & 511
		h2 := ((h >> 32) & 511) | 1
		var masks [8]uint64
		var dirty uint8
		for i := 0; i < k; i++ {
			bit := (h1 + uint64(i)*h2) & 511
			w := bit >> 6
			masks[w] |= 1 << (bit & 63)
			dirty |= 1 << w
		}
		// Walk only the touched words (no data-dependent branch per word).
		for dirty != 0 {
			w := uint64(bits.TrailingZeros8(dirty))
			dirty &= dirty - 1
			orWord(&words[base+w], masks[w])
		}
	}
}

// MayContain reports whether the key might have been added; false means
// definitely absent. Safe for concurrent use with Add.
func (f *Filter) MayContain(key int64) bool {
	h := types.HashInt64(key)
	base := (h & f.mask) * 8
	h1 := (h >> 16) & 511
	h2 := ((h >> 32) & 511) | 1
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) & 511
		if atomic.LoadUint64(&f.blocks[base+bit/64])&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the filter's memory footprint.
func (f *Filter) Bytes() int64 { return int64(len(f.blocks) * 8) }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
