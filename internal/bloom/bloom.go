// Package bloom implements a blocked bloom filter used for lookahead
// information passing (LIP) [Zhu et al., VLDB 2017]: build-side join keys
// populate the filter, and the filter is pushed sideways into the probe-side
// select operator so non-joining tuples are dropped before materialization.
// This reproduces the Section VI-C discussion: LIP cuts the size of
// materialized intermediates by an order of magnitude on queries like Q07.
package bloom

import (
	"repro/internal/types"
)

// Filter is a blocked bloom filter over 64-bit keys. Each key sets k bits
// within one 64-byte (512-bit) block chosen by the high hash bits, keeping
// each membership test within a single cache line. The filter is built
// single-writer (or with external synchronization) and probed concurrently.
type Filter struct {
	blocks []uint64 // 8 words per 512-bit block
	mask   uint64   // block index mask
	k      int
}

// New sizes a filter for n expected keys at roughly bitsPerKey bits each
// (10 bits/key ≈ 1% false-positive rate). k is fixed at 6.
func New(n int, bitsPerKey int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	bits := n * bitsPerKey
	nBlocks := nextPow2((bits + 511) / 512)
	return &Filter{blocks: make([]uint64, nBlocks*8), mask: uint64(nBlocks - 1), k: 6}
}

// Add inserts a key.
func (f *Filter) Add(key int64) {
	h := types.HashInt64(key)
	base := (h & f.mask) * 8
	// Derive k bit positions within the 512-bit block from two independent
	// 9-bit streams (double hashing).
	h1 := (h >> 16) & 511
	h2 := ((h >> 32) & 511) | 1
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) & 511
		f.blocks[base+bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether the key might have been added; false means
// definitely absent.
func (f *Filter) MayContain(key int64) bool {
	h := types.HashInt64(key)
	base := (h & f.mask) * 8
	h1 := (h >> 16) & 511
	h2 := ((h >> 32) & 511) | 1
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) & 511
		if f.blocks[base+bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the filter's memory footprint.
func (f *Filter) Bytes() int64 { return int64(len(f.blocks) * 8) }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
