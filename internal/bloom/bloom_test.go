package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 10)
	for i := int64(0); i < 10000; i++ {
		f.Add(i * 3)
	}
	for i := int64(0); i < 10000; i++ {
		if !f.MayContain(i * 3) {
			t.Fatalf("false negative for %d", i*3)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 100000
	f := New(n, 10)
	for i := int64(0); i < n; i++ {
		f.Add(i)
	}
	fp := 0
	const probes = 100000
	for i := int64(0); i < probes; i++ {
		if f.MayContain(n + 1 + i*7919) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key with k=6 in a blocked filter should stay well under 5%.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(seed int64, nKeys uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nKeys%5000) + 1
		f := New(n, 10)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63() - rng.Int63()
			f.Add(keys[i])
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTinyFilter(t *testing.T) {
	f := New(0, 0) // degenerate sizes clamp
	f.Add(42)
	if !f.MayContain(42) {
		t.Fatal("tiny filter lost its key")
	}
	if f.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestBytesScalesWithN(t *testing.T) {
	small, big := New(1000, 10), New(100000, 10)
	if big.Bytes() <= small.Bytes() {
		t.Fatalf("filter size should grow: %d vs %d", small.Bytes(), big.Bytes())
	}
}
