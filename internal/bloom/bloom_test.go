package bloom

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 10)
	for i := int64(0); i < 10000; i++ {
		f.Add(i * 3)
	}
	for i := int64(0); i < 10000; i++ {
		if !f.MayContain(i * 3) {
			t.Fatalf("false negative for %d", i*3)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 100000
	f := New(n, 10)
	for i := int64(0); i < n; i++ {
		f.Add(i)
	}
	fp := 0
	const probes = 100000
	for i := int64(0); i < probes; i++ {
		if f.MayContain(n + 1 + i*7919) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key with k=6 in a blocked filter should stay well under 5%.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(seed int64, nKeys uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nKeys%5000) + 1
		f := New(n, 10)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63() - rng.Int63()
			f.Add(keys[i])
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestAddManyMatchesAdd proves the batch path sets exactly the bits the
// per-key path sets: two filters built from the same keys answer every probe
// identically (including false positives, which depend only on the bits).
func TestAddManyMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63() - rng.Int63()
	}
	one, many := New(n, 10), New(n, 10)
	for _, k := range keys {
		one.Add(k)
	}
	many.AddMany(keys)
	for i := int64(0); i < 100000; i++ {
		probe := rng.Int63() - rng.Int63()
		if one.MayContain(probe) != many.MayContain(probe) {
			t.Fatalf("Add and AddMany filters disagree on %d", probe)
		}
	}
	for _, k := range keys {
		if !many.MayContain(k) {
			t.Fatalf("AddMany false negative for %d", k)
		}
	}
}

// TestConcurrentAdd builds one filter from many goroutines without external
// locking (run under -race): lock-free atomic adds must lose no bits.
func TestConcurrentAdd(t *testing.T) {
	const workers, per = 8, 20000
	f := New(workers*per, 10)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]int64, per)
			for i := range keys {
				keys[i] = int64(w*per + i)
			}
			// Mix batch and per-key adds, plus concurrent probes.
			f.AddMany(keys[:per/2])
			for _, k := range keys[per/2:] {
				f.Add(k)
			}
			for _, k := range keys[:100] {
				if !f.MayContain(k) {
					t.Errorf("concurrent probe lost key %d", k)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := int64(0); i < workers*per; i++ {
		if !f.MayContain(i) {
			t.Fatalf("false negative for %d after concurrent build", i)
		}
	}
}

func TestTinyFilter(t *testing.T) {
	f := New(0, 0) // degenerate sizes clamp
	f.Add(42)
	if !f.MayContain(42) {
		t.Fatal("tiny filter lost its key")
	}
	if f.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestBytesScalesWithN(t *testing.T) {
	small, big := New(1000, 10), New(100000, 10)
	if big.Bytes() <= small.Bytes() {
		t.Fatalf("filter size should grow: %d vs %d", small.Bytes(), big.Bytes())
	}
}
