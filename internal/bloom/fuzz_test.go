package bloom

import (
	"encoding/binary"
	"testing"
)

// FuzzBloom checks the filter's two core invariants over arbitrary key sets
// and sizings:
//
//   - no false negatives: every added key reports MayContain == true;
//   - Add and AddMany are bit-identical: inserting the same keys one at a
//     time or as a batch must produce exactly the same filter words (the
//     batch path coalesces atomics but may not change semantics).
//
// It lives in the bloom package (not bloom_test) to compare the private
// word arrays directly. Run as a fuzzer with
// `go test ./internal/bloom -fuzz FuzzBloom`.
func FuzzBloom(f *testing.F) {
	f.Add([]byte{}, 1, 10)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 8, 10)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}, 100, 1)
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, 0, 0) // dup keys, degenerate sizing
	f.Fuzz(func(t *testing.T, data []byte, n int, bitsPerKey int) {
		if n > 1<<16 {
			n = 1 << 16
		}
		if bitsPerKey > 64 {
			bitsPerKey = 64
		}
		keys := make([]int64, 0, len(data)/8+1)
		for len(data) >= 8 {
			keys = append(keys, int64(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		if len(data) > 0 { // tail bytes become one more key
			var buf [8]byte
			copy(buf[:], data)
			keys = append(keys, int64(binary.LittleEndian.Uint64(buf[:])))
		}

		one := New(n, bitsPerKey)
		batch := New(n, bitsPerKey)
		if len(one.blocks) != len(batch.blocks) || one.mask != batch.mask || one.k != batch.k {
			t.Fatalf("same sizing produced different geometry: %d/%d words", len(one.blocks), len(batch.blocks))
		}
		for _, k := range keys {
			one.Add(k)
		}
		batch.AddMany(keys)

		for i := range one.blocks {
			if one.blocks[i] != batch.blocks[i] {
				t.Fatalf("word %d differs: Add=%#x AddMany=%#x (%d keys, n=%d bpk=%d)",
					i, one.blocks[i], batch.blocks[i], len(keys), n, bitsPerKey)
			}
		}
		for _, k := range keys {
			if !one.MayContain(k) {
				t.Fatalf("false negative from Add for key %d", k)
			}
			if !batch.MayContain(k) {
				t.Fatalf("false negative from AddMany for key %d", k)
			}
		}
	})
}
