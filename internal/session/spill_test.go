package session

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
)

// admitSpillAsync parks an admit call carrying a spillable share on a
// goroutine and reports its result.
func admitSpillAsync(a *admission, prio int, est, spill int64) chan error {
	c := make(chan error, 1)
	go func() { c <- a.admit(nil, prio, est, spill) }()
	return c
}

// TestAdmissionDiskBudgetSplit pins the two-budget arithmetic: the spillable
// share is charged against the disk budget, never the RAM budget, and a
// session without a spill tier (diskBudget 0) sheds any query that arrives
// with a nonzero spillable share.
func TestAdmissionDiskBudgetSplit(t *testing.T) {
	a := &admission{}
	a.init(100, 1000, 4, 4)
	// RAM share fits even though ram+spill would blow the RAM budget 5×.
	if err := a.admit(nil, 0, 80, 500); err != nil {
		t.Fatalf("split admission rejected: %v", err)
	}
	// Second query also fits both budgets (90 RAM reserved, 900 disk).
	if err := a.admit(nil, 0, 10, 400); err != nil {
		t.Fatalf("disk-fitting query rejected: %v", err)
	}
	// Third fits RAM but exceeds the remaining disk budget: it parks rather
	// than sheds, and is granted once disk reservations release.
	c := admitSpillAsync(a, 0, 5, 200)
	waitWaiting(t, a, 1)
	a.release(80, 500)
	if err := <-c; err != nil {
		t.Fatalf("parked waiter got %v after disk release", err)
	}
	a.release(10, 400)
	a.release(5, 200)

	// A spillable share can never be admitted without a disk budget.
	noDisk := &admission{}
	noDisk.init(100, 0, 4, 4)
	err := noDisk.admit(nil, 0, 10, 1)
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, core.ErrMemoryBudget) {
		t.Fatalf("spillable share without disk budget: err = %v, want OverBudget rejection", err)
	}
}

// TestSpillAdmitsOverRAMQuery is the tentpole's admission contract: a query
// whose full estimate exceeds the RAM budget is shed by a RAM-only session,
// but admitted — and completes correctly — when a spill tier lets its deep
// edge backlogs live on disk.
func TestSpillAdmitsOverRAMQuery(t *testing.T) {
	fact, dim := serveFixture()
	goldenRes, err := engine.Execute(joinAggPlan(fact, dim), engine.Options{Workers: 1, UoTBlocks: 1})
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	golden := tableKey(goldenRes.Table)

	const blockBytes, uot = 4 << 10, 64
	ram, spillable := EstimateBuilderSplit(joinAggPlan(fact, dim), 1, uot, blockBytes)
	if spillable == 0 {
		t.Fatalf("uot=%d plan has no spillable share; split test is vacuous", uot)
	}
	// A budget the resident share fits but the undivided estimate does not.
	budget := ram + spillable/2

	ramOnly := Open(Config{Workers: 2, MemoryBudget: budget, BlockBytes: blockBytes})
	_, err = ramOnly.Submit(Request{
		Build:     func() *engine.Builder { return joinAggPlan(fact, dim) },
		UoTBlocks: uot,
	})
	ramOnly.Close()
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, core.ErrMemoryBudget) {
		t.Fatalf("RAM-only session: err = %v, want OverBudget shed", err)
	}

	spilly := Open(Config{
		Workers: 2, MemoryBudget: budget, BlockBytes: blockBytes,
		SpillDir: t.TempDir(),
	})
	defer spilly.Close()
	resp, err := spilly.Submit(Request{
		Build:     func() *engine.Builder { return joinAggPlan(fact, dim) },
		UoTBlocks: uot,
	})
	if err != nil {
		t.Fatalf("spill session shed the query the disk budget should cover: %v", err)
	}
	if got := tableKey(resp.Table); got != golden {
		t.Fatal("over-RAM admitted query returned wrong rows")
	}
}

// TestSpillConcurrentSessionRaceAndLeaks is the race/leak satellite: at least
// four queries in flight over one shared root pool whose spill tier evicts
// every cooled block (threshold 1 byte), with a monitor goroutine snapshotting
// the spill counters concurrently. Run under -race in CI. Afterwards: results
// golden, pin/unpin invariant intact (no BadEvicts), zero leaked blocks AND
// zero leaked spill bytes/files.
func TestSpillConcurrentSessionRaceAndLeaks(t *testing.T) {
	fact, dim := serveFixture()
	golden := func() string {
		res, err := engine.Execute(joinAggPlan(fact, dim), engine.Options{Workers: 1, UoTBlocks: 1})
		if err != nil {
			t.Fatalf("golden run: %v", err)
		}
		return tableKey(res.Table)
	}()

	parent := t.TempDir()
	s := Open(Config{
		Workers: 4, MaxConcurrent: 4, BlockBytes: 4 << 10,
		SpillDir: parent, SpillThreshold: 1,
	})

	stop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if sc := s.SpillStats(); sc.BadEvicts != 0 {
				t.Errorf("BadEvicts = %d mid-run: eviction raced a live pin", sc.BadEvicts)
				return
			}
			_ = s.Live()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const clients, perClient = 8, 3
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r, err := s.Submit(Request{
					Build:    func() *engine.Builder { return joinAggPlan(fact, dim) },
					Priority: c % 2,
				})
				if err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					return
				}
				if got := tableKey(r.Table); got != golden {
					t.Errorf("client %d query %d: result diverged from golden", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	mon.Wait()

	sc := s.SpillStats()
	if sc.BlocksOut == 0 || sc.BlocksIn == 0 {
		t.Fatalf("no two-way spill traffic under threshold 1 (out=%d in=%d); race test is vacuous", sc.BlocksOut, sc.BlocksIn)
	}
	if sc.BadEvicts != 0 {
		t.Fatalf("BadEvicts = %d: eviction raced a live pin", sc.BadEvicts)
	}
	if sc.DiskLive != 0 || sc.Outstanding != 0 {
		t.Fatalf("spill tier not drained: %d disk bytes, %d tracked blocks", sc.DiskLive, sc.Outstanding)
	}
	if s.Live() != 0 {
		t.Fatalf("global gauge %d after drain, want 0", s.Live())
	}
	if p := s.PendingPartials(); p != 0 {
		t.Fatalf("%d partial blocks leaked", p)
	}
	s.Close()
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill files leaked past Close: %d entries left in %s", len(entries), parent)
	}
}

// TestSpillSessionFaultsAndClose: injected faults at both spill sites during
// concurrent serving demote to stall-and-retry without corrupting results,
// and Close still removes every spill file afterwards.
func TestSpillSessionFaultsAndClose(t *testing.T) {
	fact, dim := serveFixture()
	golden := func() string {
		res, err := engine.Execute(joinAggPlan(fact, dim), engine.Options{Workers: 1, UoTBlocks: 1})
		if err != nil {
			t.Fatalf("golden run: %v", err)
		}
		return tableKey(res.Table)
	}()

	inj := faults.New(faults.Config{
		Seed: 17,
		Rates: map[faults.Site]float64{
			faults.SpillWrite: 0.2,
			faults.SpillRead:  0.2,
		},
		Kinds: []faults.Kind{faults.KindError, faults.KindPanic},
	})
	parent := t.TempDir()
	s := Open(Config{
		Workers: 4, MaxConcurrent: 4, BlockBytes: 4 << 10,
		SpillDir: parent, SpillThreshold: 1, SpillFaults: inj,
	})

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r, err := s.Submit(Request{
					Build: func() *engine.Builder { return joinAggPlan(fact, dim) },
				})
				if err != nil {
					t.Errorf("faulted serve: %v", err)
					return
				}
				if tableKey(r.Table) != golden {
					t.Error("faulted serve returned wrong rows")
					return
				}
			}
		}()
	}
	wg.Wait()

	sc := s.SpillStats()
	if sc.WriteFaults == 0 && sc.ReadFaults == 0 {
		t.Fatal("no spill faults fired; chaos coverage is vacuous")
	}
	if sc.BadEvicts != 0 {
		t.Fatalf("BadEvicts = %d under faults", sc.BadEvicts)
	}
	s.Close()
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill files leaked past Close under faults: %d entries", len(entries))
	}
}
