package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/trace"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestServingMatchesSequential is the tentpole invariant: 16 queries served
// concurrently over a shared worker pool and shared block pool return
// exactly the single-query result, every per-query gauge drains to zero, and
// the global accounting returns to zero once the results are handed over.
func TestServingMatchesSequential(t *testing.T) {
	fact, dim := serveFixture()
	ref, err := engine.Execute(joinAggPlan(fact, dim), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := tableKey(ref.Table)

	tr := trace.New(1 << 14)
	const n = 16
	s := Open(Config{Workers: 4, MaxConcurrent: 4, QueueDepth: n, Trace: tr})
	defer s.Close()
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Submit(Request{
				Build: func() *engine.Builder { return joinAggPlan(fact, dim) },
			})
		}(i)
	}
	wg.Wait()

	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		r := resps[i]
		if got := tableKey(r.Table); got != want {
			t.Errorf("query %d: result differs from sequential reference", i)
		}
		if live := r.Run.Intermediates.Live(); live != 0 {
			t.Errorf("query %d: per-query gauge %d bytes after completion, want 0", i, live)
		}
		if r.Run.Query() != r.Query {
			t.Errorf("query %d: run labelled %d, response says %d", i, r.Run.Query(), r.Query)
		}
		if seen[r.Query] {
			t.Errorf("query id %d assigned twice", r.Query)
		}
		seen[r.Query] = true
	}
	if live := s.Live(); live != 0 {
		t.Errorf("global gauge %d bytes after drain, want 0", live)
	}
	if p := s.PendingPartials(); p != 0 {
		t.Errorf("%d partial blocks leaked", p)
	}
	c := s.Counters()
	if c.Submitted != n || c.Admitted != n || c.Completed != n {
		t.Errorf("counters = %+v, want %d submitted/admitted/completed", c, n)
	}
	// Every query recorded its own trace section, query-labelled.
	m := tr.Snapshot()
	labelled := 0
	for _, rm := range m.Runs {
		if rm.Query > 0 {
			labelled++
		}
	}
	if labelled != n {
		t.Errorf("%d query-labelled trace sections, want %d", labelled, n)
	}
}

// TestOverloadShedsTyped fills the one admission slot and the one queue slot
// with gated queries, then checks the next arrival is shed with the typed
// QueueFull rejection.
func TestOverloadShedsTyped(t *testing.T) {
	fact, _ := serveFixture()
	s := Open(Config{Workers: 2, MaxConcurrent: 1, QueueDepth: 1})
	defer s.Close()

	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(Request{
				Build: func() *engine.Builder { return gatedPlan(fact, gate) },
			}); err != nil {
				t.Errorf("gated query failed: %v", err)
			}
		}()
	}
	waitFor(t, "one running, one queued", func() bool {
		inflight, waiting, _ := s.Occupancy()
		return inflight == 1 && waiting == 1
	})

	_, err := s.Submit(Request{Build: func() *engine.Builder { return gatedPlan(fact, gate) }})
	if err == nil {
		t.Fatal("overload submit succeeded, want shed")
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("shed error %v does not match ErrAdmissionRejected", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != QueueFull {
		t.Fatalf("shed error %v, want QueueFull", err)
	}

	close(gate)
	wg.Wait()
	c := s.Counters()
	if c.RejectedQueueFull != 1 || c.Completed != 2 {
		t.Errorf("counters = %+v, want 1 queue-full rejection and 2 completions", c)
	}
	if s.Live() != 0 {
		t.Errorf("global gauge %d after drain, want 0", s.Live())
	}
}

// TestOverBudgetShedsTyped: an estimate larger than the whole budget can
// never be admitted and is shed immediately with the memory-typed rejection.
func TestOverBudgetShedsTyped(t *testing.T) {
	fact, dim := serveFixture()
	s := Open(Config{Workers: 1, MemoryBudget: 1 << 20})
	defer s.Close()
	_, err := s.Submit(Request{
		Build:    func() *engine.Builder { return joinAggPlan(fact, dim) },
		EstBytes: 2 << 20,
	})
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, core.ErrMemoryBudget) {
		t.Fatalf("err = %v, want admission rejection matching core.ErrMemoryBudget", err)
	}
	if c := s.Counters(); c.RejectedOverBudget != 1 {
		t.Errorf("counters = %+v, want 1 over-budget rejection", c)
	}
}

// TestCancelWhileQueued: a queued waiter whose context is cancelled abandons
// its slot with a typed cancellation, and the slot still flows to later
// waiters.
func TestCancelWhileQueued(t *testing.T) {
	fact, _ := serveFixture()
	s := Open(Config{Workers: 2, MaxConcurrent: 1, QueueDepth: 2})
	defer s.Close()

	gate := make(chan struct{})
	var running sync.WaitGroup
	running.Add(1)
	go func() {
		defer running.Done()
		if _, err := s.Submit(Request{Build: func() *engine.Builder { return gatedPlan(fact, gate) }}); err != nil {
			t.Errorf("gated query failed: %v", err)
		}
	}()
	waitFor(t, "gated query admitted", func() bool {
		inflight, _, _ := s.Occupancy()
		return inflight == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(Request{
			Build:   func() *engine.Builder { return gatedPlan(fact, gate) },
			Context: ctx,
		})
		errc <- err
	}()
	waitFor(t, "second query queued", func() bool {
		_, waiting, _ := s.Occupancy()
		return waiting == 1
	})
	cancel()
	err := <-errc
	if !errors.Is(err, core.ErrQueryCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-cancel error %v, want typed cancellation preserving context.Canceled", err)
	}

	close(gate)
	running.Wait()
	if c := s.Counters(); c.Cancelled != 1 || c.Completed != 1 {
		t.Errorf("counters = %+v, want 1 cancelled, 1 completed", c)
	}
}

// TestCancelWhileRunning: cancelling an admitted query's context aborts the
// run with the typed cancellation and releases every pool block.
func TestCancelWhileRunning(t *testing.T) {
	fact, _ := serveFixture()
	s := Open(Config{Workers: 1})
	defer s.Close()

	gate := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(Request{
			Build:   func() *engine.Builder { return gatedPlan(fact, gate) },
			Context: ctx,
		})
		errc <- err
	}()
	waitFor(t, "query admitted", func() bool {
		inflight, _, _ := s.Occupancy()
		return inflight == 1
	})
	cancel()
	close(gate)
	err := <-errc
	if !errors.Is(err, core.ErrQueryCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("running-cancel error %v, want typed cancellation", err)
	}
	if s.Live() != 0 || s.PendingPartials() != 0 {
		t.Errorf("cancelled query leaked: live=%d partials=%d", s.Live(), s.PendingPartials())
	}
	if c := s.Counters(); c.Cancelled != 1 {
		t.Errorf("counters = %+v, want 1 cancelled", c)
	}
}

// TestDeadlineWhileRunning: a blown per-request deadline surfaces as the
// typed deadline error.
func TestDeadlineWhileRunning(t *testing.T) {
	fact, _ := serveFixture()
	s := Open(Config{Workers: 1})
	defer s.Close()

	gate := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(Request{
			Build:    func() *engine.Builder { return gatedPlan(fact, gate) },
			Deadline: 2 * time.Millisecond,
		})
		errc <- err
	}()
	waitFor(t, "query admitted", func() bool {
		inflight, _, _ := s.Occupancy()
		return inflight == 1
	})
	time.Sleep(5 * time.Millisecond)
	close(gate)
	err := <-errc
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("deadline error %v, want core.ErrDeadlineExceeded", err)
	}
	if s.Live() != 0 {
		t.Errorf("deadline-killed query leaked %d bytes", s.Live())
	}
	if c := s.Counters(); c.DeadlineExceeded != 1 {
		t.Errorf("counters = %+v, want 1 deadline exceeded", c)
	}
}

// TestCloseRejectsQueuedAndFutureSubmits: Close fails parked waiters with
// ErrSessionClosed, waits for the running query, and refuses later submits.
func TestCloseRejectsQueuedAndFutureSubmits(t *testing.T) {
	fact, _ := serveFixture()
	s := Open(Config{Workers: 2, MaxConcurrent: 1, QueueDepth: 2})

	gate := make(chan struct{})
	runErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(Request{Build: func() *engine.Builder { return gatedPlan(fact, gate) }})
		runErr <- err
	}()
	waitFor(t, "gated query admitted", func() bool {
		inflight, _, _ := s.Occupancy()
		return inflight == 1
	})
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(Request{Build: func() *engine.Builder { return gatedPlan(fact, gate) }})
		queuedErr <- err
	}()
	waitFor(t, "second query queued", func() bool {
		_, waiting, _ := s.Occupancy()
		return waiting == 1
	})

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	if err := <-queuedErr; !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("queued waiter got %v, want ErrSessionClosed", err)
	}
	close(gate)
	if err := <-runErr; err != nil {
		t.Fatalf("running query failed during close: %v", err)
	}
	<-closed

	if _, err := s.Submit(Request{Build: func() *engine.Builder { return gatedPlan(fact, gate) }}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("post-close submit got %v, want ErrSessionClosed", err)
	}
}

// TestResultSurvivesPoolReuse: result tables handed to clients must stay
// intact while later queries recycle blocks through the shared pool.
func TestResultSurvivesPoolReuse(t *testing.T) {
	fact, dim := serveFixture()
	s := Open(Config{Workers: 2, MaxConcurrent: 2})
	defer s.Close()

	first, err := s.Submit(Request{Build: func() *engine.Builder { return joinAggPlan(fact, dim) }})
	if err != nil {
		t.Fatal(err)
	}
	want := tableKey(first.Table)
	var tables []*storage.Table
	for i := 0; i < 8; i++ {
		r, err := s.Submit(Request{Build: func() *engine.Builder { return joinAggPlan(fact, dim) }})
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, r.Table)
	}
	if got := tableKey(first.Table); got != want {
		t.Fatal("first result mutated by later queries reusing the pool")
	}
	for i, tab := range tables {
		if tableKey(tab) != want {
			t.Fatalf("result %d differs", i)
		}
	}
}
