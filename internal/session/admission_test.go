package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

func newAdm(budget int64, maxConc, depth int) *admission {
	a := &admission{}
	a.init(budget, 0, maxConc, depth)
	return a
}

// admitAsync parks an admit call on a goroutine and reports its result.
func admitAsync(a *admission, ctx context.Context, prio int, est int64) chan error {
	c := make(chan error, 1)
	go func() { c <- a.admit(ctx, prio, est, 0) }()
	return c
}

func waitWaiting(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, w, _ := a.snapshot()
		if w == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters (have %d)", n, w)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestAdmissionImmediateAndRelease(t *testing.T) {
	a := newAdm(100, 2, 4)
	if err := a.admit(nil, 0, 40, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.admit(nil, 0, 40, 0); err != nil {
		t.Fatal(err)
	}
	// Third exceeds concurrency: parks, then grants on release.
	c := admitAsync(a, nil, 0, 10)
	waitWaiting(t, a, 1)
	a.release(40, 0)
	if err := <-c; err != nil {
		t.Fatalf("parked waiter got %v after release", err)
	}
	inflight, waiting, reserved := a.snapshot()
	if inflight != 2 || waiting != 0 || reserved != 50 {
		t.Fatalf("snapshot = %d/%d/%d, want 2/0/50", inflight, waiting, reserved)
	}
}

func TestQueueFullTyped(t *testing.T) {
	a := newAdm(100, 1, 1)
	if err := a.admit(nil, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	c := admitAsync(a, nil, 0, 10)
	waitWaiting(t, a, 1)
	err := a.admit(nil, 0, 10, 0)
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("err = %v, want ErrAdmissionRejected", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != QueueFull {
		t.Fatalf("err = %v, want QueueFull", err)
	}
	a.release(10, 0)
	<-c
}

func TestOverBudgetTyped(t *testing.T) {
	a := newAdm(100, 4, 4)
	err := a.admit(nil, 0, 101, 0)
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, core.ErrMemoryBudget) {
		t.Fatalf("err = %v, want rejection matching core.ErrMemoryBudget", err)
	}
}

func TestDeadlineBlownTyped(t *testing.T) {
	a := newAdm(100, 4, 4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := a.admit(ctx, 0, 10, 0)
	if !errors.Is(err, ErrAdmissionRejected) || !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want rejection matching core.ErrDeadlineExceeded", err)
	}
}

func TestPriorityGrantOrder(t *testing.T) {
	a := newAdm(100, 1, 4)
	if err := a.admit(nil, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	low := admitAsync(a, nil, 0, 10)
	waitWaiting(t, a, 1)
	high := admitAsync(a, nil, 5, 10)
	waitWaiting(t, a, 2)

	a.release(10, 0)
	select {
	case err := <-high:
		if err != nil {
			t.Fatal(err)
		}
	case <-low:
		t.Fatal("low-priority waiter granted before high-priority")
	}
	a.release(10, 0)
	if err := <-low; err != nil {
		t.Fatal(err)
	}
	a.release(10, 0)
}

// TestHeadOfLineNoBypass: a large query at the queue head is never bypassed
// by a small later arrival, even when the small one would fit — the
// no-starvation guarantee.
func TestHeadOfLineNoBypass(t *testing.T) {
	a := newAdm(100, 4, 4)
	if err := a.admit(nil, 0, 60, 0); err != nil {
		t.Fatal(err)
	}
	big := admitAsync(a, nil, 0, 50) // 60+50 > 100: parks
	waitWaiting(t, a, 1)
	small := admitAsync(a, nil, 0, 10) // would fit, but must not jump the head
	waitWaiting(t, a, 2)
	select {
	case <-small:
		t.Fatal("small waiter bypassed the blocked head")
	case <-time.After(5 * time.Millisecond):
	}
	a.release(60, 0)
	if err := <-big; err != nil {
		t.Fatal(err)
	}
	if err := <-small; err != nil {
		t.Fatal(err)
	}
}

// TestAbandonedWaiterSkipped: a cancelled waiter at the head no longer
// blocks grants behind it.
func TestAbandonedWaiterSkipped(t *testing.T) {
	a := newAdm(100, 1, 4)
	if err := a.admit(nil, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	head := admitAsync(a, ctx, 0, 10)
	waitWaiting(t, a, 1)
	second := admitAsync(a, nil, 0, 10)
	waitWaiting(t, a, 2)

	cancel()
	err := <-head
	if !errors.Is(err, core.ErrQueryCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	waitWaiting(t, a, 1)
	a.release(10, 0)
	if err := <-second; err != nil {
		t.Fatalf("waiter behind abandoned head got %v", err)
	}
}

func TestCloseFailsWaiters(t *testing.T) {
	a := newAdm(100, 1, 4)
	if err := a.admit(nil, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	parked := admitAsync(a, nil, 0, 10)
	waitWaiting(t, a, 1)
	done := make(chan struct{})
	go func() { a.closeAndDrain(); close(done) }()
	if err := <-parked; !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("parked waiter got %v, want ErrSessionClosed", err)
	}
	a.release(10, 0)
	<-done
	if err := a.admit(nil, 0, 10, 0); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("post-close admit got %v, want ErrSessionClosed", err)
	}
}
