package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// ErrAdmissionRejected is the load-shedding sentinel: every *AdmissionError
// matches it via errors.Is, so clients distinguish "the server refused to
// start this query" from "the query ran and failed" with one check.
var ErrAdmissionRejected = errors.New("session: admission rejected")

// ErrSessionClosed reports a Submit against a closed session (including
// queries still waiting in the admission queue when Close ran).
var ErrSessionClosed = errors.New("session: closed")

// RejectReason says why admission shed a query.
type RejectReason int

const (
	// QueueFull: the bounded wait queue was at capacity.
	QueueFull RejectReason = iota
	// DeadlineBlown: the request's deadline expired before it was admitted
	// (already blown at submit, or while queued).
	DeadlineBlown
	// OverBudget: the query's estimated memory exceeds the global budget —
	// it could never be admitted, so waiting would be futile.
	OverBudget
)

func (r RejectReason) String() string {
	switch r {
	case QueueFull:
		return "queue full"
	case DeadlineBlown:
		return "deadline blown"
	case OverBudget:
		return "over budget"
	}
	return "unknown"
}

// AdmissionError is a typed load-shedding rejection. It matches
// ErrAdmissionRejected always, and additionally core.ErrMemoryBudget
// (OverBudget) or core.ErrDeadlineExceeded (DeadlineBlown) so callers can
// branch on the cause without string inspection.
type AdmissionError struct {
	Reason RejectReason
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("session: admission rejected (%s): %s", e.Reason, e.Detail)
}

// Is implements errors.Is matching.
func (e *AdmissionError) Is(target error) bool {
	switch target {
	case ErrAdmissionRejected:
		return true
	case core.ErrMemoryBudget:
		return e.Reason == OverBudget
	case core.ErrDeadlineExceeded:
		return e.Reason == DeadlineBlown
	}
	return false
}

// waiter is one query parked in the admission queue.
type waiter struct {
	priority  int
	seq       uint64 // arrival order, for FIFO within a priority class
	est       int64
	spill     int64 // spillable share, charged against the disk budget
	ready     chan struct{}
	err       error // set before ready closes; nil = granted
	abandoned bool  // waiter gave up (cancel/deadline); skip at pump
}

// admission is the controller: it holds the global memory budget and the
// concurrency cap, parks excess arrivals in a bounded priority queue, and
// grants strictly in order (priority class descending, FIFO within a class).
// Head-of-line blocking is deliberate: a large query at the head is never
// bypassed by small late arrivals, which is what guarantees no starvation.
//
// With a spill tier attached the controller arbitrates two budgets: each
// query's estimate splits into a RAM-resident share (charged against budget)
// and a spillable share (charged against diskBudget), so a query whose full
// footprint exceeds RAM is admitted as long as the RAM-resident part fits —
// the deep edge backlogs the rest of the charge stands for can live on disk.
type admission struct {
	mu         sync.Mutex
	cond       *sync.Cond // signaled when inflight drops (for Close drain)
	budget     int64
	diskBudget int64 // 0 = no spill tier: spillable shares must be 0
	maxConc    int
	queueDepth int

	inflight     int
	reserved     int64
	reservedDisk int64
	queue        []*waiter // priority desc, seq asc
	seq          uint64
	closed       bool
}

func (a *admission) init(budget, diskBudget int64, maxConc, queueDepth int) {
	a.budget = budget
	a.diskBudget = diskBudget
	a.maxConc = maxConc
	a.queueDepth = queueDepth
	a.cond = sync.NewCond(&a.mu)
}

// waitingLocked counts live (non-abandoned) queued waiters.
func (a *admission) waitingLocked() int {
	n := 0
	for _, w := range a.queue {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// admit blocks until the query may run (nil), or sheds it with a typed
// error. est is the RAM-resident share, spill the spillable share (0 without
// a spill tier). ctx, if non-nil, aborts the wait: an expired deadline
// becomes an AdmissionError (the server never started the query — that is
// load shedding, not a failed run), a plain cancel a *core.CancelError.
func (a *admission) admit(ctx context.Context, priority int, est, spill int64) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrSessionClosed
	}
	if est > a.budget || spill > a.diskBudget {
		a.mu.Unlock()
		return &AdmissionError{Reason: OverBudget,
			Detail: fmt.Sprintf("estimated %d resident + %d spillable bytes exceeds budgets (%d RAM, %d disk)",
				est, spill, a.budget, a.diskBudget)}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			a.mu.Unlock()
			if errors.Is(err, context.DeadlineExceeded) {
				return &AdmissionError{Reason: DeadlineBlown, Detail: "deadline expired before admission"}
			}
			return &core.CancelError{Cause: err}
		}
	}
	// Immediate grant only when nobody is queued ahead: strict FIFO within a
	// class means later arrivals may not jump a parked waiter of >= priority.
	if a.inflight < a.maxConc && a.reserved+est <= a.budget &&
		a.reservedDisk+spill <= a.diskBudget && !a.blockedByQueueLocked(priority) {
		a.inflight++
		a.reserved += est
		a.reservedDisk += spill
		a.mu.Unlock()
		return nil
	}
	if a.waitingLocked() >= a.queueDepth {
		a.mu.Unlock()
		return &AdmissionError{Reason: QueueFull,
			Detail: fmt.Sprintf("wait queue at capacity (%d)", a.queueDepth)}
	}
	a.seq++
	w := &waiter{priority: priority, seq: a.seq, est: est, spill: spill, ready: make(chan struct{})}
	i := sort.Search(len(a.queue), func(i int) bool {
		return a.queue[i].priority < priority
	})
	a.queue = append(a.queue, nil)
	copy(a.queue[i+1:], a.queue[i:])
	a.queue[i] = w
	a.mu.Unlock()

	if ctx == nil {
		<-w.ready
		return w.err
	}
	select {
	case <-w.ready:
		return w.err
	case <-ctx.Done():
	}
	a.mu.Lock()
	select {
	case <-w.ready:
		// The wait resolved while the cancellation fired.
		a.mu.Unlock()
		if w.err != nil {
			return w.err // session closed under us
		}
		a.release(est, spill) // granted: give the slot straight back
	default:
		w.abandoned = true
		a.pumpLocked() // an abandoned head may unblock the next waiter
		a.mu.Unlock()
	}
	err := ctx.Err()
	if errors.Is(err, context.DeadlineExceeded) {
		return &AdmissionError{Reason: DeadlineBlown, Detail: "deadline expired while queued"}
	}
	return &core.CancelError{Cause: err}
}

// blockedByQueueLocked reports whether a fresh arrival of the given priority
// must park behind existing waiters.
func (a *admission) blockedByQueueLocked(priority int) bool {
	for _, w := range a.queue {
		if !w.abandoned && w.priority >= priority {
			return true
		}
	}
	return false
}

// pumpLocked grants from the queue head while capacity lasts. Strictly in
// order: if the head does not fit (budget or concurrency), nothing behind it
// is considered.
func (a *admission) pumpLocked() {
	for len(a.queue) > 0 {
		w := a.queue[0]
		if w.abandoned {
			a.queue = a.queue[1:]
			continue
		}
		if a.inflight >= a.maxConc || a.reserved+w.est > a.budget ||
			a.reservedDisk+w.spill > a.diskBudget {
			return
		}
		a.queue = a.queue[1:]
		a.inflight++
		a.reserved += w.est
		a.reservedDisk += w.spill
		close(w.ready)
	}
}

// snapshot reports the controller's current occupancy.
func (a *admission) snapshot() (inflight, waiting int, reserved int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, a.waitingLocked(), a.reserved
}

// release returns an admitted query's slot and reservations, then grants to
// waiters.
func (a *admission) release(est, spill int64) {
	a.mu.Lock()
	a.inflight--
	a.reserved -= est
	a.reservedDisk -= spill
	a.pumpLocked()
	if a.inflight == 0 {
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// closeAndDrain rejects every parked waiter with ErrSessionClosed, refuses
// new admissions, and blocks until all admitted queries have released.
func (a *admission) closeAndDrain() {
	a.mu.Lock()
	a.closed = true
	for _, w := range a.queue {
		if !w.abandoned {
			w.err = ErrSessionClosed
			close(w.ready)
		}
	}
	a.queue = nil
	for a.inflight > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}
