// Package session is the multi-query serving layer: N concurrent queries
// share one worker pool and one global temporary-block pool, gated by an
// admission controller that arbitrates a global memory budget (Section III-C
// taken cross-query: the scheduler policies that trade memory for pipelining
// inside one plan generalize to trading memory across plans).
package session

import (
	"sync"

	"repro/internal/core"
)

// qstate is the pool's view of one query: a FIFO of its submitted work
// orders plus the dispatch bookkeeping fairness needs.
type qstate struct {
	id       int
	fifo     []core.Task
	priority int
	running  int    // tasks of this query on workers right now
	lastSeq  uint64 // global dispatch sequence of its most recent pick
}

// WorkerPool implements core.Executor: a fixed set of worker goroutines
// shared by every admitted query. Dispatch is fair across queries — the next
// task comes from the highest priority class, breaking ties toward the query
// with the fewest tasks already running, then the least recently dispatched
// one — so a wide query cannot starve a narrow one, while FIFO order within
// each query preserves the per-query scheduler's intent.
type WorkerPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int]*qstate
	queued int
	seq    uint64
	closed bool
	wg     sync.WaitGroup
}

// NewWorkerPool starts n worker goroutines (minimum 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{queues: make(map[int]*qstate)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(i)
	}
	return p
}

// Submit implements core.Executor. It never blocks on task execution: the
// per-query in-flight cap (ExecCtx.Workers) bounds how many tasks a query
// can have here, and admission bounds the number of queries, so the internal
// queue is naturally bounded.
func (p *WorkerPool) Submit(t core.Task) {
	p.mu.Lock()
	q := p.queues[t.Query]
	if q == nil {
		q = &qstate{id: t.Query}
		p.queues[t.Query] = q
	}
	q.priority = t.Priority
	q.fifo = append(q.fifo, t)
	p.queued++
	p.mu.Unlock()
	p.cond.Signal()
}

// pickLocked chooses the query to dispatch from next, nil if none has work.
func (p *WorkerPool) pickLocked() *qstate {
	var best *qstate
	for _, q := range p.queues {
		if len(q.fifo) == 0 {
			continue
		}
		if best == nil || dispatchBefore(q, best) {
			best = q
		}
	}
	return best
}

// dispatchBefore is the fairness order: priority class descending, then
// fewest running (the query getting the least service right now), then least
// recently dispatched, then query id for determinism.
func dispatchBefore(a, b *qstate) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.running != b.running {
		return a.running < b.running
	}
	if a.lastSeq != b.lastSeq {
		return a.lastSeq < b.lastSeq
	}
	return a.id < b.id
}

func (p *WorkerPool) worker(id int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for p.queued == 0 && !p.closed {
			p.cond.Wait()
		}
		q := p.pickLocked()
		if q == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			continue
		}
		t := q.fifo[0]
		q.fifo = q.fifo[1:]
		p.queued--
		q.running++
		p.seq++
		q.lastSeq = p.seq
		p.mu.Unlock()

		t.Run(id)

		p.mu.Lock()
		q.running--
		if len(q.fifo) == 0 && q.running == 0 {
			delete(p.queues, q.id)
		}
	}
}

// Close drains the queue — submitted tasks still run, since a query's
// scheduler would otherwise wait forever on their completions — then stops
// the workers and returns.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
