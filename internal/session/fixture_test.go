package session

import (
	"strings"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// serveFixture builds fact(k, grp, v) with 1000 rows and dim(k, w) with 50
// rows (the engine package's standard join-agg shapes, rebuilt here because
// test fixtures don't export).
func serveFixture() (fact, dim *storage.Table) {
	db := engine.NewDB(512, storage.ColumnStore)
	fact = db.CreateTable("fact", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "grp", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Float64},
	))
	lf := storage.NewLoader(fact)
	for i := 0; i < 1000; i++ {
		lf.Append(types.NewInt64(int64(i%100)), types.NewInt64(int64(i%5)), types.NewFloat64(float64(i)/10))
	}
	lf.Close()
	dim = db.CreateTable("dim", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "w", Type: types.Int64},
	))
	ld := storage.NewLoader(dim)
	for i := 0; i < 50; i++ {
		ld.Append(types.NewInt64(int64(i)), types.NewInt64(int64(i*2)))
	}
	ld.Close()
	return fact, dim
}

// joinAggPlan is select(fact) ⋈ build(dim) → group-by(grp) → sort: the
// engine package's reference plan, exercising a build, an agg, and a sort
// through the shared pool.
func joinAggPlan(fact, dim *storage.Table) *engine.Builder {
	b := engine.NewBuilder()
	fs, ds := fact.Schema(), dim.Schema()
	selDim := b.ScanSelect(exec.SelectSpec{
		Name: "sel_dim", Base: dim,
		Proj:      []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")},
		ProjNames: []string{"k", "w"},
	})
	bld, _ := b.Build(selDim, exec.BuildSpec{
		Name: "build_dim", KeyCols: []int{0}, Payload: []int{1}, ExpectedRows: 50,
	})
	selFact := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Pred:      expr.Ge(expr.C(fs, "v"), expr.Float(10)),
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "grp"), expr.C(fs, "v")},
		ProjNames: []string{"k", "grp", "v"},
	})
	probe := b.Probe(selFact, bld, exec.ProbeSpec{
		Name: "probe_dim", KeyCols: []int{0},
		ProbeProj: []int{1, 2}, BuildProj: []int{0},
		Rename: []string{"grp", "v", "w"},
	})
	agg := b.Agg(probe, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(probe.Schema, "grp")},
		GroupByNames: []string{"grp"},
		Aggs: []exec.AggSpec{
			{Func: exec.Count, Name: "cnt"},
			{Func: exec.Sum, Arg: expr.C(probe.Schema, "v"), Name: "sv"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{
		Name:  "sort",
		Terms: []exec.SortTerm{{Key: expr.C(agg.Schema, "grp")}},
	})
	b.Collect(srt)
	return b
}

// tableKey fingerprints a result table order-insensitively.
func tableKey(t *storage.Table) string {
	rows := engine.Rows(t)
	engine.SortRows(rows)
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(engine.FormatRow(r))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// gateExpr is a predicate that blocks until its channel closes — it turns a
// scan into a query that deterministically occupies its admission slot until
// the test releases it.
type gateExpr struct{ ch chan struct{} }

func (g gateExpr) Type() types.TypeID         { return types.Int64 }
func (g gateExpr) Eval(*expr.Ctx) types.Datum { <-g.ch; return types.NewInt64(1) }
func (g gateExpr) String() string             { return "gate" }

// gatedPlan scans fact under a gate predicate and collects the result.
func gatedPlan(fact *storage.Table, gate chan struct{}) *engine.Builder {
	b := engine.NewBuilder()
	fs := fact.Schema()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "sel_gate", Base: fact,
		Pred:      gateExpr{ch: gate},
		Proj:      []expr.Expr{expr.C(fs, "k")},
		ProjNames: []string{"k"},
	})
	b.Collect(sel)
	return b
}
