package session

import (
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
)

// TestConcurrentQueriesRace drives ≥4 queries in flight over the shared
// worker pool and shared block pool while a monitor goroutine concurrently
// snapshots every shared surface — session counters, the global gauge, the
// pool's partial census, trace metrics — and each client snapshots its
// stats.Run while other queries still execute. Its value is under
// `go test -race` (CI runs the whole suite that way); without the detector
// it still asserts the per-query and global zero-leak invariants.
func TestConcurrentQueriesRace(t *testing.T) {
	fact, dim := serveFixture()
	tr := trace.New(1 << 12)
	s := Open(Config{Workers: 4, MaxConcurrent: 4, Trace: tr})
	defer s.Close()

	stop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Live()
			_ = s.PendingPartials()
			_ = s.Counters()
			s.Occupancy()
			_ = tr.Snapshot()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const clients, perClient = 8, 3
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r, err := s.Submit(Request{
					Build:    func() *engine.Builder { return joinAggPlan(fact, dim) },
					Priority: c % 2,
				})
				if err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					return
				}
				// Snapshot the run while other queries are still in flight.
				_ = r.Run.PerOp()
				_ = r.Run.Robust()
				_ = r.Run.Checkouts()
				_ = r.Run.WallTime()
				if live := r.Run.Intermediates.Live(); live != 0 {
					t.Errorf("client %d query %d: per-query gauge %d, want 0", c, i, live)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	mon.Wait()

	if s.Live() != 0 {
		t.Errorf("global gauge %d after drain, want 0", s.Live())
	}
	if p := s.PendingPartials(); p != 0 {
		t.Errorf("%d partial blocks leaked", p)
	}
	c := s.Counters()
	if c.Completed != clients*perClient {
		t.Errorf("completed = %d, want %d", c.Completed, clients*perClient)
	}
}
