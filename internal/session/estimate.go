package session

import (
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/exec"
)

// EstimateBuilder derives a query's admission memory estimate from its plan
// shape: the resolved UoT of every pipelined edge (blocks that may sit
// buffered awaiting delivery), the in-flight work-order cap (blocks being
// filled), and a fixed charge per stateful operator. See
// costmodel.QueryMemory for the formula.
func EstimateBuilder(b *engine.Builder, workers, uotDefault int, blockBytes int64) int64 {
	p := b.Plan()
	uots := make([]int, 0, len(p.Edges))
	for _, e := range p.Edges {
		if e.Kind == core.Pipelined {
			uots = append(uots, core.ResolveUoT(e, uotDefault, nil))
		}
	}
	stateful := 0
	for _, op := range p.Ops {
		switch op.(type) {
		case *exec.BuildHashOp, *exec.AggOp, *exec.SortOp:
			stateful++
		}
	}
	return costmodel.QueryMemory(uots, workers, blockBytes, stateful, 0)
}
