package session

import (
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/exec"
)

// EstimateBuilder derives a query's admission memory estimate from its plan
// shape: the resolved UoT of every pipelined edge (blocks that may sit
// buffered awaiting delivery), the in-flight work-order cap (blocks being
// filled), and a fixed charge per stateful operator. See
// costmodel.QueryMemory for the formula.
func EstimateBuilder(b *engine.Builder, workers, uotDefault int, blockBytes int64) int64 {
	uots, stateful := planShape(b, uotDefault)
	return costmodel.QueryMemory(uots, workers, blockBytes, stateful, 0)
}

// EstimateBuilderSplit is EstimateBuilder for sessions with a spill tier: the
// same total, split into the RAM-resident share (charged against the memory
// budget) and the spillable share (deep edge backlogs the tier can park on
// disk, charged against the disk budget). See costmodel.QueryMemorySplit.
func EstimateBuilderSplit(b *engine.Builder, workers, uotDefault int, blockBytes int64) (ram, spillable int64) {
	uots, stateful := planShape(b, uotDefault)
	return costmodel.QueryMemorySplit(uots, workers, blockBytes, stateful, 0)
}

func planShape(b *engine.Builder, uotDefault int) (uots []int, stateful int) {
	p := b.Plan()
	uots = make([]int, 0, len(p.Edges))
	for _, e := range p.Edges {
		if e.Kind == core.Pipelined {
			uots = append(uots, core.ResolveUoT(e, uotDefault, nil))
		}
	}
	for _, op := range p.Ops {
		switch op.(type) {
		case *exec.BuildHashOp, *exec.AggOp, *exec.SortOp:
			stateful++
		}
	}
	return uots, stateful
}
