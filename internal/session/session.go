package session

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/reuse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/uotctl"
)

// Config sizes a serving session. Zero fields take the documented defaults.
type Config struct {
	// Workers is the shared worker-pool size (default 4). Every admitted
	// query's work orders run on these goroutines.
	Workers int
	// PerQueryWorkers caps one query's in-flight work orders (default 1).
	// At 1 each query's schedule is exactly its single-query Workers=1
	// schedule, so results are bit-identical to sequential runs — the
	// serving experiments' golden check depends on it.
	PerQueryWorkers int
	// MaxConcurrent caps admitted queries (default = Workers).
	MaxConcurrent int
	// QueueDepth bounds the admission wait queue (default 2·MaxConcurrent);
	// arrivals beyond it are shed with a typed QueueFull rejection.
	QueueDepth int
	// MemoryBudget is the global temporary-block budget in bytes arbitrated
	// across queries (default 256 MB). Admission reserves each query's
	// estimate against it; the reservation also becomes the query's soft
	// per-run budget, so the PR3 pressure machinery (producer holds, UoT
	// raises) operates per query within its slice.
	MemoryBudget int64
	// BlockBytes is the temporary-block size (default 128 KB).
	BlockBytes int
	// TempFormat is the temp-block layout (default row store).
	TempFormat storage.Format
	// UoTBlocks is the default unit of transfer (default 1).
	UoTBlocks int
	// Trace, if non-nil, records every query into its own concurrent trace
	// section, span-labelled with the query id.
	Trace *trace.Tracer

	// SpillDir, if non-empty, attaches a disk-backed spill tier to the
	// shared temp-block pool: cold sealed blocks parked in edge buffers are
	// evicted to extent files whenever global live temp bytes exceed
	// SpillThreshold, and faulted back in at delivery. Admission then splits
	// each query's estimate into a RAM-resident share (charged against
	// MemoryBudget) and a spillable share (charged against DiskBudget), so an
	// over-RAM query that fits RAM+disk is admitted instead of shed.
	SpillDir string
	// SpillThreshold is the live-byte level above which eviction runs
	// (default: MemoryBudget).
	SpillThreshold int64
	// DiskBudget bounds the reserved spillable bytes (default 8× the memory
	// budget). Only meaningful with SpillDir set.
	DiskBudget int64
	// SpillFaults, if non-nil, is consulted at the spill_write/spill_read
	// sites (deterministic chaos testing of the spill tier).
	SpillFaults *faults.Injector

	// Reuse attaches a cross-query result cache (see internal/reuse) to the
	// session: every submitted plan is fingerprint-probed before execution,
	// hits splice the cached block set in, and cold fills of the same
	// fingerprint are single-flighted so a burst of identical queries
	// computes once.
	Reuse bool
	// ReuseBudget is the cache's RAM budget, carved out of MemoryBudget so
	// admission control stays truthful about what the cache holds (default
	// MemoryBudget/4).
	ReuseBudget int64
	// ReuseDir, if non-empty, lets cold cache entries cool to disk through
	// the block codec instead of being evicted (default off).
	ReuseDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.PerQueryWorkers <= 0 {
		c.PerQueryWorkers = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 128 << 10
	}
	if c.UoTBlocks <= 0 {
		c.UoTBlocks = 1
	}
	if c.SpillDir != "" {
		if c.SpillThreshold <= 0 {
			c.SpillThreshold = c.MemoryBudget
		}
		if c.DiskBudget <= 0 {
			c.DiskBudget = 8 * c.MemoryBudget
		}
	}
	if c.Reuse && c.ReuseBudget <= 0 {
		c.ReuseBudget = c.MemoryBudget / 4
	}
	return c
}

// Request is one query submission.
type Request struct {
	// Build constructs the plan. Called once, before admission, so the
	// controller can estimate the query's memory from its shape.
	Build func() *engine.Builder
	// Label names the query in stats and traces.
	Label string
	// Priority is the admission and dispatch priority class (higher first).
	Priority int
	// Context, if non-nil, cancels the query — while queued (the waiter
	// abandons its slot) or while running (the PR3 run-cancel path).
	Context context.Context
	// Deadline, if positive, bounds queue wait + execution together.
	Deadline time.Duration
	// EstBytes overrides the admission memory estimate (0 = estimate from
	// the plan via costmodel.QueryMemory).
	EstBytes int64
	// MemoryBudget overrides the per-query soft budget (0 = the admission
	// reservation).
	MemoryBudget int64
	// Workers overrides the per-query in-flight cap (0 = config default).
	// Values above 1 trade the bit-identical-schedule guarantee for
	// intra-query parallelism.
	Workers int
	// UoTBlocks overrides the default unit of transfer (0 = config default).
	UoTBlocks int
	// Faults, MaxAttempts, RetryBackoff, WorkOrderDeadline and AdaptiveUoT
	// pass through to the engine (see engine.Options).
	Faults            *faults.Injector
	MaxAttempts       int
	RetryBackoff      time.Duration
	WorkOrderDeadline time.Duration
	AdaptiveUoT       bool
	AdaptiveConfig    uotctl.Config
}

// Response is a completed query.
type Response struct {
	Table *storage.Table
	Run   *stats.Run
	// Query is the session-assigned query id (matches trace sections and
	// stats labels).
	Query int
	// Queued is the time spent waiting for admission; Elapsed the total
	// Submit latency including it.
	Queued  time.Duration
	Elapsed time.Duration
}

// Counters is a snapshot of the session's serving statistics.
type Counters struct {
	Submitted int64 // Submit calls
	Admitted  int64 // granted a slot (immediately or after queuing)
	Completed int64 // finished with a result
	Failed    int64 // ran but errored (faults, invariants)

	RejectedQueueFull  int64 // shed: wait queue at capacity
	RejectedOverBudget int64 // shed: estimate exceeds the global budget
	RejectedDeadline   int64 // shed: deadline blown before admission
	Cancelled          int64 // cancelled (queued or running)
	DeadlineExceeded   int64 // deadline hit while running
}

// Session serves concurrent queries over one worker pool, one shared
// temporary-block pool, and one admission-controlled memory budget.
type Session struct {
	cfg    Config
	pool   *WorkerPool
	gauge  stats.MemGauge // global live temp bytes across all queries
	blocks *storage.Pool  // shared root pool; queries run on Subpool views
	adm    admission
	reuse  *reuse.Cache // nil unless cfg.Reuse
	nextID int64
	closed int32

	cSubmitted, cAdmitted, cCompleted, cFailed             int64
	cRejQueue, cRejBudget, cRejDeadline, cCancel, cRunDead int64
}

// Open starts a serving session. It panics if a configured spill directory
// cannot be set up — a server misconfiguration better surfaced at startup
// than as shed queries later.
func Open(cfg Config) *Session {
	cfg = cfg.withDefaults()
	s := &Session{cfg: cfg}
	s.pool = NewWorkerPool(cfg.Workers)
	s.blocks = storage.NewPool(&s.gauge, nil)
	var diskBudget int64
	if cfg.SpillDir != "" {
		scfg := storage.SpillConfig{Dir: cfg.SpillDir, Threshold: cfg.SpillThreshold}
		if inj := cfg.SpillFaults; inj != nil {
			scfg.WriteFault = func() error { return inj.At(faults.SpillWrite) }
			scfg.ReadFault = func() error { return inj.At(faults.SpillRead) }
		}
		if err := s.blocks.EnableSpill(scfg); err != nil {
			panic(fmt.Sprintf("session: %v", err))
		}
		diskBudget = cfg.DiskBudget
	}
	admBudget := cfg.MemoryBudget
	if cfg.Reuse {
		// The cache's RAM comes out of the session budget: admission
		// arbitrates what's left, so cached entries and live queries can
		// never jointly promise more memory than the session has.
		admBudget -= cfg.ReuseBudget
		if admBudget < cfg.MemoryBudget/8 {
			admBudget = cfg.MemoryBudget / 8
		}
		s.reuse = reuse.New(reuse.Config{
			Budget: cfg.ReuseBudget,
			Dir:    cfg.ReuseDir,
			Trace:  cfg.Trace,
		})
	}
	s.adm.init(admBudget, diskBudget, cfg.MaxConcurrent, cfg.QueueDepth)
	return s
}

// Submit runs one query to completion: estimate → admission (possibly
// queued, possibly shed with a typed error) → execution on the shared pool →
// release and grant to waiters. Safe for any number of concurrent callers.
func (s *Session) Submit(req Request) (*Response, error) {
	atomic.AddInt64(&s.cSubmitted, 1)
	if atomic.LoadInt32(&s.closed) != 0 {
		return nil, ErrSessionClosed
	}
	if req.Build == nil {
		return nil, fmt.Errorf("session: request has no Build")
	}
	b := req.Build()

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.PerQueryWorkers
	}
	uot := req.UoTBlocks
	if uot <= 0 {
		uot = s.cfg.UoTBlocks
	}
	// With a spill tier the estimate splits: the RAM-resident share competes
	// for the memory budget, the spillable share for the disk budget. An
	// explicit EstBytes override is taken as all-resident.
	est := req.EstBytes
	var spillable int64
	if est <= 0 {
		if s.cfg.SpillDir != "" {
			est, spillable = EstimateBuilderSplit(b, workers, uot, int64(s.cfg.BlockBytes))
		} else {
			est = EstimateBuilder(b, workers, uot, int64(s.cfg.BlockBytes))
		}
	}

	ctx := req.Context
	if req.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}

	// Single-flight on the plan fingerprint: if an identical cold query is
	// already filling the cache, wait for it instead of computing the same
	// result concurrently — on wake the engine's probe hits. Leaders (and
	// fingerprints the cache already holds) proceed immediately; a waiter
	// whose leader failed to fill simply runs cold itself.
	if s.reuse != nil {
		if fp, ok := reuse.RootFingerprint(b.Plan()); ok && !s.reuse.Has(fp) {
			leader, wait, done := s.reuse.Flight(fp)
			if leader {
				defer done()
			} else if err := wait(ctx); err != nil {
				s.countAdmitErr(err)
				return nil, err
			}
		}
	}

	start := time.Now()
	if err := s.adm.admit(ctx, req.Priority, est, spillable); err != nil {
		s.countAdmitErr(err)
		return nil, err
	}
	queued := time.Since(start)
	atomic.AddInt64(&s.cAdmitted, 1)
	defer s.adm.release(est, spillable)

	perBudget := req.MemoryBudget
	if perBudget <= 0 {
		perBudget = est
	}
	id := int(atomic.AddInt64(&s.nextID, 1))
	label := req.Label
	if label == "" {
		label = fmt.Sprintf("q%d", id)
	}
	res, err := engine.Execute(b, engine.Options{
		Workers:           workers,
		UoTBlocks:         uot,
		TempBlockBytes:    s.cfg.BlockBytes,
		TempFormat:        s.cfg.TempFormat,
		MemoryBudget:      perBudget,
		Context:           ctx,
		Faults:            req.Faults,
		MaxAttempts:       req.MaxAttempts,
		RetryBackoff:      req.RetryBackoff,
		WorkOrderDeadline: req.WorkOrderDeadline,
		AdaptiveUoT:       req.AdaptiveUoT,
		AdaptiveConfig:    req.AdaptiveConfig,
		Trace:             s.cfg.Trace,
		TraceLabel:        label,
		Reuse:             s.reuse,
		Exec:              s.pool,
		SharedPool:        s.blocks,
		QueryID:           id,
		Priority:          req.Priority,
	})
	if err != nil {
		s.countRunErr(err)
		return nil, err
	}
	atomic.AddInt64(&s.cCompleted, 1)
	return &Response{
		Table:   res.Table,
		Run:     res.Run,
		Query:   id,
		Queued:  queued,
		Elapsed: time.Since(start),
	}, nil
}

func (s *Session) countAdmitErr(err error) {
	var ae *AdmissionError
	switch {
	case errors.As(err, &ae):
		switch ae.Reason {
		case QueueFull:
			atomic.AddInt64(&s.cRejQueue, 1)
		case OverBudget:
			atomic.AddInt64(&s.cRejBudget, 1)
		case DeadlineBlown:
			atomic.AddInt64(&s.cRejDeadline, 1)
		}
	case errors.Is(err, core.ErrQueryCancelled):
		atomic.AddInt64(&s.cCancel, 1)
	}
}

func (s *Session) countRunErr(err error) {
	switch {
	case errors.Is(err, core.ErrDeadlineExceeded):
		atomic.AddInt64(&s.cRunDead, 1)
	case errors.Is(err, core.ErrQueryCancelled):
		atomic.AddInt64(&s.cCancel, 1)
	default:
		atomic.AddInt64(&s.cFailed, 1)
	}
}

// Counters snapshots the serving statistics.
func (s *Session) Counters() Counters {
	return Counters{
		Submitted:          atomic.LoadInt64(&s.cSubmitted),
		Admitted:           atomic.LoadInt64(&s.cAdmitted),
		Completed:          atomic.LoadInt64(&s.cCompleted),
		Failed:             atomic.LoadInt64(&s.cFailed),
		RejectedQueueFull:  atomic.LoadInt64(&s.cRejQueue),
		RejectedOverBudget: atomic.LoadInt64(&s.cRejBudget),
		RejectedDeadline:   atomic.LoadInt64(&s.cRejDeadline),
		Cancelled:          atomic.LoadInt64(&s.cCancel),
		DeadlineExceeded:   atomic.LoadInt64(&s.cRunDead),
	}
}

// Live returns the live temporary-block bytes across all queries (the global
// gauge the admission budget arbitrates). Zero when the session is idle —
// the cross-query zero-leak invariant.
func (s *Session) Live() int64 { return s.gauge.Live() }

// PendingPartials exposes the shared pool's checked-in partial blocks (zero
// when idle).
func (s *Session) PendingPartials() int { return s.blocks.PendingPartials() }

// Occupancy reports the admission controller's current state: admitted
// queries in flight, waiters queued, and reserved budget bytes.
func (s *Session) Occupancy() (inflight, waiting int, reserved int64) {
	return s.adm.snapshot()
}

// SpillStats snapshots the shared pool's spill-tier counters (zero without a
// spill tier). DiskLive and Outstanding are 0 whenever the session is idle —
// the spill-file side of the cross-query zero-leak invariant.
func (s *Session) SpillStats() storage.SpillCounters { return s.blocks.SpillCounters() }

// ReuseStats snapshots the result cache's counters (zero without a cache).
// Pins is 0 whenever the session is idle — the cache side of the cross-query
// zero-leak invariant.
func (s *Session) ReuseStats() reuse.Counters {
	if s.reuse == nil {
		return reuse.Counters{}
	}
	return s.reuse.Counters()
}

// Close rejects queued waiters, waits for running queries to finish, stops
// the worker pool, and tears down the spill tier (extent files and the
// per-session spill directory go with it — the drain happens first, so no
// query can still touch the tier). Submit calls after Close fail with
// ErrSessionClosed.
func (s *Session) Close() {
	if !atomic.CompareAndSwapInt32(&s.closed, 0, 1) {
		return
	}
	s.adm.closeAndDrain()
	if s.reuse != nil {
		// Running queries have drained, so no entry may still be pinned; a
		// pin leak here is a bug on the engine's unpin path.
		if err := s.reuse.Close(); err != nil {
			panic(fmt.Sprintf("session: %v", err))
		}
	}
	s.blocks.CloseSpill()
	s.pool.Close()
}
