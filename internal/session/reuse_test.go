package session

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/reuse"
	"repro/internal/storage"
)

// TestReuseConcurrentSingleFlight submits identical queries concurrently
// against a reuse-enabled session. The gate predicate holds the leader's
// fill open until every other submission is parked on the flight, so the
// dedup is exercised deterministically: one leader computes, everyone else
// waits and then hits.
func TestReuseConcurrentSingleFlight(t *testing.T) {
	fact, dim := serveFixture()
	ref, err := engine.Execute(joinAggPlan(fact, dim), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := tableKey(ref.Table)

	const n = 6
	s := Open(Config{Workers: 4, MaxConcurrent: 4, QueueDepth: n, Reuse: true})
	defer s.Close()

	gate := make(chan struct{})
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Submit(Request{
				Build: func() *engine.Builder { return gatedPlan(fact, gate) },
			})
		}(i)
	}
	// All identical plans fingerprint alike: one submission leads, the rest
	// park on the flight before ever taking an admission slot.
	waitFor(t, "flight waiters", func() bool { return s.ReuseStats().FlightWaits >= n-1 })
	close(gate)
	wg.Wait()

	wantGated := tableKey(mustExecute(t, gatedPlan(fact, gate)))
	hits := int64(0)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if got := tableKey(resps[i].Table); got != wantGated {
			t.Errorf("query %d: result differs from sequential reference", i)
		}
		if resps[i].Run.Reuse().Hit {
			hits++
		}
	}
	if hits < n-1 {
		t.Errorf("%d of %d queries hit the cache, want at least %d", hits, n, n-1)
	}

	// A different (ungated) query still matches its own reference through the
	// same session, warm or cold.
	r, err := s.Submit(Request{Build: func() *engine.Builder { return joinAggPlan(fact, dim) }})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableKey(r.Table); got != want {
		t.Error("join-agg result differs from sequential reference")
	}

	ctr := s.ReuseStats()
	if ctr.FlightLeaders == 0 || ctr.FlightWaits < n-1 {
		t.Errorf("flight counters = %+v", ctr)
	}
	if ctr.Pins != 0 {
		t.Errorf("%d cache pins outstanding after drain", ctr.Pins)
	}
	if live := s.Live(); live != 0 {
		t.Errorf("global gauge %d bytes after drain, want 0", live)
	}
	if p := s.PendingPartials(); p != 0 {
		t.Errorf("%d partial blocks leaked", p)
	}
}

func mustExecute(t *testing.T, b *engine.Builder) *storage.Table {
	t.Helper()
	res, err := engine.Execute(b, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Table
}

// TestReuseFaultedFillLeavesNoEntry fails a cold query with a rate-1.0
// injected fault and checks the cache holds no partial entry afterwards; the
// identical query then runs cold, succeeds, and fills, and a third hits.
func TestReuseFaultedFillLeavesNoEntry(t *testing.T) {
	fact, dim := serveFixture()
	s := Open(Config{Workers: 2, MaxConcurrent: 2, QueueDepth: 4, Reuse: true})
	defer s.Close()

	inj := faults.New(faults.Config{
		Seed:  3,
		Rates: map[faults.Site]float64{faults.BlockMaterialize: 1},
		Kinds: []faults.Kind{faults.KindError},
	})
	if _, err := s.Submit(Request{
		Build:  func() *engine.Builder { return joinAggPlan(fact, dim) },
		Faults: inj,
	}); err == nil {
		t.Fatal("rate-1.0 faulted run did not fail")
	}
	if ctr := s.ReuseStats(); ctr.Entries != 0 {
		t.Fatalf("failed fill left %d cache entries", ctr.Entries)
	}
	if live := s.Live(); live != 0 {
		t.Fatalf("failed run leaked %d live bytes", live)
	}

	cold, err := s.Submit(Request{Build: func() *engine.Builder { return joinAggPlan(fact, dim) }})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Run.Reuse().Hit {
		t.Error("query after the failed fill hit a cache that should be empty")
	}
	warm, err := s.Submit(Request{Build: func() *engine.Builder { return joinAggPlan(fact, dim) }})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Run.Reuse().Hit {
		t.Error("third run missed the filled cache")
	}
	if tableKey(cold.Table) != tableKey(warm.Table) {
		t.Error("warm result differs from cold result")
	}
	if ctr := s.ReuseStats(); ctr.Pins != 0 {
		t.Errorf("%d cache pins outstanding", ctr.Pins)
	}
}

// TestReuseDisabledSessionHasNoCache pins the default-off contract.
func TestReuseDisabledSessionHasNoCache(t *testing.T) {
	fact, dim := serveFixture()
	s := Open(Config{Workers: 2, MaxConcurrent: 2})
	defer s.Close()
	r, err := s.Submit(Request{Build: func() *engine.Builder { return joinAggPlan(fact, dim) }})
	if err != nil {
		t.Fatal(err)
	}
	if r.Run.Reuse().Hit {
		t.Error("cache hit on a session without a cache")
	}
	if ctr := s.ReuseStats(); ctr != (reuse.Counters{}) {
		t.Errorf("ReuseStats non-zero without a cache: %+v", ctr)
	}
}
