package engine

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/reuse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// Reuse integration: before a plan runs, the engine probes the cross-query
// result cache with the plan's subtree fingerprints. A hit splices a scan of
// the pinned cached block set in place of the whole matched subtree — the
// pruned operators are swapped for inert placeholders, their edges dropped,
// and the scan re-feeds the surviving consumers over the same edges (same
// ToInput, same UoT), so downstream of the splice point the schedule is the
// one the plan would have had. A miss leaves the plan alone but may attach
// capture taps to interior nodes (and always offers the root result) so the
// work the run does anyway fills the cache for later queries.

// prunedOp stands in for an operator removed by a hit-splice. It has no
// edges, produces no work orders, and finishes immediately. If the pruned
// operator was registered as a scalar-slot provider, the placeholder
// publishes a dummy scalar: the slice of the plan that consumed that slot
// was pruned with it (the splice-safety check guarantees no edge escapes the
// pruned region), so the value is never read — but the scheduler insists
// every registered provider produce one.
type prunedOp struct {
	core.Base
	name string
}

func (o *prunedOp) Name() string                      { return o.name }
func (o *prunedOp) NumInputs() int                    { return 0 }
func (o *prunedOp) ScalarValue() (types.Datum, bool)  { return types.NewInt64(0), true }

// outSchemer is the operator output-schema hook (Select/Probe/Agg/Sort).
type outSchemer interface{ OutSchema() *storage.Schema }

// reuseTap records one capture operator attached to a fingerprinted
// interior node, to be offered to the cache after a successful run.
type reuseTap struct {
	op   *exec.CaptureOp
	fp   reuse.Fingerprint
	deps []reuse.Dep
	ops  int
}

// reuseState carries the engine's per-execution reuse bookkeeping from plan
// surgery to post-run finalization.
type reuseState struct {
	cache  *reuse.Cache
	pinned []*reuse.Entry // hit entries spliced into the plan; unpinned at end

	hit        bool
	splicedOps int64
	hitBytes   int64

	taps []reuseTap

	rootOK   bool
	rootFP   reuse.Fingerprint
	rootDeps []reuse.Dep
	rootOps  int
}

// maxReuseTaps bounds capture taps per run: each tap copies its node's full
// output, so the cold-run tax is limited to the two largest cacheable
// subtrees.
const maxReuseTaps = 2

// prepareReuse fingerprints the plan, splices cached results in, and
// attaches capture taps. Returns nil when reuse is off or the plan is
// outside the fingerprint machinery (partitioned plans).
func prepareReuse(b *Builder, opts Options) *reuseState {
	if opts.Reuse == nil {
		return nil
	}
	p := b.plan
	a, ok := reuse.Analyze(p)
	if !ok {
		return nil
	}
	rs := &reuseState{cache: opts.Reuse}
	scalarProvider := make(map[core.OpID]bool, len(p.ScalarSlots))
	for _, id := range p.ScalarSlots {
		scalarProvider[id] = true
	}

	// Root probe: the whole plan's result. A hit serves the query entirely
	// from the cache — one scan feeding the collect sink.
	if a.RootOK && !scalarProvider[a.Root] {
		fp := a.FP[a.Root]
		if e := rs.cache.Lookup(fp); e != nil {
			if spliceOK(p, a.Root, e.Table()) {
				rs.pinned = append(rs.pinned, e)
				rs.hit = true
				rs.splicedOps += int64(spliceCachedScan(p, a, a.Root, e.Table()))
				rs.hitBytes += e.Bytes()
				return rs // nothing left to tap — the plan is one scan now
			}
			e.Release()
		} else {
			rs.rootOK = true
			rs.rootFP = fp
			rs.rootDeps = a.Deps[a.Root]
			rs.rootOps = a.Ops[a.Root]
		}
	}

	// Interior candidates: fingerprintable aggregation nodes (the classic
	// reusable materialization point — small output, expensive subtree),
	// largest subtree first.
	var cands []core.OpID
	for i := range p.Ops {
		id := core.OpID(i)
		if _, isAgg := p.Ops[i].(*exec.AggOp); !isAgg || id == a.Root {
			continue
		}
		if scalarProvider[id] || !a.Spliceable(id) {
			continue
		}
		if !tapSafe(p, id) {
			continue
		}
		cands = append(cands, id)
	}
	for i := 0; i < len(cands); i++ { // selection sort: candidate lists are tiny
		best := i
		for j := i + 1; j < len(cands); j++ {
			if a.Ops[cands[j]] > a.Ops[cands[best]] {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}

	var splicedRegion map[core.OpID]bool
	for _, id := range cands {
		if splicedRegion != nil && splicedRegion[id] {
			continue
		}
		fp := a.FP[id]
		if splicedRegion == nil {
			if e := rs.cache.Lookup(fp); e != nil {
				if spliceOK(p, id, e.Table()) {
					splicedRegion = a.Reach(id)
					rs.pinned = append(rs.pinned, e)
					rs.hit = true
					rs.splicedOps += int64(spliceCachedScan(p, a, id, e.Table()))
					rs.hitBytes += e.Bytes()
					continue
				}
				e.Release()
			}
		} else if rs.cache.Has(fp) {
			continue
		}
		if len(rs.taps) >= maxReuseTaps || dupTap(rs.taps, fp) {
			continue
		}
		os, ok := p.Ops[id].(outSchemer)
		if !ok {
			continue
		}
		cap := exec.NewCapture(os.OutSchema(), rs.cache.MaxEntryBytes())
		capID := exec.AddOp(p, cap)
		p.Pipe(id, capID, 0, 1)
		if p.MaxDOP == nil {
			p.MaxDOP = make(map[core.OpID]int)
		}
		p.MaxDOP[capID] = 1
		rs.taps = append(rs.taps, reuseTap{op: cap, fp: fp, deps: a.Deps[id], ops: a.Ops[id]})
	}
	return rs
}

func dupTap(taps []reuseTap, fp reuse.Fingerprint) bool {
	for _, t := range taps {
		if t.fp == fp {
			return true
		}
	}
	return false
}

// tapSafe rejects nodes whose output feeds an adopting consumer: adding a
// non-adopting tap to such a producer would make the scheduler refcount
// blocks the adopter owns outright, double-releasing them. (Only the collect
// sink adopts today, and it is only fed by the root, but the check is
// structural.)
func tapSafe(p *core.Plan, id core.OpID) bool {
	fed := false
	for _, e := range p.Edges {
		if e.Kind != core.Pipelined || e.From != id {
			continue
		}
		fed = true
		if p.Ops[e.To].AdoptsInputs() {
			return false
		}
	}
	return fed
}

// spliceOK is the defensive gate before surgery: the pinned table must carry
// a scannable schema that matches the node being replaced. The fingerprint
// already guarantees the match (the output schema is part of every Canon);
// this catches cache corruption rather than trusting it.
func spliceOK(p *core.Plan, id core.OpID, t *storage.Table) bool {
	if t == nil || t.Schema() == nil || t.Schema().NumCols() == 0 {
		return false
	}
	if os, ok := p.Ops[id].(outSchemer); ok {
		return os.OutSchema().String() == t.Schema().String()
	}
	return false
}

// spliceCachedScan replaces id's subtree with a scan of the cached table:
// every operator in the subtree's backward closure becomes a placeholder,
// edges interior to the region are dropped, and id's outgoing edges are
// re-pointed to originate from the new scan. Returns the number of
// operators pruned.
func spliceCachedScan(p *core.Plan, a *reuse.Plan, id core.OpID, t *storage.Table) int {
	region := a.Reach(id)
	for opID := range region {
		p.Ops[opID] = &prunedOp{name: "pruned:" + p.Ops[opID].Name()}
	}
	sch := t.Schema()
	projs := make([]expr.Expr, sch.NumCols())
	names := make([]string, sch.NumCols())
	for i := range projs {
		projs[i] = expr.ColIdx(sch, i)
		names[i] = sch.Col(i).Name
	}
	scan := exec.NewSelect(exec.SelectSpec{
		Name: "reuse-scan", Base: t, Proj: projs, ProjNames: names,
	})
	scanID := exec.AddOp(p, scan)
	kept := make([]core.Edge, 0, len(p.Edges))
	for _, e := range p.Edges {
		switch {
		case e.From == id && !region[e.To]:
			// The spliced node's outgoing edges survive with the scan as
			// their new producer; ToInput and UoT are untouched, so the
			// consumer's schedule shape is preserved.
			e.From = scanID
			kept = append(kept, e)
		case region[e.From] || region[e.To]:
			// Interior to the pruned region (Reach guarantees no edge
			// enters the region from outside).
		default:
			kept = append(kept, e)
		}
	}
	p.Edges = kept
	return len(region)
}

// finalize settles the run's reuse bookkeeping: pinned hit entries are
// released, and on success the capture taps and the root result are offered
// to the cache. Captured block sets that are admitted leave the run's pool
// accounting (Disown); rejected ones are released back to it.
func (rs *reuseState) finalize(b *Builder, pool *storage.Pool, run *stats.Run, success bool) {
	for _, e := range rs.pinned {
		e.Release()
	}
	u := stats.Reuse{Hit: rs.hit, SplicedOps: rs.splicedOps, HitBytes: rs.hitBytes}
	if success {
		ticks := float64(run.WallTime().Nanoseconds())
		for _, tp := range rs.taps {
			blocks, bytes, _ := tp.op.Take()
			if blocks == nil {
				continue // overflowed or abandoned
			}
			t := storage.NewTable("reuse:"+tp.fp.String(), blocks[0].Schema(),
				blocks[0].Format(), blocks[0].AllocBytes())
			for _, blk := range blocks {
				t.Append(blk)
			}
			if rs.cache.Admit(tp.fp, t, tp.deps, ticks, tp.ops) {
				pool.Disown(bytes)
				u.Captured++
				u.BytesPinned += bytes
			} else {
				for _, blk := range blocks {
					pool.Release(blk)
				}
				u.CaptureRej++
			}
		}
		if rs.rootOK {
			// The root result is captured for free: the cache shares the
			// client's result table (both sides treat result blocks as
			// immutable, and the engine already disowns them from any
			// shared pool).
			res := b.collect.Result()
			if rs.cache.Admit(rs.rootFP, res, rs.rootDeps, ticks, rs.rootOps) {
				u.Captured++
				u.BytesPinned += res.AllocBytes()
			} else {
				u.CaptureRej++
			}
		}
	}
	run.SetReuse(u)
}
