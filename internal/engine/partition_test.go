package engine

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/types"
)

// buildPartitionedJoinAggPlan mirrors buildJoinAggPlan with the join and the
// aggregation partitioned across `parts` partition-local pipelines.
func buildPartitionedJoinAggPlan(fact, dim *storage.Table, parts int) *Builder {
	b := NewBuilder()
	fs, ds := fact.Schema(), dim.Schema()

	selDim := b.ScanSelect(exec.SelectSpec{
		Name: "sel_dim", Base: dim,
		Proj:      []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")},
		ProjNames: []string{"k", "w"},
	})
	selFact := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Pred:      expr.Ge(expr.C(fs, "v"), expr.Float(10)),
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "grp"), expr.C(fs, "v")},
		ProjNames: []string{"k", "grp", "v"},
	})
	join := b.PartitionedHashJoin(selDim, selFact,
		exec.BuildSpec{Name: "build_dim", KeyCols: []int{0}, Payload: []int{1}, ExpectedRows: 50},
		exec.ProbeSpec{
			Name: "probe_dim", KeyCols: []int{0},
			ProbeProj: []int{1, 2}, BuildProj: []int{0},
			Rename: []string{"grp", "v", "w"},
		}, parts)
	agg := b.PartitionedAgg(join, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(join.Schema, "grp")},
		GroupByNames: []string{"grp"},
		Aggs: []exec.AggSpec{
			{Func: exec.Count, Name: "cnt"},
			{Func: exec.Sum, Arg: expr.C(join.Schema, "v"), Name: "sv"},
		},
	}, parts)
	srt := b.Sort(agg, exec.SortSpec{
		Name:  "sort",
		Terms: []exec.SortTerm{{Key: expr.C(agg.Schema, "grp")}},
	})
	b.Collect(srt)
	return b
}

// TestPartitionedJoinAggEquivalence: the partitioned plan must return exactly
// the unpartitioned plan's results at every fan-out, UoT, and worker count.
func TestPartitionedJoinAggEquivalence(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	for _, parts := range []int{1, 2, 8} {
		for _, uot := range []int{1, 64} {
			for _, workers := range []int{1, 8} {
				label := fmt.Sprintf("parts=%d uot=%d T=%d", parts, uot, workers)
				res, err := Execute(buildPartitionedJoinAggPlan(fact, dim, parts), Options{
					Workers: workers, UoTBlocks: uot, TempBlockBytes: 512,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkJoinAgg(t, res, label)
				if parts > 1 {
					if locks, _, _ := res.Run.Contention(); locks != 0 {
						t.Errorf("%s: partition-local build took %d shard locks, want 0", label, locks)
					}
					rows, fanout, _ := res.Run.ExchangeKernels()
					if rows == 0 || fanout == 0 {
						t.Errorf("%s: exchange counters not recorded (rows=%d fanout=%d)", label, rows, fanout)
					}
				}
			}
		}
	}
}

// TestPartitionedPlanFaultDemotionEquivalence: Repartition faults demote the
// scatter to its reference path mid-run; retried work orders must leave
// results bit-identical.
func TestPartitionedPlanFaultDemotionEquivalence(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	for _, seed := range []uint64{1, 7, 23} {
		inj := faults.New(faults.Config{
			Seed:  seed,
			Rates: map[faults.Site]float64{faults.Repartition: 0.4},
			Kinds: []faults.Kind{faults.KindError},
		})
		res, err := Execute(buildPartitionedJoinAggPlan(fact, dim, 4), Options{
			Workers: 4, UoTBlocks: 1, TempBlockBytes: 512,
			Faults: inj, MaxAttempts: 6,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkJoinAgg(t, res, fmt.Sprintf("faulty seed=%d", seed))
	}
}

// TestPartitionSkewCounterReachesRunStats: a constant join key sends every
// row to one partition; the skew guard's counter must surface in the run.
func TestPartitionSkewCounterReachesRunStats(t *testing.T) {
	db := NewDB(512, storage.ColumnStore)
	tbl := db.CreateTable("skewed", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Int64},
	))
	l := storage.NewLoader(tbl)
	for i := 0; i < 500; i++ {
		l.Append(types.NewInt64(7), types.NewInt64(int64(i)))
	}
	l.Close()

	b := NewBuilder()
	ts := tbl.Schema()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "sel", Base: tbl,
		Proj:      []expr.Expr{expr.C(ts, "k"), expr.C(ts, "v")},
		ProjNames: []string{"k", "v"},
	})
	agg := b.PartitionedAgg(sel, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(sel.Schema, "k")},
		GroupByNames: []string{"k"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "cnt"}},
	}, 4)
	b.Collect(agg)
	res, err := Execute(b, Options{Workers: 4, UoTBlocks: 1, TempBlockBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, skew := res.Run.ExchangeKernels(); skew == 0 {
		t.Fatal("constant-key exchange did not record a PartitionSkew trip")
	}
	rows := Rows(res.Table)
	if len(rows) != 1 || rows[0][1].I != 500 {
		t.Fatalf("skewed aggregation result wrong: %v", rows)
	}
}

// TestPartitionedFallbacks: fan-out 1 and unpartitionable group keys must
// quietly build the ordinary shared-state plan.
func TestPartitionedFallbacks(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	res, err := Execute(buildPartitionedJoinAggPlan(fact, dim, 1), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkJoinAgg(t, res, "parts=1 fallback")
	if rows, _, _ := res.Run.ExchangeKernels(); rows != 0 {
		t.Fatalf("fan-out 1 still built an exchange (%d rows)", rows)
	}
}

// TestSetPartitionsDefault: helpers called with parts == 0 use the builder
// default set by SetPartitions.
func TestSetPartitionsDefault(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	b := NewBuilder()
	b.SetPartitions(4)
	fs := fact.Schema()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "grp"), expr.C(fs, "v")},
		ProjNames: []string{"k", "grp", "v"},
	})
	_ = dim
	agg := b.PartitionedAgg(sel, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(sel.Schema, "grp")},
		GroupByNames: []string{"grp"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "cnt"}},
	}, 0)
	b.Collect(agg)
	res, err := Execute(b, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, _ := res.Run.ExchangeKernels()
	if rows == 0 {
		t.Fatal("SetPartitions default did not partition the aggregation")
	}
	if got := len(Rows(res.Table)); got != 5 {
		t.Fatalf("grouped %d rows, want 5", got)
	}
}
