// Golden-result harness: checked-in SHA-256 checksums of every TPC-H query
// result at SF 0.05, verified across UoT ∈ {1, 4, 64} × {column, row}
// temporary store. Executions run at Workers=1, where the scheduler is fully
// deterministic, so each (query, uot, format) cell is bit-stable; floats are
// encoded with the exact 'x' format so any reassociation or kernel change
// that perturbs a result by even one ULP flips the checksum. Across cells
// float totals may legitimately differ by reassociation (different UoTs
// deliver blocks to aggregations in different groupings), so cross-cell
// agreement is checked with the same relative tolerance the chaos harness
// uses.
//
// Regenerate the golden file after an intentional result change with:
//
//	go test ./internal/engine -run TestGoldenTPCH -update-golden
//
// This lives in package engine_test because it drives the engine through
// internal/tpch, which itself imports internal/engine.
package engine_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_sf005.json from the current results")

const (
	goldenSF   = 0.05
	goldenPath = "testdata/golden_sf005.json"
)

var goldenUoTs = []int{1, 4, 64}

var goldenFormats = []struct {
	name   string
	format storage.Format
}{
	{"column", storage.ColumnStore},
	{"row", storage.RowStore},
}

// encodeRows canonicalizes a result table: each datum is rendered exactly
// (floats in the hex 'x' format preserve all 64 bits), rows are joined and
// sorted so checksums do not depend on result row order.
func encodeRows(rows [][]types.Datum) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var sb strings.Builder
		for j, d := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			switch d.Ty {
			case types.Float64:
				sb.WriteString(strconv.FormatFloat(d.F, 'x', -1, 64))
			case types.Char:
				sb.Write(d.B)
			default: // Int64, Date
				sb.WriteString(strconv.FormatInt(d.I, 10))
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func checksum(rows [][]types.Datum) string {
	h := sha256.New()
	for _, line := range encodeRows(rows) {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// approxEqualRows compares two canonicalized results with the chaos
// harness's relative tolerance on float fields and exact equality elsewhere.
func approxEqualRows(a, b [][]types.Datum) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts differ: %d vs %d", len(a), len(b))
	}
	ea, eb := encodeRows(a), encodeRows(b)
	for i := range ea {
		if ea[i] == eb[i] {
			continue
		}
		fa, fb := strings.Split(ea[i], "|"), strings.Split(eb[i], "|")
		if len(fa) != len(fb) {
			return fmt.Errorf("row %d arity differs", i)
		}
		for j := range fa {
			if fa[j] == fb[j] {
				continue
			}
			va, erra := strconv.ParseFloat(fa[j], 64)
			vb, errb := strconv.ParseFloat(fb[j], 64)
			if erra != nil || errb != nil {
				return fmt.Errorf("row %d field %d differs exactly: %q vs %q", i, j, fa[j], fb[j])
			}
			diff := math.Abs(va - vb)
			scale := math.Max(1, math.Max(math.Abs(va), math.Abs(vb)))
			if diff/scale > 1e-6 {
				return fmt.Errorf("row %d field %d differs beyond tolerance: %v vs %v", i, j, va, vb)
			}
		}
	}
	return nil
}

func goldenKey(q, uot int, format string) string {
	return fmt.Sprintf("Q%02d/uot=%d/%s", q, uot, format)
}

type goldenCell struct {
	Rows     int    `json:"rows"`
	Checksum string `json:"sha256"`
}

func loadGolden(t *testing.T) map[string]goldenCell {
	t.Helper()
	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	var m map[string]goldenCell
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	return m
}

// TestGoldenTPCH is the full golden matrix: all TPC-H queries × UoT ∈
// {1,4,64} × {column,row} temporary store, one table-driven test. In -short
// mode it drops to SF 0.01 and skips the checksum comparison (the golden
// file is SF 0.05), still verifying cross-configuration agreement.
func TestGoldenTPCH(t *testing.T) {
	sf := goldenSF
	if testing.Short() {
		sf = 0.01
	}
	var golden map[string]goldenCell
	if !testing.Short() && !*updateGolden {
		golden = loadGolden(t)
	}
	updated := map[string]goldenCell{}

	d := tpch.Load(sf, 128<<10, storage.ColumnStore)
	for _, fmtCase := range goldenFormats {
		for _, q := range tpch.Numbers() {
			// The uot=1 run is the reference result for cross-UoT agreement.
			var ref [][]types.Datum
			for _, uot := range goldenUoTs {
				name := goldenKey(q, uot, fmtCase.name)
				b, err := tpch.Build(d, q, tpch.QueryOpts{})
				if err != nil {
					t.Fatalf("%s: build: %v", name, err)
				}
				res, err := engine.Execute(b, engine.Options{
					Workers: 1, UoTBlocks: uot,
					TempBlockBytes: 128 << 10, TempFormat: fmtCase.format,
				})
				if err != nil {
					t.Fatalf("%s: execute: %v", name, err)
				}
				rows := engine.Rows(res.Table)
				if ref == nil {
					ref = rows
				} else if err := approxEqualRows(ref, rows); err != nil {
					t.Errorf("%s: disagrees with uot=%d result: %v", name, goldenUoTs[0], err)
				}
				cell := goldenCell{Rows: len(rows), Checksum: checksum(rows)}
				updated[name] = cell
				if golden != nil {
					want, ok := golden[name]
					if !ok {
						t.Errorf("%s: no golden entry (regenerate with -update-golden)", name)
					} else if cell != want {
						t.Errorf("%s: result drifted: got %d rows %s, want %d rows %s",
							name, cell.Rows, cell.Checksum[:12], want.Rows, want.Checksum[:12])
					}
				}
			}
		}
	}

	if *updateGolden {
		if testing.Short() {
			t.Fatal("-update-golden must run without -short (golden file is SF 0.05)")
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(updated, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(updated))
	}
}

// TestGoldenSortFastPath guards that the golden matrix actually exercises
// the normalized-key sort: every TPC-H ORDER BY is over plain output
// columns, so every sort operator in every plan must be on the fast path.
// Combined with TestGoldenTPCH's unchanged checksums, this is the "fast sort
// is bit-identical to the reference results" assertion.
func TestGoldenSortFastPath(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	sorts := 0
	for _, q := range tpch.Numbers() {
		b, err := tpch.Build(d, q, tpch.QueryOpts{})
		if err != nil {
			t.Fatalf("Q%02d: build: %v", q, err)
		}
		for _, op := range b.Plan().Ops {
			if s, ok := op.(*exec.SortOp); ok {
				sorts++
				if !s.FastPath() {
					t.Errorf("Q%02d: sort %q fell back to the reference path", q, s.Name())
				}
			}
		}
	}
	if sorts == 0 {
		t.Fatal("no sort operators found in any TPC-H plan")
	}
}

// TestGoldenChecksumDeterminism pins the harness itself: the same execution
// repeated must hash identically (Workers=1 is the determinism anchor the
// golden file relies on).
func TestGoldenChecksumDeterminism(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	var sums []string
	for i := 0; i < 2; i++ {
		b, err := tpch.Build(d, 1, tpch.QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(b, engine.Options{Workers: 1, UoTBlocks: 4, TempBlockBytes: 128 << 10})
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, checksum(engine.Rows(res.Table)))
	}
	if sums[0] != sums[1] {
		t.Fatalf("repeated Workers=1 executions hash differently: %s vs %s", sums[0], sums[1])
	}
}
