package engine

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/storage"
)

// spillOpts returns execution options with a spill tier whose threshold of 1
// byte makes every cooled block spill-eligible — the maximal-traffic setting
// the equivalence and crash tests want.
func spillOpts(t *testing.T, workers int) Options {
	t.Helper()
	return Options{
		Workers: workers, UoTBlocks: 2, TempBlockBytes: 4 << 10,
		SpillDir: t.TempDir(), SpillThreshold: 1,
	}
}

// assertSpillDirEmpty verifies the per-run spill subdirectory (and with it
// every extent file, orphaned or not) was removed when Execute returned.
func assertSpillDirEmpty(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill parent dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill files leaked past Execute: %d entries left in %s", len(entries), dir)
	}
}

// TestSpillGoldenEquivalence: the same plan run entirely in RAM and run with
// a spill tier evicting every cooled block must produce identical results —
// eviction, codec round-trips, and fault-in reordering are storage mechanics,
// not semantics. The spilled run must show real two-way disk traffic, leave
// no live extent bytes, and remove its spill directory.
func TestSpillGoldenEquivalence(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 4<<10)
	base, _ := mustRows(t, buildJoinAggPlan(fact, dim), Options{
		Workers: 1, UoTBlocks: 1, TempBlockBytes: 4 << 10,
	}, "in-RAM baseline")
	if len(base) == 0 {
		t.Fatal("baseline is empty")
	}

	for _, workers := range []int{1, 4} {
		opts := spillOpts(t, workers)
		rows, res := mustRows(t, buildJoinAggPlan(fact, dim), opts, "spilled")
		if !sameRows(base, rows) {
			t.Fatalf("workers=%d: spilled result differs from in-RAM baseline", workers)
		}
		sp := res.Run.Spill()
		if sp.BlocksOut == 0 || sp.BlocksIn == 0 {
			t.Fatalf("workers=%d: no two-way spill traffic (out=%d in=%d); equivalence is vacuous", workers, sp.BlocksOut, sp.BlocksIn)
		}
		if sp.BytesOut == 0 || sp.BytesIn == 0 || sp.DiskPeak == 0 {
			t.Fatalf("workers=%d: byte counters inconsistent: %+v", workers, sp)
		}
		if sp.DiskLive != 0 {
			t.Fatalf("workers=%d: %d extent bytes still live after the run", workers, sp.DiskLive)
		}
		if r := res.Run.Robust(); r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
			t.Fatalf("workers=%d: leaks after spilled run: %+v", workers, r)
		}
		assertSpillDirEmpty(t, opts.SpillDir)
	}
}

// TestSpillCrashConsistency is the crash/fault satellite: a fault — error or
// panic — injected mid-spill at the spill_write site on every eviction
// attempt demotes the eviction to stall-and-retry. No half-written extent
// record is ever visible, the block stays resident and is re-derived from
// RAM on delivery, and results stay golden-identical. Injected read faults at
// spill_read exercise the bounded fault-in retry the same way.
func TestSpillCrashConsistency(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 4<<10)
	base, _ := mustRows(t, buildJoinAggPlan(fact, dim), Options{
		Workers: 1, UoTBlocks: 1, TempBlockBytes: 4 << 10,
	}, "fault-free baseline")

	cases := []struct {
		name string
		site faults.Site
		kind faults.Kind
		rate float64
	}{
		// Rate-1.0 write faults: every eviction attempt dies mid-spill, so
		// nothing must ever reach disk and everything re-derives from RAM.
		{"write-error", faults.SpillWrite, faults.KindError, 1},
		{"write-panic", faults.SpillWrite, faults.KindPanic, 1},
		// Sub-1.0 read faults: fault-ins stall and retry within the bound
		// (rate^8 makes exhausting it vanishingly unlikely).
		{"read-error", faults.SpillRead, faults.KindError, 0.15},
		{"read-panic", faults.SpillRead, faults.KindPanic, 0.15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faults.New(faults.Config{
				Seed:  11,
				Rates: map[faults.Site]float64{tc.site: tc.rate},
				Kinds: []faults.Kind{tc.kind},
			})
			opts := spillOpts(t, 2)
			opts.Faults = inj
			opts.MaxAttempts = 10
			opts.RetryBackoff = time.Microsecond
			rows, res := mustRows(t, buildJoinAggPlan(fact, dim), opts, "faulted spill")
			if !sameRows(base, rows) {
				t.Fatal("faulted spill run differs from fault-free baseline")
			}
			sp := res.Run.Spill()
			switch tc.site {
			case faults.SpillWrite:
				if sp.WriteFaults == 0 {
					t.Fatal("spill_write site never fired")
				}
				if sp.BlocksOut != 0 {
					t.Fatalf("%d blocks reached disk despite rate-1.0 write faults", sp.BlocksOut)
				}
			case faults.SpillRead:
				if sp.ReadFaults == 0 {
					t.Fatal("spill_read site never fired")
				}
				if sp.BlocksIn == 0 {
					t.Fatal("no fault-ins despite spill traffic; retry path untested")
				}
			}
			if sp.DiskLive != 0 {
				t.Fatalf("%d extent bytes live after the run", sp.DiskLive)
			}
			if r := res.Run.Robust(); r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
				t.Fatalf("leaks after faulted spill run: %+v", r)
			}
			assertSpillDirEmpty(t, opts.SpillDir)
		})
	}
}

// TestSpillPersistentReadFaultFailsCleanly: when every fault-in attempt
// faults (rate 1.0), the retry bound is exhausted, the delivery is abandoned,
// and the run fails with the spill error — but nothing leaks: edge-buffered
// and refcounted blocks are reclaimed, disk records freed, and the spill
// directory removed on the failure path too.
func TestSpillPersistentReadFaultFailsCleanly(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 4<<10)
	inj := faults.New(faults.Config{
		Seed:  3,
		Rates: map[faults.Site]float64{faults.SpillRead: 1},
		Kinds: []faults.Kind{faults.KindError},
	})
	opts := spillOpts(t, 2)
	opts.Faults = inj
	_, err := Execute(buildJoinAggPlan(fact, dim), opts)
	if err == nil {
		t.Fatal("run succeeded despite rate-1.0 persistent read faults")
	}
	if !strings.Contains(err.Error(), "spill fault-in failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	assertSpillDirEmpty(t, opts.SpillDir)
}
