// Metamorphic property test: a randomized, seeded plan over int64-only data
// must produce the exact same result under every execution configuration —
// worker count, UoT, and temporary block size are scheduling knobs, not
// semantics. Integer-only plans make the equality exact (no float
// reassociation), so any divergence is a real scheduler/kernel bug. On a
// failure the harness shrinks the failing configuration toward the base
// config one field at a time and reports the minimal failing one.
package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/reuse"
	"repro/internal/storage"
	"repro/internal/types"
)

// mmCfg is one execution configuration under test.
type mmCfg struct {
	Workers int
	UoT     int
	Temp    int
	// Parts > 1 rebuilds the plan with a partitioned join and aggregation
	// (exchange + per-partition clones); like the other fields it must not
	// change results — partitioning is a scheduling choice, not semantics.
	Parts int
	// Adaptive attaches the per-edge adaptive UoT controller: mid-run UoT
	// changes regroup deliveries but must never change results (int64-only
	// data makes the equality exact).
	Adaptive bool
	// Spill, when positive, attaches a disk-backed spill tier with this
	// eviction threshold in bytes (1 = evict every cooled block). Round-trips
	// through the block codec and fault-in reordering are pure storage
	// mechanics, so results must be bit-identical to the in-RAM base run.
	Spill int64
	// Reuse runs the plan twice through a fresh cross-query result cache and
	// reports the warm (cache-served) result: splicing a cached subtree in
	// place of its recomputation must never change a single bit.
	Reuse bool
}

func (c mmCfg) String() string {
	uot := fmt.Sprint(c.UoT)
	if c.UoT == core.UoTTable {
		uot = "table"
	}
	return fmt.Sprintf("workers=%d uot=%s temp=%d parts=%d adaptive=%v spill=%d reuse=%v",
		c.Workers, uot, c.Temp, c.Parts, c.Adaptive, c.Spill, c.Reuse)
}

var mmBase = mmCfg{Workers: 1, UoT: 1, Temp: 16 << 10}

// mmVariants are the configurations checked against the base: each scheduling
// dimension alone, plus combined far-corner configs that give the shrinker
// something to reduce.
var mmVariants = []mmCfg{
	{Workers: 2, UoT: 1, Temp: 16 << 10},
	{Workers: 7, UoT: 1, Temp: 16 << 10},
	{Workers: 1, UoT: 3, Temp: 16 << 10},
	{Workers: 1, UoT: 64, Temp: 16 << 10},
	{Workers: 1, UoT: core.UoTTable, Temp: 16 << 10},
	{Workers: 1, UoT: 1, Temp: 4 << 10},
	{Workers: 1, UoT: 1, Temp: 128 << 10},
	{Workers: 7, UoT: core.UoTTable, Temp: 4 << 10},
	{Workers: 2, UoT: 3, Temp: 128 << 10},
	{Workers: 1, UoT: 1, Temp: 16 << 10, Parts: 2},
	{Workers: 7, UoT: 1, Temp: 16 << 10, Parts: 8},
	{Workers: 4, UoT: 64, Temp: 4 << 10, Parts: 4},
	{Workers: 7, UoT: core.UoTTable, Temp: 16 << 10, Parts: 2},
	{Workers: 1, UoT: 1, Temp: 16 << 10, Adaptive: true},
	{Workers: 7, UoT: 1, Temp: 4 << 10, Adaptive: true},
	{Workers: 4, UoT: 16, Temp: 16 << 10, Parts: 4, Adaptive: true},
	{Workers: 1, UoT: 3, Temp: 16 << 10, Spill: 1},
	{Workers: 4, UoT: 16, Temp: 4 << 10, Spill: 32 << 10},
	{Workers: 2, UoT: 8, Temp: 16 << 10, Parts: 2, Spill: 8 << 10},
	{Workers: 7, UoT: 64, Temp: 16 << 10, Adaptive: true, Spill: 1},
	{Workers: 1, UoT: 1, Temp: 16 << 10, Reuse: true},
	{Workers: 7, UoT: 16, Temp: 4 << 10, Reuse: true},
	{Workers: 2, UoT: 3, Temp: 16 << 10, Parts: 2, Reuse: true},
	{Workers: 4, UoT: 64, Temp: 16 << 10, Adaptive: true, Reuse: true},
}

// mmSpec is a fully-resolved random plan: data shape and operator choices.
// Rebuilding from the spec is deterministic, so every execution constructs a
// fresh plan over the same tables.
type mmSpec struct {
	seed     int64
	factRows int
	dimKeys  int
	keySpace int
	groups   int
	pred     int // 0 none, 1 k<c, 2 g>=c, 3 k<c && g!=c2
	predC    int64
	predC2   int64
	join     int  // 0 none, 1 inner, 2 semi, 3 anti
	sortDesc bool // ORDER BY g DESC
	sortLim  int  // LIMIT (0 = none); g is unique per group, so any cut is deterministic
	aggs     []exec.AggFunc
	fact     *storage.Table
	dim      *storage.Table
}

func genSpec(seed int64) *mmSpec {
	r := rand.New(rand.NewSource(seed))
	s := &mmSpec{
		seed:     seed,
		factRows: 200 + r.Intn(800),
		keySpace: 20 + r.Intn(80),
		groups:   2 + r.Intn(6),
		pred:     r.Intn(4),
		join:     r.Intn(4),
	}
	s.dimKeys = 1 + r.Intn(s.keySpace)
	s.predC = int64(r.Intn(s.keySpace))
	s.predC2 = int64(r.Intn(s.groups))
	// Random ordering direction and, half the time, a LIMIT: the sort key is
	// the (unique) group key, so the truncated row set is configuration-
	// independent even though encodeRows canonicalization is order-blind.
	s.sortDesc = r.Intn(2) == 1
	if r.Intn(2) == 1 {
		s.sortLim = 1 + r.Intn(s.groups)
	}
	// 1-3 aggregates over v, plus an unconditional count.
	funcs := []exec.AggFunc{exec.Sum, exec.Min, exec.Max}
	r.Shuffle(len(funcs), func(i, j int) { funcs[i], funcs[j] = funcs[j], funcs[i] })
	s.aggs = append([]exec.AggFunc{exec.Count}, funcs[:1+r.Intn(3)]...)

	// Base tables: fact(k, g, v) and dim(k, w), int64 only. Small blocks so
	// UoT grouping has real work to do.
	db := engine.NewDB(512, storage.ColumnStore)
	fact := db.CreateTable("mm_fact", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "g", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Int64},
	))
	lf := storage.NewLoader(fact)
	for i := 0; i < s.factRows; i++ {
		lf.Append(
			types.NewInt64(int64(r.Intn(s.keySpace))),
			types.NewInt64(int64(r.Intn(s.groups))),
			types.NewInt64(int64(r.Intn(2001)-1000)),
		)
	}
	lf.Close()
	dim := db.CreateTable("mm_dim", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "w", Type: types.Int64},
	))
	ld := storage.NewLoader(dim)
	seen := map[int]bool{}
	for len(seen) < s.dimKeys {
		k := r.Intn(s.keySpace)
		if seen[k] {
			continue
		}
		seen[k] = true
		ld.Append(types.NewInt64(int64(k)), types.NewInt64(int64(r.Intn(100))))
	}
	ld.Close()
	s.fact, s.dim = fact, dim
	return s
}

// build constructs a fresh plan from the spec; parts > 1 uses the
// partitioned join and aggregation helpers instead of the shared-state ones.
func (s *mmSpec) build(parts int) *engine.Builder {
	b := engine.NewBuilder()
	fs, ds := s.fact.Schema(), s.dim.Schema()

	var pred expr.Expr
	switch s.pred {
	case 1:
		pred = expr.Lt(expr.C(fs, "k"), expr.Int(s.predC))
	case 2:
		pred = expr.Ge(expr.C(fs, "g"), expr.Int(s.predC2))
	case 3:
		pred = expr.And(
			expr.Lt(expr.C(fs, "k"), expr.Int(s.predC)),
			expr.Ne(expr.C(fs, "g"), expr.Int(s.predC2)),
		)
	}
	selFact := b.ScanSelect(exec.SelectSpec{
		Name: "mm_sel", Base: s.fact, Pred: pred,
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "g"), expr.C(fs, "v")},
		ProjNames: []string{"k", "g", "v"},
	})

	aggInput := selFact
	if s.join != 0 {
		selDim := b.ScanSelect(exec.SelectSpec{
			Name: "mm_sel_dim", Base: s.dim,
			Proj: []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")}, ProjNames: []string{"k", "w"},
		})
		var jt exec.JoinType
		var payload, buildProj []int
		rename := []string{"k", "g", "v"}
		switch s.join {
		case 1:
			jt = exec.Inner
			payload, buildProj = []int{1}, []int{0}
			rename = []string{"k", "g", "v", "w"}
		case 2:
			jt = exec.LeftSemi
		case 3:
			jt = exec.LeftAnti
		}
		bspec := exec.BuildSpec{
			Name: "mm_build", KeyCols: []int{0}, Payload: payload, ExpectedRows: s.dimKeys,
		}
		pspec := exec.ProbeSpec{
			Name: "mm_probe", KeyCols: []int{0}, JoinType: jt,
			ProbeProj: []int{0, 1, 2}, BuildProj: buildProj, Rename: rename,
		}
		if parts > 1 {
			aggInput = b.PartitionedHashJoin(selDim, selFact, bspec, pspec, parts)
		} else {
			bld, _ := b.Build(selDim, bspec)
			aggInput = b.Probe(selFact, bld, pspec)
		}
	}

	var aggSpecs []exec.AggSpec
	for i, f := range s.aggs {
		spec := exec.AggSpec{Func: f, Name: fmt.Sprintf("a%d", i)}
		if f != exec.Count {
			spec.Arg = expr.C(aggInput.Schema, "v")
		}
		aggSpecs = append(aggSpecs, spec)
	}
	aggSpec := exec.AggOpSpec{
		Name:         "mm_agg",
		GroupBy:      []expr.Expr{expr.C(aggInput.Schema, "g")},
		GroupByNames: []string{"g"},
		Aggs:         aggSpecs,
	}
	agg := b.PartitionedAgg(aggInput, aggSpec, parts)
	srt := b.Sort(agg, exec.SortSpec{
		Name:  "mm_sort",
		Terms: []exec.SortTerm{{Key: expr.C(agg.Schema, "g"), Desc: s.sortDesc}},
		Limit: s.sortLim,
	})
	b.Collect(srt)
	return b
}

// runEncoded executes the spec under cfg and returns the canonicalized
// result (int64-only, so equality is exact).
func (s *mmSpec) runEncoded(cfg mmCfg) (string, error) {
	opts := engine.Options{
		Workers: cfg.Workers, UoTBlocks: cfg.UoT, TempBlockBytes: cfg.Temp,
		AdaptiveUoT: cfg.Adaptive,
	}
	if cfg.Spill > 0 {
		dir, err := os.MkdirTemp("", "mm-spill-")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
		opts.SpillDir, opts.SpillThreshold = dir, cfg.Spill
	}
	if cfg.Reuse {
		// Cold fill, then report the warm run: the result the cache serves is
		// the one compared against every other configuration. (Partitioned
		// plans bypass the cache; the warm run then just recomputes.)
		cache := reuse.New(reuse.Config{Budget: 16 << 20})
		opts.Reuse = cache
		if _, err := engine.Execute(s.build(cfg.Parts), opts); err != nil {
			return "", err
		}
	}
	res, err := engine.Execute(s.build(cfg.Parts), opts)
	if err != nil {
		return "", err
	}
	return strings.Join(encodeRows(engine.Rows(res.Table)), "\n"), nil
}

// shrinkConfig reduces a failing configuration toward the base one field at a
// time, keeping each reduction that still fails, and returns the minimal
// failing config.
func (s *mmSpec) shrinkConfig(t *testing.T, failing mmCfg, want string) mmCfg {
	t.Helper()
	cur := failing
	for changed := true; changed; {
		changed = false
		for _, reduce := range []func(mmCfg) mmCfg{
			func(c mmCfg) mmCfg { c.Workers = mmBase.Workers; return c },
			func(c mmCfg) mmCfg { c.UoT = mmBase.UoT; return c },
			func(c mmCfg) mmCfg { c.Temp = mmBase.Temp; return c },
			func(c mmCfg) mmCfg { c.Parts = mmBase.Parts; return c },
			func(c mmCfg) mmCfg { c.Adaptive = mmBase.Adaptive; return c },
			func(c mmCfg) mmCfg { c.Spill = mmBase.Spill; return c },
			func(c mmCfg) mmCfg { c.Reuse = mmBase.Reuse; return c },
		} {
			trial := reduce(cur)
			if trial == cur {
				continue
			}
			got, err := s.runEncoded(trial)
			if err == nil && got == want {
				continue // reduction repaired it; keep the field
			}
			cur = trial
			changed = true
		}
	}
	return cur
}

func TestMetamorphicConfigInvariance(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := genSpec(seed)
			want, err := s.runEncoded(mmBase)
			if err != nil {
				t.Fatalf("base config %v: %v", mmBase, err)
			}
			for _, cfg := range mmVariants {
				got, err := s.runEncoded(cfg)
				if err != nil {
					t.Errorf("config %v errored: %v", cfg, err)
					continue
				}
				if got != want {
					min := s.shrinkConfig(t, cfg, want)
					t.Errorf("seed %d (join=%d pred=%d rows=%d): results diverge from base %v at %v; minimal failing config: %v",
						seed, s.join, s.pred, s.factRows, mmBase, cfg, min)
				}
			}
		})
	}
}
