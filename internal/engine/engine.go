// Package engine ties the pieces together: a DB holds the catalog and
// storage settings, a Builder wires operators into plans, and Execute runs a
// plan on the core scheduler with a chosen worker count and unit of
// transfer.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/reuse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/uotctl"
)

// Options configures one query execution.
type Options struct {
	// Workers is the number of worker goroutines (T). Default 1.
	Workers int
	// UoTBlocks is the default unit of transfer in blocks for every
	// pipelined edge that does not override it: 1 reproduces classic
	// "pipelining", core.UoTTable reproduces classic "blocking", anything
	// in between is a point on the paper's spectrum. Default 1.
	UoTBlocks int
	// TempBlockBytes is the temporary-block size. Default 128 KB.
	TempBlockBytes int
	// TempFormat is the temporary-block layout; the paper uses the row
	// store for temporaries regardless of base-table format.
	TempFormat storage.Format
	// Sim, if non-nil, charges work orders with simulated memory-hierarchy
	// costs.
	Sim *cachesim.Sim
	// MaxDOP, if non-nil, caps per-operator concurrency (scheduler policy
	// hook).
	MaxDOP map[core.OpID]int
	// NoPoolRecycle disables temp-block reuse (fresh allocation per
	// intermediate block — the MonetDB-style materialization model).
	NoPoolRecycle bool
	// MemoryBudget, if positive, softly caps live temporary-block bytes:
	// block-producing work orders are held while consumers drain (a
	// Section III-C scheduler policy). Under sustained pressure the
	// scheduler raises producer-edge UoTs instead of stalling.
	MemoryBudget int64
	// SpillDir, if non-empty, attaches a disk-backed spill tier to this
	// execution's private temp-block pool: cold sealed blocks parked in edge
	// buffers are evicted to extent files in a per-run subdirectory whenever
	// live temp bytes exceed SpillThreshold, and faulted back in on delivery
	// (Section V-C's persistent-store regime as a memory-pressure valve).
	// Ignored when SharedPool is set — the pool's owner (the session) owns
	// spill policy there. The directory is removed when Execute returns,
	// success or failure.
	SpillDir string
	// SpillThreshold is the live-byte level above which eviction runs. 0
	// inherits MemoryBudget; if that is also 0, every cooled block is
	// eligible immediately (maximal eviction — what the fault and
	// golden-equivalence tests want).
	SpillThreshold int64
	// Context, if non-nil, cancels the whole run when done: queued work
	// orders are dropped and Execute returns the cancellation error.
	Context context.Context
	// Faults, if non-nil, is a deterministic fault injector consulted by
	// operators and the block emitter at named sites (chaos testing).
	Faults *faults.Injector
	// MaxAttempts bounds executions per work order: a transient failure
	// (injected fault, deadline) is rolled back and retried with
	// exponential backoff up to MaxAttempts total attempts. 0 or 1 disables
	// retry.
	MaxAttempts int
	// RetryBackoff is the base re-dispatch delay after a transient failure,
	// doubling per attempt (capped at 100ms). Default 1ms.
	RetryBackoff time.Duration
	// WorkOrderDeadline, if positive, bounds each work-order attempt:
	// attempts catching themselves over the deadline at an interruption
	// point abort (transiently, so they retry); completed overruns are
	// recorded in the run's robustness counters.
	WorkOrderDeadline time.Duration
	// AdaptiveUoT attaches a per-edge adaptive UoT controller (see
	// internal/uotctl): pipelined edges without an explicit UoT start at the
	// Section V model's predicted operating point instead of UoTBlocks, and
	// every edge's UoT is adjusted AIMD-style at delivery boundaries from
	// backlog, stall-time, and consumer service-time gauges. The PR3
	// memory-pressure raise becomes one policy input of the controller
	// rather than a separate code path. Off by default: a static run's
	// schedule is untouched.
	AdaptiveUoT bool
	// AdaptiveConfig tunes the controller when AdaptiveUoT is set. Zero
	// fields inherit the run's Workers/TempBlockBytes/UoTBlocks and the
	// controller defaults (see uotctl.Config).
	AdaptiveConfig uotctl.Config
	// Trace, if non-nil, collects this execution's observability events —
	// per-work-order spans, per-edge gauge samples, scheduler annotations —
	// into the tracer's ring buffer (see internal/trace). One tracer may be
	// shared across executions; each one becomes its own trace section.
	// A nil tracer costs nothing (no timestamps, no allocations).
	Trace *trace.Tracer
	// TraceLabel names this execution's section in the trace ("Q3 uot=4").
	TraceLabel string

	// Reuse, if non-nil, is the cross-query result cache (see internal/reuse):
	// before the run, cached subplan results are spliced into the plan in
	// place of the subtrees that would recompute them; after a successful
	// run, results the plan materialized anyway are offered back. Partitioned
	// plans bypass the cache entirely.
	Reuse *reuse.Cache

	// Exec, if non-nil, runs this query's work orders on a worker pool
	// shared across concurrent queries instead of per-query goroutines;
	// Workers then caps the query's in-flight work orders. See
	// internal/session for the serving layer built on it.
	Exec core.Executor
	// SharedPool, if non-nil, is the global temp-block pool this execution
	// draws from through a per-query Subpool view (isolated partial-block
	// namespace and per-query gauge, shared freelist). NoPoolRecycle is
	// ignored in this mode — recycling policy belongs to the pool's owner.
	SharedPool *storage.Pool
	// QueryID identifies the query among concurrent executions sharing
	// Exec, SharedPool, or Trace: it labels the run's stats snapshot, its
	// trace section, and its submitted tasks. Only meaningful in serving
	// mode (Exec or SharedPool set).
	QueryID int
	// Priority is the query's dispatch priority class on the shared
	// executor (higher first; fair within a class).
	Priority int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.UoTBlocks <= 0 {
		o.UoTBlocks = 1
	}
	if o.TempBlockBytes <= 0 {
		o.TempBlockBytes = 128 << 10
	}
	return o
}

// Result is the outcome of one execution.
type Result struct {
	Table *storage.Table
	Run   *stats.Run
}

// Execute runs a built plan and returns the collected result.
func Execute(b *Builder, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if b.collect == nil {
		return nil, fmt.Errorf("engine: plan has no Collect sink")
	}
	rs := prepareReuse(b, opts)
	run := stats.NewRun()
	serving := opts.Exec != nil || opts.SharedPool != nil
	var pool *storage.Pool
	if opts.SharedPool != nil {
		pool = opts.SharedPool.Subpool(&run.Intermediates, run.AddCheckout)
	} else {
		pool = storage.NewPool(&run.Intermediates, run.AddCheckout)
		if opts.NoPoolRecycle {
			pool.DisableRecycling()
		}
	}
	spillOn := opts.SpillDir != "" && opts.SharedPool == nil
	if spillOn {
		scfg := storage.SpillConfig{Dir: opts.SpillDir, Threshold: opts.SpillThreshold}
		if scfg.Threshold <= 0 {
			scfg.Threshold = opts.MemoryBudget
		}
		if inj := opts.Faults; inj != nil {
			scfg.WriteFault = func() error { return inj.At(faults.SpillWrite) }
			scfg.ReadFault = func() error { return inj.At(faults.SpillRead) }
		}
		if err := pool.EnableSpill(scfg); err != nil {
			return nil, err
		}
	}
	var traceRun int32
	if serving {
		// Concurrent executions each record into their own trace section;
		// the sequential path keeps the current-section behavior so shared
		// tracers (the FIG2 sweep) see sections in execution order.
		run.SetQuery(opts.QueryID, opts.TraceLabel)
		traceRun = opts.Trace.OpenRun(opts.TraceLabel, opts.QueryID)
	} else {
		opts.Trace.StartRun(opts.TraceLabel)
	}
	if rs != nil && rs.hit {
		opts.Trace.MarkIn(traceRun, trace.MarkReuseHit,
			trace.Event{Rows: rs.splicedOps, RowsOut: rs.hitBytes})
	}
	ctx := &core.ExecCtx{
		Pool:           pool,
		Sim:            opts.Sim,
		Run:            run,
		TempBlockBytes: opts.TempBlockBytes,
		TempFormat:     opts.TempFormat,
		Workers:        opts.Workers,
		Exec:           opts.Exec,
		Query:          opts.QueryID,
		Priority:       opts.Priority,
		TraceRun:       traceRun,
		MemoryBudget:   opts.MemoryBudget,
		Trace:          opts.Trace,
		Ctx:            opts.Context,
		Faults:         opts.Faults,
		MaxAttempts:    opts.MaxAttempts,
		RetryBackoff:   opts.RetryBackoff,
		WODeadline:     opts.WorkOrderDeadline,
	}
	if opts.AdaptiveUoT {
		ac := opts.AdaptiveConfig
		if ac.Workers == 0 {
			ac.Workers = opts.Workers
		}
		if ac.BlockBytes == 0 {
			ac.BlockBytes = opts.TempBlockBytes
		}
		if ac.DefaultUoT == 0 {
			ac.DefaultUoT = opts.UoTBlocks
		}
		if spillOn && ac.SpillBudget == 0 {
			// Let the controller's prior price the slow tier in: the RAM
			// level eviction kicks in at is the M of costmodel.SpillCost.
			if ac.SpillBudget = opts.SpillThreshold; ac.SpillBudget <= 0 {
				ac.SpillBudget = opts.MemoryBudget
			}
		}
		ctx.Adapt = uotctl.New(ac)
	}
	// Merge (not overwrite): partitioned plans pre-seed MaxDOP with the
	// per-partition build clones' cap of 1, which must survive execution
	// options that don't mention those operators.
	if opts.MaxDOP != nil {
		if b.plan.MaxDOP == nil {
			b.plan.MaxDOP = make(map[core.OpID]int, len(opts.MaxDOP))
		}
		for id, d := range opts.MaxDOP {
			b.plan.MaxDOP[id] = d
		}
	}
	err := core.Run(b.plan, ctx, opts.UoTBlocks)
	run.Finish()
	if opts.Faults != nil {
		run.AddFaults(opts.Faults.Injected())
	}
	if spillOn {
		// The tier's own counters are the single source of truth; copy them
		// into the run once, then tear the tier down (extent files and the
		// per-run directory go with it, on failure paths too).
		sc := pool.SpillCounters()
		run.SetSpill(stats.Spill{
			BlocksOut: sc.BlocksOut, BytesOut: sc.BytesOut,
			BlocksIn: sc.BlocksIn, BytesIn: sc.BytesIn,
			FaultStallNS: sc.FaultStallNS,
			WriteFaults:  sc.WriteFaults, ReadFaults: sc.ReadFaults,
			DiskLive: sc.DiskLive, DiskPeak: sc.DiskPeak,
		})
		if cerr := pool.CloseSpill(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if rs != nil {
		rs.finalize(b, pool, run, err == nil)
	}
	if err != nil {
		return nil, err
	}
	if opts.SharedPool != nil {
		// The result table's blocks leave the shared pool with the client:
		// stop counting them as live intermediates, globally and per query,
		// or the serving layer's memory picture grows by every result ever
		// returned. (Failed runs instead release adopted blocks in cleanup.)
		pool.Disown(b.collect.Result().AllocBytes())
	}
	return &Result{Table: b.collect.Result(), Run: run}, nil
}

// DB holds the catalog plus the physical settings base tables are created
// with.
type DB struct {
	Catalog    *storage.Catalog
	BlockBytes int
	Format     storage.Format
}

// NewDB returns an empty database whose tables use the given block size and
// format.
func NewDB(blockBytes int, format storage.Format) *DB {
	return &DB{Catalog: storage.NewCatalog(), BlockBytes: blockBytes, Format: format}
}

// CreateTable registers and returns a new empty table.
func (db *DB) CreateTable(name string, schema *storage.Schema) *storage.Table {
	t := storage.NewTable(name, schema, db.Format, db.BlockBytes)
	db.Catalog.Add(t)
	return t
}

// Node is a handle to an operator in a plan under construction.
type Node struct {
	ID     core.OpID
	Schema *storage.Schema
	op     core.Operator
	// srcs, when non-empty, lists the operators that actually produce this
	// node's output stream — a partitioned subplan ends in one clone per
	// partition, and a downstream consumer must pipe from all of them. For
	// ordinary single-operator nodes it is empty and ID is the sole source.
	srcs []core.OpID
}

// Builder wires operators into a core.Plan, adding the pipelined and
// blocking edges each operator kind needs.
type Builder struct {
	plan    *core.Plan
	collect *exec.CollectOp
	// parts is the default exchange fan-out used when a Partitioned* helper
	// is called with parts == 0 (set by SetPartitions; 0 means "let the
	// helper consult costmodel.Partitions").
	parts int
}

// NewBuilder returns an empty plan builder.
func NewBuilder() *Builder { return &Builder{plan: &core.Plan{}} }

// Plan returns the underlying plan (for custom wiring).
func (b *Builder) Plan() *core.Plan { return b.plan }

// pipeFrom adds the pipelined edge(s) feeding operator `to` from node `from`:
// one edge for an ordinary node, one per partition clone for a node produced
// by a Partitioned* helper (the scheduler already merges multiple pipelined
// edges into one consumer input).
func (b *Builder) pipeFrom(from *Node, to core.OpID) {
	if len(from.srcs) == 0 {
		b.plan.Pipe(from.ID, to, 0, 0)
		return
	}
	for _, src := range from.srcs {
		b.plan.Pipe(src, to, 0, 0)
	}
}

// Select adds a select operator. If spec.Base is nil, `from` must name the
// pipelined input node (whose schema becomes spec.InputSchema).
func (b *Builder) Select(from *Node, spec exec.SelectSpec) *Node {
	if spec.Base == nil {
		if from == nil {
			panic("engine: piped select needs an input node")
		}
		spec.InputSchema = from.Schema
	}
	op := exec.NewSelect(spec)
	id := exec.AddOp(b.plan, op)
	if spec.Base == nil {
		b.pipeFrom(from, id)
	}
	// LIP filters require the referenced builds to complete first.
	for _, l := range spec.LIPs {
		b.plan.Block(b.mustFind(l.Build), id)
	}
	return &Node{ID: id, Schema: op.OutSchema(), op: op}
}

// ScanSelect adds a base-table select.
func (b *Builder) ScanSelect(spec exec.SelectSpec) *Node { return b.Select(nil, spec) }

// Build adds a hash-table build over `from`.
func (b *Builder) Build(from *Node, spec exec.BuildSpec) (*Node, *exec.BuildHashOp) {
	spec.InputSchema = from.Schema
	op := exec.NewBuildHash(spec)
	id := exec.AddOp(b.plan, op)
	b.pipeFrom(from, id)
	return &Node{ID: id, Schema: from.Schema, op: op}, op
}

// Probe adds a probe of `build` with pipelined input `from`. The blocking
// build→probe edge is added automatically.
func (b *Builder) Probe(from *Node, build *Node, spec exec.ProbeSpec) *Node {
	spec.InputSchema = from.Schema
	spec.Build = build.op.(*exec.BuildHashOp)
	op := exec.NewProbe(spec)
	id := exec.AddOp(b.plan, op)
	b.pipeFrom(from, id)
	b.plan.Block(build.ID, id)
	return &Node{ID: id, Schema: op.OutSchema(), op: op}
}

// Agg adds a hash aggregation over `from`.
func (b *Builder) Agg(from *Node, spec exec.AggOpSpec) *Node {
	spec.InputSchema = from.Schema
	op := exec.NewAgg(spec)
	id := exec.AddOp(b.plan, op)
	b.pipeFrom(from, id)
	return &Node{ID: id, Schema: op.OutSchema(), op: op}
}

// Scalar registers `from` (a scalar aggregate) as a scalar-parameter
// provider and returns the slot to reference with expr.Param. `to`-side
// gating happens in Gate.
func (b *Builder) Scalar(from *Node) int { return b.plan.AddScalar(from.ID) }

// Gate adds a blocking edge: `to` cannot start until `from` finishes (used
// for scalar parameters and custom ordering).
func (b *Builder) Gate(from, to *Node) { b.plan.Block(from.ID, to.ID) }

// Sort adds a sort (with optional limit) over `from`.
func (b *Builder) Sort(from *Node, spec exec.SortSpec) *Node {
	spec.InputSchema = from.Schema
	op := exec.NewSort(spec)
	id := exec.AddOp(b.plan, op)
	b.pipeFrom(from, id)
	return &Node{ID: id, Schema: op.OutSchema(), op: op}
}

// SetEdgeUoT overrides the unit of transfer on the pipelined edge between
// two nodes (0 restores the run default). Per-edge UoT values let one plan
// mix operating points on the spectrum — e.g. pipeline into a probe but
// block before a poorly-scaling consumer. Panics if no such edge exists.
func (b *Builder) SetEdgeUoT(from, to *Node, uot int) {
	for i := range b.plan.Edges {
		e := &b.plan.Edges[i]
		if e.Kind == core.Pipelined && e.From == from.ID && e.To == to.ID {
			e.UoT = uot
			return
		}
	}
	panic("engine: no pipelined edge between the given nodes")
}

// Collect marks `from` as the plan's result and returns its node.
func (b *Builder) Collect(from *Node) *Node {
	if b.collect != nil {
		panic("engine: plan already has a Collect sink")
	}
	b.collect = exec.NewCollect(from.Schema, 128<<10, storage.RowStore)
	id := exec.AddOp(b.plan, b.collect)
	b.pipeFrom(from, id)
	return &Node{ID: id, Schema: from.Schema, op: b.collect}
}

func (b *Builder) mustFind(op core.Operator) core.OpID {
	for i, o := range b.plan.Ops {
		if o == op {
			return core.OpID(i)
		}
	}
	panic("engine: LIP references a build operator outside this plan")
}

// Rows materializes a table as datum rows (Char bytes copied).
func Rows(t *storage.Table) [][]types.Datum {
	var out [][]types.Datum
	for _, b := range t.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			row := b.Row(r)
			for i, d := range row {
				if d.Ty == types.Char {
					cp := make([]byte, len(d.B))
					copy(cp, d.B)
					row[i] = types.NewChar(cp)
				}
			}
			out = append(out, row)
		}
	}
	return out
}

// SortRows orders rows lexicographically (for order-insensitive result
// comparison in tests).
func SortRows(rows [][]types.Datum) {
	sort.Slice(rows, func(i, j int) bool {
		return types.CompareRows(rows[i], rows[j], nil) < 0
	})
}

// FormatRow renders a row for display.
func FormatRow(row []types.Datum) string {
	s := ""
	for i, d := range row {
		if i > 0 {
			s += " | "
		}
		s += d.String()
	}
	return s
}
