// Adaptive-UoT engine tests: attaching the per-edge controller is a
// scheduling choice, not semantics — results must match a static run (with
// the float tolerance of the golden harness, since mid-run UoT changes
// regroup work orders and may reorder float summation), and the run snapshot
// must surface the per-edge UoT trajectory.
package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

func TestAdaptiveMatchesStaticTPCHResults(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	for _, q := range tpch.Numbers() {
		build := func() *engine.Builder {
			b, err := tpch.Build(d, q, tpch.QueryOpts{})
			if err != nil {
				t.Fatalf("Q%02d: build: %v", q, err)
			}
			return b
		}
		res, err := engine.Execute(build(), engine.Options{
			Workers: 1, UoTBlocks: 1, TempBlockBytes: 128 << 10,
		})
		if err != nil {
			t.Fatalf("Q%02d: static execute: %v", q, err)
		}
		ref := engine.Rows(res.Table)

		for _, workers := range []int{1, 4} {
			ares, err := engine.Execute(build(), engine.Options{
				Workers: workers, UoTBlocks: 1, TempBlockBytes: 128 << 10,
				AdaptiveUoT: true,
			})
			if err != nil {
				t.Fatalf("Q%02d: adaptive execute (workers=%d): %v", q, workers, err)
			}
			rows := engine.Rows(ares.Table)
			if err := approxEqualRows(ref, rows); err != nil {
				t.Errorf("Q%02d: adaptive (workers=%d) deviates from static: %v", q, workers, err)
			}
			edges := ares.Run.EdgeUoTs()
			if len(edges) == 0 {
				t.Errorf("Q%02d: adaptive run recorded no edge UoT snapshots", q)
			}
			for _, e := range edges {
				if e.Start < 1 {
					t.Errorf("Q%02d: edge %s->%s has unresolved start UoT %d", q, e.FromName, e.ToName, e.Start)
				}
				if e.Final < 1 {
					t.Errorf("Q%02d: edge %s->%s has invalid final UoT %d", q, e.FromName, e.ToName, e.Final)
				}
			}
		}
	}
}

func TestAdaptivePriorSeedsUndeclaredEdges(t *testing.T) {
	// With the model prior enabled (the default), undeclared edges start at
	// the Section V prediction — the same value on every edge of the plan —
	// rather than at Options.UoTBlocks.
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	b, err := tpch.Build(d, 1, tpch.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(b, engine.Options{
		Workers: 4, UoTBlocks: 999, TempBlockBytes: 128 << 10,
		AdaptiveUoT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := res.Run.EdgeUoTs()
	if len(edges) == 0 {
		t.Fatal("no edge snapshots")
	}
	for _, e := range edges {
		if e.Declared != 0 {
			continue
		}
		if e.Start == 999 {
			t.Errorf("edge %s->%s started at UoTBlocks, want the model prior", e.FromName, e.ToName)
		}
		if e.Start < 1 || e.Start > 1024 {
			t.Errorf("edge %s->%s prior start %d outside the model's block-count range", e.FromName, e.ToName, e.Start)
		}
	}
}

// TestAdaptiveStaticRunUnchanged pins the off-switch: without AdaptiveUoT the
// snapshot reports the static trajectory (start == final == run default) and
// the result is bit-identical to another static run.
func TestAdaptiveStaticRunUnchanged(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	run := func() ([][]types.Datum, *engine.Result) {
		b, err := tpch.Build(d, 6, tpch.QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(b, engine.Options{
			Workers: 1, UoTBlocks: 4, TempBlockBytes: 128 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return engine.Rows(res.Table), res
	}
	a, ares := run()
	b, _ := run()
	ea, eb := encodeRows(a), encodeRows(b)
	if len(ea) != len(eb) {
		t.Fatalf("row counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("static runs differ at row %d", i)
		}
	}
	for _, e := range ares.Run.EdgeUoTs() {
		if e.Declared == 0 && (e.Start != 4 || e.Final != 4) {
			t.Errorf("static edge %s->%s trajectory %d->%d, want 4->4", e.FromName, e.ToName, e.Start, e.Final)
		}
	}
}
