// Cross-query reuse equivalence tests: a warm run served (wholly or partly)
// from the result cache must be bit-identical to the cold run that filled it
// — the same SHA-256 over the canonicalized rows, not merely tolerably
// close. This lives in package engine_test next to the golden harness whose
// encoding helpers it shares.
package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/reuse"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

// TestReuseWarmGoldenTPCH runs every TPC-H query cold and then warm through
// one shared cache. Every warm run must hit (the root result was captured
// for free on the cold run), checksum identically to its cold result, and
// leak nothing.
func TestReuseWarmGoldenTPCH(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	cache := reuse.New(reuse.Config{Budget: 64 << 20})
	opts := engine.Options{Workers: 1, UoTBlocks: 4, TempBlockBytes: 128 << 10, Reuse: cache}

	cold := map[int]string{}
	for _, q := range tpch.Numbers() {
		b := tpch.MustBuild(d, q, tpch.QueryOpts{})
		res, err := engine.Execute(b, opts)
		if err != nil {
			t.Fatalf("Q%02d cold: %v", q, err)
		}
		if res.Run.Reuse().Hit {
			t.Fatalf("Q%02d cold: hit an empty cache", q)
		}
		if rb := res.Run.Robust(); rb.LeakedBlocks != 0 {
			t.Fatalf("Q%02d cold: %d leaked blocks", q, rb.LeakedBlocks)
		}
		cold[q] = checksum(engine.Rows(res.Table))
	}

	for _, q := range tpch.Numbers() {
		b := tpch.MustBuild(d, q, tpch.QueryOpts{})
		res, err := engine.Execute(b, opts)
		if err != nil {
			t.Fatalf("Q%02d warm: %v", q, err)
		}
		u := res.Run.Reuse()
		if !u.Hit || u.SplicedOps == 0 {
			t.Errorf("Q%02d warm: no cache hit (reuse = %+v)", q, u)
		}
		if got := checksum(engine.Rows(res.Table)); got != cold[q] {
			t.Errorf("Q%02d warm: result not bit-identical: %s vs %s", q, got[:12], cold[q][:12])
		}
		if rb := res.Run.Robust(); rb.LeakedBlocks != 0 {
			t.Errorf("Q%02d warm: %d leaked blocks", q, rb.LeakedBlocks)
		}
	}

	ctr := cache.Counters()
	if ctr.Hits < int64(len(tpch.Numbers())) {
		t.Errorf("cache hits = %d, want >= %d", ctr.Hits, len(tpch.Numbers()))
	}
	if ctr.Pins != 0 {
		t.Errorf("%d pins outstanding after drain", ctr.Pins)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
}

func reuseBaseTable(rows int) *storage.Table {
	db := engine.NewDB(4<<10, storage.ColumnStore)
	tab := db.CreateTable("t", storage.NewSchema(
		storage.Column{Name: "a", Type: types.Int64},
		storage.Column{Name: "b", Type: types.Int64},
	))
	blk := storage.NewBlock(tab.Schema(), tab.Format(), tab.BlockBytes())
	for i := 0; i < rows; i++ {
		if !blk.AppendRow(types.NewInt64(int64(i%13)), types.NewInt64(int64(i))) {
			tab.Append(blk)
			blk = storage.NewBlock(tab.Schema(), tab.Format(), tab.BlockBytes())
			blk.AppendRow(types.NewInt64(int64(i%13)), types.NewInt64(int64(i)))
		}
	}
	if blk.NumRows() > 0 {
		tab.Append(blk)
	}
	return tab
}

// buildAggPlan builds scan -> agg -> sort(limit) -> collect. Two plans with
// different limits share the scan+agg subtree fingerprint while their roots
// differ — the shape the interior capture/splice path exists for.
func buildAggPlan(tab *storage.Table, limit int) *engine.Builder {
	b := engine.NewBuilder()
	sch := tab.Schema()
	scan := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: tab,
		Pred:      expr.Lt(expr.C(sch, "b"), expr.Int(9_000)),
		Proj:      []expr.Expr{expr.C(sch, "a"), expr.C(sch, "b")},
		ProjNames: []string{"a", "b"},
	})
	agg := b.Agg(scan, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(scan.Schema, "a")},
		GroupByNames: []string{"a"},
		Aggs:         []exec.AggSpec{{Func: exec.Sum, Arg: expr.C(scan.Schema, "b"), Name: "v"}},
	})
	srt := b.Sort(agg, exec.SortSpec{
		Name:        "sort",
		InputSchema: agg.Schema,
		Terms:       []exec.SortTerm{{Key: expr.C(agg.Schema, "a")}},
		Limit:       limit,
	})
	b.Collect(srt)
	return b
}

// TestReuseInteriorSpliceAndCapture drives the interior path end to end: a
// cold query's capture tap admits its aggregation subtree, and a different
// query sharing that subtree (but not the root) splices the cached result in
// place of the scan+agg pair.
func TestReuseInteriorSpliceAndCapture(t *testing.T) {
	tab := reuseBaseTable(10_000)
	cache := reuse.New(reuse.Config{Budget: 16 << 20})
	opts := engine.Options{Workers: 1, UoTBlocks: 4, TempBlockBytes: 4 << 10, Reuse: cache}

	// Reference result for the second query, computed with no cache at all.
	ref, err := engine.Execute(buildAggPlan(tab, 5), engine.Options{
		Workers: 1, UoTBlocks: 4, TempBlockBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := checksum(engine.Rows(ref.Table))

	res1, err := engine.Execute(buildAggPlan(tab, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	u1 := res1.Run.Reuse()
	if u1.Hit {
		t.Fatal("cold run hit an empty cache")
	}
	if u1.Captured == 0 {
		t.Fatalf("cold run captured nothing (reuse = %+v)", u1)
	}

	res2, err := engine.Execute(buildAggPlan(tab, 5), opts)
	if err != nil {
		t.Fatal(err)
	}
	u2 := res2.Run.Reuse()
	if !u2.Hit {
		t.Fatalf("warm run missed the shared agg subtree (reuse = %+v, cache = %+v)", u2, cache.Counters())
	}
	if u2.SplicedOps != 2 {
		t.Errorf("spliced ops = %d, want 2 (scan+agg)", u2.SplicedOps)
	}
	if got := checksum(engine.Rows(res2.Table)); got != want {
		t.Errorf("warm result not bit-identical to the uncached reference: %s vs %s", got[:12], want[:12])
	}
	if rb := res2.Run.Robust(); rb.LeakedBlocks != 0 {
		t.Errorf("warm run leaked %d blocks", rb.LeakedBlocks)
	}

	if ctr := cache.Counters(); ctr.Pins != 0 {
		t.Errorf("%d pins outstanding after drain", ctr.Pins)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReuseDisabledByDefault pins that a nil cache leaves the plan and the
// stats untouched.
func TestReuseDisabledByDefault(t *testing.T) {
	tab := reuseBaseTable(1_000)
	res, err := engine.Execute(buildAggPlan(tab, 0), engine.Options{Workers: 1, UoTBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Run.Reuse(); u.Hit || u.Captured != 0 || u.CaptureRej != 0 {
		t.Errorf("reuse stats populated without a cache: %+v", u)
	}
}
