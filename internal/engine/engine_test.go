package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// fixture builds fact(k, grp, v) with 1000 rows and dim(k, w) with 50 rows.
// fact.k cycles 0..99, so half the fact keys join; grp cycles 0..4.
func fixture(t *testing.T, format storage.Format, blockBytes int) (*DB, *storage.Table, *storage.Table) {
	t.Helper()
	db := NewDB(blockBytes, format)
	fact := db.CreateTable("fact", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "grp", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Float64},
	))
	lf := storage.NewLoader(fact)
	for i := 0; i < 1000; i++ {
		lf.Append(types.NewInt64(int64(i%100)), types.NewInt64(int64(i%5)), types.NewFloat64(float64(i)/10))
	}
	lf.Close()
	dim := db.CreateTable("dim", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "w", Type: types.Int64},
	))
	ld := storage.NewLoader(dim)
	for i := 0; i < 50; i++ {
		ld.Append(types.NewInt64(int64(i)), types.NewInt64(int64(i*2)))
	}
	ld.Close()
	return db, fact, dim
}

// expectedJoinAgg computes the reference result: for fact rows with v >= 10
// joined to dim (k < 50), per grp: count and sum(v).
func expectedJoinAgg() map[int64][2]float64 {
	out := map[int64][2]float64{}
	for i := 0; i < 1000; i++ {
		k, grp, v := int64(i%100), int64(i%5), float64(i)/10
		if v < 10 || k >= 50 {
			continue
		}
		e := out[grp]
		e[0]++
		e[1] += v
		out[grp] = e
	}
	return out
}

func buildJoinAggPlan(fact, dim *storage.Table) *Builder {
	b := NewBuilder()
	fs, ds := fact.Schema(), dim.Schema()

	selDim := b.ScanSelect(exec.SelectSpec{
		Name: "sel_dim", Base: dim,
		Proj:      []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")},
		ProjNames: []string{"k", "w"},
	})
	bld, _ := b.Build(selDim, exec.BuildSpec{
		Name: "build_dim", KeyCols: []int{0}, Payload: []int{1}, ExpectedRows: 50,
	})
	selFact := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Pred:      expr.Ge(expr.C(fs, "v"), expr.Float(10)),
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "grp"), expr.C(fs, "v")},
		ProjNames: []string{"k", "grp", "v"},
	})
	probe := b.Probe(selFact, bld, exec.ProbeSpec{
		Name: "probe_dim", KeyCols: []int{0},
		ProbeProj: []int{1, 2}, BuildProj: []int{0},
		Rename: []string{"grp", "v", "w"},
	})
	agg := b.Agg(probe, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(probe.Schema, "grp")},
		GroupByNames: []string{"grp"},
		Aggs: []exec.AggSpec{
			{Func: exec.Count, Name: "cnt"},
			{Func: exec.Sum, Arg: expr.C(probe.Schema, "v"), Name: "sv"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{
		Name:  "sort",
		Terms: []exec.SortTerm{{Key: expr.C(agg.Schema, "grp")}},
	})
	b.Collect(srt)
	return b
}

func checkJoinAgg(t *testing.T, res *Result, label string) {
	t.Helper()
	want := expectedJoinAgg()
	rows := Rows(res.Table)
	if len(rows) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(rows), len(want))
	}
	for _, r := range rows {
		grp := r[0].I
		w := want[grp]
		if r[1].I != int64(w[0]) {
			t.Errorf("%s: grp %d count = %d, want %v", label, grp, r[1].I, w[0])
		}
		if diff := r[2].F - w[1]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: grp %d sum = %v, want %v", label, grp, r[2].F, w[1])
		}
	}
}

// TestJoinAggAcrossConfigurations is the central invariant: results are
// identical across the whole UoT spectrum, worker counts, temp formats, and
// block sizes.
func TestJoinAggAcrossConfigurations(t *testing.T) {
	for _, baseFormat := range []storage.Format{storage.ColumnStore, storage.RowStore} {
		_, fact, dim := fixture(t, baseFormat, 512)
		for _, uot := range []int{1, 2, 7, core.UoTTable} {
			for _, workers := range []int{1, 4} {
				for _, tempBytes := range []int{256, 4096} {
					label := fmt.Sprintf("base=%v uot=%d T=%d temp=%d", baseFormat, uot, workers, tempBytes)
					res, err := Execute(buildJoinAggPlan(fact, dim), Options{
						Workers: workers, UoTBlocks: uot, TempBlockBytes: tempBytes,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					checkJoinAgg(t, res, label)
				}
			}
		}
	}
}

func joinTypePlan(fact, dim *storage.Table, jt exec.JoinType) *Builder {
	b := NewBuilder()
	fs, ds := fact.Schema(), dim.Schema()
	selDim := b.ScanSelect(exec.SelectSpec{
		Name: "sel_dim", Base: dim,
		Proj:      []expr.Expr{expr.C(ds, "k")},
		ProjNames: []string{"k"},
	})
	var payload []int
	var buildProj []int
	rename := []string{"k", "grp"}
	if jt == exec.Inner || jt == exec.LeftOuter {
		payload = []int{0}
		buildProj = []int{0}
		rename = []string{"k", "grp", "dk"}
	}
	bld, _ := b.Build(selDim, exec.BuildSpec{
		Name: "build_dim", KeyCols: []int{0}, Payload: payload, ExpectedRows: 50,
	})
	selFact := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Pred:      expr.Lt(expr.C(fs, "k"), expr.Int(10)), // keep it small
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "grp")},
		ProjNames: []string{"k", "grp"},
	})
	probe := b.Probe(selFact, bld, exec.ProbeSpec{
		Name: "probe", KeyCols: []int{0}, JoinType: jt,
		ProbeProj: []int{0, 1}, BuildProj: buildProj, Rename: rename,
	})
	b.Collect(probe)
	return b
}

func TestJoinTypes(t *testing.T) {
	_, fact, dimAll := fixture(t, storage.ColumnStore, 512)
	_ = dimAll
	// Rebuild a dim with keys 5..14 so some fact keys (0..9) miss.
	db2 := NewDB(512, storage.ColumnStore)
	dim := db2.CreateTable("dim2", storage.NewSchema(storage.Column{Name: "k", Type: types.Int64}))
	ld := storage.NewLoader(dim)
	for i := 5; i < 15; i++ {
		ld.Append(types.NewInt64(int64(i)))
	}
	ld.Close()

	// fact rows with k<10: k in 0..9, 10 rows each (1000/100).
	counts := map[string]int{
		"inner": 10 * 5, "semi": 10 * 5, "anti": 10 * 5, "outer": 10 * 10,
	}
	for jt, name := range map[exec.JoinType]string{
		exec.Inner: "inner", exec.LeftSemi: "semi", exec.LeftAnti: "anti", exec.LeftOuter: "outer",
	} {
		res, err := Execute(joinTypePlan(fact, dim, jt), Options{Workers: 2, UoTBlocks: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := int(res.Table.NumRows())
		if got != counts[name] {
			t.Errorf("%s join rows = %d, want %d", name, got, counts[name])
		}
		// Semantics spot checks.
		rows := Rows(res.Table)
		for _, r := range rows {
			k := r[0].I
			inDim := k >= 5
			switch jt {
			case exec.LeftSemi:
				if !inDim {
					t.Errorf("semi emitted non-matching key %d", k)
				}
			case exec.LeftAnti:
				if inDim {
					t.Errorf("anti emitted matching key %d", k)
				}
			case exec.LeftOuter:
				if !inDim && r[2].I != 0 {
					t.Errorf("outer padding for key %d = %d", k, r[2].I)
				}
				if inDim && r[2].I != k {
					t.Errorf("outer matched key %d carries dk %d", k, r[2].I)
				}
			}
		}
	}
}

func TestResidualPredicate(t *testing.T) {
	// Join dim to itself: k = k AND build.w <> probe.k*2 (never true since
	// w == 2k on the build side) — residual must kill every match.
	_, _, dim := fixture(t, storage.ColumnStore, 512)
	b := NewBuilder()
	ds := dim.Schema()
	sel1 := b.ScanSelect(exec.SelectSpec{
		Name: "s1", Base: dim,
		Proj: []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")}, ProjNames: []string{"k", "w"},
	})
	bld, bop := b.Build(sel1, exec.BuildSpec{Name: "b1", KeyCols: []int{0}, Payload: []int{1}, ExpectedRows: 50})
	sel2 := b.ScanSelect(exec.SelectSpec{
		Name: "s2", Base: dim,
		Proj: []expr.Expr{expr.C(ds, "k")}, ProjNames: []string{"k"},
	})
	probe := b.Probe(sel2, bld, exec.ProbeSpec{
		Name: "p", KeyCols: []int{0},
		Residual:  expr.Ne(expr.C2(bop.PayloadSchema(), "w"), expr.MulE(expr.C(sel2.Schema, "k"), expr.Int(2))),
		ProbeProj: []int{0}, BuildProj: []int{0}, Rename: []string{"k", "w"},
	})
	b.Collect(probe)
	res, err := Execute(b, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 0 {
		t.Fatalf("residual should eliminate all %d rows", res.Table.NumRows())
	}
}

func TestScalarSubquery(t *testing.T) {
	// SELECT count(*) FROM fact WHERE v > (SELECT avg(v) FROM fact)
	_, fact, _ := fixture(t, storage.ColumnStore, 512)
	fs := fact.Schema()
	b := NewBuilder()

	selAll := b.ScanSelect(exec.SelectSpec{
		Name: "scan_all", Base: fact,
		Proj: []expr.Expr{expr.C(fs, "v")}, ProjNames: []string{"v"},
	})
	avg := b.Agg(selAll, exec.AggOpSpec{
		Name: "avg_v",
		Aggs: []exec.AggSpec{{Func: exec.Avg, Arg: expr.C(selAll.Schema, "v"), Name: "a"}},
	})
	slot := b.Scalar(avg)

	selBig := b.ScanSelect(exec.SelectSpec{
		Name: "scan_big", Base: fact,
		Pred: expr.Gt(expr.C(fs, "v"), expr.Param(slot, types.Float64)),
		Proj: []expr.Expr{expr.C(fs, "k")}, ProjNames: []string{"k"},
	})
	b.Gate(avg, selBig)
	cnt := b.Agg(selBig, exec.AggOpSpec{
		Name: "cnt",
		Aggs: []exec.AggSpec{{Func: exec.Count, Name: "c"}},
	})
	b.Collect(cnt)

	res, err := Execute(b, Options{Workers: 3, UoTBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Table)
	// avg(v) over 0..99.9 step .1 = 49.95; rows with v > 49.95: v=50.0..99.9 -> 500.
	if len(rows) != 1 || rows[0][0].I != 500 {
		t.Fatalf("scalar subquery count = %v, want 500", rows)
	}
}

func TestLIPFilterPrunesBeforeMaterialization(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	fs, ds := fact.Schema(), dim.Schema()

	run := func(useLIP bool) (*Result, error) {
		b := NewBuilder()
		selDim := b.ScanSelect(exec.SelectSpec{
			Name: "sel_dim", Base: dim,
			Proj: []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")}, ProjNames: []string{"k", "w"},
		})
		bld, bop := b.Build(selDim, exec.BuildSpec{
			Name: "build_dim", KeyCols: []int{0}, Payload: []int{1},
			ExpectedRows: 50, BuildBloom: useLIP,
		})
		spec := exec.SelectSpec{
			Name: "sel_fact", Base: fact,
			Proj: []expr.Expr{expr.C(fs, "k"), expr.C(fs, "v")}, ProjNames: []string{"k", "v"},
		}
		if useLIP {
			spec.LIPs = []exec.LIPRef{{Build: bop, KeyCol: fs.MustColIndex("k")}}
		}
		selFact := b.ScanSelect(spec)
		probe := b.Probe(selFact, bld, exec.ProbeSpec{
			Name: "probe", KeyCols: []int{0},
			ProbeProj: []int{0, 1}, BuildProj: []int{0}, Rename: []string{"k", "v", "w"},
		})
		b.Collect(probe)
		return Execute(b, Options{Workers: 2})
	}

	plain, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	lip, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table.NumRows() != lip.Table.NumRows() {
		t.Fatalf("LIP changed the result: %d vs %d rows", plain.Table.NumRows(), lip.Table.NumRows())
	}
	// The select feeding the probe must emit ~half the rows with LIP on
	// (keys 50..99 dropped, modulo bloom false positives).
	selOut := func(r *Result) int64 {
		for _, op := range r.Run.PerOp() {
			if op.Name == "sel_fact" {
				return op.RowsOut
			}
		}
		return -1
	}
	if plainOut, lipOut := selOut(plain), selOut(lip); lipOut > plainOut*6/10 {
		t.Fatalf("LIP select emitted %d rows, plain %d — filter not pruning", lipOut, plainOut)
	}
}

func TestMemoryGaugesTrackHashTablesAndIntermediates(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	res, err := Execute(buildJoinAggPlan(fact, dim), Options{Workers: 2, UoTBlocks: 1, TempBlockBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.HashTables.High() <= 0 {
		t.Error("hash-table high water should be positive")
	}
	if res.Run.Intermediates.High() <= 0 {
		t.Error("intermediates high water should be positive")
	}
	if res.Run.HashTables.Live() != 0 {
		t.Errorf("hash-table live after run = %d, want 0 (all released)", res.Run.HashTables.Live())
	}
	if res.Run.Checkouts() <= 0 {
		t.Error("pool checkouts should be counted")
	}
}

func TestSortLimitAndOrder(t *testing.T) {
	_, fact, _ := fixture(t, storage.ColumnStore, 512)
	fs := fact.Schema()
	b := NewBuilder()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: fact,
		Proj: []expr.Expr{expr.C(fs, "k"), expr.C(fs, "v")}, ProjNames: []string{"k", "v"},
	})
	srt := b.Sort(sel, exec.SortSpec{
		Name:  "top",
		Terms: []exec.SortTerm{{Key: expr.C(sel.Schema, "v"), Desc: true}, {Key: expr.C(sel.Schema, "k")}},
		Limit: 7,
	})
	b.Collect(srt)
	res, err := Execute(b, Options{Workers: 4, UoTBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Table)
	if len(rows) != 7 {
		t.Fatalf("limit: got %d rows", len(rows))
	}
	for i := 0; i < len(rows)-1; i++ {
		if rows[i][1].F < rows[i+1][1].F {
			t.Fatalf("sort order violated at %d: %v then %v", i, rows[i][1].F, rows[i+1][1].F)
		}
	}
	if rows[0][1].F != 99.9 {
		t.Fatalf("top value = %v, want 99.9", rows[0][1].F)
	}
}

func TestHighUoTSchedulesProbesAfterSelects(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	res, err := Execute(buildJoinAggPlan(fact, dim), Options{
		Workers: 4, UoTBlocks: core.UoTTable, TempBlockBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastSelEnd, firstProbeStart int64
	for _, w := range res.Run.Orders() {
		switch w.OpName {
		case "sel_fact":
			if e := w.End.UnixNano(); e > lastSelEnd {
				lastSelEnd = e
			}
		case "probe_dim":
			if s := w.Start.UnixNano(); firstProbeStart == 0 || s < firstProbeStart {
				firstProbeStart = s
			}
		}
	}
	if firstProbeStart == 0 || lastSelEnd == 0 {
		t.Fatal("missing work orders in stats")
	}
	if firstProbeStart < lastSelEnd {
		t.Fatal("with UoT=table, probe work orders must start after the select finishes")
	}
}

func TestEmptyInputsProduceEmptyOrZeroResults(t *testing.T) {
	db := NewDB(512, storage.ColumnStore)
	empty := db.CreateTable("empty", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Float64},
	))
	es := empty.Schema()
	b := NewBuilder()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: empty,
		Proj: []expr.Expr{expr.C(es, "v")}, ProjNames: []string{"v"},
	})
	agg := b.Agg(sel, exec.AggOpSpec{
		Name: "agg",
		Aggs: []exec.AggSpec{{Func: exec.Count, Name: "c"}, {Func: exec.Sum, Arg: expr.C(sel.Schema, "v"), Name: "s"}},
	})
	b.Collect(agg)
	res, err := Execute(b, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Table)
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("scalar agg over empty input = %v, want one zero row", rows)
	}
}
