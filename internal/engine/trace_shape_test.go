package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

// spanWindows extracts the [start,end] windows of two operators' successful
// span events from a tracer section.
func spanWindows(tr *trace.Tracer, run int32, aName, bName string) (a, b [][2]int64) {
	for _, e := range tr.Events() {
		if e.Kind != trace.KindSpan || e.Run != run || e.Flags&trace.FlagFailed != 0 {
			continue
		}
		switch tr.OpName(e.Run, e.Op) {
		case aName:
			a = append(a, [2]int64{e.StartNS, e.EndNS})
		case bName:
			b = append(b, [2]int64{e.StartNS, e.EndNS})
		}
	}
	return
}

// TestTraceShapeInterleavingVsBlocking is the Fig. 2 acceptance check at the
// trace level: with a low UoT the consumer's probe spans interleave with the
// producer's select spans; with UoT=table every probe span starts after the
// last select span ends.
func TestTraceShapeInterleavingVsBlocking(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	tr := trace.New(1 << 14)
	for _, tc := range []struct {
		label string
		uot   int
	}{
		{"uot=1", 1},
		{"uot=table", core.UoTTable},
	} {
		res, err := Execute(buildJoinAggPlan(fact, dim), Options{
			Workers: 2, UoTBlocks: tc.uot, TempBlockBytes: 512,
			Trace: tr, TraceLabel: tc.label,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		checkJoinAgg(t, res, tc.label)
	}

	sel0, probe0 := spanWindows(tr, 0, "sel_fact", "probe_dim")
	if len(sel0) == 0 || len(probe0) == 0 {
		t.Fatalf("uot=1 section: %d select, %d probe spans", len(sel0), len(probe0))
	}
	lastSelEnd := int64(0)
	for _, w := range sel0 {
		if w[1] > lastSelEnd {
			lastSelEnd = w[1]
		}
	}
	firstProbe := probe0[0][0]
	for _, w := range probe0 {
		if w[0] < firstProbe {
			firstProbe = w[0]
		}
	}
	if firstProbe >= lastSelEnd {
		t.Fatal("uot=1: probe spans did not interleave with select spans")
	}

	sel1, probe1 := spanWindows(tr, 1, "sel_fact", "probe_dim")
	if len(sel1) == 0 || len(probe1) == 0 {
		t.Fatalf("uot=table section: %d select, %d probe spans", len(sel1), len(probe1))
	}
	lastSelEnd = 0
	for _, w := range sel1 {
		if w[1] > lastSelEnd {
			lastSelEnd = w[1]
		}
	}
	for _, w := range probe1 {
		if w[0] < lastSelEnd {
			t.Fatal("uot=table: a probe span started before the selects finished")
		}
	}
}

// TestTraceEndToEndExports runs a real plan with tracing on and exercises
// every export against it.
func TestTraceEndToEndExports(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	tr := trace.New(1 << 14)
	if _, err := Execute(buildJoinAggPlan(fact, dim), Options{
		Workers: 2, UoTBlocks: 2, TempBlockBytes: 512,
		Trace: tr, TraceLabel: "join-agg",
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome export is not valid JSON")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"join-agg"`)) {
		t.Fatal("Chrome export lacks the run label")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"probe_dim"`)) {
		t.Fatal("Chrome export lacks operator slices")
	}

	m := tr.Snapshot()
	if len(m.Runs) != 1 || m.Runs[0].Label != "join-agg" || m.Runs[0].Workers != 2 {
		t.Fatalf("snapshot run meta = %+v", m.Runs)
	}
	var spans, edges int64
	for _, o := range m.Runs[0].Ops {
		spans += o.Spans
	}
	for _, e := range m.Runs[0].Edges {
		if e.Pipelined {
			edges += e.Batches
		}
	}
	if spans == 0 || edges == 0 {
		t.Fatalf("snapshot empty: %d spans, %d edge batches", spans, edges)
	}
	// Traced row counts agree with the engine's own stats-free invariants:
	// sel_fact emits 900 rows (v >= 10 keeps 900 of 1000).
	for _, o := range m.Runs[0].Ops {
		if o.Name == "sel_fact" && o.RowsOut != 900 {
			t.Fatalf("traced sel_fact rows_out = %d, want 900", o.RowsOut)
		}
	}

	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom.Bytes(), []byte(`uot_workorders_total{run="join-agg",op="probe_dim"}`)) {
		t.Fatalf("Prometheus export missing probe sample:\n%s", prom.String())
	}
}

// TestTracingDoesNotChangeResults pins that attaching a tracer is purely
// observational: same plan, same results, tracer on or off.
func TestTracingDoesNotChangeResults(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 512)
	plain, err := Execute(buildJoinAggPlan(fact, dim), Options{Workers: 1, UoTBlocks: 2, TempBlockBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Execute(buildJoinAggPlan(fact, dim), Options{
		Workers: 1, UoTBlocks: 2, TempBlockBytes: 512,
		Trace: trace.New(64), TraceLabel: "observed",
	})
	if err != nil {
		t.Fatal(err)
	}
	pr, tw := Rows(plain.Table), Rows(traced.Table)
	if len(pr) != len(tw) {
		t.Fatalf("row counts differ: %d vs %d", len(pr), len(tw))
	}
	for i := range pr {
		for j := range pr[i] {
			if fmt.Sprint(pr[i][j]) != fmt.Sprint(tw[i][j]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, pr[i][j], tw[i][j])
			}
		}
	}
}
