package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// wideFixture builds a table whose select output is large relative to the
// memory budget under test.
func wideFixture(t *testing.T) *storage.Table {
	t.Helper()
	db := NewDB(4<<10, storage.ColumnStore)
	tbl := db.CreateTable("wide", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "pad", Type: types.Char, Width: 56},
	))
	l := storage.NewLoader(tbl)
	for i := 0; i < 20000; i++ {
		l.Append(types.NewInt64(int64(i)), types.NewString("xxxxxxxx"))
	}
	l.Close()
	return tbl
}

func passthroughPlan(tbl *storage.Table) *Builder {
	b := NewBuilder()
	s := tbl.Schema()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: tbl,
		Proj: []expr.Expr{expr.C(s, "k"), expr.C(s, "pad")}, ProjNames: []string{"k", "pad"},
	})
	agg := b.Agg(sel, exec.AggOpSpec{
		Name: "count",
		Aggs: []exec.AggSpec{{Func: exec.Count, Name: "n"}},
	})
	b.Collect(agg)
	return b
}

// TestMemoryBudgetPolicy: the Section III-C scheduler policy — holding
// block-producing work orders while over budget — must cut the peak
// temporary-block footprint without changing the result.
func TestMemoryBudgetPolicy(t *testing.T) {
	tbl := wideFixture(t)

	run := func(budget int64) (*Result, int64) {
		res, err := Execute(passthroughPlan(tbl), Options{
			Workers: 8, UoTBlocks: 4, TempBlockBytes: 4 << 10, MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Run.Intermediates.High()
	}

	resFree, peakFree := run(0)
	resCapped, peakCapped := run(64 << 10)

	// Results identical.
	a, b := Rows(resFree.Table), Rows(resCapped.Table)
	if len(a) != 1 || len(b) != 1 || a[0][0].I != b[0][0].I || a[0][0].I != 20000 {
		t.Fatalf("results differ under budget: %v vs %v", a, b)
	}
	t.Logf("peak temp: unbounded=%d capped=%d", peakFree, peakCapped)
	// Only compare peaks when the unbounded run actually exceeded the
	// budget: on low-core hosts the unbounded schedule may never pile up
	// enough in-flight blocks to cross 64KiB, in which case the policy is
	// inactive and the two peaks are independent scheduling noise.
	if peakFree > 64<<10 && peakCapped > peakFree {
		t.Fatalf("budgeted run used more temp memory (%d) than unbounded (%d)", peakCapped, peakFree)
	}
	// The soft cap can overshoot by in-flight work orders' blocks, but it
	// must stay within a small multiple of the budget.
	if peakCapped > 4*(64<<10) {
		t.Fatalf("peak %d far exceeds the 64KiB budget", peakCapped)
	}
}

func TestMemoryBudgetDoesNotDeadlockWithBlockedConsumers(t *testing.T) {
	// A build→probe plan where the probe is gated: the budget policy must
	// still let the producer run once nothing is in flight.
	tbl := wideFixture(t)
	b := NewBuilder()
	s := tbl.Schema()
	selBuild := b.ScanSelect(exec.SelectSpec{
		Name: "scan_build", Base: tbl,
		Proj: []expr.Expr{expr.C(s, "k")}, ProjNames: []string{"k"},
	})
	bld, _ := b.Build(selBuild, exec.BuildSpec{
		Name: "build", KeyCols: []int{0}, ExpectedRows: 20000,
	})
	selProbe := b.ScanSelect(exec.SelectSpec{
		Name: "scan_probe", Base: tbl,
		Proj: []expr.Expr{expr.C(s, "k")}, ProjNames: []string{"k"},
	})
	probe := b.Probe(selProbe, bld, exec.ProbeSpec{
		Name: "probe", KeyCols: []int{0}, JoinType: exec.LeftSemi, ProbeProj: []int{0},
	})
	agg := b.Agg(probe, exec.AggOpSpec{
		Name: "count", Aggs: []exec.AggSpec{{Func: exec.Count, Name: "n"}},
	})
	b.Collect(agg)

	res, err := Execute(b, Options{
		Workers: 4, UoTBlocks: 1, TempBlockBytes: 4 << 10, MemoryBudget: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := Rows(res.Table); rows[0][0].I != 20000 {
		t.Fatalf("count = %v", rows[0][0])
	}
}

func TestPerEdgeUoTOverride(t *testing.T) {
	tbl := wideFixture(t)
	b := NewBuilder()
	s := tbl.Schema()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: tbl,
		Proj: []expr.Expr{expr.C(s, "k")}, ProjNames: []string{"k"},
	})
	agg := b.Agg(sel, exec.AggOpSpec{
		Name: "count", Aggs: []exec.AggSpec{{Func: exec.Count, Name: "n"}},
	})
	b.Collect(agg)
	// Force the select→agg edge to whole-table transfer while the run
	// default stays 1.
	b.SetEdgeUoT(sel, agg, core.UoTTable)

	res, err := Execute(b, Options{Workers: 2, UoTBlocks: 1, TempBlockBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rows := Rows(res.Table); rows[0][0].I != 20000 {
		t.Fatalf("count = %v", rows[0][0])
	}
	// With UoT=table on that edge, no agg work order may start before the
	// select finishes.
	var lastSel, firstAgg int64
	for _, w := range res.Run.Orders() {
		switch w.OpName {
		case "scan":
			if e := w.End.UnixNano(); e > lastSel {
				lastSel = e
			}
		case "count":
			if st := w.Start.UnixNano(); firstAgg == 0 || st < firstAgg {
				firstAgg = st
			}
		}
	}
	if firstAgg < lastSel {
		t.Fatal("edge-level UoT override was not honored")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetEdgeUoT on a missing edge should panic")
		}
	}()
	b.SetEdgeUoT(agg, sel, 1)
}
