// Partitioned-plan construction: the builder helpers that wire an exchange
// operator plus per-partition operator clones into a plan. The exchange
// hash-partitions its input by key into P partition-tagged edges; each clone
// consumes exactly one partition's stream and therefore owns its state
// outright — partition-local join builds insert without shard locks, and
// partition-local aggregations skip the global radix merge.
package engine

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

// SetPartitions sets the builder's default exchange fan-out, used by the
// Partitioned* helpers when called with parts == 0. A typical caller picks
// the value with costmodel.Partitions(rows, workers); 0 or 1 makes the
// helpers fall back to the ordinary unpartitioned operators.
func (b *Builder) SetPartitions(p int) { b.parts = p }

// resolveParts applies the builder default to an unspecified fan-out.
func (b *Builder) resolveParts(parts int) int {
	if parts <= 0 {
		parts = b.parts
	}
	return parts
}

// Exchange adds a hash-partitioning exchange over `from` keyed on keyCols.
// Downstream consumers of partition p attach with Plan().PipePart(...); the
// Partitioned* helpers below do this wiring for the common join and
// aggregation shapes. The operator is returned alongside the node so callers
// can inspect it after the run (partitioner, skew guard).
func (b *Builder) Exchange(from *Node, name string, keyCols []int, parts int) (*Node, *exchange.Op) {
	op := exchange.New(exchange.Spec{
		Name:        name,
		InputSchema: from.Schema,
		KeyCols:     keyCols,
		Partitions:  b.resolveParts(parts),
	})
	id := b.plan.AddOp(op)
	op.SetID(id)
	b.pipeFrom(from, id)
	return &Node{ID: id, Schema: op.OutSchema(), op: op}, op
}

// PartitionedHashJoin builds a hash join as P partition-local pipelines: both
// sides pass through an exchange keyed on their join columns (equal keys land
// in the same partition on both sides), and each partition gets its own build
// clone — PartitionLocal, MaxDOP 1, so inserts take the unlocked kernel — and
// its own probe clone reading that build's table. parts == 0 uses the builder
// default; a resolved fan-out of ≤ 1 falls back to the ordinary shared-table
// Build+Probe, which is the demotion target the equivalence tests compare
// against.
func (b *Builder) PartitionedHashJoin(buildFrom, probeFrom *Node, bspec exec.BuildSpec, pspec exec.ProbeSpec, parts int) *Node {
	parts = b.resolveParts(parts)
	if parts <= 1 {
		build, _ := b.Build(buildFrom, bspec)
		return b.Probe(probeFrom, build, pspec)
	}
	buildEx, bxOp := b.Exchange(buildFrom, bspec.Name, bspec.KeyCols, parts)
	probeEx, _ := b.Exchange(probeFrom, pspec.Name, pspec.KeyCols, parts)
	parts = bxOp.OutputPartitions() // actual (power-of-two, clamped) fan-out

	if b.plan.MaxDOP == nil {
		b.plan.MaxDOP = make(map[core.OpID]int, parts)
	}
	srcs := make([]core.OpID, 0, parts)
	var last *exec.ProbeOp
	var lastID core.OpID
	for p := 0; p < parts; p++ {
		bs := bspec
		bs.Name = bspec.Name + "/p" + strconv.Itoa(p)
		bs.InputSchema = buildEx.Schema
		bs.PartitionLocal = true
		if bspec.ExpectedRows > 0 {
			bs.ExpectedRows = bspec.ExpectedRows/parts + 1
		}
		bop := exec.NewBuildHash(bs)
		bid := exec.AddOp(b.plan, bop)
		b.plan.PipePart(buildEx.ID, bid, 0, 0, p)
		b.plan.MaxDOP[bid] = 1 // exclusive table access within the clone

		ps := pspec
		ps.Name = pspec.Name + "/p" + strconv.Itoa(p)
		ps.InputSchema = probeEx.Schema
		ps.Build = bop
		pop := exec.NewProbe(ps)
		pid := exec.AddOp(b.plan, pop)
		b.plan.PipePart(probeEx.ID, pid, 0, 0, p)
		b.plan.Block(bid, pid)

		srcs = append(srcs, pid)
		last, lastID = pop, pid
	}
	return &Node{ID: lastID, Schema: last.OutSchema(), op: last, srcs: srcs}
}

// PartitionedAgg builds a hash aggregation as P partition-local clones behind
// an exchange keyed on the group-by columns: every group lands in exactly one
// clone, so each clone's Final emits its groups directly (a single merge work
// order) instead of fanning out over a shared radix merge. Falls back to the
// ordinary Agg when the resolved fan-out is ≤ 1, when the aggregate is scalar
// (no group keys to partition on), or when a group key is not a plain
// int64/date column reference (the exchange cannot hash it).
func (b *Builder) PartitionedAgg(from *Node, spec exec.AggOpSpec, parts int) *Node {
	parts = b.resolveParts(parts)
	keyCols, ok := aggExchangeKeys(spec)
	if parts <= 1 || !ok {
		return b.Agg(from, spec)
	}
	ex, exOp := b.Exchange(from, spec.Name, keyCols, parts)
	parts = exOp.OutputPartitions()

	srcs := make([]core.OpID, 0, parts)
	var last *exec.AggOp
	var lastID core.OpID
	for p := 0; p < parts; p++ {
		as := spec
		as.Name = spec.Name + "/p" + strconv.Itoa(p)
		as.InputSchema = ex.Schema
		as.PartitionLocal = true
		op := exec.NewAgg(as)
		id := exec.AddOp(b.plan, op)
		b.plan.PipePart(ex.ID, id, 0, 0, p)
		srcs = append(srcs, id)
		last, lastID = op, id
	}
	return &Node{ID: lastID, Schema: last.OutSchema(), op: last, srcs: srcs}
}

// aggExchangeKeys extracts the exchange key columns from an aggregation's
// group-by: 1 or 2 plain int64/date column references, the same shape the
// aggregation fast path requires.
func aggExchangeKeys(spec exec.AggOpSpec) ([]int, bool) {
	if len(spec.GroupBy) < 1 || len(spec.GroupBy) > 2 {
		return nil, false
	}
	cols := make([]int, 0, len(spec.GroupBy))
	for _, g := range spec.GroupBy {
		c, ok := expr.AsPrimaryColRef(g)
		if !ok || (c.Ty != types.Int64 && c.Ty != types.Date) {
			return nil, false
		}
		cols = append(cols, c.Col)
	}
	return cols, true
}
