package engine

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/types"
)

// chaosOpts returns execution options with the given injector and generous
// retry headroom, so transient injected faults never fail the query.
func chaosOpts(inj *faults.Injector, workers int) Options {
	return Options{
		Workers:        workers,
		UoTBlocks:      1,
		TempBlockBytes: 4 << 10,
		Faults:         inj,
		MaxAttempts:    10,
		RetryBackoff:   time.Microsecond,
	}
}

func allSiteRates(rate float64) map[faults.Site]float64 {
	m := map[faults.Site]float64{}
	for _, s := range faults.Sites() {
		m[s] = rate
	}
	return m
}

// mustRows executes the plan and returns its sorted rows.
func mustRows(t *testing.T, b *Builder, opts Options, label string) ([][]types.Datum, *Result) {
	t.Helper()
	res, err := Execute(b, opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	rows := Rows(res.Table)
	SortRows(rows)
	return rows, res
}

// sameRows compares result sets exactly, except Float64 columns, which get a
// small relative tolerance: retried and demoted runs may legitimately sum
// float aggregates in a different order than the fault-free baseline.
func sameRows(a, b [][]types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Ty == types.Float64 && y.Ty == types.Float64 {
				diff, scale := x.F-y.F, 1.0
				if ax := x.F; ax < 0 {
					ax = -ax
					if ax > scale {
						scale = ax
					}
				} else if ax > scale {
					scale = ax
				}
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-6*scale {
					return false
				}
				continue
			}
			if types.Compare(x, y) != 0 {
				return false
			}
		}
	}
	return true
}

func buildSelectPlan(fact *storage.Table) *Builder {
	b := NewBuilder()
	fs := fact.Schema()
	sel := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Pred:      expr.Lt(expr.C(fs, "v"), expr.Float(50)),
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "v")},
		ProjNames: []string{"k", "v"},
	})
	b.Collect(sel)
	return b
}

// TestRetryIdempotence is the satellite-4 contract: a plan executed under
// injected faults — work orders failing, rolling back, and retrying; fast
// paths demoting — produces results identical to the fault-free run, for a
// pure select, a build+probe join with aggregation, and across several
// seeds. Nothing may leak.
func TestRetryIdempotence(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 4<<10)

	plans := []struct {
		name  string
		build func() *Builder
	}{
		{"select", func() *Builder { return buildSelectPlan(fact) }},
		{"join-probe-agg", func() *Builder { return buildJoinAggPlan(fact, dim) }},
	}
	for _, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			base, _ := mustRows(t, p.build(), Options{
				Workers: 2, UoTBlocks: 1, TempBlockBytes: 4 << 10,
			}, "fault-free")
			if len(base) == 0 {
				t.Fatal("fault-free baseline is empty")
			}
			var injected int64
			for seed := uint64(1); seed <= 5; seed++ {
				inj := faults.New(faults.Config{
					Seed:       seed,
					Rates:      allSiteRates(0.05),
					MaxLatency: 50 * time.Microsecond,
				})
				rows, res := mustRows(t, p.build(), chaosOpts(inj, 2), "chaos")
				if !sameRows(base, rows) {
					t.Fatalf("seed %d: chaos result differs from fault-free baseline", seed)
				}
				r := res.Run.Robust()
				if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
					t.Fatalf("seed %d: leaks after chaos run: %+v", seed, r)
				}
				if r.FaultsInjected != int64(inj.Injected()) {
					t.Fatalf("seed %d: stats faults=%d, injector=%d", seed, r.FaultsInjected, inj.Injected())
				}
				injected += r.FaultsInjected
			}
			if injected == 0 {
				t.Fatal("no faults injected across all seeds; chaos rates too low to test anything")
			}
		})
	}
}

// TestDemotionPreservesResults drives the demotable fast-path sites at rate
// 1.0: the very first fast-path attempt faults, the operator demotes to its
// reference path, and the retried work orders must still produce the exact
// fault-free result.
func TestDemotionPreservesResults(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 4<<10)
	base, _ := mustRows(t, buildJoinAggPlan(fact, dim), Options{
		Workers: 2, UoTBlocks: 1, TempBlockBytes: 4 << 10,
	}, "fault-free")

	for _, site := range []faults.Site{faults.HashInsert, faults.AggUpsert} {
		t.Run(site.String(), func(t *testing.T) {
			inj := faults.New(faults.Config{
				Seed:  7,
				Rates: map[faults.Site]float64{site: 1},
				Kinds: []faults.Kind{faults.KindError},
			})
			rows, res := mustRows(t, buildJoinAggPlan(fact, dim), chaosOpts(inj, 2), "demotion")
			if !sameRows(base, rows) {
				t.Fatal("demoted run result differs from fault-free baseline")
			}
			r := res.Run.Robust()
			if r.Demotions == 0 {
				t.Fatal("fast path was never demoted despite rate-1.0 faults")
			}
			if r.Retries == 0 {
				t.Fatal("demotion did not go through the retry path")
			}
		})
	}
}

// TestFaultScheduleReplay: at one worker the execution order is
// deterministic, so the same seed must consult the injector in the same
// order and fire the identical fault schedule — the replayability the chaos
// harness depends on.
func TestFaultScheduleReplay(t *testing.T) {
	_, fact, dim := fixture(t, storage.ColumnStore, 4<<10)
	run := func(seed uint64) []faults.Event {
		inj := faults.New(faults.Config{
			Seed:  seed,
			Rates: allSiteRates(0.1),
			Kinds: []faults.Kind{faults.KindError},
		})
		if _, err := Execute(buildJoinAggPlan(fact, dim), chaosOpts(inj, 1)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return inj.Schedule()
	}
	s1, s2 := run(42), run(42)
	if len(s1) == 0 {
		t.Fatal("seed 42 fired no faults; schedule comparison is vacuous")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed fired different schedules:\n  first:  %v\n  second: %v", s1, s2)
	}
	if s3 := run(43); reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds fired identical schedules")
	}
}
