package stats

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentSnapshotNoTornReads is the torn-read audit for the stats
// package: it hammers every writer entry point from worker goroutines while a
// reader goroutine continuously takes the same snapshots a mid-run metrics
// export would (Orders, PerOp, Robust, Checkouts, WallTime, gauge reads).
// The test asserts exact final totals; under -race it additionally proves
// that no snapshot path reads a counter without synchronization — the class
// of bug that motivated making poolCheckouts private.
func TestConcurrentSnapshotNoTornReads(t *testing.T) {
	const (
		writers       = 8
		opsPerWriter  = 500
		bytesPerOrder = 64
	)
	r := NewRun()

	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Every read-side accessor a concurrent metrics snapshot uses.
			_ = r.Orders()
			for _, o := range r.PerOp() {
				if o.Rows < 0 || o.Count < 0 {
					t.Error("impossible per-op totals")
					return
				}
			}
			rb := r.Robust()
			if rb.Retries < 0 || rb.Demotions < 0 {
				t.Error("negative robustness counter")
				return
			}
			if r.Checkouts() < 0 || r.WallTime() < 0 {
				t.Error("negative checkout count or wall time")
				return
			}
			if r.HashTables.Live() > r.HashTables.High() {
				t.Error("gauge live exceeded high-water mark")
				return
			}
			_ = r.TotalSim()
			_, _, _ = r.Contention()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := time.Now()
			for i := 0; i < opsPerWriter; i++ {
				r.Record(WorkOrder{
					OpID: w % 3, OpName: "op", Worker: w,
					Start: now, End: now.Add(time.Microsecond),
					Rows: 10, RowsOut: 5, Sim: 7,
					Demotions: int64(i % 2),
				})
				r.AddCheckout()
				r.AddRetry()
				r.AddFailedAttempt()
				r.AddDeadlineHit()
				r.AddUoTRaise()
				r.AddCancellations(1)
				r.AddFaults(1)
				r.HashTables.Add(bytesPerOrder)
				r.Intermediates.Add(bytesPerOrder)
				r.HashTables.Sub(bytesPerOrder)
				r.Intermediates.Sub(bytesPerOrder)
			}
		}()
	}
	wg.Wait()
	r.SetLeaks(0, 0)
	r.Finish()
	close(stop)
	readerDone.Wait()

	const total = writers * opsPerWriter
	if n := len(r.Orders()); n != total {
		t.Fatalf("recorded %d orders, want %d", n, total)
	}
	var rows, rowsOut, sim int64
	for _, o := range r.PerOp() {
		rows += o.Rows
		rowsOut += o.RowsOut
		sim += o.SimTotal
	}
	if rows != total*10 || rowsOut != total*5 || sim != total*7 {
		t.Fatalf("totals rows=%d rowsOut=%d sim=%d, want %d/%d/%d",
			rows, rowsOut, sim, total*10, total*5, total*7)
	}
	if got := r.Checkouts(); got != total {
		t.Fatalf("checkouts = %d, want %d", got, total)
	}
	rb := r.Robust()
	if rb.Retries != total || rb.FailedAttempts != total || rb.DeadlineHits != total ||
		rb.UoTRaises != total || rb.Cancellations != total || rb.FaultsInjected != total {
		t.Fatalf("robustness counters = %+v, want all %d", rb, total)
	}
	if rb.Demotions != total/2 {
		t.Fatalf("demotions = %d, want %d", rb.Demotions, total/2)
	}
	if r.HashTables.Live() != 0 || r.HashTables.High() < bytesPerOrder {
		t.Fatalf("hash-table gauge live=%d high=%d", r.HashTables.Live(), r.HashTables.High())
	}
	if r.WallTime() <= 0 {
		t.Fatal("non-positive wall time after Finish")
	}
}
