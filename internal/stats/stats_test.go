package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMemGaugeHighWater(t *testing.T) {
	var g MemGauge
	g.Add(100)
	g.Add(50)
	g.Sub(120)
	if g.Live() != 30 {
		t.Fatalf("live = %d", g.Live())
	}
	if g.High() != 150 {
		t.Fatalf("high = %d", g.High())
	}
	g.Add(200)
	if g.High() != 230 {
		t.Fatalf("high after regrow = %d", g.High())
	}
	g.Reset()
	if g.Live() != 0 || g.High() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMemGaugeConcurrent(t *testing.T) {
	var g MemGauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(10)
				g.Sub(10)
			}
		}()
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Fatalf("live = %d", g.Live())
	}
	if g.High() < 10 {
		t.Fatalf("high = %d", g.High())
	}
}

// Property: high water is monotone and never below live.
func TestMemGaugeInvariantProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		var g MemGauge
		var prevHigh int64
		for _, d := range deltas {
			if d >= 0 {
				g.Add(int64(d))
			} else {
				g.Sub(int64(-d))
			}
			h := g.High()
			if h < prevHigh || h < g.Live() {
				return false
			}
			prevHigh = h
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunAggregation(t *testing.T) {
	r := NewRun()
	t0 := time.Now()
	r.Record(WorkOrder{OpID: 1, OpName: "select", Start: t0, End: t0.Add(10 * time.Millisecond), Sim: 100, Rows: 5, RowsOut: 3})
	r.Record(WorkOrder{OpID: 1, OpName: "select", Start: t0, End: t0.Add(20 * time.Millisecond), Sim: 200, Rows: 7, RowsOut: 4})
	r.Record(WorkOrder{OpID: 2, OpName: "probe", Start: t0, End: t0.Add(5 * time.Millisecond), Sim: 50, Rows: 3})
	r.Finish()

	per := r.PerOp()
	if len(per) != 2 {
		t.Fatalf("ops = %d", len(per))
	}
	sel := per[0]
	if sel.OpID != 1 || sel.Count != 2 || sel.Rows != 12 || sel.RowsOut != 7 {
		t.Fatalf("select totals: %+v", sel)
	}
	if sel.WallTotal != 30*time.Millisecond || sel.AvgWall() != 15*time.Millisecond {
		t.Fatalf("select wall: %v avg %v", sel.WallTotal, sel.AvgWall())
	}
	if sel.SimTotal != 300 || sel.AvgSim() != 150 {
		t.Fatalf("select sim: %d avg %d", sel.SimTotal, sel.AvgSim())
	}
	if got := r.Op(2); got.Count != 1 {
		t.Fatalf("Op(2) = %+v", got)
	}
	if got := r.Op(99); got.Count != 0 {
		t.Fatalf("missing op should be zero: %+v", got)
	}
	if r.TotalSim() != 350 {
		t.Fatalf("total sim = %d", r.TotalSim())
	}
	if r.TotalWallWork() != 35*time.Millisecond {
		t.Fatalf("total wall work = %v", r.TotalWallWork())
	}
	if r.WallTime() <= 0 {
		t.Fatal("wall time should be positive")
	}
}

func TestRunConcurrentRecord(t *testing.T) {
	r := NewRun()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(WorkOrder{OpID: w % 3, OpName: "op", Rows: 1})
				r.AddCheckout()
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Orders()); got != 4000 {
		t.Fatalf("orders = %d", got)
	}
	if r.Checkouts() != 4000 {
		t.Fatalf("checkouts = %d", r.Checkouts())
	}
	var rows int64
	for _, op := range r.PerOp() {
		rows += op.Rows
	}
	if rows != 4000 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestZeroCountAverages(t *testing.T) {
	var o OpTotals
	if o.AvgWall() != 0 || o.AvgSim() != 0 {
		t.Fatal("zero-count averages should be zero")
	}
}
