// Package stats collects run statistics: per-work-order and per-operator
// timings (wall clock and simulated cache-model ticks) and byte-exact memory
// gauges. Explicit accounting is used instead of runtime.MemStats because Go
// GC timing would otherwise obscure the footprint comparisons of Section VI
// of the paper.
package stats

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MemGauge tracks live bytes and the high-water mark of one memory class.
// It is safe for concurrent use.
type MemGauge struct {
	live int64
	high int64
}

// Add records an allocation of n bytes and updates the high-water mark.
func (g *MemGauge) Add(n int64) {
	v := atomic.AddInt64(&g.live, n)
	for {
		h := atomic.LoadInt64(&g.high)
		if v <= h || atomic.CompareAndSwapInt64(&g.high, h, v) {
			return
		}
	}
}

// Sub records a release of n bytes.
func (g *MemGauge) Sub(n int64) { atomic.AddInt64(&g.live, -n) }

// Live returns the current live bytes.
func (g *MemGauge) Live() int64 { return atomic.LoadInt64(&g.live) }

// High returns the high-water mark in bytes.
func (g *MemGauge) High() int64 { return atomic.LoadInt64(&g.high) }

// Reset zeroes the gauge.
func (g *MemGauge) Reset() {
	atomic.StoreInt64(&g.live, 0)
	atomic.StoreInt64(&g.high, 0)
}

// WorkOrder records one executed work order.
type WorkOrder struct {
	OpID    int
	OpName  string
	Worker  int
	Start   time.Time
	End     time.Time
	Sim     int64 // simulated ticks (ns) charged by the cache model, 0 if no sim
	Rows    int64 // input rows processed
	RowsOut int64 // output rows produced

	// Contention counters from the batch kernels (see core.Output).
	ShardLocks  int64 // hash-table shard-lock acquisitions
	BatchedRows int64 // rows processed by block-granular batch kernels
	ScratchHits int64 // scratch-buffer pool reuse hits

	// Aggregation-kernel counters (see core.Output).
	AggPartials     int64 // thread-local partial aggregation tables created
	AggMergeFanout  int64 // radix-partition merge work orders
	AggFastRows     int64 // rows through the vectorized fixed-width path
	AggFallbackRows int64 // rows through the reference map path

	// Sort-kernel counters (see core.Output).
	SortRuns         int64 // sorted runs produced by run generation
	SortMergeFanout  int64 // range-partitioned merge work orders
	SortFastRows     int64 // rows sorted through the normalized-key path
	SortFallbackRows int64 // rows sorted through the reference Datum path
	TopKPruned       int64 // rows pruned by the bounded top-k heap

	// Exchange-kernel counters (see core.Output).
	ExchangeRows      int64 // rows scattered into partition-local streams
	RepartitionFanout int64 // distinct partition streams scattered into
	PartitionSkew     int64 // skew-guard trips (>50% of rows in one partition)

	// Robustness fields: which execution attempt this record is (1 = first)
	// and whether the attempt failed. Failed attempts are rolled back by the
	// scheduler, so their row and kernel counters are excluded from operator
	// totals.
	Attempt int
	Failed  bool

	// Demotions counts fast-path → reference-path operator demotions
	// triggered by this work order.
	Demotions int64
}

// Wall returns the wall-clock duration of the work order.
func (w WorkOrder) Wall() time.Duration { return w.End.Sub(w.Start) }

// OpTotals aggregates all work orders of one operator.
type OpTotals struct {
	OpID      int
	Name      string
	Count     int
	WallTotal time.Duration
	SimTotal  int64
	Rows      int64
	RowsOut   int64

	ShardLocks  int64
	BatchedRows int64
	ScratchHits int64

	AggPartials     int64
	AggMergeFanout  int64
	AggFastRows     int64
	AggFallbackRows int64

	SortRuns         int64
	SortMergeFanout  int64
	SortFastRows     int64
	SortFallbackRows int64
	TopKPruned       int64

	ExchangeRows      int64
	RepartitionFanout int64
	PartitionSkew     int64

	// FailedAttempts counts rolled-back work-order attempts of the operator
	// (they are included in Count and WallTotal — the time was spent — but
	// not in the row or kernel counters).
	FailedAttempts int
}

// AvgWall returns the mean wall-clock work-order time.
func (o OpTotals) AvgWall() time.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.WallTotal / time.Duration(o.Count)
}

// AvgSim returns the mean simulated work-order time in ticks.
func (o OpTotals) AvgSim() int64 {
	if o.Count == 0 {
		return 0
	}
	return o.SimTotal / int64(o.Count)
}

// Run accumulates the statistics of one query execution. All methods are
// safe for concurrent use by workers.
type Run struct {
	mu     sync.Mutex
	orders []WorkOrder
	start  time.Time
	end    time.Time

	// HashTables gauges join/aggregation hash-table bytes; Intermediates
	// gauges materialized temporary-block bytes — the two memory classes
	// Table II of the paper compares.
	HashTables    MemGauge
	Intermediates MemGauge

	// poolCheckouts counts temporary-block checkouts, a proxy for storage
	// management overhead at small block sizes. It is written with atomics
	// from worker goroutines and must only be read through Checkouts();
	// it was previously an exported field read without synchronization,
	// which is a torn read on 32-bit targets and a data race everywhere
	// when a metrics snapshot runs concurrently with the query.
	poolCheckouts int64

	robust   Robustness
	spill    Spill
	reuse    Reuse
	edgeUoTs []EdgeUoT

	// query/label identify the run among concurrent runs (serving layer);
	// query is -1 until SetQuery is called.
	query int
	label string
}

// SetQuery labels the run with its query id and display label, so snapshots
// of concurrent runs are attributable (the serving layer sets it at
// admission).
func (r *Run) SetQuery(id int, label string) {
	r.mu.Lock()
	r.query = id
	r.label = label
	r.mu.Unlock()
}

// Query returns the run's query id (-1 if never set).
func (r *Run) Query() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.query
}

// Label returns the run's display label ("" if never set).
func (r *Run) Label() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.label
}

// EdgeUoT is the per-pipelined-edge UoT story of one run, recorded by the
// scheduler at run end. Start is the *resolved* starting UoT (the declared
// per-edge value, the run default, or the adaptive controller's model
// prior), so experiments need not re-derive the Edge.UoT==0 fallback; Final
// is where the edge ended up, and the counters attribute every controller
// decision along the way.
type EdgeUoT struct {
	From, To         int    // operator IDs
	FromName, ToName string // operator display names
	Input            int    // consumer input index
	Declared         int    // per-edge UoT from the plan (0 = run default)
	Start            int    // resolved starting UoT
	Final            int    // UoT when the run ended
	Raises           int64  // UoT increases (feedback or memory pressure)
	Lowers           int64  // UoT decreases (feedback)
	Holds            int64  // observations that left the UoT unchanged
	Snaps            int64  // snaps to UoTTable past the ceiling
}

// Robustness aggregates the fault-tolerance counters of one run: what the
// injector fired, how the scheduler reacted (retries, deadline hits,
// cancellations, degradations), and what the post-run invariant checker
// found.
type Robustness struct {
	// FaultsInjected is the number of faults the injector fired (all
	// kinds, latency included).
	FaultsInjected int64
	// FailedAttempts counts work-order attempts that returned an error and
	// were rolled back.
	FailedAttempts int64
	// Retries counts transient failures that were re-dispatched.
	Retries int64
	// Demotions counts fast-path → reference-path operator demotions.
	Demotions int64
	// DeadlineHits counts attempts that exceeded the per-work-order
	// deadline.
	DeadlineHits int64
	// Cancellations counts queued work orders dropped when the run failed
	// or was canceled.
	Cancellations int64
	// UoTRaises counts producer-edge UoT raises under sustained memory
	// pressure (the degradation ladder's last rung). UoTSnaps counts the
	// terminal step separately: edges snapped all the way to UoTTable past
	// the degradation ceiling.
	UoTRaises int64
	UoTSnaps  int64
	// LeakedBlocks is the invariant checker's count of blocks still
	// buffered on edges, held by operators, or checked in as partials
	// after the run; OutstandingRefs is its count of live refcount
	// entries. Both must be zero.
	LeakedBlocks    int64
	OutstandingRefs int64
}

// Spill is one run's spill-tier activity: how many temp blocks the disk
// tier absorbed and returned, the stall cost of the read-through path, the
// disk high-water mark, and the stall-and-retry demotion counts of the
// spill_write/spill_read fault sites. Copied once from the tier's own
// counters at run end (engine.Execute), so there is no double counting with
// the scheduler's trace marks.
type Spill struct {
	BlocksOut, BytesOut int64 // evictions: blocks written to extent files
	BlocksIn, BytesIn   int64 // fault-ins: blocks read back before delivery
	FaultStallNS        int64 // wall time deliveries blocked on fault-in
	WriteFaults         int64 // evictions demoted to stall-and-retry
	ReadFaults          int64 // fault-in read attempts that were retried
	DiskLive            int64 // extent bytes still live at snapshot time
	DiskPeak            int64 // extent-byte high-water mark
}

// Reuse is one run's result-cache activity: whether a cached entry was
// spliced into the plan (and what that pruned), and what the run's cold side
// contributed back (captures admitted or rejected). Copied once from the
// engine's reuse bookkeeping at run end, like Spill.
type Reuse struct {
	Hit         bool  // a cached result was spliced into the plan
	SplicedOps  int64 // operators pruned from the plan by hit-splices
	HitBytes    int64 // cached bytes the spliced scans read
	Captured    int64 // capture taps whose block sets were admitted
	CaptureRej  int64 // capture taps taken but rejected by admission
	BytesPinned int64 // bytes this run added to the cache
}

// SetReuse records the run's reuse-cache snapshot.
func (r *Run) SetReuse(u Reuse) {
	r.mu.Lock()
	r.reuse = u
	r.mu.Unlock()
}

// Reuse returns the run's reuse-cache snapshot (zero without a cache).
func (r *Run) Reuse() Reuse {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reuse
}

// SetSpill records the run's spill-tier snapshot.
func (r *Run) SetSpill(s Spill) {
	r.mu.Lock()
	r.spill = s
	r.mu.Unlock()
}

// Spill returns the run's spill-tier snapshot (zero without a spill tier).
func (r *Run) Spill() Spill {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spill
}

// Robust returns a snapshot of the run's robustness counters.
func (r *Run) Robust() Robustness {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.robust
}

// AddFaults adds n injector-fired faults to the snapshot (recorded once per
// run from the injector's own counter).
func (r *Run) AddFaults(n int64) {
	r.mu.Lock()
	r.robust.FaultsInjected += n
	r.mu.Unlock()
}

// AddFailedAttempt records one rolled-back work-order attempt.
func (r *Run) AddFailedAttempt() {
	r.mu.Lock()
	r.robust.FailedAttempts++
	r.mu.Unlock()
}

// AddRetry records one transient failure re-dispatched by the scheduler.
func (r *Run) AddRetry() {
	r.mu.Lock()
	r.robust.Retries++
	r.mu.Unlock()
}

// AddDeadlineHit records one attempt that exceeded the work-order deadline.
func (r *Run) AddDeadlineHit() {
	r.mu.Lock()
	r.robust.DeadlineHits++
	r.mu.Unlock()
}

// AddCancellations records n work orders dropped by a failing or canceled
// run.
func (r *Run) AddCancellations(n int64) {
	r.mu.Lock()
	r.robust.Cancellations += n
	r.mu.Unlock()
}

// AddUoTRaise records one producer-edge UoT raise under memory pressure.
func (r *Run) AddUoTRaise() {
	r.mu.Lock()
	r.robust.UoTRaises++
	r.mu.Unlock()
}

// AddUoTSnap records one edge snapped to UoTTable past the degradation
// ceiling.
func (r *Run) AddUoTSnap() {
	r.mu.Lock()
	r.robust.UoTSnaps++
	r.mu.Unlock()
}

// SetEdgeUoTs records the per-edge UoT snapshot (scheduler, at run end).
func (r *Run) SetEdgeUoTs(edges []EdgeUoT) {
	r.mu.Lock()
	r.edgeUoTs = edges
	r.mu.Unlock()
}

// EdgeUoTs returns a copy of the per-edge UoT snapshot, one entry per
// pipelined edge in plan order (nil before the run finishes).
func (r *Run) EdgeUoTs() []EdgeUoT {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EdgeUoT, len(r.edgeUoTs))
	copy(out, r.edgeUoTs)
	return out
}

// SetLeaks records the invariant checker's post-run leak counts.
func (r *Run) SetLeaks(blocks, refs int64) {
	r.mu.Lock()
	r.robust.LeakedBlocks = blocks
	r.robust.OutstandingRefs = refs
	r.mu.Unlock()
}

// NewRun returns an empty Run with the start time set to now.
func NewRun() *Run { return &Run{start: time.Now(), query: -1} }

// Record appends a completed work order (attempt).
func (r *Run) Record(w WorkOrder) {
	r.mu.Lock()
	r.orders = append(r.orders, w)
	r.robust.Demotions += w.Demotions
	r.mu.Unlock()
}

// AddCheckout bumps the pool-checkout counter.
func (r *Run) AddCheckout() { atomic.AddInt64(&r.poolCheckouts, 1) }

// Checkouts returns the pool-checkout count; safe to call while workers are
// still recording.
func (r *Run) Checkouts() int64 { return atomic.LoadInt64(&r.poolCheckouts) }

// Finish stamps the end of the run.
func (r *Run) Finish() {
	r.mu.Lock()
	r.end = time.Now()
	r.mu.Unlock()
}

// WallTime returns the total run duration (now, if Finish was not called).
// Safe to call concurrently with Finish (a mid-run metrics snapshot).
func (r *Run) WallTime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end.IsZero() {
		return time.Since(r.start)
	}
	return r.end.Sub(r.start)
}

// Orders returns a copy of all recorded work orders in completion order.
func (r *Run) Orders() []WorkOrder {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkOrder, len(r.orders))
	copy(out, r.orders)
	return out
}

// PerOp aggregates work orders per operator, sorted by operator ID.
func (r *Run) PerOp() []OpTotals {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := map[int]*OpTotals{}
	for _, w := range r.orders {
		t := m[w.OpID]
		if t == nil {
			t = &OpTotals{OpID: w.OpID, Name: w.OpName}
			m[w.OpID] = t
		}
		t.Count++
		t.WallTotal += w.Wall()
		t.SimTotal += w.Sim
		if w.Failed {
			// The attempt was rolled back: its time was spent but its
			// output (and kernel work) does not count.
			t.FailedAttempts++
			continue
		}
		t.Rows += w.Rows
		t.RowsOut += w.RowsOut
		t.ShardLocks += w.ShardLocks
		t.BatchedRows += w.BatchedRows
		t.ScratchHits += w.ScratchHits
		t.AggPartials += w.AggPartials
		t.AggMergeFanout += w.AggMergeFanout
		t.AggFastRows += w.AggFastRows
		t.AggFallbackRows += w.AggFallbackRows
		t.SortRuns += w.SortRuns
		t.SortMergeFanout += w.SortMergeFanout
		t.SortFastRows += w.SortFastRows
		t.SortFallbackRows += w.SortFallbackRows
		t.TopKPruned += w.TopKPruned
		t.ExchangeRows += w.ExchangeRows
		t.RepartitionFanout += w.RepartitionFanout
		t.PartitionSkew += w.PartitionSkew
	}
	out := make([]OpTotals, 0, len(m))
	for _, t := range m {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OpID < out[j].OpID })
	return out
}

// Op returns the totals for one operator ID (zero value if it never ran).
func (r *Run) Op(opID int) OpTotals {
	for _, t := range r.PerOp() {
		if t.OpID == opID {
			return t
		}
	}
	return OpTotals{OpID: opID}
}

// TotalSim returns the sum of simulated ticks across all work orders.
func (r *Run) TotalSim() int64 {
	var s int64
	for _, t := range r.PerOp() {
		s += t.SimTotal
	}
	return s
}

// Contention sums the batch-kernel contention counters across all work
// orders: shard-lock acquisitions, rows processed through batch kernels,
// and scratch-buffer reuse hits.
func (r *Run) Contention() (shardLocks, batchedRows, scratchHits int64) {
	for _, t := range r.PerOp() {
		shardLocks += t.ShardLocks
		batchedRows += t.BatchedRows
		scratchHits += t.ScratchHits
	}
	return
}

// AggKernels sums the aggregation-kernel counters across all work orders:
// partial tables created, merge work orders run (the merge fan-out), and
// rows aggregated through the vectorized vs the reference path.
func (r *Run) AggKernels() (partials, mergeFanout, fastRows, fallbackRows int64) {
	for _, t := range r.PerOp() {
		partials += t.AggPartials
		mergeFanout += t.AggMergeFanout
		fastRows += t.AggFastRows
		fallbackRows += t.AggFallbackRows
	}
	return
}

// SortKernels sums the sort-kernel counters across all work orders: sorted
// runs generated, merge work orders run (the merge fan-out), rows sorted
// through the normalized-key vs the reference path, and rows pruned by the
// top-k heap.
func (r *Run) SortKernels() (runs, mergeFanout, fastRows, fallbackRows, topkPruned int64) {
	for _, t := range r.PerOp() {
		runs += t.SortRuns
		mergeFanout += t.SortMergeFanout
		fastRows += t.SortFastRows
		fallbackRows += t.SortFallbackRows
		topkPruned += t.TopKPruned
	}
	return
}

// ExchangeKernels sums the exchange-kernel counters across all work orders:
// rows scattered into partition-local streams, the realized repartition
// fan-out, and skew-guard trips.
func (r *Run) ExchangeKernels() (rows, fanout, skew int64) {
	for _, t := range r.PerOp() {
		rows += t.ExchangeRows
		fanout += t.RepartitionFanout
		skew += t.PartitionSkew
	}
	return
}

// TotalWallWork returns the sum of wall-clock work-order durations (CPU work,
// not makespan).
func (r *Run) TotalWallWork() time.Duration {
	var s time.Duration
	for _, t := range r.PerOp() {
		s += t.WallTotal
	}
	return s
}
