package reuse

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config sizes a Cache.
type Config struct {
	// Budget is the RAM budget in bytes for pinned entries. The session
	// layer carves it out of its MemoryBudget so admission control stays
	// truthful about what the cache holds. Required > 0.
	Budget int64
	// MaxEntryBytes caps one entry (default Budget/4); larger results are
	// not admitted — a single huge entry that evicts everything else is
	// rarely the benefit-optimal use of the budget.
	MaxEntryBytes int64
	// Dir, if non-empty, lets cold entries cool to disk through the block
	// codec instead of being evicted outright; they fault back in on the
	// next hit. The directory is created on demand and removed by Close.
	Dir string
	// DiskBudget bounds cooled bytes (default 8×Budget; only with Dir).
	DiskBudget int64
	// Trace, if non-nil, receives MarkReuseEvict annotations.
	Trace *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxEntryBytes <= 0 {
		c.MaxEntryBytes = c.Budget / 4
	}
	if c.Dir != "" && c.DiskBudget <= 0 {
		c.DiskBudget = 8 * c.Budget
	}
	return c
}

// Counters is a snapshot of the cache's statistics.
type Counters struct {
	Hits, Misses       int64 // Lookup outcomes
	Admissions         int64 // entries accepted
	RejectedAdmissions int64 // entries refused (size, benefit, or races)
	Evictions          int64 // entries dropped to make room
	Invalidations      int64 // entries dropped on a base-table version bump
	Cooled, FaultedIn  int64 // tier transitions through the codec
	FlightLeaders      int64 // single-flight computations started
	FlightWaits        int64 // submissions that waited on a leader

	Entries     int64 // current entry count (hot + cooled)
	BytesPinned int64 // current RAM bytes held by hot entries
	DiskBytes   int64 // current cooled bytes on disk
	Pins        int64 // currently outstanding entry pins
}

// entry is one cached subplan result. Hot entries hold table; cooled
// entries hold file instead (encoded blocks on disk).
type entry struct {
	fp      Fingerprint
	table   *storage.Table
	deps    []Dep
	bytes   int64 // RAM alloc bytes when hot
	rows    int64
	benefit float64 // recompute ticks per byte (admission/eviction rank)
	ops     int
	pins    int
	clock   int64  // last-use tick for benefit ties
	file    string // cooled block file ("" when hot)
	fileLen int64
}

// flight is one in-progress cold computation other submissions of the same
// fingerprint wait on.
type flight struct {
	done chan struct{}
}

// Cache is the cross-query result cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	entries map[Fingerprint]*entry
	flights map[Fingerprint]*flight
	ram     int64
	disk    int64
	pins    int64
	clock   int64
	closed  bool
	ctr     Counters
}

// New returns an empty cache. It panics on a non-positive budget — a
// misconfiguration better surfaced at startup.
func New(cfg Config) *Cache {
	if cfg.Budget <= 0 {
		panic("reuse: cache needs a positive Budget")
	}
	cfg = cfg.withDefaults()
	return &Cache{
		cfg:     cfg,
		entries: make(map[Fingerprint]*entry),
		flights: make(map[Fingerprint]*flight),
	}
}

// MaxEntryBytes returns the per-entry admission cap; capture taps size
// their overflow guard with it so a copy that can never be admitted is
// abandoned early.
func (c *Cache) MaxEntryBytes() int64 { return c.cfg.MaxEntryBytes }

// Entry is a pinned handle on a cache hit: the entry cannot be evicted,
// cooled, or invalidated away while pinned. Release it when the consuming
// run is over.
type Entry struct {
	c  *Cache
	e  *entry
	t  *storage.Table
	fp Fingerprint
}

// Table returns the pinned, immutable result block set as a scannable
// table.
func (h *Entry) Table() *storage.Table { return h.t }

// Bytes returns the entry's RAM footprint.
func (h *Entry) Bytes() int64 { return h.e.bytes }

// Rows returns the entry's row count.
func (h *Entry) Rows() int64 { return h.e.rows }

// Release unpins the entry. Safe to call once per Lookup.
func (h *Entry) Release() {
	c := h.c
	c.mu.Lock()
	h.e.pins--
	c.pins--
	c.mu.Unlock()
}

// Lookup probes the cache. On a hit the entry is validated against its base
// table versions (stale entries are dropped and the probe misses), faulted
// back in from disk if cooled, pinned, and returned; nil is a miss.
func (c *Cache) Lookup(fp Fingerprint) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if ok && c.closed {
		ok = false
	}
	if ok {
		for _, d := range e.deps {
			if d.Table.Version() != d.Version {
				c.dropLocked(e, &c.ctr.Invalidations)
				ok = false
				break
			}
		}
	}
	if !ok {
		c.ctr.Misses++
		return nil
	}
	if e.table == nil {
		if !c.faultInLocked(e) {
			c.ctr.Misses++
			return nil
		}
	}
	c.clock++
	e.clock = c.clock
	e.pins++
	c.pins++
	c.ctr.Hits++
	return &Entry{c: c, e: e, t: e.table, fp: fp}
}

// Admit offers a materialized result to the cache. The entry's rank is its
// recompute cost per byte — the conservative costmodel floor for a
// subtree of ops operators, or the measured recompute time in ticks if
// larger. Admission may cool or evict strictly lower-benefit unpinned
// entries to make room; if room cannot be made (everything resident is
// pinned or more valuable), the candidate is rejected. Returns whether the
// entry was admitted; rejected tables stay owned by the caller.
func (c *Cache) Admit(fp Fingerprint, t *storage.Table, deps []Dep, measuredTicks float64, ops int) bool {
	bytes := t.AllocBytes()
	benefit := costmodel.RecomputeCost(bytes, ops)
	if measuredTicks > benefit {
		benefit = measuredTicks
	}
	if bytes > 0 {
		benefit /= float64(bytes)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || bytes > c.cfg.MaxEntryBytes {
		c.ctr.RejectedAdmissions++
		return false
	}
	if _, ok := c.entries[fp]; ok {
		c.ctr.RejectedAdmissions++ // a concurrent fill won the race
		return false
	}
	for _, d := range deps {
		if d.Table.Version() != d.Version {
			c.ctr.RejectedAdmissions++ // base table moved during the fill
			return false
		}
	}
	if !c.makeRoomLocked(bytes, benefit) {
		c.ctr.RejectedAdmissions++
		return false
	}
	c.clock++
	c.entries[fp] = &entry{
		fp: fp, table: t, deps: deps, bytes: bytes, rows: t.NumRows(),
		benefit: benefit, ops: ops, clock: c.clock,
	}
	c.ram += bytes
	c.ctr.Admissions++
	return true
}

// makeRoomLocked frees RAM for an incoming entry of the given size and
// benefit rank: coldest-first (lowest effective benefit, oldest use), each
// victim is cooled to disk when a tier is configured and fits, else
// evicted. A victim at least as valuable as the candidate stops the scan —
// benefit-ranked admission means the newcomer loses instead.
func (c *Cache) makeRoomLocked(bytes int64, benefit float64) bool {
	for c.ram+bytes > c.cfg.Budget {
		v := c.victimLocked()
		if v == nil || c.effectiveBenefitLocked(v) >= benefit {
			return false
		}
		if !c.coolLocked(v) {
			c.dropLocked(v, &c.ctr.Evictions)
			if c.cfg.Trace != nil {
				c.cfg.Trace.Mark(trace.MarkReuseEvict, trace.Event{RowsOut: v.bytes})
			}
		}
	}
	return true
}

// effectiveBenefitLocked prices an entry by where it lives: a cooled
// entry's recompute savings are discounted by the cost of faulting it back
// from the store (REMOP's rule).
func (c *Cache) effectiveBenefitLocked(e *entry) float64 {
	if e.file == "" {
		return e.benefit
	}
	b := e.benefit - costmodel.ReloadCost(e.bytes)/float64(maxInt64(e.bytes, 1))
	if b < 0 {
		return 0
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// victimLocked returns the lowest-ranked unpinned HOT entry (nil if none).
func (c *Cache) victimLocked() *entry {
	var v *entry
	for _, e := range c.entries {
		if e.pins > 0 || e.table == nil {
			continue
		}
		if v == nil || e.benefit < v.benefit ||
			(e.benefit == v.benefit && e.clock < v.clock) {
			v = e
		}
	}
	return v
}

// dropLocked removes an entry entirely, counting it against the given
// counter.
func (c *Cache) dropLocked(e *entry, counter *int64) {
	if e.table != nil {
		c.ram -= e.bytes
	}
	if e.file != "" {
		os.Remove(e.file)
		c.disk -= e.fileLen
	}
	delete(c.entries, e.fp)
	*counter++
}

// Invalidate drops every entry whose subtree read the given base table.
// (Version bumps invalidate lazily at Lookup; this is the eager path for
// callers that know a table changed.)
func (c *Cache) Invalidate(t *storage.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		for _, d := range e.deps {
			if d.Table == t {
				if e.pins > 0 {
					// A pinned entry is being read by a live run that
					// started against the old version — let it finish;
					// the version check drops the entry at its next
					// Lookup.
					break
				}
				c.dropLocked(e, &c.ctr.Invalidations)
				break
			}
		}
	}
}

// Flight begins or joins the single-flight computation for fp. The first
// caller since the last completion becomes the leader (wait == nil) and
// must call done() when its fill attempt is over, successful or not; other
// callers get a wait function that blocks until the leader finishes (or
// ctx is cancelled), after which a Lookup will hit if the fill succeeded.
func (c *Cache) Flight(fp Fingerprint) (leader bool, wait func(context.Context) error, done func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[fp]; ok {
		c.ctr.FlightWaits++
		return false, func(ctx context.Context) error {
			if ctx == nil {
				<-f.done
				return nil
			}
			select {
			case <-f.done:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[fp] = f
	c.ctr.FlightLeaders++
	return true, nil, func() {
		c.mu.Lock()
		delete(c.flights, fp)
		c.mu.Unlock()
		close(f.done)
	}
}

// Has reports whether fp is cached (without pinning or counting a probe).
func (c *Cache) Has(fp Fingerprint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[fp]
	return ok
}

// Counters snapshots the cache statistics.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.ctr
	ctr.Entries = int64(len(c.entries))
	ctr.BytesPinned = c.ram
	ctr.DiskBytes = c.disk
	ctr.Pins = c.pins
	return ctr
}

// Occupancy reports current entry count and resident/cooled bytes.
func (c *Cache) Occupancy() (entries int, ram, disk int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.ram, c.disk
}

// Close drops every entry and removes cooled files. It returns an error if
// any entry is still pinned — a leaked pin means a run kept a handle past
// its lifetime, the reuse analogue of a leaked block.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.pins != 0 {
		return fmt.Errorf("reuse: %d entry pins outstanding at Close", c.pins)
	}
	for _, e := range c.entries {
		if e.file != "" {
			os.Remove(e.file)
		}
		delete(c.entries, e.fp)
	}
	c.ram, c.disk = 0, 0
	return nil
}

// coolLocked writes a hot entry's blocks to disk through the storage block
// codec and releases its RAM. Returns false (caller evicts instead) when no
// tier is configured, the disk budget is exhausted, or the write fails.
func (c *Cache) coolLocked(e *entry) bool {
	if c.cfg.Dir == "" || e.pins > 0 {
		return false
	}
	blocks := e.table.Blocks()
	if len(blocks) == 0 {
		return false // an empty entry holds no RAM; nothing to cool
	}
	var buf []byte
	total := 0
	for _, b := range blocks {
		total += 8 + storage.EncodedLen(b)
	}
	if c.disk+int64(total) > c.cfg.DiskBudget {
		return false
	}
	buf = make([]byte, 0, total)
	var hdr [8]byte
	for _, b := range blocks {
		enc := storage.EncodeBlock(b, nil)
		binary.BigEndian.PutUint64(hdr[:], uint64(len(enc)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, enc...)
	}
	if err := os.MkdirAll(c.cfg.Dir, 0o755); err != nil {
		return false
	}
	path := filepath.Join(c.cfg.Dir, e.fp.Hex()+".blk")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return false
	}
	c.ram -= e.bytes
	c.disk += int64(len(buf))
	e.file, e.fileLen = path, int64(len(buf))
	e.table = nil
	c.ctr.Cooled++
	return true
}

// faultInLocked reloads a cooled entry's blocks from disk. On any decode
// failure the entry is dropped (the next probe recomputes) — a damaged
// tier must never surface a wrong result.
func (c *Cache) faultInLocked(e *entry) bool {
	data, err := os.ReadFile(e.file)
	if err != nil {
		c.dropLocked(e, &c.ctr.Evictions)
		return false
	}
	var blocks []*storage.Block
	var bytes int64
	for len(data) >= 8 {
		n := binary.BigEndian.Uint64(data[:8])
		data = data[8:]
		if uint64(len(data)) < n {
			c.dropLocked(e, &c.ctr.Evictions)
			return false
		}
		b, err := storage.DecodeBlock(data[:n])
		if err != nil {
			c.dropLocked(e, &c.ctr.Evictions)
			return false
		}
		blocks = append(blocks, b)
		bytes += int64(b.AllocBytes())
		data = data[n:]
	}
	if len(data) != 0 || len(blocks) == 0 {
		c.dropLocked(e, &c.ctr.Evictions)
		return false
	}
	t := storage.NewTable("reuse", blocks[0].Schema(), blocks[0].Format(), blocks[0].AllocBytes())
	for _, b := range blocks {
		t.Append(b)
	}
	os.Remove(e.file)
	c.disk -= e.fileLen
	e.file, e.fileLen = "", 0
	e.table = t
	e.bytes = bytes
	c.ram += bytes
	c.ctr.FaultedIn++
	// Fault-in can overshoot the budget; shed colder entries to settle.
	c.makeRoomLocked(0, e.benefit)
	return true
}
