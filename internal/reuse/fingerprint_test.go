// Fingerprint contract tests: a subplan fingerprint must be invariant to
// every execution knob that cannot change the result (UoT, per-edge UoT
// overrides, DOP caps, kernel-path toggles) and sensitive to everything
// semantic (predicate constants, aggregate functions, limits, join types,
// base-table identity and data version). This lives in package reuse_test
// because the plans are built through internal/engine, which imports
// internal/reuse.
package reuse_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/reuse"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

func testTable(name string) *storage.Table {
	db := engine.NewDB(4<<10, storage.ColumnStore)
	tab := db.CreateTable(name, storage.NewSchema(
		storage.Column{Name: "a", Type: types.Int64},
		storage.Column{Name: "b", Type: types.Int64},
	))
	blk := storage.NewBlock(tab.Schema(), tab.Format(), tab.BlockBytes())
	for i := 0; i < 100; i++ {
		blk.AppendRow(types.NewInt64(int64(i%7)), types.NewInt64(int64(i)))
	}
	tab.Append(blk)
	return tab
}

// planSpec parameterizes the small agg plan every sensitivity case perturbs
// one field of.
type planSpec struct {
	predConst int64
	agg       exec.AggFunc
	limit     int
	forceRef  bool // must NOT change the fingerprint
	edgeUoT   int  // must NOT change the fingerprint
}

func buildPlan(tab *storage.Table, s planSpec) *engine.Builder {
	b := engine.NewBuilder()
	sch := tab.Schema()
	scan := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: tab,
		Pred:      expr.Lt(expr.C(sch, "b"), expr.Int(s.predConst)),
		Proj:      []expr.Expr{expr.C(sch, "a"), expr.C(sch, "b")},
		ProjNames: []string{"a", "b"},
	})
	agg := b.Agg(scan, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(scan.Schema, "a")},
		GroupByNames: []string{"a"},
		Aggs:         []exec.AggSpec{{Func: s.agg, Arg: expr.C(scan.Schema, "b"), Name: "v"}},
		ForceReference: s.forceRef,
	})
	srt := b.Sort(agg, exec.SortSpec{
		Name:        "sort",
		InputSchema: agg.Schema,
		Terms:       []exec.SortTerm{{Key: expr.C(agg.Schema, "a")}},
		Limit:       s.limit,
	})
	if s.edgeUoT != 0 {
		b.SetEdgeUoT(scan, agg, s.edgeUoT)
	}
	b.Collect(srt)
	return b
}

func rootFP(t *testing.T, b *engine.Builder) reuse.Fingerprint {
	t.Helper()
	fp, ok := reuse.RootFingerprint(b.Plan())
	if !ok {
		t.Fatal("plan is not fingerprintable")
	}
	return fp
}

func TestFingerprintInvariantToExecutionKnobs(t *testing.T) {
	tab := testTable("t")
	base := planSpec{predConst: 50, agg: exec.Sum}
	ref := rootFP(t, buildPlan(tab, base))

	cases := map[string]planSpec{
		"rebuild":         base,
		"edge-uot-64":     {predConst: 50, agg: exec.Sum, edgeUoT: 64},
		"edge-uot-table":  {predConst: 50, agg: exec.Sum, edgeUoT: core.UoTTable},
		"force-reference": {predConst: 50, agg: exec.Sum, forceRef: true},
	}
	for name, s := range cases {
		if got := rootFP(t, buildPlan(tab, s)); got != ref {
			t.Errorf("%s: fingerprint changed: %s vs %s", name, got, ref)
		}
	}

	// MaxDOP is plan state the scheduler reads but Canon must not.
	b := buildPlan(tab, base)
	b.Plan().MaxDOP = map[core.OpID]int{0: 1, 1: 3}
	if got := rootFP(t, b); got != ref {
		t.Errorf("maxdop: fingerprint changed: %s vs %s", got, ref)
	}
}

func TestFingerprintSensitiveToSemantics(t *testing.T) {
	tab := testTable("t")
	base := planSpec{predConst: 50, agg: exec.Sum}
	ref := rootFP(t, buildPlan(tab, base))

	cases := map[string]planSpec{
		"pred-const": {predConst: 51, agg: exec.Sum},
		"agg-func":   {predConst: 50, agg: exec.Max},
		"limit":      {predConst: 50, agg: exec.Sum, limit: 3},
	}
	for name, s := range cases {
		if got := rootFP(t, buildPlan(tab, s)); got == ref {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}

	// A different table with the identical schema and contents is a
	// different fingerprint: identity, not shape.
	other := testTable("t")
	if got := rootFP(t, buildPlan(other, base)); got == ref {
		t.Error("table identity: fingerprint did not change")
	}

	// A data-version bump on the same table changes the fingerprint (and
	// thereby invalidates, lazily, everything cached against the old one).
	tab.BumpVersion()
	if got := rootFP(t, buildPlan(tab, base)); got == ref {
		t.Error("version bump: fingerprint did not change")
	}
}

func TestFingerprintJoinTypeSensitive(t *testing.T) {
	tab := testTable("t")
	build := func(jt exec.JoinType) *engine.Builder {
		b := engine.NewBuilder()
		sch := tab.Schema()
		proj := exec.SelectSpec{
			Name: "scan", Base: tab,
			Proj:      []expr.Expr{expr.C(sch, "a"), expr.C(sch, "b")},
			ProjNames: []string{"a", "b"},
		}
		bs := b.ScanSelect(proj)
		bl, _ := b.Build(bs, exec.BuildSpec{Name: "build", KeyCols: []int{0}, Payload: []int{1}})
		ps := b.ScanSelect(exec.SelectSpec{
			Name: "scan2", Base: tab,
			Proj:      []expr.Expr{expr.C(sch, "a")},
			ProjNames: []string{"a"},
		})
		pr := b.Probe(ps, bl, exec.ProbeSpec{
			Name: "probe", KeyCols: []int{0}, JoinType: jt, ProbeProj: []int{0},
		})
		b.Collect(pr)
		return b
	}
	if rootFP(t, build(exec.LeftSemi)) == rootFP(t, build(exec.LeftAnti)) {
		t.Error("join type: fingerprint did not change")
	}
}

// TestFingerprintTPCHDistinct fingerprints every TPC-H plan and requires
// all fourteen to be distinct and stable across rebuilds — the end-to-end
// determinism the cross-query cache keys on.
func TestFingerprintTPCHDistinct(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	seen := map[reuse.Fingerprint]int{}
	for _, q := range tpch.Numbers() {
		b, err := tpch.Build(d, q, tpch.QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		fp, ok := reuse.RootFingerprint(b.Plan())
		if !ok {
			t.Fatalf("Q%02d: plan is not fingerprintable", q)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("Q%02d collides with Q%02d", q, prev)
		}
		seen[fp] = q
		b2, _ := tpch.Build(d, q, tpch.QueryOpts{})
		if fp2, _ := reuse.RootFingerprint(b2.Plan()); fp2 != fp {
			t.Errorf("Q%02d: rebuild changed the fingerprint", q)
		}
	}
}

// TestAnalyzeRejectsPartitionedPlans pins the bypass: exchange plans are
// outside the splice surgery's model and must not be probed or captured.
func TestAnalyzeRejectsPartitionedPlans(t *testing.T) {
	d := tpch.Load(0.01, 128<<10, storage.ColumnStore)
	b := tpch.MustBuild(d, 1, tpch.QueryOpts{})
	if _, ok := reuse.Analyze(b.Plan()); !ok {
		t.Fatal("unpartitioned plan rejected")
	}
	tab := testTable("t")
	pb := engine.NewBuilder()
	sch := tab.Schema()
	scan := pb.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: tab,
		Proj:      []expr.Expr{expr.C(sch, "a"), expr.C(sch, "b")},
		ProjNames: []string{"a", "b"},
	})
	agg := pb.PartitionedAgg(scan, exec.AggOpSpec{
		Name: "agg", GroupBy: []expr.Expr{expr.C(scan.Schema, "a")}, GroupByNames: []string{"a"},
		Aggs: []exec.AggSpec{{Func: exec.Sum, Arg: expr.C(scan.Schema, "b"), Name: "v"}},
	}, 4)
	pb.Collect(agg)
	if _, ok := reuse.Analyze(pb.Plan()); ok {
		t.Error("partitioned plan was not rejected")
	}
}

func TestSpliceableEscapeCheck(t *testing.T) {
	tab := testTable("t")
	b := engine.NewBuilder()
	sch := tab.Schema()
	scan := b.ScanSelect(exec.SelectSpec{
		Name: "scan", Base: tab,
		Proj:      []expr.Expr{expr.C(sch, "a"), expr.C(sch, "b")},
		ProjNames: []string{"a", "b"},
	})
	// The scan fans out to two consumers: replacing either agg's subtree
	// would prune the shared scan and starve the sibling.
	agg1 := b.Agg(scan, exec.AggOpSpec{
		Name: "agg1", GroupBy: []expr.Expr{expr.C(scan.Schema, "a")}, GroupByNames: []string{"a"},
		Aggs: []exec.AggSpec{{Func: exec.Sum, Arg: expr.C(scan.Schema, "b"), Name: "v"}},
	})
	agg2 := b.Agg(scan, exec.AggOpSpec{
		Name: "agg2", GroupBy: []expr.Expr{expr.C(scan.Schema, "a")}, GroupByNames: []string{"a"},
		Aggs: []exec.AggSpec{{Func: exec.Count, Arg: nil, Name: "n"}},
	})
	bld, _ := b.Build(agg2, exec.BuildSpec{Name: "build", KeyCols: []int{0}, Payload: []int{1}})
	join := b.Probe(agg1, bld, exec.ProbeSpec{
		Name: "join", KeyCols: []int{0}, ProbeProj: []int{0, 1}, BuildProj: []int{0},
	})
	b.Collect(join)

	a, ok := reuse.Analyze(b.Plan())
	if !ok {
		t.Fatal("plan not analyzable")
	}
	if !a.RootOK {
		t.Fatal("root not fingerprintable")
	}
	if !a.Spliceable(a.Root) {
		t.Error("root must always be spliceable")
	}
	if a.Spliceable(agg1.ID) {
		t.Error("agg over a shared scan must not be spliceable")
	}
	if a.Spliceable(agg2.ID) {
		t.Error("agg feeding both a sibling and a build must not be spliceable")
	}
}
