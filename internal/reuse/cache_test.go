package reuse

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func mkTable(t *testing.T, name string, rows int) *storage.Table {
	t.Helper()
	sch := storage.NewSchema(storage.Column{Name: "a", Type: types.Int64})
	tab := storage.NewTable(name, sch, storage.RowStore, 1<<10)
	blk := storage.NewBlock(sch, storage.RowStore, 1<<10)
	for i := 0; i < rows; i++ {
		if !blk.AppendRow(types.NewInt64(int64(i))) {
			tab.Append(blk)
			blk = storage.NewBlock(sch, storage.RowStore, 1<<10)
			blk.AppendRow(types.NewInt64(int64(i)))
		}
	}
	if blk.NumRows() > 0 {
		tab.Append(blk)
	}
	return tab
}

func fpN(n byte) Fingerprint {
	var f Fingerprint
	f[0] = n
	return f
}

func depsOf(tabs ...*storage.Table) []Dep {
	out := make([]Dep, len(tabs))
	for i, tb := range tabs {
		out[i] = Dep{Table: tb, Version: tb.Version()}
	}
	return out
}

func TestCacheAdmitLookup(t *testing.T) {
	base := mkTable(t, "base", 1)
	res := mkTable(t, "res", 10)
	c := New(Config{Budget: 1 << 20})
	if !c.Admit(fpN(1), res, depsOf(base), 0, 3) {
		t.Fatal("admit rejected")
	}
	e := c.Lookup(fpN(1))
	if e == nil {
		t.Fatal("lookup missed")
	}
	if e.Table() != res {
		t.Error("hit returned a different table")
	}
	if e.Rows() != 10 {
		t.Errorf("rows = %d, want 10", e.Rows())
	}
	if c.Lookup(fpN(2)) != nil {
		t.Error("unknown fingerprint hit")
	}
	e.Release()
	ctr := c.Counters()
	if ctr.Hits != 1 || ctr.Misses != 1 || ctr.Admissions != 1 || ctr.Pins != 0 {
		t.Errorf("counters = %+v", ctr)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheAdmitRejectsOversizeAndDuplicates(t *testing.T) {
	res := mkTable(t, "res", 10)
	bytes := res.AllocBytes()
	c := New(Config{Budget: 4 * bytes, MaxEntryBytes: bytes - 1})
	if c.Admit(fpN(1), res, nil, 0, 1) {
		t.Error("entry over MaxEntryBytes admitted")
	}
	c2 := New(Config{Budget: 4 * bytes})
	if !c2.Admit(fpN(1), res, nil, 0, 1) {
		t.Fatal("admit rejected")
	}
	if c2.Admit(fpN(1), mkTable(t, "res2", 10), nil, 0, 1) {
		t.Error("duplicate fingerprint admitted")
	}
	if got := c2.Counters().RejectedAdmissions; got != 1 {
		t.Errorf("RejectedAdmissions = %d, want 1", got)
	}
}

func TestCacheBenefitRankedEviction(t *testing.T) {
	low := mkTable(t, "low", 20)
	high := mkTable(t, "high", 20)
	bytes := low.AllocBytes()
	c := New(Config{Budget: 2 * bytes, MaxEntryBytes: bytes})
	if !c.Admit(fpN(1), low, nil, 1e6, 1) {
		t.Fatal("low admit rejected")
	}
	if !c.Admit(fpN(2), high, nil, 1e12, 1) {
		t.Fatal("high admit rejected")
	}
	// A newcomer worth less than everything resident is the one rejected.
	if c.Admit(fpN(3), mkTable(t, "worst", 20), nil, 0, 1) {
		t.Error("lowest-benefit newcomer displaced a resident entry")
	}
	// A newcomer between the two evicts exactly the low entry.
	if !c.Admit(fpN(4), mkTable(t, "mid", 20), nil, 1e9, 1) {
		t.Fatal("mid admit rejected")
	}
	if c.Lookup(fpN(1)) != nil {
		t.Error("low-benefit entry survived")
	}
	if e := c.Lookup(fpN(2)); e == nil {
		t.Error("high-benefit entry was evicted")
	} else {
		e.Release()
	}
	ctr := c.Counters()
	if ctr.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", ctr.Evictions)
	}
}

func TestCachePinBlocksEviction(t *testing.T) {
	a := mkTable(t, "a", 20)
	bytes := a.AllocBytes()
	c := New(Config{Budget: bytes, MaxEntryBytes: bytes})
	if !c.Admit(fpN(1), a, nil, 1, 1) {
		t.Fatal("admit rejected")
	}
	e := c.Lookup(fpN(1))
	if e == nil {
		t.Fatal("lookup missed")
	}
	// The only resident entry is pinned: nothing can be evicted, so even a
	// far more valuable newcomer is rejected rather than unpinning a live
	// reader.
	if c.Admit(fpN(2), mkTable(t, "b", 20), nil, 1e15, 1) {
		t.Error("admission evicted a pinned entry")
	}
	e.Release()
	if !c.Admit(fpN(2), mkTable(t, "b", 20), nil, 1e15, 1) {
		t.Error("admission still rejected after unpin")
	}
}

func TestCacheInvalidation(t *testing.T) {
	base := mkTable(t, "base", 1)
	c := New(Config{Budget: 1 << 20})
	if !c.Admit(fpN(1), mkTable(t, "r1", 5), depsOf(base), 0, 1) {
		t.Fatal("admit rejected")
	}
	// Lazy: a version bump is caught at the next Lookup.
	base.BumpVersion()
	if c.Lookup(fpN(1)) != nil {
		t.Error("stale entry served after version bump")
	}
	if got := c.Counters().Invalidations; got != 1 {
		t.Errorf("Invalidations = %d, want 1", got)
	}
	// Eager: Invalidate drops matching entries immediately.
	if !c.Admit(fpN(2), mkTable(t, "r2", 5), depsOf(base), 0, 1) {
		t.Fatal("re-admit rejected")
	}
	c.Invalidate(base)
	if c.Has(fpN(2)) {
		t.Error("eager invalidation left the entry")
	}
	// Admission itself rejects when a dep moved between fingerprint and fill.
	deps := depsOf(base)
	base.BumpVersion()
	if c.Admit(fpN(3), mkTable(t, "r3", 5), deps, 0, 1) {
		t.Error("admitted an entry whose dep moved during the fill")
	}
}

func TestCacheCoolAndFaultIn(t *testing.T) {
	dir := t.TempDir()
	cold := mkTable(t, "cold", 30)
	bytes := cold.AllocBytes()
	c := New(Config{Budget: bytes, MaxEntryBytes: bytes, Dir: dir})
	if !c.Admit(fpN(1), cold, nil, 1, 1) {
		t.Fatal("admit rejected")
	}
	// The second entry displaces the first, which cools to disk instead of
	// being dropped.
	if !c.Admit(fpN(2), mkTable(t, "hot", 30), nil, 1e9, 1) {
		t.Fatal("second admit rejected")
	}
	ctr := c.Counters()
	if ctr.Cooled != 1 || ctr.Evictions != 0 {
		t.Fatalf("counters after cool = %+v", ctr)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.blk"))
	if len(files) != 1 {
		t.Fatalf("cooled files = %d, want 1", len(files))
	}
	// The next hit faults it back in bit-exact.
	e := c.Lookup(fpN(1))
	if e == nil {
		t.Fatal("cooled entry missed")
	}
	got := e.Table()
	if got.NumRows() != cold.NumRows() {
		t.Fatalf("faulted rows = %d, want %d", got.NumRows(), cold.NumRows())
	}
	want := cold.Blocks()
	for i, b := range got.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			if b.Int64At(0, r) != want[i].Int64At(0, r) {
				t.Fatalf("faulted row %d/%d differs", i, r)
			}
		}
	}
	e.Release()
	if got := c.Counters().FaultedIn; got != 1 {
		t.Errorf("FaultedIn = %d, want 1", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "*.blk"))
	if len(files) != 0 {
		t.Errorf("Close left %d cooled files", len(files))
	}
}

func TestCacheFaultInRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	cold := mkTable(t, "cold", 30)
	bytes := cold.AllocBytes()
	c := New(Config{Budget: bytes, MaxEntryBytes: bytes, Dir: dir})
	c.Admit(fpN(1), cold, nil, 1, 1)
	c.Admit(fpN(2), mkTable(t, "hot", 30), nil, 1e9, 1)
	files, err := filepath.Glob(filepath.Join(dir, "*.blk"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cooled files = %d (%v)", len(files), err)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Lookup(fpN(1)) != nil {
		t.Fatal("damaged cooled entry served")
	}
	if c.Has(fpN(1)) {
		t.Error("damaged entry not dropped")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	leader, wait, done := c.Flight(fpN(1))
	if !leader || wait != nil || done == nil {
		t.Fatal("first caller is not the leader")
	}
	l2, wait2, _ := c.Flight(fpN(1))
	if l2 || wait2 == nil {
		t.Fatal("second caller did not become a waiter")
	}
	released := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := wait2(nil); err != nil {
			t.Errorf("wait: %v", err)
		}
		close(released)
	}()
	done()
	wg.Wait()
	<-released
	// The flight is gone: the next caller leads again.
	l3, _, done3 := c.Flight(fpN(1))
	if !l3 {
		t.Fatal("flight was not cleared by done")
	}
	done3()
	ctr := c.Counters()
	if ctr.FlightLeaders != 2 || ctr.FlightWaits != 1 {
		t.Errorf("flight counters = %+v", ctr)
	}
}

func TestCacheCloseReportsPinLeaks(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	c.Admit(fpN(1), mkTable(t, "r", 5), nil, 0, 1)
	e := c.Lookup(fpN(1))
	if err := c.Close(); err == nil {
		t.Error("Close ignored an outstanding pin")
	}
	e.Release()
	c2 := New(Config{Budget: 1 << 20})
	c2.Admit(fpN(1), mkTable(t, "r", 5), nil, 0, 1)
	e2 := c2.Lookup(fpN(1))
	e2.Release()
	if err := c2.Close(); err != nil {
		t.Errorf("Close after release: %v", err)
	}
	if c2.Lookup(fpN(1)) != nil {
		t.Error("closed cache served a hit")
	}
}

func TestCacheOccupancyAccounting(t *testing.T) {
	r1 := mkTable(t, "r1", 20)
	r2 := mkTable(t, "r2", 20)
	c := New(Config{Budget: r1.AllocBytes() + r2.AllocBytes(), MaxEntryBytes: r1.AllocBytes()})
	c.Admit(fpN(1), r1, nil, 0, 1)
	c.Admit(fpN(2), r2, nil, 0, 1)
	entries, ram, disk := c.Occupancy()
	if entries != 2 || ram != r1.AllocBytes()+r2.AllocBytes() || disk != 0 {
		t.Errorf("occupancy = %d entries, %d ram, %d disk", entries, ram, disk)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if entries, ram, _ := c.Occupancy(); entries != 0 || ram != 0 {
		t.Errorf("post-Close occupancy = %d entries, %d ram", entries, ram)
	}
}
