// Package reuse implements a cross-query cache of materialized subplan
// results (ROADMAP item 3a, after Dursun et al., "Revisiting Reuse in Main
// Memory Database Systems"): plan subtrees are fingerprinted canonically,
// cold runs capture the block sets they materialize anyway at high-UoT
// delivery boundaries, and later queries whose subtrees fingerprint-match a
// cached entry splice a scan of the pinned block set in place of the whole
// subtree. Admission and eviction are ranked by recompute-cost-per-byte
// (costmodel.RecomputeCost), entries can cool into an on-disk tier through
// the storage block codec and fault back (priced per REMOP: a cooled entry's
// benefit is discounted by its reload cost), and validity is keyed on base
// table identity + data version.
package reuse

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/storage"
)

// Fingerprint is the SHA-256 of a subplan's canonical encoding: the root
// operator's Canon() string, the fingerprints of its pipelined children in
// input order, and the fingerprints of its blocking children sorted — so a
// fingerprint covers the operator, everything upstream of it, and the
// identity+version of every base table underneath, while remaining
// invariant to UoT values, worker counts, block sizes/formats, and
// adaptive-controller settings (none of which appear in any Canon).
type Fingerprint [sha256.Size]byte

// String renders a short hex prefix for logs and file names.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Hex renders the full fingerprint (cooled-entry file names).
func (f Fingerprint) Hex() string { return hex.EncodeToString(f[:]) }

// Dep is one base table a fingerprinted subtree reads, with the data
// version observed at fingerprint time; a cached entry is valid only while
// every dep's current version still matches.
type Dep struct {
	Table   *storage.Table
	Version int64
}

// canonical is the operator self-description hook (implemented in
// internal/exec, asserted structurally here to keep this package
// independent of the operator library).
type canonical interface{ Canon() string }

// baseTabler exposes a scan's base table for dep collection.
type baseTabler interface{ BaseTable() *storage.Table }

// Plan is the fingerprint analysis of one core.Plan.
type Plan struct {
	// FP maps every fingerprintable operator to its subtree fingerprint.
	// An operator is absent when it, or anything upstream of it, does not
	// implement Canon.
	FP map[core.OpID]Fingerprint
	// Deps maps fingerprintable operators to the base tables their subtree
	// reads (deduplicated, deterministic order).
	Deps map[core.OpID][]Dep
	// Ops maps fingerprintable operators to their subtree operator count —
	// the recompute-cost multiplier for admission benefit.
	Ops map[core.OpID]int
	// Root is the operator feeding the plan's adopting sink (-1 if none);
	// RootOK reports whether it is fingerprintable.
	Root   core.OpID
	RootOK bool

	plan    *core.Plan
	inPipe  map[core.OpID][]int // op -> pipelined in-edge indexes
	inBlock map[core.OpID][]int // op -> blocking in-edge indexes
}

// Analyze fingerprints a plan. It returns ok=false when the plan is outside
// the reuse machinery entirely: partitioned (exchange) plans re-route
// blocks by partition tag, which the splice surgery does not model, so they
// are neither probed nor captured.
func Analyze(p *core.Plan) (*Plan, bool) {
	for _, e := range p.Edges {
		if e.Partition() >= 0 {
			return nil, false
		}
	}
	for _, op := range p.Ops {
		if _, ok := op.(core.PartitionedOutput); ok {
			return nil, false
		}
	}
	a := &Plan{
		FP:      make(map[core.OpID]Fingerprint),
		Deps:    make(map[core.OpID][]Dep),
		Ops:     make(map[core.OpID]int),
		Root:    -1,
		plan:    p,
		inPipe:  make(map[core.OpID][]int),
		inBlock: make(map[core.OpID][]int),
	}
	for i, e := range p.Edges {
		if e.Kind == core.Pipelined {
			a.inPipe[e.To] = append(a.inPipe[e.To], i)
		} else {
			a.inBlock[e.To] = append(a.inBlock[e.To], i)
		}
	}
	for id := range a.inPipe {
		edges, es := a.inPipe[id], p.Edges
		sort.Slice(edges, func(i, j int) bool {
			if es[edges[i]].ToInput != es[edges[j]].ToInput {
				return es[edges[i]].ToInput < es[edges[j]].ToInput
			}
			return es[edges[i]].From < es[edges[j]].From
		})
	}
	state := make([]int8, len(p.Ops)) // 0 unvisited, 1 in progress, 2 done
	for id := range p.Ops {
		a.visit(core.OpID(id), state)
	}
	for id, op := range p.Ops {
		if op.AdoptsInputs() {
			if in := a.inPipe[core.OpID(id)]; len(in) == 1 {
				a.Root = p.Edges[in[0]].From
				_, a.RootOK = a.FP[a.Root]
			}
			break
		}
	}
	return a, true
}

// visit computes the subtree fingerprint of id bottom-up; ok=false marks
// the subtree unfingerprintable (and poisons everything downstream of it).
func (a *Plan) visit(id core.OpID, state []int8) bool {
	switch state[id] {
	case 2:
		_, ok := a.FP[id]
		return ok
	case 1:
		return false // cycle — defensive, plans are DAGs
	}
	state[id] = 1
	defer func() { state[id] = 2 }()

	c, ok := a.plan.Ops[id].(canonical)
	if !ok {
		return false
	}
	deps := []Dep{}
	if bt, ok := a.plan.Ops[id].(baseTabler); ok {
		if t := bt.BaseTable(); t != nil {
			deps = append(deps, Dep{Table: t, Version: t.Version()})
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "op|%s\n", c.Canon())
	ops := 1
	for _, ei := range a.inPipe[id] {
		e := a.plan.Edges[ei]
		if !a.visit(e.From, state) {
			return false
		}
		fp := a.FP[e.From]
		fmt.Fprintf(h, "pipe|%d|", e.ToInput)
		h.Write(fp[:])
		deps = append(deps, a.Deps[e.From]...)
		ops += a.Ops[e.From]
	}
	var blockFPs [][sha256.Size]byte
	for _, ei := range a.inBlock[id] {
		e := a.plan.Edges[ei]
		if !a.visit(e.From, state) {
			return false
		}
		blockFPs = append(blockFPs, a.FP[e.From])
		deps = append(deps, a.Deps[e.From]...)
		ops += a.Ops[e.From]
	}
	sort.Slice(blockFPs, func(i, j int) bool {
		return string(blockFPs[i][:]) < string(blockFPs[j][:])
	})
	for _, fp := range blockFPs {
		h.Write([]byte("block|"))
		h.Write(fp[:])
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	a.FP[id] = fp
	a.Deps[id] = dedupDeps(deps)
	a.Ops[id] = ops
	return true
}

func dedupDeps(deps []Dep) []Dep {
	if len(deps) <= 1 {
		return deps
	}
	seen := make(map[*storage.Table]struct{}, len(deps))
	out := deps[:0]
	for _, d := range deps {
		if _, ok := seen[d.Table]; ok {
			continue
		}
		seen[d.Table] = struct{}{}
		out = append(out, d)
	}
	return out
}

// RootFingerprint returns the fingerprint of the whole plan's result (the
// subtree feeding the adopting sink), for submit-time single-flight keys.
func RootFingerprint(p *core.Plan) (Fingerprint, bool) {
	a, ok := Analyze(p)
	if !ok || !a.RootOK {
		return Fingerprint{}, false
	}
	return a.FP[a.Root], true
}

// Reach returns the backward closure of id over every edge kind: the set of
// operators whose work exists only to produce id's output (plus id itself).
// The splice surgery prunes exactly this set.
func (a *Plan) Reach(id core.OpID) map[core.OpID]bool {
	r := map[core.OpID]bool{id: true}
	var grow func(core.OpID)
	grow = func(to core.OpID) {
		for _, e := range a.plan.Edges {
			if e.To == to && !r[e.From] {
				r[e.From] = true
				grow(e.From)
			}
		}
	}
	grow(id)
	return r
}

// Spliceable reports whether replacing id's subtree with a cached-result
// scan is safe: no operator in the pruned region (other than id itself) may
// have an edge escaping the region — an escaping pipelined edge means the
// region feeds someone else, an escaping blocking edge means it gates or
// parameterizes someone else — since pruning would starve that consumer.
func (a *Plan) Spliceable(id core.OpID) bool {
	if _, ok := a.FP[id]; !ok {
		return false
	}
	r := a.Reach(id)
	for _, e := range a.plan.Edges {
		if r[e.From] && e.From != id && !r[e.To] {
			return false
		}
	}
	return true
}
