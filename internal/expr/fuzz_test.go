package expr

import (
	"math"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

// FuzzExprEval drives a typed stack machine over the fuzz input to build
// arbitrary well-typed expression trees, then checks the evaluator's
// invariants on every row of a block:
//
//   - Eval never panics on a well-typed tree;
//   - the evaluated datum's type matches the tree's static Type();
//   - boolean-valued operators return exactly 0 or 1;
//   - evaluation is deterministic (same row, same result);
//   - FilterBlock agrees with row-at-a-time evaluation for predicates.
//
// Run as a fuzzer with `go test ./internal/expr -fuzz FuzzExprEval`; in
// normal test runs it replays the seed corpus.
func FuzzExprEval(f *testing.F) {
	f.Add([]byte{0, 3, 7, 7}, int64(42), -1.5)
	f.Add([]byte{0, 1, 6, 0, 6, 1, 6, 2, 6, 3}, int64(7), 0.0)
	f.Add([]byte{2, 14, 2, 7, 5, 12, 8, 9, 10}, int64(-9), math.MaxFloat64)
	f.Add([]byte{13, 13, 7, 0, 3, 11, 15}, int64(0), math.NaN())
	f.Fuzz(func(t *testing.T, program []byte, seedI int64, seedF float64) {
		if len(program) > 256 {
			program = program[:256]
		}
		schema := storage.NewSchema(
			storage.Column{Name: "i", Type: types.Int64},
			storage.Column{Name: "f", Type: types.Float64},
			storage.Column{Name: "c", Type: types.Char, Width: 8},
		)
		b := storage.NewBlock(schema, storage.ColumnStore, 4*schema.RowWidth())
		for r := 0; r < 4; r++ {
			b.AppendRow(
				types.NewInt64(seedI+int64(r)*3-1),
				types.NewFloat64(seedF*float64(r)),
				types.NewString(string(rune('a'+r))+"xyzw"),
			)
		}

		exprs := interpret(program, schema)
		for _, e := range exprs {
			ty := e.Type()
			_ = e.String() // must not panic either
			c := Ctx{B: b}
			for r := 0; r < b.NumRows(); r++ {
				c.Row = r
				d1 := e.Eval(&c)
				d2 := e.Eval(&c)
				if d1.Ty != ty {
					t.Fatalf("%s: Eval type %v, static Type %v", e, d1.Ty, ty)
				}
				if !sameDatum(d1, d2) {
					t.Fatalf("%s: non-deterministic: %v then %v", e, d1, d2)
				}
				if isBoolean(e) && d1.I != 0 && d1.I != 1 {
					t.Fatalf("%s: boolean value %d", e, d1.I)
				}
			}
			// Predicates: the vectorized filter must agree with Eval.
			if ty == types.Int64 {
				got := FilterBlock(e, b, nil, nil)
				var want []int32
				for r := 0; r < b.NumRows(); r++ {
					c.Row = r
					if e.Eval(&c).I != 0 {
						want = append(want, int32(r))
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s: FilterBlock %v, row-at-a-time %v", e, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: FilterBlock %v, row-at-a-time %v", e, got, want)
					}
				}
			}
		}
	})
}

// interpret builds well-typed expressions from the program bytes with a
// stack machine; ill-typed opcodes are skipped, so every input maps to some
// (possibly empty) set of trees.
func interpret(program []byte, schema *storage.Schema) []Expr {
	var stack []Expr
	pop := func() Expr {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	numeric := func(e Expr) bool {
		return e.Type() == types.Int64 || e.Type() == types.Float64
	}
	next := func(i *int) byte {
		if *i >= len(program) {
			return 0
		}
		v := program[*i]
		*i++
		return v
	}
	for i := 0; i < len(program); {
		op := next(&i)
		switch op % 16 {
		case 0:
			stack = append(stack, ColIdx(schema, 0))
		case 1:
			stack = append(stack, ColIdx(schema, 1))
		case 2:
			stack = append(stack, ColIdx(schema, 2))
		case 3:
			stack = append(stack, Int(int64(int8(next(&i)))))
		case 4:
			stack = append(stack, Float(float64(int8(next(&i)))/4))
		case 5:
			stack = append(stack, Str(string([]byte{next(&i)%26 + 'a', 'x'})))
		case 6:
			if len(stack) >= 2 && numeric(stack[len(stack)-1]) && numeric(stack[len(stack)-2]) {
				r, l := pop(), pop()
				stack = append(stack, Arith(ArithOp(next(&i)%4), l, r))
			}
		case 7:
			if len(stack) >= 2 {
				a, b := stack[len(stack)-1], stack[len(stack)-2]
				bothNum := numeric(a) && numeric(b)
				bothChar := a.Type() == types.Char && b.Type() == types.Char
				bothDate := a.Type() == types.Date && b.Type() == types.Date
				if bothNum || bothChar || bothDate {
					r, l := pop(), pop()
					stack = append(stack, Cmp(CmpOp(next(&i)%6), l, r))
				}
			}
		case 8:
			if len(stack) >= 2 && stack[len(stack)-1].Type() == types.Int64 && stack[len(stack)-2].Type() == types.Int64 {
				r, l := pop(), pop()
				stack = append(stack, And(l, r))
			}
		case 9:
			if len(stack) >= 2 && stack[len(stack)-1].Type() == types.Int64 && stack[len(stack)-2].Type() == types.Int64 {
				r, l := pop(), pop()
				stack = append(stack, Or(l, r))
			}
		case 10:
			if len(stack) >= 1 && stack[len(stack)-1].Type() == types.Int64 {
				stack = append(stack, Not(pop()))
			}
		case 11:
			if len(stack) >= 3 && numeric(stack[len(stack)-1]) && numeric(stack[len(stack)-2]) && numeric(stack[len(stack)-3]) {
				hi, lo, x := pop(), pop(), pop()
				stack = append(stack, Between(x, lo, hi))
			}
		case 12:
			if len(stack) >= 1 {
				x := pop()
				var list []types.Datum
				for n := int(next(&i)%3) + 1; n > 0; n-- {
					switch x.Type() {
					case types.Float64:
						list = append(list, types.NewFloat64(float64(int8(next(&i)))))
					case types.Char:
						list = append(list, types.NewString(string([]byte{next(&i)%26 + 'a', 'x'})))
					default:
						list = append(list, types.NewInt64(int64(int8(next(&i)))))
					}
				}
				stack = append(stack, In(x, list...))
			}
		case 13:
			stack = append(stack, Const(types.NewDate(int32(int16(next(&i)))*37)))
		case 14:
			if len(stack) >= 1 && stack[len(stack)-1].Type() == types.Char {
				stack = append(stack, Substr(pop(), int(next(&i)%6), int(next(&i)%6)))
			} else if len(stack) >= 1 && stack[len(stack)-1].Type() == types.Date {
				stack = append(stack, Year(pop()))
			}
		case 15:
			if len(stack) >= 3 && stack[len(stack)-3].Type() == types.Int64 &&
				stack[len(stack)-1].Type() == stack[len(stack)-2].Type() {
				els, then, cond := pop(), pop(), pop()
				stack = append(stack, Case(els, When{Cond: cond, Then: then}))
			}
		}
		if len(stack) > 32 {
			break
		}
	}
	return stack
}

// isBoolean reports whether the root operator is boolean-valued by
// construction.
func isBoolean(e Expr) bool {
	switch e.(type) {
	case *CmpExpr, *AndExpr, *OrExpr, *NotExpr, *InExpr:
		return true
	}
	return false
}

// sameDatum is exact equality including NaN == NaN (determinism check, not
// SQL comparison).
func sameDatum(a, b types.Datum) bool {
	if a.Ty != b.Ty || a.I != b.I {
		return false
	}
	if a.F != b.F && !(math.IsNaN(a.F) && math.IsNaN(b.F)) {
		return false
	}
	return string(a.B) == string(b.B)
}
