// Package expr implements typed scalar expressions evaluated block-at-a-time:
// column references (over one block, or over a probe/build block pair for
// join residual predicates), constants, arithmetic, comparisons, boolean
// connectives, BETWEEN, IN, LIKE, CASE, EXTRACT(YEAR), SUBSTRING, and
// runtime scalar parameters (for scalar-subquery results). Types are
// inferred at construction time so plan building fails fast.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/storage"
	"repro/internal/types"
)

// Ctx is the evaluation context: a primary block/row, an optional secondary
// block/row (the build side during probe residual evaluation), and runtime
// scalar parameters.
type Ctx struct {
	B    *storage.Block
	Row  int
	B2   *storage.Block
	Row2 int
	// Scalars holds values produced by scalar subqueries, indexed by
	// ScalarParam slots; the engine fills them before dependent operators
	// run.
	Scalars []types.Datum
}

// Expr is a typed scalar expression.
type Expr interface {
	// Type returns the result type.
	Type() types.TypeID
	// Eval evaluates the expression for one row. Boolean expressions
	// return Int64 0/1.
	Eval(c *Ctx) types.Datum
	// String renders the expression for plan display.
	String() string
}

// Side selects which block of the Ctx a column reference reads.
type Side uint8

const (
	// Primary reads Ctx.B/Ctx.Row.
	Primary Side = iota
	// Secondary reads Ctx.B2/Ctx.Row2.
	Secondary
)

// ColRef reads a column of the context block. Width carries the storage
// width of Char columns so projections can derive output schemas.
type ColRef struct {
	S     Side
	Col   int
	Ty    types.TypeID
	Width int
	Name  string
}

// C builds a Primary-side column reference resolved against schema.
func C(s *storage.Schema, name string) *ColRef {
	i := s.MustColIndex(name)
	return &ColRef{S: Primary, Col: i, Ty: s.Col(i).Type, Width: s.ColWidth(i), Name: name}
}

// C2 builds a Secondary-side column reference resolved against schema.
func C2(s *storage.Schema, name string) *ColRef {
	i := s.MustColIndex(name)
	return &ColRef{S: Secondary, Col: i, Ty: s.Col(i).Type, Width: s.ColWidth(i), Name: name}
}

// ColIdx builds a Primary-side reference by position.
func ColIdx(s *storage.Schema, i int) *ColRef {
	return &ColRef{S: Primary, Col: i, Ty: s.Col(i).Type, Width: s.ColWidth(i), Name: s.Col(i).Name}
}

// AsPrimaryColRef returns e as a plain Primary-side column reference, if it
// is one. Operators use this to detect expressions they can satisfy with a
// direct columnar gather instead of per-row Eval (the select fast-copy path,
// the aggregation group-key and argument kernels).
func AsPrimaryColRef(e Expr) (*ColRef, bool) {
	c, ok := e.(*ColRef)
	if !ok || c.S != Primary {
		return nil, false
	}
	return c, true
}

// Type implements Expr.
func (e *ColRef) Type() types.TypeID { return e.Ty }

// Eval implements Expr.
func (e *ColRef) Eval(c *Ctx) types.Datum {
	b, r := c.B, c.Row
	if e.S == Secondary {
		b, r = c.B2, c.Row2
	}
	return b.DatumAt(e.Col, r)
}

// String implements Expr.
func (e *ColRef) String() string {
	if e.S == Secondary {
		return "build." + e.Name
	}
	return e.Name
}

// ConstExpr is a literal.
type ConstExpr struct{ D types.Datum }

// Const wraps a datum literal.
func Const(d types.Datum) *ConstExpr { return &ConstExpr{D: d} }

// Int is a convenience Int64 literal.
func Int(v int64) *ConstExpr { return Const(types.NewInt64(v)) }

// Float is a convenience Float64 literal.
func Float(v float64) *ConstExpr { return Const(types.NewFloat64(v)) }

// Str is a convenience Char literal.
func Str(s string) *ConstExpr { return Const(types.NewString(s)) }

// Date is a convenience Date literal from a civil date.
func Date(y, m, d int) *ConstExpr { return Const(types.NewDate(types.ToDays(y, m, d))) }

// Type implements Expr.
func (e *ConstExpr) Type() types.TypeID { return e.D.Ty }

// Eval implements Expr.
func (e *ConstExpr) Eval(*Ctx) types.Datum { return e.D }

// String implements Expr.
func (e *ConstExpr) String() string { return e.D.String() }

// ScalarParam reads a runtime scalar (a scalar subquery's result) by slot.
type ScalarParam struct {
	Slot int
	Ty   types.TypeID
}

// Param builds a scalar parameter reference.
func Param(slot int, ty types.TypeID) *ScalarParam { return &ScalarParam{Slot: slot, Ty: ty} }

// Type implements Expr.
func (e *ScalarParam) Type() types.TypeID { return e.Ty }

// Eval implements Expr.
func (e *ScalarParam) Eval(c *Ctx) types.Datum { return c.Scalars[e.Slot] }

// String implements Expr.
func (e *ScalarParam) String() string { return fmt.Sprintf("$%d", e.Slot) }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{"=", "<>", "<", "<=", ">", ">="}

// CmpExpr compares two expressions of compatible types.
type CmpExpr struct {
	Op   CmpOp
	L, R Expr
}

// Cmp builds a comparison.
func Cmp(op CmpOp, l, r Expr) *CmpExpr { return &CmpExpr{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *CmpExpr { return Cmp(EQ, l, r) }

// Ne builds l <> r.
func Ne(l, r Expr) *CmpExpr { return Cmp(NE, l, r) }

// Lt builds l < r.
func Lt(l, r Expr) *CmpExpr { return Cmp(LT, l, r) }

// Le builds l <= r.
func Le(l, r Expr) *CmpExpr { return Cmp(LE, l, r) }

// Gt builds l > r.
func Gt(l, r Expr) *CmpExpr { return Cmp(GT, l, r) }

// Ge builds l >= r.
func Ge(l, r Expr) *CmpExpr { return Cmp(GE, l, r) }

// Type implements Expr; comparisons are boolean (Int64 0/1).
func (e *CmpExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *CmpExpr) Eval(c *Ctx) types.Datum {
	cmp := types.Compare(e.L.Eval(c), e.R.Eval(c))
	var ok bool
	switch e.Op {
	case EQ:
		ok = cmp == 0
	case NE:
		ok = cmp != 0
	case LT:
		ok = cmp < 0
	case LE:
		ok = cmp <= 0
	case GT:
		ok = cmp > 0
	case GE:
		ok = cmp >= 0
	}
	return boolDatum(ok)
}

// String implements Expr.
func (e *CmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, cmpNames[e.Op], e.R)
}

// Between builds lo <= x AND x <= hi.
func Between(x, lo, hi Expr) Expr { return And(Ge(x, lo), Le(x, hi)) }

// AndExpr is an n-ary conjunction with short-circuit evaluation.
type AndExpr struct{ Kids []Expr }

// And builds a conjunction.
func And(kids ...Expr) Expr {
	if len(kids) == 1 {
		return kids[0]
	}
	return &AndExpr{Kids: kids}
}

// Type implements Expr.
func (e *AndExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *AndExpr) Eval(c *Ctx) types.Datum {
	for _, k := range e.Kids {
		if k.Eval(c).I == 0 {
			return boolDatum(false)
		}
	}
	return boolDatum(true)
}

// String implements Expr.
func (e *AndExpr) String() string { return nary("AND", e.Kids) }

// OrExpr is an n-ary disjunction with short-circuit evaluation.
type OrExpr struct{ Kids []Expr }

// Or builds a disjunction.
func Or(kids ...Expr) Expr {
	if len(kids) == 1 {
		return kids[0]
	}
	return &OrExpr{Kids: kids}
}

// Type implements Expr.
func (e *OrExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *OrExpr) Eval(c *Ctx) types.Datum {
	for _, k := range e.Kids {
		if k.Eval(c).I != 0 {
			return boolDatum(true)
		}
	}
	return boolDatum(false)
}

// String implements Expr.
func (e *OrExpr) String() string { return nary("OR", e.Kids) }

// NotExpr negates a boolean expression.
type NotExpr struct{ X Expr }

// Not builds a negation.
func Not(x Expr) *NotExpr { return &NotExpr{X: x} }

// Type implements Expr.
func (e *NotExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *NotExpr) Eval(c *Ctx) types.Datum { return boolDatum(e.X.Eval(c).I == 0) }

// String implements Expr.
func (e *NotExpr) String() string { return "NOT " + e.X.String() }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

var arithNames = [...]string{"+", "-", "*", "/"}

// ArithExpr computes arithmetic over numeric expressions. If both operands
// are Int64 the result is Int64, otherwise Float64.
type ArithExpr struct {
	Op   ArithOp
	L, R Expr
	ty   types.TypeID
}

// Arith builds an arithmetic expression.
func Arith(op ArithOp, l, r Expr) *ArithExpr {
	ty := types.Float64
	if l.Type() == types.Int64 && r.Type() == types.Int64 && op != Div {
		ty = types.Int64
	}
	return &ArithExpr{Op: op, L: l, R: r, ty: ty}
}

// AddE builds l + r.
func AddE(l, r Expr) *ArithExpr { return Arith(Add, l, r) }

// SubE builds l - r.
func SubE(l, r Expr) *ArithExpr { return Arith(Sub, l, r) }

// MulE builds l * r.
func MulE(l, r Expr) *ArithExpr { return Arith(Mul, l, r) }

// DivE builds l / r (always Float64).
func DivE(l, r Expr) *ArithExpr { return Arith(Div, l, r) }

// Type implements Expr.
func (e *ArithExpr) Type() types.TypeID { return e.ty }

// Eval implements Expr.
func (e *ArithExpr) Eval(c *Ctx) types.Datum {
	l, r := e.L.Eval(c), e.R.Eval(c)
	if e.ty == types.Int64 {
		switch e.Op {
		case Add:
			return types.NewInt64(l.I + r.I)
		case Sub:
			return types.NewInt64(l.I - r.I)
		default:
			return types.NewInt64(l.I * r.I)
		}
	}
	lf, rf := l.Float(), r.Float()
	switch e.Op {
	case Add:
		return types.NewFloat64(lf + rf)
	case Sub:
		return types.NewFloat64(lf - rf)
	case Mul:
		return types.NewFloat64(lf * rf)
	default:
		return types.NewFloat64(lf / rf)
	}
}

// String implements Expr.
func (e *ArithExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, arithNames[e.Op], e.R)
}

// YearExpr extracts the calendar year of a Date expression.
type YearExpr struct{ X Expr }

// Year builds EXTRACT(YEAR FROM x).
func Year(x Expr) *YearExpr { return &YearExpr{X: x} }

// Type implements Expr.
func (e *YearExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *YearExpr) Eval(c *Ctx) types.Datum {
	return types.NewInt64(int64(types.Year(int32(e.X.Eval(c).I))))
}

// String implements Expr.
func (e *YearExpr) String() string { return fmt.Sprintf("YEAR(%s)", e.X) }

// SubstrExpr extracts a byte substring of a Char expression (1-based start,
// as in SQL SUBSTRING).
type SubstrExpr struct {
	X          Expr
	Start, Len int
}

// Substr builds SUBSTRING(x FROM start FOR length).
func Substr(x Expr, start, length int) *SubstrExpr {
	return &SubstrExpr{X: x, Start: start, Len: length}
}

// Type implements Expr.
func (e *SubstrExpr) Type() types.TypeID { return types.Char }

// Eval implements Expr.
func (e *SubstrExpr) Eval(c *Ctx) types.Datum {
	b := e.X.Eval(c).Bytes()
	lo := e.Start - 1
	if lo < 0 {
		lo = 0
	}
	if lo > len(b) {
		lo = len(b)
	}
	hi := lo + e.Len
	if hi > len(b) {
		hi = len(b)
	}
	return types.NewChar(b[lo:hi])
}

// String implements Expr.
func (e *SubstrExpr) String() string {
	return fmt.Sprintf("SUBSTR(%s,%d,%d)", e.X, e.Start, e.Len)
}

// CaseExpr is a searched CASE with an ELSE branch.
type CaseExpr struct {
	Whens []When
	Else  Expr
}

// When pairs a condition with its result.
type When struct {
	Cond Expr
	Then Expr
}

// Case builds CASE WHEN ... ELSE els END.
func Case(els Expr, whens ...When) *CaseExpr { return &CaseExpr{Whens: whens, Else: els} }

// Type implements Expr.
func (e *CaseExpr) Type() types.TypeID { return e.Else.Type() }

// Eval implements Expr.
func (e *CaseExpr) Eval(c *Ctx) types.Datum {
	for _, w := range e.Whens {
		if w.Cond.Eval(c).I != 0 {
			return w.Then.Eval(c)
		}
	}
	return e.Else.Eval(c)
}

// String implements Expr.
func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	fmt.Fprintf(&sb, " ELSE %s END", e.Else)
	return sb.String()
}

// InExpr tests membership of x in a literal list.
type InExpr struct {
	X    Expr
	List []types.Datum
}

// In builds x IN (list).
func In(x Expr, list ...types.Datum) *InExpr { return &InExpr{X: x, List: list} }

// InStrings builds x IN ('a','b',...).
func InStrings(x Expr, ss ...string) *InExpr {
	ds := make([]types.Datum, len(ss))
	for i, s := range ss {
		ds[i] = types.NewString(s)
	}
	return In(x, ds...)
}

// Type implements Expr.
func (e *InExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *InExpr) Eval(c *Ctx) types.Datum {
	v := e.X.Eval(c)
	for _, d := range e.List {
		if types.Equal(v, d) {
			return boolDatum(true)
		}
	}
	return boolDatum(false)
}

// String implements Expr.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, d := range e.List {
		parts[i] = d.String()
	}
	return fmt.Sprintf("%s IN (%s)", e.X, strings.Join(parts, ","))
}

func boolDatum(b bool) types.Datum {
	if b {
		return types.NewInt64(1)
	}
	return types.NewInt64(0)
}

func nary(op string, kids []Expr) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}
