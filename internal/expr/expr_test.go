package expr

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func makeBlock(t *testing.T) (*storage.Schema, *storage.Block) {
	t.Helper()
	s := storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "price", Type: types.Float64},
		storage.Column{Name: "ship", Type: types.Date},
		storage.Column{Name: "name", Type: types.Char, Width: 12},
	)
	b := storage.NewBlock(s, storage.ColumnStore, 4096)
	b.AppendRow(types.NewInt64(1), types.NewFloat64(10.0), types.NewDate(types.ToDays(1995, 1, 1)), types.NewString("PROMO BRASS"))
	b.AppendRow(types.NewInt64(2), types.NewFloat64(20.0), types.NewDate(types.ToDays(1996, 6, 15)), types.NewString("SMALL BRASS"))
	b.AppendRow(types.NewInt64(3), types.NewFloat64(30.0), types.NewDate(types.ToDays(1997, 12, 31)), types.NewString("PROMO STEEL"))
	return s, b
}

func evalOne(e Expr, b *storage.Block, row int) types.Datum {
	return e.Eval(&Ctx{B: b, Row: row})
}

func TestColRefAndConst(t *testing.T) {
	s, b := makeBlock(t)
	if got := evalOne(C(s, "k"), b, 1); got.I != 2 {
		t.Errorf("col k row 1 = %v", got)
	}
	if got := evalOne(C(s, "price"), b, 2); got.F != 30.0 {
		t.Errorf("col price row 2 = %v", got)
	}
	if got := evalOne(Int(7), b, 0); got.I != 7 {
		t.Errorf("const = %v", got)
	}
	if C(s, "name").Width != 12 {
		t.Error("ColRef should carry Char width")
	}
}

func TestComparisons(t *testing.T) {
	s, b := makeBlock(t)
	cases := []struct {
		e    Expr
		row  int
		want int64
	}{
		{Eq(C(s, "k"), Int(2)), 1, 1},
		{Eq(C(s, "k"), Int(2)), 0, 0},
		{Ne(C(s, "k"), Int(2)), 0, 1},
		{Lt(C(s, "price"), Float(15)), 0, 1},
		{Le(C(s, "price"), Float(10)), 0, 1},
		{Gt(C(s, "price"), Float(25)), 2, 1},
		{Ge(C(s, "price"), Float(30)), 2, 1},
		{Ge(C(s, "ship"), Date(1996, 1, 1)), 0, 0},
		{Ge(C(s, "ship"), Date(1996, 1, 1)), 1, 1},
		{Between(C(s, "k"), Int(2), Int(3)), 1, 1},
		{Between(C(s, "k"), Int(2), Int(3)), 0, 0},
	}
	for i, c := range cases {
		if got := evalOne(c.e, b, c.row).I; got != c.want {
			t.Errorf("case %d %s row %d = %d, want %d", i, c.e, c.row, got, c.want)
		}
	}
}

func TestBooleans(t *testing.T) {
	s, b := makeBlock(t)
	e := And(Gt(C(s, "k"), Int(1)), Lt(C(s, "price"), Float(25)))
	if evalOne(e, b, 1).I != 1 || evalOne(e, b, 0).I != 0 || evalOne(e, b, 2).I != 0 {
		t.Error("AND wrong")
	}
	o := Or(Eq(C(s, "k"), Int(1)), Eq(C(s, "k"), Int(3)))
	if evalOne(o, b, 0).I != 1 || evalOne(o, b, 1).I != 0 {
		t.Error("OR wrong")
	}
	if evalOne(Not(Eq(C(s, "k"), Int(1))), b, 0).I != 0 {
		t.Error("NOT wrong")
	}
	// And/Or with a single child collapse to that child.
	if And(Eq(C(s, "k"), Int(1))) != Eq(C(s, "k"), Int(1)) {
		// pointer inequality expected; just check type collapse
		if _, ok := And(Eq(C(s, "k"), Int(1))).(*AndExpr); ok {
			t.Error("single-child And should collapse")
		}
	}
}

func TestArithmetic(t *testing.T) {
	s, b := makeBlock(t)
	// The canonical TPC-H revenue expression.
	rev := MulE(C(s, "price"), SubE(Float(1), Float(0.1)))
	if got := evalOne(rev, b, 1).F; got != 18.0 {
		t.Errorf("revenue = %v", got)
	}
	if Arith(Add, Int(1), Int(2)).Type() != types.Int64 {
		t.Error("int+int should be Int64")
	}
	if got := evalOne(AddE(Int(1), Int(2)), b, 0).I; got != 3 {
		t.Errorf("1+2 = %d", got)
	}
	if DivE(Int(1), Int(2)).Type() != types.Float64 {
		t.Error("div is always float")
	}
	if got := evalOne(DivE(Int(1), Int(2)), b, 0).F; got != 0.5 {
		t.Errorf("1/2 = %v", got)
	}
	if got := evalOne(SubE(Int(5), Int(7)), b, 0).I; got != -2 {
		t.Errorf("5-7 = %d", got)
	}
	if got := evalOne(MulE(Int(3), Int(4)), b, 0).I; got != 12 {
		t.Errorf("3*4 = %d", got)
	}
}

func TestYearSubstr(t *testing.T) {
	s, b := makeBlock(t)
	if got := evalOne(Year(C(s, "ship")), b, 1).I; got != 1996 {
		t.Errorf("year = %d", got)
	}
	if got := string(evalOne(Substr(C(s, "name"), 1, 5), b, 0).Bytes()); got != "PROMO" {
		t.Errorf("substr = %q", got)
	}
	if got := string(evalOne(Substr(C(s, "name"), 7, 20), b, 0).Bytes()); got != "BRASS" {
		t.Errorf("substr past end = %q", got)
	}
}

func TestCase(t *testing.T) {
	s, b := makeBlock(t)
	// Q14-style: CASE WHEN name LIKE 'PROMO%' THEN price ELSE 0 END
	e := Case(Float(0), When{Cond: Like(C(s, "name"), "PROMO%"), Then: C(s, "price")})
	if got := evalOne(e, b, 0).Float(); got != 10.0 {
		t.Errorf("case row 0 = %v", got)
	}
	if got := evalOne(e, b, 1).Float(); got != 0.0 {
		t.Errorf("case row 1 = %v", got)
	}
}

func TestIn(t *testing.T) {
	s, b := makeBlock(t)
	e := In(C(s, "k"), types.NewInt64(1), types.NewInt64(3))
	if evalOne(e, b, 0).I != 1 || evalOne(e, b, 1).I != 0 || evalOne(e, b, 2).I != 1 {
		t.Error("IN wrong")
	}
	se := InStrings(Substr(C(s, "name"), 1, 5), "PROMO", "LARGE")
	if evalOne(se, b, 0).I != 1 || evalOne(se, b, 1).I != 0 {
		t.Error("IN strings wrong")
	}
}

func TestScalarParam(t *testing.T) {
	s, b := makeBlock(t)
	e := Gt(C(s, "price"), Param(0, types.Float64))
	c := Ctx{B: b, Row: 2, Scalars: []types.Datum{types.NewFloat64(25)}}
	if e.Eval(&c).I != 1 {
		t.Error("param compare wrong")
	}
	c.Row = 0
	if e.Eval(&c).I != 0 {
		t.Error("param compare wrong (row 0)")
	}
}

func TestSecondarySide(t *testing.T) {
	s, b := makeBlock(t)
	s2 := storage.NewSchema(storage.Column{Name: "x", Type: types.Int64})
	b2 := storage.NewBlock(s2, storage.RowStore, 64)
	b2.AppendRow(types.NewInt64(2))
	// probe.k <> build.x — the Q21 residual shape.
	e := Ne(C(s, "k"), C2(s2, "x"))
	c := Ctx{B: b, Row: 1, B2: b2, Row2: 0}
	if e.Eval(&c).I != 0 {
		t.Error("2 <> 2 should be false")
	}
	c.Row = 0
	if e.Eval(&c).I != 1 {
		t.Error("1 <> 2 should be true")
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"PROMO BRASS", "PROMO%", true},
		{"PROMO BRASS", "%BRASS", true},
		{"PROMO BRASS", "%OMO%", true},
		{"PROMO BRASS", "%MO%BR%", true},
		{"PROMO BRASS", "BRASS%", false},
		{"special packages requests", "%special%requests%", true},
		{"special requests packages", "%special%requests%", true},
		{"specialrequests", "%special%requests%", true},
		{"requests special", "%special%requests%", false},
		{"abc", "abc", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"aaa", "%a", true},
		{"ab", "a%b%", true},
		{"mississippi", "%iss%ippi", true},
		{"mississippi", "%iss%issi", false},
	}
	for _, c := range cases {
		if got := likeMatch([]byte(c.s), c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestFilterBlock(t *testing.T) {
	s, b := makeBlock(t)
	got := FilterBlock(Ge(C(s, "price"), Float(20)), b, nil, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("FilterBlock = %v", got)
	}
	// FilterRows refines a candidate list in place.
	refined := FilterRows(Like(C(s, "name"), "PROMO%"), b, got, nil)
	if len(refined) != 1 || refined[0] != 2 {
		t.Fatalf("FilterRows = %v", refined)
	}
}

func TestFilterBlockScratchReuse(t *testing.T) {
	s, b := makeBlock(t)
	scratch := make([]int32, 0, 64)
	got := FilterBlock(Ge(C(s, "price"), Float(20)), b, nil, scratch)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("FilterBlock = %v", got)
	}
	if &scratch[:1][0] != &got[:1][0] {
		t.Fatal("FilterBlock did not reuse the caller's scratch buffer")
	}
	// A too-small scratch must still produce a correct (freshly grown) vector.
	small := make([]int32, 0, 1)
	got2 := FilterBlock(Ge(C(s, "price"), Float(20)), b, nil, small)
	if len(got2) != 2 || got2[0] != 1 || got2[1] != 2 {
		t.Fatalf("FilterBlock with small scratch = %v", got2)
	}
}

func TestSelectAll(t *testing.T) {
	_, b := makeBlock(t)
	sel := SelectAll(b, nil)
	if len(sel) != b.NumRows() {
		t.Fatalf("SelectAll len = %d, want %d", len(sel), b.NumRows())
	}
	for i, r := range sel {
		if int(r) != i {
			t.Fatalf("SelectAll[%d] = %d", i, r)
		}
	}
	scratch := make([]int32, 0, 64)
	sel2 := SelectAll(b, scratch)
	if &scratch[:1][0] != &sel2[:1][0] {
		t.Fatal("SelectAll did not reuse the caller's scratch buffer")
	}
}

func TestOutputSchema(t *testing.T) {
	s, _ := makeBlock(t)
	exprs := []Expr{C(s, "k"), MulE(C(s, "price"), Float(2)), C(s, "name"), Substr(C(s, "name"), 1, 5)}
	out := OutputSchema(exprs, []string{"k", "p2", "name", "pfx"})
	if out.Col(0).Type != types.Int64 || out.Col(1).Type != types.Float64 {
		t.Error("numeric types wrong")
	}
	if out.Col(2).Type != types.Char || out.ColWidth(2) != 12 {
		t.Errorf("char width from ColRef = %d", out.ColWidth(2))
	}
	if out.ColWidth(3) != 5 {
		t.Errorf("char width from Substr = %d", out.ColWidth(3))
	}
}

func TestStrings(t *testing.T) {
	s, _ := makeBlock(t)
	e := And(Ge(C(s, "ship"), Date(1995, 1, 1)), Like(C(s, "name"), "PROMO%"))
	if e.String() == "" {
		t.Error("expression rendering should be non-empty")
	}
	if got := Cmp(EQ, C(s, "k"), Int(1)).String(); got != "(k = 1)" {
		t.Errorf("Cmp string = %q", got)
	}
}
