package expr

import (
	"repro/internal/storage"
	"repro/internal/types"
)

// Block-at-a-time helpers. Operators evaluate predicates and projections
// over whole blocks (the vectorized processing style of Section III of the
// paper) rather than pulling one tuple through the whole plan.

// FilterBlock evaluates pred over every row of b and returns the matching
// row IDs as a selection vector. scalars supplies runtime scalar-parameter
// values (may be nil). scratch, when non-nil, provides the backing array for
// the result — operators pass a pooled per-work-order buffer so the steady
// state allocates no selection vector per block (pass nil to allocate).
func FilterBlock(pred Expr, b *storage.Block, scalars []types.Datum, scratch []int32) []int32 {
	n := b.NumRows()
	if cap(scratch) < n {
		scratch = make([]int32, 0, n)
	}
	out := scratch[:0]
	c := Ctx{B: b, Scalars: scalars}
	for r := 0; r < n; r++ {
		c.Row = r
		if pred.Eval(&c).I != 0 {
			out = append(out, int32(r))
		}
	}
	return out
}

// SelectAll fills a selection vector with every row ID of b, reusing scratch
// when large enough (the identity selection for predicate-less operators
// that still need a vector for downstream refinement).
func SelectAll(b *storage.Block, scratch []int32) []int32 {
	n := b.NumRows()
	if cap(scratch) < n {
		scratch = make([]int32, 0, n)
	}
	out := scratch[:n]
	for r := range out {
		out[r] = int32(r)
	}
	return out
}

// FilterRows evaluates pred over the given row IDs of b and returns the
// subset that match (candidate-list refinement, used by the MonetDB-style
// baseline).
func FilterRows(pred Expr, b *storage.Block, rows []int32, scalars []types.Datum) []int32 {
	out := rows[:0]
	c := Ctx{B: b, Scalars: scalars}
	for _, r := range rows {
		c.Row = int(r)
		if pred.Eval(&c).I != 0 {
			out = append(out, r)
		}
	}
	return out
}

// EvalRow evaluates a list of expressions for one row of b.
func EvalRow(exprs []Expr, b *storage.Block, row int, scalars []types.Datum) []types.Datum {
	c := Ctx{B: b, Row: row, Scalars: scalars}
	out := make([]types.Datum, len(exprs))
	for i, e := range exprs {
		out[i] = e.Eval(&c)
	}
	return out
}

// OutputSchema derives the schema produced by evaluating exprs named names.
// Char widths are taken from column references and substring lengths; other
// Char-typed expressions default to width 32.
func OutputSchema(exprs []Expr, names []string) *storage.Schema {
	cols := make([]storage.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = storage.Column{Name: names[i], Type: e.Type(), Width: charWidth(e)}
	}
	return storage.NewSchema(cols...)
}

func charWidth(e Expr) int {
	switch x := e.(type) {
	case *ColRef:
		if x.Ty == types.Char {
			return refWidth(x)
		}
	case *SubstrExpr:
		return x.Len
	case *ConstExpr:
		if x.D.Ty == types.Char {
			return len(x.D.B)
		}
	case *CaseExpr:
		if x.Type() == types.Char {
			return charWidth(x.Else)
		}
	}
	if e.Type() == types.Char {
		return 32
	}
	return 0
}

// refWidth is set by the plan layer: column references do not carry widths,
// so builders register them here when constructing projections. To keep the
// package self-contained, ColRef stores the width when built from a schema.
func refWidth(c *ColRef) int { return c.Width }
