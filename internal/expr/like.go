package expr

import (
	"fmt"

	"repro/internal/types"
)

// LikeExpr matches a Char expression against a SQL LIKE pattern supporting
// '%' (any run) and '_' (any single byte). TPC-H predicates such as
// '%special%requests%' (Q13) and 'PROMO%' (Q14) use it.
type LikeExpr struct {
	X       Expr
	Pattern string
	Negate  bool
}

// Like builds x LIKE pattern.
func Like(x Expr, pattern string) *LikeExpr { return &LikeExpr{X: x, Pattern: pattern} }

// NotLike builds x NOT LIKE pattern.
func NotLike(x Expr, pattern string) *LikeExpr {
	return &LikeExpr{X: x, Pattern: pattern, Negate: true}
}

// Type implements Expr.
func (e *LikeExpr) Type() types.TypeID { return types.Int64 }

// Eval implements Expr.
func (e *LikeExpr) Eval(c *Ctx) types.Datum {
	ok := likeMatch(e.X.Eval(c).Bytes(), e.Pattern)
	if e.Negate {
		ok = !ok
	}
	return boolDatum(ok)
}

// String implements Expr.
func (e *LikeExpr) String() string {
	op := "LIKE"
	if e.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", e.X, op, e.Pattern)
}

// likeMatch implements LIKE with the standard two-pointer backtracking
// algorithm: on a mismatch after a '%', the pattern resumes at the character
// after that '%' and the text advances one byte.
func likeMatch(s []byte, p string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
