package expr

import "sort"

// Children returns the direct sub-expressions of e. Leaf expressions return
// nil.
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *CmpExpr:
		return []Expr{x.L, x.R}
	case *ArithExpr:
		return []Expr{x.L, x.R}
	case *AndExpr:
		return x.Kids
	case *OrExpr:
		return x.Kids
	case *NotExpr:
		return []Expr{x.X}
	case *YearExpr:
		return []Expr{x.X}
	case *SubstrExpr:
		return []Expr{x.X}
	case *LikeExpr:
		return []Expr{x.X}
	case *InExpr:
		return []Expr{x.X}
	case *CaseExpr:
		out := make([]Expr, 0, 2*len(x.Whens)+1)
		for _, w := range x.Whens {
			out = append(out, w.Cond, w.Then)
		}
		return append(out, x.Else)
	default:
		return nil
	}
}

// Walk visits e and all sub-expressions depth-first.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	for _, k := range Children(e) {
		Walk(k, fn)
	}
}

// PrimaryCols returns the sorted, de-duplicated Primary-side column indexes
// referenced by the given expressions (nil expressions are skipped). The
// select and probe operators use it to charge the cache model only for the
// columns a column-store scan actually touches (Section IV-B).
func PrimaryCols(exprs ...Expr) []int {
	seen := map[int]bool{}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		Walk(e, func(x Expr) {
			if c, ok := x.(*ColRef); ok && c.S == Primary {
				seen[c.Col] = true
			}
		})
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
