package storage

import (
	"sync"

	"repro/internal/stats"
)

// Pool is the thread-safe global pool of temporary storage blocks
// (Section III-A of the paper). A work order checks out a block, appends its
// output, and either emits the block when full or checks it back in
// partially filled for the next work order of the same operator. Reuse keeps
// output locality and avoids fragmentation; the single mutex is intentional —
// contention on the storage manager at small block sizes is one of the real
// effects the paper discusses (Section VII-B5).
type Pool struct {
	mu sync.Mutex
	// partial holds partially-filled blocks keyed by owner tag (one slot
	// per operator instance), so a block is only ever resumed by the
	// operator that started filling it.
	partial map[int][]*Block
	// free holds empty recycled blocks keyed by allocation size.
	free map[int][]*Block

	gauge     *stats.MemGauge // intermediate-bytes gauge, may be nil
	checkouts func()          // per-checkout hook, may be nil
	noRecycle bool
}

// DisableRecycling makes Release drop block allocations instead of keeping
// them on the freelist. The MonetDB-style baseline uses it to model full
// materialization with fresh allocations per intermediate.
func (p *Pool) DisableRecycling() {
	p.mu.Lock()
	p.noRecycle = true
	p.mu.Unlock()
}

// NewPool returns an empty pool. gauge (optional) receives allocation sizes
// of live temporary blocks; onCheckout (optional) is called once per
// checkout.
func NewPool(gauge *stats.MemGauge, onCheckout func()) *Pool {
	return &Pool{
		partial:   make(map[int][]*Block),
		free:      make(map[int][]*Block),
		gauge:     gauge,
		checkouts: onCheckout,
	}
}

// CheckOut returns a block for owner (an operator instance tag) with the
// given schema, format, and byte budget: a previously checked-in partial
// block of that owner if one exists, else a recycled empty block, else a new
// allocation.
func (p *Pool) CheckOut(owner int, schema *Schema, format Format, blockBytes int) *Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.checkouts != nil {
		p.checkouts()
	}
	if ps := p.partial[owner]; len(ps) > 0 {
		b := ps[len(ps)-1]
		p.partial[owner] = ps[:len(ps)-1]
		return b
	}
	if fs := p.free[blockBytes]; len(fs) > 0 {
		for i := len(fs) - 1; i >= 0; i-- {
			b := fs[i]
			if b.Schema() == schema && b.Format() == format {
				fs[i] = fs[len(fs)-1]
				p.free[blockBytes] = fs[:len(fs)-1]
				b.Reset()
				if p.gauge != nil {
					p.gauge.Add(int64(b.AllocBytes()))
				}
				return b
			}
		}
	}
	b := NewBlock(schema, format, blockBytes)
	if p.gauge != nil {
		p.gauge.Add(int64(b.AllocBytes()))
	}
	return b
}

// CheckIn returns a partially-filled block to the pool for later resumption
// by the same owner.
func (p *Pool) CheckIn(owner int, b *Block) {
	p.mu.Lock()
	p.partial[owner] = append(p.partial[owner], b)
	p.mu.Unlock()
}

// TakePartials removes and returns all partially-filled blocks of owner;
// called when an operator finishes so its last, non-full blocks can still be
// transferred downstream (the paper: "partially filled blocks are scheduled
// for data transfer at the end of the operator's execution").
func (p *Pool) TakePartials(owner int) []*Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := p.partial[owner]
	delete(p.partial, owner)
	return ps
}

// PendingPartials returns the number of partially-filled blocks currently
// checked in across all owners. After a run completes (or is cleaned up
// after a failure) it must be zero; the scheduler's invariant checker uses
// it to detect leaked partials.
func (p *Pool) PendingPartials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ps := range p.partial {
		n += len(ps)
	}
	return n
}

// Release recycles a block whose contents are no longer needed (its consumer
// operator finished). The allocation is kept for reuse but no longer counts
// as live intermediate memory.
func (p *Pool) Release(b *Block) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gauge != nil {
		p.gauge.Sub(int64(b.AllocBytes()))
	}
	sz := b.AllocBytes()
	if !p.noRecycle && len(p.free[sz]) < 256 { // bound the freelist; beyond that let GC take it
		p.free[sz] = append(p.free[sz], b)
	}
}
