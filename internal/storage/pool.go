package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Pool is the thread-safe global pool of temporary storage blocks
// (Section III-A of the paper). A work order checks out a block, appends its
// output, and either emits the block when full or checks it back in
// partially filled for the next work order of the same operator. Reuse keeps
// output locality and avoids fragmentation; the single mutex is intentional —
// contention on the storage manager at small block sizes is one of the real
// effects the paper discusses (Section VII-B5).
//
// Concurrent queries share one pool through Subpool views: each query gets
// its own partial-block namespace (owner tags are plan-local operator
// indices, which would collide across queries) and its own live-bytes gauge,
// while empty recycled blocks and the global gauge stay shared at the root —
// so block allocations amortize across the whole workload but accounting and
// the per-query zero-leak invariant stay exact per query.
type Pool struct {
	mu sync.Mutex
	// partial holds partially-filled blocks keyed by owner tag (one slot
	// per operator instance), so a block is only ever resumed by the
	// operator that started filling it. Each Subpool has its own map.
	partial map[int][]*Block
	// free holds empty recycled blocks keyed by allocation size. Only the
	// root pool has one; subpools recycle through their root.
	free map[int][]*Block
	// parent is the root pool for a Subpool view, nil for a root.
	parent *Pool

	gauge     *stats.MemGauge // live-bytes gauge of this view, may be nil
	checkouts func()          // per-checkout hook of this view, may be nil
	noRecycle bool

	// spill is the optional disk tier (spill.go). Root only; subpool views
	// reach it through root(). Atomic so the nil check on hot paths is free.
	spill atomic.Pointer[spillTier]
}

// DisableRecycling makes Release drop block allocations instead of keeping
// them on the freelist. The MonetDB-style baseline uses it to model full
// materialization with fresh allocations per intermediate.
func (p *Pool) DisableRecycling() {
	r := p.root()
	r.mu.Lock()
	r.noRecycle = true
	r.mu.Unlock()
}

// NewPool returns an empty pool. gauge (optional) receives allocation sizes
// of live temporary blocks; onCheckout (optional) is called once per
// checkout.
func NewPool(gauge *stats.MemGauge, onCheckout func()) *Pool {
	return &Pool{
		partial:   make(map[int][]*Block),
		free:      make(map[int][]*Block),
		gauge:     gauge,
		checkouts: onCheckout,
	}
}

// Subpool returns a per-query view of the pool: an isolated partial-block
// namespace with its own gauge and checkout hook, sharing the root's
// freelist (and the root's gauge, which keeps counting every view's live
// bytes — the global memory picture the admission controller arbitrates).
// Subpools of a subpool attach to the same root.
func (p *Pool) Subpool(gauge *stats.MemGauge, onCheckout func()) *Pool {
	return &Pool{
		partial:   make(map[int][]*Block),
		parent:    p.root(),
		gauge:     gauge,
		checkouts: onCheckout,
	}
}

// root returns the pool owning the shared freelist (p itself for a root).
func (p *Pool) root() *Pool {
	if p.parent != nil {
		return p.parent
	}
	return p
}

// addLive credits n live bytes to this view's gauge and, for a subpool, the
// root's global gauge too. Gauges are atomic, so no lock is held here.
func (p *Pool) addLive(n int64) {
	if p.gauge != nil {
		p.gauge.Add(n)
	}
	if p.parent != nil && p.parent.gauge != nil {
		p.parent.gauge.Add(n)
	}
}

// subLive is the release-side counterpart of addLive.
func (p *Pool) subLive(n int64) {
	if p.gauge != nil {
		p.gauge.Sub(n)
	}
	if p.parent != nil && p.parent.gauge != nil {
		p.parent.gauge.Sub(n)
	}
}

// CheckOut returns a block for owner (an operator instance tag) with the
// given schema, format, and byte budget: a previously checked-in partial
// block of that owner if one exists, else a recycled empty block from the
// root freelist, else a new allocation.
func (p *Pool) CheckOut(owner int, schema *Schema, format Format, blockBytes int) *Block {
	p.mu.Lock()
	if p.checkouts != nil {
		p.checkouts()
	}
	if ps := p.partial[owner]; len(ps) > 0 {
		b := ps[len(ps)-1]
		p.partial[owner] = ps[:len(ps)-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	b := p.root().takeFree(schema, format, blockBytes)
	if b == nil {
		b = NewBlock(schema, format, blockBytes)
	}
	p.addLive(int64(b.AllocBytes()))
	// A fresh checkout is the allocation edge that can push the pool over
	// its RAM threshold; let the spill tier shed cold blocks right here, on
	// the worker's stack, rather than waiting for the scheduler's next cool.
	if t := p.root().spill.Load(); t != nil {
		t.balance()
	}
	return b
}

// takeFree pops a schema/format-matching recycled block of the given size
// from the freelist (nil if none). Called on the root only.
func (p *Pool) takeFree(schema *Schema, format Format, blockBytes int) *Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs := p.free[blockBytes]
	for i := len(fs) - 1; i >= 0; i-- {
		b := fs[i]
		if b.Schema() == schema && b.Format() == format {
			fs[i] = fs[len(fs)-1]
			p.free[blockBytes] = fs[:len(fs)-1]
			b.Reset()
			return b
		}
	}
	return nil
}

// CheckIn returns a partially-filled block to the pool for later resumption
// by the same owner.
func (p *Pool) CheckIn(owner int, b *Block) {
	p.mu.Lock()
	p.partial[owner] = append(p.partial[owner], b)
	p.mu.Unlock()
}

// TakePartials removes and returns all partially-filled blocks of owner;
// called when an operator finishes so its last, non-full blocks can still be
// transferred downstream (the paper: "partially filled blocks are scheduled
// for data transfer at the end of the operator's execution").
func (p *Pool) TakePartials(owner int) []*Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := p.partial[owner]
	delete(p.partial, owner)
	return ps
}

// PendingPartials returns the number of partially-filled blocks currently
// checked into this view across all owners. After a run completes (or is
// cleaned up after a failure) it must be zero; the scheduler's invariant
// checker uses it to detect leaked partials, per query when running on a
// Subpool.
func (p *Pool) PendingPartials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ps := range p.partial {
		n += len(ps)
	}
	return n
}

// Live returns the live temporary-block bytes of this view (0 without a
// gauge): per-query for a Subpool, global for the root.
func (p *Pool) Live() int64 {
	if p.gauge == nil {
		return 0
	}
	return p.gauge.Live()
}

// Disown removes n bytes from this view's live accounting (and the root's,
// for a Subpool) without recycling anything: ownership of the blocks moved
// outside the pool — e.g. a completed query's result table handed to the
// client. The blocks themselves stay valid and are never reused.
func (p *Pool) Disown(n int64) { p.subLive(n) }

// Release recycles a block whose contents are no longer needed (its consumer
// operator finished). The allocation is kept for reuse on the root freelist
// but no longer counts as live intermediate memory. A block the spill tier
// evicted has no RAM allocation and was uncredited at eviction time, so it
// is dropped outright — its disk record is reclaimed, nothing is recycled.
func (p *Pool) Release(b *Block) {
	r := p.root()
	if t := r.spill.Load(); t != nil {
		if t.drop(b) {
			return // spilled: gauge already settled, data lives on disk only
		}
	}
	p.subLive(int64(b.AllocBytes()))
	r.mu.Lock()
	defer r.mu.Unlock()
	sz := b.AllocBytes()
	if !r.noRecycle && len(r.free[sz]) < 256 { // bound the freelist; beyond that let GC take it
		r.free[sz] = append(r.free[sz], b)
	}
}
