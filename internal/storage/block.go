package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// Format selects the physical tuple layout inside a block.
type Format uint8

const (
	// RowStore lays each tuple out contiguously (NSM).
	RowStore Format = iota
	// ColumnStore splits the block into one contiguous region per column
	// (DSM inside a block, as in Quickstep).
	ColumnStore
)

// String returns "row" or "column".
func (f Format) String() string {
	if f == RowStore {
		return "row"
	}
	return "column"
}

// Block is a fixed-capacity container of tuples of one schema in one format.
// A block is the unit of storage, of work-order input, and — grouped by the
// UoT value — of inter-operator transfer. Blocks are not internally
// synchronized: the scheduler guarantees a block is written by at most one
// work order at a time (Section III-A).
type Block struct {
	schema   *Schema
	format   Format
	capacity int    // max rows
	n        int    // current rows
	data     []byte // one allocation of size >= capacity*rowWidth
	colOff   []int  // ColumnStore: start of each column region in data
}

// NewBlock allocates a block with the given byte budget. Capacity is
// blockBytes / rowWidth, at least 1 row.
func NewBlock(schema *Schema, format Format, blockBytes int) *Block {
	cap := blockBytes / schema.RowWidth()
	if cap < 1 {
		cap = 1
	}
	b := &Block{
		schema:   schema,
		format:   format,
		capacity: cap,
		data:     make([]byte, cap*schema.RowWidth()),
	}
	if format == ColumnStore {
		b.colOff = make([]int, schema.NumCols())
		off := 0
		for i := 0; i < schema.NumCols(); i++ {
			b.colOff[i] = off
			off += cap * schema.ColWidth(i)
		}
	}
	return b
}

// Schema returns the block's schema.
func (b *Block) Schema() *Schema { return b.schema }

// Format returns the block's layout.
func (b *Block) Format() Format { return b.format }

// NumRows returns the number of tuples currently stored.
func (b *Block) NumRows() int { return b.n }

// Capacity returns the maximum number of tuples the block can hold.
func (b *Block) Capacity() int { return b.capacity }

// Full reports whether the block cannot accept another tuple.
func (b *Block) Full() bool { return b.n >= b.capacity }

// Reset empties the block for reuse without freeing its allocation.
func (b *Block) Reset() { b.n = 0 }

// Truncate drops rows from the end so the block holds exactly n rows (no-op
// if it already holds fewer). Cell bytes beyond n are left in place and are
// overwritten by subsequent appends; the scheduler uses this to roll a
// resumed partial block back to its pre-attempt length after a failed work
// order.
func (b *Block) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if b.n > n {
		b.n = n
	}
}

// AllocBytes returns the size of the block's data allocation.
func (b *Block) AllocBytes() int { return len(b.data) }

// UsedBytes returns the bytes occupied by live tuples (n * rowWidth); this is
// what the Section VI memory model counts for materialized intermediates.
func (b *Block) UsedBytes() int { return b.n * b.schema.RowWidth() }

// cell returns the data slice holding column col of row row.
func (b *Block) cell(col, row int) []byte {
	w := b.schema.ColWidth(col)
	var off int
	if b.format == RowStore {
		off = row*b.schema.RowWidth() + b.schema.ColOffset(col)
	} else {
		off = b.colOff[col] + row*w
	}
	return b.data[off : off+w]
}

// Int64At reads an Int64 column value.
func (b *Block) Int64At(col, row int) int64 {
	return int64(binary.LittleEndian.Uint64(b.cell(col, row)))
}

// Float64At reads a Float64 column value.
func (b *Block) Float64At(col, row int) float64 {
	return float64frombits(binary.LittleEndian.Uint64(b.cell(col, row)))
}

// DateAt reads a Date column value as a day count.
func (b *Block) DateAt(col, row int) int32 {
	return int32(binary.LittleEndian.Uint32(b.cell(col, row)))
}

// BytesAt reads the raw fixed-width bytes of a Char column value, including
// zero padding. The returned slice aliases block memory; callers must not
// hold it across a block Reset.
func (b *Block) BytesAt(col, row int) []byte { return b.cell(col, row) }

// DatumAt reads any column value as a Datum. Char datums alias block memory.
func (b *Block) DatumAt(col, row int) types.Datum {
	switch b.schema.Col(col).Type {
	case types.Int64:
		return types.NewInt64(b.Int64At(col, row))
	case types.Float64:
		return types.NewFloat64(b.Float64At(col, row))
	case types.Date:
		return types.NewDate(b.DateAt(col, row))
	default:
		return types.NewChar(b.BytesAt(col, row))
	}
}

func (b *Block) setCell(col, row int, d types.Datum) {
	c := b.cell(col, row)
	switch b.schema.Col(col).Type {
	case types.Int64:
		binary.LittleEndian.PutUint64(c, uint64(d.I))
	case types.Float64:
		binary.LittleEndian.PutUint64(c, float64bits(d.F))
	case types.Date:
		binary.LittleEndian.PutUint32(c, uint32(int32(d.I)))
	default:
		n := copy(c, d.B)
		for i := n; i < len(c); i++ {
			c[i] = 0
		}
	}
}

// AppendRow appends one tuple given as datums in schema order. It returns
// false, leaving the block unchanged, if the block is full.
func (b *Block) AppendRow(vals ...types.Datum) bool {
	if b.Full() {
		return false
	}
	if len(vals) != b.schema.NumCols() {
		panic(fmt.Sprintf("storage: AppendRow got %d values for %d columns", len(vals), b.schema.NumCols()))
	}
	for i, d := range vals {
		b.setCell(i, b.n, d)
	}
	b.n++
	return true
}

// AppendFrom appends the projection projIdx of row srcRow of src. Schemas
// must line up (dst column i == src column projIdx[i]); this is the inner
// loop of the select operator's output materialization. It returns false if
// the block is full.
func (b *Block) AppendFrom(src *Block, srcRow int, projIdx []int) bool {
	if b.Full() {
		return false
	}
	for i, sc := range projIdx {
		copy(b.cell(i, b.n), src.cell(sc, srcRow))
	}
	b.n++
	return true
}

// AppendRaw appends a tuple assembled from cells of two source blocks: the
// first lp columns come from left row lrow, the rest from right row rrow
// (used by probe to emit joined tuples). Pass a nil right block to zero-fill
// the right-hand columns (left outer join).
func (b *Block) AppendRaw(left *Block, lrow int, lproj []int, right *Block, rrow int, rproj []int) bool {
	if b.Full() {
		return false
	}
	k := 0
	for _, sc := range lproj {
		copy(b.cell(k, b.n), left.cell(sc, lrow))
		k++
	}
	for _, sc := range rproj {
		c := b.cell(k, b.n)
		if right == nil {
			for i := range c {
				c[i] = 0
			}
		} else {
			copy(c, right.cell(sc, rrow))
		}
		k++
	}
	b.n++
	return true
}

// GatherInt64 copies every row of 8-byte integer column col into dst,
// reusing dst's backing array when large enough. The column layout (stride,
// base offset) is resolved once instead of per row, making this the batch
// kernels' key-column load: a tight strided loop instead of n cell() calls.
// The column must be 8 bytes wide (Int64/Float64 bits), as with Int64At.
func (b *Block) GatherInt64(col int, dst []int64) []int64 {
	n := b.n
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if b.schema.ColWidth(col) != 8 {
		panic(fmt.Sprintf("storage: GatherInt64 on %d-byte column", b.schema.ColWidth(col)))
	}
	var off, stride int
	if b.format == RowStore {
		off = b.schema.ColOffset(col)
		stride = b.schema.RowWidth()
	} else {
		off = b.colOff[col]
		stride = 8
	}
	data := b.data
	for r := 0; r < n; r++ {
		dst[r] = int64(binary.LittleEndian.Uint64(data[off+r*stride:]))
	}
	return dst
}

// GatherDate widens every row of a 4-byte Date column into dst as int64 day
// counts, reusing dst's backing array when large enough. Together with
// GatherInt64 this covers the fixed-width group-key types of the vectorized
// aggregation path (date keys hash and compare as their day count).
func (b *Block) GatherDate(col int, dst []int64) []int64 {
	n := b.n
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if b.schema.ColWidth(col) != 4 {
		panic(fmt.Sprintf("storage: GatherDate on %d-byte column", b.schema.ColWidth(col)))
	}
	var off, stride int
	if b.format == RowStore {
		off = b.schema.ColOffset(col)
		stride = b.schema.RowWidth()
	} else {
		off = b.colOff[col]
		stride = 4
	}
	data := b.data
	for r := 0; r < n; r++ {
		dst[r] = int64(int32(binary.LittleEndian.Uint32(data[off+r*stride:])))
	}
	return dst
}

// GatherFloat64 copies every row of an 8-byte Float64 column into dst,
// reusing dst's backing array when large enough — the aggregate-argument
// load of the columnar accumulate kernels.
func (b *Block) GatherFloat64(col int, dst []float64) []float64 {
	n := b.n
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if b.schema.ColWidth(col) != 8 {
		panic(fmt.Sprintf("storage: GatherFloat64 on %d-byte column", b.schema.ColWidth(col)))
	}
	var off, stride int
	if b.format == RowStore {
		off = b.schema.ColOffset(col)
		stride = b.schema.RowWidth()
	} else {
		off = b.colOff[col]
		stride = 8
	}
	data := b.data
	for r := 0; r < n; r++ {
		dst[r] = float64frombits(binary.LittleEndian.Uint64(data[off+r*stride:]))
	}
	return dst
}

// AppendFromMany appends the projection projIdx of the given src rows (in
// order), stopping when the block fills, and returns how many rows were
// appended. Column layouts are resolved once per column, not once per cell,
// so bulk payload copies run a tight offset-stride loop — the batch insert
// kernel's payload materialization.
func (b *Block) AppendFromMany(src *Block, rows []int32, projIdx []int) int {
	free := b.capacity - b.n
	if free <= 0 || len(rows) == 0 {
		return 0
	}
	if len(rows) < free {
		free = len(rows)
	}
	take := rows[:free]
	for ci, sc := range projIdx {
		w := b.schema.ColWidth(ci)
		var dstOff, dstStride int
		if b.format == RowStore {
			dstOff = b.n*b.schema.RowWidth() + b.schema.ColOffset(ci)
			dstStride = b.schema.RowWidth()
		} else {
			dstOff = b.colOff[ci] + b.n*w
			dstStride = w
		}
		var srcOff, srcStride int
		if src.format == RowStore {
			srcOff = src.schema.ColOffset(sc)
			srcStride = src.schema.RowWidth()
		} else {
			srcOff = src.colOff[sc]
			srcStride = w
		}
		d := dstOff
		for _, r := range take {
			s := srcOff + int(r)*srcStride
			copy(b.data[d:d+w], src.data[s:s+w])
			d += dstStride
		}
	}
	b.n += len(take)
	return len(take)
}

// AppendGather appends rows gathered from multiple source blocks — row i of
// the batch is row rows[i] of srcs[srcIdx[i]] — stopping when the block
// fills, and returns how many rows were appended. All sources must share a
// schema; projIdx maps destination columns to source columns. Like
// AppendFromMany, layouts resolve once per (column, source-switch), so a
// merged sort stream whose consecutive rows mostly come from the same run
// copies in tight offset-stride segments; this is the sort emit kernel that
// replaces per-row AppendFrom.
func (b *Block) AppendGather(srcs []*Block, srcIdx []int32, rows []int32, projIdx []int) int {
	free := b.capacity - b.n
	if free <= 0 || len(rows) == 0 {
		return 0
	}
	if len(rows) < free {
		free = len(rows)
	}
	take := rows[:free]
	idx := srcIdx[:free]
	for ci, sc := range projIdx {
		w := b.schema.ColWidth(ci)
		var dstOff, dstStride int
		if b.format == RowStore {
			dstOff = b.n*b.schema.RowWidth() + b.schema.ColOffset(ci)
			dstStride = b.schema.RowWidth()
		} else {
			dstOff = b.colOff[ci] + b.n*w
			dstStride = w
		}
		d := dstOff
		cur := int32(-1)
		var src *Block
		var srcOff, srcStride int
		for i, r := range take {
			if idx[i] != cur {
				cur = idx[i]
				src = srcs[cur]
				if src.format == RowStore {
					srcOff = src.schema.ColOffset(sc)
					srcStride = src.schema.RowWidth()
				} else {
					srcOff = src.colOff[sc]
					srcStride = w
				}
			}
			s := srcOff + int(r)*srcStride
			copy(b.data[d:d+w], src.data[s:s+w])
			d += dstStride
		}
	}
	b.n += len(take)
	return len(take)
}

// Row materializes row i as a datum slice (Char datums alias block memory).
func (b *Block) Row(i int) []types.Datum {
	out := make([]types.Datum, b.schema.NumCols())
	for c := range out {
		out[c] = b.DatumAt(c, i)
	}
	return out
}

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }
