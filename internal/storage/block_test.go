package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "k", Type: types.Int64},
		Column{Name: "v", Type: types.Float64},
		Column{Name: "d", Type: types.Date},
		Column{Name: "s", Type: types.Char, Width: 10},
	)
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema()
	if s.RowWidth() != 8+8+4+10 {
		t.Fatalf("row width = %d", s.RowWidth())
	}
	if s.ColOffset(0) != 0 || s.ColOffset(1) != 8 || s.ColOffset(2) != 16 || s.ColOffset(3) != 20 {
		t.Fatal("column offsets wrong")
	}
	if s.MustColIndex("d") != 2 {
		t.Fatal("ColIndex wrong")
	}
	if s.ColIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p := s.Project([]int{3, 0})
	if p.NumCols() != 2 || p.Col(0).Name != "s" || p.Col(1).Name != "k" {
		t.Fatalf("projection wrong: %v", p.Names())
	}
	if p.RowWidth() != 18 {
		t.Fatalf("projected row width = %d", p.RowWidth())
	}
}

func TestSchemaPanicsOnBadChar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Char without width")
		}
	}()
	NewSchema(Column{Name: "x", Type: types.Char})
}

func roundTrip(t *testing.T, format Format) {
	t.Helper()
	s := testSchema()
	b := NewBlock(s, format, 1024)
	rows := [][]types.Datum{
		{types.NewInt64(1), types.NewFloat64(1.5), types.NewDate(100), types.NewString("alpha")},
		{types.NewInt64(-7), types.NewFloat64(-0.25), types.NewDate(-5), types.NewString("0123456789")},
		{types.NewInt64(0), types.NewFloat64(0), types.NewDate(0), types.NewString("")},
	}
	for _, r := range rows {
		if !b.AppendRow(r...) {
			t.Fatal("append failed")
		}
	}
	if b.NumRows() != len(rows) {
		t.Fatalf("NumRows = %d", b.NumRows())
	}
	for i, r := range rows {
		if got := b.Int64At(0, i); got != r[0].I {
			t.Errorf("row %d int: got %d want %d", i, got, r[0].I)
		}
		if got := b.Float64At(1, i); got != r[1].F {
			t.Errorf("row %d float: got %v want %v", i, got, r[1].F)
		}
		if got := b.DateAt(2, i); got != int32(r[2].I) {
			t.Errorf("row %d date: got %d want %d", i, got, r[2].I)
		}
		if got := string(types.TrimPad(b.BytesAt(3, i))); got != string(r[3].B) {
			t.Errorf("row %d char: got %q want %q", i, got, r[3].B)
		}
	}
}

func TestBlockRoundTripRowStore(t *testing.T)    { roundTrip(t, RowStore) }
func TestBlockRoundTripColumnStore(t *testing.T) { roundTrip(t, ColumnStore) }

func TestBlockCapacityAndFull(t *testing.T) {
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	b := NewBlock(s, ColumnStore, 64) // 8 rows
	if b.Capacity() != 8 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
	for i := 0; i < 8; i++ {
		if !b.AppendRow(types.NewInt64(int64(i))) {
			t.Fatalf("append %d failed early", i)
		}
	}
	if !b.Full() {
		t.Fatal("block should be full")
	}
	if b.AppendRow(types.NewInt64(99)) {
		t.Fatal("append to full block should fail")
	}
	if b.UsedBytes() != 64 {
		t.Fatalf("UsedBytes = %d", b.UsedBytes())
	}
	b.Reset()
	if b.NumRows() != 0 || b.Full() {
		t.Fatal("Reset should empty the block")
	}
}

func TestBlockMinimumCapacityOneRow(t *testing.T) {
	s := testSchema()             // 30-byte rows
	b := NewBlock(s, RowStore, 1) // budget smaller than one row
	if b.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", b.Capacity())
	}
}

func TestAppendFromProjection(t *testing.T) {
	s := testSchema()
	src := NewBlock(s, ColumnStore, 4096)
	src.AppendRow(types.NewInt64(5), types.NewFloat64(2.5), types.NewDate(9), types.NewString("hello"))

	dstSchema := s.Project([]int{3, 1})
	dst := NewBlock(dstSchema, RowStore, 4096)
	if !dst.AppendFrom(src, 0, []int{3, 1}) {
		t.Fatal("AppendFrom failed")
	}
	if got := string(types.TrimPad(dst.BytesAt(0, 0))); got != "hello" {
		t.Errorf("projected char = %q", got)
	}
	if got := dst.Float64At(1, 0); got != 2.5 {
		t.Errorf("projected float = %v", got)
	}
}

func TestAppendRawJoinRow(t *testing.T) {
	ls := NewSchema(Column{Name: "a", Type: types.Int64}, Column{Name: "b", Type: types.Float64})
	rs := NewSchema(Column{Name: "c", Type: types.Int64})
	l := NewBlock(ls, ColumnStore, 1024)
	r := NewBlock(rs, RowStore, 1024)
	l.AppendRow(types.NewInt64(1), types.NewFloat64(0.5))
	r.AppendRow(types.NewInt64(42))

	out := NewBlock(NewSchema(ls.Col(0), ls.Col(1), rs.Col(0)), RowStore, 1024)
	if !out.AppendRaw(l, 0, []int{0, 1}, r, 0, []int{0}) {
		t.Fatal("AppendRaw failed")
	}
	if out.Int64At(0, 0) != 1 || out.Float64At(1, 0) != 0.5 || out.Int64At(2, 0) != 42 {
		t.Fatalf("joined row wrong: %v", out.Row(0))
	}

	// nil right block zero-fills (left outer join padding).
	if !out.AppendRaw(l, 0, []int{0, 1}, nil, 0, []int{0}) {
		t.Fatal("AppendRaw outer failed")
	}
	if out.Int64At(2, 1) != 0 {
		t.Fatal("outer padding should be zero")
	}
}

// Property: for any sequence of rows, row-store and column-store blocks
// return identical data.
func TestFormatsEquivalentProperty(t *testing.T) {
	s := testSchema()
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rb := NewBlock(s, RowStore, 1<<14)
		cb := NewBlock(s, ColumnStore, 1<<14)
		n := int(nRows%64) + 1
		for i := 0; i < n; i++ {
			str := make([]byte, rng.Intn(11))
			for j := range str {
				str[j] = byte('a' + rng.Intn(26))
			}
			row := []types.Datum{
				types.NewInt64(rng.Int63() - rng.Int63()),
				types.NewFloat64(rng.NormFloat64()),
				types.NewDate(int32(rng.Int31() - rng.Int31())),
				types.NewChar(str),
			}
			rb.AppendRow(row...)
			cb.AppendRow(row...)
		}
		for i := 0; i < n; i++ {
			for c := 0; c < s.NumCols(); c++ {
				if !types.Equal(rb.DatumAt(c, i), cb.DatumAt(c, i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCharPaddingZeroed(t *testing.T) {
	// Overwriting a longer string with a shorter one must re-pad, so stale
	// bytes cannot leak through block reuse.
	s := NewSchema(Column{Name: "s", Type: types.Char, Width: 8})
	b := NewBlock(s, RowStore, 64)
	b.AppendRow(types.NewString("longtext"))
	b.Reset()
	b.AppendRow(types.NewString("ab"))
	if got := string(types.TrimPad(b.BytesAt(0, 0))); got != "ab" {
		t.Fatalf("stale padding leaked: %q", got)
	}
}

func TestGatherInt64MatchesInt64At(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Type: types.Int64},
		Column{Name: "f", Type: types.Float64},
		Column{Name: "b", Type: types.Int64},
	)
	rng := rand.New(rand.NewSource(11))
	for _, format := range []Format{RowStore, ColumnStore} {
		b := NewBlock(s, format, 4096)
		for !b.Full() {
			b.AppendRow(
				types.NewInt64(rng.Int63()-rng.Int63()),
				types.NewFloat64(rng.NormFloat64()),
				types.NewInt64(rng.Int63()-rng.Int63()),
			)
		}
		var dst []int64
		for _, col := range []int{0, 2} {
			dst = b.GatherInt64(col, dst)
			if len(dst) != b.NumRows() {
				t.Fatalf("%v col %d: gathered %d rows, want %d", format, col, len(dst), b.NumRows())
			}
			for r, v := range dst {
				if want := b.Int64At(col, r); v != want {
					t.Fatalf("%v col %d row %d: got %d want %d", format, col, r, v, want)
				}
			}
		}
		// Reuse: a large-enough dst must be reused, not reallocated.
		before := &dst[:1][0]
		dst = b.GatherInt64(0, dst)
		if &dst[:1][0] != before {
			t.Errorf("%v: GatherInt64 reallocated a sufficient dst", format)
		}
	}
}

func TestAppendFromManyMatchesAppendFrom(t *testing.T) {
	src := NewBlock(testSchema(), ColumnStore, 8192)
	rng := rand.New(rand.NewSource(12))
	for !src.Full() {
		str := make([]byte, rng.Intn(11))
		for j := range str {
			str[j] = byte('a' + rng.Intn(26))
		}
		src.AppendRow(
			types.NewInt64(rng.Int63()-rng.Int63()),
			types.NewFloat64(rng.NormFloat64()),
			types.NewDate(int32(rng.Int31()-rng.Int31())),
			types.NewChar(str),
		)
	}
	proj := []int{3, 0} // Char + Int64, out of order
	dstSch := src.Schema().Project(proj)
	rows := make([]int32, 0, src.NumRows())
	for r := src.NumRows() - 1; r >= 0; r-- { // scattered (reverse) row order
		rows = append(rows, int32(r))
	}
	for _, format := range []Format{RowStore, ColumnStore} {
		want := NewBlock(dstSch, format, 2048)
		for _, r := range rows {
			if !want.AppendFrom(src, int(r), proj) {
				break
			}
		}
		got := NewBlock(dstSch, format, 2048)
		n := got.AppendFromMany(src, rows, proj)
		if n != want.NumRows() {
			t.Fatalf("%v: AppendFromMany appended %d rows, per-row path %d", format, n, want.NumRows())
		}
		for r := 0; r < n; r++ {
			for c := 0; c < dstSch.NumCols(); c++ {
				if !types.Equal(got.DatumAt(c, r), want.DatumAt(c, r)) {
					t.Fatalf("%v row %d col %d: got %v want %v", format, r, c, got.DatumAt(c, r), want.DatumAt(c, r))
				}
			}
		}
		// Second call continues from where the block left off and respects
		// the remaining capacity.
		rest := got.AppendFromMany(src, rows[n:], proj)
		if got.NumRows() != n+rest || got.NumRows() > got.Capacity() {
			t.Fatalf("%v: second AppendFromMany overflowed: n=%d rest=%d cap=%d", format, n, rest, got.Capacity())
		}
		if full := NewBlock(dstSch, format, 2048); full.AppendFromMany(src, nil, proj) != 0 {
			t.Fatalf("%v: AppendFromMany with no rows must append 0", format)
		}
	}
}

func TestGatherDateWidensMatchesDateAt(t *testing.T) {
	s := NewSchema(
		Column{Name: "k", Type: types.Int64},
		Column{Name: "d", Type: types.Date},
	)
	rng := rand.New(rand.NewSource(13))
	for _, format := range []Format{RowStore, ColumnStore} {
		b := NewBlock(s, format, 4096)
		for !b.Full() {
			// Include negative day counts: the widening must sign-extend.
			b.AppendRow(types.NewInt64(rng.Int63()), types.NewDate(int32(rng.Uint32())))
		}
		var dst []int64
		dst = b.GatherDate(1, dst)
		if len(dst) != b.NumRows() {
			t.Fatalf("%v: gathered %d rows, want %d", format, len(dst), b.NumRows())
		}
		for r, v := range dst {
			if want := int64(b.DateAt(1, r)); v != want {
				t.Fatalf("%v row %d: got %d want %d", format, r, v, want)
			}
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: GatherDate on an 8-byte column did not panic", format)
				}
			}()
			b.GatherDate(0, nil)
		}()
	}
}

func TestGatherFloat64MatchesFloat64At(t *testing.T) {
	s := NewSchema(
		Column{Name: "d", Type: types.Date},
		Column{Name: "f", Type: types.Float64},
	)
	rng := rand.New(rand.NewSource(17))
	for _, format := range []Format{RowStore, ColumnStore} {
		b := NewBlock(s, format, 4096)
		for !b.Full() {
			b.AppendRow(types.NewDate(int32(rng.Intn(20000))), types.NewFloat64(rng.NormFloat64()))
		}
		var dst []float64
		dst = b.GatherFloat64(1, dst)
		if len(dst) != b.NumRows() {
			t.Fatalf("%v: gathered %d rows, want %d", format, len(dst), b.NumRows())
		}
		for r, v := range dst {
			if want := b.Float64At(1, r); v != want {
				t.Fatalf("%v row %d: got %v want %v", format, r, v, want)
			}
		}
		// Reuse: a large-enough dst must be reused, not reallocated.
		before := &dst[:1][0]
		dst = b.GatherFloat64(1, dst)
		if &dst[:1][0] != before {
			t.Errorf("%v: GatherFloat64 reallocated a sufficient dst", format)
		}
	}
}
