package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/types"
)

func codecTestSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Type: types.Int64},
		Column{Name: "price", Type: types.Float64},
		Column{Name: "ship", Type: types.Date},
		Column{Name: "flag", Type: types.Char, Width: 12},
	)
}

// fillTestBlock appends n deterministic rows covering every column type.
func fillTestBlock(b *Block, n int) {
	for i := 0; b.NumRows() < n; i++ {
		tag := fmt.Sprintf("tag-%03d", i)
		ok := b.AppendRow(
			types.NewInt64(int64(i)*1_000_003-7),
			types.NewFloat64(float64(i)*0.3718+1e-9),
			types.NewDate(int32(8035+i)),
			types.NewChar([]byte(tag)),
		)
		if !ok {
			break
		}
	}
}

// sameRows asserts a and b expose identical live tuples through every reader.
func sameRows(t *testing.T, a, b *Block) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.Capacity() != b.Capacity() || a.Format() != b.Format() {
		t.Fatalf("shape mismatch: rows %d/%d cap %d/%d fmt %v/%v",
			a.NumRows(), b.NumRows(), a.Capacity(), b.Capacity(), a.Format(), b.Format())
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.Schema().NumCols(); c++ {
			if !bytes.Equal(a.cell(c, r), b.cell(c, r)) {
				t.Fatalf("cell (%d,%d) differs: %x vs %x", c, r, a.cell(c, r), b.cell(c, r))
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, format := range []Format{RowStore, ColumnStore} {
		for _, rows := range []int{0, 1, 17} {
			t.Run(fmt.Sprintf("%v/%drows", format, rows), func(t *testing.T) {
				b := NewBlock(codecTestSchema(), format, 1<<10)
				fillTestBlock(b, rows)
				enc := EncodeBlock(b, nil)
				if len(enc) != EncodedLen(b) {
					t.Fatalf("EncodedLen %d != encoded %d", EncodedLen(b), len(enc))
				}
				got, err := DecodeBlock(enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				sameRows(t, b, got)
				if got.Schema().String() != b.Schema().String() {
					t.Fatalf("schema %s != %s", got.Schema(), b.Schema())
				}
				// Re-encoding the decoded block must be byte-identical: the
				// format is canonical.
				if !bytes.Equal(EncodeBlock(got, nil), enc) {
					t.Fatal("re-encoding is not canonical")
				}
			})
		}
	}
}

func TestCodecZeroColumnSchema(t *testing.T) {
	for _, format := range []Format{RowStore, ColumnStore} {
		b := NewBlock(NewSchema(), format, 64)
		b.AppendRow()
		b.AppendRow()
		enc := EncodeBlock(b, nil)
		got, err := DecodeBlock(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", format, err)
		}
		if got.NumRows() != 2 || got.Schema().NumCols() != 0 {
			t.Fatalf("%v: got %d rows, %d cols", format, got.NumRows(), got.Schema().NumCols())
		}
	}
}

func TestCodecDecodeIntoKeepsSchemaPointer(t *testing.T) {
	schema := codecTestSchema()
	b := NewBlock(schema, ColumnStore, 1<<10)
	fillTestBlock(b, 9)
	want := NewBlock(schema, ColumnStore, 1<<10)
	fillTestBlock(want, 9)

	enc := EncodeBlock(b, nil)
	b.dropData()
	if err := decodeInto(b, enc); err != nil {
		t.Fatalf("decodeInto: %v", err)
	}
	if b.Schema() != schema {
		t.Fatal("decodeInto replaced the schema pointer; freelist matching would break")
	}
	sameRows(t, want, b)
}

func TestCodecDecodeIntoShapeMismatch(t *testing.T) {
	b := NewBlock(codecTestSchema(), RowStore, 1<<10)
	fillTestBlock(b, 3)
	enc := EncodeBlock(b, nil)
	other := NewBlock(codecTestSchema(), ColumnStore, 1<<10)
	if err := decodeInto(other, enc); !errors.Is(err, ErrCodecHeader) {
		t.Fatalf("format mismatch: got %v, want ErrCodecHeader", err)
	}
	small := NewBlock(codecTestSchema(), RowStore, 128)
	if err := decodeInto(small, enc); !errors.Is(err, ErrCodecHeader) {
		t.Fatalf("capacity mismatch: got %v, want ErrCodecHeader", err)
	}
}

func TestCodecTypedErrors(t *testing.T) {
	b := NewBlock(codecTestSchema(), ColumnStore, 1<<10)
	fillTestBlock(b, 5)
	good := EncodeBlock(b, nil)

	mutate := func(f func(d []byte)) []byte {
		d := append([]byte(nil), good...)
		f(d)
		return d
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCodecTruncated},
		{"short header", good[:codecHeaderLen-1], ErrCodecTruncated},
		// Dropping payload bytes breaks the checksum before the length
		// check can notice — either way a typed error, never a panic.
		{"truncated payload", good[:len(good)-1], ErrCodecChecksum},
		{"bad magic", mutate(func(d []byte) { d[0] ^= 0xFF }), ErrCodecMagic},
		{"bad version", mutate(func(d []byte) { d[4] = 99 }), ErrCodecVersion},
		{"bad format", mutate(func(d []byte) { d[6] = 7 }), ErrCodecHeader},
		{"reserved byte", mutate(func(d []byte) { d[7] = 1 }), ErrCodecHeader},
		{"flipped payload bit", mutate(func(d []byte) { d[len(d)-1] ^= 0x01 }), ErrCodecChecksum},
		{"flipped crc", mutate(func(d []byte) { d[9] ^= 0x01 }), ErrCodecChecksum},
	}
	for _, tc := range cases {
		if _, err := DecodeBlock(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Header-field corruption lands after the CRC, so the checksum catches
	// it first; forging the CRC must still fail the structural checks.
	forge := func(f func(d []byte)) []byte {
		d := append([]byte(nil), good...)
		f(d)
		crc := crc32.Checksum(d[codecCRCStart:], codecCRCTable)
		binary.LittleEndian.PutUint32(d[8:], crc)
		return d
	}
	forged := []struct {
		name string
		data []byte
		want error
	}{
		{"rows > capacity", forge(func(d []byte) { binary.LittleEndian.PutUint32(d[16:], 1<<30) }), ErrCodecHeader},
		{"huge ncols", forge(func(d []byte) { binary.LittleEndian.PutUint32(d[12:], 1<<20) }), ErrCodecHeader},
		{"zero capacity", forge(func(d []byte) { binary.LittleEndian.PutUint32(d[20:], 0) }), ErrCodecHeader},
		{"payload len lie", forge(func(d []byte) { binary.LittleEndian.PutUint32(d[24:], 1) }), ErrCodecHeader},
		{"bad col type", forge(func(d []byte) { d[codecHeaderLen] = 200 }), ErrCodecHeader},
		{"bad col width", forge(func(d []byte) { binary.LittleEndian.PutUint32(d[codecHeaderLen+1:], 3) }), ErrCodecHeader},
	}
	for _, tc := range forged {
		if _, err := DecodeBlock(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// FuzzBlockCodec asserts the decoder never panics on arbitrary bytes, and
// that any input it accepts round-trips canonically: decode → encode
// reproduces the input bit-for-bit, and a second decode agrees cell-for-cell.
func FuzzBlockCodec(f *testing.F) {
	for _, format := range []Format{RowStore, ColumnStore} {
		b := NewBlock(codecTestSchema(), format, 1<<9)
		fillTestBlock(b, 6)
		f.Add(EncodeBlock(b, nil))
		empty := NewBlock(NewSchema(Column{Name: "k", Type: types.Int64}), format, 64)
		f.Add(EncodeBlock(empty, nil))
	}
	zc := NewBlock(NewSchema(), RowStore, 16)
	zc.AppendRow()
	f.Add(EncodeBlock(zc, nil))
	f.Add([]byte{})
	f.Add([]byte("UOTBgarbage-that-is-not-a-block"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlock(data)
		if err != nil {
			if b != nil {
				t.Fatal("decode returned a block alongside an error")
			}
			return
		}
		enc := EncodeBlock(b, nil)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input is not canonical: %d in, %d out", len(data), len(enc))
		}
		again, err := DecodeBlock(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		sameRows(t, b, again)
	})
}
