package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/types"
)

// Block wire format (little-endian), used by the spill tier to write sealed
// temp blocks to extent files and fault them back in bit-identically:
//
//	offset  size  field
//	0       4     magic 0x55_4F_54_42 ("UOTB")
//	4       2     version (currently 1)
//	6       1     format (RowStore / ColumnStore)
//	7       1     reserved (zero)
//	8       4     CRC32-Castagnoli over everything after this field
//	12      4     ncols
//	16      4     nrows
//	20      4     capacity (rows)
//	24      4     payload length (bytes)
//	28      ...   ncols column descriptors: type u8, width u32, nameLen u16, name
//	...     ...   payload
//
// The payload holds only live rows: the n*rowWidth prefix for RowStore, or
// the n*colWidth prefix of each column region (concatenated in column order)
// for ColumnStore. Cell bytes past NumRows are scratch — Truncate leaves them
// in place and appends overwrite them — so encoding the live prefix and
// zero-filling the rest on decode reproduces every byte a reader can observe.

const (
	codecMagic     = 0x554F5442
	codecVersion   = 1
	codecHeaderLen = 28
	// codecCRCStart is where the checksummed region begins (everything after
	// the CRC field itself, so the header's row counts are covered too).
	codecCRCStart = 12

	// Sanity caps: decode works on untrusted bytes (fuzzing, torn files), so
	// bound every size field before multiplying or allocating.
	codecMaxCols     = 4096
	codecMaxColWidth = 1 << 20
	codecMaxBlock    = 1 << 26
)

// Typed codec errors. Decoding never panics: corrupted or truncated input
// maps onto one of these, which the spill read path surfaces as a fault.
var (
	ErrCodecMagic     = errors.New("storage: block codec: bad magic")
	ErrCodecVersion   = errors.New("storage: block codec: unsupported version")
	ErrCodecHeader    = errors.New("storage: block codec: malformed header")
	ErrCodecTruncated = errors.New("storage: block codec: truncated input")
	ErrCodecChecksum  = errors.New("storage: block codec: checksum mismatch")
)

var codecCRCTable = crc32.MakeTable(crc32.Castagnoli)

// payloadLen returns the encoded payload size of b: live rows only.
func (b *Block) payloadLen() int {
	if b.format == RowStore {
		return b.n * b.schema.RowWidth()
	}
	total := 0
	for i := 0; i < b.schema.NumCols(); i++ {
		total += b.n * b.schema.ColWidth(i)
	}
	return total
}

// EncodedLen returns the exact size in bytes of EncodeBlock's output for b.
func EncodedLen(b *Block) int {
	n := codecHeaderLen
	for i := 0; i < b.schema.NumCols(); i++ {
		n += 1 + 4 + 2 + len(b.schema.Col(i).Name)
	}
	return n + b.payloadLen()
}

// EncodeBlock serializes b into buf (reusing it when large enough) and
// returns the encoded bytes. The encoding is self-describing — schema,
// format, row count, capacity, checksum — so a decoder needs no side channel.
func EncodeBlock(b *Block, buf []byte) []byte {
	need := EncodedLen(b)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]

	binary.LittleEndian.PutUint32(buf[0:], codecMagic)
	binary.LittleEndian.PutUint16(buf[4:], codecVersion)
	buf[6] = byte(b.format)
	buf[7] = 0
	binary.LittleEndian.PutUint32(buf[12:], uint32(b.schema.NumCols()))
	binary.LittleEndian.PutUint32(buf[16:], uint32(b.n))
	binary.LittleEndian.PutUint32(buf[20:], uint32(b.capacity))
	binary.LittleEndian.PutUint32(buf[24:], uint32(b.payloadLen()))

	off := codecHeaderLen
	for i := 0; i < b.schema.NumCols(); i++ {
		c := b.schema.Col(i)
		buf[off] = byte(c.Type)
		binary.LittleEndian.PutUint32(buf[off+1:], uint32(b.schema.ColWidth(i)))
		binary.LittleEndian.PutUint16(buf[off+5:], uint16(len(c.Name)))
		copy(buf[off+7:], c.Name)
		off += 7 + len(c.Name)
	}

	if b.format == RowStore {
		off += copy(buf[off:], b.data[:b.n*b.schema.RowWidth()])
	} else {
		for i := 0; i < b.schema.NumCols(); i++ {
			w := b.schema.ColWidth(i)
			off += copy(buf[off:], b.data[b.colOff[i]:b.colOff[i]+b.n*w])
		}
	}

	crc := crc32.Checksum(buf[codecCRCStart:], codecCRCTable)
	binary.LittleEndian.PutUint32(buf[8:], crc)
	return buf
}

// codecHeader is the validated fixed header plus column descriptors.
type codecHeader struct {
	format     Format
	ncols      int
	nrows      int
	capacity   int
	payloadLen int
	cols       []Column
	payloadOff int
}

// decodeHeader validates the fixed header, checksum, and column descriptors
// of data, returning a typed error on any malformation. It performs every
// bounds check up front so the payload copy loops cannot run past the input.
func decodeHeader(data []byte) (codecHeader, error) {
	var h codecHeader
	if len(data) < codecHeaderLen {
		return h, fmt.Errorf("%w: %d bytes, need %d for header", ErrCodecTruncated, len(data), codecHeaderLen)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != codecMagic {
		return h, fmt.Errorf("%w: 0x%08x", ErrCodecMagic, m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != codecVersion {
		return h, fmt.Errorf("%w: %d", ErrCodecVersion, v)
	}
	if f := data[6]; f > uint8(ColumnStore) {
		return h, fmt.Errorf("%w: unknown format %d", ErrCodecHeader, f)
	}
	h.format = Format(data[6])
	if data[7] != 0 {
		return h, fmt.Errorf("%w: reserved byte set", ErrCodecHeader)
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:])
	if got := crc32.Checksum(data[codecCRCStart:], codecCRCTable); got != wantCRC {
		return h, fmt.Errorf("%w: got 0x%08x want 0x%08x", ErrCodecChecksum, got, wantCRC)
	}
	h.ncols = int(binary.LittleEndian.Uint32(data[12:]))
	h.nrows = int(binary.LittleEndian.Uint32(data[16:]))
	h.capacity = int(binary.LittleEndian.Uint32(data[20:]))
	h.payloadLen = int(binary.LittleEndian.Uint32(data[24:]))
	if h.ncols > codecMaxCols {
		return h, fmt.Errorf("%w: %d columns", ErrCodecHeader, h.ncols)
	}
	if h.capacity < 1 || h.nrows < 0 || h.nrows > h.capacity {
		return h, fmt.Errorf("%w: %d rows in capacity %d", ErrCodecHeader, h.nrows, h.capacity)
	}

	off := codecHeaderLen
	h.cols = make([]Column, h.ncols)
	rowWidth := 0
	for i := 0; i < h.ncols; i++ {
		if len(data) < off+7 {
			return h, fmt.Errorf("%w: column descriptor %d", ErrCodecTruncated, i)
		}
		ty := types.TypeID(data[off])
		width := int(binary.LittleEndian.Uint32(data[off+1:]))
		nameLen := int(binary.LittleEndian.Uint16(data[off+5:]))
		if len(data) < off+7+nameLen {
			return h, fmt.Errorf("%w: column name %d", ErrCodecTruncated, i)
		}
		switch ty {
		case types.Int64, types.Float64, types.Date:
			if width != ty.Width() {
				return h, fmt.Errorf("%w: column %d: %s width %d", ErrCodecHeader, i, ty, width)
			}
		case types.Char:
			if width < 1 || width > codecMaxColWidth {
				return h, fmt.Errorf("%w: column %d: char width %d", ErrCodecHeader, i, width)
			}
		default:
			return h, fmt.Errorf("%w: column %d: unknown type %d", ErrCodecHeader, i, uint8(ty))
		}
		h.cols[i] = Column{Name: string(data[off+7 : off+7+nameLen]), Type: ty, Width: width}
		rowWidth += width
		off += 7 + nameLen
	}
	if rowWidth == 0 {
		rowWidth = 1 // zero-column schema convention (see NewSchema)
	}
	if h.capacity > codecMaxBlock/rowWidth {
		return h, fmt.Errorf("%w: capacity %d x row width %d too large", ErrCodecHeader, h.capacity, rowWidth)
	}
	wantPayload := h.nrows * rowWidth
	if h.ncols == 0 && h.format == ColumnStore {
		wantPayload = 0 // no column regions to encode
	}
	if h.payloadLen != wantPayload {
		return h, fmt.Errorf("%w: payload length %d, want %d", ErrCodecHeader, h.payloadLen, wantPayload)
	}
	if len(data) != off+h.payloadLen {
		return h, fmt.Errorf("%w: %d bytes, want %d", ErrCodecTruncated, len(data), off+h.payloadLen)
	}
	h.payloadOff = off
	return h, nil
}

// copyPayload scatters the encoded live-row payload into b.data, which must
// already be sized for b's capacity. Bytes past the live rows are zero.
func (h codecHeader) copyPayload(b *Block, data []byte) {
	payload := data[h.payloadOff:]
	if b.format == RowStore {
		copy(b.data, payload)
		return
	}
	src := 0
	for i := 0; i < b.schema.NumCols(); i++ {
		w := b.schema.ColWidth(i) * h.nrows
		copy(b.data[b.colOff[i]:], payload[src:src+w])
		src += w
	}
}

// DecodeBlock deserializes a standalone block from data, reconstructing its
// schema from the embedded descriptors. Corrupted input returns a typed
// error; the output of EncodeBlock round-trips bit-identically over every
// byte a reader can observe.
func DecodeBlock(data []byte) (*Block, error) {
	h, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	schema := NewSchema(h.cols...)
	b := &Block{
		schema:   schema,
		format:   h.format,
		capacity: h.capacity,
		n:        h.nrows,
		data:     make([]byte, h.capacity*schema.RowWidth()),
	}
	if h.format == ColumnStore {
		b.colOff = make([]int, schema.NumCols())
		off := 0
		for i := 0; i < schema.NumCols(); i++ {
			b.colOff[i] = off
			off += h.capacity * schema.ColWidth(i)
		}
	}
	h.copyPayload(b, data)
	return b, nil
}

// decodeInto deserializes data into b, which must be an evicted block
// (data dropped) whose schema, format, and capacity produced the encoding.
// The block keeps its original *Schema — the pool's freelist matches schemas
// by pointer identity, so fault-in must not substitute a reconstructed copy.
func decodeInto(b *Block, data []byte) error {
	h, err := decodeHeader(data)
	if err != nil {
		return err
	}
	if h.format != b.format || h.capacity != b.capacity || h.ncols != b.schema.NumCols() {
		return fmt.Errorf("%w: shape mismatch on fault-in", ErrCodecHeader)
	}
	for i := 0; i < h.ncols; i++ {
		if h.cols[i].Type != b.schema.Col(i).Type || h.cols[i].width() != b.schema.ColWidth(i) {
			return fmt.Errorf("%w: column %d mismatch on fault-in", ErrCodecHeader, i)
		}
	}
	b.data = make([]byte, b.capacity*b.schema.RowWidth())
	b.n = h.nrows
	h.copyPayload(b, data)
	return nil
}

// dropData frees the block's backing allocation after its contents were
// spilled. Reads would fault until decodeInto restores it; the spill tier
// guarantees that happens before the scheduler hands the block to a consumer.
func (b *Block) dropData() { b.data = nil }
