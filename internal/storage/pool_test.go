package storage

import (
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/types"
)

func TestPoolPartialResume(t *testing.T) {
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	p := NewPool(nil, nil)

	b := p.CheckOut(1, s, ColumnStore, 1024)
	b.AppendRow(types.NewInt64(7))
	p.CheckIn(1, b)

	// The same owner resumes the same partial block.
	b2 := p.CheckOut(1, s, ColumnStore, 1024)
	if b2 != b || b2.NumRows() != 1 {
		t.Fatal("owner should resume its partial block")
	}

	// A different owner must not see owner 1's partial block.
	p.CheckIn(1, b2)
	b3 := p.CheckOut(2, s, ColumnStore, 1024)
	if b3 == b {
		t.Fatal("partial block leaked across owners")
	}
}

func TestPoolRecyclesReleasedBlocks(t *testing.T) {
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	p := NewPool(nil, nil)
	b := p.CheckOut(1, s, RowStore, 2048)
	b.AppendRow(types.NewInt64(1))
	p.Release(b)
	b2 := p.CheckOut(1, s, RowStore, 2048)
	if b2 != b {
		t.Fatal("released block should be recycled")
	}
	if b2.NumRows() != 0 {
		t.Fatal("recycled block should be reset")
	}
}

func TestPoolDoesNotRecycleAcrossSchemaOrFormat(t *testing.T) {
	s1 := NewSchema(Column{Name: "k", Type: types.Int64})
	s2 := NewSchema(Column{Name: "v", Type: types.Float64})
	p := NewPool(nil, nil)
	b := p.CheckOut(1, s1, RowStore, 2048)
	p.Release(b)
	if got := p.CheckOut(1, s2, RowStore, 2048); got == b {
		t.Fatal("block recycled across schemas")
	}
	b3 := p.CheckOut(1, s1, ColumnStore, 2048)
	if b3 == b {
		t.Fatal("block recycled across formats")
	}
}

func TestPoolMemoryGauge(t *testing.T) {
	var g stats.MemGauge
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	p := NewPool(&g, nil)

	b1 := p.CheckOut(1, s, RowStore, 1024)
	b2 := p.CheckOut(1, s, RowStore, 1024)
	want := int64(b1.AllocBytes() + b2.AllocBytes())
	if g.Live() != want {
		t.Fatalf("live = %d, want %d", g.Live(), want)
	}

	// Check-in of a partial block keeps it live.
	p.CheckIn(1, b1)
	if g.Live() != want {
		t.Fatalf("live after check-in = %d, want %d", g.Live(), want)
	}
	// Resuming it must not double count.
	_ = p.CheckOut(1, s, RowStore, 1024)
	if g.Live() != want {
		t.Fatalf("live after resume = %d, want %d", g.Live(), want)
	}

	p.Release(b2)
	if g.Live() != int64(b1.AllocBytes()) {
		t.Fatalf("live after release = %d", g.Live())
	}
	if g.High() != want {
		t.Fatalf("high water = %d, want %d", g.High(), want)
	}

	// Recycled checkout counts as live again.
	b4 := p.CheckOut(2, s, RowStore, 1024)
	if b4 != b2 {
		t.Fatal("expected recycle")
	}
	if g.Live() != want {
		t.Fatalf("live after recycle = %d, want %d", g.Live(), want)
	}
}

func TestPoolCheckoutHookAndConcurrency(t *testing.T) {
	var run stats.Run
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	p := NewPool(nil, run.AddCheckout)

	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b := p.CheckOut(owner, s, ColumnStore, 512)
				b.AppendRow(types.NewInt64(int64(i)))
				if b.Full() {
					p.Release(b)
				} else {
					p.CheckIn(owner, b)
				}
			}
		}(w)
	}
	wg.Wait()
	if run.Checkouts() != workers*per {
		t.Fatalf("checkouts = %d, want %d", run.Checkouts(), workers*per)
	}
}

func TestTakePartials(t *testing.T) {
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	p := NewPool(nil, nil)
	b := p.CheckOut(1, s, RowStore, 1024)
	b.AppendRow(types.NewInt64(1))
	p.CheckIn(1, b)

	ps := p.TakePartials(1)
	if len(ps) != 1 || ps[0] != b {
		t.Fatalf("TakePartials = %v", ps)
	}
	if got := p.TakePartials(1); len(got) != 0 {
		t.Fatal("partials should be drained")
	}
}

func TestLoaderAndTable(t *testing.T) {
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	tb := NewTable("t", s, ColumnStore, 80) // 10 rows per block
	l := NewLoader(tb)
	for i := 0; i < 25; i++ {
		l.Append(types.NewInt64(int64(i)))
	}
	l.Close()
	if tb.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", tb.NumBlocks())
	}
	if tb.NumRows() != 25 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.UsedBytes() != 25*8 {
		t.Fatalf("used bytes = %d", tb.UsedBytes())
	}
	// Values survive block boundaries in order.
	var got []int64
	for _, b := range tb.Blocks() {
		for i := 0; i < b.NumRows(); i++ {
			got = append(got, b.Int64At(0, i))
		}
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := NewSchema(Column{Name: "k", Type: types.Int64})
	tb := NewTable("nation", s, RowStore, 1024)
	c.Add(tb)
	if c.Get("nation") != tb || c.MustGet("nation") != tb {
		t.Fatal("catalog lookup failed")
	}
	if c.Get("region") != nil {
		t.Fatal("missing table should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add should panic")
		}
	}()
	c.Add(NewTable("nation", s, RowStore, 1024))
}
