package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// tableUID hands every table a process-unique identity (see Table.UID).
var tableUID int64

// Table is an ordered list of blocks sharing one schema, format, and block
// size. Base tables are built once by a loader; intermediate tables are
// appended concurrently by work orders, so Append is synchronized.
type Table struct {
	name       string
	schema     *Schema
	format     Format
	blockBytes int
	uid        int64

	mu     sync.Mutex
	blocks []*Block

	version atomic.Int64
}

// NewTable returns an empty table.
func NewTable(name string, schema *Schema, format Format, blockBytes int) *Table {
	return &Table{
		name: name, schema: schema, format: format, blockBytes: blockBytes,
		uid: atomic.AddInt64(&tableUID, 1),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// UID returns the table's process-unique identity. Two tables never share a
// UID even when they share a name, so a plan fingerprint keyed on UID can
// never confuse one loaded dataset with another.
func (t *Table) UID() int64 { return t.uid }

// Version returns the table's data version, starting at 0. Consumers that
// cache results derived from the table (internal/reuse) key their validity
// on it.
func (t *Table) Version() int64 { return t.version.Load() }

// BumpVersion advances the data version; call it after mutating the table's
// contents so version-keyed caches invalidate.
func (t *Table) BumpVersion() { t.version.Add(1) }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Format returns the tuple layout of the table's blocks.
func (t *Table) Format() Format { return t.format }

// BlockBytes returns the per-block byte budget.
func (t *Table) BlockBytes() int { return t.blockBytes }

// Append adds a filled block to the table.
func (t *Table) Append(b *Block) {
	t.mu.Lock()
	t.blocks = append(t.blocks, b)
	t.mu.Unlock()
}

// NumBlocks returns the number of blocks.
func (t *Table) NumBlocks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.blocks)
}

// Block returns the i-th block.
func (t *Table) Block(i int) *Block {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blocks[i]
}

// Blocks returns a snapshot of the block list.
func (t *Table) Blocks() []*Block {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Block, len(t.blocks))
	copy(out, t.blocks)
	return out
}

// NumRows returns the total tuple count.
func (t *Table) NumRows() int64 {
	var n int64
	for _, b := range t.Blocks() {
		n += int64(b.NumRows())
	}
	return n
}

// UsedBytes returns total live tuple bytes across blocks.
func (t *Table) UsedBytes() int64 {
	var n int64
	for _, b := range t.Blocks() {
		n += int64(b.UsedBytes())
	}
	return n
}

// AllocBytes returns total allocated bytes across blocks.
func (t *Table) AllocBytes() int64 {
	var n int64
	for _, b := range t.Blocks() {
		n += int64(b.AllocBytes())
	}
	return n
}

// Loader bulk-appends rows to a table, managing block boundaries. It is not
// safe for concurrent use; generators load single-threaded per table.
type Loader struct {
	t   *Table
	cur *Block
}

// NewLoader returns a loader for t.
func NewLoader(t *Table) *Loader { return &Loader{t: t} }

// Append adds one row.
func (l *Loader) Append(vals ...types.Datum) {
	if l.cur == nil {
		l.cur = NewBlock(l.t.schema, l.t.format, l.t.blockBytes)
	}
	if !l.cur.AppendRow(vals...) {
		l.t.Append(l.cur)
		l.cur = NewBlock(l.t.schema, l.t.format, l.t.blockBytes)
		l.cur.AppendRow(vals...)
	}
}

// Close flushes the final partial block.
func (l *Loader) Close() {
	if l.cur != nil && l.cur.NumRows() > 0 {
		l.t.Append(l.cur)
	}
	l.cur = nil
}

// Catalog maps table names to tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Add registers a table; it panics if the name is taken (a plan-construction
// error).
func (c *Catalog) Add(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.name]; ok {
		panic(fmt.Sprintf("storage: table %q already exists", t.name))
	}
	c.tables[t.name] = t
}

// Get returns the named table, or nil.
func (c *Catalog) Get(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// MustGet returns the named table and panics if absent.
func (c *Catalog) MustGet(name string) *Table {
	t := c.Get(name)
	if t == nil {
		panic(fmt.Sprintf("storage: no table %q", name))
	}
	return t
}

// Names returns all registered table names (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}
