// Package storage implements the block-based storage manager: fixed-size
// storage blocks in row-store and column-store formats, tables as lists of
// blocks, the thread-safe global pool of temporary output blocks that work
// orders check out and check in (Quickstep's design, Section III-A of the
// paper), and byte-exact memory accounting.
package storage

import (
	"fmt"

	"repro/internal/types"
)

// Column describes one attribute of a schema. Width is the storage width in
// bytes and is only consulted for Char columns; fixed types carry their own
// width.
type Column struct {
	Name  string
	Type  types.TypeID
	Width int
}

func (c Column) width() int {
	if c.Type == types.Char {
		return c.Width
	}
	return c.Type.Width()
}

// Schema is an ordered list of columns with precomputed row layout. Schemas
// are immutable after construction and shared freely across blocks.
type Schema struct {
	cols     []Column
	offsets  []int // byte offset of each column within a row-store tuple
	rowWidth int   // total bytes per tuple
}

// NewSchema builds a schema from columns. It panics on Char columns without
// a positive width, since that is a programming error in plan construction.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: cols, offsets: make([]int, len(cols))}
	for i, c := range cols {
		if c.Type == types.Char && c.Width <= 0 {
			panic(fmt.Sprintf("storage: Char column %q needs a positive width", c.Name))
		}
		s.offsets[i] = s.rowWidth
		s.rowWidth += c.width()
	}
	if s.rowWidth == 0 {
		s.rowWidth = 1 // zero-column schemas (COUNT(*)-only plans) still need rows
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column descriptor.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on a missing column; plan builders use
// it so typos fail fast at plan-construction time.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: schema has no column %q", name))
	}
	return i
}

// RowWidth returns the total bytes per tuple.
func (s *Schema) RowWidth() int { return s.rowWidth }

// ColWidth returns the storage width in bytes of column i.
func (s *Schema) ColWidth(i int) int { return s.cols[i].width() }

// ColOffset returns the byte offset of column i within a row-store tuple.
func (s *Schema) ColOffset(i int) int { return s.offsets[i] }

// Project returns a new schema containing the given columns of s, in order.
func (s *Schema) Project(idxs []int) *Schema {
	cols := make([]Column, len(idxs))
	for i, ix := range idxs {
		cols[i] = s.cols[ix]
	}
	return NewSchema(cols...)
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	ns := make([]string, len(s.cols))
	for i, c := range s.cols {
		ns[i] = c.Name
	}
	return ns
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
		if c.Type == types.Char {
			out += fmt.Sprintf("(%d)", c.Width)
		}
	}
	return out + ")"
}
