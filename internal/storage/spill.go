package storage

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The spill tier sits behind the root Pool and gives temp blocks a second,
// disk-backed home (the paper's Section V-C persistent-store regime). Sealed
// blocks parked in edge buffers are *cooled* — registered as eviction
// candidates on an LRU — and while the root gauge sits above the configured
// threshold the tier encodes the coldest unpinned block (codec.go), appends
// it to an extent file in the per-run spill directory, and drops its RAM
// allocation. When the scheduler is about to hand a block to a consumer it
// *pins* it, which faults spilled contents back in synchronously (the
// read-through the delivery path blocks on) and makes the block ineligible
// for eviction until it is released. Pin/release bracket exactly the window
// in which operator code can touch block memory, so eviction never races a
// reader: that invariant is counted (BadEvicts) and asserted in tests.

// SpillConfig configures a root pool's spill tier.
type SpillConfig struct {
	// Dir is the parent directory; the tier creates (and on CloseSpill
	// removes) a private per-run subdirectory inside it.
	Dir string
	// Threshold is the root live-byte level above which cooled blocks are
	// evicted, coldest first. Zero means any live byte is pressure — useful
	// for tests that want maximal eviction.
	Threshold int64
	// MaxExtentBytes rotates extent files once they grow past this size
	// (default 8 MiB). Whole-file reclamation keeps deletes cheap: an extent
	// is unlinked as soon as its last live record is faulted in or dropped.
	MaxExtentBytes int64
	// WriteFault/ReadFault, when set, are consulted before each spill write
	// and each fault-in read. A non-nil error (or a panic, which the tier
	// recovers) demotes the operation to stall-and-retry: a faulted write
	// leaves the block resident in RAM, a faulted read is retried a bounded
	// number of times before the pin fails. The hooks are plain funcs so the
	// storage layer stays ignorant of the faults package.
	WriteFault func() error
	ReadFault  func() error
}

// SpillCounters is a snapshot of a tier's lifetime activity.
type SpillCounters struct {
	BlocksOut, BytesOut int64 // evictions: blocks encoded and written
	BlocksIn, BytesIn   int64 // fault-ins: blocks read back and decoded
	WriteFaults         int64 // injected/real write failures (block stayed in RAM)
	ReadFaults          int64 // injected/real read failures (retried)
	FaultStallNS        int64 // wall time deliveries spent blocked on fault-in
	DiskLive            int64 // bytes currently held in extent files
	DiskPeak            int64 // high-water mark of DiskLive
	BadEvicts           int64 // pin observed a spilled block while already pinned (invariant breach)
	Outstanding         int   // blocks still tracked by the tier (0 after a clean drain)
}

// PinResult reports what one Pin had to do, so the delivery path can
// attribute fault-in traffic and stall time to the edge it served without
// diffing tier-wide counters (which other queries sharing the pool would
// pollute).
type PinResult struct {
	FaultedIn bool
	Bytes     int64 // encoded bytes read back from the extent file
	StallNS   int64 // wall time the caller was blocked on the fault-in
}

// spillReadRetries bounds the fault-in retry loop before the pin — and with
// it the delivery — fails with the read error.
const spillReadRetries = 8

type extent struct {
	f    *os.File
	path string
	size int64
	live int // spilled records still resident in this file
}

type spillEntry struct {
	view    *Pool // subpool view whose gauge tracks this block
	pins    int   // delivered-and-not-yet-released count; >0 blocks eviction
	spilled bool
	ext     *extent
	off     int64
	len     int
	alloc   int64         // AllocBytes at cool time (gauge credit moved on evict/fault-in)
	elem    *list.Element // LRU position; nil once pinned or spilled
}

type spillTier struct {
	root *Pool
	cfg  SpillConfig
	dir  string

	mu      sync.Mutex
	closed  bool
	entries map[*Block]*spillEntry
	lru     *list.List // of *Block; front = coldest
	extents map[*extent]struct{}
	cur     *extent
	extSeq  int
	scratch []byte // encode-buffer reuse across evictions (under mu)

	c SpillCounters
}

// EnableSpill attaches a spill tier to this pool's root, creating the
// per-run spill directory. It errors if the directory cannot be created or a
// tier is already attached.
func (p *Pool) EnableSpill(cfg SpillConfig) error {
	r := p.root()
	if r.spill.Load() != nil {
		return fmt.Errorf("storage: spill tier already enabled")
	}
	if cfg.Dir == "" {
		return fmt.Errorf("storage: spill tier needs a directory")
	}
	if cfg.MaxExtentBytes <= 0 {
		cfg.MaxExtentBytes = 8 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("storage: spill dir: %w", err)
	}
	dir, err := os.MkdirTemp(cfg.Dir, "uot-spill-")
	if err != nil {
		return fmt.Errorf("storage: spill dir: %w", err)
	}
	t := &spillTier{
		root:    r,
		cfg:     cfg,
		dir:     dir,
		entries: make(map[*Block]*spillEntry),
		lru:     list.New(),
		extents: make(map[*extent]struct{}),
	}
	r.spill.Store(t)
	return nil
}

// SpillDir returns the per-run spill directory, or "" when no tier is
// attached (tests use it to assert the directory is gone after CloseSpill).
func (p *Pool) SpillDir() string {
	if t := p.root().spill.Load(); t != nil {
		return t.dir
	}
	return ""
}

// CloseSpill detaches and shuts down the spill tier: every extent file is
// closed and the per-run directory removed, orphaned spill files included.
// Safe to call without a tier (no-op) and after a failed run.
func (p *Pool) CloseSpill() error {
	t := p.root().spill.Swap(nil)
	if t == nil {
		return nil
	}
	return t.close()
}

// SpillCounters snapshots the tier's counters (zero value without a tier).
func (p *Pool) SpillCounters() SpillCounters {
	t := p.root().spill.Load()
	if t == nil {
		return SpillCounters{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.c
	c.Outstanding = len(t.entries)
	return c
}

// Cool registers a sealed block parked in an edge buffer as an eviction
// candidate owned by this view, then rebalances, returning the blocks and
// encoded bytes this call evicted (so the scheduler can trace-mark its own
// eviction rounds; worker-side CheckOut rebalances stay tier-counted only).
// No-op without a tier.
func (p *Pool) Cool(b *Block) (evictedBlocks int, evictedBytes int64) {
	t := p.root().spill.Load()
	if t == nil {
		return 0, 0
	}
	t.cool(p, b)
	return t.balance()
}

// Pin marks b about to be handed to a consumer: it becomes ineligible for
// eviction and, if currently spilled, is faulted back in before Pin returns.
// A block the tier does not track (result blocks, spill disabled) is a
// no-op. The error is the read fault that persisted past the retry bound;
// the caller must then abandon the delivery.
func (p *Pool) Pin(b *Block) (PinResult, error) {
	t := p.root().spill.Load()
	if t == nil {
		return PinResult{}, nil
	}
	return t.pin(b)
}

// Forget drops the tier's tracking of b without touching gauges: ownership
// is moving outside the pool (adopted result blocks). The caller must have
// pinned b first so its contents are resident.
func (p *Pool) Forget(b *Block) {
	if t := p.root().spill.Load(); t != nil {
		t.drop(b)
	}
}

func (t *spillTier) cool(view *Pool, b *Block) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if _, ok := t.entries[b]; ok {
		return // already tracked (block re-emitted after a rollback)
	}
	ent := &spillEntry{view: view, alloc: int64(b.AllocBytes())}
	ent.elem = t.lru.PushBack(b)
	t.entries[b] = ent
}

// balance evicts coldest-first while the root gauge is above the threshold,
// returning how many blocks (and encoded bytes) this call moved to disk.
// It is called from the scheduler (Cool) and from worker-side CheckOuts, so
// evictions genuinely race pins — the mutex plus the pin/LRU exclusion carry
// the safety argument.
func (t *spillTier) balance() (blocks int, bytes int64) {
	for {
		g := t.root.gauge
		if g == nil || g.Live() <= t.cfg.Threshold {
			return blocks, bytes
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return blocks, bytes
		}
		front := t.lru.Front()
		if front == nil {
			t.mu.Unlock()
			return blocks, bytes // everything is pinned or spilled; pressure must wait
		}
		if t.cfg.WriteFault != nil {
			if err := safeFault(t.cfg.WriteFault); err != nil {
				t.c.WriteFaults++
				t.mu.Unlock()
				return blocks, bytes // demoted: block stays resident, retry on next trigger
			}
		}
		b := front.Value.(*Block)
		ent := t.entries[b]
		t.scratch = EncodeBlock(b, t.scratch)
		ext, off, err := t.writeLocked(t.scratch)
		if err != nil {
			t.c.WriteFaults++
			t.mu.Unlock()
			return blocks, bytes // real I/O failure: same demotion, data still in RAM
		}
		t.lru.Remove(front)
		ent.elem = nil
		ent.spilled = true
		ent.ext, ent.off, ent.len = ext, off, len(t.scratch)
		b.dropData()
		t.c.BlocksOut++
		t.c.BytesOut += int64(ent.len)
		t.c.DiskLive += int64(ent.len)
		if t.c.DiskLive > t.c.DiskPeak {
			t.c.DiskPeak = t.c.DiskLive
		}
		blocks++
		bytes += int64(ent.len)
		view, alloc := ent.view, ent.alloc
		t.mu.Unlock()
		view.subLive(alloc)
	}
}

// writeLocked appends data to the current extent, rotating first if it would
// grow past the cap. Called with t.mu held.
func (t *spillTier) writeLocked(data []byte) (*extent, int64, error) {
	if t.cur == nil || (t.cur.size > 0 && t.cur.size+int64(len(data)) > t.cfg.MaxExtentBytes) {
		path := filepath.Join(t.dir, fmt.Sprintf("ext-%06d.spill", t.extSeq))
		t.extSeq++
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
		if err != nil {
			return nil, 0, err
		}
		t.cur = &extent{f: f, path: path}
		t.extents[t.cur] = struct{}{}
	}
	off := t.cur.size
	if _, err := t.cur.f.WriteAt(data, off); err != nil {
		return nil, 0, err
	}
	t.cur.size += int64(len(data))
	t.cur.live++
	return t.cur, off, nil
}

func (t *spillTier) pin(b *Block) (PinResult, error) {
	start := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	ent := t.entries[b]
	if ent == nil {
		return PinResult{}, nil
	}
	if ent.spilled && ent.pins > 0 {
		t.c.BadEvicts++ // eviction raced a live pin — must never happen
	}
	ent.pins++
	if ent.elem != nil {
		t.lru.Remove(ent.elem)
		ent.elem = nil
	}
	if !ent.spilled {
		return PinResult{}, nil
	}

	buf := make([]byte, ent.len)
	var lastErr error
	for attempt := 0; attempt < spillReadRetries; attempt++ {
		if t.cfg.ReadFault != nil {
			if err := safeFault(t.cfg.ReadFault); err != nil {
				t.c.ReadFaults++
				lastErr = err
				continue // stall-and-retry
			}
		}
		if _, err := ent.ext.f.ReadAt(buf, ent.off); err != nil {
			t.c.ReadFaults++
			lastErr = err
			continue
		}
		if err := decodeInto(b, buf); err != nil {
			t.c.ReadFaults++
			lastErr = err
			continue
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		ent.pins-- // delivery will be abandoned; leave the record on disk
		return PinResult{}, fmt.Errorf("storage: spill fault-in failed after %d attempts: %w", spillReadRetries, lastErr)
	}
	// Delivered blocks are never re-cooled, so the disk record is dead the
	// moment fault-in succeeds: reclaim it now to bound the high-water mark.
	t.freeRecordLocked(ent)
	ent.spilled = false
	ent.ext, ent.off, ent.len = nil, 0, 0
	stall := time.Since(start).Nanoseconds()
	t.c.BlocksIn++
	t.c.BytesIn += int64(len(buf))
	t.c.FaultStallNS += stall
	ent.view.addLive(ent.alloc)
	return PinResult{FaultedIn: true, Bytes: int64(len(buf)), StallNS: stall}, nil
}

// freeRecordLocked releases ent's disk record, unlinking the extent file
// when its last live record goes. Called with t.mu held.
func (t *spillTier) freeRecordLocked(ent *spillEntry) {
	ext := ent.ext
	t.c.DiskLive -= int64(ent.len)
	ext.live--
	if ext.live == 0 && ext != t.cur {
		ext.f.Close()
		os.Remove(ext.path)
		delete(t.extents, ext)
	}
}

// drop removes b from the tier. It reports whether the block's bytes are on
// disk (so Release skips the gauge and the freelist: the RAM side was
// already uncredited at eviction and there is no allocation to recycle) and
// whether the tier tracked the block at all.
func (t *spillTier) drop(b *Block) (wasSpilled bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ent := t.entries[b]
	if ent == nil {
		return false
	}
	delete(t.entries, b)
	if ent.elem != nil {
		t.lru.Remove(ent.elem)
	}
	if ent.spilled {
		t.freeRecordLocked(ent)
		return true
	}
	return false
}

func (t *spillTier) close() error {
	t.mu.Lock()
	t.closed = true
	for ext := range t.extents {
		ext.f.Close()
	}
	t.extents = make(map[*extent]struct{})
	t.cur = nil
	t.entries = make(map[*Block]*spillEntry)
	t.lru.Init()
	dir := t.dir
	t.mu.Unlock()
	return os.RemoveAll(dir)
}

// safeFault runs a fault hook, converting a panic (the injector's KindPanic)
// into an error so spill I/O demotes to stall-and-retry instead of crashing
// the run mid-spill.
func safeFault(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("storage: spill fault hook panicked: %v", r)
		}
	}()
	return f()
}
