package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/stats"
)

// newSpillPool builds a root pool with a gauge and a spill tier rooted in a
// test temp dir.
func newSpillPool(t *testing.T, cfg SpillConfig) (*Pool, *stats.MemGauge) {
	t.Helper()
	var g stats.MemGauge
	p := NewPool(&g, nil)
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if err := p.EnableSpill(cfg); err != nil {
		t.Fatalf("EnableSpill: %v", err)
	}
	t.Cleanup(func() { p.CloseSpill() })
	return p, &g
}

func spillFiles(t *testing.T, p *Pool) int {
	t.Helper()
	ents, err := os.ReadDir(p.SpillDir())
	if err != nil {
		t.Fatalf("read spill dir: %v", err)
	}
	return len(ents)
}

func TestSpillEvictAndFaultIn(t *testing.T) {
	p, g := newSpillPool(t, SpillConfig{Threshold: 0}) // any live byte is pressure
	schema := codecTestSchema()

	var blocks []*Block
	var wants []*Block
	for i := 0; i < 3; i++ {
		b := p.CheckOut(i, schema, ColumnStore, 1<<10)
		fillTestBlock(b, 5+i)
		w := NewBlock(schema, ColumnStore, 1<<10)
		fillTestBlock(w, 5+i)
		blocks, wants = append(blocks, b), append(wants, w)
	}
	if g.Live() == 0 {
		t.Fatal("no live bytes after checkouts")
	}
	for _, b := range blocks {
		p.Cool(b)
	}
	c := p.SpillCounters()
	if c.BlocksOut != 3 || c.DiskLive == 0 {
		t.Fatalf("after cooling: %+v", c)
	}
	if g.Live() != 0 {
		t.Fatalf("%d live bytes left after full eviction", g.Live())
	}
	for i, b := range blocks {
		if b.data != nil {
			t.Fatalf("block %d still resident after eviction", i)
		}
		if _, err := p.Pin(b); err != nil {
			t.Fatalf("pin %d: %v", i, err)
		}
		sameRows(t, wants[i], b)
	}
	c = p.SpillCounters()
	if c.BlocksIn != 3 || c.DiskLive != 0 || c.BadEvicts != 0 {
		t.Fatalf("after fault-in: %+v", c)
	}
	if c.DiskPeak == 0 || c.FaultStallNS == 0 {
		t.Fatalf("peak/stall not recorded: %+v", c)
	}
	if g.Live() == 0 {
		t.Fatal("gauge not re-credited by fault-in")
	}
	for _, b := range blocks {
		p.Release(b)
	}
	c = p.SpillCounters()
	if c.Outstanding != 0 || g.Live() != 0 {
		t.Fatalf("after release: outstanding %d, live %d", c.Outstanding, g.Live())
	}
}

func TestSpillPinnedNeverEvicted(t *testing.T) {
	p, _ := newSpillPool(t, SpillConfig{Threshold: 0})
	schema := codecTestSchema()

	hot := p.CheckOut(0, schema, RowStore, 1<<10)
	fillTestBlock(hot, 4)
	p.Cool(hot) // evicted immediately at threshold 0
	if _, err := p.Pin(hot); err != nil {
		t.Fatalf("pin: %v", err)
	}
	// More pressure: new cold blocks spill, the pinned block must not.
	for i := 1; i <= 3; i++ {
		b := p.CheckOut(i, schema, RowStore, 1<<10)
		fillTestBlock(b, 4)
		p.Cool(b)
	}
	if hot.data == nil {
		t.Fatal("pinned block lost its data")
	}
	c := p.SpillCounters()
	if c.BadEvicts != 0 {
		t.Fatalf("%d bad evicts", c.BadEvicts)
	}
	if c.BlocksOut != 4 { // hot once (before the pin) + the 3 cold ones
		t.Fatalf("BlocksOut = %d, want 4", c.BlocksOut)
	}
}

func TestSpillReleaseSpilledBlock(t *testing.T) {
	p, g := newSpillPool(t, SpillConfig{Threshold: 0})
	b := p.CheckOut(0, codecTestSchema(), ColumnStore, 1<<10)
	fillTestBlock(b, 5)
	p.Cool(b)
	if b.data != nil {
		t.Fatal("not evicted")
	}
	p.Release(b) // consumer never needed it (e.g. aborted run cleanup)
	c := p.SpillCounters()
	if c.Outstanding != 0 || c.DiskLive != 0 {
		t.Fatalf("after release of spilled block: %+v", c)
	}
	if g.Live() != 0 {
		t.Fatalf("gauge at %d after release", g.Live())
	}
	// The dead allocation must not have been recycled.
	n := p.CheckOut(1, codecTestSchema(), ColumnStore, 1<<10)
	if n == b {
		t.Fatal("spilled block resurrected from the freelist")
	}
}

func TestSpillWriteFaultDemotes(t *testing.T) {
	fails := 2
	cfg := SpillConfig{Threshold: 0}
	cfg.WriteFault = func() error {
		if fails > 0 {
			fails--
			return errors.New("injected write fault")
		}
		return nil
	}
	p, g := newSpillPool(t, cfg)
	b := p.CheckOut(0, codecTestSchema(), RowStore, 1<<10)
	fillTestBlock(b, 4)

	p.Cool(b) // first balance: write fault → block stays resident
	if b.data == nil {
		t.Fatal("evicted through a write fault")
	}
	if c := p.SpillCounters(); c.WriteFaults != 1 || c.BlocksOut != 0 {
		t.Fatalf("after faulted eviction: %+v", c)
	}
	// Next pressure event retries: one more fault, then success.
	b2 := p.CheckOut(1, codecTestSchema(), RowStore, 1<<10)
	_ = b2 // checkout over threshold triggers balance (fault #2)
	b3 := p.CheckOut(2, codecTestSchema(), RowStore, 1<<10)
	_ = b3 // triggers balance again: the cooled block finally spills
	if b.data != nil {
		t.Fatal("stall-and-retry never evicted the block")
	}
	if c := p.SpillCounters(); c.WriteFaults != 2 || c.BlocksOut != 1 {
		t.Fatalf("after retried eviction: %+v", c)
	}
	if _, err := p.Pin(b); err != nil {
		t.Fatalf("pin after retried eviction: %v", err)
	}
	if g.Live() == 0 {
		t.Fatal("gauge empty after fault-in")
	}
}

func TestSpillReadFaultRetriesThenFails(t *testing.T) {
	var fails int
	cfg := SpillConfig{Threshold: 0}
	cfg.ReadFault = func() error {
		if fails > 0 {
			fails--
			return errors.New("injected read fault")
		}
		return nil
	}
	p, _ := newSpillPool(t, cfg)
	schema := codecTestSchema()

	b := p.CheckOut(0, schema, ColumnStore, 1<<10)
	fillTestBlock(b, 6)
	want := NewBlock(schema, ColumnStore, 1<<10)
	fillTestBlock(want, 6)
	p.Cool(b)

	fails = 3 // transient: retries absorb it
	if _, err := p.Pin(b); err != nil {
		t.Fatalf("pin with transient read faults: %v", err)
	}
	sameRows(t, want, b)
	if c := p.SpillCounters(); c.ReadFaults != 3 {
		t.Fatalf("ReadFaults = %d, want 3", c.ReadFaults)
	}

	// Persistent: a second spilled block whose reads never succeed.
	b2 := p.CheckOut(1, schema, ColumnStore, 1<<10)
	fillTestBlock(b2, 6)
	p.Release(b) // make room predictable
	p.Cool(b2)
	if b2.data != nil {
		t.Fatal("b2 not evicted")
	}
	fails = 1 << 30
	_, err := p.Pin(b2)
	if err == nil {
		t.Fatal("pin succeeded under persistent read faults")
	}
	fails = 0
	if _, err := p.Pin(b2); err != nil {
		t.Fatalf("pin after faults cleared: %v", err)
	}
}

func TestSpillPanicHookDemotes(t *testing.T) {
	cfg := SpillConfig{Threshold: 0}
	armed := true
	cfg.WriteFault = func() error {
		if armed {
			armed = false
			panic("injected panic at spill_write")
		}
		return nil
	}
	p, _ := newSpillPool(t, cfg)
	b := p.CheckOut(0, codecTestSchema(), RowStore, 1<<10)
	fillTestBlock(b, 4)
	p.Cool(b) // panic is recovered inside the tier
	if b.data == nil {
		t.Fatal("evicted through a panicking hook")
	}
	if c := p.SpillCounters(); c.WriteFaults != 1 {
		t.Fatalf("panic not demoted to a write fault: %+v", c)
	}
	p.CheckOut(1, codecTestSchema(), RowStore, 1<<10) // retry trigger
	if b.data != nil {
		t.Fatal("block never spilled after the panic was absorbed")
	}
}

func TestSpillExtentRotationAndReclaim(t *testing.T) {
	// Extents big enough for one block only: every eviction rotates.
	p, _ := newSpillPool(t, SpillConfig{Threshold: 0, MaxExtentBytes: 1})
	schema := codecTestSchema()
	var blocks []*Block
	for i := 0; i < 4; i++ {
		b := p.CheckOut(i, schema, RowStore, 1<<10)
		fillTestBlock(b, 3)
		p.Cool(b)
		blocks = append(blocks, b)
	}
	if n := spillFiles(t, p); n != 4 {
		t.Fatalf("%d extent files, want 4", n)
	}
	// Fault-in reclaims each extent as its only record dies (the newest
	// extent stays: it is still the open write head).
	for _, b := range blocks {
		if _, err := p.Pin(b); err != nil {
			t.Fatal(err)
		}
	}
	if n := spillFiles(t, p); n != 1 {
		t.Fatalf("%d extent files after reclaim, want 1 (write head)", n)
	}
	if c := p.SpillCounters(); c.DiskLive != 0 {
		t.Fatalf("DiskLive = %d after reclaim", c.DiskLive)
	}
}

func TestSpillCloseRemovesDirWithOrphans(t *testing.T) {
	var g stats.MemGauge
	p := NewPool(&g, nil)
	if err := p.EnableSpill(SpillConfig{Dir: t.TempDir(), Threshold: 0}); err != nil {
		t.Fatal(err)
	}
	b := p.CheckOut(0, codecTestSchema(), RowStore, 1<<10)
	fillTestBlock(b, 4)
	p.Cool(b)
	dir := p.SpillDir()
	if dir == "" {
		t.Fatal("no spill dir")
	}
	// Simulate an aborted run: the spilled block is never pinned or
	// released. CloseSpill must still take the whole directory with it.
	if err := p.CloseSpill(); err != nil {
		t.Fatalf("CloseSpill: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir still exists: %v", err)
	}
	if p.SpillDir() != "" {
		t.Fatal("tier still attached after CloseSpill")
	}
	if err := p.CloseSpill(); err != nil {
		t.Fatalf("second CloseSpill not a no-op: %v", err)
	}
}

// TestSpillConcurrentPinEvict races worker-side eviction triggers (CheckOut
// over threshold) against pins and releases from other goroutines; run under
// -race it is the storage-level half of the concurrent-eviction story. The
// pin/unpin invariant (BadEvicts == 0), zero outstanding entries, and an
// empty spill dir must all hold at drain.
func TestSpillConcurrentPinEvict(t *testing.T) {
	// Threshold 0: every cooled block spills, so every pin is a fault-in
	// racing the other workers' balance triggers.
	p, g := newSpillPool(t, SpillConfig{Threshold: 0})
	schema := codecTestSchema()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := p.Subpool(nil, nil)
			for i := 0; i < 40; i++ {
				b := view.CheckOut(w*1000+i, schema, ColumnStore, 1<<10)
				fillTestBlock(b, 5)
				want := NewBlock(schema, ColumnStore, 1<<10)
				fillTestBlock(want, 5)
				view.Cool(b)
				if _, err := view.Pin(b); err != nil {
					errc <- fmt.Errorf("worker %d pin: %w", w, err)
					return
				}
				for r := 0; r < b.NumRows(); r++ {
					if b.Int64At(0, r) != want.Int64At(0, r) {
						errc <- fmt.Errorf("worker %d: row %d corrupted after fault-in", w, r)
						return
					}
				}
				view.Release(b)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	c := p.SpillCounters()
	if c.BadEvicts != 0 {
		t.Fatalf("%d evictions raced a pin", c.BadEvicts)
	}
	if c.Outstanding != 0 || c.DiskLive != 0 || g.Live() != 0 {
		t.Fatalf("leak at drain: %+v, live %d", c, g.Live())
	}
	if c.BlocksOut == 0 || c.BlocksIn == 0 {
		t.Fatalf("no concurrent spill traffic: %+v", c)
	}
}
