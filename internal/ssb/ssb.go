// Package ssb implements the Star Schema Benchmark [O'Neil et al., TPCTC
// 2009] substrate: a denormalized lineorder fact table with four small
// dimensions (date, customer, supplier, part) and representative queries
// from each of the benchmark's four flights. The paper invokes SSB in
// Section VI-B: its join hash tables are built on small dimensions, so the
// low-UoT strategy's "keep all hash tables live" overhead is tiny and
// pipelining wins the memory comparison — the opposite of the TPC-H Q7
// case. Package ssb exists to reproduce that contrast.
package ssb

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/types"
)

func i64(name string) storage.Column { return storage.Column{Name: name, Type: types.Int64} }
func f64(name string) storage.Column { return storage.Column{Name: name, Type: types.Float64} }
func char(name string, w int) storage.Column {
	return storage.Column{Name: name, Type: types.Char, Width: w}
}

// Schemas for the five SSB tables.
var (
	LineorderSchema = storage.NewSchema(
		i64("lo_orderkey"), i64("lo_linenumber"),
		i64("lo_custkey"), i64("lo_partkey"), i64("lo_suppkey"), i64("lo_orderdate"),
		f64("lo_quantity"), f64("lo_extendedprice"), f64("lo_discount"),
		f64("lo_revenue"), f64("lo_supplycost"),
	)
	DateSchema = storage.NewSchema(
		i64("d_datekey"), i64("d_year"), i64("d_yearmonthnum"), i64("d_weeknuminyear"),
	)
	CustomerSchema = storage.NewSchema(
		i64("c_custkey"), char("c_name", 18), char("c_city", 10),
		char("c_nation", 15), char("c_region", 12), char("c_mktsegment", 10),
	)
	SupplierSchema = storage.NewSchema(
		i64("s_suppkey"), char("s_name", 18), char("s_city", 10),
		char("s_nation", 15), char("s_region", 12),
	)
	PartSchema = storage.NewSchema(
		i64("p_partkey"), char("p_name", 22), char("p_mfgr", 6),
		char("p_category", 7), char("p_brand1", 9), char("p_color", 11),
	)
)

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

var colors = []string{
	"almond", "azure", "beige", "black", "blue", "brown", "coral", "cream",
	"cyan", "forest", "green", "grey", "indigo", "ivory", "khaki", "lace",
}

// Dataset is a loaded SSB database.
type Dataset struct {
	SF float64
	DB *engine.DB

	Lineorder, Date, Customer, Supplier, Part *storage.Table
}

// Cardinality ratios per unit scale factor (SSB specification).
const (
	lineordersPerSF = 6_000_000
	customersPerSF  = 30_000
	suppliersPerSF  = 2_000
	partsBase       = 200_000 // SSB: 200k * (1 + log2 SF); we scale linearly, min 1000
)

type rng struct{ s uint64 }

func newRNG(parts ...uint64) *rng {
	s := uint64(0x51ab)
	for _, p := range parts {
		s = types.Mix64(s ^ p)
	}
	return &rng{s: s}
}

func (r *rng) u64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return types.Mix64(r.s)
}

func (r *rng) intn(n int) int          { return int(r.u64() % uint64(n)) }
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }
func (r *rng) pick(list []string) string {
	return list[r.intn(len(list))]
}

func scale(sf float64, base, min int) int {
	n := int(sf * float64(base))
	if n < min {
		n = min
	}
	return n
}

// Load generates the five SSB tables at scale factor sf.
func Load(sf float64, blockBytes int, format storage.Format) *Dataset {
	db := engine.NewDB(blockBytes, format)
	d := &Dataset{SF: sf, DB: db}
	d.genDate()
	d.genCustomer()
	d.genSupplier()
	d.genPart()
	d.genLineorder()
	return d
}

func (d *Dataset) numCustomers() int { return scale(d.SF, customersPerSF, 100) }
func (d *Dataset) numSuppliers() int { return scale(d.SF, suppliersPerSF, 20) }
func (d *Dataset) numParts() int     { return scale(d.SF, partsBase, 1000) }
func (d *Dataset) numLineorders() int {
	return scale(d.SF, lineordersPerSF, 1000)
}

// dateKeys spans 1992-01-01 .. 1998-12-31 as yyyymmdd integers.
func (d *Dataset) genDate() {
	d.Date = d.DB.CreateTable("date", DateSchema)
	l := storage.NewLoader(d.Date)
	start := types.ToDays(1992, 1, 1)
	end := types.ToDays(1998, 12, 31)
	week := 1
	for day := start; day <= end; day++ {
		y, m, dd := types.FromDays(day)
		key := int64(y*10000 + m*100 + dd)
		l.Append(
			types.NewInt64(key),
			types.NewInt64(int64(y)),
			types.NewInt64(int64(y*100+m)),
			types.NewInt64(int64(week)),
		)
		if (day-start)%7 == 6 {
			week++
			if week > 53 {
				week = 1
			}
		}
	}
	l.Close()
}

func cityOf(nation string, r *rng) string {
	if len(nation) > 9 {
		nation = nation[:9]
	}
	return fmt.Sprintf("%s%d", nation, r.intn(10))
}

func (d *Dataset) genCustomer() {
	d.Customer = d.DB.CreateTable("customer", CustomerSchema)
	l := storage.NewLoader(d.Customer)
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	for k := 1; k <= d.numCustomers(); k++ {
		r := newRNG(1, uint64(k))
		region := regions[r.intn(len(regions))]
		nation := r.pick(nationsByRegion[region])
		l.Append(
			types.NewInt64(int64(k)),
			types.NewString(fmt.Sprintf("Customer#%09d", k)),
			types.NewString(cityOf(nation, r)),
			types.NewString(nation),
			types.NewString(region),
			types.NewString(r.pick(segments)),
		)
	}
	l.Close()
}

func (d *Dataset) genSupplier() {
	d.Supplier = d.DB.CreateTable("supplier", SupplierSchema)
	l := storage.NewLoader(d.Supplier)
	for k := 1; k <= d.numSuppliers(); k++ {
		r := newRNG(2, uint64(k))
		region := regions[r.intn(len(regions))]
		nation := r.pick(nationsByRegion[region])
		l.Append(
			types.NewInt64(int64(k)),
			types.NewString(fmt.Sprintf("Supplier#%09d", k)),
			types.NewString(cityOf(nation, r)),
			types.NewString(nation),
			types.NewString(region),
		)
	}
	l.Close()
}

func (d *Dataset) genPart() {
	d.Part = d.DB.CreateTable("part", PartSchema)
	l := storage.NewLoader(d.Part)
	for k := 1; k <= d.numParts(); k++ {
		r := newRNG(3, uint64(k))
		mfgr := r.rangeInt(1, 5)
		cat := r.rangeInt(1, 5)
		brand := r.rangeInt(1, 40)
		l.Append(
			types.NewInt64(int64(k)),
			types.NewString(r.pick(colors)+" "+r.pick(colors)),
			types.NewString(fmt.Sprintf("MFGR#%d", mfgr)),
			types.NewString(fmt.Sprintf("MFGR#%d%d", mfgr, cat)),
			types.NewString(fmt.Sprintf("MFGR#%d%d%02d", mfgr, cat, brand)),
			types.NewString(r.pick(colors)),
		)
	}
	l.Close()
}

func (d *Dataset) genLineorder() {
	d.Lineorder = d.DB.CreateTable("lineorder", LineorderSchema)
	l := storage.NewLoader(d.Lineorder)
	start := types.ToDays(1992, 1, 1)
	span := int(types.ToDays(1998, 12, 31) - start)
	nc, ns, np := d.numCustomers(), d.numSuppliers(), d.numParts()
	for k := 1; k <= d.numLineorders(); k++ {
		r := newRNG(4, uint64(k))
		day := start + int32(r.intn(span+1))
		y, m, dd := types.FromDays(day)
		qty := float64(r.rangeInt(1, 50))
		price := float64(r.rangeInt(90, 105)) * qty
		disc := float64(r.rangeInt(0, 10))
		l.Append(
			types.NewInt64(int64(k/4+1)),
			types.NewInt64(int64(k%7+1)),
			types.NewInt64(int64(r.rangeInt(1, nc))),
			types.NewInt64(int64(r.rangeInt(1, np))),
			types.NewInt64(int64(r.rangeInt(1, ns))),
			types.NewInt64(int64(y*10000+m*100+dd)),
			types.NewFloat64(qty),
			types.NewFloat64(price),
			types.NewFloat64(disc),
			types.NewFloat64(price*(100-disc)/100),
			types.NewFloat64(price*0.6),
		)
	}
	l.Close()
}
