package ssb

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Flights returns the implemented SSB query names.
func Flights() []string {
	out := make([]string, 0, len(queryRegistry))
	for n := range queryRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type buildFunc func(d *Dataset) *engine.Builder

var queryRegistry = map[string]buildFunc{
	"q1.1": q11,
	"q2.1": q21,
	"q3.1": q31,
	"q4.1": q41,
}

// Build constructs the physical plan for the named SSB query.
func Build(d *Dataset, name string) (*engine.Builder, error) {
	f, ok := queryRegistry[name]
	if !ok {
		return nil, fmt.Errorf("ssb: query %q not implemented (have %v)", name, Flights())
	}
	return f(d), nil
}

func proj(s *storage.Schema, names ...string) ([]expr.Expr, []string) {
	es := make([]expr.Expr, len(names))
	for i, n := range names {
		es[i] = expr.C(s, n)
	}
	return es, names
}

func scan(b *engine.Builder, t *storage.Table, pred expr.Expr, cols ...string) *engine.Node {
	es, names := proj(t.Schema(), cols...)
	return b.ScanSelect(exec.SelectSpec{
		Name: "select(" + t.Name() + ")", Base: t, Pred: pred, Proj: es, ProjNames: names,
	})
}

func idx(n *engine.Node, names ...string) []int {
	out := make([]int, len(names))
	for i, name := range names {
		out[i] = n.Schema.MustColIndex(name)
	}
	return out
}

// q11 is SSB Q1.1: revenue change from eliminating discounts in one year.
func q11(d *Dataset) *engine.Builder {
	b := engine.NewBuilder()
	ds := d.Date.Schema()
	selDate := scan(b, d.Date, expr.Eq(expr.C(ds, "d_year"), expr.Int(1993)), "d_datekey")
	buildD, _ := b.Build(selDate, exec.BuildSpec{
		Name: "build(date)", KeyCols: idx(selDate, "d_datekey"), ExpectedRows: 366,
	})

	ls := d.Lineorder.Schema()
	selLO := scan(b, d.Lineorder,
		expr.And(
			expr.Between(expr.C(ls, "lo_discount"), expr.Float(1), expr.Float(3)),
			expr.Lt(expr.C(ls, "lo_quantity"), expr.Float(25)),
		),
		"lo_orderdate", "lo_extendedprice", "lo_discount")
	probe := b.Probe(selLO, buildD, exec.ProbeSpec{
		Name: "probe(date)", KeyCols: idx(selLO, "lo_orderdate"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selLO, "lo_extendedprice", "lo_discount"),
	})
	agg := b.Agg(probe, exec.AggOpSpec{
		Name: "agg(q1.1)",
		Aggs: []exec.AggSpec{{
			Func: exec.Sum, Name: "revenue",
			Arg: expr.MulE(expr.C(probe.Schema, "lo_extendedprice"),
				expr.DivE(expr.C(probe.Schema, "lo_discount"), expr.Float(100))),
		}},
	})
	b.Collect(agg)
	return b
}

// q21 is SSB Q2.1: revenue by year and brand for one part category and one
// supplier region.
func q21(d *Dataset) *engine.Builder {
	b := engine.NewBuilder()

	ps := d.Part.Schema()
	selPart := scan(b, d.Part,
		expr.Eq(expr.C(ps, "p_category"), expr.Str("MFGR#12")), "p_partkey", "p_brand1")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		Payload: idx(selPart, "p_brand1"), ExpectedRows: d.numParts() / 25,
	})
	ss := d.Supplier.Schema()
	selSupp := scan(b, d.Supplier,
		expr.Eq(expr.C(ss, "s_region"), expr.Str("AMERICA")), "s_suppkey")
	buildS, _ := b.Build(selSupp, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(selSupp, "s_suppkey"),
		ExpectedRows: d.numSuppliers() / 5,
	})
	selDate := scan(b, d.Date, nil, "d_datekey", "d_year")
	buildD, _ := b.Build(selDate, exec.BuildSpec{
		Name: "build(date)", KeyCols: idx(selDate, "d_datekey"),
		Payload: idx(selDate, "d_year"), ExpectedRows: 2600,
	})

	ls := d.Lineorder.Schema()
	selLO := scan(b, d.Lineorder, nil, "lo_partkey", "lo_suppkey", "lo_orderdate", "lo_revenue")
	_ = ls
	onPart := b.Probe(selLO, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLO, "lo_partkey"),
		ProbeProj: idx(selLO, "lo_suppkey", "lo_orderdate", "lo_revenue"), BuildProj: []int{0},
	})
	onSupp := b.Probe(onPart, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(onPart, "lo_suppkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(onPart, "lo_orderdate", "lo_revenue", "p_brand1"),
	})
	onDate := b.Probe(onSupp, buildD, exec.ProbeSpec{
		Name: "probe(date)", KeyCols: idx(onSupp, "lo_orderdate"),
		ProbeProj: idx(onSupp, "lo_revenue", "p_brand1"), BuildProj: []int{0},
	})

	agg := b.Agg(onDate, exec.AggOpSpec{
		Name: "agg(q2.1)",
		GroupBy: []expr.Expr{
			expr.C(onDate.Schema, "d_year"), expr.C(onDate.Schema, "p_brand1"),
		},
		GroupByNames: []string{"d_year", "p_brand1"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: expr.C(onDate.Schema, "lo_revenue"), Name: "revenue"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q2.1)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "d_year")}, {Key: expr.C(agg.Schema, "p_brand1")},
	}})
	b.Collect(srt)
	return b
}

// q31 is SSB Q3.1: revenue flows between Asian customer and supplier
// nations.
func q31(d *Dataset) *engine.Builder {
	b := engine.NewBuilder()

	cs := d.Customer.Schema()
	selCust := scan(b, d.Customer,
		expr.Eq(expr.C(cs, "c_region"), expr.Str("ASIA")), "c_custkey", "c_nation")
	buildC, _ := b.Build(selCust, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(selCust, "c_custkey"),
		Payload: idx(selCust, "c_nation"), ExpectedRows: d.numCustomers() / 5,
	})
	ss := d.Supplier.Schema()
	selSupp := scan(b, d.Supplier,
		expr.Eq(expr.C(ss, "s_region"), expr.Str("ASIA")), "s_suppkey", "s_nation")
	buildS, _ := b.Build(selSupp, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(selSupp, "s_suppkey"),
		Payload: idx(selSupp, "s_nation"), ExpectedRows: d.numSuppliers() / 5,
	})
	dsch := d.Date.Schema()
	selDate := scan(b, d.Date,
		expr.Between(expr.C(dsch, "d_year"), expr.Int(1992), expr.Int(1997)),
		"d_datekey", "d_year")
	buildD, _ := b.Build(selDate, exec.BuildSpec{
		Name: "build(date)", KeyCols: idx(selDate, "d_datekey"),
		Payload: idx(selDate, "d_year"), ExpectedRows: 2300,
	})

	selLO := scan(b, d.Lineorder, nil, "lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue")
	onCust := b.Probe(selLO, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(selLO, "lo_custkey"),
		ProbeProj: idx(selLO, "lo_suppkey", "lo_orderdate", "lo_revenue"), BuildProj: []int{0},
	})
	onSupp := b.Probe(onCust, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(onCust, "lo_suppkey"),
		ProbeProj: idx(onCust, "lo_orderdate", "lo_revenue", "c_nation"), BuildProj: []int{0},
	})
	onDate := b.Probe(onSupp, buildD, exec.ProbeSpec{
		Name: "probe(date)", KeyCols: idx(onSupp, "lo_orderdate"),
		ProbeProj: idx(onSupp, "lo_revenue", "c_nation", "s_nation"), BuildProj: []int{0},
	})

	agg := b.Agg(onDate, exec.AggOpSpec{
		Name: "agg(q3.1)",
		GroupBy: []expr.Expr{
			expr.C(onDate.Schema, "c_nation"), expr.C(onDate.Schema, "s_nation"), expr.C(onDate.Schema, "d_year"),
		},
		GroupByNames: []string{"c_nation", "s_nation", "d_year"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: expr.C(onDate.Schema, "lo_revenue"), Name: "revenue"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q3.1)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "d_year")},
		{Key: expr.C(agg.Schema, "revenue"), Desc: true},
	}})
	b.Collect(srt)
	return b
}

// q41 is SSB Q4.1: profit by year and customer nation across American
// customers and suppliers.
func q41(d *Dataset) *engine.Builder {
	b := engine.NewBuilder()

	cs := d.Customer.Schema()
	selCust := scan(b, d.Customer,
		expr.Eq(expr.C(cs, "c_region"), expr.Str("AMERICA")), "c_custkey", "c_nation")
	buildC, _ := b.Build(selCust, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(selCust, "c_custkey"),
		Payload: idx(selCust, "c_nation"), ExpectedRows: d.numCustomers() / 5,
	})
	ss := d.Supplier.Schema()
	selSupp := scan(b, d.Supplier,
		expr.Eq(expr.C(ss, "s_region"), expr.Str("AMERICA")), "s_suppkey")
	buildS, _ := b.Build(selSupp, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(selSupp, "s_suppkey"),
		ExpectedRows: d.numSuppliers() / 5,
	})
	ps := d.Part.Schema()
	selPart := scan(b, d.Part,
		expr.InStrings(expr.C(ps, "p_mfgr"), "MFGR#1", "MFGR#2"), "p_partkey")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		ExpectedRows: d.numParts() * 2 / 5,
	})
	selDate := scan(b, d.Date, nil, "d_datekey", "d_year")
	buildD, _ := b.Build(selDate, exec.BuildSpec{
		Name: "build(date)", KeyCols: idx(selDate, "d_datekey"),
		Payload: idx(selDate, "d_year"), ExpectedRows: 2600,
	})

	selLO := scan(b, d.Lineorder, nil,
		"lo_custkey", "lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost")
	onSupp := b.Probe(selLO, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(selLO, "lo_suppkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selLO, "lo_custkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost"),
	})
	onPart := b.Probe(onSupp, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(onSupp, "lo_partkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(onSupp, "lo_custkey", "lo_orderdate", "lo_revenue", "lo_supplycost"),
	})
	onCust := b.Probe(onPart, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(onPart, "lo_custkey"),
		ProbeProj: idx(onPart, "lo_orderdate", "lo_revenue", "lo_supplycost"), BuildProj: []int{0},
	})
	onDate := b.Probe(onCust, buildD, exec.ProbeSpec{
		Name: "probe(date)", KeyCols: idx(onCust, "lo_orderdate"),
		ProbeProj: idx(onCust, "lo_revenue", "lo_supplycost", "c_nation"), BuildProj: []int{0},
	})

	agg := b.Agg(onDate, exec.AggOpSpec{
		Name: "agg(q4.1)",
		GroupBy: []expr.Expr{
			expr.C(onDate.Schema, "d_year"), expr.C(onDate.Schema, "c_nation"),
		},
		GroupByNames: []string{"d_year", "c_nation"},
		Aggs: []exec.AggSpec{{
			Func: exec.Sum, Name: "profit",
			Arg: expr.SubE(expr.C(onDate.Schema, "lo_revenue"), expr.C(onDate.Schema, "lo_supplycost")),
		}},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q4.1)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "d_year")}, {Key: expr.C(agg.Schema, "c_nation")},
	}})
	b.Collect(srt)
	return b
}
