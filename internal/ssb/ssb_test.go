package ssb

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/types"
)

const testSF = 0.01

func TestGeneratorShape(t *testing.T) {
	d := Load(testSF, 32<<10, storage.ColumnStore)
	if got := d.Date.NumRows(); got != 2557 { // 1992-01-01..1998-12-31
		t.Errorf("date rows = %d", got)
	}
	if d.Customer.NumRows() != int64(testSF*customersPerSF) {
		t.Errorf("customer rows = %d", d.Customer.NumRows())
	}
	if d.Supplier.NumRows() != int64(testSF*suppliersPerSF) {
		t.Errorf("supplier rows = %d", d.Supplier.NumRows())
	}
	if d.Lineorder.NumRows() != int64(testSF*lineordersPerSF) {
		t.Errorf("lineorder rows = %d", d.Lineorder.NumRows())
	}
	// Every lineorder orderdate must exist in the date dimension.
	dates := map[int64]bool{}
	ds := d.Date.Schema()
	for _, b := range d.Date.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			dates[b.Int64At(ds.MustColIndex("d_datekey"), r)] = true
		}
	}
	ls := d.Lineorder.Schema()
	iOD := ls.MustColIndex("lo_orderdate")
	for _, b := range d.Lineorder.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			if !dates[b.Int64At(iOD, r)] {
				t.Fatalf("orderdate %d not in dimension", b.Int64At(iOD, r))
			}
		}
	}
}

func TestQueriesInvariantAcrossUoT(t *testing.T) {
	d := Load(testSF, 32<<10, storage.ColumnStore)
	for _, name := range Flights() {
		base := run(t, d, name, 1)
		for _, uot := range []int{4, core.UoTTable} {
			got := run(t, d, name, uot)
			if len(base) != len(got) {
				t.Fatalf("%s uot=%d: %d vs %d rows", name, uot, len(base), len(got))
			}
			for i := range base {
				for c := range base[i] {
					x, y := base[i][c], got[i][c]
					if x.Ty == types.Float64 {
						if math.Abs(x.F-y.Float()) > 1e-6*(1+math.Abs(x.F)) {
							t.Fatalf("%s uot=%d row %d col %d: %v vs %v", name, uot, i, c, x, y)
						}
						continue
					}
					if !types.Equal(x, y) {
						t.Fatalf("%s uot=%d row %d col %d: %v vs %v", name, uot, i, c, x, y)
					}
				}
			}
		}
		if name != "q1.1" && len(base) == 0 {
			t.Errorf("%s returned no rows", name)
		}
	}
}

func run(t *testing.T, d *Dataset, name string, uot int) [][]types.Datum {
	t.Helper()
	b, err := Build(d, name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(b, engine.Options{Workers: 4, UoTBlocks: uot, TempBlockBytes: 16 << 10})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rows := engine.Rows(res.Table)
	engine.SortRows(rows)
	return rows
}

func TestQ11AgainstBruteForce(t *testing.T) {
	d := Load(testSF, 32<<10, storage.ColumnStore)
	ls := d.Lineorder.Schema()
	iOD, iExt, iDisc, iQty := ls.MustColIndex("lo_orderdate"), ls.MustColIndex("lo_extendedprice"),
		ls.MustColIndex("lo_discount"), ls.MustColIndex("lo_quantity")
	want := 0.0
	for _, b := range d.Lineorder.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			if b.Int64At(iOD, r)/10000 != 1993 {
				continue
			}
			disc := b.Float64At(iDisc, r)
			if disc >= 1 && disc <= 3 && b.Float64At(iQty, r) < 25 {
				want += b.Float64At(iExt, r) * disc / 100
			}
		}
	}
	rows := run(t, d, "q1.1", 1)
	if len(rows) != 1 {
		t.Fatalf("q1.1 rows = %d", len(rows))
	}
	if got := rows[0][0].F; math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("q1.1 = %v, want %v", got, want)
	}
}

// TestSmallHashTablesFootprint is the Section VI-B contrast this package
// exists for: on a star schema the join hash tables are built on small
// dimensions, so the low-UoT strategy (all hash tables live at once) has a
// SMALLER footprint than the high-UoT strategy's materialized intermediates
// — the opposite of TPC-H Q7.
func TestSmallHashTablesFootprint(t *testing.T) {
	d := Load(0.02, 32<<10, storage.ColumnStore)
	footprint := func(uot int) (hash, temp int64) {
		b, err := Build(d, "q3.1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(b, engine.Options{Workers: 1, UoTBlocks: uot, TempBlockBytes: 32 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Run.HashTables.High(), res.Run.Intermediates.High()
	}
	lowHash, lowTemp := footprint(1)
	highHash, highTemp := footprint(core.UoTTable)
	t.Logf("low UoT: hash=%d temp=%d | high UoT: hash=%d temp=%d", lowHash, lowTemp, highHash, highTemp)
	if lowTemp >= highTemp {
		t.Errorf("low-UoT temp footprint (%d) should undercut high UoT (%d) on SSB", lowTemp, highTemp)
	}
	// Dimension hash tables are small relative to the fact-table
	// intermediates the blocking strategy materializes.
	if lowHash >= highTemp*4 {
		t.Errorf("SSB dimension hash tables (%d) should be comparable to or below materialization (%d)", lowHash, highTemp)
	}
}

func TestUnknownSSBQuery(t *testing.T) {
	d := Load(0.005, 32<<10, storage.ColumnStore)
	if _, err := Build(d, "q9.9"); err == nil {
		t.Fatal("unknown query should error")
	}
	if got := fmt.Sprint(Flights()); got != "[q1.1 q2.1 q3.1 q4.1]" {
		t.Fatalf("flights = %s", got)
	}
}
