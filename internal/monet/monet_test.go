package monet

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

// TestMonetMatchesEngineOnTPCH: the baseline must return exactly the same
// rows as the engine for every implemented query.
func TestMonetMatchesEngineOnTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("query matrix in short mode")
	}
	d := tpch.Load(0.01, 64<<10, storage.ColumnStore)
	for _, num := range tpch.Numbers() {
		num := num
		t.Run(fmt.Sprintf("q%02d", num), func(t *testing.T) {
			t.Parallel()
			eb := tpch.MustBuild(d, num, tpch.QueryOpts{LIP: true})
			engRes, err := engine.Execute(eb, engine.Options{Workers: 4, UoTBlocks: 1, TempBlockBytes: 32 << 10})
			if err != nil {
				t.Fatal(err)
			}
			mb := tpch.MustBuild(d, num, tpch.QueryOpts{}) // no LIP for the baseline
			monRes, err := Execute(mb, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			a, b := engine.Rows(engRes.Table), engine.Rows(monRes.Table)
			engine.SortRows(a)
			engine.SortRows(b)
			if len(a) != len(b) {
				t.Fatalf("q%d: %d vs %d rows", num, len(a), len(b))
			}
			for i := range a {
				for c := range a[i] {
					x, y := a[i][c], b[i][c]
					if x.Ty == types.Float64 {
						tol := 1e-6 * (1 + math.Abs(x.F))
						if d := math.Abs(x.F - y.Float()); d > tol {
							t.Fatalf("q%d row %d col %d: %v vs %v", num, i, c, x, y)
						}
						continue
					}
					if !types.Equal(x, y) {
						t.Fatalf("q%d row %d col %d: %v vs %v", num, i, c, x, y)
					}
				}
			}
		})
	}
}

// TestMonetIsOperatorAtATime checks the defining property: no consumer work
// order starts before its producer finished.
func TestMonetIsOperatorAtATime(t *testing.T) {
	d := tpch.Load(0.005, 32<<10, storage.ColumnStore)
	b := tpch.MustBuild(d, 3, tpch.QueryOpts{})
	res, err := Execute(b, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// For the lineitem select feeding probe(orders): last select end must
	// precede first probe start.
	var lastSel, firstProbe int64
	for _, w := range res.Run.Orders() {
		switch w.OpName {
		case "select(lineitem)":
			if e := w.End.UnixNano(); e > lastSel {
				lastSel = e
			}
		case "probe(orders)":
			if s := w.Start.UnixNano(); firstProbe == 0 || s < firstProbe {
				firstProbe = s
			}
		}
	}
	if lastSel == 0 || firstProbe == 0 {
		t.Fatal("expected operators missing from stats")
	}
	if firstProbe < lastSel {
		t.Fatal("monet mode must not overlap producer and consumer")
	}
}
