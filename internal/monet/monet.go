// Package monet is the Fig. 11 comparator: a MonetDB-style
// operator-at-a-time execution mode. MonetDB [Idreos et al.] processes one
// operator at a time over fully materialized (column-oriented) intermediates
// and has no provision for UoT-style scheduling or sideways information
// passing. This baseline isolates exactly those properties inside the same
// codebase:
//
//   - every pipelined edge uses UoT = whole table, so a consumer starts only
//     after its producer fully materialized its output (operator-at-a-time);
//   - intermediates are column-store and allocated fresh per operator (BAT
//     materialization — no temp-block pool reuse);
//   - LIP bloom filters are disabled (MonetDB has no equivalent);
//   - all workers are available to each operator in turn (MonetDB's
//     intra-operator "mitosis" parallelization).
//
// The engine under test, by contrast, runs with its preferred configuration
// (configurable UoT, row-store temporaries, pooled blocks, LIP). Comparing
// the two reproduces the *shape* of the paper's Fig. 11: the block-scheduler
// engine wins most queries, mainly through LIP pruning and allocation reuse,
// while a few scan-dominated queries are close.
package monet

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

// Options selects the worker count and intermediate block size.
type Options struct {
	Workers int
	// TempBlockBytes is the materialization unit; MonetDB appends to large
	// contiguous BATs, so the default is 2 MB.
	TempBlockBytes int
}

// Execute runs a built plan in operator-at-a-time mode.
func Execute(b *engine.Builder, o Options) (*engine.Result, error) {
	if o.TempBlockBytes <= 0 {
		o.TempBlockBytes = 2 << 20
	}
	return engine.Execute(b, engine.Options{
		Workers:        o.Workers,
		UoTBlocks:      core.UoTTable,
		TempBlockBytes: o.TempBlockBytes,
		TempFormat:     storage.ColumnStore,
		NoPoolRecycle:  true,
	})
}
