// Package aggtable implements the fixed-width aggregation hash table behind
// the vectorized group-by path: an open-addressing table keyed by one or two
// 64-bit integers (int64 and date group keys, the common case across the
// TPC-H/SSB plans), with groups stored densely so accumulation, merging, and
// result emission run tight columnar loops instead of per-row map lookups
// with string keys.
//
// The table is deliberately not internally synchronized. Aggregation work
// orders each own a thread-local partial table; the operator's Final fans
// out one merge work order per radix partition of the group-hash space, so
// partials merge in parallel with no shared lock (the aggregation analogue
// of PR1's shard-lock amortization on the join build).
package aggtable

import (
	"repro/internal/types"
)

// Kind is the aggregate function of one accumulator column. CountDistinct
// never reaches this package; it stays on the operator's reference map path.
type Kind uint8

// Aggregate kinds.
const (
	Sum Kind = iota
	Count
	Avg
	Min
	Max
)

// Agg describes one accumulator column: its function and whether the
// argument (and therefore the min/max comparison and the sum that the result
// is read from) is float-valued.
type Agg struct {
	Kind  Kind
	Float bool
}

// Cell is one group's accumulator for one aggregate. Mirrors the reference
// path's accCell so merged results are field-for-field identical: Count
// counts rows, SumI/SumF accumulate the integer and float views of the
// argument, MMI/MMF hold the running min/max, Set marks a seen value.
type Cell struct {
	Count int64
	SumI  int64
	SumF  float64
	MMI   int64
	MMF   float64
	Set   bool
}

// cellBytes is the in-memory size of one Cell (48 = 5×8 bytes + flag,
// rounded to alignment); slotBytes is one bucket slot (hash + dense index).
const (
	cellBytes = 48
	slotBytes = 16
)

// loadFactor is the occupancy threshold that doubles the slot array.
const loadFactor = 0.7

// slot is one open-addressing bucket: the group hash (0 = empty; hashes come
// from types.HashPairVec, which never emits 0) and the dense group index.
type slot struct {
	h   uint64
	idx int32
}

// Table accumulates groups keyed by one or two int64 keys. Group state lives
// in dense parallel arrays (keys, hashes, cells) indexed by insertion order;
// the slot array only maps hashes to dense indexes, so growth rehashes 16
// bytes per group and never moves accumulator state.
type Table struct {
	slots   []slot
	mask    uint64
	growAt  int
	nGroups int

	twoKeys bool
	nAggs   int

	k0     []int64
	k1     []int64 // nil unless twoKeys
	hashes []uint64
	cells  []Cell // nGroups * nAggs, group-major

	zero []Cell // nAggs zero cells, appended per new group
}

// New returns an empty table for nAggs accumulator columns. capHint sizes the
// initial slot array (in expected groups).
func New(nAggs int, twoKeys bool, capHint int) *Table {
	if capHint < 16 {
		capHint = 16
	}
	n := 1
	for float64(n)*loadFactor < float64(capHint) {
		n <<= 1
	}
	return &Table{
		slots:   make([]slot, n),
		mask:    uint64(n - 1),
		growAt:  int(loadFactor * float64(n)),
		twoKeys: twoKeys,
		nAggs:   nAggs,
		zero:    make([]Cell, nAggs),
	}
}

// Len returns the number of distinct groups.
func (t *Table) Len() int { return t.nGroups }

// NAggs returns the number of accumulator columns per group.
func (t *Table) NAggs() int { return t.nAggs }

// Key returns group g's keys (k1 is 0 for single-key tables).
func (t *Table) Key(g int) (k0, k1 int64) {
	if t.twoKeys {
		return t.k0[g], t.k1[g]
	}
	return t.k0[g], 0
}

// Hash returns group g's hash (for radix partitioning).
func (t *Table) Hash(g int) uint64 { return t.hashes[g] }

// CellAt returns the accumulator of group g, aggregate column j.
func (t *Table) CellAt(g int32, j int) *Cell { return &t.cells[int(g)*t.nAggs+j] }

// Bytes returns the table's approximate memory footprint: slot array plus the
// dense group arrays at their allocated capacities.
func (t *Table) Bytes() int64 {
	n := int64(len(t.slots)) * slotBytes
	n += int64(cap(t.k0)+cap(t.k1))*8 + int64(cap(t.hashes))*8
	n += int64(cap(t.cells)) * cellBytes
	return n
}

// upsert finds or creates the group for (h, a, b) and returns its dense
// index. h must be non-zero (types.HashPairVec guarantees it).
func (t *Table) upsert(h uint64, a, b int64) int32 {
	if t.nGroups >= t.growAt {
		t.grow()
	}
	i := h & t.mask
	for {
		s := t.slots[i]
		if s.h == 0 {
			idx := int32(t.nGroups)
			t.slots[i] = slot{h: h, idx: idx}
			t.nGroups++
			t.k0 = append(t.k0, a)
			if t.twoKeys {
				t.k1 = append(t.k1, b)
			}
			t.hashes = append(t.hashes, h)
			t.cells = append(t.cells, t.zero...)
			return idx
		}
		if s.h == h && t.k0[s.idx] == a && (!t.twoKeys || t.k1[s.idx] == b) {
			return s.idx
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the slot array, rehashing from the dense hash column.
func (t *Table) grow() {
	ns := make([]slot, len(t.slots)*2)
	mask := uint64(len(ns) - 1)
	for idx, h := range t.hashes {
		i := h & mask
		for ns[i].h != 0 {
			i = (i + 1) & mask
		}
		ns[i] = slot{h: h, idx: int32(idx)}
	}
	t.slots = ns
	t.mask = mask
	t.growAt = int(loadFactor * float64(len(ns)))
}

// UpsertBlock maps a block of keys to dense group indexes in one pass: row r
// of the block belongs to group dst[r]. k1 may be nil for single-key tables;
// hashes must come from types.HashPairVec over (k0, k1). dst's backing array
// is reused when large enough.
func (t *Table) UpsertBlock(k0, k1 []int64, hashes []uint64, dst []int32) []int32 {
	n := len(hashes)
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	if k1 == nil {
		for r, h := range hashes {
			dst[r] = t.upsert(h, k0[r], 0)
		}
		return dst
	}
	for r, h := range hashes {
		dst[r] = t.upsert(h, k0[r], k1[r])
	}
	return dst
}

// AccumCount bumps aggregate column j's row count for each row's group (the
// COUNT(*) kernel: no argument column to read).
func (t *Table) AccumCount(j int, groups []int32) {
	cells, na := t.cells, t.nAggs
	for _, g := range groups {
		cells[int(g)*na+j].Count++
	}
}

// AccumInt folds an integer argument column (int64 or widened date) into
// aggregate column j. Sum/Avg accumulate both the integer and float views,
// exactly like the reference path's per-row cell updates.
func (t *Table) AccumInt(j int, a Agg, groups []int32, vals []int64) {
	cells, na := t.cells, t.nAggs
	switch a.Kind {
	case Sum, Avg:
		for r, g := range groups {
			c := &cells[int(g)*na+j]
			v := vals[r]
			c.Count++
			c.SumI += v
			c.SumF += float64(v)
		}
	case Min:
		for r, g := range groups {
			c := &cells[int(g)*na+j]
			c.Count++
			if v := vals[r]; !c.Set || v < c.MMI {
				c.MMI = v
				c.Set = true
			}
		}
	case Max:
		for r, g := range groups {
			c := &cells[int(g)*na+j]
			c.Count++
			if v := vals[r]; !c.Set || v > c.MMI {
				c.MMI = v
				c.Set = true
			}
		}
	default: // Count with an (ignored) argument
		t.AccumCount(j, groups)
	}
}

// AccumFloat folds a float argument column into aggregate column j. The
// integer sum stays untouched — a Float64 datum's integer view is 0 on the
// reference path too.
func (t *Table) AccumFloat(j int, a Agg, groups []int32, vals []float64) {
	cells, na := t.cells, t.nAggs
	switch a.Kind {
	case Sum, Avg:
		for r, g := range groups {
			c := &cells[int(g)*na+j]
			c.Count++
			c.SumF += vals[r]
		}
	case Min:
		for r, g := range groups {
			c := &cells[int(g)*na+j]
			c.Count++
			if v := vals[r]; !c.Set || v < c.MMF {
				c.MMF = v
				c.Set = true
			}
		}
	case Max:
		for r, g := range groups {
			c := &cells[int(g)*na+j]
			c.Count++
			if v := vals[r]; !c.Set || v > c.MMF {
				c.MMF = v
				c.Set = true
			}
		}
	default:
		t.AccumCount(j, groups)
	}
}

// UpdateInt folds one integer value into a cell (the per-row path for
// computed aggregate arguments that bypass the columnar gathers but still
// accumulate into fixed-width cells).
func UpdateInt(c *Cell, a Agg, v int64) {
	c.Count++
	switch a.Kind {
	case Sum, Avg:
		c.SumI += v
		c.SumF += float64(v)
	case Min:
		if !c.Set || v < c.MMI {
			c.MMI = v
			c.Set = true
		}
	case Max:
		if !c.Set || v > c.MMI {
			c.MMI = v
			c.Set = true
		}
	}
}

// UpdateFloat folds one float value into a cell.
func UpdateFloat(c *Cell, a Agg, v float64) {
	c.Count++
	switch a.Kind {
	case Sum, Avg:
		c.SumF += v
	case Min:
		if !c.Set || v < c.MMF {
			c.MMF = v
			c.Set = true
		}
	case Max:
		if !c.Set || v > c.MMF {
			c.MMF = v
			c.Set = true
		}
	}
}

// MergeCell folds src into dst (partial-table merge).
func MergeCell(dst, src *Cell, a Agg) {
	dst.Count += src.Count
	dst.SumI += src.SumI
	dst.SumF += src.SumF
	if !src.Set {
		return
	}
	if !dst.Set {
		dst.MMI, dst.MMF, dst.Set = src.MMI, src.MMF, true
		return
	}
	var take bool
	if a.Float {
		take = (a.Kind == Min && src.MMF < dst.MMF) || (a.Kind == Max && src.MMF > dst.MMF)
	} else {
		take = (a.Kind == Min && src.MMI < dst.MMI) || (a.Kind == Max && src.MMI > dst.MMI)
	}
	if take {
		dst.MMI, dst.MMF = src.MMI, src.MMF
	}
}

// MergePartition folds every src group whose hash falls in radix partition
// part of pr (see types.Partitioner) into dst. Partitions are disjoint by
// construction, so concurrent merge work orders over distinct partitions
// share nothing; a single-partition pr (types.NewPartitioner(1)) with part 0
// folds every group.
func (t *Table) MergePartition(src *Table, part int, pr types.Partitioner, aggs []Agg) {
	for g := 0; g < src.nGroups; g++ {
		h := src.hashes[g]
		if pr.Of(h) != part {
			continue
		}
		var b int64
		if src.twoKeys {
			b = src.k1[g]
		}
		idx := t.upsert(h, src.k0[g], b)
		for j := range aggs {
			MergeCell(t.CellAt(idx, j), src.CellAt(int32(g), j), aggs[j])
		}
	}
}
