package aggtable

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// refMap is the map-based oracle for table behavior.
type refKey struct{ a, b int64 }

func TestUpsertBlockGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := New(1, true, 4) // tiny capacity forces growth
	ref := map[refKey]int64{}
	const n = 5000
	k0 := make([]int64, n)
	k1 := make([]int64, n)
	for i := range k0 {
		k0[i] = int64(rng.Intn(97))
		k1[i] = int64(rng.Intn(11))
	}
	hashes := types.HashPairVec(k0, k1, nil)
	groups := tab.UpsertBlock(k0, k1, hashes, nil)
	for r := range k0 {
		tab.AccumInt(0, Agg{Kind: Sum}, groups[r:r+1], k0[r:r+1])
		ref[refKey{k0[r], k1[r]}] += k0[r]
	}
	if tab.Len() != len(ref) {
		t.Fatalf("groups = %d, want %d", tab.Len(), len(ref))
	}
	for g := 0; g < tab.Len(); g++ {
		a, b := tab.Key(g)
		if got, want := tab.CellAt(int32(g), 0).SumI, ref[refKey{a, b}]; got != want {
			t.Errorf("group (%d,%d): sum = %d, want %d", a, b, got, want)
		}
	}
}

func TestSingleKeyIgnoresSecond(t *testing.T) {
	tab := New(1, false, 16)
	k0 := []int64{1, 2, 1, 2, 1}
	hashes := types.HashPairVec(k0, nil, nil)
	tab.UpsertBlock(k0, nil, hashes, nil)
	if tab.Len() != 2 {
		t.Fatalf("groups = %d, want 2", tab.Len())
	}
}

func TestAccumKernelsMatchUpdate(t *testing.T) {
	// Columnar kernels must produce exactly the per-value Update results.
	rng := rand.New(rand.NewSource(3))
	aggs := []Agg{
		{Kind: Sum}, {Kind: Avg}, {Kind: Min}, {Kind: Max}, {Kind: Count},
		{Kind: Sum, Float: true}, {Kind: Min, Float: true}, {Kind: Max, Float: true},
	}
	tab := New(len(aggs), false, 16)
	const n = 2000
	k0 := make([]int64, n)
	vi := make([]int64, n)
	vf := make([]float64, n)
	for i := range k0 {
		k0[i] = int64(rng.Intn(31))
		vi[i] = int64(rng.Intn(1000)) - 500
		vf[i] = float64(rng.Intn(4000)) / 4
	}
	hashes := types.HashPairVec(k0, nil, nil)
	groups := tab.UpsertBlock(k0, nil, hashes, nil)
	want := map[int64][]Cell{}
	for r, g := range groups {
		_ = g
		cs := want[k0[r]]
		if cs == nil {
			cs = make([]Cell, len(aggs))
			want[k0[r]] = cs
		}
		for j, a := range aggs {
			if a.Kind == Count {
				cs[j].Count++
			} else if a.Float {
				UpdateFloat(&cs[j], a, vf[r])
			} else {
				UpdateInt(&cs[j], a, vi[r])
			}
		}
	}
	for j, a := range aggs {
		switch {
		case a.Kind == Count:
			tab.AccumCount(j, groups)
		case a.Float:
			tab.AccumFloat(j, a, groups, vf)
		default:
			tab.AccumInt(j, a, groups, vi)
		}
	}
	for g := 0; g < tab.Len(); g++ {
		k, _ := tab.Key(g)
		for j := range aggs {
			if got, w := *tab.CellAt(int32(g), j), want[k][j]; got != w {
				t.Errorf("key %d agg %d: %+v, want %+v", k, j, got, w)
			}
		}
	}
}

func TestMergePartitionCoversAllGroupsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	aggs := []Agg{{Kind: Sum}, {Kind: Min}}
	const bits = 4
	// Two partials with overlapping key sets.
	mk := func(seed int64) *Table {
		r := rand.New(rand.NewSource(seed))
		tab := New(len(aggs), false, 8)
		n := 3000
		k0 := make([]int64, n)
		v := make([]int64, n)
		for i := range k0 {
			k0[i] = int64(r.Intn(200))
			v[i] = int64(r.Intn(50))
		}
		h := types.HashPairVec(k0, nil, nil)
		g := tab.UpsertBlock(k0, nil, h, nil)
		tab.AccumInt(0, aggs[0], g, v)
		tab.AccumInt(1, aggs[1], g, v)
		return tab
	}
	_ = rng
	a, b := mk(1), mk(2)

	// Oracle: merge everything into one table.
	whole := New(len(aggs), false, 8)
	one := types.NewPartitioner(1)
	whole.MergePartition(a, 0, one, aggs) // single partition covers all
	whole.MergePartition(b, 0, one, aggs)

	merged := map[int64]Cell{}
	var total int
	pr := types.NewPartitioner(1 << bits)
	for p := 0; p < pr.Parts(); p++ {
		dst := New(len(aggs), false, 8)
		dst.MergePartition(a, p, pr, aggs)
		dst.MergePartition(b, p, pr, aggs)
		total += dst.Len()
		for g := 0; g < dst.Len(); g++ {
			k, _ := dst.Key(g)
			if _, dup := merged[k]; dup {
				t.Fatalf("key %d appeared in two partitions", k)
			}
			merged[k] = *dst.CellAt(int32(g), 0)
		}
	}
	if total != whole.Len() {
		t.Fatalf("partitioned merge has %d groups, whole merge %d", total, whole.Len())
	}
	for g := 0; g < whole.Len(); g++ {
		k, _ := whole.Key(g)
		if got, want := merged[k], *whole.CellAt(int32(g), 0); got != want {
			t.Errorf("key %d: partitioned %+v, whole %+v", k, got, want)
		}
	}
}

func TestMergeCellMinMax(t *testing.T) {
	// Unset cells must not poison the merge.
	var dst, src Cell
	src.Set = false
	MergeCell(&dst, &src, Agg{Kind: Min})
	if dst.Set {
		t.Fatal("merge of unset cells set the flag")
	}
	UpdateInt(&src, Agg{Kind: Min}, 5)
	MergeCell(&dst, &src, Agg{Kind: Min})
	if !dst.Set || dst.MMI != 5 {
		t.Fatalf("dst = %+v, want min 5", dst)
	}
	var lower Cell
	UpdateInt(&lower, Agg{Kind: Min}, 3)
	MergeCell(&dst, &lower, Agg{Kind: Min})
	if dst.MMI != 3 {
		t.Fatalf("dst.MMI = %d, want 3", dst.MMI)
	}
	var higher Cell
	UpdateInt(&higher, Agg{Kind: Min}, 9)
	MergeCell(&dst, &higher, Agg{Kind: Min})
	if dst.MMI != 3 {
		t.Fatalf("dst.MMI = %d after higher merge, want 3", dst.MMI)
	}
}

func TestBytesGrows(t *testing.T) {
	tab := New(2, false, 16)
	b0 := tab.Bytes()
	if b0 <= 0 {
		t.Fatal("empty table reports no bytes")
	}
	k0 := make([]int64, 10000)
	for i := range k0 {
		k0[i] = int64(i)
	}
	h := types.HashPairVec(k0, nil, nil)
	tab.UpsertBlock(k0, nil, h, nil)
	if tab.Bytes() <= b0 {
		t.Fatalf("Bytes did not grow: %d -> %d", b0, tab.Bytes())
	}
}

func TestRadixBits(t *testing.T) {
	if types.Radix(^uint64(0), 4) != 15 {
		t.Fatal("Radix top bits wrong")
	}
	if types.Radix(1<<60, 4) != 1 {
		t.Fatal("Radix partition wrong")
	}
}
