package costmodel

import (
	"math"
	"testing"
)

func TestP1PrimeSaturates(t *testing.T) {
	p := Default(128<<10, 20)
	// 2 * 128K * 20 = 5 MB over 25 MB L3 -> 0.2.
	if got := p.P1Prime(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("p1' = %v, want 0.2", got)
	}
	p.B = 2 << 20
	// 2 * 2M * 20 = 80 MB > 25 MB -> 1.
	if got := p.P1Prime(); got != 1 {
		t.Fatalf("p1' = %v, want 1", got)
	}
	p.T = 1
	p.B = 64
	if got := p.P1Prime(); got >= 0.001 {
		t.Fatalf("tiny UoT single thread p1' = %v", got)
	}
}

func TestUoTCostsScaleWithB(t *testing.T) {
	small := Default(128<<10, 20)
	big := Default(2<<20, 20)
	if small.RL3() >= big.RL3() || small.ARL3() >= big.ARL3() || small.WMem() >= big.WMem() {
		t.Fatal("per-UoT costs must grow with B")
	}
	// AR_L3 < R_L3 (the amortized read skips the initial miss).
	if small.ARL3() >= small.RL3() {
		t.Fatalf("AR (%v) should be smaller than R (%v)", small.ARL3(), small.RL3())
	}
}

// TestRatioNearOneAtHighUoT reproduces the Section V-A(a) argument: for
// multi-megabyte UoTs the strategies are nearly equivalent.
func TestRatioNearOneAtHighUoT(t *testing.T) {
	p := Default(2<<20, 20).HighRegime()
	r := p.Ratio()
	if r < 0.5 || r > 2.0 {
		t.Fatalf("high-UoT ratio = %v, want ~1", r)
	}
}

// TestRatioSlightAdvantageAtLowUoT reproduces Section V-A(b): at small UoTs
// the pipelining strategy holds a slight advantage (ratio >= ~1).
func TestRatioSlightAdvantageAtLowUoT(t *testing.T) {
	p := Default(128<<10, 20).LowRegime()
	r := p.Ratio()
	if r < 0.9 {
		t.Fatalf("low-UoT ratio = %v; pipelining should not lose badly", r)
	}
	if r > 5 {
		t.Fatalf("low-UoT ratio = %v; advantage should be slight", r)
	}
}

func TestExtraCostsPositiveAndProportionalToN(t *testing.T) {
	p := Default(512<<10, 10)
	if p.HighUoTExtra() <= 0 || p.LowUoTExtra() <= 0 {
		t.Fatal("extra costs must be positive")
	}
	p2 := p
	p2.NProbeIn *= 3
	if math.Abs(p2.HighUoTExtra()-3*p.HighUoTExtra()) > 1e-6*p2.HighUoTExtra() {
		t.Fatal("high extra must scale linearly in N")
	}
	if math.Abs(p2.LowUoTExtra()-3*p.LowUoTExtra()) > 1e-6*p2.LowUoTExtra() {
		t.Fatal("low extra must scale linearly in N")
	}
}

// TestPersistentStore reproduces Section V-C: in the disk setting the
// non-pipelining strategy pays seconds while pipelining pays microseconds.
func TestPersistentStore(t *testing.T) {
	s := DefaultStore(1000)
	high := s.HighUoTExtra()
	low := s.LowUoTExtra()
	if high < 100e6 { // >= 0.1 s in ns ticks for 1000 UoTs
		t.Fatalf("store high extra = %v ns, expected order of seconds", high)
	}
	if low > 10e6 { // <= 10 ms
		t.Fatalf("store low extra = %v ns, expected order of microseconds/ms", low)
	}
	if s.Advantage() < 50 {
		t.Fatalf("pipelining advantage on disk = %v, want large", s.Advantage())
	}
}

func TestRegimePresets(t *testing.T) {
	p := Default(1<<20, 8)
	if h := p.HighRegime(); h.P2 >= h.P1 {
		t.Fatal("high regime: p2 should be low")
	}
	if l := p.LowRegime(); l.P2 <= l.P1 {
		t.Fatal("low regime: p2 should be high")
	}
}

func TestQueryMemory(t *testing.T) {
	blk := int64(128 << 10)
	// Two unit-UoT edges, one worker, no stateful ops: 3 blocks live at peak.
	if got := QueryMemory([]int{1, 1}, 1, blk, 0, 0); got != 3*blk {
		t.Fatalf("QueryMemory = %d, want %d", got, 3*blk)
	}
	// UoTTable edges clamp instead of overflowing.
	huge := QueryMemory([]int{1 << 30}, 4, blk, 0, 0)
	if huge <= 0 || huge > 1<<30 {
		t.Fatalf("clamped estimate out of range: %d", huge)
	}
	// Stateful operators add DefaultStatefulBytes each when unsized.
	base := QueryMemory([]int{1}, 1, blk, 0, 0)
	withState := QueryMemory([]int{1}, 1, blk, 2, 0)
	if withState-base != 2*DefaultStatefulBytes {
		t.Fatalf("stateful delta = %d, want %d", withState-base, int64(2*DefaultStatefulBytes))
	}
	// Monotone in workers.
	if QueryMemory([]int{1}, 8, blk, 0, 0) <= QueryMemory([]int{1}, 1, blk, 0, 0) {
		t.Fatal("estimate must grow with the in-flight cap")
	}
}

func TestQueryMemorySplit(t *testing.T) {
	blk := int64(128 << 10)
	// The PR8 double-count: a UoTTable edge charges the full 64-block clamp
	// against RAM even though a spilling query keeps only the pin window
	// resident. The split pins both figures: 4 resident blocks for the edge
	// plus 2 worker output blocks, and the other 60 clamp blocks spillable.
	ram, spill := QueryMemorySplit([]int{1 << 30}, 2, blk, 0, 0)
	if want := (4 + 2) * blk; ram != want {
		t.Fatalf("ram = %d, want %d", ram, want)
	}
	if want := 60 * blk; spill != want {
		t.Fatalf("spillable = %d, want %d", spill, want)
	}
	// Edges at or under the clamp spill nothing.
	ram, spill = QueryMemorySplit([]int{1, 4}, 1, blk, 1, 0)
	if spill != 0 {
		t.Fatalf("small edges: spillable = %d, want 0", spill)
	}
	if want := (1+4+1)*blk + DefaultStatefulBytes; ram != want {
		t.Fatalf("small edges: ram = %d, want %d", ram, want)
	}
	// Invariant: the split never changes the total, whatever the shape.
	cases := []struct {
		uots     []int
		workers  int
		stateful int
	}{
		{[]int{1, 1}, 1, 0},
		{[]int{1 << 30, 5, 64, 3}, 8, 2},
		{[]int{0, -1, 100}, 0, 1},
		{nil, 4, 0},
	}
	for _, c := range cases {
		ram, spill := QueryMemorySplit(c.uots, c.workers, blk, c.stateful, 0)
		if total := QueryMemory(c.uots, c.workers, blk, c.stateful, 0); ram+spill != total {
			t.Fatalf("%v: ram %d + spillable %d != total %d", c.uots, ram, spill, total)
		}
		if ram <= 0 || spill < 0 {
			t.Fatalf("%v: degenerate split ram=%d spill=%d", c.uots, ram, spill)
		}
	}
}

func TestSpillCost(t *testing.T) {
	// Below the threshold the probability — and the cost — scale with B.
	lo := SpillCost(64<<10, 1, 1<<30)
	hi := SpillCost(128<<10, 1, 1<<30)
	if lo <= 0 || hi < 4*lo-1e-9 || hi > 4*lo+1e-9 {
		t.Fatalf("SpillCost should be quadratic in B below saturation: lo=%g hi=%g", lo, hi)
	}
	// Saturated: probability 1, cost equals the scaled device round trip.
	s := DefaultStore(1)
	sat := SpillCost(256<<10, 8, 1) // M tiny → certain eviction
	if want := float64(s.RStore+s.WStore) * 2; sat != want {
		t.Fatalf("saturated SpillCost = %g, want %g", sat, want)
	}
	if SpillProb(1<<20, 4, 0) != 1 {
		t.Fatal("zero budget must saturate the spill probability")
	}
}
