// Package costmodel implements the paper's analytical model (Section V): the
// extra work incurred at the two ends of the UoT spectrum for a
// select→probe producer/consumer pair, the Eq. 1 cost ratio, and the
// persistent-store variant of Section V-C. The model deliberately counts
// only cost *differences* between the strategies; work common to both (e.g.
// the probe itself) is excluded, exactly as in the paper.
package costmodel

// Params mirrors Table I. Per-line costs are in ticks (≈ns) per 64-byte
// cache line; per-event costs are in ticks.
type Params struct {
	// B is the UoT size in bytes; T is the number of worker threads.
	B int64
	T int

	// L3Bytes and LineBytes describe the shared cache.
	L3Bytes   int64
	LineBytes int64

	// ARL3Line is the amortized per-line cost of a prefetched sequential
	// read (AR_L3 per line). A single-UoT read (R_L3) pays one extra miss
	// on top: the prefetcher locks onto the stream after the first miss,
	// so AR_L3 << R_L3 only in the per-event sense, while both remain
	// proportional to B — exactly the relationship Section V-A relies on.
	ARL3Line int64
	// WMemLine is the per-line cost of writing materialized output back to
	// memory (W_mem per line).
	WMemLine int64
	// ML3 is the penalty of one L3 miss event when a UoT's access is
	// disrupted (M_L3).
	ML3 int64
	// IC is the instruction-cache cost of one work-order context switch.
	IC int64

	// P1 is the probability that a probe-input read misses L3 after the
	// random hash-table accesses disrupt the sequential stream (high-UoT
	// term); P2 is the probability that the select operator misses L3
	// after the context switch back from the probe (low-UoT term).
	P1 float64
	P2 float64

	// NProbeIn is the number of probe-input UoTs (= N_select_out, as the
	// paper observes).
	NProbeIn int64
}

// Default returns parameters matching the cachesim defaults and the paper's
// Haswell platform: 25 MB L3, 64 B lines.
func Default(B int64, T int) Params {
	return Params{
		B: B, T: T,
		L3Bytes: 25 << 20, LineBytes: 64,
		ARL3Line: 8, WMemLine: 25, ML3: 90, IC: 2000,
		P1: 0.5, P2: 0.5,
		NProbeIn: 1000,
	}
}

func (p Params) lines() float64 {
	if p.LineBytes == 0 {
		return float64(p.B)
	}
	return float64(p.B) / float64(p.LineBytes)
}

// RL3 is the cost of reading one UoT from memory on its own: an initial
// miss, then the prefetcher streams the rest.
func (p Params) RL3() float64 { return float64(p.ML3) + p.lines()*float64(p.ARL3Line) }

// ARL3 is the amortized cost of reading one UoT sequentially with the
// prefetcher engaged.
func (p Params) ARL3() float64 { return p.lines() * float64(p.ARL3Line) }

// WMem is the cost of writing one UoT of materialized output to memory.
func (p Params) WMem() float64 { return p.lines() * float64(p.WMemLine) }

// P1Prime is min(1, 2BT / |L3|): the likelihood that a probe input written
// by the producer has been evicted before the consumer reads it, because T
// threads each keep ~2 UoTs (input + output) live in the shared L3.
func (p Params) P1Prime() float64 {
	v := 2 * float64(p.B) * float64(p.T) / float64(p.L3Bytes)
	if v > 1 {
		return 1
	}
	return v
}

// HighUoTExtra is the additional work of the non-pipelining strategy:
//
//	W_mem·N_out + AR_L3·N_in + p1·N_in·M_L3
func (p Params) HighUoTExtra() float64 {
	n := float64(p.NProbeIn)
	return p.WMem()*n + p.ARL3()*n + p.P1*n*float64(p.ML3)
}

// LowUoTExtra is the additional work of the pipelining strategy:
//
//	(N_out+N_in)·IC + p2·N_in·(M_L3+R_L3) + p1'·(M_L3+R_L3+W_mem)·N_in
func (p Params) LowUoTExtra() float64 {
	n := float64(p.NProbeIn)
	return 2*n*float64(p.IC) +
		p.P2*n*(float64(p.ML3)+p.RL3()) +
		p.P1Prime()*(float64(p.ML3)+p.RL3()+p.WMem())*n
}

// Ratio is Eq. 1: HighUoTExtra / LowUoTExtra with the IC terms dropped (the
// paper drops them because they are negligible at multi-megabyte UoTs). A
// ratio near 1 means the two strategies are equivalent; above 1 means the
// pipelining (low-UoT) strategy has the advantage.
func (p Params) Ratio() float64 {
	num := p.ARL3() + p.WMem() + p.P1*float64(p.ML3)
	den := p.P2*(float64(p.ML3)+p.RL3()) + p.P1Prime()*(float64(p.ML3)+p.RL3()+p.WMem())
	return num / den
}

// HighRegime returns p with the probability assignments the paper argues for
// at high UoT values (size > |L3| / 2T): p1' saturates at 1 via B, p2 low.
func (p Params) HighRegime() Params {
	p.P1 = 0.8
	p.P2 = 0.1
	return p
}

// LowRegime returns p with the low-UoT assignments: p2 close to 1 (storage
// management overhead disrupts the select's stream), p1 moderate.
func (p Params) LowRegime() Params {
	p.P1 = 0.3
	p.P2 = 0.9
	return p
}

// Partitions picks a default exchange fan-out for a partitioned pipeline
// stage: the smallest power of two that gives every worker thread its own
// partition (so partition-local clones keep all T workers busy), capped at 64
// (beyond that, per-partition hash tables get too small to amortize the
// scatter pass). Tiny inputs short-circuit to 1 — an exchange over a few
// thousand rows costs more in scatter and per-partition block overhead than
// shared-table locking ever would.
func Partitions(rows int64, workers int) int {
	if rows > 0 && rows < 4096 {
		return 1
	}
	if workers <= 1 {
		return 1
	}
	p := 1
	for p < workers && p < 64 {
		p <<= 1
	}
	return p
}

// DefaultStatefulBytes is the admission estimator's default footprint for
// one stateful operator (hash-table build, aggregation, sort) when nothing
// better is known. Deliberately conservative for the small-to-medium scale
// factors the serving experiments run at; callers with cardinality knowledge
// pass their own figure (memmodel.HashTableSize is the Section VI model).
const DefaultStatefulBytes = 4 << 20

// maxEstimatedUoT clamps per-edge UoT values in the admission estimate: an
// edge at UoTTable buffers the whole intermediate table, which the estimator
// cannot bound, so it charges a deep-but-finite backlog instead.
const maxEstimatedUoT = 64

// QueryMemory estimates the peak temporary-block memory of one query, the
// figure the admission controller charges against the global budget. It is
// a structural upper-sketch, not a cardinality model: every pipelined edge
// may hold up to its UoT threshold in buffered blocks awaiting delivery,
// every in-flight work order holds one output block being filled, and every
// stateful operator (build, agg, sort) keeps materialized state.
//
// edgeUoTs are the resolved per-edge UoT thresholds in blocks (see
// core.ResolveUoT); workers is the query's in-flight work-order cap;
// blockBytes the temp-block size; statefulOps the count of state-keeping
// operators and statefulBytes the per-operator state estimate (0 means
// DefaultStatefulBytes).
func QueryMemory(edgeUoTs []int, workers int, blockBytes int64, statefulOps int, statefulBytes int64) int64 {
	if workers < 1 {
		workers = 1
	}
	if blockBytes <= 0 {
		blockBytes = 128 << 10
	}
	if statefulBytes <= 0 {
		statefulBytes = DefaultStatefulBytes
	}
	buffered := int64(0)
	for _, u := range edgeUoTs {
		if u <= 0 {
			u = 1
		}
		if u > maxEstimatedUoT {
			u = maxEstimatedUoT
		}
		buffered += int64(u)
	}
	return (buffered+int64(workers))*blockBytes + int64(statefulOps)*statefulBytes
}

// SpillRAMClamp is the per-edge UoT clamp of the RAM-resident share of a
// spilling query's estimate. Once the spill tier is on, a deep edge backlog
// does not have to be resident: only a few blocks per edge — the ones being
// filled, delivered, or faulted in — must live in RAM at once, and the rest
// of the 64-block charge (maxEstimatedUoT) can sit on disk. Four blocks per
// edge is the pin window the scheduler actually needs: current output,
// in-delivery group, plus slack for a fault-in racing an eviction.
const SpillRAMClamp = 4

// QueryMemorySplit is QueryMemory split into the bytes that must stay
// RAM-resident under a spill tier and the bytes the tier may keep on disk.
// The invariant ram+spillable == QueryMemory(...) holds for every input: the
// split only re-labels the per-edge backlog charge above SpillRAMClamp, it
// never changes the total. Admission with spill enabled charges ram against
// the memory budget and spillable against the disk budget, fixing the
// double-count where a spilling query was shed because its full 64-block
// UoT clamp was held against RAM it will never occupy.
func QueryMemorySplit(edgeUoTs []int, workers int, blockBytes int64, statefulOps int, statefulBytes int64) (ram, spillable int64) {
	if blockBytes <= 0 {
		blockBytes = 128 << 10
	}
	for _, u := range edgeUoTs {
		if u <= 0 {
			u = 1
		}
		if u > maxEstimatedUoT {
			u = maxEstimatedUoT
		}
		if u > SpillRAMClamp {
			spillable += int64(u-SpillRAMClamp) * blockBytes
		}
	}
	total := QueryMemory(edgeUoTs, workers, blockBytes, statefulOps, statefulBytes)
	return total - spillable, spillable
}

// StoreParams models the persistent-store setting of Section V-C, where the
// hash table stays in the buffer pool (p1 ≈ p2 ≈ 0) and UoT reads/writes hit
// the storage device.
type StoreParams struct {
	// RStore and WStore are the costs of reading/writing one UoT from/to
	// the persistent store, in ticks.
	RStore, WStore int64
	// IC is the instruction-cache switch cost.
	IC int64
	// NProbeIn is the number of probe-input UoTs.
	NProbeIn int64
}

// DefaultStore models a 128 KB UoT on an SSD-class device: ~200 µs per UoT
// read/write.
func DefaultStore(nUoTs int64) StoreParams {
	return StoreParams{RStore: 200_000, WStore: 250_000, IC: 2000, NProbeIn: nUoTs}
}

// HighUoTExtra is R_store·N_in + W_store·N_out (seconds for thousands of
// UoTs).
func (s StoreParams) HighUoTExtra() float64 {
	return float64(s.NProbeIn) * float64(s.RStore+s.WStore)
}

// LowUoTExtra is (N_in+N_out)·IC (microseconds for thousands of UoTs).
func (s StoreParams) LowUoTExtra() float64 {
	return 2 * float64(s.NProbeIn) * float64(s.IC)
}

// Advantage is the non-pipelining extra cost divided by the pipelining extra
// cost — the factor by which pipelining wins in the disk setting.
func (s StoreParams) Advantage() float64 { return s.HighUoTExtra() / s.LowUoTExtra() }

// storeRefUoT is the UoT size DefaultStore's per-UoT device costs are quoted
// at; SpillCost scales them linearly to other UoT sizes.
const storeRefUoT = 128 << 10

// SpillProb is the Section V-C analogue of P1Prime with the spill threshold
// M in place of |L3|: the probability that a UoT buffered at size B by T
// workers is evicted to the persistent store before its consumer reads it,
// min(1, 2BT/M).
func SpillProb(B int64, T int, M int64) float64 {
	if M <= 0 {
		return 1
	}
	v := 2 * float64(B) * float64(T) / float64(M)
	if v > 1 {
		return 1
	}
	return v
}

// SpillCost is the expected extra ticks per transferred UoT of size B under
// a RAM threshold of M bytes with T workers: the eviction probability times
// one store write (spill) plus one store read (fault-in), scaled from the
// DefaultStore reference UoT. The adaptive controller adds this to its
// high-UoT prior so UoT choices price the slow tier in (Section V-C: once
// the store is in the loop, pipelining wins by orders of magnitude).
func SpillCost(B int64, T int, M int64) float64 {
	s := DefaultStore(1)
	return SpillProb(B, T, M) * float64(s.RStore+s.WStore) * float64(B) / float64(storeRefUoT)
}

// RecomputeCost estimates the ticks to recompute a materialized
// intermediate of the given byte size produced by a subplan of nOps
// operators: every operator level at minimum streams its input in
// (prefetched sequential read, AR_L3 per line) and writes its output back
// to memory (W_mem per line), so the floor is nOps read+write passes over
// the result's bytes. Deliberately a conservative lower bound — hash
// probes, aggregations, and sorts cost strictly more — used by
// internal/reuse as the Dursun-style benefit numerator (recompute ticks
// saved per cached byte).
func RecomputeCost(bytes int64, nOps int) float64 {
	if bytes <= 0 {
		return 0
	}
	if nOps < 1 {
		nOps = 1
	}
	p := Default(bytes, 1)
	lines := float64(bytes) / float64(p.LineBytes)
	return float64(nOps) * lines * float64(p.ARL3Line+p.WMemLine)
}

// ReloadCost estimates the ticks to fault a cooled cache entry of the given
// byte size back in from the persistent store (one store read per 128 KB
// reference UoT — the REMOP rule: a cached block is priced by where it
// lives, so internal/reuse discounts a cooled entry's benefit by this).
func ReloadCost(bytes int64) float64 {
	s := DefaultStore(1)
	return float64(s.RStore) * float64(bytes) / float64(storeRefUoT)
}
