package uotctl

import "testing"

// testCfg is a small, fully-explicit configuration so decisions are easy to
// trace by hand: hysteresis 2, cooldown 1, backlog factor 2.
func testCfg() Config {
	return Config{
		Workers: 4, BlockBytes: 128 << 10, DefaultUoT: 4,
		Floor: 1, Ceiling: 64, Hysteresis: 2, Cooldown: 1,
		BacklogFactor: 2, StallFrac: 0.5, PressureHold: 3,
		DisablePrior: true,
	}
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.cfg
	if cfg.Floor != 1 || cfg.Ceiling != 1<<20 || cfg.Hysteresis != 3 ||
		cfg.Cooldown != 2 || cfg.BacklogFactor != 3 || cfg.PressureHold != 16 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if p := c.Prior(); p < 1 || p > 1024 {
		t.Fatalf("prior out of range: %d", p)
	}
}

func TestPriorModelSeeded(t *testing.T) {
	// The model prior must prefer small groups while B·T fits the L3 (the
	// Fig. 7 low-UoT advantage at 128 KB / T=20) and never exceed the scan
	// range.
	small := Prior(128<<10, 20)
	if small > 4 {
		t.Fatalf("128KB/T=20 prior = %d, want a small group (<=4)", small)
	}
	for _, bb := range []int{64 << 10, 128 << 10, 512 << 10, 2 << 20} {
		for _, w := range []int{1, 4, 20} {
			if p := Prior(bb, w); p < 1 || p > 1024 {
				t.Fatalf("Prior(%d, %d) = %d out of range", bb, w, p)
			}
		}
	}
	// Degenerate inputs fall back to defaults instead of dividing by zero.
	if p := Prior(0, 0); p < 1 {
		t.Fatalf("Prior(0,0) = %d", p)
	}
}

func TestDisablePriorUsesDefault(t *testing.T) {
	c := New(Config{DefaultUoT: 7, DisablePrior: true})
	if c.Prior() != 7 {
		t.Fatalf("DisablePrior start = %d, want 7", c.Prior())
	}
}

func TestBacklogRaisesWithHysteresis(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(4)
	backlog := Signals{Buffered: 20, Delivered: 4, IntervalNS: 1000}
	if a := c.Observe(e, backlog); a.Dir != Hold {
		t.Fatalf("first backlog vote acted immediately: %+v", a)
	}
	a := c.Observe(e, backlog)
	if a.Dir != Raise || a.UoT != 6 {
		t.Fatalf("second backlog vote: got %+v, want Raise to 6", a)
	}
	// Cooldown: the next observation holds even with a backlog.
	if a := c.Observe(e, backlog); a.Dir != Hold {
		t.Fatalf("cooldown observation acted: %+v", a)
	}
	if got := c.UoT(e); got != 6 {
		t.Fatalf("UoT = %d, want 6", got)
	}
}

func TestStallLowers(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(8)
	// Blocks waited 90% of the interval; consumer service time well under
	// the interval; nothing left buffered.
	starved := Signals{Delivered: 8, StallNS: 900, IntervalNS: 1000, ServiceNS: 100}
	c.Observe(e, starved)
	a := c.Observe(e, starved)
	if a.Dir != Lower || a.UoT != 4 {
		t.Fatalf("got %+v, want Lower to 4", a)
	}
	// At the floor, Lower votes become holds.
	cf := New(testCfg())
	ef := cf.AddEdge(1)
	for i := 0; i < 5; i++ {
		if a := cf.Observe(ef, starved); a.Dir != Hold {
			t.Fatalf("floor edge moved: %+v", a)
		}
	}
}

func TestBusyConsumerDoesNotLower(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(8)
	// Same stall shape, but the consumer was busy the whole interval: the
	// transfers are not what limits it, so refining would only add churn.
	busy := Signals{Delivered: 8, StallNS: 900, IntervalNS: 1000, ServiceNS: 1500}
	for i := 0; i < 6; i++ {
		if a := c.Observe(e, busy); a.Dir != Hold {
			t.Fatalf("observation %d acted: %+v", i, a)
		}
	}
}

func TestQueueSaturationRaises(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(2)
	deep := Signals{Delivered: 2, IntervalNS: 1000, QueueDepth: 64} // 8×Workers=32
	c.Observe(e, deep)
	if a := c.Observe(e, deep); a.Dir != Raise {
		t.Fatalf("saturated queue did not raise: %+v", a)
	}
}

func TestPressureBypassesHysteresis(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(4)
	a := c.Pressure(e)
	if a.Dir != Raise || a.UoT != 8 {
		t.Fatalf("pressure raise: got %+v, want Raise to 8", a)
	}
	// Lower votes stay suppressed while the pressure hold decays (one
	// cooldown observation, then two with the hold still armed).
	starved := Signals{Delivered: 8, StallNS: 900, IntervalNS: 1000, ServiceNS: 100}
	for i := 0; i < 3; i++ {
		if a := c.Observe(e, starved); a.Dir != Hold {
			t.Fatalf("observation %d during pressure hold acted: %+v", i, a)
		}
	}
	// Hold decayed (the last suppressed observation already cast a stall
	// vote): sustained starvation refines again once hysteresis is met.
	if a := c.Observe(e, starved); a.Dir != Lower || a.UoT != 4 {
		t.Fatalf("post-hold starvation did not lower: %+v", a)
	}
}

func TestPressureSnapsPastCeiling(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(64) // at the ceiling already
	a := c.Pressure(e)
	if a.Dir != Snap || a.UoT != Table {
		t.Fatalf("got %+v, want Snap to Table", a)
	}
	// Terminal: every further decision is a hold.
	if a := c.Pressure(e); a.Dir != Hold {
		t.Fatalf("pressure on a Table edge: %+v", a)
	}
	if a := c.Observe(e, Signals{Buffered: 100, Delivered: 1}); a.Dir != Hold {
		t.Fatalf("observe on a Table edge: %+v", a)
	}
	tot := c.Totals()
	if tot.Snaps != 1 {
		t.Fatalf("snaps = %d, want 1", tot.Snaps)
	}
}

func TestFeedbackRaiseClampsAtCeilingWithoutSnap(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(60)
	backlog := Signals{Buffered: 400, Delivered: 60, IntervalNS: 1000}
	for i := 0; i < 12; i++ {
		c.Observe(e, backlog)
	}
	if got := c.UoT(e); got != 64 {
		t.Fatalf("UoT = %d, want clamped to ceiling 64", got)
	}
	if c.Totals().Snaps != 0 {
		t.Fatalf("feedback path snapped to Table: %+v", c.Totals())
	}
}

func TestMixedSignalsDecayStreaks(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(4)
	backlog := Signals{Buffered: 20, Delivered: 4, IntervalNS: 1000}
	quiet := Signals{Delivered: 4, IntervalNS: 1000}
	// raise-vote, decay, raise-vote, raise-vote -> streak reaches 2 only at
	// the fourth observation.
	c.Observe(e, backlog)
	c.Observe(e, quiet)
	c.Observe(e, backlog)
	a := c.Observe(e, backlog)
	if a.Dir != Raise {
		t.Fatalf("got %+v, want Raise on the second consecutive vote", a)
	}
}

// TestDecisionGolden pins the controller's full decision sequence for a
// fixed gauge sequence — the determinism anchor the scheduler's Workers=1
// golden harness builds on. Decisions are pure functions of (config, signal
// sequence); any change to the policy must consciously update this table.
func TestDecisionGolden(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(4)
	seq := []Signals{
		{Delivered: 4, IntervalNS: 1000},                                 // quiet
		{Buffered: 9, Delivered: 4, IntervalNS: 1000},                    // backlog vote 1
		{Buffered: 12, Delivered: 4, IntervalNS: 1000},                   // backlog vote 2 -> raise
		{Buffered: 14, Delivered: 6, IntervalNS: 1000},                   // cooldown
		{Buffered: 13, Delivered: 6, IntervalNS: 1000},                   // backlog vote 1
		{Buffered: 14, Delivered: 6, IntervalNS: 1000},                   // backlog vote 2 -> raise
		{Delivered: 9, IntervalNS: 1000},                                 // cooldown
		{Delivered: 9, StallNS: 800, IntervalNS: 1000, ServiceNS: 100},   // stall vote 1
		{Delivered: 9, StallNS: 900, IntervalNS: 1000, ServiceNS: 50},    // stall vote 2 -> lower
		{Delivered: 4, StallNS: 900, IntervalNS: 1000, ServiceNS: 50},    // cooldown
		{Delivered: 4, StallNS: 100, IntervalNS: 1000, ServiceNS: 900},   // quiet
		{Buffered: 1, Delivered: 4, IntervalNS: 1000, MemPressure: true}, // pressure vote 1
		{Buffered: 1, Delivered: 4, IntervalNS: 1000, MemPressure: true}, // pressure vote 2 -> raise
		{Delivered: 6, StallNS: 950, IntervalNS: 1000, ServiceNS: 10},    // cooldown; hold 3->2
		{Delivered: 6, StallNS: 950, IntervalNS: 1000, ServiceNS: 10},    // pressure hold 2->1
		{Delivered: 6, StallNS: 950, IntervalNS: 1000, ServiceNS: 10},    // hold 1->0; stall vote 1
		{Delivered: 6, StallNS: 950, IntervalNS: 1000, ServiceNS: 10},    // stall vote 2 -> lower
		{Delivered: 3, StallNS: 950, IntervalNS: 1000, ServiceNS: 10},    // cooldown
	}
	want := []Action{
		{Hold, 4}, {Hold, 4}, {Raise, 6}, {Hold, 6}, {Hold, 6}, {Raise, 9},
		{Hold, 9}, {Hold, 9}, {Lower, 4}, {Hold, 4}, {Hold, 4}, {Hold, 4},
		{Raise, 6}, {Hold, 6}, {Hold, 6}, {Hold, 6}, {Lower, 3}, {Hold, 3},
	}
	for i, s := range seq {
		got := c.Observe(e, s)
		if got != want[i] {
			t.Fatalf("step %d: got %s->%d, want %s->%d (signals %+v)",
				i, got.Dir, got.UoT, want[i].Dir, want[i].UoT, s)
		}
	}
	tot := c.Totals()
	if tot.Raises != 3 || tot.Lowers != 2 || tot.Snaps != 0 {
		t.Fatalf("totals = %+v, want 3 raises, 2 lowers, 0 snaps", tot)
	}
	// Replaying the identical sequence on a fresh controller reproduces the
	// identical decisions: the controller holds no hidden clock state.
	c2 := New(testCfg())
	e2 := c2.AddEdge(4)
	for i, s := range seq {
		if got := c2.Observe(e2, s); got != want[i] {
			t.Fatalf("replay step %d diverged: %+v", i, got)
		}
	}
}

func TestDirString(t *testing.T) {
	for d, s := range map[Dir]string{Hold: "hold", Raise: "raise", Lower: "lower", Snap: "snap", Dir(9): "?"} {
		if d.String() != s {
			t.Fatalf("Dir(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
}

func TestFaultedInVotesLower(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(16)
	// Spill fault-ins vote Lower through the usual hysteresis (2 here).
	spilled := Signals{Delivered: 4, FaultedIn: 2, IntervalNS: 1000}
	if a := c.Observe(e, spilled); a.Dir != Hold {
		t.Fatalf("first spilled delivery acted immediately: %v", a.Dir)
	}
	if a := c.Observe(e, spilled); a.Dir != Lower || a.UoT != 8 {
		t.Fatalf("streak of spilled deliveries: got %v/%d, want lower/8", a.Dir, a.UoT)
	}
}

func TestFaultedInOutvotesPressureHold(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(16)
	// A pressure raise arms the Lower suppression...
	if a := c.Pressure(e); a.Dir != Raise || a.UoT != 32 {
		t.Fatalf("pressure: %v/%d", a.Dir, a.UoT)
	}
	// ...but spill fault-ins lower anyway: the raise is what caused the
	// spilling, so the stall-based suppression must not apply. One cooldown
	// observation follows the pressure action, then hysteresis-2 votes.
	spilled := Signals{Delivered: 4, FaultedIn: 1, IntervalNS: 1000, MemPressure: true}
	c.Observe(e, spilled) // cooldown
	c.Observe(e, spilled) // streak 1
	if a := c.Observe(e, spilled); a.Dir != Lower || a.UoT != 16 {
		t.Fatalf("spill under pressure hold: got %v/%d, want lower/16", a.Dir, a.UoT)
	}
}

func TestFaultedInHoldsAtFloor(t *testing.T) {
	c := New(testCfg())
	e := c.AddEdge(1) // already at the floor: nothing finer to try
	spilled := Signals{Delivered: 1, FaultedIn: 1, IntervalNS: 1000}
	for i := 0; i < 5; i++ {
		if a := c.Observe(e, spilled); a.Dir != Hold {
			t.Fatalf("obs %d: %v at the floor", i, a.Dir)
		}
	}
}

func TestPriorWithSpillNeverCoarser(t *testing.T) {
	for _, bb := range []int{64 << 10, 128 << 10, 512 << 10} {
		for _, w := range []int{1, 4, 20} {
			base := Prior(bb, w)
			for _, budget := range []int64{1 << 20, 32 << 20, 1 << 30} {
				sp := PriorWithSpill(bb, w, budget)
				if sp > base {
					t.Fatalf("PriorWithSpill(%d,%d,%d) = %d coarser than Prior = %d",
						bb, w, budget, sp, base)
				}
				if sp < 1 || sp > 1024 {
					t.Fatalf("PriorWithSpill out of range: %d", sp)
				}
			}
		}
	}
	// A tight budget must pin the prior to single blocks: every extra
	// buffered block is a likely device round trip.
	if p := PriorWithSpill(128<<10, 4, 1<<20); p != 1 {
		t.Fatalf("tight-budget spill prior = %d, want 1", p)
	}
	// New() with SpillBudget seeds from the spill-aware scan.
	cfg := testCfg()
	cfg.DisablePrior = false
	cfg.SpillBudget = 1 << 20
	if c := New(cfg); c.Prior() != 1 {
		t.Fatalf("controller spill prior = %d, want 1", c.Prior())
	}
}
