// Package uotctl closes the feedback loop on the paper's central knob: a
// per-edge controller that adjusts each pipelined edge's unit of transfer
// bidirectionally at delivery boundaries, from the gauges the scheduler
// already maintains (buffered blocks vs. the UoT threshold, stall time of
// the drained blocks, consumer work-order service time, scheduler queue
// depth, memory pressure).
//
// The policy is AIMD-shaped with hysteresis: consecutive same-direction
// votes must reach a streak threshold before the controller acts, a cooldown
// follows every action, and the resulting UoT is clamped to [Floor,
// Ceiling]. Raising is the consumer-falling-behind / memory-pressure
// direction (coarser transfers, less scheduling churn — the high-UoT regime
// of Figs. 9/10); lowering is the consumer-starved direction (finer
// transfers so the consumer starts sooner — the low-UoT advantage of
// Fig. 7 at small blocks). The PR3 memory-pressure raise is one input to
// this policy rather than a separate code path: Pressure bypasses
// hysteresis (it is an emergency), doubles like the legacy path did, snaps
// to Table past the ceiling, and suppresses Lower votes for a while so the
// controller does not immediately undo a degradation the scheduler needed.
//
// Cold edges that do not declare a per-edge UoT start at the Section V
// analytical model's prediction (see Prior) instead of the run default, so
// the feedback loop starts near the regime the model expects rather than
// discovering it from scratch.
//
// The controller is driven exclusively from the single scheduler goroutine
// and holds no locks; decisions are pure functions of the signal sequence,
// which is what makes controller behavior pinnable by a golden test.
package uotctl

import (
	"math"

	"repro/internal/costmodel"
)

// Table mirrors core.UoTTable ("the whole intermediate table") without
// importing core; an edge at Table is out of the feedback loop for the rest
// of the run.
const Table = int(^uint(0) >> 1)

// Dir is a controller decision direction.
type Dir int8

// Decision directions.
const (
	// Hold leaves the edge's UoT unchanged.
	Hold Dir = iota
	// Raise coarsens the edge (larger UoT).
	Raise
	// Lower refines the edge (smaller UoT).
	Lower
	// Snap sets the edge to Table — the terminal blocking regime, reached
	// only through the memory-pressure path past the ceiling.
	Snap
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case Hold:
		return "hold"
	case Raise:
		return "raise"
	case Lower:
		return "lower"
	case Snap:
		return "snap"
	}
	return "?"
}

// Config tunes the controller. The zero value gets sensible defaults from
// withDefaults; engine.Execute fills Workers/BlockBytes/DefaultUoT from the
// run's options when left zero.
type Config struct {
	// Workers (T) and BlockBytes (the temporary-block size) parameterize
	// the Section V model prior and the queue-saturation raise signal.
	Workers    int
	BlockBytes int
	// DefaultUoT is the run's static default; it becomes the starting UoT
	// when DisablePrior is set.
	DefaultUoT int

	// Floor and Ceiling clamp feedback decisions. Defaults: 1 and 1<<20
	// (the latter matching the scheduler's pre-snap degradation cap), so
	// feedback raises never silently reach the terminal Table regime —
	// only the memory-pressure path may snap.
	Floor   int
	Ceiling int
	// Hysteresis is how many consecutive same-direction votes an edge needs
	// before the controller acts (default 3). Mixed signals decay streaks
	// instead of resetting them, so a noisy gauge does not lock the edge.
	Hysteresis int
	// Cooldown is how many observations after an action the edge holds
	// regardless of votes (default 2), letting the new operating point show
	// up in the gauges before it is judged.
	Cooldown int
	// BacklogFactor: a delivery that still leaves >= BacklogFactor×UoT
	// blocks buffered votes Raise — the consumer is not keeping up with the
	// producer at this granularity (default 3).
	BacklogFactor int
	// StallFrac: a delivery whose blocks spent more than StallFrac of the
	// inter-delivery interval waiting behind the threshold — while the
	// consumer had idle capacity — votes Lower (default 0.6).
	StallFrac float64
	// PressureHold is how many observations Lower votes stay suppressed
	// after a memory-pressure raise (default 16): the degradation must not
	// be undone while the run is still near its budget.
	PressureHold int
	// DisablePrior starts cold edges at DefaultUoT instead of the
	// analytical-model prior.
	DisablePrior bool
	// SpillBudget, when positive, is the RAM threshold of an attached spill
	// tier: the prior then prices the Section V-C persistent-store costs in
	// (see PriorWithSpill), starting cold edges finer because a deep
	// backlog is no longer just cache misses but device round trips.
	SpillBudget int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 128 << 10
	}
	if c.DefaultUoT <= 0 {
		c.DefaultUoT = 1
	}
	if c.Floor <= 0 {
		c.Floor = 1
	}
	if c.Ceiling <= 0 {
		c.Ceiling = 1 << 20
	}
	if c.Ceiling < c.Floor {
		c.Ceiling = c.Floor
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.BacklogFactor <= 0 {
		c.BacklogFactor = 3
	}
	if c.StallFrac <= 0 {
		c.StallFrac = 0.6
	}
	if c.PressureHold <= 0 {
		c.PressureHold = 16
	}
	return c
}

// Signals is one delivery-boundary observation of an edge, assembled by the
// scheduler from gauges it already tracks.
type Signals struct {
	// Buffered is how many blocks remain buffered on the edge after the
	// delivery; Delivered is how many the delivery handed over.
	Buffered  int
	Delivered int
	// StallNS is how long the drained blocks waited buffered behind the
	// UoT threshold; IntervalNS is the time since the previous delivery
	// (0 on the first).
	StallNS    int64
	IntervalNS int64
	// ServiceNS is the summed consumer work-order service time attributed
	// to this edge since the previous observation — the "did the consumer
	// have idle capacity" side of the Lower vote.
	ServiceNS int64
	// QueueDepth is the scheduler queue depth at the delivery.
	QueueDepth int
	// MemPressure reports whether live temporary bytes exceed the budget.
	MemPressure bool
	// FaultedIn is how many of the delivered blocks had to be read back
	// from the spill tier's disk extents before this delivery could happen.
	FaultedIn int
}

// Action is a controller decision: the direction taken and the edge's UoT
// after applying it (unchanged for Hold).
type Action struct {
	Dir Dir
	UoT int
}

// edge is per-edge controller state.
type edge struct {
	uot          int
	raiseStreak  int
	lowerStreak  int
	cooldown     int
	pressureHold int
}

// Totals counts decisions across all edges (tests and reports).
type Totals struct {
	Raises, Lowers, Holds, Snaps int64
}

// Controller adapts the UoT of registered edges. Not safe for concurrent
// use: it belongs to the scheduler goroutine of one run.
type Controller struct {
	cfg   Config
	prior int
	edges []edge
	tot   Totals
}

// New returns a controller for cfg.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg}
	start := Prior(cfg.BlockBytes, cfg.Workers)
	if cfg.SpillBudget > 0 {
		start = PriorWithSpill(cfg.BlockBytes, cfg.Workers, cfg.SpillBudget)
	}
	if cfg.DisablePrior {
		start = cfg.DefaultUoT
	}
	c.prior = clamp(start, cfg.Floor, cfg.Ceiling)
	return c
}

// Prior returns the model-seeded starting UoT for edges that do not declare
// their own (see the package-level Prior function).
func (c *Controller) Prior() int { return c.prior }

// AddEdge registers an edge starting at start and returns its index.
func (c *Controller) AddEdge(start int) int {
	c.edges = append(c.edges, edge{uot: clamp(start, c.cfg.Floor, Table)})
	return len(c.edges) - 1
}

// UoT returns edge i's current UoT.
func (c *Controller) UoT(i int) int { return c.edges[i].uot }

// Totals returns the decision counts so far.
func (c *Controller) Totals() Totals { return c.tot }

// Observe feeds one delivery-boundary observation for edge i and returns the
// decision. Edges at Table are terminal and always hold.
func (c *Controller) Observe(i int, s Signals) Action {
	e := &c.edges[i]
	if e.uot == Table {
		return c.hold(e)
	}
	if s.MemPressure {
		e.pressureHold = c.cfg.PressureHold
	} else if e.pressureHold > 0 {
		e.pressureHold--
	}
	if e.cooldown > 0 {
		e.cooldown--
		return c.hold(e)
	}
	switch c.vote(e, s) {
	case Raise:
		e.raiseStreak++
		e.lowerStreak = 0
	case Lower:
		e.lowerStreak++
		e.raiseStreak = 0
	default:
		if e.raiseStreak > 0 {
			e.raiseStreak--
		}
		if e.lowerStreak > 0 {
			e.lowerStreak--
		}
	}
	if e.raiseStreak >= c.cfg.Hysteresis {
		return c.raise(e)
	}
	if e.lowerStreak >= c.cfg.Hysteresis {
		return c.lower(e)
	}
	return c.hold(e)
}

// Pressure is the scheduler's memory-degradation entry point for edge i: an
// emergency that bypasses hysteresis and cooldown, doubles the UoT (the PR3
// semantics), snaps to Table past the ceiling, and suppresses Lower votes
// for the next PressureHold observations.
func (c *Controller) Pressure(i int) Action {
	e := &c.edges[i]
	e.pressureHold = c.cfg.PressureHold
	if e.uot == Table {
		return c.hold(e)
	}
	if e.uot >= c.cfg.Ceiling {
		e.uot = Table
		c.afterAct(e)
		c.tot.Snaps++
		return Action{Dir: Snap, UoT: Table}
	}
	e.uot *= 2
	c.afterAct(e)
	c.tot.Raises++
	return Action{Dir: Raise, UoT: e.uot}
}

// vote classifies one observation. Raise wins ties: degrading to coarser
// transfers is recoverable, starving the consumer of a backlogged edge is
// not.
func (c *Controller) vote(e *edge, s Signals) Dir {
	// Coarser: memory pressure (fewer, larger transfers reduce scheduling
	// churn while consumers drain), a backlog the consumer is not clearing
	// at this granularity, or a scheduler queue saturated far past the
	// worker count (the heavy-concurrency regime of Figs. 9/10, where
	// per-delivery overhead dominates).
	// Finest first: delivered blocks that had to be faulted in from disk
	// mean this edge's backlog outgrew RAM, and Section V-C's answer is to
	// pipeline — every buffered block is a potential device round trip, so
	// the spill-rate gauge outvotes even memory pressure (a raise would
	// deepen the very backlog that is spilling). Deliberately not gated by
	// pressureHold: the pressure raise is usually what caused the spill.
	if s.FaultedIn > 0 && e.uot > c.cfg.Floor {
		return Lower
	}
	if s.MemPressure {
		return Raise
	}
	if s.Buffered >= c.cfg.BacklogFactor*e.uot {
		return Raise
	}
	if s.QueueDepth >= 8*c.cfg.Workers {
		return Raise
	}
	// Finer: the drained blocks spent most of the inter-delivery interval
	// waiting behind the threshold while the consumer had idle capacity
	// (service time below the interval) and no backlog remains — the
	// consumer could have started sooner at a smaller UoT. Suppressed
	// after a pressure raise.
	if e.pressureHold > 0 || s.Delivered == 0 || e.uot <= c.cfg.Floor {
		return Hold
	}
	if s.Buffered < e.uot && s.IntervalNS > 0 &&
		float64(s.StallNS) > c.cfg.StallFrac*float64(s.IntervalNS) &&
		s.ServiceNS <= s.IntervalNS {
		return Lower
	}
	return Hold
}

// raise is the additive-ish feedback step: +50% (at least +1), clamped to
// the ceiling. Feedback never snaps to Table — only Pressure may.
func (c *Controller) raise(e *edge) Action {
	step := e.uot / 2
	if step < 1 {
		step = 1
	}
	nu := e.uot + step
	if nu > c.cfg.Ceiling {
		nu = c.cfg.Ceiling
	}
	if nu == e.uot {
		return c.hold(e)
	}
	e.uot = nu
	c.afterAct(e)
	c.tot.Raises++
	return Action{Dir: Raise, UoT: nu}
}

// lower is the multiplicative decrease: halve, clamped to the floor.
func (c *Controller) lower(e *edge) Action {
	nu := e.uot / 2
	if nu < c.cfg.Floor {
		nu = c.cfg.Floor
	}
	if nu == e.uot {
		return c.hold(e)
	}
	e.uot = nu
	c.afterAct(e)
	c.tot.Lowers++
	return Action{Dir: Lower, UoT: nu}
}

func (c *Controller) hold(e *edge) Action {
	c.tot.Holds++
	return Action{Dir: Hold, UoT: e.uot}
}

// afterAct resets streaks and arms the post-action cooldown.
func (c *Controller) afterAct(e *edge) {
	e.raiseStreak, e.lowerStreak = 0, 0
	e.cooldown = c.cfg.Cooldown
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Prior consults the Section V analytical model for a cold edge's starting
// UoT: it scans power-of-two block-group sizes and picks the one minimizing
// the modeled per-byte transfer overhead, blending the low- and high-UoT
// regime costs by p1' = min(1, 2BT/|L3|) — the model's own regime-switch
// probability. Small B·T relative to the L3 keeps the low-UoT cost dominant
// (pipelining wins, Fig. 7 at 128 KB); once B·T outgrows the cache the
// blend saturates and larger groups stop paying, matching the paper's
// "indistinguishable at 2 MB" observation.
func Prior(blockBytes, workers int) int {
	return priorScan(blockBytes, workers, 0)
}

// PriorWithSpill is Prior with the Section V-C persistent store priced in:
// each candidate group size additionally pays the expected spill penalty
// (costmodel.SpillCost — eviction probability under the RAM budget times the
// device round trip). Large groups that the in-memory model tolerates become
// expensive once they risk touching the store, so the spill-aware prior is
// never coarser than the in-memory one — the paper's "with a persistent
// store, pipelining wins by orders of magnitude" translated into a starting
// point.
func PriorWithSpill(blockBytes, workers int, spillBudget int64) int {
	return priorScan(blockBytes, workers, spillBudget)
}

func priorScan(blockBytes, workers int, spillBudget int64) int {
	if blockBytes <= 0 {
		blockBytes = 128 << 10
	}
	if workers <= 0 {
		workers = 1
	}
	best, bestCost := 1, math.Inf(1)
	for blocks := 1; blocks <= 1024; blocks <<= 1 {
		p := costmodel.Default(int64(blocks)*int64(blockBytes), workers)
		p.NProbeIn = 1
		w := p.P1Prime()
		cost := ((1-w)*p.LowRegime().LowUoTExtra() + w*p.HighRegime().HighUoTExtra()) /
			float64(p.B)
		if spillBudget > 0 {
			cost += costmodel.SpillCost(p.B, workers, spillBudget) / float64(p.B)
		}
		if cost < bestCost {
			best, bestCost = blocks, cost
		}
	}
	return best
}
