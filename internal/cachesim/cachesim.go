// Package cachesim models the memory hierarchy costs that the paper's
// analytical model (Section V) is built on: L3-residency of inter-operator
// blocks, amortized sequential reads under hardware prefetching, random
// probe misses against large hash tables, write-backs of materialized
// output, and instruction-cache misses on work-order context switches.
//
// Go cannot toggle the hardware prefetcher (an MSR write) and its GC
// obscures nanosecond-scale latencies, so experiments that depend on those
// effects (Fig. 5, Table VI) run against this simulator instead: work orders
// report access summaries and accumulate deterministic simulated ticks
// (1 tick = 1 ns of modeled time). The shape of the results — hot beats
// cold, prefetching helps sequential scans and hurts mixed random/sequential
// operators — is a property of the cost structure, not of tuned constants.
package cachesim

import (
	"container/list"
	"sync"
)

// Params holds the hardware model. Costs are ticks per 64-byte line unless
// noted. Defaults approximate the paper's Haswell EP platform (Table V).
type Params struct {
	L3Bytes   int64 // last-level cache capacity
	LineBytes int64 // cache line size

	HitL3  int64 // sequential or random read served from L3 (R_L3 per line)
	MissL3 int64 // read served from memory without prefetch help (M_L3)
	ARLine int64 // amortized per-line cost of a prefetched sequential read (AR_L3)
	WBLine int64 // write-back cost per line for materialized output (W_mem)

	// ICMiss is the instruction-cache penalty of one work-order context
	// switch (the IC term of Section V).
	ICMiss int64

	// PrefetchRampLines is how many lines of a cold sequential stream pay
	// full MissL3 before the stream prefetcher locks on.
	PrefetchRampLines int64

	// WastedPrefetchNum/Den express the extra cost per *random* access when
	// the prefetcher is enabled: speculative next-line fetches on a random
	// stream waste bandwidth (the Table VI probe/build penalty). The extra
	// cost is MissL3 * Num / Den per random access.
	WastedPrefetchNum int64
	WastedPrefetchDen int64

	// ContentionNum/Den model memory contention on random accesses: each
	// random miss is inflated by (Den + (T-1)·Num)/Den for T concurrent
	// threads. Sequential prefetched streams use bandwidth efficiently and
	// L3 hits never leave the chip, so neither contends. This is the
	// DeWitt/Gray "interference" the paper invokes to explain the poor
	// scalability of probes against large hash tables (Section IV-C4,
	// Fig. 9).
	ContentionNum int64
	ContentionDen int64
}

// Default returns the Haswell-like model used throughout the experiments:
// 25 MB L3, 64 B lines, ~15 ns L3 hit, ~90 ns memory latency, ~8 ns
// amortized prefetched line, ~25 ns write-back per line, 2 µs per
// instruction-cache context switch.
func Default() Params {
	return Params{
		L3Bytes:           25 << 20,
		LineBytes:         64,
		HitL3:             15,
		MissL3:            90,
		ARLine:            8,
		WBLine:            25,
		ICMiss:            2000,
		PrefetchRampLines: 16,
		WastedPrefetchNum: 2,
		WastedPrefetchDen: 5,
		ContentionNum:     1,
		ContentionDen:     4,
	}
}

// Sim is a shared memory-hierarchy simulator: a byte-capacity LRU over block
// identities answers "is this unit of transfer still hot in L3?", and charge
// methods convert access summaries to ticks. All methods are safe for
// concurrent use; charges are returned to the caller (work orders accumulate
// them locally) rather than summed globally, so per-task simulated times are
// exact.
type Sim struct {
	p        Params
	prefetch bool
	threads  int64

	mu    sync.Mutex
	res   map[any]*list.Element // resident blocks
	order *list.List            // front = most recent
	used  int64

	hotReads  int64 // ConsumedSeq calls served hot
	coldReads int64 // ConsumedSeq calls served cold
}

type resEntry struct {
	key   any
	bytes int64
}

// New returns a simulator with the prefetcher enabled and one thread.
func New(p Params) *Sim {
	return &Sim{p: p, prefetch: true, threads: 1, res: make(map[any]*list.Element), order: list.New()}
}

// SetThreads declares how many threads contend for memory bandwidth; costs
// that reach memory inflate accordingly (see Params.ContentionNum).
func (s *Sim) SetThreads(t int) {
	if t < 1 {
		t = 1
	}
	s.mu.Lock()
	s.threads = int64(t)
	s.mu.Unlock()
}

// memCost inflates a memory-level cost by the contention factor for the
// current thread count. Caller need not hold s.mu (threads is read under it).
func (s *Sim) memCost(base int64) int64 {
	s.mu.Lock()
	t := s.threads
	s.mu.Unlock()
	if t <= 1 || s.p.ContentionDen == 0 {
		return base
	}
	return base * (s.p.ContentionDen + (t-1)*s.p.ContentionNum) / s.p.ContentionDen
}

// SetPrefetch enables or disables the modeled hardware prefetcher (the MSR
// toggle of Section IV-D).
func (s *Sim) SetPrefetch(on bool) {
	s.mu.Lock()
	s.prefetch = on
	s.mu.Unlock()
}

// Prefetch reports whether the modeled prefetcher is on.
func (s *Sim) Prefetch() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefetch
}

// Params returns the hardware model.
func (s *Sim) Params() Params { return s.p }

func (s *Sim) lines(bytes int64) int64 {
	return (bytes + s.p.LineBytes - 1) / s.p.LineBytes
}

// touch marks key resident with the given footprint, evicting LRU entries
// beyond L3 capacity. Caller holds s.mu.
func (s *Sim) touch(key any, bytes int64) {
	if e, ok := s.res[key]; ok {
		ent := e.Value.(*resEntry)
		s.used += bytes - ent.bytes
		ent.bytes = bytes
		s.order.MoveToFront(e)
	} else {
		s.res[key] = s.order.PushFront(&resEntry{key: key, bytes: bytes})
		s.used += bytes
	}
	for s.used > s.p.L3Bytes {
		back := s.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*resEntry)
		if ent.key == key && s.order.Len() == 1 {
			break // a single block larger than L3 stays "resident"
		}
		s.order.Remove(back)
		delete(s.res, ent.key)
		s.used -= ent.bytes
	}
}

// hot reports and refreshes residency. Caller holds s.mu.
func (s *Sim) hot(key any) bool {
	e, ok := s.res[key]
	if ok {
		s.order.MoveToFront(e)
	}
	return ok
}

// retainable reports whether a block of the given size survives in L3 under
// T concurrent streams: each worker keeps roughly an input and an output
// unit live, so residency requires 2·B·T ≤ |L3| — the paper's p1' =
// min(1, 2BT/|L3|) turned into a deterministic rule. Caller holds s.mu.
func (s *Sim) retainable(bytes int64) bool {
	return 2*bytes*s.threads <= s.p.L3Bytes
}

// retain records key as resident and applies the eviction pressure of the
// T-1 peer workers writing blocks of the same size concurrently (the
// simulator runs work orders one at a time on this host, so concurrency has
// to be modeled, not observed). Caller holds s.mu.
func (s *Sim) retain(key any, bytes int64) {
	if !s.retainable(bytes) {
		s.evictLocked(key)
		return
	}
	s.touch(key, bytes)
	target := s.p.L3Bytes - (s.threads-1)*bytes
	if target < 0 {
		target = 0
	}
	for s.used > target && s.order.Len() > 1 {
		back := s.order.Back()
		ent := back.Value.(*resEntry)
		if ent.key == key {
			break
		}
		s.order.Remove(back)
		delete(s.res, ent.key)
		s.used -= ent.bytes
	}
}

func (s *Sim) evictLocked(key any) {
	if e, ok := s.res[key]; ok {
		ent := e.Value.(*resEntry)
		s.order.Remove(e)
		delete(s.res, key)
		s.used -= ent.bytes
	}
}

// Produced records that a work order materialized `bytes` of output into
// block key and returns the write cost. Freshly written blocks are hot: the
// write-back to memory is *not* charged here — it is charged to whichever
// consumer later finds the block cold (fold of W_mem into the cold-read
// path, mirroring how Section V attributes W_mem only to the high-UoT case).
func (s *Sim) Produced(key any, bytes int64) int64 {
	s.mu.Lock()
	s.retain(key, bytes)
	s.mu.Unlock()
	return s.lines(bytes) * s.p.HitL3
}

// ConsumedSeq records that a work order sequentially read `bytes` of block
// key and returns the read cost. A hot block costs HitL3 per line. A cold
// block pays the deferred write-back (WBLine) plus the memory read: with the
// prefetcher on, a short ramp at MissL3 then ARLine per line; with it off,
// MissL3 for every line.
func (s *Sim) ConsumedSeq(key any, bytes int64) int64 {
	s.mu.Lock()
	wasHot := s.hot(key)
	pf := s.prefetch
	s.retain(key, bytes)
	if wasHot {
		s.hotReads++
	} else {
		s.coldReads++
	}
	s.mu.Unlock()

	n := s.lines(bytes)
	if wasHot {
		return n * s.p.HitL3
	}
	cost := n * s.p.WBLine // deferred write-back of the producer's output
	if pf {
		ramp := s.p.PrefetchRampLines
		if ramp > n {
			ramp = n
		}
		cost += ramp*s.p.MissL3 + (n-ramp)*s.p.ARLine
	} else {
		cost += n * s.p.MissL3
	}
	return cost
}

// ScannedBase records a sequential scan of `bytes` of base-table data (never
// hot across a whole run at realistic scale) and returns the cost. The
// prefetcher matters here exactly as for cold intermediate blocks, minus the
// write-back term.
func (s *Sim) ScannedBase(bytes int64) int64 {
	s.mu.Lock()
	pf := s.prefetch
	s.mu.Unlock()
	n := s.lines(bytes)
	if pf {
		ramp := s.p.PrefetchRampLines
		if ramp > n {
			ramp = n
		}
		return ramp*s.p.MissL3 + (n-ramp)*s.p.ARLine
	}
	return n * s.p.MissL3
}

// RandomProbes charges n random accesses against a structure of structBytes
// (a hash table). The L3 hit probability is min(1, L3/structBytes); random
// accesses disrupt the prefetcher, and when the prefetcher is on, each
// likely-missing access additionally wastes bandwidth on useless next-line
// prefetches (the Table VI effect).
func (s *Sim) RandomProbes(n int64, structBytes int64) int64 {
	if n == 0 {
		return 0
	}
	s.mu.Lock()
	pf := s.prefetch
	s.mu.Unlock()

	hitNum, hitDen := s.p.L3Bytes, structBytes
	if hitNum > hitDen {
		hitNum = hitDen
	}
	if hitDen == 0 {
		hitNum, hitDen = 1, 1
	}
	hits := n * hitNum / hitDen
	misses := n - hits
	missCost := misses * s.p.MissL3
	if pf {
		missCost += misses * s.p.MissL3 * s.p.WastedPrefetchNum / s.p.WastedPrefetchDen
	}
	return hits*s.p.HitL3 + s.memCost(missCost)
}

// ContextSwitch charges one work-order context switch (IC term).
func (s *Sim) ContextSwitch() int64 { return s.p.ICMiss }

// Evict removes a block from the residency set (its memory was released).
func (s *Sim) Evict(key any) {
	s.mu.Lock()
	if e, ok := s.res[key]; ok {
		ent := e.Value.(*resEntry)
		s.order.Remove(e)
		delete(s.res, key)
		s.used -= ent.bytes
	}
	s.mu.Unlock()
}

// ResidentBytes returns the bytes currently tracked as L3-resident.
func (s *Sim) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Reads reports how many ConsumedSeq calls were served hot vs. cold.
func (s *Sim) Reads() (hot, cold int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hotReads, s.coldReads
}

// IsHot reports (without refreshing) whether key is resident.
func (s *Sim) IsHot(key any) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.res[key]
	return ok
}
