package cachesim

import (
	"sync"
	"testing"
)

func small() Params {
	p := Default()
	p.L3Bytes = 1 << 20 // 1 MB so eviction is easy to trigger
	return p
}

func TestHotBeatsCold(t *testing.T) {
	s := New(small())
	const sz = 128 << 10
	s.Produced("b1", sz)
	hot := s.ConsumedSeq("b1", sz)

	s2 := New(small())
	cold := s2.ConsumedSeq("b1", sz)
	if hot >= cold {
		t.Fatalf("hot read (%d) should be cheaper than cold read (%d)", hot, cold)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(small())
	// Fill beyond 1 MB: 10 blocks of 128 KB.
	for i := 0; i < 10; i++ {
		s.Produced(i, 128<<10)
	}
	if s.ResidentBytes() > small().L3Bytes {
		t.Fatalf("resident %d exceeds capacity", s.ResidentBytes())
	}
	if s.IsHot(0) || s.IsHot(1) {
		t.Fatal("oldest blocks should be evicted")
	}
	if !s.IsHot(9) {
		t.Fatal("newest block should be hot")
	}
}

func TestOversizeBlockNotRetained(t *testing.T) {
	s := New(small())
	s.Produced("huge", 4<<20) // 2*4MB > 1MB L3: cannot stay resident
	if s.IsHot("huge") {
		t.Fatal("a block that cannot fit under 2B <= L3 must not be retained")
	}
}

func TestConcurrencyCrowdingMatchesP1Prime(t *testing.T) {
	// p1' = min(1, 2BT/L3): with T=20 and B=128KB over an 8MB cache,
	// 2BT = 5MB <= 8MB, so a freshly produced block stays hot; with
	// B=2MB, 2BT = 80MB > 8MB and the block must be cold for its consumer.
	p := Default()
	p.L3Bytes = 8 << 20
	s := New(p)
	s.SetThreads(20)
	s.Produced("small", 128<<10)
	if !s.IsHot("small") {
		t.Fatal("128KB block with T=20 should survive (2BT < L3)")
	}
	s.Produced("big", 2<<20)
	if s.IsHot("big") {
		t.Fatal("2MB block with T=20 must be evicted (2BT > L3)")
	}
	// And the same producer/consumer pair at T=1 keeps the 2MB block hot.
	s1 := New(p)
	s1.Produced("big", 2<<20)
	if !s1.IsHot("big") {
		t.Fatal("2MB block with T=1 should survive")
	}
}

func TestPeerPressureEvictsOlderBlocks(t *testing.T) {
	p := Default()
	p.L3Bytes = 8 << 20
	s := New(p)
	s.SetThreads(20)
	// Peers writing 19 * 128KB per production step crowd out ~5.6MB of
	// older blocks: after a long stream, only the newest few remain.
	for i := 0; i < 100; i++ {
		s.Produced(i, 128<<10)
	}
	if s.IsHot(0) || s.IsHot(50) {
		t.Fatal("old blocks should be crowded out under concurrency pressure")
	}
	if !s.IsHot(99) {
		t.Fatal("the newest block should remain hot")
	}
}

func TestPrefetchHelpsSequential(t *testing.T) {
	const sz = 2 << 20
	on := New(Default())
	off := New(Default())
	off.SetPrefetch(false)
	if a, b := on.ScannedBase(sz), off.ScannedBase(sz); a >= b {
		t.Fatalf("prefetch-on scan (%d) should beat prefetch-off (%d)", a, b)
	}
	// Same for cold intermediate reads.
	if a, b := on.ConsumedSeq("x", sz), off.ConsumedSeq("y", sz); a >= b {
		t.Fatalf("prefetch-on cold read (%d) should beat prefetch-off (%d)", a, b)
	}
}

func TestPrefetchHurtsRandomProbes(t *testing.T) {
	on := New(Default())
	off := New(Default())
	off.SetPrefetch(false)
	const n, htBytes = 100000, 100 << 20 // hash table much bigger than L3
	if a, b := on.RandomProbes(n, htBytes), off.RandomProbes(n, htBytes); a <= b {
		t.Fatalf("prefetch-on probes (%d) should cost more than off (%d)", a, b)
	}
}

func TestRandomProbeHitProbability(t *testing.T) {
	s := New(Default())
	const n = 10000
	smallHT := s.RandomProbes(n, 1<<20) // fits in L3 -> all hits
	bigHT := s.RandomProbes(n, 1<<30)   // 1 GB -> nearly all misses
	if smallHT >= bigHT {
		t.Fatalf("small table probes (%d) should be cheaper than big (%d)", smallHT, bigHT)
	}
	// Fully-resident structure: pure L3 hits.
	if want := int64(n) * s.Params().HitL3; smallHT != want {
		t.Fatalf("resident probes = %d, want %d", smallHT, want)
	}
}

func TestColdReadIncludesWriteback(t *testing.T) {
	p := Default()
	s := New(p)
	const sz = 1 << 20
	cold := s.ConsumedSeq("b", sz)
	scan := New(p).ScannedBase(sz)
	if cold-scan != s.lines(sz)*p.WBLine {
		t.Fatalf("cold read should add exactly the write-back: %d - %d != %d",
			cold, scan, s.lines(sz)*p.WBLine)
	}
}

func TestEvictRemovesResidency(t *testing.T) {
	s := New(Default())
	s.Produced("b", 1<<20)
	s.Evict("b")
	if s.IsHot("b") || s.ResidentBytes() != 0 {
		t.Fatal("evict should clear residency")
	}
}

func TestContextSwitchCost(t *testing.T) {
	s := New(Default())
	if s.ContextSwitch() != Default().ICMiss {
		t.Fatal("context switch cost wrong")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		s := New(small())
		var total int64
		for i := 0; i < 50; i++ {
			total += s.Produced(i, 64<<10)
			total += s.ConsumedSeq(i, 64<<10)
			total += s.RandomProbes(1000, 8<<20)
		}
		return total
	}
	if run() != run() {
		t.Fatal("simulator must be deterministic")
	}
}

func TestConcurrentUseDoesNotRace(t *testing.T) {
	s := New(small())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Produced([2]int{w, i}, 32<<10)
				s.ConsumedSeq([2]int{w, i}, 32<<10)
				s.RandomProbes(10, 1<<20)
			}
		}(w)
	}
	wg.Wait()
	if s.ResidentBytes() > small().L3Bytes {
		t.Fatal("capacity violated under concurrency")
	}
}

func TestZeroWork(t *testing.T) {
	s := New(Default())
	if s.RandomProbes(0, 1<<20) != 0 {
		t.Fatal("zero probes should be free")
	}
	if s.ConsumedSeq("e", 0) != 0 {
		t.Fatal("zero-byte read should be free")
	}
}
