// Package sorter implements the vectorized sort kernels behind exec.SortOp:
// fixed-width memcmp-ordered normalized keys, per-run sorting (LSD radix for
// single-word keys, branch-light comparison sort otherwise), a k-way
// loser-tree merge with range partitioning for parallel merge work orders,
// and a bounded top-k heap for ORDER BY ... LIMIT.
//
// The normalized-key idea (see "Fine-Tuning Data Structures for Analytical
// Query Processing") is to encode every ORDER BY term into one or two uint64
// words whose unsigned comparison matches the term's value order — including
// descending terms (bitwise inversion) and NULLs (a leading validity word).
// Sorting then touches only (word..., rowID) pairs: no Datum boxing, no
// per-comparison type dispatch, and ties resolve by row id, which makes every
// sort in this package a deterministic total order.
//
// Char terms wider than 8 bytes keep only a big-endian prefix word and are
// "approximate": equal prefixes are resolved through a Tie callback that
// compares the full source values. Layout.Exact reports whether a term list
// is free of approximate terms; only exact layouts support range
// partitioning (Splitters/LowerBound).
package sorter

import "math"

// TermType is the value type of one ORDER BY term.
type TermType uint8

// Term value types.
const (
	// Int64 is a signed 64-bit integer term.
	Int64 TermType = iota
	// Date is a day-count term (widened to int64 before encoding).
	Date
	// Float64 is an IEEE-754 double term.
	Float64
	// Bytes is a fixed-width byte-string term; Width > 8 makes the term
	// approximate (prefix word + tie-break).
	Bytes
)

// Term describes one ORDER BY key for normalized-key encoding.
type Term struct {
	Type TermType
	Desc bool
	// Width is the fixed column width of a Bytes term.
	Width int
	// Nullable terms are encoded with a leading validity word, so NULLs
	// order exactly (first ascending, last descending) without stealing a
	// value bit.
	Nullable bool
}

// Layout is the compiled normalized-key layout of a term list: how many
// uint64 words one row's key occupies and where each term's words start.
type Layout struct {
	Terms []Term
	// Words is the key width in uint64 words per row.
	Words int
	// Exact reports that word comparison alone is the full term order (no
	// approximate byte-string prefixes).
	Exact bool

	starts []int
	approx []bool
}

// NewLayout compiles a term list.
func NewLayout(terms []Term) Layout {
	l := Layout{Terms: terms, Exact: true,
		starts: make([]int, len(terms)), approx: make([]bool, len(terms))}
	for i, t := range terms {
		l.starts[i] = l.Words
		l.Words++
		if t.Nullable {
			l.Words++ // validity word precedes the value word
		}
		if t.Type == Bytes && t.Width > 8 {
			l.approx[i] = true
			l.Exact = false
		}
	}
	return l
}

// TermStart returns the index of term t's first key word.
func (l *Layout) TermStart(t int) int { return l.starts[t] }

// Approx reports whether term t needs a tie-break on equal words.
func (l *Layout) Approx(t int) bool { return l.approx[t] }

// NormInt64 maps a signed integer to a uint64 with the same order.
func NormInt64(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// NormFloat64 maps a double to a uint64 with the same order: positive values
// get the sign bit set, negative values are wholly inverted (the standard
// IEEE-754 total-order flip). -0.0 orders before +0.0 and NaNs above +Inf;
// neither occurs in engine data.
func NormFloat64(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits>>63 != 0 {
		return ^bits
	}
	return bits | (1 << 63)
}

// NormBytes packs the first 8 bytes of b big-endian (zero-padded), so word
// order equals bytewise order of the zero-padded value. For fixed-width
// strings of width <= 8 this is the exact order; wider strings order by this
// prefix and need a tie-break on equal words.
func NormBytes(b []byte) uint64 {
	n := len(b)
	if n > 8 {
		n = 8
	}
	var w uint64
	for i := 0; i < n; i++ {
		w |= uint64(b[i]) << (56 - 8*i)
	}
	return w
}

// put writes term t's words for one row into keys at the row's stride slot,
// applying null and descending transforms.
func (l *Layout) put(t, row int, value uint64, null bool, keys []uint64) {
	term := l.Terms[t]
	at := row*l.Words + l.starts[t]
	if term.Nullable {
		valid := uint64(1)
		if null {
			valid, value = 0, 0
		}
		if term.Desc {
			valid = ^valid
		}
		keys[at] = valid
		at++
	}
	if term.Desc {
		value = ^value
	}
	keys[at] = value
}

// EncodeInt64 writes term t's normalized words for src (one value per row)
// into the row-major key array keys (stride Layout.Words). nulls may be nil;
// a true entry encodes NULL regardless of the source value. Date terms
// encode their widened day counts the same way.
func (l *Layout) EncodeInt64(t int, src []int64, nulls []bool, keys []uint64) {
	for i, v := range src {
		l.put(t, i, NormInt64(v), nulls != nil && nulls[i], keys)
	}
}

// EncodeFloat64 writes term t's normalized words for a float64 column.
func (l *Layout) EncodeFloat64(t int, src []float64, nulls []bool, keys []uint64) {
	for i, v := range src {
		l.put(t, i, NormFloat64(v), nulls != nil && nulls[i], keys)
	}
}

// EncodeBytes writes term t's normalized prefix words for a byte-string
// column; src returns row i's raw fixed-width bytes.
func (l *Layout) EncodeBytes(t int, n int, src func(row int) []byte, nulls []bool, keys []uint64) {
	for i := 0; i < n; i++ {
		if nulls != nil && nulls[i] {
			l.put(t, i, 0, true, keys)
			continue
		}
		l.put(t, i, NormBytes(src(i)), false, keys)
	}
}

// Tie resolves approximate terms: Compare orders the full source values of
// term for two rows, identified by a caller-meaningful run index and a row
// id, returning <0, 0, or >0 in the term's direction (descending terms must
// return the inverted comparison). Exact layouts never consult it, so nil is
// a valid Tie for them.
type Tie interface {
	Compare(term int, runA int, rowA int32, runB int, rowB int32) int
}

// CompareRowKeys orders two rows' key tuples under the layout, walking terms
// in priority order and resolving approximate terms through tie. ka and kb
// index the first word of each row's tuple in their key arrays.
func (l *Layout) CompareRowKeys(keysA []uint64, ka int, runA int, rowA int32,
	keysB []uint64, kb int, runB int, rowB int32, tie Tie) int {
	if l.Exact {
		for w := 0; w < l.Words; w++ {
			a, b := keysA[ka+w], keysB[kb+w]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	for t := range l.Terms {
		w0 := l.starts[t]
		wn := l.Words
		if t+1 < len(l.Terms) {
			wn = l.starts[t+1]
		}
		for w := w0; w < wn; w++ {
			a, b := keysA[ka+w], keysB[kb+w]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		}
		if l.approx[t] {
			if c := tie.Compare(t, runA, rowA, runB, rowB); c != 0 {
				return c
			}
		}
	}
	return 0
}
