package sorter

import "sort"

// Run is one sorted run produced by run generation: the normalized key
// tuples in sorted order (row-major, stride Layout.Words) and the matching
// source row ids. Seq is the run's arrival sequence, used as the first merge
// tie-break so the k-way merge reproduces global arrival order on equal keys.
type Run struct {
	Keys []uint64
	Rows []int32
	Seq  int32
}

// Len returns the run's row count.
func (r *Run) Len() int { return len(r.Rows) }

// Merge is a k-way loser-tree merge over sorted runs, optionally restricted
// to a per-run [lo, hi) range (range-partitioned parallel merge). Winners
// pop in (key tuple, run Seq, row position) order: key ties resolve to the
// earlier run, and within a run rows are already in arrival order, so the
// merged stream is exactly the stable reference order.
//
// The loser tree keeps one internal node per run holding the loser of that
// subtree's last replay; replacing the winner replays a single leaf-to-root
// path (log k comparisons) instead of the 2 log k of a binary heap.
type Merge struct {
	runs []Run
	l    *Layout
	tie  Tie
	pos  []int
	end  []int
	tree []int32 // tree[0] is the champion; tree[1:] hold subtree losers
	k    int
}

// NewMerge builds a merge over runs. lo and hi give each run's half-open row
// range; nil means the full run. The run index passed to tie is the index in
// runs, so callers must align their tie state with that order.
func NewMerge(runs []Run, l *Layout, tie Tie, lo, hi []int) *Merge {
	k := len(runs)
	m := &Merge{
		runs: runs, l: l, tie: tie, k: k,
		pos:  make([]int, k),
		end:  make([]int, k),
		tree: make([]int32, maxInt(k, 1)),
	}
	for i := range m.tree {
		m.tree[i] = -1
	}
	for r := 0; r < k; r++ {
		if lo != nil {
			m.pos[r] = lo[r]
		}
		if hi != nil {
			m.end[r] = hi[r]
		} else {
			m.end[r] = runs[r].Len()
		}
	}
	for r := k - 1; r >= 0; r-- {
		m.adjust(r)
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// exhausted reports whether run r has no rows left in its range.
func (m *Merge) exhausted(r int) bool { return m.pos[r] >= m.end[r] }

// beats reports whether run a's current row orders before run b's. The -1
// init sentinel wins every match — that is what parks the first real
// contestant at each internal node as a "loser" until its sibling subtree's
// winner arrives — and exhausted runs lose to every live one.
func (m *Merge) beats(a, b int) bool {
	if a < 0 {
		return true
	}
	if b < 0 {
		return false
	}
	if m.exhausted(a) {
		return false
	}
	if m.exhausted(b) {
		return true
	}
	ra, rb := &m.runs[a], &m.runs[b]
	pa, pb := m.pos[a], m.pos[b]
	c := m.l.CompareRowKeys(
		ra.Keys, pa*m.l.Words, a, ra.Rows[pa],
		rb.Keys, pb*m.l.Words, b, rb.Rows[pb], m.tie)
	if c != 0 {
		return c < 0
	}
	return ra.Seq < rb.Seq
}

// adjust replays run r's leaf-to-root path, leaving losers in the internal
// nodes and the new champion in tree[0].
func (m *Merge) adjust(r int) {
	winner := r
	for node := (r + m.k) / 2; node > 0; node /= 2 {
		if m.beats(int(m.tree[node]), winner) {
			m.tree[node], winner = int32(winner), int(m.tree[node])
		}
	}
	m.tree[0] = int32(winner)
}

// Next pops the globally smallest remaining row, returning its run index and
// source row id; ok is false once all ranges are exhausted.
func (m *Merge) Next() (run int, row int32, ok bool) {
	w := int(m.tree[0])
	if w < 0 || m.exhausted(w) {
		return 0, 0, false
	}
	row = m.runs[w].Rows[m.pos[w]]
	m.pos[w]++
	m.adjust(w)
	return w, row, true
}

// Splitters samples the runs' key tuples and returns up to parts-1 distinct
// boundary tuples partitioning the merged key space into roughly equal
// ranges. Partition p covers keys in [splitter[p-1], splitter[p]) — rows
// equal to a boundary all land in the partition it opens, so equal keys
// never straddle partitions and in-partition tie-breaks preserve stability.
// Only valid for exact layouts; returns nil (one partition) otherwise or
// when parts <= 1.
func Splitters(runs []Run, l *Layout, parts int) [][]uint64 {
	if parts <= 1 || !l.Exact {
		return nil
	}
	w := l.Words
	// Up to 32 evenly spaced samples per run keeps the sample deterministic
	// and cheap while bounding partition skew to ~len/32 per run.
	var sample [][]uint64
	for i := range runs {
		r := &runs[i]
		n := r.Len()
		if n == 0 {
			continue
		}
		step := n / 32
		if step == 0 {
			step = 1
		}
		for at := 0; at < n; at += step {
			sample = append(sample, r.Keys[at*w:(at+1)*w])
		}
	}
	if len(sample) == 0 {
		return nil
	}
	sort.Slice(sample, func(i, j int) bool { return compareTuple(sample[i], sample[j]) < 0 })
	var out [][]uint64
	for p := 1; p < parts; p++ {
		s := sample[p*len(sample)/parts]
		if len(out) > 0 && compareTuple(out[len(out)-1], s) == 0 {
			continue // duplicate boundary: fold the empty partition away
		}
		out = append(out, s)
	}
	return out
}

func compareTuple(a, b []uint64) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// LowerBound returns the index of the first row in run whose key tuple is
// >= bound, so [LowerBound(r, l, lo), LowerBound(r, l, hi)) is run r's slice
// of the partition [lo, hi). Exact layouts only.
func LowerBound(r *Run, l *Layout, bound []uint64) int {
	w := l.Words
	return sort.Search(r.Len(), func(i int) bool {
		return compareTuple(r.Keys[i*w:(i+1)*w], bound) >= 0
	})
}
