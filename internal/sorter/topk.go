package sorter

// TopK keeps the k smallest (key tuple, row id) items offered to it, for the
// dedicated ORDER BY ... LIMIT path: run generation offers every block row
// and the run never materializes more than k entries. Internally it is a
// bounded max-heap ordered by (key words..., tie, id) — a strict total order,
// so on equal keys the heap evicts the latest arrival and the surviving k
// are exactly the rows the stable full sort would have kept first.
type TopK struct {
	k    int
	l    *Layout
	tie  Tie
	run  int
	size int
	keys []uint64 // heap storage, row-major, stride l.Words
	ids  []int32
}

// NewTopK returns a top-k accumulator for one run; run is passed through to
// tie for approximate layouts (nil tie is fine for exact ones).
func NewTopK(k int, l *Layout, run int, tie Tie) *TopK {
	return &TopK{
		k: k, l: l, tie: tie, run: run,
		keys: make([]uint64, 0, k*l.Words),
		ids:  make([]int32, 0, k),
	}
}

// Len returns the number of retained items.
func (t *TopK) Len() int { return t.size }

// cmpStored orders heap items i and j.
func (t *TopK) cmpStored(i, j int) int {
	w := t.l.Words
	c := t.l.CompareRowKeys(t.keys, i*w, t.run, t.ids[i], t.keys, j*w, t.run, t.ids[j], t.tie)
	if c != 0 {
		return c
	}
	if t.ids[i] < t.ids[j] {
		return -1
	}
	return 1
}

// cmpCand orders a candidate (key, id) against heap item j.
func (t *TopK) cmpCand(key []uint64, id int32, j int) int {
	c := t.l.CompareRowKeys(key, 0, t.run, id, t.keys, j*t.l.Words, t.run, t.ids[j], t.tie)
	if c != 0 {
		return c
	}
	if id < t.ids[j] {
		return -1
	}
	return 1
}

func (t *TopK) swap(i, j int) {
	w := t.l.Words
	for x := 0; x < w; x++ {
		t.keys[i*w+x], t.keys[j*w+x] = t.keys[j*w+x], t.keys[i*w+x]
	}
	t.ids[i], t.ids[j] = t.ids[j], t.ids[i]
}

// siftUp restores the max-heap property from leaf i.
func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.cmpStored(i, parent) <= 0 {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

// siftDown restores the max-heap property from root i within heap size n.
func (t *TopK) siftDown(i, n int) {
	for {
		big := i
		if l := 2*i + 1; l < n && t.cmpStored(l, big) > 0 {
			big = l
		}
		if r := 2*i + 2; r < n && t.cmpStored(r, big) > 0 {
			big = r
		}
		if big == i {
			return
		}
		t.swap(i, big)
		i = big
	}
}

// Offer considers one item and reports whether it was retained; false means
// the row was pruned (it cannot be among the k smallest).
func (t *TopK) Offer(key []uint64, id int32) bool {
	w := t.l.Words
	if t.size < t.k {
		t.keys = append(t.keys, key[:w]...)
		t.ids = append(t.ids, id)
		t.size++
		t.siftUp(t.size - 1)
		return true
	}
	if t.cmpCand(key, id, 0) >= 0 {
		return false // not smaller than the current k-th item
	}
	copy(t.keys[:w], key[:w])
	t.ids[0] = id
	t.siftDown(0, t.size)
	return true
}

// Sorted heap-sorts the retained items in place and returns them ascending.
// The TopK must not be offered to afterwards.
func (t *TopK) Sorted() (keys []uint64, ids []int32) {
	for n := t.size - 1; n > 0; n-- {
		t.swap(0, n)
		t.siftDown(0, n)
	}
	return t.keys, t.ids
}
