package sorter

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestNormInt64Order(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	for i := 0; i < 1000; i++ {
		vals = append(vals, r.Int63()-r.Int63())
	}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a, b := vals[i], vals[j]
			if (a < b) != (NormInt64(a) < NormInt64(b)) {
				t.Fatalf("NormInt64 order broken for %d vs %d", a, b)
			}
		}
	}
}

func TestNormFloat64Order(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	vals := []float64{math.Inf(-1), -1e300, -1.5, -math.SmallestNonzeroFloat64, 0,
		math.SmallestNonzeroFloat64, 1.5, 1e300, math.Inf(1)}
	for i := 0; i < 1000; i++ {
		vals = append(vals, (r.Float64()-0.5)*math.Pow(10, float64(r.Intn(40)-20)))
	}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a, b := vals[i], vals[j]
			if (a < b) != (NormFloat64(a) < NormFloat64(b)) {
				t.Fatalf("NormFloat64 order broken for %v vs %v", a, b)
			}
		}
	}
}

func TestNormBytesOrder(t *testing.T) {
	vals := [][]byte{nil, []byte(""), []byte("a"), []byte("ab"), []byte("b"),
		[]byte("abcdefgh"), []byte("abcdefg"), []byte("\x00x"), []byte("zzzzzzzz")}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a, b := vals[i], vals[j]
			want := string(a) < string(b)
			if (NormBytes(a) < NormBytes(b)) != want {
				t.Fatalf("NormBytes order broken for %q vs %q", a, b)
			}
		}
	}
}

// TestLayoutDescNulls: a nullable descending int64 term must order
// non-null descending with NULLs last; ascending NULLs come first.
func TestLayoutDescNulls(t *testing.T) {
	type row struct {
		v    int64
		null bool
	}
	rows := []row{{5, false}, {0, true}, {-3, false}, {9, false}, {0, true}, {1, false}}
	for _, desc := range []bool{false, true} {
		l := NewLayout([]Term{{Type: Int64, Desc: desc, Nullable: true}})
		if !l.Exact || l.Words != 2 {
			t.Fatalf("layout: exact=%v words=%d", l.Exact, l.Words)
		}
		src := make([]int64, len(rows))
		nulls := make([]bool, len(rows))
		for i, r := range rows {
			src[i], nulls[i] = r.v, r.null
		}
		keys := make([]uint64, len(rows)*l.Words)
		l.EncodeInt64(0, src, nulls, keys)
		ids := make([]int32, len(rows))
		for i := range ids {
			ids[i] = int32(i)
		}
		SortRows(&l, keys, ids, 0, nil)

		// Reference order: NULLS FIRST ascending, NULLS LAST descending,
		// ties by arrival.
		want := make([]int32, len(rows))
		for i := range want {
			want[i] = int32(i)
		}
		sort.SliceStable(want, func(i, j int) bool {
			a, b := rows[want[i]], rows[want[j]]
			if a.null != b.null {
				return a.null != desc // nulls first iff ascending
			}
			if a.null {
				return false
			}
			if desc {
				return a.v > b.v
			}
			return a.v < b.v
		})
		if !reflect.DeepEqual(ids, want) {
			t.Fatalf("desc=%v: got %v want %v", desc, ids, want)
		}
	}
}

func TestSortKVsMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 10, 63, 64, 1000, 5000} {
		items := make([]KV, n)
		for i := range items {
			// Narrow key space forces duplicates to exercise stability.
			items[i] = KV{Key: NormInt64(int64(r.Intn(50) - 25)), ID: int32(i)}
		}
		want := append([]KV(nil), items...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
		got := SortKVs(items, make([]KV, n))
		if len(got) != len(want) {
			t.Fatalf("n=%d: length changed: %d", n, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: radix order diverges from stable reference", n)
		}
	}
}

func TestSortKVsWideKeys(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	items := make([]KV, 2000)
	for i := range items {
		items[i] = KV{Key: r.Uint64(), ID: int32(i)}
	}
	want := append([]KV(nil), items...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
	got := SortKVs(items, make([]KV, len(items)))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("radix order diverges on full-width random keys")
	}
}

// byteTie resolves a single approximate Bytes term against full test values
// (single-run tests, so run indexes are ignored).
type byteTie struct {
	rows [][]byte
	desc bool
}

func (bt *byteTie) Compare(term, runA int, rowA int32, runB int, rowB int32) int {
	a, b := string(bt.rows[rowA]), string(bt.rows[rowB])
	c := 0
	if a < b {
		c = -1
	} else if a > b {
		c = 1
	}
	if bt.desc {
		c = -c
	}
	return c
}

func TestSortRowsApproximateTieBreak(t *testing.T) {
	// Two terms: a 12-byte string (approximate) then an int64. Rows share the
	// 8-byte prefix but differ in the tail, and the tail order must dominate
	// the second term — the bug an all-words-then-tie comparator would have.
	l := NewLayout([]Term{{Type: Bytes, Width: 12}, {Type: Int64}})
	if l.Exact {
		t.Fatal("12-byte term should be approximate")
	}
	strs := [][]byte{
		[]byte("prefix00XXXX"), // row 0: big tail, small int
		[]byte("prefix00AAAA"), // row 1: small tail, big int
		[]byte("different000"), // row 2
	}
	ints := []int64{1, 2, 0}
	keys := make([]uint64, len(strs)*l.Words)
	l.EncodeBytes(0, len(strs), func(i int) []byte { return strs[i] }, nil, keys)
	l.EncodeInt64(1, ints, nil, keys)
	ids := []int32{0, 1, 2}
	tie := &byteTie{rows: strs}
	SortRows(&l, keys, ids, 0, tie)
	want := []int32{2, 1, 0} // "different..." < "prefix00AAAA" < "prefix00XXXX"
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("got %v want %v", ids, want)
	}
}

// buildRuns makes sorted int64 runs from random data, returning the runs and
// the globally expected (value, run, row) order.
func buildRuns(t *testing.T, r *rand.Rand, l *Layout, nRuns, maxRows, keySpace int) ([]Run, [][2]int32) {
	t.Helper()
	runs := make([]Run, nRuns)
	type item struct {
		v        int64
		run, row int32
	}
	var all []item
	for rn := 0; rn < nRuns; rn++ {
		n := r.Intn(maxRows + 1)
		src := make([]int64, n)
		for i := range src {
			src[i] = int64(r.Intn(keySpace))
			all = append(all, item{src[i], int32(rn), int32(i)})
		}
		keys := make([]uint64, n*l.Words)
		l.EncodeInt64(0, src, nil, keys)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		SortRows(l, keys, ids, rn, nil)
		sorted := make([]uint64, 0, n*l.Words)
		for _, id := range ids {
			sorted = append(sorted, keys[int(id)*l.Words:(int(id)+1)*l.Words]...)
		}
		runs[rn] = Run{Keys: sorted, Rows: ids, Seq: int32(rn)}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v < all[j].v
		}
		if all[i].run != all[j].run {
			return all[i].run < all[j].run
		}
		return all[i].row < all[j].row
	})
	want := make([][2]int32, len(all))
	for i, it := range all {
		want[i] = [2]int32{it.run, it.row}
	}
	return runs, want
}

func TestMergeMatchesReference(t *testing.T) {
	l := NewLayout([]Term{{Type: Int64}})
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		nRuns := 1 + r.Intn(9)
		runs, want := buildRuns(t, r, &l, nRuns, 60, 7)
		m := NewMerge(runs, &l, nil, nil, nil)
		var got [][2]int32
		for {
			run, row, ok := m.Next()
			if !ok {
				break
			}
			got = append(got, [2]int32{int32(run), row})
		}
		if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("trial %d: merge order diverges (got %d rows, want %d)", trial, len(got), len(want))
		}
	}
}

func TestSplittersPartitionMerge(t *testing.T) {
	l := NewLayout([]Term{{Type: Int64}})
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		runs, want := buildRuns(t, r, &l, 6, 200, 11)
		for _, parts := range []int{2, 3, 8} {
			splits := Splitters(runs, &l, parts)
			bounds := append([][]uint64{nil}, splits...)
			bounds = append(bounds, nil)
			var got [][2]int32
			for p := 0; p+1 < len(bounds); p++ {
				lo := make([]int, len(runs))
				hi := make([]int, len(runs))
				for i := range runs {
					if bounds[p] != nil {
						lo[i] = LowerBound(&runs[i], &l, bounds[p])
					}
					if bounds[p+1] != nil {
						hi[i] = LowerBound(&runs[i], &l, bounds[p+1])
					} else {
						hi[i] = runs[i].Len()
					}
				}
				m := NewMerge(runs, &l, nil, lo, hi)
				for {
					run, row, ok := m.Next()
					if !ok {
						break
					}
					got = append(got, [2]int32{int32(run), row})
				}
			}
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("trial %d parts=%d: partitioned merge diverges (got %d rows, want %d)",
					trial, parts, len(got), len(want))
			}
		}
	}
}

func TestTopKMatchesSortTruncate(t *testing.T) {
	l := NewLayout([]Term{{Type: Int64}})
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(500)
		src := make([]int64, n)
		for i := range src {
			src[i] = int64(r.Intn(20)) // heavy duplicates
		}
		keys := make([]uint64, n*l.Words)
		l.EncodeInt64(0, src, nil, keys)
		for _, k := range []int{1, 3, n, n + 10} {
			tk := NewTopK(k, &l, 0, nil)
			pruned := 0
			for i := 0; i < n; i++ {
				if !tk.Offer(keys[i*l.Words:(i+1)*l.Words], int32(i)) {
					pruned++
				}
			}
			_, ids := tk.Sorted()

			want := make([]int32, n)
			for i := range want {
				want[i] = int32(i)
			}
			sort.SliceStable(want, func(i, j int) bool { return src[want[i]] < src[want[j]] })
			if k < n {
				want = want[:k]
			}
			if !reflect.DeepEqual(ids, want) {
				t.Fatalf("trial %d k=%d: topk %v want %v", trial, k, ids, want)
			}
			if pruned != n-len(ids) && k < n {
				// pruned counts offers rejected; rows evicted after retention
				// are not pruned, so pruned <= n-k.
				if pruned > n-k {
					t.Fatalf("trial %d k=%d: pruned=%d exceeds n-k=%d", trial, k, pruned, n-k)
				}
			}
		}
	}
}

func TestTopKStabilityOnBoundary(t *testing.T) {
	// All-equal keys: top-k must keep the first k arrivals.
	l := NewLayout([]Term{{Type: Int64}})
	n, k := 10, 4
	keys := make([]uint64, n*l.Words)
	l.EncodeInt64(0, make([]int64, n), nil, keys)
	tk := NewTopK(k, &l, 0, nil)
	for i := 0; i < n; i++ {
		tk.Offer(keys[i*l.Words:(i+1)*l.Words], int32(i))
	}
	_, ids := tk.Sorted()
	if !reflect.DeepEqual(ids, []int32{0, 1, 2, 3}) {
		t.Fatalf("boundary ties must keep earliest arrivals, got %v", ids)
	}
}

func TestMergeSeqTieBreak(t *testing.T) {
	// Two runs of identical keys: the merge must drain run 0 before run 1
	// on every tie (arrival order).
	l := NewLayout([]Term{{Type: Int64}})
	mk := func(seq int32, n int) Run {
		keys := make([]uint64, n*l.Words)
		l.EncodeInt64(0, make([]int64, n), nil, keys)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		return Run{Keys: keys, Rows: ids, Seq: seq}
	}
	m := NewMerge([]Run{mk(0, 3), mk(1, 3)}, &l, nil, nil, nil)
	var order []int
	for {
		run, _, ok := m.Next()
		if !ok {
			break
		}
		order = append(order, run)
	}
	if !reflect.DeepEqual(order, []int{0, 0, 0, 1, 1, 1}) {
		t.Fatalf("seq tie-break broken: %v", order)
	}
}
