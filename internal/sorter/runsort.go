package sorter

import "sort"

// KV pairs a single-word normalized key with a block row id. Run generation
// over a single-word exact layout sorts a []KV with the LSD radix sort below;
// everything else goes through SortRows.
type KV struct {
	Key uint64
	ID  int32
}

// radixCutoff is the size below which a comparison sort beats setting up
// eight counting passes.
const radixCutoff = 64

// SortKVs sorts items by (Key, ID) and returns the sorted slice, which
// aliases either items or scratch (both are clobbered; reuse them as buffers
// for the next call regardless of which was returned). len(scratch) must be
// >= len(items). Items must be supplied in increasing ID order — the radix
// passes are stable, so equal keys keep that order.
//
// The sort is LSD radix over the key bytes, least-significant first, with a
// per-pass skip when all keys share that byte (common for biased int64 keys,
// whose normalized top bytes are nearly constant).
func SortKVs(items, scratch []KV) []KV {
	n := len(items)
	if n < radixCutoff {
		sort.Slice(items, func(i, j int) bool {
			if items[i].Key != items[j].Key {
				return items[i].Key < items[j].Key
			}
			return items[i].ID < items[j].ID
		})
		return items
	}
	if len(scratch) < n {
		panic("sorter: SortKVs scratch smaller than items")
	}

	// One histogram sweep collects all eight per-byte counts.
	var counts [8][256]int
	for i := range items {
		k := items[i].Key
		counts[0][byte(k)]++
		counts[1][byte(k>>8)]++
		counts[2][byte(k>>16)]++
		counts[3][byte(k>>24)]++
		counts[4][byte(k>>32)]++
		counts[5][byte(k>>40)]++
		counts[6][byte(k>>48)]++
		counts[7][byte(k>>56)]++
	}

	src, dst := items, scratch[:n]
	for pass := 0; pass < 8; pass++ {
		c := &counts[pass]
		shift := uint(8 * pass)
		if c[byte(src[0].Key>>shift)] == n {
			continue // every key shares this byte; the pass is a no-op
		}
		// Exclusive prefix sum -> starting offset per bucket.
		sum := 0
		for b := 0; b < 256; b++ {
			cnt := c[b]
			c[b] = sum
			sum += cnt
		}
		for i := range src {
			b := byte(src[i].Key >> shift)
			dst[c[b]] = src[i]
			c[b]++
		}
		src, dst = dst, src
	}
	return src
}

// SortRows sorts ids (block row ids) so that rows order by their normalized
// key tuples in keys (row-major, stride l.Words, indexed by id), resolving
// approximate terms through tie and breaking exact ties by id — i.e. by
// arrival order, which is what makes the sort stable. run is the caller's
// run index, passed through to tie.
func SortRows(l *Layout, keys []uint64, ids []int32, run int, tie Tie) {
	w := l.Words
	if l.Exact {
		sort.Slice(ids, func(i, j int) bool {
			a, b := ids[i], ids[j]
			ka, kb := int(a)*w, int(b)*w
			for x := 0; x < w; x++ {
				if keys[ka+x] != keys[kb+x] {
					return keys[ka+x] < keys[kb+x]
				}
			}
			return a < b
		})
		return
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		c := l.CompareRowKeys(keys, int(a)*w, run, a, keys, int(b)*w, run, b, tie)
		if c != 0 {
			return c < 0
		}
		return a < b
	})
}
