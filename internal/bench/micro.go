package bench

// Micro-benchmark suite for the build/probe hot-path kernels. These are the
// before/after numbers of the batch-kernel work: the row-at-a-time reference
// paths (per-row shard-mutex inserts, mutex-guarded bloom adds, allocating
// selection vectors) against the block-granular kernels (InsertBlock,
// AddMany, pooled FilterBlock scratch, pre-hashed probe). cmd/uotbench
// -micro runs the suite and optionally writes a machine-readable JSON
// artifact (BENCH_PR1.json) so later PRs can track the trajectory.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bloom"
	"repro/internal/expr"
	"repro/internal/hashtable"
	"repro/internal/storage"
	"repro/internal/types"
)

const (
	microBlockRows = 1024 // rows per input block
	microBlocks    = 64   // blocks per build (one benchmark op)
)

// MicroResult is one benchmark's measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroReport is the machine-readable perf artifact.
type MicroReport struct {
	Suite     string        `json:"suite"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	BlockRows int           `json:"block_rows"`
	Blocks    int           `json:"blocks_per_op"`
	Results   []MicroResult `json:"results"`
	// Derived speedups of the batched kernels over the row-at-a-time
	// reference paths (ns/op ratios; >1 means the batch kernel is faster).
	Derived map[string]float64 `json:"derived"`
}

// microPayloadSchema is the build-input schema: one key, one payload column.
func microPayloadSchema() (in, pay *storage.Schema) {
	in = storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Int64},
	)
	pay = storage.NewSchema(storage.Column{Name: "v", Type: types.Int64})
	return
}

var (
	microOnce   sync.Once
	microInput  []*storage.Block
	microPay    *storage.Schema
	microKeyTab *hashtable.Table // pre-built table for the probe benchmarks
)

// microData builds (once) the shared input blocks with distinct keys and a
// pre-built hash table for probing.
func microData() ([]*storage.Block, *storage.Schema) {
	microOnce.Do(func() {
		in, pay := microPayloadSchema()
		microPay = pay
		microInput = make([]*storage.Block, microBlocks)
		for bi := range microInput {
			b := storage.NewBlock(in, storage.ColumnStore, microBlockRows*16+64)
			for r := 0; r < microBlockRows; r++ {
				k := int64(bi*microBlockRows + r)
				// splay keys so hash-adjacent keys are not insert-adjacent
				b.AppendRow(types.NewInt64(k*2654435761%1000000007), types.NewInt64(k))
			}
			microInput[bi] = b
		}
		microKeyTab = hashtable.New(hashtable.Config{
			PayloadSchema: pay, InitialCapacity: microBlocks * microBlockRows,
		})
		sc := &hashtable.InsertScratch{}
		for _, b := range microInput {
			microKeyTab.InsertBlock(b, []int{0}, []int{1}, sc)
		}
	})
	return microInput, microPay
}

// forEachBlock runs fn over every input block from g goroutines pulling work
// from a shared counter (the scheduler's work-order pattern).
func forEachBlock(blocks []*storage.Block, g int, fn func(w int, b *storage.Block)) {
	if g <= 1 {
		for _, b := range blocks {
			fn(0, b)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				j := atomic.AddInt64(&next, 1) - 1
				if j >= int64(len(blocks)) {
					return
				}
				fn(w, blocks[j])
			}
		}(w)
	}
	wg.Wait()
}

// benchInsert builds a fresh 64K-row hash table per op, with g goroutines,
// through either the per-row reference path or the batch kernel.
func benchInsert(g int, batch bool) func(b *testing.B) {
	return func(b *testing.B) {
		blocks, pay := microData()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Table construction (one large zeroed slot allocation) is not
			// the kernel under test; keep it off the clock.
			b.StopTimer()
			ht := hashtable.New(hashtable.Config{
				PayloadSchema: pay, InitialCapacity: microBlocks * microBlockRows,
			})
			scratches := make([]*hashtable.InsertScratch, g)
			for w := range scratches {
				scratches[w] = &hashtable.InsertScratch{}
			}
			b.StartTimer()
			forEachBlock(blocks, g, func(w int, blk *storage.Block) {
				if batch {
					ht.InsertBlock(blk, []int{0}, []int{1}, scratches[w])
				} else {
					for r := 0; r < blk.NumRows(); r++ {
						ht.Insert(blk.Int64At(0, r), 0, blk, r, []int{1})
					}
				}
			})
		}
	}
}

// benchBloom populates a fresh filter per op with g goroutines: the mutex
// reference path serializes per-key adds behind one lock (the seed's
// BuildHashOp.bloomMu pattern); the batch path uses lock-free AddMany over
// the gathered key column.
func benchBloom(g int, batch bool) func(b *testing.B) {
	return func(b *testing.B) {
		blocks, _ := microData()
		keys := make([][]int64, len(blocks))
		for bi, blk := range blocks {
			ks := make([]int64, blk.NumRows())
			for r := range ks {
				ks[r] = blk.Int64At(0, r)
			}
			keys[bi] = ks
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := bloom.New(microBlocks*microBlockRows, 10)
			b.StartTimer()
			var mu sync.Mutex
			var next int64
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						j := atomic.AddInt64(&next, 1) - 1
						if j >= int64(len(keys)) {
							return
						}
						if batch {
							f.AddMany(keys[j])
						} else {
							for _, k := range keys[j] {
								mu.Lock()
								f.Add(k)
								mu.Unlock()
							}
						}
					}
				}()
			}
			wg.Wait()
		}
	}
}

// benchProbe probes the pre-built 64K-entry table with every input block:
// the row path re-hashes per Lookup; the vectorized path gathers and hashes
// the key column once per block (types.HashPairVec into reused scratch) and
// probes with LookupHashed.
func benchProbe(g int, vectorized bool) func(b *testing.B) {
	return func(b *testing.B) {
		blocks, _ := microData()
		ht := microKeyTab
		type scratch struct {
			k0      []int64
			h       []uint64
			matched int64
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scratches := make([]*scratch, g)
			for w := range scratches {
				scratches[w] = &scratch{}
			}
			forEachBlock(blocks, g, func(w int, blk *storage.Block) {
				sc := scratches[w]
				n := blk.NumRows()
				if !vectorized {
					for r := 0; r < n; r++ {
						ht.Lookup(blk.Int64At(0, r), 0, func(*storage.Block, int) bool {
							sc.matched++
							return true
						})
					}
					return
				}
				sc.k0 = blk.GatherInt64(0, sc.k0)
				sc.h = types.HashPairVec(sc.k0, nil, sc.h)
				for r := 0; r < n; r++ {
					ht.LookupHashed(sc.h[r], sc.k0[r], 0, func(*storage.Block, int) bool {
						sc.matched++
						return true
					})
				}
			})
		}
	}
}

// benchFilterBlock evaluates a selective predicate over one wide block per
// op, either allocating the selection vector per block (the seed behavior)
// or reusing a caller-provided scratch.
func benchFilterBlock(useScratch bool) func(b *testing.B) {
	return func(b *testing.B) {
		s := storage.NewSchema(
			storage.Column{Name: "k", Type: types.Int64},
			storage.Column{Name: "v", Type: types.Float64},
		)
		blk := storage.NewBlock(s, storage.ColumnStore, 128<<10)
		for i := 0; !blk.Full(); i++ {
			blk.AppendRow(types.NewInt64(int64(i%100)), types.NewFloat64(float64(i)))
		}
		pred := expr.Lt(expr.C(s, "k"), expr.Int(50))
		var scratch []int32
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if useScratch {
				scratch = expr.FilterBlock(pred, blk, nil, scratch)[:0]
			} else {
				_ = expr.FilterBlock(pred, blk, nil, nil)
			}
		}
	}
}

// microBenchmarks lists the suite in report order.
func microBenchmarks() []struct {
	name string
	rows int64 // rows processed per op (0 = not row-granular)
	fn   func(b *testing.B)
} {
	const buildRows = microBlocks * microBlockRows
	const sortRows = microSortBlocks * microBlockRows
	return []struct {
		name string
		rows int64
		fn   func(b *testing.B)
	}{
		{"hashtable/insert/row/g=1", buildRows, benchInsert(1, false)},
		{"hashtable/insert/block/g=1", buildRows, benchInsert(1, true)},
		{"hashtable/insert/row/g=8", buildRows, benchInsert(8, false)},
		{"hashtable/insert/block/g=8", buildRows, benchInsert(8, true)},
		{"bloom/add/mutex/g=1", buildRows, benchBloom(1, false)},
		{"bloom/add/atomic-batch/g=1", buildRows, benchBloom(1, true)},
		{"bloom/add/mutex/g=8", buildRows, benchBloom(8, false)},
		{"bloom/add/atomic-batch/g=8", buildRows, benchBloom(8, true)},
		{"probe/row/g=1", buildRows, benchProbe(1, false)},
		{"probe/vectorized/g=1", buildRows, benchProbe(1, true)},
		{"probe/row/g=8", buildRows, benchProbe(8, false)},
		{"probe/vectorized/g=8", buildRows, benchProbe(8, true)},
		{"expr/filterblock/alloc", 0, benchFilterBlock(false)},
		{"expr/filterblock/scratch", 0, benchFilterBlock(true)},
		{"agg/group/reference/g=1", buildRows, benchAgg(1, false)},
		{"agg/group/vectorized/g=1", buildRows, benchAgg(1, true)},
		{"agg/group/reference/g=8", buildRows, benchAgg(8, false)},
		{"agg/group/vectorized/g=8", buildRows, benchAgg(8, true)},
		{"exchange/scatter/g=1", buildRows, benchScatter(1)},
		{"exchange/scatter/g=8", buildRows, benchScatter(8)},
		{"hashtable/insert/partitioned/g=8", buildRows, benchPartInsert(8)},
		{"agg/group/partitioned/g=8", buildRows, benchPartAgg(8)},
		{"sort/reference/g=1", sortRows, benchSort(1, false, 0, microSortBlocks)},
		{"sort/fast/g=1", sortRows, benchSort(1, true, 0, microSortBlocks)},
		{"sort/reference/g=8", sortRows, benchSort(8, false, 0, microSortBlocks)},
		{"sort/fast/g=8", sortRows, benchSort(8, true, 0, microSortBlocks)},
		{"topk/reference/limit=100/g=8", sortRows, benchSort(8, false, 100, microSortBlocks)},
		{"topk/fast/limit=100/g=8", sortRows, benchSort(8, true, 100, microSortBlocks)},
		{"uotctl/observe", 0, benchUoTObserve},
		{"uotctl/prior", 0, benchUoTPrior},
		{"engine/q1/static/g=8", 0, benchAdaptQuery(8, false)},
		{"engine/q1/adaptive/g=8", 0, benchAdaptQuery(8, true)},
	}
}

// RunMicro executes the micro suite and returns the report. Each benchmark
// is run through testing.Benchmark with the standard auto-scaling of b.N.
func RunMicro() *MicroReport {
	rep := &MicroReport{
		Suite:     "build-probe-hot-path",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		BlockRows: microBlockRows,
		Blocks:    microBlocks,
		Derived:   map[string]float64{},
	}
	ns := map[string]float64{}
	for _, mb := range microBenchmarks() {
		r := testing.Benchmark(mb.fn)
		// End-to-end engine entries (whole-query wall clock, ~tens of ms
		// per op) carry run-level scheduling noise that b.N auto-scaling
		// cannot average out; take the best of three runs, the same policy
		// the macro harness applies to experiment cells.
		if strings.HasPrefix(mb.name, "engine/") {
			for i := 0; i < 2; i++ {
				if r2 := testing.Benchmark(mb.fn); r2.NsPerOp() < r.NsPerOp() {
					r = r2
				}
			}
		}
		perOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := MicroResult{
			Name:        mb.name,
			NsPerOp:     perOp,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if mb.rows > 0 && perOp > 0 {
			res.RowsPerSec = float64(mb.rows) / perOp * 1e9
		}
		ns[mb.name] = perOp
		rep.Results = append(rep.Results, res)
	}
	speedup := func(key, ref, batch string) {
		if b := ns[batch]; b > 0 {
			rep.Derived[key] = ns[ref] / b
		}
	}
	speedup("insert_batch_speedup_g1", "hashtable/insert/row/g=1", "hashtable/insert/block/g=1")
	speedup("insert_batch_speedup_g8", "hashtable/insert/row/g=8", "hashtable/insert/block/g=8")
	speedup("bloom_batch_speedup_g8", "bloom/add/mutex/g=8", "bloom/add/atomic-batch/g=8")
	speedup("probe_vectorized_speedup_g8", "probe/row/g=8", "probe/vectorized/g=8")
	speedup("filterblock_scratch_speedup", "expr/filterblock/alloc", "expr/filterblock/scratch")
	speedup("agg_vectorized_speedup_g1", "agg/group/reference/g=1", "agg/group/vectorized/g=1")
	speedup("agg_vectorized_speedup_g8", "agg/group/reference/g=8", "agg/group/vectorized/g=8")
	speedup("insert_partitioned_speedup_g8", "hashtable/insert/block/g=8", "hashtable/insert/partitioned/g=8")
	speedup("agg_partitioned_speedup_g8", "agg/group/vectorized/g=8", "agg/group/partitioned/g=8")
	speedup("sort_fast_speedup_g1", "sort/reference/g=1", "sort/fast/g=1")
	speedup("sort_fast_speedup_g8", "sort/reference/g=8", "sort/fast/g=8")
	speedup("topk_fast_speedup_g8", "topk/reference/limit=100/g=8", "topk/fast/limit=100/g=8")
	// Overhead ratio of the adaptive decision path: pinned-controller Q1
	// over static Q1, identical schedules (1.01 = 1% overhead). Measured by
	// interleaved alternation rather than from the two engine/q1 entries
	// above — see adaptQ1Overhead for why.
	rep.Derived["adaptive_uot_overhead_q1"] = adaptQ1Overhead()
	return rep
}

// String renders the micro report as an aligned text table.
func (m *MicroReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== MICRO: build/probe hot-path kernels (%s, %s/%s, %d CPU) ==\n",
		m.GoVersion, m.GOOS, m.GOARCH, m.CPUs)
	fmt.Fprintf(&sb, "%-32s %14s %14s %10s %10s\n", "benchmark", "ns/op", "rows/s", "B/op", "allocs/op")
	for _, r := range m.Results {
		rows := "-"
		if r.RowsPerSec > 0 {
			rows = fmt.Sprintf("%.3gM", r.RowsPerSec/1e6)
		}
		fmt.Fprintf(&sb, "%-32s %14.0f %14s %10d %10d\n",
			r.Name, r.NsPerOp, rows, r.BytesPerOp, r.AllocsPerOp)
	}
	keys := make([]string, 0, len(m.Derived))
	for k := range m.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "derived: %s = %.2fx\n", k, m.Derived[k])
	}
	return sb.String()
}

// WriteJSON writes the report to path (the BENCH_PR1.json perf artifact).
func (m *MicroReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
