package bench

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

// chaosRate is the per-consultation fault probability at every site during
// the CHAOS experiment (the acceptance bar is >= 1%).
const chaosRate = 0.02

// chaosSeed fixes the fault schedule; the same seed must replay the same
// schedule, and CI runs the experiment at this seed.
const chaosSeed = 7

// Chaos subjects the TPC-H queries with the richest operator mix (Q1 agg,
// Q13 outer join + agg, Q15 scalar subquery, Q18 large join + agg) to a
// seeded fault schedule — errors, panics, latency, and allocation failures
// at every injection site — and asserts three things per query: the result
// is identical to the fault-free run (float aggregates within 1e-6, since
// retries and demotions may reorder summation), nothing leaked (blocks or
// references), and re-running at one worker with the same seed fires the
// identical fault schedule. Any violation fails the experiment.
func (h *Harness) Chaos() (*Report, error) {
	r := &Report{
		ID:    "CHAOS",
		Title: "Fault injection under retry/rollback (results vs fault-free runs)",
		Header: []string{
			"query", "faults", "retries", "demotions", "deadline_hits", "result", "replay", "leaks", "wall_ms",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	var totalInjected int64
	for _, q := range []int{1, 13, 15, 18} {
		baseRes, err := h.run(d, q, engine.Options{
			Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 128 << 10,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, fmt.Errorf("CHAOS: fault-free Q%d: %w", q, err)
		}
		base := engine.Rows(baseRes.Table)
		engine.SortRows(base)

		inj := faults.New(faults.Config{
			Seed:       chaosSeed,
			Rates:      chaosSiteRates(),
			MaxLatency: 50 * time.Microsecond,
		})
		start := time.Now()
		res, err := h.run(d, q, chaosOptions(inj, h.cfg.Workers), tpch.QueryOpts{})
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("CHAOS: Q%d failed under %.0f%% faults: %w", q, 100*chaosRate, err)
		}
		rows := engine.Rows(res.Table)
		engine.SortRows(rows)
		resultOK := chaosSameRows(base, rows)

		replayOK, err := h.chaosReplayIdentical(d, q)
		if err != nil {
			return nil, fmt.Errorf("CHAOS: Q%d replay: %w", q, err)
		}

		rb := res.Run.Robust()
		leaks := rb.LeakedBlocks + rb.OutstandingRefs
		totalInjected += rb.FaultsInjected
		r.AddRow(
			fmt.Sprintf("Q%02d", q),
			fmt.Sprintf("%d", rb.FaultsInjected),
			fmt.Sprintf("%d", rb.Retries),
			fmt.Sprintf("%d", rb.Demotions),
			fmt.Sprintf("%d", rb.DeadlineHits),
			pass(resultOK),
			pass(replayOK),
			fmt.Sprintf("%d", leaks),
			fmt.Sprintf("%.2f", float64(wall)/float64(time.Millisecond)),
		)
		if !resultOK {
			return nil, fmt.Errorf("CHAOS: Q%d result differs from the fault-free run", q)
		}
		if !replayOK {
			return nil, fmt.Errorf("CHAOS: Q%d did not replay the same fault schedule for the same seed", q)
		}
		if leaks != 0 {
			return nil, fmt.Errorf("CHAOS: Q%d leaked %d blocks/refs", q, leaks)
		}
	}
	if totalInjected == 0 {
		return nil, fmt.Errorf("CHAOS: no faults fired at rate %.0f%% — injector is not wired in", 100*chaosRate)
	}
	r.Note("seed %d, %.0f%% fault rate per site (errors, panics, latency, alloc failures); results compared sorted, floats within 1e-6", chaosSeed, 100*chaosRate)
	r.Note("replay = same seed at 1 worker fires the identical fault schedule twice")
	return r, nil
}

func chaosSiteRates() map[faults.Site]float64 {
	m := map[faults.Site]float64{}
	for _, s := range faults.Sites() {
		m[s] = chaosRate
	}
	return m
}

func chaosOptions(inj *faults.Injector, workers int) engine.Options {
	return engine.Options{
		Workers:        workers,
		UoTBlocks:      1,
		TempBlockBytes: 128 << 10,
		Faults:         inj,
		MaxAttempts:    8,
		RetryBackoff:   100 * time.Microsecond,
	}
}

// chaosReplayIdentical runs the query twice at one worker with the same seed
// and reports whether both runs fired the identical fault schedule.
func (h *Harness) chaosReplayIdentical(d *tpch.Dataset, q int) (bool, error) {
	var schedules [2][]faults.Event
	for i := range schedules {
		inj := faults.New(faults.Config{
			Seed:  chaosSeed,
			Rates: chaosSiteRates(),
			Kinds: []faults.Kind{faults.KindError},
		})
		if _, err := h.run(d, q, chaosOptions(inj, 1), tpch.QueryOpts{}); err != nil {
			return false, err
		}
		schedules[i] = inj.Schedule()
	}
	return reflect.DeepEqual(schedules[0], schedules[1]), nil
}

// chaosSameRows compares sorted result sets, allowing 1e-6 relative drift on
// Float64 columns (retried/demoted runs may sum in a different order).
func chaosSameRows(a, b [][]types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Ty == types.Float64 && y.Ty == types.Float64 {
				diff := x.F - y.F
				if diff < 0 {
					diff = -diff
				}
				scale := 1.0
				for _, v := range []float64{x.F, y.F} {
					if v < 0 {
						v = -v
					}
					if v > scale {
						scale = v
					}
				}
				if diff > 1e-6*scale {
					return false
				}
				continue
			}
			if types.Compare(x, y) != 0 {
				return false
			}
		}
	}
	return true
}

func pass(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}
