package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Fig3OperatorBreakdown reproduces Fig. 3: the distribution of query time
// across operators for every TPC-H query, run with a high UoT value (whole
// table) so operator times do not overlap, on column-store base tables. The
// paper's takeaway — several queries spend >50% of their time in a single,
// usually leaf, operator — bounds how much a low UoT can ever help.
func (h *Harness) Fig3OperatorBreakdown() (*Report, error) {
	r := &Report{
		ID:    "FIG3",
		Title: "Distribution of time spent in operators (high UoT, column store)",
		Header: []string{
			"query", "dominant operator", "dom_%", "second operator", "2nd_%", "dominant_is_leaf",
		},
	}
	d := h.Dataset(2<<20, storage.ColumnStore)
	for _, num := range tpch.Numbers() {
		res, err := h.run(d, num, h.traced(engine.Options{
			Workers: h.cfg.Workers, UoTBlocks: core.UoTTable, TempBlockBytes: 2 << 20,
		}, fmt.Sprintf("FIG3 Q%02d", num)), tpch.QueryOpts{})
		if err != nil {
			return nil, err
		}
		per := res.Run.PerOp()
		sort.Slice(per, func(i, j int) bool { return per[i].WallTotal > per[j].WallTotal })
		var total time.Duration
		for _, t := range per {
			total += t.WallTotal
		}
		if total == 0 || len(per) == 0 {
			continue
		}
		dom := per[0]
		row := []string{
			fmt.Sprintf("Q%02d", num),
			dom.Name,
			pct(float64(dom.WallTotal) / float64(total)),
		}
		if len(per) > 1 {
			row = append(row, per[1].Name, pct(float64(per[1].WallTotal)/float64(total)))
		} else {
			row = append(row, "-", "-")
		}
		row = append(row, fmt.Sprintf("%v", isLeafOp(dom.Name)))
		r.AddRow(row...)
	}
	r.Note("leaf operators read base tables directly (select/build/aggregate on a base table)")
	return r, nil
}

// isLeafOp reports whether an operator name denotes a leaf (base-table)
// operator in our TPC-H plans.
func isLeafOp(name string) bool {
	for _, t := range []string{"lineitem", "orders", "customer", "supplier", "part", "nation", "region", "cust_avg"} {
		if name == "select("+t+")" {
			return true
		}
	}
	return false
}
