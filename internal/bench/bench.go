// Package bench regenerates every table and figure of the paper's
// evaluation (Section VII) plus the analytical artifacts of Sections V and
// VI. Each experiment is a method on Harness returning a Report whose rows
// mirror what the paper plots; cmd/uotbench prints them and bench_test.go
// wraps them in testing.B benchmarks.
//
// Two kinds of measurement are used, as laid out in DESIGN.md:
//
//   - wall-clock time for scheduling/parallelism effects (Figs. 6-11),
//     reported as the mean of the best k of n runs (the paper uses best 3 of
//     10) with a GC between runs;
//   - deterministic simulated time from internal/cachesim for cache-level
//     effects that Go cannot measure or control directly — probe-input
//     hotness (Fig. 5) and hardware prefetching (Table VI). The simulated
//     L3 is scaled down with the data scale so that the paper's
//     |intermediate| / |L3| and B·T / |L3| ratios are preserved.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/trace"
)

// Config parameterizes the harness.
type Config struct {
	// SF is the TPC-H scale factor (default 0.05; the paper uses 50 on a
	// 160 GB machine — the ratio of data to simulated cache is preserved
	// instead).
	SF float64
	// Workers is T for the main experiments (default 20, as in the paper).
	Workers int
	// Runs and Best select the repetition policy for wall-clock numbers
	// (default best 3 of 5; the paper uses best 3 of 10).
	Runs, Best int
	// SimL3Bytes is the simulated L3 capacity (default 8 MB; 25 MB at SF 50
	// scales to ~8 MB at SF 0.05 relative to table sizes).
	SimL3Bytes int64
	// Trace, if non-nil, collects execution traces from the experiments that
	// support it (FIG2 schedule shapes, FIG3 operator breakdowns): each
	// traced execution becomes one labeled section of the tracer, and
	// cmd/uotbench -trace writes the result as a Chrome trace-event file.
	Trace *trace.Tracer
	// Adaptive runs the wall-clock query experiments (FIG7, FIG8, FIG10,
	// TAB6) with the adaptive per-edge UoT controller instead of each
	// experiment's static setting. The dedicated ADAPT experiment compares
	// adaptive against the static spectrum regardless of this flag.
	Adaptive bool
}

func (c Config) withDefaults() Config {
	if c.SF == 0 {
		c.SF = 0.05
	}
	if c.Workers == 0 {
		c.Workers = 20
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Best == 0 {
		c.Best = 3
	}
	if c.Best > c.Runs {
		c.Best = c.Runs
	}
	if c.SimL3Bytes == 0 {
		c.SimL3Bytes = 8 << 20
	}
	return c
}

// Harness caches generated datasets across experiments.
type Harness struct {
	cfg  Config
	data map[dsKey]*tpch.Dataset
}

type dsKey struct {
	sf         float64
	blockBytes int
	format     storage.Format
}

// New returns a harness.
func New(cfg Config) *Harness {
	return &Harness{cfg: cfg.withDefaults(), data: map[dsKey]*tpch.Dataset{}}
}

// Config returns the effective configuration.
func (h *Harness) Config() Config { return h.cfg }

// Dataset returns (and caches) the TPC-H dataset with the given base-table
// block size and format at the configured scale factor.
func (h *Harness) Dataset(blockBytes int, format storage.Format) *tpch.Dataset {
	return h.DatasetSF(h.cfg.SF, blockBytes, format)
}

// DatasetSF returns (and caches) a dataset at an explicit scale factor; the
// scalability experiments need the orders hash table to outgrow the
// simulated L3 regardless of the configured SF.
func (h *Harness) DatasetSF(sf float64, blockBytes int, format storage.Format) *tpch.Dataset {
	k := dsKey{sf, blockBytes, format}
	if d, ok := h.data[k]; ok {
		return d
	}
	d := tpch.Load(sf, blockBytes, format)
	h.data[k] = d
	return d
}

// scaleSF is the scale factor used by the Fig. 9/10 scalability runs.
func (h *Harness) scaleSF() float64 {
	if h.cfg.SF > 0.2 {
		return h.cfg.SF
	}
	return 0.2
}

// sim returns a fresh scaled cache simulator with bandwidth contention set
// for the configured worker count (callers override per experiment).
func (h *Harness) sim() *cachesim.Sim {
	p := cachesim.Default()
	p.L3Bytes = h.cfg.SimL3Bytes
	s := cachesim.New(p)
	s.SetThreads(h.cfg.Workers)
	return s
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a footnote.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, hc := range r.Header {
		widths[i] = len(hc)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// bestOf executes fn cfg.Runs times and returns the mean wall time of the
// best cfg.Best runs, forcing a GC between runs to keep the collector out of
// the measurement.
func (h *Harness) bestOf(fn func() (*stats.Run, error)) (time.Duration, *stats.Run, error) {
	var durs []time.Duration
	var last *stats.Run
	for i := 0; i < h.cfg.Runs; i++ {
		runtime.GC()
		run, err := fn()
		if err != nil {
			return 0, nil, err
		}
		durs = append(durs, run.WallTime())
		last = run
	}
	// selection-sort the few durations; keep the best cfg.Best.
	for i := 0; i < len(durs); i++ {
		for j := i + 1; j < len(durs); j++ {
			if durs[j] < durs[i] {
				durs[i], durs[j] = durs[j], durs[i]
			}
		}
	}
	var sum time.Duration
	for _, d := range durs[:h.cfg.Best] {
		sum += d
	}
	return sum / time.Duration(h.cfg.Best), last, nil
}

// traced attaches the harness tracer (if any) to an execution's options,
// labeling its trace section.
func (h *Harness) traced(o engine.Options, label string) engine.Options {
	if h.cfg.Trace.Enabled() {
		o.Trace = h.cfg.Trace
		o.TraceLabel = label
	}
	return o
}

// run executes a TPC-H query once with the given options.
func (h *Harness) run(d *tpch.Dataset, num int, opts engine.Options, qo tpch.QueryOpts) (*engine.Result, error) {
	b, err := tpch.Build(d, num, qo)
	if err != nil {
		return nil, err
	}
	return engine.Execute(b, opts)
}

// opTotals finds an operator's totals by name in a run.
func opTotals(run *stats.Run, name string) (stats.OpTotals, bool) {
	for _, t := range run.PerOp() {
		if t.Name == name {
			return t, true
		}
	}
	return stats.OpTotals{}, false
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
func simMs(ticks int64) string  { return fmt.Sprintf("%.3f", float64(ticks)/1e6) }
func mib(b int64) string        { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
func pct(f float64) string      { return fmt.Sprintf("%.1f", 100*f) }
func ratio2(f float64) string   { return fmt.Sprintf("%.2f", f) }
func uotLabel(low bool) string {
	if low {
		return "low(1 block)"
	}
	return "high(table)"
}
