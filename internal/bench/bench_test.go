package bench

import (
	"strings"
	"testing"
)

// tiny returns a harness at the smallest useful scale.
func tiny() *Harness {
	return New(Config{SF: 0.005, Workers: 4, Runs: 1, Best: 1})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SF != 0.05 || c.Workers != 20 || c.Runs != 5 || c.Best != 3 || c.SimL3Bytes != 8<<20 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Best is clamped to Runs.
	c2 := Config{Runs: 2, Best: 5}.withDefaults()
	if c2.Best != 2 {
		t.Fatalf("Best not clamped: %+v", c2)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 29 {
		t.Fatalf("experiments = %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Paper == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Find("FIG7"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("NOPE"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Header: []string{"a", "bbbb"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.Note("hello %d", 7)
	s := r.String()
	for _, want := range []string{"== X: t ==", "a    bbbb", "333", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestDatasetCaching(t *testing.T) {
	h := tiny()
	a := h.Dataset(32<<10, 0)
	b := h.Dataset(32<<10, 0)
	if a != b {
		t.Fatal("dataset should be cached per (sf, block, format)")
	}
	if c := h.DatasetSF(0.004, 32<<10, 0); c == a {
		t.Fatal("different SF must not share a dataset")
	}
}

// TestCheapExperimentsProduceRows runs the analytical and light experiments
// end-to-end at tiny scale and sanity-checks their structure.
func TestCheapExperimentsProduceRows(t *testing.T) {
	h := tiny()
	for _, id := range []string{"EQ1", "SEC5C", "FIG2", "TAB3", "TAB4", "SEC6C", "SEC6B", "TAB2", "CHAOS", "EXCH"} {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(h)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		for _, row := range rep.Rows {
			if len(row) != len(rep.Header) {
				t.Errorf("%s: row arity %d vs header %d", id, len(row), len(rep.Header))
			}
		}
	}
}

func TestFig3CoversAllQueries(t *testing.T) {
	h := tiny()
	rep, err := h.Fig3OperatorBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 22 {
		t.Fatalf("Fig3 rows = %d, want 22", len(rep.Rows))
	}
}

func TestLptMakespan(t *testing.T) {
	// 4 jobs of 3 + 2 jobs of 5 on 2 workers: LPT gives 5+3 / 5+3 (+3+3 on
	// one) -> makespan 11.
	if got := lptMakespan([]int64{3, 5, 3, 5, 3, 3}, 2); got != 11 {
		t.Fatalf("lpt = %d", got)
	}
	if got := lptMakespan([]int64{7}, 4); got != 7 {
		t.Fatalf("single job = %d", got)
	}
	if got := lptMakespan(nil, 3); got != 0 {
		t.Fatalf("empty = %d", got)
	}
	if got := lptMakespan([]int64{1, 1, 1}, 0); got != 3 {
		t.Fatalf("zero workers should clamp to 1: %d", got)
	}
}

func TestRunLength(t *testing.T) {
	if got := runLength([]byte("SSSPPS")); got != "S*3 P*2 S" {
		t.Fatalf("runLength = %q", got)
	}
	if got := runLength(nil); got != "(empty)" {
		t.Fatalf("empty = %q", got)
	}
}
