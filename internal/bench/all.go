package bench

import "fmt"

// Experiment pairs an experiment ID with its runner.
type Experiment struct {
	ID    string
	Paper string // the paper artifact this regenerates
	Run   func(*Harness) (*Report, error)
}

// Experiments lists every runner, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"FIG2", "Fig. 2 (schedule shapes vs UoT)", (*Harness).Fig2Schedules},
		{"FIG3", "Fig. 3 (operator time distribution)", (*Harness).Fig3OperatorBreakdown},
		{"EQ1", "Table I / Eq. 1 (analytical ratio)", (*Harness).Eq1RatioSweep},
		{"SEC5C", "Section V-C (persistent store)", (*Harness).Sec5CPersistentStore},
		{"TAB2", "Table II (memory footprint)", (*Harness).Tab2MemoryFootprint},
		{"TAB3", "Table III (lineitem sel/proj)", (*Harness).Tab3Lineitem},
		{"TAB4", "Table IV (orders sel/proj)", (*Harness).Tab4Orders},
		{"SEC6C", "Section VI-C (LIP pruning)", (*Harness).Sec6CLIP},
		{"FIG5", "Fig. 5 (consumer per-task time)", (*Harness).Fig5ProbeTaskTimes},
		{"FIG6", "Fig. 6 (operator-chain time)", (*Harness).Fig6ChainTimes},
		{"FIG7", "Fig. 7 (query times, column store)", (*Harness).Fig7QueryTimes},
		{"FIG8", "Fig. 8 (query times, row store)", (*Harness).Fig8RowStore},
		{"FIG9", "Fig. 9 (probe scalability)", (*Harness).Fig9Scalability},
		{"FIG10", "Fig. 10 (scalability x block size x UoT)", (*Harness).Fig10ScalabilityInteraction},
		{"TAB6", "Table VI (hardware prefetching)", (*Harness).Tab6Prefetching},
		{"FIG11", "Fig. 11 (MonetDB-style comparison)", (*Harness).Fig11MonetComparison},
		{"SEC6B", "Section VI-B (SSB small hash tables)", (*Harness).Sec6BSSBFootprint},
		{"ABL-UOT", "ablation: full UoT spectrum sweep", (*Harness).AblationUoTSweep},
		{"ABL-BLOCK", "ablation: block-size sweep", (*Harness).AblationBlockSize},
		{"CONTEND", "batch-kernel contention profile (shard locks, scratch reuse)", (*Harness).ContentionProfile},
		{"AGG", "aggregation-kernel profile (vectorized vs fallback, merge fan-out)", (*Harness).AggKernelProfile},
		{"SORT", "sort-kernel profile (normalized-key runs, merge fan-out, top-k pruning)", (*Harness).SortKernelProfile},
		{"EXCH", "exchange profile (partition-local pipelines vs shared-state join+agg)", (*Harness).ExchangeProfile},
		{"CHAOS", "robustness: seeded fault injection vs fault-free results", (*Harness).Chaos},
		{"ADAPT", "adaptive per-edge UoT controller vs static settings", (*Harness).AdaptiveProfile},
		{"SERVE", "concurrent serving: admission control, shedding, isolation", (*Harness).Serve},
		{"CCHAOS", "concurrent serving under seeded fault injection", (*Harness).ConcurrentChaos},
		{"SPILL", "disk-backed spill tier: goldens at 25% RAM, zero leaks", (*Harness).Spill},
		{"REUSE", "cross-query result cache: warm-hit speedup, golden equivalence", (*Harness).ReuseCache},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
