package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Fig2Schedules reproduces Fig. 2: the same select→probe pair scheduled with
// two UoT values (2 blocks vs. 4 blocks) at the same block size. The report
// shows the realized work-order schedule (start-time order) for the filter
// (σ) and probe (P) operators; as UoT grows the schedule degenerates into
// the traditional non-pipelining "all σ, then all P" form.
func (h *Harness) Fig2Schedules() (*Report, error) {
	r := &Report{
		ID:     "FIG2",
		Title:  "Interplay between scheduling strategies and UoT values (Q3 select(lineitem)->probe(orders))",
		Header: []string{"uot_blocks", "schedule (work orders in start order)"},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	for _, uot := range []int{2, 4, 16} {
		b, err := tpch.Build(d, 3, tpch.QueryOpts{})
		if err != nil {
			return nil, err
		}
		res, err := engine.Execute(b, h.traced(engine.Options{
			Workers: 2, UoTBlocks: uot, TempBlockBytes: 128 << 10,
		}, fmt.Sprintf("FIG2 Q3 uot=%d", uot)))
		if err != nil {
			return nil, err
		}
		orders := res.Run.Orders()
		sort.Slice(orders, func(i, j int) bool { return orders[i].Start.Before(orders[j].Start) })
		var seq []byte
		for _, w := range orders {
			switch w.OpName {
			case "select(lineitem)":
				seq = append(seq, 'S')
			case "probe(orders)":
				seq = append(seq, 'P')
			}
		}
		r.AddRow(fmt.Sprintf("%d", uot), runLength(seq))
	}
	r.Note("S = select(lineitem) work order, P = probe(orders) work order; runs are compressed (S*3 = three consecutive S)")
	r.Note("larger UoT pushes all P work orders behind the S work orders — the Fig. 2 non-pipelining schedule")
	return r, nil
}

func runLength(seq []byte) string {
	if len(seq) == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	cur, n := seq[0], 1
	flush := func() {
		if n == 1 {
			sb.WriteByte(cur)
		} else {
			fmt.Fprintf(&sb, "%c*%d", cur, n)
		}
		sb.WriteByte(' ')
	}
	for _, c := range seq[1:] {
		if c == cur {
			n++
			continue
		}
		flush()
		cur, n = c, 1
	}
	flush()
	return strings.TrimSpace(sb.String())
}
