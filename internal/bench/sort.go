package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

// SortKernelProfile reports the parallel-sort counters for the ORDER BY
// TPC-H queries at the configured worker count: rows routed through the
// normalized-key run sort versus the row-at-a-time reference path, the
// number of run-generation work orders, the range-partitioned merge fan-out,
// and the rows the dedicated top-k path pruned before materialization (the
// LIMIT queries Q3/Q10/Q21).
func (h *Harness) SortKernelProfile() (*Report, error) {
	r := &Report{
		ID:    "SORT",
		Title: "Sort-kernel profile (normalized-key runs, merge fan-out, top-k pruning)",
		Header: []string{
			"query", "sort_rows", "fast_%", "runs", "merge_fanout", "topk_pruned", "wall_ms",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	for _, q := range []int{1, 3, 5, 10, 13, 21} {
		res, err := h.run(d, q, engine.Options{
			Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 128 << 10,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, err
		}
		runs, fanout, fastRows, fallbackRows, pruned := res.Run.SortKernels()
		total := fastRows + fallbackRows
		fastPct := "-"
		if total > 0 {
			fastPct = fmt.Sprintf("%.1f", 100*float64(fastRows)/float64(total))
		}
		r.AddRow(
			fmt.Sprintf("Q%02d", q),
			fmt.Sprintf("%d", total),
			fastPct,
			fmt.Sprintf("%d", runs),
			fmt.Sprintf("%d", fanout),
			fmt.Sprintf("%d", pruned),
			fmt.Sprintf("%.2f", float64(res.Run.WallTime())/float64(time.Millisecond)),
		)
	}
	r.Note("every TPC-H ORDER BY key is a plain output column, so fast_%% is 100 when the sort input is non-empty; topk_pruned counts rows the LIMIT queries never materialized")
	return r, nil
}

// microSortBlocks is the micro sort input size in blocks: 1024 blocks of
// 1024 rows = 1M rows, the ISSUE's acceptance shape for the sort speedup.
const microSortBlocks = 1024

var (
	microSortOnce   sync.Once
	microSortInput  []*storage.Block
	microSortSchema *storage.Schema
)

// microSortData builds (once) the shared sort input: microSortBlocks blocks
// of (int64 key, int64 payload) rows with keys splayed over a large domain.
// Callers slice a prefix to run at smaller sizes (the CI smoke wrappers).
func microSortData() ([]*storage.Block, *storage.Schema) {
	microSortOnce.Do(func() {
		microSortSchema = storage.NewSchema(
			storage.Column{Name: "k", Type: types.Int64},
			storage.Column{Name: "v", Type: types.Int64},
		)
		microSortInput = make([]*storage.Block, microSortBlocks)
		for bi := range microSortInput {
			b := storage.NewBlock(microSortSchema, storage.ColumnStore, microBlockRows*16+64)
			for r := 0; r < microBlockRows; r++ {
				k := int64(bi*microBlockRows + r)
				// splay keys so sorted-adjacent keys are not input-adjacent
				b.AppendRow(types.NewInt64(k*2654435761%1000000007), types.NewInt64(k))
			}
			microSortInput[bi] = b
		}
	})
	return microSortInput, microSortSchema
}

// runSortWOs executes work orders from g goroutines pulling from a shared
// counter (the scheduler's dispatch pattern), releasing emitted blocks back
// to the pool — the benchmark discards the sorted output, and recycling
// keeps the per-iteration footprint flat.
func runSortWOs(ctx *core.ExecCtx, wos []core.WorkOrder, g int) {
	runOne := func(wo core.WorkOrder) {
		out := &core.Output{}
		out.Finish(wo.Run(ctx, out))
		for _, b := range out.Blocks {
			ctx.Pool.Release(b)
		}
	}
	if g <= 1 {
		for _, wo := range wos {
			runOne(wo)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := atomic.AddInt64(&next, 1) - 1
				if j >= int64(len(wos)) {
					return
				}
				runOne(wos[j])
			}
		}()
	}
	wg.Wait()
}

// benchSort sorts nblocks 1024-row blocks by the int64 key with g
// goroutines: the reference path boxes every row into datums and
// stable-sorts them in one work order; the fast path radix-sorts each block
// into a normalized-key run in parallel, k-way-merges range partitions in
// parallel, and gathers the output columnarly. limit > 0 engages the
// per-run top-k heaps instead.
func benchSort(g int, fast bool, limit, nblocks int) func(b *testing.B) {
	return func(b *testing.B) {
		all, schema := microSortData()
		blocks := all[:nblocks]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Operator construction and pool setup are not the kernel under
			// test; keep them off the clock.
			b.StopTimer()
			op := exec.NewSort(exec.SortSpec{
				Name: "sort", InputSchema: schema,
				Terms:          []exec.SortTerm{{Key: expr.C(schema, "k")}},
				Limit:          limit,
				ForceReference: !fast,
			})
			plan := &core.Plan{}
			id := exec.AddOp(plan, op)
			ctx := &core.ExecCtx{
				Pool:           storage.NewPool(nil, nil),
				TempBlockBytes: 128 << 10,
				TempFormat:     storage.RowStore,
				Workers:        g,
			}
			op.Init(ctx)
			b.StartTimer()
			runSortWOs(ctx, op.Feed(ctx, 0, blocks), g)
			runSortWOs(ctx, op.Final(ctx), g)
			for stage := 0; ; stage++ {
				wos := op.NextStage(ctx, stage)
				if wos == nil {
					break
				}
				runSortWOs(ctx, wos, g)
			}
			b.StopTimer()
			for _, blk := range ctx.Pool.TakePartials(int(id)) {
				ctx.Pool.Release(blk)
			}
			b.StartTimer()
		}
	}
}
