package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

// serveQueries is the TPC-H mix served concurrently: the same
// operator-diverse set the CHAOS experiment uses (agg, outer join + agg,
// scalar subquery, large join + agg).
var serveQueries = []int{1, 13, 15, 18}

// serveBudget is the per-query soft memory budget used by both the
// single-query golden runs and the served runs. Pinning it on both sides
// keeps the memory-pressure machinery's decisions (producer holds, UoT
// raises) identical, which the bit-identical result check depends on.
const serveBudget = 32 << 20

// serveChecksum fingerprints a result bit-exactly: floats in the hex 'x'
// format (all 64 bits), rows sorted, SHA-256 — the golden harness's
// canonicalization.
func serveChecksum(t *storage.Table) string {
	rows := engine.Rows(t)
	lines := make([]string, len(rows))
	for i, r := range rows {
		var sb strings.Builder
		for j, d := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			switch d.Ty {
			case types.Float64:
				sb.WriteString(strconv.FormatFloat(d.F, 'x', -1, 64))
			case types.Char:
				sb.Write(d.B)
			default:
				sb.WriteString(strconv.FormatInt(d.I, 10))
			}
		}
		lines[i] = sb.String()
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, line := range lines {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// serveGolden runs every mix query once, single-query at one worker (the
// deterministic schedule the served runs must reproduce bit-exactly), and
// returns checksums plus sorted base rows for tolerance comparisons.
func (h *Harness) serveGolden(d *tpch.Dataset) (map[int]string, map[int][][]types.Datum, error) {
	sums := make(map[int]string, len(serveQueries))
	rows := make(map[int][][]types.Datum, len(serveQueries))
	for _, q := range serveQueries {
		res, err := h.run(d, q, engine.Options{
			Workers: 1, UoTBlocks: 1, TempBlockBytes: 128 << 10, MemoryBudget: serveBudget,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, nil, fmt.Errorf("golden Q%d: %w", q, err)
		}
		sums[q] = serveChecksum(res.Table)
		rs := engine.Rows(res.Table)
		engine.SortRows(rs)
		rows[q] = rs
	}
	return sums, rows, nil
}

func serveRequest(d *tpch.Dataset, q int) session.Request {
	return session.Request{
		Build: func() *engine.Builder {
			b, err := tpch.Build(d, q, tpch.QueryOpts{})
			if err != nil {
				panic(err) // mix queries are all implemented
			}
			return b
		},
		Label:        fmt.Sprintf("Q%d", q),
		MemoryBudget: serveBudget,
	}
}

// serveOutcome aggregates one closed-loop phase.
type serveOutcome struct {
	latencies []time.Duration
	completed int
	shed      int
	wall      time.Duration
}

func (o serveOutcome) qps() float64 {
	if o.wall <= 0 {
		return 0
	}
	return float64(o.completed) / o.wall.Seconds()
}

// pctMS returns the q-quantile of the latencies in milliseconds.
func pctMS(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	return float64(s[idx]) / float64(time.Millisecond)
}

// serveLoop drives a closed loop: `clients` goroutines each submit
// `perClient` queries round-robin over the mix, checking every completed
// result bit-exactly against the golden checksums. Admission rejections
// count as sheds; any other error, or a checksum mismatch, fails the loop.
func serveLoop(sess *session.Session, d *tpch.Dataset, golden map[int]string, clients, perClient int) (serveOutcome, error) {
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		out      serveOutcome
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := serveQueries[(c+i)%len(serveQueries)]
				t0 := time.Now()
				resp, err := sess.Submit(serveRequest(d, q))
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err == nil:
					out.completed++
					out.latencies = append(out.latencies, lat)
					if got := serveChecksum(resp.Table); got != golden[q] {
						if firstErr == nil {
							firstErr = fmt.Errorf("client %d Q%d: served result %s… differs from single-query golden", c, q, got[:12])
						}
					}
				case errors.Is(err, session.ErrAdmissionRejected):
					out.shed++
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d Q%d: %w", c, q, err)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	out.wall = time.Since(start)
	return out, firstErr
}

// Serve is the SERVE experiment: a closed-loop multi-query serving check.
// Phase one runs 16 concurrent clients against a well-provisioned session
// and requires every result bit-identical to the single-query golden runs
// with zero sheds; phase two shrinks admission to 2 slots and a 2-deep queue
// so the same client pressure must shed with typed errors while completed
// results stay golden. Both phases must drain to zero live bytes and zero
// pending partials.
func (h *Harness) Serve() (*Report, error) {
	r := &Report{
		ID:    "SERVE",
		Title: "Concurrent serving: admission, shedding, per-query isolation",
		Header: []string{
			"phase", "clients", "done", "shed", "p50_ms", "p95_ms", "p99_ms", "qps", "result", "leaks",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	golden, _, err := h.serveGolden(d)
	if err != nil {
		return nil, fmt.Errorf("SERVE: %w", err)
	}

	phases := []struct {
		name               string
		clients, perClient int
		maxConc, queue     int
		wantShed           bool
	}{
		{"steady", 16, 3, 8, 16 * 3, false},
		{"overload", 16, 2, 2, 2, true},
	}
	for _, ph := range phases {
		sess := session.Open(session.Config{
			Workers:       h.cfg.Workers,
			MaxConcurrent: ph.maxConc,
			QueueDepth:    ph.queue,
			MemoryBudget:  1 << 30,
		})
		out, loopErr := serveLoop(sess, d, golden, ph.clients, ph.perClient)
		live, partials := sess.Live(), sess.PendingPartials()
		sess.Close()
		if loopErr != nil {
			return nil, fmt.Errorf("SERVE %s: %w", ph.name, loopErr)
		}
		resultOK := out.completed+out.shed == ph.clients*ph.perClient
		r.AddRow(
			ph.name,
			fmt.Sprintf("%d", ph.clients),
			fmt.Sprintf("%d", out.completed),
			fmt.Sprintf("%d", out.shed),
			fmt.Sprintf("%.2f", pctMS(out.latencies, 0.50)),
			fmt.Sprintf("%.2f", pctMS(out.latencies, 0.95)),
			fmt.Sprintf("%.2f", pctMS(out.latencies, 0.99)),
			fmt.Sprintf("%.1f", out.qps()),
			pass(resultOK),
			fmt.Sprintf("%d", live+int64(partials)),
		)
		if !resultOK {
			return nil, fmt.Errorf("SERVE %s: %d completed + %d shed != %d submitted",
				ph.name, out.completed, out.shed, ph.clients*ph.perClient)
		}
		if ph.wantShed && out.shed == 0 {
			return nil, fmt.Errorf("SERVE %s: expected load shedding under 2-slot admission, saw none", ph.name)
		}
		if !ph.wantShed && out.shed != 0 {
			return nil, fmt.Errorf("SERVE %s: %d queries shed with a %d-deep queue", ph.name, out.shed, ph.queue)
		}
		if live != 0 || partials != 0 {
			return nil, fmt.Errorf("SERVE %s: leaked %d live bytes, %d partials after drain", ph.name, live, partials)
		}
	}
	r.Note("mix %v; per-query workers = 1, so every served result is bit-identical (sha256 over hex-float rows) to the single-query golden run", serveQueries)
	r.Note("overload phase: 2 admission slots, 2-deep queue; sheds are typed ErrAdmissionRejected")
	return r, nil
}

// ConcurrentChaos is the CCHAOS experiment: eight queries served
// concurrently, half of them under a seeded 2%-per-site fault schedule with
// retry/rollback, plus one mid-run cancellation and one tight deadline.
// Non-faulted queries must match the single-query goldens bit-exactly;
// faulted queries must still succeed (retries) within the chaos tolerance;
// cancelled/deadline queries must fail typed if they fail at all; and the
// shared pool must drain to zero — failed queries return every block.
func (h *Harness) ConcurrentChaos() (*Report, error) {
	r := &Report{
		ID:    "CCHAOS",
		Title: "Concurrent serving under fault injection",
		Header: []string{
			"query", "faults", "retries", "outcome", "result", "wall_ms",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	golden, baseRows, err := h.serveGolden(d)
	if err != nil {
		return nil, fmt.Errorf("CCHAOS: %w", err)
	}

	sess := session.Open(session.Config{
		Workers:       h.cfg.Workers,
		MaxConcurrent: 8,
		QueueDepth:    16,
		MemoryBudget:  1 << 30,
	})
	defer sess.Close()

	type outcome struct {
		label   string
		faulted bool
		inj     *faults.Injector
		resp    *session.Response
		err     error
		wall    time.Duration
	}
	outcomes := make([]outcome, 0, 10)
	var mu sync.Mutex
	var wg sync.WaitGroup

	submit := func(label string, q int, mutate func(*session.Request), faulted bool, inj *faults.Injector) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := serveRequest(d, q)
			req.Label = label
			if inj != nil {
				req.Faults = inj
				req.MaxAttempts = 8
				req.RetryBackoff = 100 * time.Microsecond
			}
			if mutate != nil {
				mutate(&req)
			}
			t0 := time.Now()
			resp, err := sess.Submit(req)
			mu.Lock()
			outcomes = append(outcomes, outcome{label, faulted, inj, resp, err, time.Since(t0)})
			mu.Unlock()
		}()
	}

	// Eight concurrent queries: one clean and one faulted copy of each mix
	// query, all under the same seeded 2%-per-site schedule the CHAOS
	// experiment uses.
	for _, q := range serveQueries {
		submit(fmt.Sprintf("Q%d", q), q, nil, false, nil)
		inj := faults.New(faults.Config{
			Seed:       chaosSeed,
			Rates:      chaosSiteRates(),
			MaxLatency: 50 * time.Microsecond,
		})
		submit(fmt.Sprintf("Q%d+faults", q), q, nil, true, inj)
	}
	// A mid-run cancellation and a tight deadline ride along; whether each
	// fires before completion is timing-dependent, but a failure must be
	// typed and must release every block.
	ctx, cancel := context.WithCancel(context.Background())
	submit("Q18+cancel", 18, func(req *session.Request) { req.Context = ctx }, false, nil)
	go func() { time.Sleep(time.Millisecond); cancel() }()
	submit("Q18+deadline", 18, func(req *session.Request) { req.Deadline = 2 * time.Millisecond }, false, nil)

	wg.Wait()

	var totalInjected int64
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].label < outcomes[j].label })
	for _, o := range outcomes {
		probe := strings.Contains(o.label, "+cancel") || strings.Contains(o.label, "+deadline")
		var injected, retries int64
		resultCell, outcomeCell := "-", "completed"
		if o.resp != nil {
			rb := o.resp.Run.Robust()
			injected, retries = rb.FaultsInjected, rb.Retries
			totalInjected += injected
			if rb.LeakedBlocks+rb.OutstandingRefs != 0 {
				return nil, fmt.Errorf("CCHAOS: %s leaked %d blocks/refs", o.label, rb.LeakedBlocks+rb.OutstandingRefs)
			}
		}
		switch {
		case o.err == nil && o.faulted:
			// Retried/demoted runs may reorder float summation: tolerance.
			rows := engine.Rows(o.resp.Table)
			engine.SortRows(rows)
			q := mixQuery(o.label)
			resultCell = pass(chaosSameRows(baseRows[q], rows))
			if resultCell != "ok" {
				return nil, fmt.Errorf("CCHAOS: %s result differs from fault-free golden beyond tolerance", o.label)
			}
		case o.err == nil:
			q := mixQuery(o.label)
			resultCell = pass(serveChecksum(o.resp.Table) == golden[q])
			if resultCell != "ok" {
				return nil, fmt.Errorf("CCHAOS: %s (non-faulted) result not bit-identical to golden", o.label)
			}
		case probe:
			if !errors.Is(o.err, core.ErrQueryCancelled) && !errors.Is(o.err, core.ErrDeadlineExceeded) &&
				!errors.Is(o.err, session.ErrAdmissionRejected) {
				return nil, fmt.Errorf("CCHAOS: %s failed untyped: %v", o.label, o.err)
			}
			outcomeCell = "typed-abort"
		default:
			return nil, fmt.Errorf("CCHAOS: %s failed: %v", o.label, o.err)
		}
		r.AddRow(o.label, fmt.Sprintf("%d", injected), fmt.Sprintf("%d", retries),
			outcomeCell, resultCell, fmt.Sprintf("%.2f", float64(o.wall)/float64(time.Millisecond)))
	}
	if totalInjected == 0 {
		return nil, fmt.Errorf("CCHAOS: no faults fired — injectors not wired through the session")
	}
	if live := sess.Live(); live != 0 {
		return nil, fmt.Errorf("CCHAOS: %d live bytes after drain", live)
	}
	if p := sess.PendingPartials(); p != 0 {
		return nil, fmt.Errorf("CCHAOS: %d pending partials after drain", p)
	}
	r.Note("seed %d, 2%% fault rate per site on half the queries; non-faulted results bit-identical, faulted within 1e-6", chaosSeed)
	r.Note("cancel/deadline probes: typed abort or clean completion, never an untyped failure; pool drains to zero either way")
	return r, nil
}

// mixQuery recovers the TPC-H number from a serve label ("Q13+faults" → 13).
func mixQuery(label string) int {
	s := strings.TrimPrefix(label, "Q")
	if i := strings.IndexByte(s, '+'); i >= 0 {
		s = s[:i]
	}
	n, _ := strconv.Atoi(s)
	return n
}

// ServePoint is one client-count measurement in the serving artifact.
type ServePoint struct {
	Clients       int     `json:"clients"`
	Queries       int     `json:"queries"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
}

// ServeReport is the machine-readable serving artifact (BENCH_PR8.json).
type ServeReport struct {
	Suite         string       `json:"suite"`
	GoVersion     string       `json:"go_version"`
	GOOS          string       `json:"goos"`
	GOARCH        string       `json:"goarch"`
	CPUs          int          `json:"cpus"`
	SF            float64      `json:"sf"`
	Workers       int          `json:"workers"`
	MaxConcurrent int          `json:"max_concurrent"`
	Mix           []int        `json:"mix"`
	Points        []ServePoint `json:"points"`
}

// String renders the artifact as a table.
func (m *ServeReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve throughput/latency (SF %g, %d workers, %d admission slots, mix %v)\n",
		m.SF, m.Workers, m.MaxConcurrent, m.Mix)
	fmt.Fprintf(&sb, "%8s %8s %8s %6s %10s %8s %8s %8s\n",
		"clients", "queries", "done", "shed", "qps", "p50_ms", "p95_ms", "p99_ms")
	for _, p := range m.Points {
		fmt.Fprintf(&sb, "%8d %8d %8d %6d %10.1f %8.2f %8.2f %8.2f\n",
			p.Clients, p.Queries, p.Completed, p.Shed, p.ThroughputQPS, p.P50MS, p.P95MS, p.P99MS)
	}
	return sb.String()
}

// WriteJSON writes the artifact to path.
func (m *ServeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunServe measures closed-loop serving throughput and latency percentiles
// at 1, 4, and 16 clients (golden-checked like the SERVE experiment, queue
// sized to avoid shedding so the artifact tracks capacity, not rejects).
func RunServe(cfg Config) (*ServeReport, error) {
	cfg = cfg.withDefaults()
	h := New(cfg)
	d := h.Dataset(128<<10, storage.ColumnStore)
	golden, _, err := h.serveGolden(d)
	if err != nil {
		return nil, fmt.Errorf("serve artifact: %w", err)
	}
	const maxConc = 4
	rep := &ServeReport{
		Suite:         "serve",
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		SF:            cfg.SF,
		Workers:       cfg.Workers,
		MaxConcurrent: maxConc,
		Mix:           serveQueries,
	}
	for _, clients := range []int{1, 4, 16} {
		perClient := 4
		sess := session.Open(session.Config{
			Workers:       cfg.Workers,
			MaxConcurrent: maxConc,
			QueueDepth:    clients * perClient,
			MemoryBudget:  1 << 30,
		})
		out, loopErr := serveLoop(sess, d, golden, clients, perClient)
		sess.Close()
		if loopErr != nil {
			return nil, fmt.Errorf("serve artifact at %d clients: %w", clients, loopErr)
		}
		rep.Points = append(rep.Points, ServePoint{
			Clients:       clients,
			Queries:       clients * perClient,
			Completed:     out.completed,
			Shed:          out.shed,
			ThroughputQPS: out.qps(),
			P50MS:         pctMS(out.latencies, 0.50),
			P95MS:         pctMS(out.latencies, 0.95),
			P99MS:         pctMS(out.latencies, 0.99),
		})
	}
	return rep, nil
}
