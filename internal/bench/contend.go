package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// ContentionProfile reports the batch-kernel contention counters for
// build-heavy TPC-H queries at the configured worker count: hash-table
// shard-lock acquisitions versus rows built (the lock-amortization ratio),
// rows processed through block-granular kernels, and scratch-buffer pool
// hits. Before the batch kernels, the build path acquired one shard lock per
// inserted row — locks/1K rows was ~1000 by construction; the block-granular
// kernels take each touched shard lock once per block, so the ratio collapses
// by orders of magnitude and stops polluting the UoT sweep signal at high
// worker counts.
func (h *Harness) ContentionProfile() (*Report, error) {
	r := &Report{
		ID:    "CONTEND",
		Title: "Batch-kernel contention profile (shard locks vs rows, scratch reuse)",
		Header: []string{
			"query", "uot", "rows_in", "batched_rows", "shard_locks", "locks_per_1k_rows", "scratch_hit_%",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	for _, q := range []int{3, 7} {
		for _, low := range []bool{true, false} {
			uot := core.UoTTable
			if low {
				uot = 1
			}
			res, err := h.run(d, q, engine.Options{
				Workers: h.cfg.Workers, UoTBlocks: uot, TempBlockBytes: 128 << 10,
			}, tpch.QueryOpts{})
			if err != nil {
				return nil, err
			}
			locks, batched, scratch := res.Run.Contention()
			var rowsIn, wos int64
			for _, t := range res.Run.PerOp() {
				rowsIn += t.Rows
				wos += int64(t.Count)
			}
			perK := "-"
			if batched > 0 {
				perK = fmt.Sprintf("%.2f", float64(locks)/float64(batched)*1000)
			}
			hitPct := "-"
			if wos > 0 {
				hitPct = fmt.Sprintf("%.1f", 100*float64(scratch)/float64(wos))
			}
			r.AddRow(
				fmt.Sprintf("Q%02d", q), uotLabel(low),
				fmt.Sprintf("%d", rowsIn),
				fmt.Sprintf("%d", batched),
				fmt.Sprintf("%d", locks),
				perK, hitPct,
			)
		}
	}
	r.Note("row-at-a-time builds acquire 1000 locks per 1K rows by construction; the batch kernels take each touched shard lock once per block")
	return r, nil
}
