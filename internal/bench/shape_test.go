package bench

import (
	"strconv"
	"testing"
)

// Shape tests: these assert the qualitative results the paper reports — who
// wins, in which regime — so a regression that silently flips a conclusion
// fails CI, not just reads oddly in EXPERIMENTS.md. They run the real
// experiment runners at reduced scale.

func cell(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func TestShapeEq1BothRegimesNearOneAtScale(t *testing.T) {
	h := tiny()
	r, err := h.Eq1RatioSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Find the 2MB / T=20 row: p1' must be 1 and both ratios within
	// [0.5, 2] (the Section V-A "very close to 1" claim).
	found := false
	for i, row := range r.Rows {
		if row[0] == "2MB" && row[1] == "20" {
			found = true
			if p1 := cell(t, r, i, 2); p1 != 1 {
				t.Errorf("p1' = %v, want 1", p1)
			}
			for col := 3; col <= 4; col++ {
				if v := cell(t, r, i, col); v < 0.5 || v > 2 {
					t.Errorf("ratio col %d = %v, want near 1", col, v)
				}
			}
		}
	}
	if !found {
		t.Fatal("2MB/T=20 row missing")
	}
}

func TestShapeSec5CPipeliningWinsOnDisk(t *testing.T) {
	h := tiny()
	r, err := h.Sec5CPersistentStore()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		high, low := cell(t, r, i, 1), cell(t, r, i, 2)
		if high < 50*low {
			t.Errorf("row %d: disk advantage only %vx", i, high/low)
		}
	}
}

func TestShapeSSBInversion(t *testing.T) {
	h := tiny()
	r, err := h.Sec6BSSBFootprint()
	if err != nil {
		t.Fatal(err)
	}
	// Low-UoT temp never exceeds high-UoT temp, and is strictly lower for
	// the join-heavy flights (pipelining wins the memory comparison when
	// hash tables are small). At tiny scale q1.1's intermediate is a
	// couple of blocks either way, so strictness is only required of the
	// majority.
	strict := 0
	for i, row := range r.Rows {
		lowTemp, highTemp := cell(t, r, i, 2), cell(t, r, i, 4)
		if lowTemp > highTemp {
			t.Errorf("%s: low temp %v > high temp %v", row[0], lowTemp, highTemp)
		}
		if lowTemp < highTemp {
			strict++
		}
	}
	if strict < len(r.Rows)/2 {
		t.Errorf("inversion visible on only %d of %d SSB queries", strict, len(r.Rows))
	}
}

func TestShapeLIPPrunes(t *testing.T) {
	h := tiny()
	r, err := h.Sec6CLIP()
	if err != nil {
		t.Fatal(err)
	}
	noLIP, withLIP := cell(t, r, 0, 1), cell(t, r, 1, 1)
	if withLIP*5 > noLIP {
		t.Errorf("LIP pruned %v -> %v rows; expected >5x reduction", noLIP, withLIP)
	}
}

func TestShapeTab6PrefetchDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SF-0.2 row-store datasets")
	}
	// The probe/build penalty is a contention effect and needs the
	// paper's T=20; at low thread counts prefetching legitimately breaks
	// even (sequential savings dominate).
	h := New(Config{SF: 0.005, Workers: 20, Runs: 1, Best: 1})
	r, err := h.Tab6Prefetching()
	if err != nil {
		t.Fatal(err)
	}
	// Largest block size row: select must benefit from prefetching,
	// build and probe must be hurt by it (Table VI's directions).
	last := len(r.Rows) - 1
	if selYes, selNo := cell(t, r, last, 1), cell(t, r, last, 2); selYes >= selNo {
		t.Errorf("select: prefetch on %v should beat off %v", selYes, selNo)
	}
	if buildYes, buildNo := cell(t, r, last, 3), cell(t, r, last, 4); buildYes <= buildNo {
		t.Errorf("build: prefetch on %v should cost more than off %v", buildYes, buildNo)
	}
	if probeYes, probeNo := cell(t, r, last, 5), cell(t, r, last, 6); probeYes <= probeNo {
		t.Errorf("probe: prefetch on %v should cost more than off %v", probeYes, probeNo)
	}
}

func TestShapeFig9SmallHashTableScalesBetter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SF-0.2 dataset")
	}
	h := New(Config{SF: 0.005, Workers: 20, Runs: 1, Best: 1})
	r, err := h.Fig9Scalability()
	if err != nil {
		t.Fatal(err)
	}
	// At T=20 (last row): small-HT probe speedup must exceed large-HT
	// probe speedup by at least 2x, and the large one must be capped well
	// below ideal.
	last := len(r.Rows) - 1
	small, large := cell(t, r, last, 2), cell(t, r, last, 3)
	if small < 2*large {
		t.Errorf("small-HT speedup %v should dominate large-HT %v", small, large)
	}
	if large > 10 {
		t.Errorf("large-HT probe speedup %v should be contention-capped", large)
	}
}

// TestShapeAggKernelRouting asserts the AGG experiment's routing claim: the
// int-keyed aggregations (Q13, Q15, Q18) run entirely on the vectorized
// fixed-width path, while char group keys (Q1) and count(distinct) (Q16)
// keep at least one aggregation on the reference fallback.
func TestShapeAggKernelRouting(t *testing.T) {
	rep, err := tiny().AggKernelProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("AGG rows = %d, want 5", len(rep.Rows))
	}
	for i, row := range rep.Rows {
		fastPct := cell(t, rep, i, 2)
		fanout := cell(t, rep, i, 4)
		switch row[0] {
		case "Q13", "Q15", "Q18":
			if fastPct != 100 {
				t.Errorf("%s: fast_%% = %v, want 100 (all int keys)", row[0], fastPct)
			}
			if fanout == 0 {
				t.Errorf("%s: merge fan-out = 0, want parallel radix merges", row[0])
			}
		case "Q01", "Q16":
			if fastPct >= 100 {
				t.Errorf("%s: fast_%% = %v, want a fallback share", row[0], fastPct)
			}
		}
	}
}
