package bench

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// The two probe operators of Q7 (Section VII-B5): probe(supplier) probes a
// small hash table that stays cache-resident and scales well; probe(orders)
// probes a hash table built on the ENTIRE orders table, whose misses contend
// for memory bandwidth and scale poorly.
const (
	q7SmallProbe = "probe(supplier)"
	q7LargeProbe = "probe(orders)"
)

// simQ7 runs Q7 with a cache simulator configured for the given thread
// count and L3 size, returning the run plus the built plan for schema
// introspection.
func (h *Harness) simQ7(blockBytes, uot, threads int, l3 int64) (*stats.Run, *engine.Builder, error) {
	d := h.DatasetSF(h.scaleSF(), blockBytes, storage.ColumnStore)
	p := cachesim.Default()
	p.L3Bytes = l3
	sim := cachesim.New(p)
	sim.SetThreads(threads)
	b, err := tpch.Build(d, 7, tpch.QueryOpts{})
	if err != nil {
		return nil, nil, err
	}
	res, err := engine.Execute(b, engine.Options{
		Workers: 1, UoTBlocks: uot, TempBlockBytes: blockBytes, Sim: sim,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Run, b, nil
}

// lptMakespan assigns work-order durations to `workers` bins longest-first
// (LPT list scheduling) and returns the largest bin: the operator's makespan
// under T virtual workers.
func lptMakespan(durations []int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	// insertion sort descending (counts are small: thousands of WOs)
	for i := 1; i < len(durations); i++ {
		v := durations[i]
		j := i - 1
		for j >= 0 && durations[j] < v {
			durations[j+1] = durations[j]
			j--
		}
		durations[j+1] = v
	}
	bins := make([]int64, workers)
	for _, d := range durations {
		min := 0
		for i := 1; i < workers; i++ {
			if bins[i] < bins[min] {
				min = i
			}
		}
		bins[min] += d
	}
	var max int64
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	return max
}

// opSimMakespan computes an operator's simulated makespan at T workers.
func opSimMakespan(run *stats.Run, name string, workers int) int64 {
	var durs []int64
	for _, w := range run.Orders() {
		if w.OpName == name {
			durs = append(durs, w.Sim)
		}
	}
	return lptMakespan(durs, workers)
}

// Fig9Scalability reproduces Fig. 9: the speedup of Q7's two probe
// operators as the thread count grows, against ideal linear speedup.
//
// Times are simulated: per-work-order costs grow with thread count through
// the memory-bandwidth contention model, and the operator makespan is the
// LPT schedule of its work orders over T virtual workers. (Wall-clock
// scalability is not measurable on this host — the build machine exposes a
// single CPU — so the deterministic model stands in; see DESIGN.md.) The L3
// here is sized so probe inputs are uniformly memory-resident at every T,
// matching the paper's SF-50 regime where intermediates dwarf the cache;
// the small supplier hash table still fits (its accesses do not contend),
// while the orders hash table misses to contended memory.
func (h *Harness) Fig9Scalability() (*Report, error) {
	r := &Report{
		ID:     "FIG9",
		Title:  "Scalability of two probe operators from Q7 (simulated speedup over T=1)",
		Header: []string{"threads", "ideal", "probe(supplier,small_ht)", "probe(orders,large_ht)"},
	}
	const blockBytes = 512 << 10
	const l3 = 512 << 10
	base := map[string]int64{}
	for _, t := range []int{1, 2, 5, 10, 20} {
		run, _, err := h.simQ7(blockBytes, core.UoTTable, t, l3)
		if err != nil {
			return nil, err
		}
		small := opSimMakespan(run, q7SmallProbe, t)
		large := opSimMakespan(run, q7LargeProbe, t)
		if t == 1 {
			base[q7SmallProbe], base[q7LargeProbe] = small, large
		}
		r.AddRow(
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%d.00", t),
			simSpeedup(base[q7SmallProbe], small),
			simSpeedup(base[q7LargeProbe], large),
		)
	}
	r.Note("the small hash table stays cache-resident (hits do not contend); the large one misses to memory, where bandwidth contention caps the speedup")
	return r, nil
}

func simSpeedup(base, cur int64) string {
	if cur == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(base)/float64(cur))
}

// q7ProbeInputWidth returns the row width of the named probe's input
// relation in a built Q7 plan.
func q7ProbeInputWidth(b *engine.Builder, probe string) (int, error) {
	switch probe {
	case q7LargeProbe: // fed by select(lineitem)
		if sel, ok := findOp[*exec.SelectOp](b, "select(lineitem)"); ok {
			return sel.OutSchema().RowWidth(), nil
		}
	case q7SmallProbe: // fed by probe(orders)
		if p, ok := findOp[*exec.ProbeOp](b, q7LargeProbe); ok {
			return p.OutSchema().RowWidth(), nil
		}
	}
	return 0, fmt.Errorf("bench: cannot resolve input width for %q", probe)
}

// Fig10ScalabilityInteraction reproduces Fig. 10: per-task simulated time of
// the same two probes across block sizes for both UoT values at T=20,
// normalized to a full input block. Per-task time grows with block size
// (more rows per work order); low UoT keeps the probe input hot at small
// blocks (2BT under the cache) and so stays more resilient — the
// Section VII-B5 interaction.
func (h *Harness) Fig10ScalabilityInteraction() (*Report, error) {
	r := &Report{
		ID:    "FIG10",
		Title: "Per-task simulated time (ms per full block) of Q7's probes vs. block size and UoT (T=20)",
		Header: []string{
			"operator", "block", "uot=low", "uot=high",
		},
	}
	for _, op := range []string{q7SmallProbe, q7LargeProbe} {
		for _, blockBytes := range []int{128 << 10, 512 << 10, 2 << 20} {
			var cells []string
			for _, uot := range []int{1, core.UoTTable} {
				run, b, err := h.simQ7(blockBytes, uot, h.cfg.Workers, h.cfg.SimL3Bytes)
				if err != nil {
					return nil, err
				}
				width, err := q7ProbeInputWidth(b, op)
				if err != nil {
					return nil, err
				}
				v := fullBlockTaskMs(run, op, int64(blockBytes/width))
				if v == 0 {
					return nil, fmt.Errorf("fig10: missing %s", op)
				}
				cells = append(cells, fmt.Sprintf("%.3f", v))
			}
			r.AddRow(op, blockLabel(blockBytes), cells[0], cells[1])
		}
	}
	r.Note("low UoT keeps the probe input hot and its effective DOP smaller, making it more immune to contention (Section VII-B5)")
	return r, nil
}
