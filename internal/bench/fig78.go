package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// queryWall measures one query's wall-clock time (best-of policy). With
// Config.Adaptive set, the run uses the adaptive per-edge UoT controller in
// place of the caller's static UoTBlocks setting.
func (h *Harness) queryWall(d *tpch.Dataset, num int, opts engine.Options, qo tpch.QueryOpts) (string, error) {
	if h.cfg.Adaptive {
		opts.AdaptiveUoT = true
	}
	dur, _, err := h.bestOf(func() (*stats.Run, error) {
		res, err := h.run(d, num, opts, qo)
		if err != nil {
			return nil, err
		}
		return res.Run, nil
	})
	if err != nil {
		return "", err
	}
	return ms(dur), nil
}

// Fig7QueryTimes reproduces Fig. 7: end-to-end execution time of every
// query for low vs. high UoT at (a) 128 KB and (b) 2 MB blocks, wall clock,
// column-store base tables. The paper's observation: low UoT helps slightly
// at small blocks; at 2 MB the two are indistinguishable, and everything is
// faster with bigger blocks (less storage-management overhead).
func (h *Harness) Fig7QueryTimes() (*Report, error) {
	r := &Report{
		ID:    "FIG7",
		Title: "Query execution times, column store (wall ms, best-of runs)",
		Header: []string{
			"query", "128KB/low", "128KB/high", "2MB/low", "2MB/high",
		},
	}
	for _, num := range tpch.Numbers() {
		row := []string{fmt.Sprintf("Q%02d", num)}
		for _, blockBytes := range []int{128 << 10, 2 << 20} {
			d := h.Dataset(blockBytes, storage.ColumnStore)
			for _, uot := range []int{1, core.UoTTable} {
				cell, err := h.queryWall(d, num, engine.Options{
					Workers: h.cfg.Workers, UoTBlocks: uot, TempBlockBytes: blockBytes,
				}, tpch.QueryOpts{})
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
		}
		r.AddRow(row...)
	}
	r.Note("Fig. 7a is the 128KB pair of columns, Fig. 7b the 2MB pair")
	return r, nil
}

// Fig8RowStore reproduces Fig. 8: query times with all base tables in the
// row-store format at 2 MB blocks. The UoT choice stays irrelevant; queries
// are generally slower than the column-store runs of Fig. 7b because scans
// drag non-referenced columns through the caches.
func (h *Harness) Fig8RowStore() (*Report, error) {
	r := &Report{
		ID:     "FIG8",
		Title:  "Query execution times, row store, 2MB blocks (wall ms)",
		Header: []string{"query", "low_uot", "high_uot", "colstore_low (Fig7b ref)"},
	}
	dRow := h.Dataset2MBRow()
	dCol := h.Dataset(2<<20, storage.ColumnStore)
	for _, num := range tpch.Numbers() {
		row := []string{fmt.Sprintf("Q%02d", num)}
		for _, uot := range []int{1, core.UoTTable} {
			cell, err := h.queryWall(dRow, num, engine.Options{
				Workers: h.cfg.Workers, UoTBlocks: uot, TempBlockBytes: 2 << 20,
			}, tpch.QueryOpts{})
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		ref, err := h.queryWall(dCol, num, engine.Options{
			Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 2 << 20,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, err
		}
		row = append(row, ref)
		r.AddRow(row...)
	}
	return r, nil
}

// Dataset2MBRow returns the row-store dataset used by Fig. 8 and Table VI.
func (h *Harness) Dataset2MBRow() *tpch.Dataset { return h.Dataset(2<<20, storage.RowStore) }
