package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/uotctl"
)

// adaptStatics is the static UoT spectrum the adaptive controller is judged
// against: the two paper endpoints plus intermediate operating points.
var adaptStatics = []int{1, 4, 16, 64, core.UoTTable}

func adaptStaticLabel(uot int) string {
	if uot == core.UoTTable {
		return "table"
	}
	return fmt.Sprintf("%d", uot)
}

// AdaptiveProfile (ADAPT) sweeps the Fig. 7 query suite at 128 KB
// column-store blocks over the static UoT spectrum and the adaptive per-edge
// controller, wall clock best-of-runs. Three things are checked per query:
// the adaptive result matches the UoT=1 reference (float aggregates within
// 1e-6 — mid-run UoT changes regroup work orders, so summation order may
// differ), the adaptive time lands near the best static setting, and the
// per-edge decision counters surface what the controller actually did.
func (h *Harness) AdaptiveProfile() (*Report, error) {
	r := &Report{
		ID:    "ADAPT",
		Title: "Adaptive per-edge UoT vs static settings, column store 128KB (wall ms)",
	}
	r.Header = append(r.Header, "query")
	for _, uot := range adaptStatics {
		r.Header = append(r.Header, "uot="+adaptStaticLabel(uot))
	}
	r.Header = append(r.Header, "adaptive", "vs_best", "vs_worst", "raise/lower/snap", "result")

	const blockBytes = 128 << 10
	d := h.Dataset(blockBytes, storage.ColumnStore)
	within5, faster20 := 0, 0
	for _, num := range tpch.Numbers() {
		// Reference result at UoT=1 for the correctness check.
		refRes, err := h.run(d, num, engine.Options{
			Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: blockBytes,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, fmt.Errorf("ADAPT: reference Q%d: %w", num, err)
		}
		ref := engine.Rows(refRes.Table)
		engine.SortRows(ref)

		row := []string{fmt.Sprintf("Q%02d", num)}
		var bestStatic, worstStatic time.Duration
		for _, uot := range adaptStatics {
			dur, _, err := h.bestOf(func() (*stats.Run, error) {
				res, err := h.run(d, num, engine.Options{
					Workers: h.cfg.Workers, UoTBlocks: uot, TempBlockBytes: blockBytes,
				}, tpch.QueryOpts{})
				if err != nil {
					return nil, err
				}
				return res.Run, nil
			})
			if err != nil {
				return nil, fmt.Errorf("ADAPT: Q%d uot=%s: %w", num, adaptStaticLabel(uot), err)
			}
			if bestStatic == 0 || dur < bestStatic {
				bestStatic = dur
			}
			if dur > worstStatic {
				worstStatic = dur
			}
			row = append(row, ms(dur))
		}

		resultOK := true
		adaptDur, adaptRun, err := h.bestOf(func() (*stats.Run, error) {
			res, err := h.run(d, num, engine.Options{
				Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: blockBytes,
				AdaptiveUoT: true,
			}, tpch.QueryOpts{})
			if err != nil {
				return nil, err
			}
			rows := engine.Rows(res.Table)
			engine.SortRows(rows)
			if !chaosSameRows(ref, rows) {
				resultOK = false
			}
			return res.Run, nil
		})
		if err != nil {
			return nil, fmt.Errorf("ADAPT: Q%d adaptive: %w", num, err)
		}
		if !resultOK {
			return nil, fmt.Errorf("ADAPT: Q%d adaptive result deviates from the UoT=1 reference", num)
		}

		var raises, lowers, snaps int64
		for _, e := range adaptRun.EdgeUoTs() {
			raises += e.Raises
			lowers += e.Lowers
			snaps += e.Snaps
		}
		vsBest := 100 * (adaptDur.Seconds() - bestStatic.Seconds()) / bestStatic.Seconds()
		vsWorst := 100 * (adaptDur.Seconds() - worstStatic.Seconds()) / worstStatic.Seconds()
		if vsBest <= 5 {
			within5++
		}
		if vsWorst <= -20 {
			faster20++
		}
		row = append(row, ms(adaptDur),
			fmt.Sprintf("%+.1f%%", vsBest),
			fmt.Sprintf("%+.1f%%", vsWorst),
			fmt.Sprintf("%d/%d/%d", raises, lowers, snaps),
			pass(resultOK))
		r.AddRow(row...)
	}
	r.Note("vs_best: adaptive time relative to the best static setting per query (<= +5%% target)")
	r.Note("vs_worst: relative to the worst static setting (negative = adaptive faster)")
	r.Note("%d/%d queries within 5%% of best static; %d at least 20%% faster than worst static",
		within5, len(tpch.Numbers()), faster20)
	return r, nil
}

// Micro benchmarks for the adaptive decision path: the controller's raw
// per-observation cost, the model-prior computation, and the end-to-end
// overhead of running a query with the controller attached vs. a static run
// in the same binary (the <1%-when-enabled acceptance target; the
// disabled-path cost shows up as the static number tracking earlier BENCH
// artifacts).

var (
	adaptMicroOnce sync.Once
	adaptMicroTPCH *tpch.Dataset
)

// adaptMicroDataset loads (once) a tiny TPC-H dataset for the end-to-end
// overhead benchmarks; SF 0.01 keeps one op in the low milliseconds so
// testing.Benchmark's auto-scaling stays cheap.
func adaptMicroDataset() *tpch.Dataset {
	adaptMicroOnce.Do(func() {
		adaptMicroTPCH = tpch.Load(0.01, 128<<10, storage.ColumnStore)
	})
	return adaptMicroTPCH
}

// benchAdaptQuery runs TPC-H Q1 end to end per op, static or adaptive. The
// adaptive variant pins the controller to the static schedule (prior off,
// Floor = Ceiling = the static UoT) so every decision is a Hold and the two
// runs execute identical work orders: the ratio isolates the controller
// mechanism — clock reads, service-time attribution, signal assembly, the
// observe call — from schedule differences, which are ADAPT's subject.
func benchAdaptQuery(workers int, adaptive bool) func(b *testing.B) {
	return func(b *testing.B) {
		d := adaptMicroDataset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bld, err := tpch.Build(d, 1, tpch.QueryOpts{})
			if err != nil {
				b.Fatal(err)
			}
			opts := engine.Options{
				Workers: workers, UoTBlocks: 1, TempBlockBytes: 128 << 10,
			}
			if adaptive {
				opts.AdaptiveUoT = true
				opts.AdaptiveConfig = uotctl.Config{
					DisablePrior: true, DefaultUoT: 1, Floor: 1, Ceiling: 1,
				}
			}
			if _, err := engine.Execute(bld, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// adaptQ1Overhead measures the controller's end-to-end mechanism cost as a
// ratio: TPC-H Q1 with a pinned controller (every decision a Hold, identical
// schedule to static — see benchAdaptQuery) over Q1 without one. Separate
// testing.Benchmark batches drift by ±10% on this host over the minutes a
// suite run takes, which swamps a sub-1% effect; alternating single
// executions back to back exposes both sides to the same drift, and the
// best-of-K on each side discards the GC/scheduling outliers.
func adaptQ1Overhead() float64 {
	d := adaptMicroDataset()
	run := func(adaptive bool) time.Duration {
		bld, err := tpch.Build(d, 1, tpch.QueryOpts{})
		if err != nil {
			panic(err)
		}
		opts := engine.Options{Workers: 8, UoTBlocks: 1, TempBlockBytes: 128 << 10}
		if adaptive {
			opts.AdaptiveUoT = true
			opts.AdaptiveConfig = uotctl.Config{
				DisablePrior: true, DefaultUoT: 1, Floor: 1, Ceiling: 1,
			}
		}
		start := time.Now()
		if _, err := engine.Execute(bld, opts); err != nil {
			panic(err)
		}
		return time.Since(start)
	}
	run(false)
	run(true)
	best := [2]time.Duration{1 << 62, 1 << 62}
	for i := 0; i < 15; i++ {
		for j, adaptive := range [2]bool{false, true} {
			if got := run(adaptive); got < best[j] {
				best[j] = got
			}
		}
	}
	return float64(best[1]) / float64(best[0])
}

// benchUoTObserve measures one controller decision: the gauge pattern cycles
// backlog pressure, starvation, and quiet intervals so hysteresis streaks
// keep advancing instead of the controller settling into pure holds.
func benchUoTObserve(b *testing.B) {
	c := uotctl.New(uotctl.Config{Workers: 8, BlockBytes: 128 << 10, DefaultUoT: 4})
	e := c.AddEdge(4)
	sigs := []uotctl.Signals{
		{Buffered: 64, Delivered: 4, IntervalNS: 1000, ServiceNS: 400},
		{Buffered: 0, Delivered: 4, StallNS: 900, IntervalNS: 1000, ServiceNS: 100},
		{Buffered: 2, Delivered: 4, IntervalNS: 1000, ServiceNS: 500},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(e, sigs[i%len(sigs)])
	}
}

// benchUoTPrior measures the Section V model-prior computation that seeds
// cold edges (runs once per undeclared edge per execution).
func benchUoTPrior(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		uotctl.Prior(128<<10, 20)
	}
}
