package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// spillUoT is the unit of transfer for the spill runs: deep enough edge
// backlogs that a threshold at a quarter of the unconstrained peak forces
// real eviction traffic on every mix query.
const spillUoT = 8

// spillTempDir creates a parent directory for per-run spill subdirectories
// and returns it with a cleanup check: after the runs the parent must be
// empty (the engine removes each per-run subdirectory, extent files and all).
func spillTempDir() (string, func() error, error) {
	dir, err := os.MkdirTemp("", "uotbench-spill-")
	if err != nil {
		return "", nil, err
	}
	check := func() error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		if len(entries) != 0 {
			return fmt.Errorf("%d spill entries leaked in %s", len(entries), dir)
		}
		return os.RemoveAll(dir)
	}
	return dir, check, nil
}

// spillBaseline runs one mix query unconstrained (no spill tier) and returns
// its golden checksum and the peak live temp bytes the spilled runs are
// throttled against.
func (h *Harness) spillBaseline(d *tpch.Dataset, q int) (sum string, peak int64, err error) {
	res, err := h.run(d, q, engine.Options{
		Workers: 1, UoTBlocks: spillUoT, TempBlockBytes: 128 << 10, MemoryBudget: serveBudget,
	}, tpch.QueryOpts{})
	if err != nil {
		return "", 0, fmt.Errorf("unconstrained Q%d: %w", q, err)
	}
	return serveChecksum(res.Table), res.Run.Intermediates.High(), nil
}

// Spill is the SPILL experiment: the TPC-H mix re-run with a disk-backed
// spill tier whose threshold caps resident temp bytes at a quarter of each
// query's unconstrained peak. Phase one runs each query single-query and
// requires a bit-identical result, real two-way disk traffic, a bounded
// extent high-water mark, and zero leaks — neither blocks nor spill files.
// Phase two serves the mix concurrently through a session sharing one spill
// tier and requires the same goldens plus a fully drained tier after Close.
func (h *Harness) Spill() (*Report, error) {
	r := &Report{
		ID:    "SPILL",
		Title: "Disk-backed spill tier: RAM capped at 25% of unconstrained peak",
		Header: []string{
			"query", "peak_mib", "thresh_mib", "out_blk", "in_blk", "disk_peak_mib", "stall_ms", "result", "leaks",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)

	parent, checkClean, err := spillTempDir()
	if err != nil {
		return nil, fmt.Errorf("SPILL: %w", err)
	}

	var maxPeak, totalOut int64
	for _, q := range serveQueries {
		golden, peak, err := h.spillBaseline(d, q)
		if err != nil {
			return nil, fmt.Errorf("SPILL: %w", err)
		}
		if peak > maxPeak {
			maxPeak = peak
		}
		threshold := peak / 4
		res, err := h.run(d, q, engine.Options{
			Workers: 1, UoTBlocks: spillUoT, TempBlockBytes: 128 << 10, MemoryBudget: serveBudget,
			SpillDir: parent, SpillThreshold: threshold,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, fmt.Errorf("SPILL: throttled Q%d: %w", q, err)
		}
		sp := res.Run.Spill()
		rb := res.Run.Robust()
		resultOK := serveChecksum(res.Table) == golden
		leaks := rb.LeakedBlocks + rb.OutstandingRefs + sp.DiskLive
		r.AddRow(
			fmt.Sprintf("Q%d", q),
			mib(peak),
			mib(threshold),
			fmt.Sprintf("%d", sp.BlocksOut),
			fmt.Sprintf("%d", sp.BlocksIn),
			mib(sp.DiskPeak),
			fmt.Sprintf("%.2f", float64(sp.FaultStallNS)/1e6),
			pass(resultOK),
			fmt.Sprintf("%d", leaks),
		)
		if !resultOK {
			return nil, fmt.Errorf("SPILL: Q%d spilled result differs from unconstrained golden", q)
		}
		if sp.BlocksOut == 0 || sp.BlocksIn == 0 {
			return nil, fmt.Errorf("SPILL: Q%d saw no two-way spill traffic at threshold %d (out=%d in=%d)",
				q, threshold, sp.BlocksOut, sp.BlocksIn)
		}
		if sp.DiskPeak > 4*peak {
			return nil, fmt.Errorf("SPILL: Q%d extent high-water %d unbounded vs %d peak", q, sp.DiskPeak, peak)
		}
		if leaks != 0 {
			return nil, fmt.Errorf("SPILL: Q%d leaked %d blocks/refs/extent-bytes", q, leaks)
		}
		totalOut += sp.BlocksOut
	}
	if err := checkClean(); err != nil {
		return nil, fmt.Errorf("SPILL: %w", err)
	}

	// Phase two: the mix served concurrently over one shared spill tier.
	golden, _, err := h.serveGolden(d)
	if err != nil {
		return nil, fmt.Errorf("SPILL: %w", err)
	}
	parent2, checkClean2, err := spillTempDir()
	if err != nil {
		return nil, fmt.Errorf("SPILL: %w", err)
	}
	sess := session.Open(session.Config{
		Workers:        h.cfg.Workers,
		MaxConcurrent:  4,
		QueueDepth:     8 * 2,
		MemoryBudget:   1 << 30,
		SpillDir:       parent2,
		SpillThreshold: maxPeak / 4,
	})
	out, loopErr := serveLoop(sess, d, golden, 8, 2)
	live, partials := sess.Live(), sess.PendingPartials()
	sc := sess.SpillStats()
	sess.Close()
	if loopErr != nil {
		return nil, fmt.Errorf("SPILL: served phase: %w", loopErr)
	}
	if out.completed != 8*2 {
		return nil, fmt.Errorf("SPILL: served phase completed %d of %d", out.completed, 8*2)
	}
	if sc.BadEvicts != 0 {
		return nil, fmt.Errorf("SPILL: served phase: %d evictions raced a live pin", sc.BadEvicts)
	}
	if live != 0 || partials != 0 || sc.DiskLive != 0 || sc.Outstanding != 0 {
		return nil, fmt.Errorf("SPILL: served phase leaked: %d live bytes, %d partials, %d extent bytes, %d tracked blocks",
			live, partials, sc.DiskLive, sc.Outstanding)
	}
	if err := checkClean2(); err != nil {
		return nil, fmt.Errorf("SPILL: served phase: %w", err)
	}
	r.AddRow("served",
		mib(maxPeak),
		mib(maxPeak/4),
		fmt.Sprintf("%d", sc.BlocksOut),
		fmt.Sprintf("%d", sc.BlocksIn),
		mib(sc.DiskPeak),
		fmt.Sprintf("%.2f", float64(sc.FaultStallNS)/1e6),
		pass(true),
		"0",
	)

	r.Note("mix %v at UoT %d blocks; threshold = unconstrained peak / 4, so ≥75%% of each query's temp footprint must live on disk at pressure", serveQueries, spillUoT)
	r.Note("spilled results are bit-identical (sha256 over hex-float rows) to the unconstrained runs; %d blocks spilled in total; spill directories removed", totalOut)
	return r, nil
}

// SpillPoint is one (query, RAM-fraction) measurement in the spill artifact.
type SpillPoint struct {
	Query       int     `json:"query"`
	RAMFraction float64 `json:"ram_fraction"` // threshold / unconstrained peak; 1 = no eviction pressure
	ThresholdB  int64   `json:"threshold_bytes"`
	WallMS      float64 `json:"wall_ms"`
	BlocksOut   int64   `json:"blocks_out"`
	BlocksIn    int64   `json:"blocks_in"`
	BytesOut    int64   `json:"bytes_out"`
	BytesIn     int64   `json:"bytes_in"`
	DiskPeakB   int64   `json:"disk_peak_bytes"`
	StallMS     float64 `json:"fault_in_stall_ms"`
}

// SpillReport is the machine-readable spill-sweep artifact (BENCH_PR9.json).
type SpillReport struct {
	Suite     string       `json:"suite"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	SF        float64      `json:"sf"`
	UoTBlocks int          `json:"uot_blocks"`
	Mix       []int        `json:"mix"`
	Points    []SpillPoint `json:"points"`
}

// String renders the artifact as a table.
func (m *SpillReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "spill sweep: RAM fraction of unconstrained peak (SF %g, UoT %d, mix %v)\n",
		m.SF, m.UoTBlocks, m.Mix)
	fmt.Fprintf(&sb, "%6s %6s %10s %9s %8s %8s %13s %9s\n",
		"query", "ram", "wall_ms", "out_blk", "in_blk", "out_mib", "disk_peak_mib", "stall_ms")
	for _, p := range m.Points {
		fmt.Fprintf(&sb, "%6s %6.2f %10.2f %9d %8d %8.2f %13.2f %9.2f\n",
			fmt.Sprintf("Q%d", p.Query), p.RAMFraction, p.WallMS, p.BlocksOut, p.BlocksIn,
			float64(p.BytesOut)/(1<<20), float64(p.DiskPeakB)/(1<<20), p.StallMS)
	}
	return sb.String()
}

// WriteJSON writes the artifact to path.
func (m *SpillReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunSpill sweeps the spill threshold over fractions of each mix query's
// unconstrained peak (1 = all-RAM baseline, then ½, ¼, ⅛) and records wall
// time and disk traffic at each point — the cost curve of trading resident
// temp memory for extent I/O. Every spilled result is golden-checked against
// the query's unconstrained run.
func RunSpill(cfg Config) (*SpillReport, error) {
	cfg = cfg.withDefaults()
	h := New(cfg)
	d := h.Dataset(128<<10, storage.ColumnStore)
	rep := &SpillReport{
		Suite:     "spill",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		SF:        cfg.SF,
		UoTBlocks: spillUoT,
		Mix:       serveQueries,
	}
	parent, checkClean, err := spillTempDir()
	if err != nil {
		return nil, fmt.Errorf("spill artifact: %w", err)
	}
	fractions := []float64{1, 0.5, 0.25, 0.125}
	for _, q := range serveQueries {
		golden, peak, err := h.spillBaseline(d, q)
		if err != nil {
			return nil, fmt.Errorf("spill artifact: %w", err)
		}
		for _, f := range fractions {
			opts := engine.Options{
				Workers: 1, UoTBlocks: spillUoT, TempBlockBytes: 128 << 10, MemoryBudget: serveBudget,
			}
			var threshold int64
			if f < 1 {
				threshold = int64(float64(peak) * f)
				opts.SpillDir = parent
				opts.SpillThreshold = threshold
			}
			t0 := time.Now()
			res, err := h.run(d, q, opts, tpch.QueryOpts{})
			wall := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("spill artifact: Q%d at fraction %g: %w", q, f, err)
			}
			if serveChecksum(res.Table) != golden {
				return nil, fmt.Errorf("spill artifact: Q%d at fraction %g diverged from unconstrained golden", q, f)
			}
			sp := res.Run.Spill()
			rep.Points = append(rep.Points, SpillPoint{
				Query:       q,
				RAMFraction: f,
				ThresholdB:  threshold,
				WallMS:      float64(wall) / float64(time.Millisecond),
				BlocksOut:   sp.BlocksOut,
				BlocksIn:    sp.BlocksIn,
				BytesOut:    sp.BytesOut,
				BytesIn:     sp.BytesIn,
				DiskPeakB:   sp.DiskPeak,
				StallMS:     float64(sp.FaultStallNS) / 1e6,
			})
		}
	}
	if err := checkClean(); err != nil {
		return nil, fmt.Errorf("spill artifact: %w", err)
	}
	return rep, nil
}
