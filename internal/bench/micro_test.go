package bench

import "testing"

// Standard testing.B wrappers over the micro suite so `go test -bench` and
// CI's bench smoke can drive the same kernels cmd/uotbench -micro measures.

func BenchmarkMicroInsertRowG1(b *testing.B)   { benchInsert(1, false)(b) }
func BenchmarkMicroInsertBlockG1(b *testing.B) { benchInsert(1, true)(b) }
func BenchmarkMicroInsertRowG8(b *testing.B)   { benchInsert(8, false)(b) }
func BenchmarkMicroInsertBlockG8(b *testing.B) { benchInsert(8, true)(b) }
func BenchmarkMicroBloomMutexG8(b *testing.B)  { benchBloom(8, false)(b) }
func BenchmarkMicroBloomBatchG8(b *testing.B)  { benchBloom(8, true)(b) }
func BenchmarkMicroProbeRowG8(b *testing.B)    { benchProbe(8, false)(b) }
func BenchmarkMicroProbeVecG8(b *testing.B)    { benchProbe(8, true)(b) }
func BenchmarkMicroFilterAlloc(b *testing.B)   { benchFilterBlock(false)(b) }
func BenchmarkMicroFilterScratch(b *testing.B) { benchFilterBlock(true)(b) }
func BenchmarkMicroAggRefG1(b *testing.B)      { benchAgg(1, false)(b) }
func BenchmarkMicroAggVecG1(b *testing.B)      { benchAgg(1, true)(b) }
func BenchmarkMicroAggRefG8(b *testing.B)      { benchAgg(8, false)(b) }
func BenchmarkMicroAggVecG8(b *testing.B)      { benchAgg(8, true)(b) }

// Exchange suite: the scatter kernel plus the partition-local build and agg
// pipelines it feeds (owned tables, no shard locks, no radix merge).
func BenchmarkMicroExchangeScatterG1(b *testing.B)   { benchScatter(1)(b) }
func BenchmarkMicroExchangeScatterG8(b *testing.B)   { benchScatter(8)(b) }
func BenchmarkMicroInsertPartitionedG8(b *testing.B) { benchPartInsert(8)(b) }
func BenchmarkMicroAggPartitionedG8(b *testing.B)    { benchPartAgg(8)(b) }

// The sort smoke wrappers run a 128-block (131072-row) prefix of the micro
// dataset so CI's -benchtime 10x pass stays fast; the full 1M-row shape runs
// through cmd/uotbench -micro.
func BenchmarkMicroSortRefG1(b *testing.B)  { benchSort(1, false, 0, 128)(b) }
func BenchmarkMicroSortFastG1(b *testing.B) { benchSort(1, true, 0, 128)(b) }
func BenchmarkMicroSortRefG8(b *testing.B)  { benchSort(8, false, 0, 128)(b) }
func BenchmarkMicroSortFastG8(b *testing.B) { benchSort(8, true, 0, 128)(b) }
func BenchmarkMicroSortTopKG8(b *testing.B) { benchSort(8, true, 100, 128)(b) }

// Adaptive-UoT suite: the controller's per-decision and prior costs plus the
// end-to-end static-vs-adaptive overhead pair (BENCH_PR7's target ratio).
func BenchmarkMicroUoTObserve(b *testing.B)         { benchUoTObserve(b) }
func BenchmarkMicroUoTPrior(b *testing.B)           { benchUoTPrior(b) }
func BenchmarkMicroUoTQueryStaticG8(b *testing.B)   { benchAdaptQuery(8, false)(b) }
func BenchmarkMicroUoTQueryAdaptiveG8(b *testing.B) { benchAdaptQuery(8, true)(b) }

// TestMicroReportSmoke runs one tiny pass of the report plumbing (not the
// full auto-scaled suite) to keep the JSON artifact path covered.
func TestMicroReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro suite is slow")
	}
	blocks, _ := microData()
	if len(blocks) != microBlocks {
		t.Fatalf("micro dataset has %d blocks", len(blocks))
	}
}
