package bench

import "testing"

// Standard testing.B wrappers over the micro suite so `go test -bench` and
// CI's bench smoke can drive the same kernels cmd/uotbench -micro measures.

func BenchmarkMicroInsertRowG1(b *testing.B)   { benchInsert(1, false)(b) }
func BenchmarkMicroInsertBlockG1(b *testing.B) { benchInsert(1, true)(b) }
func BenchmarkMicroInsertRowG8(b *testing.B)   { benchInsert(8, false)(b) }
func BenchmarkMicroInsertBlockG8(b *testing.B) { benchInsert(8, true)(b) }
func BenchmarkMicroBloomMutexG8(b *testing.B)  { benchBloom(8, false)(b) }
func BenchmarkMicroBloomBatchG8(b *testing.B)  { benchBloom(8, true)(b) }
func BenchmarkMicroProbeRowG8(b *testing.B)    { benchProbe(8, false)(b) }
func BenchmarkMicroProbeVecG8(b *testing.B)    { benchProbe(8, true)(b) }
func BenchmarkMicroFilterAlloc(b *testing.B)   { benchFilterBlock(false)(b) }
func BenchmarkMicroFilterScratch(b *testing.B) { benchFilterBlock(true)(b) }
func BenchmarkMicroAggRefG1(b *testing.B)      { benchAgg(1, false)(b) }
func BenchmarkMicroAggVecG1(b *testing.B)      { benchAgg(1, true)(b) }
func BenchmarkMicroAggRefG8(b *testing.B)      { benchAgg(8, false)(b) }
func BenchmarkMicroAggVecG8(b *testing.B)      { benchAgg(8, true)(b) }

// TestMicroReportSmoke runs one tiny pass of the report plumbing (not the
// full auto-scaled suite) to keep the JSON artifact path covered.
func TestMicroReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro suite is slow")
	}
	blocks, _ := microData()
	if len(blocks) != microBlocks {
		t.Fatalf("micro dataset has %d blocks", len(blocks))
	}
}
