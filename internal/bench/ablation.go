package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ssb"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Sec6BSSBFootprint reproduces the Section VI-B contrast: on the Star
// Schema Benchmark the join hash tables are built on small dimensions, so
// keeping all of them live (low UoT) costs less memory than materializing
// fact-table intermediates (high UoT) — the opposite of TPC-H Q7, where the
// orders hash table dominates.
func (h *Harness) Sec6BSSBFootprint() (*Report, error) {
	r := &Report{
		ID:    "SEC6B",
		Title: "SSB memory footprints: small dimension hash tables flip the Table II comparison (MiB)",
		Header: []string{
			"query", "low_hash", "low_temp", "high_hash", "high_temp",
		},
	}
	d := ssb.Load(h.cfg.SF, 128<<10, storage.ColumnStore)
	for _, name := range ssb.Flights() {
		var cells []string
		for _, uot := range []int{1, core.UoTTable} {
			b, err := ssb.Build(d, name)
			if err != nil {
				return nil, err
			}
			res, err := engine.Execute(b, engine.Options{
				Workers: 1, UoTBlocks: uot, TempBlockBytes: 128 << 10,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, mib(res.Run.HashTables.High()), mib(res.Run.Intermediates.High()))
		}
		r.AddRow(append([]string{name}, cells...)...)
	}
	r.Note("compare with TAB2: on TPC-H Q7 the hash tables dwarf the materialization; on SSB the relation inverts")
	return r, nil
}

// AblationUoTSweep runs selected queries across the whole UoT spectrum —
// the paper's central claim is that UoT is a knob, not a binary, so this
// sweep shows the full curve between the two named extremes.
func (h *Harness) AblationUoTSweep() (*Report, error) {
	r := &Report{
		ID:    "ABL-UOT",
		Title: "UoT spectrum sweep (wall ms at 128KB blocks; 1=pipelining ... table=blocking)",
		Header: []string{
			"query", "uot=1", "uot=2", "uot=4", "uot=16", "uot=64", "uot=table",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	for _, num := range []int{1, 3, 6, 7, 13, 19} {
		row := []string{fmt.Sprintf("Q%02d", num)}
		for _, uot := range []int{1, 2, 4, 16, 64, core.UoTTable} {
			dur, _, err := h.bestOf(func() (*stats.Run, error) {
				res, err := h.run(d, num, engine.Options{
					Workers: h.cfg.Workers, UoTBlocks: uot, TempBlockBytes: 128 << 10,
				}, tpch.QueryOpts{})
				if err != nil {
					return nil, err
				}
				return res.Run, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, ms(dur))
		}
		r.AddRow(row...)
	}
	r.Note("the flat curves are the paper's thesis: for in-memory block engines, the spectrum position barely moves whole-query time")
	return r, nil
}

// AblationBlockSize sweeps the storage block size at both UoT extremes —
// the orthogonal knob the paper discusses in Section VII-B3 (small blocks
// pay storage-management and scheduling overhead).
func (h *Harness) AblationBlockSize() (*Report, error) {
	r := &Report{
		ID:    "ABL-BLOCK",
		Title: "Block size sweep on Q3 (wall ms; pool checkouts show the management overhead)",
		Header: []string{
			"block", "low_uot_ms", "high_uot_ms", "checkouts", "lineitem_blocks",
		},
	}
	for _, blockBytes := range []int{32 << 10, 128 << 10, 512 << 10, 2 << 20} {
		d := h.Dataset(blockBytes, storage.ColumnStore)
		var cells []string
		var checkouts int64
		for _, uot := range []int{1, core.UoTTable} {
			dur, last, err := h.bestOf(func() (*stats.Run, error) {
				res, err := h.run(d, 3, engine.Options{
					Workers: h.cfg.Workers, UoTBlocks: uot, TempBlockBytes: blockBytes,
				}, tpch.QueryOpts{})
				if err != nil {
					return nil, err
				}
				return res.Run, nil
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, ms(dur))
			checkouts = last.Checkouts()
		}
		r.AddRow(blockLabel(blockBytes), cells[0], cells[1],
			fmt.Sprintf("%d", checkouts), fmt.Sprintf("%d", d.Lineitem.NumBlocks()))
	}
	r.Note("smaller blocks mean more work orders and more temp-block checkouts per query — the Section VII-B3 overhead")
	return r, nil
}
