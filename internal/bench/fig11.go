package bench

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/monet"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Fig11MonetComparison reproduces Fig. 11: TPC-H times on the MonetDB-style
// operator-at-a-time baseline next to the engine in its preferred
// configuration (2 MB blocks, low UoT, LIP on — the paper notes Quickstep's
// LIP filters cut inter-operator data movement substantially). The paper
// finds Quickstep faster on most queries; the same shape emerges here,
// driven by LIP pruning and temp-block reuse.
func (h *Harness) Fig11MonetComparison() (*Report, error) {
	r := &Report{
		ID:     "FIG11",
		Title:  "Engine (2MB, low UoT, LIP) vs MonetDB-style operator-at-a-time baseline (wall ms)",
		Header: []string{"query", "engine", "monet_style", "monet/engine"},
	}
	d := h.Dataset(2<<20, storage.ColumnStore)
	wins := 0
	for _, num := range tpch.Numbers() {
		eng, _, err := h.bestOf(func() (*stats.Run, error) {
			res, err := h.run(d, num, engine.Options{
				Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 2 << 20,
			}, tpch.QueryOpts{LIP: true})
			if err != nil {
				return nil, err
			}
			return res.Run, nil
		})
		if err != nil {
			return nil, err
		}
		mon, _, err := h.bestOf(func() (*stats.Run, error) {
			b, err := tpch.Build(d, num, tpch.QueryOpts{})
			if err != nil {
				return nil, err
			}
			res, err := monet.Execute(b, monet.Options{Workers: h.cfg.Workers})
			if err != nil {
				return nil, err
			}
			return res.Run, nil
		})
		if err != nil {
			return nil, err
		}
		if eng < mon {
			wins++
		}
		r.AddRow(fmt.Sprintf("Q%02d", num), ms(eng), ms(mon),
			ratio2(float64(mon)/float64(eng)))
	}
	r.Note("engine faster on %d of %d queries (paper: 15 of 22)", wins, len(tpch.Numbers()))
	return r, nil
}
