package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

// AggKernelProfile reports the vectorized-aggregation counters for the
// aggregation-heavy TPC-H queries at the configured worker count: rows routed
// through the fixed-width fast path versus the reference map path, partial
// tables created (free-list misses — the steady state approaches the worker
// count), and the radix merge fan-out that replaced the global-mutex merge.
// Q1 groups by char columns and Q16 needs count(distinct), so they exercise
// the retained fallback; the int-keyed aggregations (Q13, Q15, Q18) run
// entirely vectorized.
func (h *Harness) AggKernelProfile() (*Report, error) {
	r := &Report{
		ID:    "AGG",
		Title: "Aggregation-kernel profile (vectorized vs fallback rows, merge fan-out)",
		Header: []string{
			"query", "agg_rows", "fast_%", "partials", "merge_fanout", "wall_ms",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	for _, q := range []int{1, 13, 15, 16, 18} {
		res, err := h.run(d, q, engine.Options{
			Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 128 << 10,
		}, tpch.QueryOpts{})
		if err != nil {
			return nil, err
		}
		partials, fanout, fastRows, fallbackRows := res.Run.AggKernels()
		total := fastRows + fallbackRows
		fastPct := "-"
		if total > 0 {
			fastPct = fmt.Sprintf("%.1f", 100*float64(fastRows)/float64(total))
		}
		r.AddRow(
			fmt.Sprintf("Q%02d", q),
			fmt.Sprintf("%d", total),
			fastPct,
			fmt.Sprintf("%d", partials),
			fmt.Sprintf("%d", fanout),
			fmt.Sprintf("%.2f", float64(res.Run.WallTime())/float64(time.Millisecond)),
		)
	}
	r.Note("fast_%% is the share of aggregated rows on the fixed-width vectorized path; char group keys (Q1) and count(distinct) (Q16) keep the reference map path")
	return r, nil
}

const microAggGroups = 512 // distinct group keys in the micro agg input

var (
	microAggOnce   sync.Once
	microAggInput  []*storage.Block
	microAggSchema *storage.Schema
)

// microAggData builds (once) the shared aggregation input: microBlocks blocks
// of (int64 group key, float64 measure) rows over microAggGroups groups, the
// grouped-aggregation shape of Q13/Q15/Q18.
func microAggData() ([]*storage.Block, *storage.Schema) {
	microAggOnce.Do(func() {
		microAggSchema = storage.NewSchema(
			storage.Column{Name: "g", Type: types.Int64},
			storage.Column{Name: "v", Type: types.Float64},
		)
		microAggInput = make([]*storage.Block, microBlocks)
		for bi := range microAggInput {
			b := storage.NewBlock(microAggSchema, storage.ColumnStore, microBlockRows*16+64)
			for r := 0; r < microBlockRows; r++ {
				k := int64(bi*microBlockRows + r)
				// splay keys so group-adjacent rows are not key-adjacent
				b.AppendRow(
					types.NewInt64(k*2654435761%microAggGroups),
					types.NewFloat64(float64(k%4096)/8), // dyadic: order-independent sums
				)
			}
			microAggInput[bi] = b
		}
	})
	return microAggInput, microAggSchema
}

// runAggWOs executes work orders from g goroutines pulling from a shared
// counter (the scheduler's dispatch pattern), each with its own Output.
func runAggWOs(ctx *core.ExecCtx, wos []core.WorkOrder, g int) {
	if g <= 1 {
		for _, wo := range wos {
			out := &core.Output{}
			out.Finish(wo.Run(ctx, out))
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := atomic.AddInt64(&next, 1) - 1
				if j >= int64(len(wos)) {
					return
				}
				out := &core.Output{}
				out.Finish(wos[j].Run(ctx, out))
			}
		}()
	}
	wg.Wait()
}

// benchAgg aggregates the 64K-row input into ~512 groups per op with g
// goroutines: the reference path evaluates per row into a local map and
// merges it into the shared map behind the operator mutex; the vectorized
// path gathers + hashes the key column per block into thread-local
// fixed-width tables and merges via the parallel radix fan-out.
func benchAgg(g int, vectorized bool) func(b *testing.B) {
	return func(b *testing.B) {
		blocks, schema := microAggData()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Operator construction and pool setup are not the kernel under
			// test; keep them off the clock.
			b.StopTimer()
			op := exec.NewAgg(exec.AggOpSpec{
				Name: "agg", InputSchema: schema,
				GroupBy: []expr.Expr{expr.C(schema, "g")}, GroupByNames: []string{"g"},
				Aggs: []exec.AggSpec{
					{Func: exec.Sum, Arg: expr.C(schema, "v"), Name: "s"},
					{Func: exec.Count, Name: "c"},
					{Func: exec.Min, Arg: expr.C(schema, "v"), Name: "mn"},
				},
				ForceReference: !vectorized,
			})
			plan := &core.Plan{}
			exec.AddOp(plan, op)
			ctx := &core.ExecCtx{
				Pool:           storage.NewPool(nil, nil),
				TempBlockBytes: 128 << 10,
				TempFormat:     storage.RowStore,
				Workers:        g,
			}
			op.Init(ctx)
			b.StartTimer()
			runAggWOs(ctx, op.Feed(ctx, 0, blocks), g)
			runAggWOs(ctx, op.Final(ctx), g)
		}
	}
}
