package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/reuse"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// reuseClients/reusePerClient shape the repeated-mix workload: each client
// cycles the four-query mix, so after the first round every plan fingerprint
// is resident and the remaining submissions are warm hits.
const (
	reuseClients   = 4
	reusePerClient = 8
)

// reusePhase runs the closed-loop repeated mix once, with or without the
// cross-query cache, golden-checking every completed result bit-exactly.
func (h *Harness) reusePhase(d *tpch.Dataset, golden map[int]string, withCache bool) (serveOutcome, session.Counters, reuseStatsSnapshot, error) {
	sess := session.Open(session.Config{
		Workers:       h.cfg.Workers,
		MaxConcurrent: 4,
		QueueDepth:    reuseClients * reusePerClient,
		MemoryBudget:  1 << 30,
		Reuse:         withCache,
	})
	out, loopErr := serveLoop(sess, d, golden, reuseClients, reusePerClient)
	stats := reuseStatsSnapshot{Counters: sess.ReuseStats()}
	stats.Live, stats.Partials = sess.Live(), int64(sess.PendingPartials())
	ctr := sess.Counters()
	sess.Close()
	if loopErr != nil {
		return out, ctr, stats, loopErr
	}
	if stats.Live != 0 || stats.Partials != 0 {
		return out, ctr, stats, fmt.Errorf("leaked %d live bytes, %d partials after drain", stats.Live, stats.Partials)
	}
	if stats.Pins != 0 {
		return out, ctr, stats, fmt.Errorf("%d cache pins outstanding after drain", stats.Pins)
	}
	return out, ctr, stats, nil
}

func (s reuseStatsSnapshot) hitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ReuseCache is the REUSE experiment: the four-query mix submitted repeatedly
// (4 clients × 8 queries) through the serving layer, once without and once
// with the cross-query result cache. Every completed result — cold or
// cache-served — must be bit-identical to the single-query golden run; the
// warm phase must hit the cache and beat the cold phase's throughput by at
// least 1.5×.
func (h *Harness) ReuseCache() (*Report, error) {
	r := &Report{
		ID:    "REUSE",
		Title: "Cross-query result cache: repeated mix, warm-hit speedup",
		Header: []string{
			"cache", "done", "hits", "hit_rate", "qps", "p50_ms", "p95_ms", "result", "leaks",
		},
	}
	d := h.Dataset(128<<10, storage.ColumnStore)
	golden, _, err := h.serveGolden(d)
	if err != nil {
		return nil, fmt.Errorf("REUSE: %w", err)
	}

	var qps [2]float64
	for i, withCache := range []bool{false, true} {
		name := "off"
		if withCache {
			name = "on"
		}
		out, _, stats, err := h.reusePhase(d, golden, withCache)
		if err != nil {
			return nil, fmt.Errorf("REUSE cache-%s: %w", name, err)
		}
		want := reuseClients * reusePerClient
		if out.completed != want {
			return nil, fmt.Errorf("REUSE cache-%s: %d of %d queries completed", name, out.completed, want)
		}
		qps[i] = out.qps()
		r.AddRow(
			name,
			fmt.Sprintf("%d", out.completed),
			fmt.Sprintf("%d", stats.Hits),
			fmt.Sprintf("%.2f", stats.hitRate()),
			fmt.Sprintf("%.1f", out.qps()),
			fmt.Sprintf("%.2f", pctMS(out.latencies, 0.50)),
			fmt.Sprintf("%.2f", pctMS(out.latencies, 0.95)),
			pass(true), // serveLoop fails hard on any checksum mismatch
			fmt.Sprintf("%d", stats.Live+stats.Partials),
		)
		if withCache && stats.Hits == 0 {
			return nil, fmt.Errorf("REUSE cache-on: repeated mix never hit the cache")
		}
		if !withCache && stats.Hits+stats.Misses != 0 {
			return nil, fmt.Errorf("REUSE cache-off: cache consulted with reuse disabled")
		}
	}
	speedup := qps[1] / qps[0]
	if speedup < 1.5 {
		return nil, fmt.Errorf("REUSE: cache-on qps %.1f is only %.2fx cache-off %.1f, want >= 1.5x",
			qps[1], speedup, qps[0])
	}
	r.Note("mix %v, %d clients × %d queries; warm results bit-identical (sha256 over hex-float rows) to single-query goldens", serveQueries, reuseClients, reusePerClient)
	r.Note("cache-on throughput %.2fx cache-off; per-query workers = 1 on both sides", speedup)
	return r, nil
}

// reuseStatsSnapshot widens the cache counters with the session drain gauges
// the leak checks read.
type reuseStatsSnapshot struct {
	reuse.Counters
	Live     int64
	Partials int64
}

// ReusePoint is one phase measurement in the reuse artifact.
type ReusePoint struct {
	Cache         string  `json:"cache"`
	Queries       int     `json:"queries"`
	Completed     int     `json:"completed"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	HitRate       float64 `json:"hit_rate"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
}

// ReuseReport is the machine-readable reuse artifact (BENCH_PR10.json).
type ReuseReport struct {
	Suite     string       `json:"suite"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	SF        float64      `json:"sf"`
	Workers   int          `json:"workers"`
	Mix       []int        `json:"mix"`
	Clients   int          `json:"clients"`
	PerClient int          `json:"per_client"`
	Points    []ReusePoint `json:"points"`
	SpeedupX  float64      `json:"speedup_x"`
}

// String renders the artifact as a table.
func (m *ReuseReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cross-query reuse (SF %g, %d workers, mix %v, %d clients × %d queries)\n",
		m.SF, m.Workers, m.Mix, m.Clients, m.PerClient)
	fmt.Fprintf(&sb, "%8s %8s %8s %8s %9s %10s %8s %8s\n",
		"cache", "queries", "done", "hits", "hit_rate", "qps", "p50_ms", "p95_ms")
	for _, p := range m.Points {
		fmt.Fprintf(&sb, "%8s %8d %8d %8d %9.2f %10.1f %8.2f %8.2f\n",
			p.Cache, p.Queries, p.Completed, p.CacheHits, p.HitRate, p.ThroughputQPS, p.P50MS, p.P95MS)
	}
	fmt.Fprintf(&sb, "cache-on speedup: %.2fx\n", m.SpeedupX)
	return sb.String()
}

// WriteJSON writes the artifact to path.
func (m *ReuseReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunReuse measures the repeated-mix workload with the cross-query cache off
// and on (golden-checked like the REUSE experiment) and reports the warm-hit
// speedup.
func RunReuse(cfg Config) (*ReuseReport, error) {
	cfg = cfg.withDefaults()
	h := New(cfg)
	d := h.Dataset(128<<10, storage.ColumnStore)
	golden, _, err := h.serveGolden(d)
	if err != nil {
		return nil, fmt.Errorf("reuse artifact: %w", err)
	}
	rep := &ReuseReport{
		Suite:     "reuse",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		SF:        cfg.SF,
		Workers:   cfg.Workers,
		Mix:       serveQueries,
		Clients:   reuseClients,
		PerClient: reusePerClient,
	}
	for _, withCache := range []bool{false, true} {
		name := "off"
		if withCache {
			name = "on"
		}
		out, _, stats, err := h.reusePhase(d, golden, withCache)
		if err != nil {
			return nil, fmt.Errorf("reuse artifact cache-%s: %w", name, err)
		}
		rep.Points = append(rep.Points, ReusePoint{
			Cache:         name,
			Queries:       reuseClients * reusePerClient,
			Completed:     out.completed,
			CacheHits:     stats.Hits,
			CacheMisses:   stats.Misses,
			HitRate:       stats.hitRate(),
			ThroughputQPS: out.qps(),
			P50MS:         pctMS(out.latencies, 0.50),
			P95MS:         pctMS(out.latencies, 0.95),
		})
	}
	if rep.Points[0].ThroughputQPS > 0 {
		rep.SpeedupX = rep.Points[1].ThroughputQPS / rep.Points[0].ThroughputQPS
	}
	return rep, nil
}
