package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/memmodel"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Eq1RatioSweep regenerates the Section V-A analysis: the Eq. 1 cost ratio
// (non-pipelining extra work over pipelining extra work) across UoT sizes
// and thread counts, under the paper's high-UoT and low-UoT probability
// regimes. Values near 1 are the paper's headline: the strategies barely
// differ in memory-resident settings.
func (h *Harness) Eq1RatioSweep() (*Report, error) {
	r := &Report{
		ID:     "EQ1",
		Title:  "Analytical model: Eq. 1 ratio of non-pipelining to pipelining extra cost",
		Header: []string{"B", "T", "p1'", "ratio(high regime)", "ratio(low regime)"},
	}
	for _, b := range []int64{64 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20} {
		for _, t := range []int{1, 10, 20} {
			p := costmodel.Default(b, t)
			r.AddRow(
				blockLabel(int(b)),
				fmt.Sprintf("%d", t),
				fmt.Sprintf("%.3f", p.P1Prime()),
				ratio2(p.HighRegime().Ratio()),
				ratio2(p.LowRegime().Ratio()),
			)
		}
	}
	r.Note("ratio > 1 favors pipelining (low UoT); the paper argues both regimes land near 1")
	return r, nil
}

// Sec5CPersistentStore regenerates the Section V-C numbers: with a
// persistent store under the buffer pool, non-pipelining pays device
// reads/writes per UoT (seconds across thousands of UoTs) while pipelining
// pays only instruction-cache switches (microseconds).
func (h *Harness) Sec5CPersistentStore() (*Report, error) {
	r := &Report{
		ID:     "SEC5C",
		Title:  "Analytical model in the persistent-store setting",
		Header: []string{"n_uots", "high_uot_extra_ms", "low_uot_extra_ms", "advantage"},
	}
	for _, n := range []int64{100, 1000, 10000} {
		s := costmodel.DefaultStore(n)
		r.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", s.HighUoTExtra()/1e6),
			fmt.Sprintf("%.3f", s.LowUoTExtra()/1e6),
			fmt.Sprintf("%.0fx", s.Advantage()),
		)
	}
	r.Note("this is why 'pipelining' mattered so much for disk-based systems — and why the in-memory case differs")
	return r, nil
}

// findOp locates an operator in a built plan by display name.
func findOp[T any](b *engine.Builder, name string) (T, bool) {
	var zero T
	for _, op := range b.Plan().Ops {
		if n, ok := op.(interface{ Name() string }); ok && n.Name() == name {
			if t, ok := op.(T); ok {
				return t, true
			}
		}
	}
	return zero, false
}

// selectStats runs query num once and measures the named select operator:
// selectivity from row counts, projectivity from schema widths.
func (h *Harness) selectStats(d *tpch.Dataset, num int, opName string, baseWidth int) (memmodel.SelectStats, int64, error) {
	b, err := tpch.Build(d, num, tpch.QueryOpts{})
	if err != nil {
		return memmodel.SelectStats{}, 0, err
	}
	sel, ok := findOp[*exec.SelectOp](b, opName)
	if !ok {
		return memmodel.SelectStats{}, 0, fmt.Errorf("q%d has no operator %q", num, opName)
	}
	outWidth := sel.OutSchema().RowWidth()
	res, err := engine.Execute(b, engine.Options{
		Workers: h.cfg.Workers, UoTBlocks: core.UoTTable, TempBlockBytes: 2 << 20,
	})
	if err != nil {
		return memmodel.SelectStats{}, 0, err
	}
	t, ok := opTotals(res.Run, opName)
	if !ok {
		return memmodel.SelectStats{}, 0, fmt.Errorf("q%d: %q produced no stats", num, opName)
	}
	st := memmodel.Measure(t.Rows, t.RowsOut, baseWidth, outWidth)
	return st, t.RowsOut * int64(outWidth), nil
}

// Tab3Lineitem regenerates Table III: selectivity, projectivity, and total
// memory fraction of the lineitem selection in the queries whose plans
// contain a select→probe pipeline on lineitem.
func (h *Harness) Tab3Lineitem() (*Report, error) {
	return h.selProjTable("TAB3", "Memory reduction with input table lineitem",
		"select(lineitem)", tpch.LineitemSchema.RowWidth(), []int{3, 7, 10, 19})
}

// Tab4Orders regenerates Table IV for the orders table.
func (h *Harness) Tab4Orders() (*Report, error) {
	return h.selProjTable("TAB4", "Memory reduction with input table orders",
		"select(orders)", tpch.OrdersSchema.RowWidth(), []int{3, 4, 5, 8, 10, 21})
}

func (h *Harness) selProjTable(id, title, opName string, baseWidth int, queries []int) (*Report, error) {
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"query", "selectivity_%", "projectivity_%", "total_%"},
	}
	d := h.Dataset(2<<20, storage.ColumnStore)
	var sumS, sumP, sumT float64
	for _, num := range queries {
		st, _, err := h.selectStats(d, num, opName, baseWidth)
		if err != nil {
			return nil, err
		}
		sumS += st.Selectivity
		sumP += st.Projectivity
		sumT += st.Total()
		r.AddRow(fmt.Sprintf("%02d", num), pct(st.Selectivity), pct(st.Projectivity), pct(st.Total()))
	}
	n := float64(len(queries))
	r.AddRow("Average", pct(sumS/n), pct(sumP/n), pct(sumT/n))
	r.Note("selectivity and projectivity measured without LIP or expression folding, as in the paper")
	return r, nil
}

// Tab2MemoryFootprint regenerates the Table II comparison on Q7's probe
// cascade: the pipelining strategy keeps every hash table live at once; the
// blocking strategy keeps one hash table plus the materialized selection
// output. The (M/w)·(c/f) model predictions sit next to the measured bytes.
func (h *Harness) Tab2MemoryFootprint() (*Report, error) {
	r := &Report{
		ID:    "TAB2",
		Title: "Memory footprint of Q7 for low and high UoT values (MiB)",
		Header: []string{
			"strategy", "hash_tables_highwater", "intermediates_highwater", "model_hash_sum", "model_sel_out",
		},
	}
	d := h.Dataset(2<<20, storage.ColumnStore)

	// Model: hash-table sizes from the (M/w)(c/f) formula over the actual
	// build inputs, selection output from measured selectivity x
	// projectivity.
	var htModel int64
	b, err := tpch.Build(d, 7, tpch.QueryOpts{})
	if err != nil {
		return nil, err
	}
	res, err := engine.Execute(b, engine.Options{Workers: 1, UoTBlocks: 1, TempBlockBytes: 2 << 20})
	if err != nil {
		return nil, err
	}
	lowRun := res.Run
	for _, name := range []string{"build(supplier)", "build(orders)", "build(customer)"} {
		t, ok := opTotals(lowRun, name)
		if !ok {
			return nil, fmt.Errorf("q7 missing %s", name)
		}
		// Model input: rows inserted, 16-byte payload tuples, 40-byte
		// buckets at the engine's 0.75 load factor.
		htModel += memmodel.HashTableSize(t.RowsOut*16, 16, 40, 0.75)
	}
	selSt, selBytes, err := h.selectStats(d, 7, "select(lineitem)", tpch.LineitemSchema.RowWidth())
	if err != nil {
		return nil, err
	}
	_ = selSt

	// The high-UoT run is staged — "one join at a time" — so at most one
	// cascade hash table is live, as Table II assumes.
	highB, err := tpch.Build(d, 7, tpch.QueryOpts{Staged: true})
	if err != nil {
		return nil, err
	}
	highRes, err := engine.Execute(highB, engine.Options{
		Workers: 1, UoTBlocks: core.UoTTable, TempBlockBytes: 2 << 20,
	})
	if err != nil {
		return nil, err
	}

	r.AddRow("low UoT (1 block)",
		mib(lowRun.HashTables.High()), mib(lowRun.Intermediates.High()),
		mib(htModel), "-")
	r.AddRow("high UoT (table, staged)",
		mib(highRes.Run.HashTables.High()), mib(highRes.Run.Intermediates.High()),
		mib(htModel), mib(selBytes))
	r.Note("Table II: low UoT must keep all cascade hash tables live; the staged high-UoT execution holds one at a time but materializes the selection output")
	r.Note("Q7 builds its orders hash table on the whole table, so here the high-UoT strategy's materialization is the cheaper overhead — the Section VI-C point")
	return r, nil
}

// Tab6Prefetching regenerates Table VI: average per-task simulated times for
// Q7's select, build, and probe operators with the modeled hardware
// prefetcher enabled/disabled, on row-store tables across block sizes.
// Expected shape: prefetching helps the sequential select and hurts the
// random-access build and probe.
func (h *Harness) Tab6Prefetching() (*Report, error) {
	r := &Report{
		ID:    "TAB6",
		Title: "Average task times (simulated ms) with prefetcher enabled (yes) / disabled (no), row store",
		Header: []string{
			"block", "select_yes", "select_no", "build_yes", "build_no", "probe_yes", "probe_no",
		},
	}
	ops := []string{"select(lineitem)", "build(orders)", "probe(orders)"}
	for _, blockBytes := range []int{128 << 10, 512 << 10, 2 << 20} {
		// The scalability SF keeps the orders hash table well above the
		// simulated L3, as at the paper's scale: the probe's random
		// misses are what wasted prefetches amplify.
		d := h.DatasetSF(h.scaleSF(), blockBytes, storage.RowStore)
		row := []string{blockLabel(blockBytes)}
		cells := map[string][2]string{}
		for i, prefetch := range []bool{true, false} {
			sim := h.sim()
			sim.SetPrefetch(prefetch)
			res, err := h.run(d, 7, engine.Options{
				Workers: 1, UoTBlocks: 1, TempBlockBytes: blockBytes, Sim: sim,
			}, tpch.QueryOpts{})
			if err != nil {
				return nil, err
			}
			for _, op := range ops {
				t, ok := opTotals(res.Run, op)
				if !ok {
					return nil, fmt.Errorf("q7 missing %s", op)
				}
				c := cells[op]
				c[i] = simMs(t.AvgSim())
				cells[op] = c
			}
		}
		for _, op := range ops {
			row = append(row, cells[op][0], cells[op][1])
		}
		r.AddRow(row...)
	}
	r.Note("simulated prefetcher: sequential streams ramp to the amortized line cost; random accesses waste speculative fetches (Table VI's probe/build penalty)")
	return r, nil
}

// Sec6CLIP regenerates the Section VI-C LIP discussion on Q7: the size of
// the materialized lineitem-selection output and the query time with and
// without LIP bloom filters.
func (h *Harness) Sec6CLIP() (*Report, error) {
	r := &Report{
		ID:     "SEC6C",
		Title:  "LIP pruning on Q7 (bloom filter on the supplier join key)",
		Header: []string{"variant", "sel_out_rows", "intermediate_MiB", "query_ms"},
	}
	d := h.Dataset(2<<20, storage.ColumnStore)
	for _, lip := range []bool{false, true} {
		var rows int64
		var bytes int64
		dur, _, err := h.bestOf(func() (*stats.Run, error) {
			b, err := tpch.Build(d, 7, tpch.QueryOpts{LIP: lip})
			if err != nil {
				return nil, err
			}
			sel, _ := findOp[*exec.SelectOp](b, "select(lineitem)")
			res, err := engine.Execute(b, engine.Options{
				Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 2 << 20,
			})
			if err != nil {
				return nil, err
			}
			if t, ok := opTotals(res.Run, "select(lineitem)"); ok {
				rows = t.RowsOut
				bytes = t.RowsOut * int64(sel.OutSchema().RowWidth())
			}
			return res.Run, nil
		})
		if err != nil {
			return nil, err
		}
		label := "no LIP"
		if lip {
			label = "LIP"
		}
		r.AddRow(label, fmt.Sprintf("%d", rows), mib(bytes), ms(dur))
	}
	r.Note("the paper's SF-100 numbers: 2.8 GB without pruning vs 224 MB with bloom-filter pruning (~12x); the fraction of lineitem surviving the supplier filter is scale-invariant")
	return r, nil
}
