package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// chainSpec names the select→probe…probe chain rooted at the lineitem scan
// in each query used by the paper's microbenchmarks.
type chainSpec struct {
	query      int
	firstProbe string   // the first consumer operator in the pipeline
	chainOps   []string // producer + all consumers in the chain
}

var chains = []chainSpec{
	{3, "probe(orders)", []string{"select(lineitem)", "probe(orders)"}},
	{5, "probe(orders)", []string{"select(lineitem)", "probe(orders)", "probe(supplier)"}},
	{7, "probe(orders)", []string{"select(lineitem)", "probe(orders)", "probe(supplier)", "probe(customer)"}},
	{10, "probe(orders)", []string{"select(lineitem)", "probe(orders)"}},
	{14, "probe(part)", []string{"select(lineitem)", "probe(part)"}},
	{19, "probe(part)", []string{"select(lineitem)", "probe(part)"}},
}

// chainRun executes the query with the cache simulator attached and returns
// the run. The scalability scale factor is used so intermediates are large
// relative to the simulated L3, as at the paper's SF 50.
func (h *Harness) chainRun(num, blockBytes, uot int) (*stats.Run, error) {
	d := h.DatasetSF(h.scaleSF(), blockBytes, storage.ColumnStore)
	res, err := h.run(d, num, engine.Options{
		Workers:        1, // deterministic schedule; sim models T workers
		UoTBlocks:      uot,
		TempBlockBytes: blockBytes,
		Sim:            h.sim(),
	}, tpch.QueryOpts{})
	if err != nil {
		return nil, err
	}
	return res.Run, nil
}

// Fig5ProbeTaskTimes reproduces Fig. 5: the per-task (simulated) execution
// time of the first consumer probe operator in each chain, for low vs. high
// UoT at 128 KB and 2 MB blocks. Low UoT keeps the probe input hot in L3,
// so it wins at small blocks; at 2 MB blocks B·T exceeds the cache and both
// strategies read cold — the paper's diminishing-gap observation.
func (h *Harness) Fig5ProbeTaskTimes() (*Report, error) {
	r := &Report{
		ID:    "FIG5",
		Title: "Per-task simulated execution time of the first consumer probe (ms)",
		Header: []string{
			"chain", "block", "uot=low", "uot=high", "high/low",
		},
	}
	for _, c := range chains {
		for _, blockBytes := range []int{128 << 10, 2 << 20} {
			var avg [2]float64
			for i, uot := range []int{1, core.UoTTable} {
				v, err := h.probeTask(c, blockBytes, uot)
				if err != nil {
					return nil, err
				}
				avg[i] = v
			}
			r.AddRow(
				fmt.Sprintf("Q%02d:%s", c.query, c.firstProbe),
				blockLabel(blockBytes),
				fmt.Sprintf("%.3f", avg[0]),
				fmt.Sprintf("%.3f", avg[1]),
				ratio2(avg[1]/avg[0]),
			)
		}
	}
	r.Note("simulated time (deterministic cache model), normalized to a full input block so partially-filled blocks do not skew per-task averages")
	r.Note("high/low > 1 means the low-UoT probe ran faster per task")
	return r, nil
}

// probeTask runs the chain's query and returns the per-task (full-block)
// simulated milliseconds of the first consumer.
func (h *Harness) probeTask(c chainSpec, blockBytes, uot int) (float64, error) {
	d := h.DatasetSF(h.scaleSF(), blockBytes, storage.ColumnStore)
	b, err := tpch.Build(d, c.query, tpch.QueryOpts{})
	if err != nil {
		return 0, err
	}
	sel, ok := findOp[*exec.SelectOp](b, "select(lineitem)")
	if !ok {
		return 0, fmt.Errorf("q%d has no select(lineitem)", c.query)
	}
	rpb := int64(blockBytes / sel.OutSchema().RowWidth())
	// One engine worker gives a deterministic schedule on any host; the
	// simulator's thread count models the paper's T=20 cache crowding and
	// bandwidth contention (see DESIGN.md).
	sim := h.sim()
	res, err := engine.Execute(b, engine.Options{
		Workers: 1, UoTBlocks: uot, TempBlockBytes: blockBytes, Sim: sim,
	})
	if err != nil {
		return 0, err
	}
	v := fullBlockTaskMs(res.Run, c.firstProbe, rpb)
	if v == 0 {
		return 0, fmt.Errorf("q%d missing op %q", c.query, c.firstProbe)
	}
	return v, nil
}

// fullBlockTaskMs returns the mean simulated task time over the operator's
// full-block work orders (rows >= 90% of a block's capacity). Partially
// filled blocks carry the same fixed per-task costs over far fewer rows and
// would skew a plain average, so they are excluded; when an operator saw
// only partial blocks, the row-normalized estimate is used instead.
func fullBlockTaskMs(run *stats.Run, opName string, rowsPerBlock int64) float64 {
	var full, fullN, total, rows int64
	for _, w := range run.Orders() {
		if w.OpName != opName {
			continue
		}
		total += w.Sim
		rows += w.Rows
		if w.Rows*10 >= rowsPerBlock*9 {
			full += w.Sim
			fullN++
		}
	}
	if fullN > 0 {
		return float64(full) / float64(fullN) / 1e6
	}
	if rows == 0 {
		return 0
	}
	return float64(total) / float64(rows) * float64(rowsPerBlock) / 1e6
}

// Fig6ChainTimes reproduces Fig. 6: total (simulated) work across the whole
// operator chain. The producer select dominates, so the probe-level gains of
// Fig. 5 shrink at chain granularity.
func (h *Harness) Fig6ChainTimes() (*Report, error) {
	r := &Report{
		ID:    "FIG6",
		Title: "Simulated execution time of operator chains (ms of total chain work)",
		Header: []string{
			"chain", "block", "uot=low", "uot=high", "high/low",
		},
	}
	for _, c := range chains {
		for _, blockBytes := range []int{128 << 10, 2 << 20} {
			var tot [2]float64
			for i, uot := range []int{1, core.UoTTable} {
				run, err := h.chainRun(c.query, blockBytes, uot)
				if err != nil {
					return nil, err
				}
				var ticks int64
				for _, op := range c.chainOps {
					if t, ok := opTotals(run, op); ok {
						ticks += t.SimTotal
					}
				}
				tot[i] = float64(ticks) / 1e6
			}
			r.AddRow(
				fmt.Sprintf("Q%02d(%d ops)", c.query, len(c.chainOps)),
				blockLabel(blockBytes),
				fmt.Sprintf("%.2f", tot[0]),
				fmt.Sprintf("%.2f", tot[1]),
				ratio2(tot[1]/tot[0]),
			)
		}
	}
	r.Note("chain = lineitem select + its probe cascade; producer work is common to both UoTs and dilutes the probe-level gap")
	return r, nil
}

func blockLabel(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
