package bench

// EXCH experiment and micro benchmarks for the exchange operator: the
// hash-partition scatter kernel itself, and the partition-local join build
// and aggregation pipelines it enables (owned hash tables, no shard locks,
// no radix merge) against the shared-state kernels from the earlier PRs.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/hashtable"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// microParts is the partition fan-out of the partitioned micro benchmarks:
// equal to the g=8 goroutine count, so each goroutine owns one partition
// pipeline outright, the exchange topology's steady state.
const microParts = 8

var (
	microPartOnce     sync.Once
	microPartInput    [][]*storage.Block // partition -> join-build input blocks
	microPartAggOnce  sync.Once
	microPartAggInput [][]*storage.Block // partition -> agg input blocks
)

// scatterByKey splits blocks into microParts partition-local block lists by
// the hash of key column keyCol — the layout the exchange operator produces.
// The scatter cost itself is measured separately (exchange/scatter/*), so the
// partitioned build/agg benchmarks start from pre-scattered input the same
// way the shared-path benchmarks start from pre-built blocks.
func scatterByKey(blocks []*storage.Block, schema *storage.Schema, keyCol int) [][]*storage.Block {
	pr := types.NewPartitioner(microParts)
	proj := make([]int, schema.NumCols())
	for i := range proj {
		proj[i] = i
	}
	out := make([][]*storage.Block, microParts)
	cur := make([]*storage.Block, microParts)
	var keys []int64
	var hs []uint64
	for _, b := range blocks {
		keys = b.GatherInt64(keyCol, keys)
		hs = types.HashPairVec(keys, nil, hs)
		for r := 0; r < b.NumRows(); r++ {
			p := pr.Of(hs[r])
			if cur[p] == nil || cur[p].Full() {
				cur[p] = storage.NewBlock(schema, storage.ColumnStore, microBlockRows*16+64)
				out[p] = append(out[p], cur[p])
			}
			cur[p].AppendFrom(b, r, proj)
		}
	}
	return out
}

func microPartData() [][]*storage.Block {
	microPartOnce.Do(func() {
		blocks, _ := microData()
		in, _ := microPayloadSchema()
		microPartInput = scatterByKey(blocks, in, 0)
	})
	return microPartInput
}

func microPartAggData() [][]*storage.Block {
	microPartAggOnce.Do(func() {
		blocks, schema := microAggData()
		microPartAggInput = scatterByKey(blocks, schema, 0)
	})
	return microPartAggInput
}

// benchScatter runs the exchange operator's repartition work orders over the
// micro build input with g goroutines: gather + vectorized hash + counting
// sort per block, emitting into partition-tagged temp blocks.
func benchScatter(g int) func(b *testing.B) {
	return func(b *testing.B) {
		blocks, _ := microData()
		in, _ := microPayloadSchema()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Operator and pool construction are not the kernel under test.
			b.StopTimer()
			op := exchange.New(exchange.Spec{
				Name: "bench", InputSchema: in, KeyCols: []int{0}, Partitions: microParts,
			})
			op.SetID(0)
			ctx := &core.ExecCtx{
				Pool:           storage.NewPool(nil, nil),
				TempBlockBytes: 128 << 10,
				TempFormat:     storage.RowStore,
				Workers:        g,
			}
			op.Init(ctx)
			b.StartTimer()
			runAggWOs(ctx, op.Feed(ctx, 0, blocks), g)
		}
	}
}

// benchPartInsert builds microParts partition-owned hash tables from the
// pre-scattered build input, each table touched by exactly one goroutine
// (InsertBlockOwned: zero shard locks). The shared-path counterpart is
// hashtable/insert/block/g=8, where all goroutines contend on one table.
func benchPartInsert(g int) func(b *testing.B) {
	return func(b *testing.B) {
		parts := microPartData()
		_, pay := microPayloadSchema()
		rows := make([]int, microParts)
		for p, blks := range parts {
			for _, blk := range blks {
				rows[p] += blk.NumRows()
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tabs := make([]*hashtable.Table, microParts)
			for p := range tabs {
				tabs[p] = hashtable.New(hashtable.Config{
					PayloadSchema: pay, InitialCapacity: rows[p], Owned: true,
				})
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sc := &hashtable.InsertScratch{}
					for p := w; p < microParts; p += g {
						for _, blk := range parts[p] {
							tabs[p].InsertBlockOwned(blk, []int{0}, []int{1}, sc)
						}
					}
				}(w)
			}
			wg.Wait()
		}
	}
}

// benchPartAgg aggregates the pre-scattered agg input through microParts
// partition-local clones (PartitionLocal: single identity merge, no radix
// fan-out), one goroutine driving each partition pipeline end to end. The
// shared-path counterpart is agg/group/vectorized/g=8.
func benchPartAgg(g int) func(b *testing.B) {
	return func(b *testing.B) {
		parts := microPartAggData()
		_, schema := microAggData()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			plan := &core.Plan{}
			ctx := &core.ExecCtx{
				Pool:           storage.NewPool(nil, nil),
				TempBlockBytes: 128 << 10,
				TempFormat:     storage.RowStore,
				Workers:        g,
			}
			ops := make([]*exec.AggOp, microParts)
			for p := range ops {
				ops[p] = exec.NewAgg(exec.AggOpSpec{
					Name: "agg", InputSchema: schema,
					GroupBy: []expr.Expr{expr.C(schema, "g")}, GroupByNames: []string{"g"},
					Aggs: []exec.AggSpec{
						{Func: exec.Sum, Arg: expr.C(schema, "v"), Name: "s"},
						{Func: exec.Count, Name: "c"},
						{Func: exec.Min, Arg: expr.C(schema, "v"), Name: "mn"},
					},
					PartitionLocal: true,
				})
				exec.AddOp(plan, ops[p])
				ops[p].Init(ctx)
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for p := w; p < microParts; p += g {
						runAggWOs(ctx, ops[p].Feed(ctx, 0, parts[p]), 1)
						runAggWOs(ctx, ops[p].Final(ctx), 1)
					}
				}(w)
			}
			wg.Wait()
		}
	}
}

// buildExchangeJoinAgg constructs the EXCH join+agg plan over the synthetic
// star tables; parts > 1 partitions both the join and the aggregation behind
// exchanges, parts == 1 is the ordinary shared-state plan.
func buildExchangeJoinAgg(fact, dim *storage.Table, dimRows, parts int) *engine.Builder {
	b := engine.NewBuilder()
	fs, ds := fact.Schema(), dim.Schema()
	selDim := b.ScanSelect(exec.SelectSpec{
		Name: "sel_dim", Base: dim,
		Proj:      []expr.Expr{expr.C(ds, "k"), expr.C(ds, "w")},
		ProjNames: []string{"k", "w"},
	})
	selFact := b.ScanSelect(exec.SelectSpec{
		Name: "sel_fact", Base: fact,
		Proj:      []expr.Expr{expr.C(fs, "k"), expr.C(fs, "grp"), expr.C(fs, "v")},
		ProjNames: []string{"k", "grp", "v"},
	})
	bspec := exec.BuildSpec{
		Name: "build_dim", KeyCols: []int{0}, Payload: []int{1}, ExpectedRows: dimRows,
	}
	pspec := exec.ProbeSpec{
		Name: "probe_dim", KeyCols: []int{0},
		ProbeProj: []int{1, 2}, BuildProj: []int{0},
		Rename: []string{"grp", "v", "w"},
	}
	var joined *engine.Node
	if parts > 1 {
		joined = b.PartitionedHashJoin(selDim, selFact, bspec, pspec, parts)
	} else {
		bld, _ := b.Build(selDim, bspec)
		joined = b.Probe(selFact, bld, pspec)
	}
	agg := b.PartitionedAgg(joined, exec.AggOpSpec{
		Name:         "agg",
		GroupBy:      []expr.Expr{expr.C(joined.Schema, "grp")},
		GroupByNames: []string{"grp"},
		Aggs: []exec.AggSpec{
			{Func: exec.Count, Name: "cnt"},
			{Func: exec.Sum, Arg: expr.C(joined.Schema, "v"), Name: "sv"},
		},
	}, parts)
	b.Collect(agg)
	return b
}

// ExchangeProfile compares the shared-state join+agg plan against the
// hash-partitioned plan (exchange + partition-local build/probe/agg clones)
// on a synthetic star join scaled by the configured SF, and demonstrates the
// partition-skew guard on a constant-key input. The partitioned plan's build
// clones own their tables outright, so its shard-lock count must sit at ~0
// while the shared plan's scales with build rows.
func (h *Harness) ExchangeProfile() (*Report, error) {
	r := &Report{
		ID:    "EXCH",
		Title: "Exchange profile (partition-local pipelines vs shared-state join+agg)",
		Header: []string{
			"plan", "parts", "wall_ms", "shard_locks", "exchange_rows", "fanout", "skew",
		},
	}
	factRows := int(2_000_000 * h.cfg.SF)
	if factRows < 2048 {
		factRows = 2048
	}
	dimRows := factRows/16 + 1

	db := engine.NewDB(64<<10, storage.ColumnStore)
	fact := db.CreateTable("exch_fact", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "grp", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Int64},
	))
	lf := storage.NewLoader(fact)
	for i := 0; i < factRows; i++ {
		// splayed keys, 50% join hit rate, 64 groups
		lf.Append(
			types.NewInt64(int64(i)*2654435761%int64(2*dimRows)),
			types.NewInt64(int64(i%64)),
			types.NewInt64(int64(i%1000)),
		)
	}
	lf.Close()
	dim := db.CreateTable("exch_dim", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "w", Type: types.Int64},
	))
	ld := storage.NewLoader(dim)
	for i := 0; i < dimRows; i++ {
		ld.Append(types.NewInt64(int64(i)), types.NewInt64(int64(i%100)))
	}
	ld.Close()

	parts := costmodel.Partitions(int64(factRows), h.cfg.Workers)
	modes := []struct {
		name  string
		parts int
	}{{"shared", 1}, {"partitioned/4", 4}, {"partitioned/8", 8}}
	if parts > 8 {
		modes = append(modes, struct {
			name  string
			parts int
		}{fmt.Sprintf("partitioned/%d", parts), parts})
	}
	for _, mode := range modes {
		wall, run, err := h.bestOf(func() (*stats.Run, error) {
			res, err := engine.Execute(buildExchangeJoinAgg(fact, dim, dimRows, mode.parts), engine.Options{
				Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 64 << 10,
			})
			if err != nil {
				return nil, err
			}
			return res.Run, nil
		})
		if err != nil {
			return nil, err
		}
		locks, _, _ := run.Contention()
		rows, fanout, skew := run.ExchangeKernels()
		r.AddRow(
			mode.name, fmt.Sprintf("%d", mode.parts), ms(wall),
			fmt.Sprintf("%d", locks),
			fmt.Sprintf("%d", rows),
			fmt.Sprintf("%d", fanout),
			fmt.Sprintf("%d", skew),
		)
	}

	// Skew-guard demonstration: a constant group key routes every row to one
	// partition; the guard must trip and surface in the run counters.
	skewTbl := db.CreateTable("exch_skew", storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Int64},
	))
	ls := storage.NewLoader(skewTbl)
	for i := 0; i < factRows/4; i++ {
		ls.Append(types.NewInt64(7), types.NewInt64(int64(i)))
	}
	ls.Close()
	sb := engine.NewBuilder()
	ss := skewTbl.Schema()
	sel := sb.ScanSelect(exec.SelectSpec{
		Name: "sel_skew", Base: skewTbl,
		Proj:      []expr.Expr{expr.C(ss, "k"), expr.C(ss, "v")},
		ProjNames: []string{"k", "v"},
	})
	agg := sb.PartitionedAgg(sel, exec.AggOpSpec{
		Name:         "agg_skew",
		GroupBy:      []expr.Expr{expr.C(sel.Schema, "k")},
		GroupByNames: []string{"k"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "cnt"}},
	}, parts)
	sb.Collect(agg)
	res, err := engine.Execute(sb, engine.Options{
		Workers: h.cfg.Workers, UoTBlocks: 1, TempBlockBytes: 64 << 10,
	})
	if err != nil {
		return nil, err
	}
	locks, _, _ := res.Run.Contention()
	rows, fanout, skew := res.Run.ExchangeKernels()
	r.AddRow(
		"skewed(const key)", fmt.Sprintf("%d", parts),
		fmt.Sprintf("%.2f", float64(res.Run.WallTime())/float64(time.Millisecond)),
		fmt.Sprintf("%d", locks),
		fmt.Sprintf("%d", rows),
		fmt.Sprintf("%d", fanout),
		fmt.Sprintf("%d", skew),
	)
	r.Note("partitioned build clones own their hash tables (InsertBlockOwned): shard_locks ~0; skew counts partitions where one partition held >50%% of scattered rows")
	return r, nil
}
