// Package faults is a deterministic, seeded fault injector for the
// scheduler's robustness layer. Hot-path operator code consults the injector
// at named sites (hash-table insert, bloom build, aggregation upsert, block
// materialize); the injector decides — as a pure function of (seed, site,
// per-site invocation index) — whether to inject a fault there and of which
// kind: a returned error, a panic, artificial latency, or an allocation
// failure.
//
// Determinism: no wall clock and no global RNG are involved. The decision for
// the i-th consultation of a site depends only on the configured seed, so two
// runs that consult the sites in the same order observe the same fault
// schedule. With a single worker the scheduler is deterministic, so the same
// seed replays the same schedule exactly; with several workers the set of
// decisions is unchanged but their assignment to work orders follows the
// thread interleaving. Every fired fault is logged and the log is itself a
// replayable schedule (see Replay).
package faults

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Site is a named fault-injection point in operator or scheduler code.
type Site uint8

// The named injection sites.
const (
	// HashInsert fires at the start of a hash-join build work order,
	// strictly before any hash-table mutation.
	HashInsert Site = iota
	// BloomBuild fires before a build work order populates the LIP bloom
	// filter (also pre-mutation).
	BloomBuild
	// AggUpsert fires at the start of a vectorized aggregation work order,
	// before the thread-local partial table is touched.
	AggUpsert
	// BlockMaterialize fires when an emitter checks a temporary output
	// block out of the pool (mid-stream: earlier blocks of the same work
	// order may already be sealed and must be rolled back).
	BlockMaterialize
	// SortRun fires at the start of a normalized-key run-generation work
	// order, before the run is stored (pre-mutation; demotes the sort to the
	// reference path like AggUpsert does for aggregation).
	SortRun
	// Repartition fires at the start of an exchange scatter work order,
	// before any partition stream is touched (pre-mutation; demotes the
	// vectorized scatter to the row-at-a-time reference path).
	Repartition
	// SpillWrite fires before the spill tier writes an evicted block to an
	// extent file. Any fired kind — panics included — demotes the eviction
	// to stall-and-retry: the block stays resident and the tier tries again
	// at the next pressure event, so no spill file is ever half-written.
	SpillWrite
	// SpillRead fires before the spill tier faults a block back in from
	// disk. The read is retried a bounded number of times; persistent
	// faults fail the pinning delivery, and the run's retry re-derives the
	// block from upstream.
	SpillRead

	numSites = 8
)

// Sites lists every defined site.
func Sites() []Site {
	return []Site{HashInsert, BloomBuild, AggUpsert, BlockMaterialize, SortRun, Repartition, SpillWrite, SpillRead}
}

// String returns the site's name.
func (s Site) String() string {
	switch s {
	case HashInsert:
		return "hash_insert"
	case BloomBuild:
		return "bloom_build"
	case AggUpsert:
		return "agg_upsert"
	case BlockMaterialize:
		return "block_materialize"
	case SortRun:
		return "sort_run"
	case Repartition:
		return "repartition"
	case SpillWrite:
		return "spill_write"
	case SpillRead:
		return "spill_read"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// Kind is the failure mode of an injected fault.
type Kind uint8

// The failure modes.
const (
	// KindError makes At return a *Fault error.
	KindError Kind = iota
	// KindPanic makes At panic with a *Fault value.
	KindPanic
	// KindLatency makes At sleep (bounded by Config.MaxLatency) and return
	// nil: the work order slows down but does not fail, exercising the
	// deadline machinery.
	KindLatency
	// KindAlloc models an allocation failure: At returns a *Fault error
	// distinguished from KindError only for reporting.
	KindAlloc
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindAlloc:
		return "alloc"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one injected fault. It implements error and is classified
// transient, so the scheduler rolls the attempt back and retries it.
type Fault struct {
	Site Site
	Kind Kind
	Seq  uint64 // the site consultation index that fired
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected %s fault at %s (seq %d)", f.Kind, f.Site, f.Seq)
}

// Transient reports that injected faults are safe to retry.
func (f *Fault) Transient() bool { return true }

// Event is one fired fault in the schedule log.
type Event struct {
	Site Site
	Seq  uint64
	Kind Kind
}

// Config configures an Injector.
type Config struct {
	// Seed drives every injection decision. The same seed yields the same
	// per-site decision sequence.
	Seed uint64
	// Rate is the default per-consultation fault probability for every
	// site in [0, 1].
	Rate float64
	// Rates overrides Rate per site.
	Rates map[Site]float64
	// Kinds are the enabled failure modes; empty enables all of them. The
	// kind of a fired fault is chosen deterministically from the decision
	// hash.
	Kinds []Kind
	// MaxLatency bounds KindLatency sleeps (default 200µs).
	MaxLatency time.Duration
}

// Injector decides fault injection at named sites. All methods are safe for
// concurrent use.
type Injector struct {
	seed       uint64
	thresh     [numSites]uint64
	kinds      []Kind
	maxLatency time.Duration

	seq      [numSites]atomic.Uint64
	injected atomic.Int64

	// replay, if non-nil, overrides probabilistic decisions: exactly the
	// scheduled (site, seq) pairs fire.
	replay [numSites]map[uint64]Kind

	mu  sync.Mutex
	log []Event
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	in := &Injector{
		seed:       cfg.Seed,
		kinds:      cfg.Kinds,
		maxLatency: cfg.MaxLatency,
	}
	if len(in.kinds) == 0 {
		in.kinds = []Kind{KindError, KindPanic, KindLatency, KindAlloc}
	}
	if in.maxLatency <= 0 {
		in.maxLatency = 200 * time.Microsecond
	}
	for _, s := range Sites() {
		rate := cfg.Rate
		if r, ok := cfg.Rates[s]; ok {
			rate = r
		}
		in.thresh[s] = rateThreshold(rate)
	}
	return in
}

// Replay returns an injector that fires exactly the events of a previously
// recorded schedule (kinds included) and nothing else.
func Replay(schedule []Event) *Injector {
	in := &Injector{maxLatency: 200 * time.Microsecond}
	for i := range in.replay {
		in.replay[i] = make(map[uint64]Kind)
	}
	for _, ev := range schedule {
		in.replay[ev.Site][ev.Seq] = ev.Kind
	}
	return in
}

// rateThreshold maps a probability to a uint64 comparison threshold.
func rateThreshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return math.MaxUint64
	default:
		return uint64(rate * float64(math.MaxUint64))
	}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// decide returns whether consultation n of site fires and, if so, the kind.
func (in *Injector) decide(site Site, n uint64) (Kind, bool) {
	if in.replay[site] != nil {
		k, ok := in.replay[site][n]
		return k, ok
	}
	h := mix64(in.seed ^ mix64(uint64(site)+1) ^ mix64(n+0x9e3779b97f4a7c15))
	if h >= in.thresh[site] {
		return 0, false
	}
	return in.kinds[mix64(h)%uint64(len(in.kinds))], true
}

// At consults the injector at site. Most calls return nil. When a fault
// fires it is logged, then: KindError and KindAlloc return a *Fault error,
// KindPanic panics with a *Fault, and KindLatency sleeps a deterministic
// duration (bounded by MaxLatency) and returns nil.
func (in *Injector) At(site Site) error {
	n := in.seq[site].Add(1) - 1
	kind, fire := in.decide(site, n)
	if !fire {
		return nil
	}
	in.injected.Add(1)
	in.mu.Lock()
	in.log = append(in.log, Event{Site: site, Seq: n, Kind: kind})
	in.mu.Unlock()
	f := &Fault{Site: site, Kind: kind, Seq: n}
	switch kind {
	case KindPanic:
		panic(f)
	case KindLatency:
		d := time.Duration(mix64(n+uint64(site)+7) % uint64(in.maxLatency))
		time.Sleep(d)
		return nil
	default: // KindError, KindAlloc
		return f
	}
}

// Injected returns the number of faults fired so far (all kinds, latency
// included).
func (in *Injector) Injected() int64 { return in.injected.Load() }

// Consulted returns how many times site has been consulted.
func (in *Injector) Consulted(site Site) uint64 { return in.seq[site].Load() }

// Schedule returns a copy of the fired-fault log in firing order. Two
// single-worker runs with the same seed over the same plan produce equal
// schedules; the log can be fed to Replay to reproduce the run's faults
// exactly.
func (in *Injector) Schedule() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}
