package faults

import (
	"errors"
	"sync"
	"testing"
)

// drive consults every site n times from g goroutines and returns the fired
// events (via the injector's own log).
func drive(in *Injector, n int, g int) {
	var wg sync.WaitGroup
	per := n / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for _, s := range Sites() {
					func() {
						defer func() { recover() }() // swallow KindPanic
						_ = in.At(s)
					}()
				}
			}
		}()
	}
	wg.Wait()
}

func scheduleKey(evs []Event) map[Event]int {
	m := make(map[Event]int, len(evs))
	for _, e := range evs {
		m[e]++
	}
	return m
}

func TestSameSeedSameSchedule(t *testing.T) {
	mk := func() *Injector {
		return New(Config{Seed: 42, Rate: 0.05, Kinds: []Kind{KindError}})
	}
	a, b := mk(), mk()
	drive(a, 4096, 1)
	drive(b, 4096, 1)
	sa, sb := a.Schedule(), b.Schedule()
	if len(sa) == 0 {
		t.Fatal("no faults fired at 5% over 4096 consultations")
	}
	if len(sa) != len(sb) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestDecisionSetIndependentOfConcurrency(t *testing.T) {
	// The decision for consultation n of a site is a pure function of
	// (seed, site, n): the multiset of fired events must not depend on how
	// many goroutines consult the sites.
	a := New(Config{Seed: 7, Rate: 0.03})
	b := New(Config{Seed: 7, Rate: 0.03})
	drive(a, 4096, 1)
	drive(b, 4096, 8)
	sa, sb := scheduleKey(a.Schedule()), scheduleKey(b.Schedule())
	if len(sa) != len(sb) {
		t.Fatalf("distinct events differ: %d vs %d", len(sa), len(sb))
	}
	for e, n := range sa {
		if sb[e] != n {
			t.Fatalf("event %+v count %d vs %d", e, n, sb[e])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1, Rate: 0.05, Kinds: []Kind{KindError}})
	b := New(Config{Seed: 2, Rate: 0.05, Kinds: []Kind{KindError}})
	drive(a, 4096, 1)
	drive(b, 4096, 1)
	sa, sb := a.Schedule(), b.Schedule()
	if len(sa) == len(sb) {
		same := true
		for i := range sa {
			if sa[i] != sb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical schedules")
		}
	}
}

func TestRateRoughlyRespected(t *testing.T) {
	in := New(Config{Seed: 9, Rate: 0.01, Kinds: []Kind{KindError}})
	const n = 100_000
	fired := 0
	for i := 0; i < n; i++ {
		if in.At(HashInsert) != nil {
			fired++
		}
	}
	// 1% of 100k = 1000 expected; accept a generous ±50% band.
	if fired < 500 || fired > 1500 {
		t.Fatalf("fired %d/%d at rate 0.01", fired, n)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := New(Config{Seed: 3})
	drive(in, 2048, 2)
	if got := in.Injected(); got != 0 {
		t.Fatalf("zero-rate injector fired %d faults", got)
	}
}

func TestPerSiteRateOverride(t *testing.T) {
	in := New(Config{
		Seed:  11,
		Rate:  0,
		Rates: map[Site]float64{BloomBuild: 1},
		Kinds: []Kind{KindError},
	})
	if err := in.At(HashInsert); err != nil {
		t.Fatalf("rate-0 site fired: %v", err)
	}
	if err := in.At(BloomBuild); err == nil {
		t.Fatal("rate-1 site did not fire")
	}
}

func TestReplayReproducesSchedule(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 0.1})
	drive(in, 1024, 1)
	want := in.Schedule()
	if len(want) == 0 {
		t.Fatal("nothing fired")
	}

	rp := Replay(want)
	drive(rp, 1024, 1)
	got := rp.Schedule()
	if len(got) != len(want) {
		t.Fatalf("replay fired %d events, want %d", len(got), len(want))
	}
	wm, gm := scheduleKey(want), scheduleKey(got)
	for e, n := range wm {
		if gm[e] != n {
			t.Fatalf("replay event %+v count %d vs %d", e, gm[e], n)
		}
	}
}

func TestFaultIsTransientError(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindAlloc}})
	err := in.At(AggUpsert)
	if err == nil {
		t.Fatal("rate-1 injector returned nil")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is %T, want *Fault", err)
	}
	if !f.Transient() {
		t.Fatal("injected fault not transient")
	}
	if f.Kind != KindAlloc || f.Site != AggUpsert {
		t.Fatalf("fault = %+v", f)
	}
}

func TestPanicKindPanicsWithFault(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindPanic}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if _, ok := r.(*Fault); !ok {
			t.Fatalf("panic value is %T, want *Fault", r)
		}
	}()
	_ = in.At(BlockMaterialize)
}
