package core

import (
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

// partProducer emits rows 0..rows-1, scattering row r to partition r%parts
// via partition-tagged emitters (the exchange operator's emission pattern,
// reduced to its core-level essentials).
type partProducer struct {
	Base
	self  OpID
	rows  int
	parts int
}

func (p *partProducer) Name() string          { return "partprod" }
func (p *partProducer) NumInputs() int        { return 0 }
func (p *partProducer) OutputPartitions() int { return p.parts }

func (p *partProducer) Start(*ExecCtx) []WorkOrder {
	return []WorkOrder{&partProduceWO{p: p}}
}

type partProduceWO struct{ p *partProducer }

func (w *partProduceWO) Inputs() []*storage.Block { return nil }

func (w *partProduceWO) Run(ctx *ExecCtx, out *Output) error {
	ems := make([]*Emitter, w.p.parts)
	for i := range ems {
		ems[i] = NewPartEmitter(ctx, out, w.p.self, i, testSchema)
	}
	for r := 0; r < w.p.rows; r++ {
		ems[r%w.p.parts].AppendRow(types.NewInt64(int64(r)))
	}
	return nil
}

// rowCollector records every row value it is fed.
type rowCollector struct {
	Base
	mu   sync.Mutex
	rows []int64
}

func (c *rowCollector) Name() string   { return "collector" }
func (c *rowCollector) NumInputs() int { return 1 }

func (c *rowCollector) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range blocks {
		for r := 0; r < b.NumRows(); r++ {
			c.rows = append(c.rows, b.Int64At(0, r))
		}
	}
	return nil
}

func TestPartitionTaggedBlocksRouteToMatchingEdges(t *testing.T) {
	// 51 rows over 2 partitions, 8-row temp blocks: both sealed blocks and
	// finish-time partial drains flow through the partition router.
	const rows = 51
	plan := &Plan{}
	p := &partProducer{rows: rows, parts: 2}
	p.self = plan.AddOp(p)
	c0, c1, all := &rowCollector{}, &rowCollector{}, &rowCollector{}
	plan.PipePart(p.self, plan.AddOp(c0), 0, 0, 0)
	plan.PipePart(p.self, plan.AddOp(c1), 0, 0, 1)
	plan.Pipe(p.self, plan.AddOp(all), 0, 0) // unpartitioned edge sees everything
	if err := Run(plan, newCtx(4), 1); err != nil {
		t.Fatal(err)
	}
	for part, c := range []*rowCollector{c0, c1} {
		want := rows/2 + (1-part)*(rows%2)
		if len(c.rows) != want {
			t.Fatalf("partition %d got %d rows, want %d", part, len(c.rows), want)
		}
		for _, v := range c.rows {
			if int(v)%2 != part {
				t.Fatalf("partition %d received row %d", part, v)
			}
		}
	}
	if len(all.rows) != rows {
		t.Fatalf("unpartitioned edge got %d rows, want %d", len(all.rows), rows)
	}
}

func TestUnmatchedPartitionBlocksAreReleased(t *testing.T) {
	// Only partition 0 has a consumer; partition 1's blocks must be released
	// immediately (the run's zero-leak invariant would fail otherwise).
	plan := &Plan{}
	p := &partProducer{rows: 40, parts: 2}
	p.self = plan.AddOp(p)
	c0 := &rowCollector{}
	plan.PipePart(p.self, plan.AddOp(c0), 0, 0, 0)
	ctx := newCtx(2)
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatal(err)
	}
	if len(c0.rows) != 20 {
		t.Fatalf("partition 0 got %d rows, want 20", len(c0.rows))
	}
	if pending := ctx.Pool.PendingPartials(); pending != 0 {
		t.Fatalf("%d partial blocks leaked", pending)
	}
}

func TestUntaggedBlocksBroadcastToPartitionedEdges(t *testing.T) {
	// An unpartitioned producer feeding partition-tagged edges broadcasts to
	// all of them (tag -1 matches every edge), preserving fan-out semantics.
	plan := &Plan{}
	p := &producer{nblocks: 6, rows: 2}
	pid := plan.AddOp(p)
	c0, c1 := &rowCollector{}, &rowCollector{}
	plan.PipePart(pid, plan.AddOp(c0), 0, 0, 0)
	plan.PipePart(pid, plan.AddOp(c1), 0, 0, 1)
	if err := Run(plan, newCtx(2), 1); err != nil {
		t.Fatal(err)
	}
	if len(c0.rows) != 12 || len(c1.rows) != 12 {
		t.Fatalf("broadcast rows: %d, %d, want 12 each", len(c0.rows), len(c1.rows))
	}
}

func TestPartOwnerKeysDisjoint(t *testing.T) {
	seen := map[int]bool{}
	for op := OpID(0); op < 8; op++ {
		for part := 0; part < 16; part++ {
			k := PartOwner(op, part)
			if k >= 0 {
				t.Fatalf("PartOwner(%d,%d) = %d, want negative (operator IDs are >= 0)", op, part, k)
			}
			if seen[k] {
				t.Fatalf("PartOwner(%d,%d) = %d collides", op, part, k)
			}
			seen[k] = true
		}
	}
}
