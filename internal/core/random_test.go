package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

// passthrough consumes blocks and re-emits one block per input block with
// the same rows, counting everything it sees.
type passthrough struct {
	Base
	name   string
	rowsIn atomic.Int64
}

func (p *passthrough) Name() string   { return p.name }
func (p *passthrough) NumInputs() int { return 1 }

func (p *passthrough) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	wos := make([]WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &passWO{p: p, b: b}
	}
	return wos
}

type passWO struct {
	p *passthrough
	b *storage.Block
}

func (w *passWO) Inputs() []*storage.Block { return []*storage.Block{w.b} }

func (w *passWO) Run(_ *ExecCtx, out *Output) error {
	n := w.b.NumRows()
	w.p.rowsIn.Add(int64(n))
	nb := storage.NewBlock(testSchema, storage.RowStore, n*8+8)
	for r := 0; r < n; r++ {
		nb.AppendRow(types.NewInt64(w.b.Int64At(0, r)))
	}
	out.Blocks = append(out.Blocks, nb)
	out.RowsIn = int64(n)
	return nil
}

// sink counts rows without re-emitting.
type sink struct {
	Base
	name   string
	inputs int
	rows   atomic.Int64
}

func (s *sink) Name() string   { return s.name }
func (s *sink) NumInputs() int { return s.inputs }

func (s *sink) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	wos := make([]WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &sinkWO{s: s, b: b}
	}
	return wos
}

type sinkWO struct {
	s *sink
	b *storage.Block
}

func (w *sinkWO) Inputs() []*storage.Block { return []*storage.Block{w.b} }
func (w *sinkWO) Run(_ *ExecCtx, out *Output) error {
	w.s.rows.Add(int64(w.b.NumRows()))
	out.RowsIn = int64(w.b.NumRows())
	return nil
}

// TestRandomDAGsConserveRows builds random layered DAGs — random producer
// sizes, random UoT per edge, random fan-out, random extra blocking edges,
// random worker counts — and checks the delivery invariants: every consumer
// sees exactly the rows its producer emitted, regardless of schedule.
func TestRandomDAGsConserveRows(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			plan := &Plan{}

			// Layer 0: 1-3 producers.
			nProd := rng.Intn(3) + 1
			prodRows := make([]int64, nProd)
			var layer []OpID // previous layer's op IDs
			rowsOut := map[OpID]int64{}
			for i := 0; i < nProd; i++ {
				blocks := rng.Intn(12) + 1
				rows := rng.Intn(5) + 1
				p := &producer{nblocks: blocks, rows: rows}
				id := plan.AddOp(p)
				layer = append(layer, id)
				prodRows[i] = int64(blocks * rows)
				rowsOut[id] = prodRows[i]
			}

			// 1-3 middle layers of passthroughs, each wired to a random
			// op of the previous layer with a random UoT.
			passes := map[OpID]*passthrough{}
			wantIn := map[OpID]int64{}
			for l := 0; l < rng.Intn(3)+1; l++ {
				var next []OpID
				for i := 0; i < rng.Intn(3)+1; i++ {
					src := layer[rng.Intn(len(layer))]
					p := &passthrough{name: fmt.Sprintf("pass_%d_%d", l, i)}
					id := plan.AddOp(p)
					uot := []int{0, 1, 2, 3, UoTTable}[rng.Intn(5)]
					plan.Pipe(src, id, 0, uot)
					passes[id] = p
					wantIn[id] = rowsOut[src]
					rowsOut[id] = rowsOut[src]
					next = append(next, id)
				}
				layer = next
			}

			// Every dangling op feeds one final sink (one input per edge),
			// so everything is consumed.
			hasOut := map[OpID]bool{}
			for _, es := range plan.Edges {
				if es.Kind == Pipelined {
					hasOut[es.From] = true
				}
			}
			nOps := len(plan.Ops)
			snk := &sink{name: "sink"}
			sinkID := plan.AddOp(snk)
			var sinkWant int64
			input := 0
			for id := OpID(0); int(id) < nOps; id++ {
				if hasOut[id] {
					continue
				}
				plan.Pipe(id, sinkID, input, []int{0, 1, 5, UoTTable}[rng.Intn(4)])
				input++
				sinkWant += rowsOut[id]
			}
			snk.inputs = input

			// Random blocking edges from earlier to later ops (keeps the
			// graph acyclic).
			for i := 0; i < rng.Intn(3); i++ {
				a := OpID(rng.Intn(nOps))
				b := OpID(rng.Intn(nOps))
				if a < b {
					plan.Block(a, b)
				}
			}

			ctx := newCtx(rng.Intn(8) + 1)
			ctx.MemoryBudget = []int64{0, 0, 256}[rng.Intn(3)]
			if err := Run(plan, ctx, rng.Intn(4)+1); err != nil {
				t.Fatalf("run failed: %v", err)
			}
			for id, p := range passes {
				if got := p.rowsIn.Load(); got != wantIn[id] {
					t.Errorf("%s received %d rows, want %d", p.name, got, wantIn[id])
				}
			}
			if sinkID >= 0 {
				if got := snk.rows.Load(); got != sinkWant {
					t.Errorf("sink received %d rows, want %d", got, sinkWant)
				}
			}
		})
	}
}
