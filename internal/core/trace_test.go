package core

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// newTracedCtx is newCtx with a tracer attached the way engine.Execute does
// it: StartRun before the scheduler builds.
func newTracedCtx(workers int, label string) (*ExecCtx, *trace.Tracer) {
	tr := trace.New(1 << 12)
	tr.StartRun(label)
	ctx := newCtx(workers)
	ctx.Trace = tr
	return ctx, tr
}

func TestTraceRegistersPlanAndRecordsSpans(t *testing.T) {
	p := &producer{nblocks: 6, rows: 2}
	c := &consumer{}
	ctx, tr := newTracedCtx(2, "pipe")
	if err := Run(pipePlan(p, c, 2), ctx, 1); err != nil {
		t.Fatal(err)
	}
	m := tr.Snapshot()
	if len(m.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(m.Runs))
	}
	run := m.Runs[0]
	if run.Label != "pipe" || run.Workers != 2 || run.Failed {
		t.Fatalf("run meta = %+v", run)
	}
	if run.WallNS <= 0 {
		t.Fatalf("wallNS = %d, want > 0 (EndRun stamped by scheduler)", run.WallNS)
	}
	if len(run.Ops) != 2 || run.Ops[0].Name != "producer" || run.Ops[1].Name != "consumer" {
		t.Fatalf("registered ops = %+v", run.Ops)
	}
	// 6 producer work orders (one per block), 6 consumer work orders.
	if run.Ops[0].Spans != 6 || run.Ops[1].Spans != 6 {
		t.Fatalf("span counts = %d/%d, want 6/6", run.Ops[0].Spans, run.Ops[1].Spans)
	}
	if run.Ops[1].Rows != 12 {
		t.Fatalf("consumer rows = %d, want 12", run.Ops[1].Rows)
	}
	if run.Ops[0].BusyNS <= 0 || run.Ops[0].QueueNS < 0 {
		t.Fatalf("producer busy/queue = %d/%d", run.Ops[0].BusyNS, run.Ops[0].QueueNS)
	}

	// The pipelined edge: 6 blocks at UoT 2 means 3 deliveries.
	if len(run.Edges) != 1 {
		t.Fatalf("registered edges = %+v", run.Edges)
	}
	e := run.Edges[0]
	if e.From != "producer" || e.To != "consumer" || !e.Pipelined || e.UoT != 2 {
		t.Fatalf("edge meta = %+v", e)
	}
	if e.Batches != 3 || e.Blocks != 6 {
		t.Fatalf("edge batches/blocks = %d/%d, want 3/6", e.Batches, e.Blocks)
	}
	if e.Samples < e.Batches {
		t.Fatalf("edge samples = %d < batches %d", e.Samples, e.Batches)
	}

	// Span events: producer spans have no batch id, consumer spans carry the
	// UoT delivery id they were born from.
	var consumerBatches []int64
	var runEnd bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindSpan:
			if ev.StartNS < ev.EnqueueNS {
				t.Fatalf("span starts before enqueue: %+v", ev)
			}
			if ev.EndNS < ev.StartNS {
				t.Fatalf("span ends before start: %+v", ev)
			}
			if ev.Attempt != 1 {
				t.Fatalf("fault-free attempt = %d, want 1", ev.Attempt)
			}
			name := tr.OpName(ev.Run, ev.Op)
			if name == "producer" && ev.Batch != -1 {
				t.Fatalf("producer span has batch id %d", ev.Batch)
			}
			if name == "consumer" {
				consumerBatches = append(consumerBatches, ev.Batch)
			}
		case trace.KindEdge:
			if ev.UoT != 2 {
				t.Fatalf("edge sample UoT = %d, want 2", ev.UoT)
			}
		case trace.KindMark:
			if ev.Mark == trace.MarkRunEnd {
				runEnd = true
			}
		}
	}
	if !runEnd {
		t.Fatal("no run-end mark recorded")
	}
	seen := map[int64]int{}
	for _, b := range consumerBatches {
		if b < 0 || b > 2 {
			t.Fatalf("consumer batch id %d out of range [0,2]", b)
		}
		seen[b]++
	}
	// Each of the 3 deliveries produced 2 consumer work orders.
	for b := int64(0); b < 3; b++ {
		if seen[b] != 2 {
			t.Fatalf("batch %d spawned %d consumer spans, want 2 (got %v)", b, seen[b], seen)
		}
	}
}

func TestTraceRecordsRetriesAndFailedRun(t *testing.T) {
	f := &flaky{failN: 2, rows: 3}
	c := &consumer{}
	plan := &Plan{}
	fid := plan.AddOp(f)
	cid := plan.AddOp(c)
	plan.Pipe(fid, cid, 0, 1)
	ctx, tr := newTracedCtx(2, "flaky")
	ctx.MaxAttempts = 5
	ctx.RetryBackoff = time.Microsecond
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatal(err)
	}
	m := tr.Snapshot()
	fo := m.Runs[0].Ops[int(fid)]
	if fo.Spans != 3 || fo.Failed != 2 || fo.Retries != 2 {
		t.Fatalf("flaky op metrics = %+v, want 3 spans / 2 failed / 2 retried", fo)
	}
	// Exactly one delivery reached the consumer despite the retries.
	if co := m.Runs[0].Ops[int(cid)]; co.Rows != 3 {
		t.Fatalf("consumer traced rows = %d, want 3", co.Rows)
	}
	var retryMarks int
	var maxAttempt int32
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindMark && ev.Mark == trace.MarkRetry {
			retryMarks++
			if ev.Op != int32(fid) {
				t.Fatalf("retry mark op = %d, want %d", ev.Op, fid)
			}
		}
		if ev.Kind == trace.KindSpan && ev.Attempt > maxAttempt {
			maxAttempt = ev.Attempt
		}
	}
	if retryMarks != 2 {
		t.Fatalf("retry marks = %d, want 2", retryMarks)
	}
	if maxAttempt != 3 {
		t.Fatalf("max recorded attempt = %d, want 3", maxAttempt)
	}
	if m.Runs[0].Failed {
		t.Fatal("run marked failed despite eventual success")
	}
}

func TestTraceMarksFailedRun(t *testing.T) {
	plan := &Plan{}
	plan.AddOp(&panicOp{})
	ctx, tr := newTracedCtx(2, "boom")
	if err := Run(plan, ctx, 1); err == nil {
		t.Fatal("want run error")
	}
	m := tr.Snapshot()
	if !m.Runs[0].Failed {
		t.Fatal("errored run not marked failed in trace")
	}
}

// TestTraceDisabledPathUntouched re-runs a traced scenario with a nil tracer
// to pin the no-tracer path: same results, no events.
func TestTraceDisabledPathUntouched(t *testing.T) {
	p := &producer{nblocks: 4, rows: 2}
	c := &consumer{}
	ctx := newCtx(2) // ctx.Trace == nil
	if err := Run(pipePlan(p, c, 2), ctx, 1); err != nil {
		t.Fatal(err)
	}
	if c.rows != 8 {
		t.Fatalf("rows = %d, want 8", c.rows)
	}
	if ctx.Trace.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
}
