package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/uotctl"
)

// adaptCfg is a deterministic controller configuration for scheduler tests:
// the model prior is disabled so starting UoTs are exactly DefaultUoT.
func adaptCfg(workers, defaultUoT int) uotctl.Config {
	return uotctl.Config{
		Workers: workers, BlockBytes: 64, DefaultUoT: defaultUoT,
		DisablePrior: true,
	}
}

func TestResolveUoT(t *testing.T) {
	ad := uotctl.New(uotctl.Config{Workers: 4, BlockBytes: 128 << 10, DefaultUoT: 7, DisablePrior: true})
	cases := []struct {
		name string
		e    Edge
		def  int
		ad   *uotctl.Controller
		want int
	}{
		{"blocking edges carry no blocks", Edge{Kind: Blocking, UoT: 5}, 3, nil, 0},
		{"explicit UoT wins", Edge{Kind: Pipelined, UoT: 5}, 3, nil, 5},
		{"explicit UoT wins over controller", Edge{Kind: Pipelined, UoT: 5}, 3, ad, 5},
		{"explicit UoTTable passes through", Edge{Kind: Pipelined, UoT: UoTTable}, 3, ad, UoTTable},
		{"undeclared falls back to run default", Edge{Kind: Pipelined}, 3, nil, 3},
		{"non-positive default resolves to 1", Edge{Kind: Pipelined}, 0, nil, 1},
		{"undeclared uses controller prior", Edge{Kind: Pipelined}, 3, ad, 7},
	}
	for _, tc := range cases {
		if got := ResolveUoT(tc.e, tc.def, tc.ad); got != tc.want {
			t.Errorf("%s: ResolveUoT = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestStaticRunRecordsResolvedEdgeUoTs(t *testing.T) {
	// Satellite of the resolver hoist: even a fully static run must surface
	// the resolved starting UoT (run default applied) in the stats snapshot.
	p := &producer{nblocks: 6, rows: 2}
	c := &consumer{}
	ctx := newCtx(1)
	if err := Run(pipePlan(p, c, 0), ctx, 3); err != nil {
		t.Fatal(err)
	}
	edges := ctx.Run.EdgeUoTs()
	if len(edges) != 1 {
		t.Fatalf("edge snapshots = %d, want 1", len(edges))
	}
	e := edges[0]
	if e.Declared != 0 || e.Start != 3 || e.Final != 3 {
		t.Fatalf("edge UoT = %+v, want declared 0 resolved to start=final=3", e)
	}
	if e.FromName != "producer" || e.ToName != "consumer" {
		t.Fatalf("edge names = %s->%s", e.FromName, e.ToName)
	}
	if e.Raises+e.Lowers+e.Snaps != 0 {
		t.Fatalf("static run recorded decisions: %+v", e)
	}
}

func TestAdaptiveRunObservesAndRecordsTrajectory(t *testing.T) {
	p := &producer{nblocks: 32, rows: 2}
	c := &consumer{}
	ctx := newCtx(1)
	ctx.Adapt = uotctl.New(adaptCfg(1, 1))
	if err := Run(pipePlan(p, c, 0), ctx, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.rows; got != 64 {
		t.Fatalf("consumer rows = %d, want 64", got)
	}
	edges := ctx.Run.EdgeUoTs()
	if len(edges) != 1 {
		t.Fatalf("edge snapshots = %d, want 1", len(edges))
	}
	e := edges[0]
	// The undeclared edge starts at the controller's value (prior disabled →
	// DefaultUoT=1), not the run default of 4.
	if e.Start != 1 {
		t.Fatalf("start UoT = %d, want controller seed 1", e.Start)
	}
	if e.Raises+e.Lowers+e.Holds+e.Snaps == 0 {
		t.Fatal("adaptive run recorded no controller decisions")
	}
	// The per-edge counters and the controller's totals are two views of the
	// same decisions.
	tot := ctx.Adapt.Totals()
	if tot.Raises != e.Raises || tot.Lowers != e.Lowers || tot.Holds != e.Holds || tot.Snaps != e.Snaps {
		t.Fatalf("controller totals %+v != edge counters %+v", tot, e)
	}
}

func TestAdaptiveDeclaredEdgeKeepsExplicitUoT(t *testing.T) {
	// An explicit per-edge UoT is a user decision: the controller starts
	// from it instead of the model prior.
	p := &producer{nblocks: 8, rows: 2}
	c := &consumer{}
	ctx := newCtx(1)
	ctx.Adapt = uotctl.New(adaptCfg(1, 1))
	if err := Run(pipePlan(p, c, 2), ctx, 1); err != nil {
		t.Fatal(err)
	}
	if e := ctx.Run.EdgeUoTs()[0]; e.Declared != 2 || e.Start != 2 {
		t.Fatalf("edge UoT = %+v, want declared=start=2", e)
	}
}

func TestLegacyPressureSnapEmitsDistinctMarkAndCounter(t *testing.T) {
	// A static edge already at maxRaisedUoT degrades by snapping to
	// UoTTable; since the distinct-mark satellite that terminal step counts
	// as a snap (UoTSnaps, MarkUoTSnap), not as another doubling.
	e := &emitN{rows: 8}
	plan := &Plan{}
	eid := plan.AddOp(&multiEmit{op: e, n: 40})
	e.self = eid
	c := &slowSink{}
	cid := plan.AddOp(c)
	plan.Pipe(eid, cid, 0, maxRaisedUoT)
	ctx, tr := newTracedCtx(2, "snap")
	ctx.MemoryBudget = 1
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	r := ctx.Run.Robust()
	if r.UoTSnaps == 0 {
		t.Fatal("pressure at maxRaisedUoT never snapped to table")
	}
	var snapMarks, raiseMarks int
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindMark {
			continue
		}
		switch ev.Mark {
		case trace.MarkUoTSnap:
			snapMarks++
			if ev.UoT != int64(UoTTable) {
				t.Fatalf("snap mark UoT = %d, want UoTTable", ev.UoT)
			}
		case trace.MarkUoTRaise:
			raiseMarks++
		}
	}
	if snapMarks == 0 {
		t.Fatal("no MarkUoTSnap trace mark emitted")
	}
	if raiseMarks != 0 {
		t.Fatalf("snap-only run emitted %d raise marks", raiseMarks)
	}
	if e := ctx.Run.EdgeUoTs()[0]; e.Snaps == 0 || e.Final != UoTTable {
		t.Fatalf("edge snapshot = %+v, want snapped to table", e)
	}
}

func TestAdaptivePressureRoutesThroughController(t *testing.T) {
	// The PR3 memory-pressure raise becomes one controller policy input: the
	// same sustained-pressure scenario as the legacy test must still raise,
	// now via Controller.Pressure, and still count as a UoTRaise.
	e := &emitN{rows: 8}
	plan := &Plan{}
	eid := plan.AddOp(&multiEmit{op: e, n: 40})
	e.self = eid
	c := &slowSink{}
	cid := plan.AddOp(c)
	plan.Pipe(eid, cid, 0, 0)
	ctx := newCtx(2)
	ctx.MemoryBudget = 1
	ctx.Adapt = uotctl.New(adaptCfg(2, 1))
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := c.rows; got != 40*8 {
		t.Fatalf("sink rows = %d, want %d", got, 40*8)
	}
	r := ctx.Run.Robust()
	if r.UoTRaises == 0 {
		t.Fatal("sustained memory pressure never raised the UoT through the controller")
	}
	es := ctx.Run.EdgeUoTs()[0]
	if es.Raises == 0 {
		t.Fatalf("edge snapshot recorded no raises: %+v", es)
	}
	if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
		t.Fatalf("run leaked blocks: %+v", r)
	}
}
