// Package core implements the paper's primary contribution: a Quickstep-style
// push scheduler for relational work orders in which the unit of transfer
// (UoT) between a producer and a consumer operator is an explicit parameter.
//
// A query is a DAG of operators connected by edges. Pipelined edges carry
// storage blocks and have a UoT value: the scheduler buffers the producer's
// output blocks per edge and hands them to the consumer only in groups of
// UoT blocks (partially filled blocks are handed over when the producer
// finishes, as in the paper). UoT = 1 block is what the literature calls
// "pipelining"; UoT = the whole intermediate table is "blocking"; everything
// in between is equally valid — the spectrum of Fig. 1. Blocking edges carry
// no blocks and only order operators (hash-table readiness, scalar-subquery
// values).
package core

import (
	"time"

	"repro/internal/cachesim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// UoTTable is the UoT value meaning "the entire intermediate table": the
// consumer sees no data until the producer operator has completely finished.
const UoTTable = int(^uint(0) >> 1) // max int

// OpID identifies an operator within a plan.
type OpID int

// ExecCtx carries the per-run execution environment into work orders.
type ExecCtx struct {
	// Pool is the global temporary-block pool (Section III-A).
	Pool *storage.Pool
	// Sim, if non-nil, is the memory-hierarchy model that work orders
	// charge with their access summaries.
	Sim *cachesim.Sim
	// Run collects statistics.
	Run *stats.Run
	// Scalars holds scalar-subquery results by slot; the scheduler fills a
	// slot when its providing operator finishes, strictly before any
	// operator gated on it starts.
	Scalars []types.Datum
	// TempBlockBytes and TempFormat describe temporary output blocks. The
	// paper uses the row-store format for temporaries regardless of the
	// base-table format (Section IV-B).
	TempBlockBytes int
	TempFormat     storage.Format
	// Workers is the number of worker threads (T in the model).
	Workers int
	// MemoryBudget, if positive, caps live temporary-block bytes softly:
	// while exceeded, the scheduler stops dispatching block-producing work
	// orders until in-flight consumers drain (a Section III-C scheduler
	// policy).
	MemoryBudget int64
}

// Output collects what one work-order execution produced: sealed full output
// blocks, simulated ticks, row counts, and hot-path contention counters
// (recorded into stats so cmd/uotbench can report lock traffic before/after
// batching changes).
type Output struct {
	Blocks  []*storage.Block
	Sim     int64
	RowsIn  int64
	RowsOut int64

	// ShardLocks counts hash-table shard-lock acquisitions performed by the
	// work order (the batch insert kernels take each shard lock once per
	// block instead of once per row).
	ShardLocks int64
	// BatchedRows counts rows that went through a block-granular batch
	// kernel (InsertBlock, AddMany, vectorized probe) rather than a
	// row-at-a-time reference path.
	BatchedRows int64
	// ScratchHits counts scratch-buffer pool hits: work orders that reused
	// a previous work order's buffers instead of allocating fresh ones.
	ScratchHits int64

	// AggPartials counts thread-local partial aggregation tables created by
	// the work order (free-list misses; the steady state reuses partials
	// across blocks, so totals approach the worker count).
	AggPartials int64
	// AggMergeFanout counts radix-partition merge work orders: the
	// parallelism of the aggregation merge that replaced the global-mutex
	// merge.
	AggMergeFanout int64
	// AggFastRows counts rows aggregated through the vectorized fixed-width
	// path; AggFallbackRows counts rows through the reference map path
	// (mixed-type keys, CountDistinct, char min/max).
	AggFastRows     int64
	AggFallbackRows int64
}

// WorkOrder is one schedulable unit of operator logic applied to specific
// inputs (Section III).
type WorkOrder interface {
	// Run executes the work order. It must be safe to run concurrently
	// with other work orders (of this and other operators).
	Run(ctx *ExecCtx, out *Output)
	// Inputs returns the intermediate blocks this work order consumes, for
	// reference-counted release; nil for base-table inputs.
	Inputs() []*storage.Block
}

// Operator is a relational operator node driven by the scheduler. All
// methods except work-order Run are invoked from the single scheduler
// goroutine, so implementations need no locking for their own state.
type Operator interface {
	// Name returns a short display name ("select(lineitem)").
	Name() string
	// NumInputs returns the number of pipelined input edges.
	NumInputs() int
	// Init prepares operator state (hash tables, accumulators).
	Init(ctx *ExecCtx)
	// Start is called once, when every blocking dependency of the operator
	// has resolved; leaf operators return their full set of work orders.
	Start(ctx *ExecCtx) []WorkOrder
	// Feed delivers a group of blocks (one UoT) on a pipelined input and
	// returns the work orders to process them.
	Feed(ctx *ExecCtx, input int, blocks []*storage.Block) []WorkOrder
	// Final is called once after all inputs are done and all previous work
	// orders completed; blocking operators (aggregation, sort) return
	// their finishing work orders.
	Final(ctx *ExecCtx) []WorkOrder
	// ScalarValue returns the operator's scalar result, if it provides one
	// (valid only after the operator is done).
	ScalarValue() (types.Datum, bool)
	// AdoptsInputs reports whether the operator takes ownership of fed
	// blocks (result collectors); adopted blocks are never recycled.
	AdoptsInputs() bool
	// Cleanup releases operator-owned resources; called when the operator
	// and all work orders are finished.
	Cleanup(ctx *ExecCtx)
}

// Base provides default implementations of the optional Operator methods.
type Base struct{}

// Init implements Operator.
func (Base) Init(*ExecCtx) {}

// Start implements Operator.
func (Base) Start(*ExecCtx) []WorkOrder { return nil }

// Feed implements Operator.
func (Base) Feed(*ExecCtx, int, []*storage.Block) []WorkOrder { return nil }

// Final implements Operator.
func (Base) Final(*ExecCtx) []WorkOrder { return nil }

// ScalarValue implements Operator.
func (Base) ScalarValue() (types.Datum, bool) { return types.Datum{}, false }

// AdoptsInputs implements Operator.
func (Base) AdoptsInputs() bool { return false }

// Cleanup implements Operator.
func (Base) Cleanup(*ExecCtx) {}

// EdgeKind distinguishes data-carrying from ordering-only edges.
type EdgeKind uint8

const (
	// Pipelined edges carry blocks, grouped by the UoT value.
	Pipelined EdgeKind = iota
	// Blocking edges carry no blocks; the consumer cannot start until the
	// producer operator is completely finished (build→probe readiness,
	// scalar parameters, LIP filter availability).
	Blocking
)

// Edge connects a producer operator to a consumer operator.
type Edge struct {
	From    OpID
	To      OpID
	ToInput int // pipelined input index at the consumer
	Kind    EdgeKind
	// UoT is the per-edge unit of transfer in blocks; 0 means "use the
	// run's default", UoTTable means the whole intermediate table.
	UoT int
}

// Plan is a DAG of operators. Operator IDs are indices into Ops.
type Plan struct {
	Ops   []Operator
	Edges []Edge
	// ScalarSlots maps scalar parameter slots to providing operators.
	ScalarSlots []OpID
	// MaxDOP, if non-zero for an operator ID, caps that operator's
	// concurrent work orders (a scheduler policy hook, Section III-C).
	MaxDOP map[OpID]int
}

// AddOp appends an operator and returns its ID.
func (p *Plan) AddOp(op Operator) OpID {
	p.Ops = append(p.Ops, op)
	return OpID(len(p.Ops) - 1)
}

// Pipe adds a pipelined edge from producer to consumer input toInput with a
// per-edge UoT override (0 = run default).
func (p *Plan) Pipe(from, to OpID, toInput, uot int) {
	p.Edges = append(p.Edges, Edge{From: from, To: to, ToInput: toInput, Kind: Pipelined, UoT: uot})
}

// Block adds a blocking (ordering-only) edge.
func (p *Plan) Block(from, to OpID) {
	p.Edges = append(p.Edges, Edge{From: from, To: to, Kind: Blocking})
}

// AddScalar registers op as the provider of a new scalar slot and returns
// the slot index.
func (p *Plan) AddScalar(op OpID) int {
	p.ScalarSlots = append(p.ScalarSlots, op)
	return len(p.ScalarSlots) - 1
}

// Emitter materializes an operator's output into temporary blocks via the
// pool, sealing full blocks into the work order's Output and checking
// partial blocks back in for the next work order of the same operator.
type Emitter struct {
	ctx    *ExecCtx
	out    *Output
	owner  int
	schema *storage.Schema
	cur    *storage.Block
}

// NewEmitter returns an emitter writing blocks of schema for operator owner.
func NewEmitter(ctx *ExecCtx, out *Output, owner OpID, schema *storage.Schema) *Emitter {
	return &Emitter{ctx: ctx, out: out, owner: int(owner), schema: schema}
}

func (e *Emitter) ensure() *storage.Block {
	if e.cur == nil {
		e.cur = e.ctx.Pool.CheckOut(e.owner, e.schema, e.ctx.TempFormat, e.ctx.TempBlockBytes)
		if e.ctx.Run != nil {
			e.ctx.Run.AddCheckout()
		}
	}
	return e.cur
}

func (e *Emitter) seal() {
	b := e.cur
	e.cur = nil
	e.out.Blocks = append(e.out.Blocks, b)
	if e.ctx.Sim != nil {
		e.out.Sim += e.ctx.Sim.Produced(b, int64(b.UsedBytes()))
	}
}

// AppendRow appends a materialized row, sealing and replacing full blocks.
func (e *Emitter) AppendRow(vals ...types.Datum) {
	if !e.ensure().AppendRow(vals...) {
		e.seal()
		e.ensure().AppendRow(vals...)
	}
	e.out.RowsOut++
}

// AppendFrom appends a projection of a source row (see Block.AppendFrom).
func (e *Emitter) AppendFrom(src *storage.Block, srcRow int, projIdx []int) {
	if !e.ensure().AppendFrom(src, srcRow, projIdx) {
		e.seal()
		e.ensure().AppendFrom(src, srcRow, projIdx)
	}
	e.out.RowsOut++
}

// AppendRaw appends a two-sided join row (see Block.AppendRaw).
func (e *Emitter) AppendRaw(l *storage.Block, lrow int, lproj []int, r *storage.Block, rrow int, rproj []int) {
	if !e.ensure().AppendRaw(l, lrow, lproj, r, rrow, rproj) {
		e.seal()
		e.ensure().AppendRaw(l, lrow, lproj, r, rrow, rproj)
	}
	e.out.RowsOut++
}

// Close checks the current partial block back into the pool. Must be called
// at the end of every work order that used the emitter.
func (e *Emitter) Close() {
	if e.cur == nil {
		return
	}
	if e.cur.NumRows() == 0 {
		e.ctx.Pool.Release(e.cur)
		e.cur = nil
		return
	}
	e.ctx.Pool.CheckIn(e.owner, e.cur)
	e.cur = nil
}

// now is indirected for tests.
var now = time.Now
