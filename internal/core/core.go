// Package core implements the paper's primary contribution: a Quickstep-style
// push scheduler for relational work orders in which the unit of transfer
// (UoT) between a producer and a consumer operator is an explicit parameter.
//
// A query is a DAG of operators connected by edges. Pipelined edges carry
// storage blocks and have a UoT value: the scheduler buffers the producer's
// output blocks per edge and hands them to the consumer only in groups of
// UoT blocks (partially filled blocks are handed over when the producer
// finishes, as in the paper). UoT = 1 block is what the literature calls
// "pipelining"; UoT = the whole intermediate table is "blocking"; everything
// in between is equally valid — the spectrum of Fig. 1. Blocking edges carry
// no blocks and only order operators (hash-table readiness, scalar-subquery
// values).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cachesim"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/uotctl"
)

// UoTTable is the UoT value meaning "the entire intermediate table": the
// consumer sees no data until the producer operator has completely finished.
const UoTTable = int(^uint(0) >> 1) // max int

// OpID identifies an operator within a plan.
type OpID int

// Task is one unit of work a run submits to a shared Executor: a closure the
// executor must run exactly once on one of its workers, labeled with the
// submitting query and its priority class so the executor can dispatch
// fairly across concurrent queries.
type Task struct {
	// Query identifies the submitting query (ExecCtx.Query).
	Query int
	// Priority is the query's priority class; higher runs first
	// (ExecCtx.Priority).
	Priority int
	// Run executes the work; worker is the executor worker index it landed
	// on (for worker-attributed tracing).
	Run func(worker int)
}

// Executor runs tasks on a worker pool shared across concurrent runs. When
// ExecCtx.Exec is set, the scheduler does not spawn its own workers: it
// submits each dispatched work order as a Task and ExecCtx.Workers becomes
// the run's in-flight cap (how many of its tasks may execute concurrently)
// instead of a goroutine count. The session layer's WorkerPool is the
// canonical implementation.
type Executor interface {
	// Submit enqueues the task; it must eventually run exactly once.
	// Submit may block briefly for queue admission but must not wait for
	// the task itself — the scheduler submits from its coordination
	// goroutine and relies on completions flowing back concurrently.
	Submit(t Task)
}

// ExecCtx carries the per-run execution environment into work orders.
type ExecCtx struct {
	// Pool is the global temporary-block pool (Section III-A).
	Pool *storage.Pool
	// Sim, if non-nil, is the memory-hierarchy model that work orders
	// charge with their access summaries.
	Sim *cachesim.Sim
	// Run collects statistics.
	Run *stats.Run
	// Scalars holds scalar-subquery results by slot; the scheduler fills a
	// slot when its providing operator finishes, strictly before any
	// operator gated on it starts.
	Scalars []types.Datum
	// TempBlockBytes and TempFormat describe temporary output blocks. The
	// paper uses the row-store format for temporaries regardless of the
	// base-table format (Section IV-B).
	TempBlockBytes int
	TempFormat     storage.Format
	// Workers is the number of worker threads (T in the model). With a
	// shared Executor attached it is the run's in-flight task cap instead
	// of a goroutine count (see Executor).
	Workers int
	// Exec, if non-nil, is a worker pool shared across concurrent runs: the
	// scheduler spawns no workers of its own and submits work orders as
	// Tasks. Nil keeps the single-query behavior (per-run goroutines).
	Exec Executor
	// Query identifies this run among concurrent runs sharing an Executor,
	// a storage pool, or a tracer; it labels submitted tasks and trace
	// events. 0 is a valid id (the single-query default).
	Query int
	// Priority is the run's dispatch priority class on a shared Executor;
	// higher is served first. Within a class the executor is fair.
	Priority int
	// TraceRun is the tracer section handle this run records into: 0 (the
	// default) means the tracer's current section — the single-query
	// behavior — and a positive handle (from Tracer.OpenRun) pins the run
	// to its own section so concurrent runs can share one tracer.
	TraceRun int32
	// MemoryBudget, if positive, caps live temporary-block bytes softly:
	// while exceeded, the scheduler stops dispatching block-producing work
	// orders until in-flight consumers drain (a Section III-C scheduler
	// policy). Under sustained pressure the scheduler raises the UoT on the
	// held producer's out-edges instead of stalling indefinitely.
	MemoryBudget int64

	// Trace, if non-nil, receives work-order span events, per-edge gauge
	// samples, and scheduler annotations (see internal/trace). A nil tracer
	// is fully disabled: every recording call is a nil-check no-op and the
	// scheduler takes no timestamps beyond what it already takes.
	Trace *trace.Tracer

	// Adapt, if non-nil, is the per-edge adaptive UoT controller: the
	// scheduler registers every pipelined edge, seeds undeclared edges with
	// the controller's model prior, observes each edge at delivery
	// boundaries, and routes the memory-pressure degradation through
	// Controller.Pressure so the PR3 raise is one policy input rather than
	// a separate code path. Nil keeps the static UoT behavior bit-exact
	// (and timestamp-free when tracing is also off).
	Adapt *uotctl.Controller

	// Ctx, if non-nil, cancels the whole run: the scheduler stops
	// dispatching, drops queued work orders, and emitters abort in-flight
	// work orders at block-materialization boundaries.
	Ctx context.Context
	// Faults, if non-nil, is the deterministic fault injector operators
	// consult at named sites (see internal/faults).
	Faults *faults.Injector
	// MaxAttempts bounds executions of one work order: after a transient
	// failure the scheduler rolls the attempt back and re-dispatches until
	// the work order succeeded or ran MaxAttempts times. 0 or 1 disables
	// retry.
	MaxAttempts int
	// RetryBackoff is the delay before the first re-dispatch of a failed
	// work order; it doubles per attempt. Default 1ms when retry is on.
	RetryBackoff time.Duration
	// WODeadline, if positive, bounds each work-order attempt. Enforcement
	// is cooperative: emitters check the deadline at block-materialization
	// boundaries and abort the attempt (a transient, retryable failure);
	// attempts that overrun but complete are recorded as deadline hits and
	// their results kept.
	WODeadline time.Duration
}

// Canceled returns the run-level cancellation error, if the context was
// canceled, else nil.
func (c *ExecCtx) Canceled() error {
	if c.Ctx == nil {
		return nil
	}
	select {
	case <-c.Ctx.Done():
		return c.Ctx.Err()
	default:
		return nil
	}
}

// FaultAt consults the fault injector at a named site; nil without an
// injector. Call it strictly before mutating shared operator state, so a
// failed attempt can be re-dispatched without rollback of that state.
func (c *ExecCtx) FaultAt(site faults.Site) error {
	if c.Faults == nil {
		return nil
	}
	return c.Faults.At(site)
}

// Output collects what one work-order execution produced: sealed full output
// blocks, simulated ticks, row counts, and hot-path contention counters
// (recorded into stats so cmd/uotbench can report lock traffic before/after
// batching changes).
type Output struct {
	Blocks  []*storage.Block
	Sim     int64
	RowsIn  int64
	RowsOut int64

	// ShardLocks counts hash-table shard-lock acquisitions performed by the
	// work order (the batch insert kernels take each shard lock once per
	// block instead of once per row).
	ShardLocks int64
	// BatchedRows counts rows that went through a block-granular batch
	// kernel (InsertBlock, AddMany, vectorized probe) rather than a
	// row-at-a-time reference path.
	BatchedRows int64
	// ScratchHits counts scratch-buffer pool hits: work orders that reused
	// a previous work order's buffers instead of allocating fresh ones.
	ScratchHits int64

	// AggPartials counts thread-local partial aggregation tables created by
	// the work order (free-list misses; the steady state reuses partials
	// across blocks, so totals approach the worker count).
	AggPartials int64
	// AggMergeFanout counts radix-partition merge work orders: the
	// parallelism of the aggregation merge that replaced the global-mutex
	// merge.
	AggMergeFanout int64
	// AggFastRows counts rows aggregated through the vectorized fixed-width
	// path; AggFallbackRows counts rows through the reference map path
	// (mixed-type keys, CountDistinct, char min/max).
	AggFastRows     int64
	AggFallbackRows int64

	// SortRuns counts sorted runs produced by run-generation work orders
	// (one per fed block on the sort fast path).
	SortRuns int64
	// SortMergeFanout counts range-partitioned merge work orders: the
	// parallelism of the k-way merge that replaced the single blocking sort.
	SortMergeFanout int64
	// SortFastRows counts rows sorted through the normalized-key path;
	// SortFallbackRows counts rows through the reference Datum-comparator
	// path (non-column keys, forced reference, demotion).
	SortFastRows     int64
	SortFallbackRows int64
	// TopKPruned counts rows discarded by the bounded top-k heap without
	// ever being materialized into a run (ORDER BY ... LIMIT pruning).
	TopKPruned int64

	// ExchangeRows counts rows scattered by exchange repartition work
	// orders into partition-local output streams.
	ExchangeRows int64
	// RepartitionFanout counts distinct partition streams the work order
	// scattered into (the realized fan-out of the exchange).
	RepartitionFanout int64
	// PartitionSkew counts skew-guard trips: exchanges where one partition
	// received more than half of all scattered rows.
	PartitionSkew int64

	// Demotions counts fast-path → reference-path demotions this work order
	// triggered (at most one per operator per run).
	Demotions int64

	// partTags maps sealed blocks to the output partition that produced
	// them (set by partition emitters). Blocks absent from the map are
	// unpartitioned and routed to every pipelined out-edge; tagged blocks
	// are routed only to edges carrying their partition.
	partTags map[*storage.Block]int

	// emitters registers every Emitter the work order created, so Finish
	// can close them on success or roll their blocks back on failure.
	emitters []*Emitter
	// deadline, if nonzero, is when the current attempt times out; set by
	// the worker from ExecCtx.WODeadline and checked at emitter
	// block-materialization boundaries.
	deadline time.Time
}

// Finish completes one work-order attempt's materialization and must be
// called exactly once after Run, with Run's error. On success every emitter
// checks its partial block into the pool (what Emitter.Close used to do at
// the end of each work order); on failure every block the attempt touched is
// rolled back — fresh blocks are released, resumed partials truncated to
// their pre-attempt row count — and the output cleared, so a retry (or a
// concurrent work order of the same operator) never observes the failed
// attempt's rows. The scheduler calls Finish from the worker goroutine; code
// that runs work orders by hand (tests, benchmarks) must call it too.
func (o *Output) Finish(err error) {
	for _, e := range o.emitters {
		if err != nil {
			e.rollback()
		} else {
			e.Close()
		}
	}
	o.emitters = nil
	if err != nil {
		o.Blocks = nil
		o.partTags = nil
		o.RowsIn = 0
		o.RowsOut = 0
	}
}

// TagPartition marks a sealed output block as belonging to partition part,
// so the scheduler routes it only onto matching partitioned out-edges.
func (o *Output) TagPartition(b *storage.Block, part int) {
	if o.partTags == nil {
		o.partTags = make(map[*storage.Block]int)
	}
	o.partTags[b] = part
}

// PartitionTag returns the partition tag of a block (-1 if untagged).
func (o *Output) PartitionTag(b *storage.Block) int {
	if p, ok := o.partTags[b]; ok {
		return p
	}
	return -1
}

// WorkOrder is one schedulable unit of operator logic applied to specific
// inputs (Section III).
type WorkOrder interface {
	// Run executes the work order. It must be safe to run concurrently
	// with other work orders (of this and other operators). A returned
	// error fails the attempt; errors classified transient (see
	// IsTransient) are rolled back and retried up to ExecCtx.MaxAttempts.
	// The retry contract: a work order must not mutate shared operator
	// state before a point where it can still fail transiently —
	// fault-injection sites fire first, and emitter output is rolled back
	// by Output.Finish.
	Run(ctx *ExecCtx, out *Output) error
	// Inputs returns the intermediate blocks this work order consumes, for
	// reference-counted release; nil for base-table inputs. Inputs are
	// released only when the work order succeeds (or the run aborts), so a
	// retried attempt re-reads them.
	Inputs() []*storage.Block
}

// Operator is a relational operator node driven by the scheduler. All
// methods except work-order Run are invoked from the single scheduler
// goroutine, so implementations need no locking for their own state.
type Operator interface {
	// Name returns a short display name ("select(lineitem)").
	Name() string
	// NumInputs returns the number of pipelined input edges.
	NumInputs() int
	// Init prepares operator state (hash tables, accumulators).
	Init(ctx *ExecCtx)
	// Start is called once, when every blocking dependency of the operator
	// has resolved; leaf operators return their full set of work orders.
	Start(ctx *ExecCtx) []WorkOrder
	// Feed delivers a group of blocks (one UoT) on a pipelined input and
	// returns the work orders to process them.
	Feed(ctx *ExecCtx, input int, blocks []*storage.Block) []WorkOrder
	// Final is called once after all inputs are done and all previous work
	// orders completed; blocking operators (aggregation, sort) return
	// their finishing work orders.
	Final(ctx *ExecCtx) []WorkOrder
	// ScalarValue returns the operator's scalar result, if it provides one
	// (valid only after the operator is done).
	ScalarValue() (types.Datum, bool)
	// AdoptsInputs reports whether the operator takes ownership of fed
	// blocks (result collectors); adopted blocks are never recycled.
	AdoptsInputs() bool
	// Cleanup releases operator-owned resources; called when the operator
	// and all work orders are finished.
	Cleanup(ctx *ExecCtx)
}

// Base provides default implementations of the optional Operator methods.
type Base struct{}

// Init implements Operator.
func (Base) Init(*ExecCtx) {}

// Start implements Operator.
func (Base) Start(*ExecCtx) []WorkOrder { return nil }

// Feed implements Operator.
func (Base) Feed(*ExecCtx, int, []*storage.Block) []WorkOrder { return nil }

// Final implements Operator.
func (Base) Final(*ExecCtx) []WorkOrder { return nil }

// ScalarValue implements Operator.
func (Base) ScalarValue() (types.Datum, bool) { return types.Datum{}, false }

// AdoptsInputs implements Operator.
func (Base) AdoptsInputs() bool { return false }

// Cleanup implements Operator.
func (Base) Cleanup(*ExecCtx) {}

// StagedOperator is an optional Operator extension for operators whose
// finishing work splits into sequential waves after Final — e.g. the
// parallel sort, whose range-partitioned merge work orders (from Final) must
// all complete before a single emit work order hands the partitions to the
// out-edges in order. Without staging, block routing happens at work-order
// completion in completion order, which would scramble ordered output.
type StagedOperator interface {
	Operator
	// NextStage is called on the scheduler goroutine each time the operator
	// quiesces after Final (all issued work orders done). Returning a
	// non-empty wave enqueues it and calls NextStage again with the next
	// stage index once the wave completes; returning an empty non-nil slice
	// skips to the next stage immediately; returning nil finishes the
	// operator.
	NextStage(ctx *ExecCtx, stage int) []WorkOrder
	// AbandonStages surrenders blocks the operator materialized for a later
	// stage that will never run (failed or canceled query). The scheduler
	// releases them during cleanup; after a successful emit the operator
	// must return nil, since ownership moved to the out-edges.
	AbandonStages() []*storage.Block
}

// AdoptingOperator is an optional extension for operators that adopt fed
// blocks (AdoptsInputs() == true, e.g. the result collector). On an aborted
// run the scheduler asks for the adopted blocks back so cleanup can release
// them — a partial result is meaningless, and under a shared pool every block
// of a failed query must return to the global accounting. Successful runs
// are never asked; adopted blocks then belong to whoever reads the result.
type AdoptingOperator interface {
	Operator
	// AbandonAdopted surrenders every block adopted so far and resets the
	// operator's sink state.
	AbandonAdopted() []*storage.Block
}

// PartitionedOutput is an optional Operator extension for operators that
// scatter their output across partition-tagged out-edges (the exchange
// operator). The scheduler drains each partition's pending partial block —
// pooled under PartOwner(id, p) — when the operator finishes, tagging it so
// it reaches only that partition's consumers.
type PartitionedOutput interface {
	Operator
	// OutputPartitions returns the partition count P; the operator's
	// partial blocks are pooled under PartOwner(id, 0..P-1) and its sealed
	// blocks tagged with partitions 0..P-1.
	OutputPartitions() int
}

// MaxPartitions bounds an exchange's fan-out; it sizes the PartOwner key
// space, far above any cost-model choice (which caps at the worker count).
const MaxPartitions = 1 << 10

// PartOwner returns the pool owner key for partition part of operator op.
// Keys are negative, so they can never collide with plain operator IDs
// (which are non-negative plan indices) pooling unpartitioned partials.
func PartOwner(op OpID, part int) int {
	return -1 - int(op)*MaxPartitions - part
}

// EdgeKind distinguishes data-carrying from ordering-only edges.
type EdgeKind uint8

const (
	// Pipelined edges carry blocks, grouped by the UoT value.
	Pipelined EdgeKind = iota
	// Blocking edges carry no blocks; the consumer cannot start until the
	// producer operator is completely finished (build→probe readiness,
	// scalar parameters, LIP filter availability).
	Blocking
)

// Edge connects a producer operator to a consumer operator.
type Edge struct {
	From    OpID
	To      OpID
	ToInput int // pipelined input index at the consumer
	Kind    EdgeKind
	// UoT is the per-edge unit of transfer in blocks; 0 means "use the
	// run's default", UoTTable means the whole intermediate table.
	UoT int
	// part is the edge's partition selector stored as partition+1, so the
	// zero value keeps plain edges unpartitioned. Set via PipePart, read
	// via Partition.
	part int
}

// Partition returns the edge's partition selector: -1 for an ordinary edge
// that receives every block, p >= 0 for a partitioned edge that receives
// only blocks tagged with partition p.
func (e Edge) Partition() int { return e.part - 1 }

// Plan is a DAG of operators. Operator IDs are indices into Ops.
type Plan struct {
	Ops   []Operator
	Edges []Edge
	// ScalarSlots maps scalar parameter slots to providing operators.
	ScalarSlots []OpID
	// MaxDOP, if non-zero for an operator ID, caps that operator's
	// concurrent work orders (a scheduler policy hook, Section III-C).
	MaxDOP map[OpID]int
}

// AddOp appends an operator and returns its ID.
func (p *Plan) AddOp(op Operator) OpID {
	p.Ops = append(p.Ops, op)
	return OpID(len(p.Ops) - 1)
}

// Pipe adds a pipelined edge from producer to consumer input toInput with a
// per-edge UoT override (0 = run default).
func (p *Plan) Pipe(from, to OpID, toInput, uot int) {
	p.Edges = append(p.Edges, Edge{From: from, To: to, ToInput: toInput, Kind: Pipelined, UoT: uot})
}

// PipePart adds a partitioned pipelined edge: it behaves like Pipe, but the
// consumer receives only producer blocks tagged with partition part. Every
// partitioned edge is UoT-policed independently, so each partition stream is
// its own operating point on the pipelining/blocking spectrum.
func (p *Plan) PipePart(from, to OpID, toInput, uot, part int) {
	p.Edges = append(p.Edges, Edge{
		From: from, To: to, ToInput: toInput, Kind: Pipelined, UoT: uot, part: part + 1,
	})
}

// Block adds a blocking (ordering-only) edge.
func (p *Plan) Block(from, to OpID) {
	p.Edges = append(p.Edges, Edge{From: from, To: to, Kind: Blocking})
}

// AddScalar registers op as the provider of a new scalar slot and returns
// the slot index.
func (p *Plan) AddScalar(op OpID) int {
	p.ScalarSlots = append(p.ScalarSlots, op)
	return len(p.ScalarSlots) - 1
}

// Emitter materializes an operator's output into temporary blocks via the
// pool, sealing full blocks into the work order's Output and checking
// partial blocks back in for the next work order of the same operator.
//
// The emitter tracks what the current attempt acquired — the row count of
// the resumed block at checkout, plus every block it sealed — so a failed
// attempt can be rolled back block-exactly (see Output.Finish). It is also
// the work order's cooperative interruption point: each block checkout
// observes run cancellation, the per-attempt deadline, and the
// block-materialize fault site.
type Emitter struct {
	ctx     *ExecCtx
	out     *Output
	owner   int
	part    int // output partition tag; -1 for unpartitioned emitters
	schema  *storage.Schema
	cur     *storage.Block
	curBase int // rows already in cur when it was checked out
	sealed  []sealedBlock
}

// sealedBlock remembers a block sealed by this attempt and how many rows it
// held before the attempt appended to it (nonzero when a resumed partial
// filled up and sealed).
type sealedBlock struct {
	b    *storage.Block
	base int
}

// NewEmitter returns an emitter writing blocks of schema for operator owner,
// registered in out for end-of-attempt finish/rollback.
func NewEmitter(ctx *ExecCtx, out *Output, owner OpID, schema *storage.Schema) *Emitter {
	e := &Emitter{ctx: ctx, out: out, owner: int(owner), part: -1, schema: schema}
	out.emitters = append(out.emitters, e)
	return e
}

// NewPartEmitter returns an emitter for one output partition of an exchange:
// sealed blocks carry the partition tag (routing them only onto matching
// partitioned edges) and partial blocks pool under PartOwner(owner, part), so
// concurrent scatter work orders resume each partition's tail block without
// ever mixing partitions.
func NewPartEmitter(ctx *ExecCtx, out *Output, owner OpID, part int, schema *storage.Schema) *Emitter {
	e := &Emitter{ctx: ctx, out: out, owner: PartOwner(owner, part), part: part, schema: schema}
	out.emitters = append(out.emitters, e)
	return e
}

func (e *Emitter) ensure() *storage.Block {
	if e.cur == nil {
		e.interrupt()
		e.cur = e.ctx.Pool.CheckOut(e.owner, e.schema, e.ctx.TempFormat, e.ctx.TempBlockBytes)
		e.curBase = e.cur.NumRows()
		if e.ctx.Run != nil {
			e.ctx.Run.AddCheckout()
		}
	}
	return e.cur
}

// interrupt aborts the work order at a block-materialization boundary when
// the run is canceled, the attempt's deadline has passed, or the injector
// fires at the block-materialize site. It unwinds through operator code via
// a typed panic that runSafely converts back into the underlying error; the
// attempt's blocks are then rolled back by Output.Finish.
func (e *Emitter) interrupt() {
	if err := e.ctx.Canceled(); err != nil {
		panic(&woAbort{err})
	}
	if !e.out.deadline.IsZero() && now().After(e.out.deadline) {
		panic(&woAbort{&DeadlineError{Limit: e.ctx.WODeadline}})
	}
	if err := e.ctx.FaultAt(faults.BlockMaterialize); err != nil {
		panic(&woAbort{err})
	}
}

func (e *Emitter) seal() {
	b := e.cur
	e.sealed = append(e.sealed, sealedBlock{b: b, base: e.curBase})
	e.cur, e.curBase = nil, 0
	e.out.Blocks = append(e.out.Blocks, b)
	if e.part >= 0 {
		e.out.TagPartition(b, e.part)
	}
	if e.ctx.Sim != nil {
		e.out.Sim += e.ctx.Sim.Produced(b, int64(b.UsedBytes()))
	}
}

// AppendRow appends a materialized row, sealing and replacing full blocks.
func (e *Emitter) AppendRow(vals ...types.Datum) {
	if !e.ensure().AppendRow(vals...) {
		e.seal()
		e.ensure().AppendRow(vals...)
	}
	e.out.RowsOut++
}

// AppendFrom appends a projection of a source row (see Block.AppendFrom).
func (e *Emitter) AppendFrom(src *storage.Block, srcRow int, projIdx []int) {
	if !e.ensure().AppendFrom(src, srcRow, projIdx) {
		e.seal()
		e.ensure().AppendFrom(src, srcRow, projIdx)
	}
	e.out.RowsOut++
}

// AppendMany bulk-appends the projection projIdx of the given src rows,
// sealing and replacing full blocks (the exchange scatter kernel's path; see
// Block.AppendFromMany for the projection contract).
func (e *Emitter) AppendMany(src *storage.Block, rows []int32, projIdx []int) {
	for len(rows) > 0 {
		took := e.ensure().AppendFromMany(src, rows, projIdx)
		if took == 0 {
			e.seal()
			continue
		}
		rows = rows[took:]
		e.out.RowsOut += int64(took)
	}
}

// AppendRaw appends a two-sided join row (see Block.AppendRaw).
func (e *Emitter) AppendRaw(l *storage.Block, lrow int, lproj []int, r *storage.Block, rrow int, rproj []int) {
	if !e.ensure().AppendRaw(l, lrow, lproj, r, rrow, rproj) {
		e.seal()
		e.ensure().AppendRaw(l, lrow, lproj, r, rrow, rproj)
	}
	e.out.RowsOut++
}

// Close checks the current partial block back into the pool. Called by
// Output.Finish at the end of every successful work-order attempt (operator
// code no longer calls it directly, so that a failed attempt rolls back
// instead of checking a poisoned partial into the shared pool).
func (e *Emitter) Close() {
	e.sealed = nil
	if e.cur == nil {
		return
	}
	if e.cur.NumRows() == 0 {
		e.ctx.Pool.Release(e.cur)
		e.cur, e.curBase = nil, 0
		return
	}
	e.ctx.Pool.CheckIn(e.owner, e.cur)
	e.cur, e.curBase = nil, 0
}

// rollback undoes the attempt's materialization: blocks the attempt checked
// out fresh go back to the pool empty, resumed partials are truncated to
// their pre-attempt row count and checked back in. It runs in the worker
// goroutine before the result is reported, so neither a retry nor a
// concurrent work order of the same operator can resume a block holding the
// failed attempt's rows.
func (e *Emitter) rollback() {
	if e.cur != nil {
		e.undo(e.cur, e.curBase)
		e.cur, e.curBase = nil, 0
	}
	for _, s := range e.sealed {
		e.undo(s.b, s.base)
	}
	e.sealed = nil
}

func (e *Emitter) undo(b *storage.Block, base int) {
	b.Truncate(base)
	if base > 0 {
		e.ctx.Pool.CheckIn(e.owner, b)
	} else {
		e.ctx.Pool.Release(b)
	}
}

// woAbort carries an abort error from deep kernel code with no error return
// path (emitter interruption points) up to runSafely, which unwraps it
// without treating it as a programming-error panic.
type woAbort struct{ err error }

// DeadlineError reports a work-order attempt that exceeded
// ExecCtx.WODeadline. It is transient: the scheduler rolls the attempt back
// and retries it.
type DeadlineError struct {
	Limit   time.Duration
	Elapsed time.Duration // 0 when detected mid-run at an interruption point
}

// Error implements error.
func (e *DeadlineError) Error() string {
	if e.Elapsed > 0 {
		return fmt.Sprintf("core: work order exceeded deadline %v (ran %v)", e.Limit, e.Elapsed)
	}
	return fmt.Sprintf("core: work order exceeded deadline %v", e.Limit)
}

// Transient marks deadline misses retryable.
func (e *DeadlineError) Transient() bool { return true }

// Is maps work-order deadline misses onto the typed taxonomy: a run that
// fails because an attempt exhausted its retry budget on deadline misses
// matches ErrDeadlineExceeded.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadlineExceeded }

// PanicError is a recovered work-order panic with the goroutine stack
// captured at the panic site (satisfying the "panics must be diagnosable"
// requirement: the stack is attached, not lost).
type PanicError struct {
	Val   any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: work order panicked: %v\n%s", e.Val, e.Stack)
}

// Unwrap exposes a panic value that was itself an error (an injected
// KindPanic fault unwraps to its *faults.Fault, keeping it transient).
func (e *PanicError) Unwrap() error {
	err, _ := e.Val.(error)
	return err
}

// IsTransient reports whether err is safe to retry: some error in its chain
// implements Transient() true. Injected faults and deadline misses are
// transient; programming-error panics and context cancellation are not.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// now is indirected for tests.
var now = time.Now
