package core

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func TestEmitterSealsFullBlocksAndChecksInPartials(t *testing.T) {
	ctx := newCtx(1)
	ctx.TempBlockBytes = 32 // 4 rows of the 8-byte test schema
	out := &Output{}
	em := NewEmitter(ctx, out, 7, testSchema)
	for i := 0; i < 10; i++ {
		em.AppendRow(types.NewInt64(int64(i)))
	}
	em.Close()

	// 10 rows at 4 rows/block: 2 sealed blocks + 1 partial (2 rows).
	if len(out.Blocks) != 2 {
		t.Fatalf("sealed blocks = %d", len(out.Blocks))
	}
	if out.RowsOut != 10 {
		t.Fatalf("rows out = %d", out.RowsOut)
	}
	parts := ctx.Pool.TakePartials(7)
	if len(parts) != 1 || parts[0].NumRows() != 2 {
		t.Fatalf("partials = %v", parts)
	}
	// All values preserved, in order.
	var got []int64
	for _, b := range append(out.Blocks, parts...) {
		for r := 0; r < b.NumRows(); r++ {
			got = append(got, b.Int64At(0, r))
		}
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}

func TestEmitterResumesPartialAcrossWorkOrders(t *testing.T) {
	ctx := newCtx(1)
	ctx.TempBlockBytes = 64 // 8 rows
	out1 := &Output{}
	em1 := NewEmitter(ctx, out1, 9, testSchema)
	for i := 0; i < 3; i++ {
		em1.AppendRow(types.NewInt64(int64(i)))
	}
	em1.Close() // 3-row partial checked in

	out2 := &Output{}
	em2 := NewEmitter(ctx, out2, 9, testSchema)
	for i := 3; i < 8; i++ {
		em2.AppendRow(types.NewInt64(int64(i)))
	}
	em2.Close()

	// The second emitter must have resumed the first's partial: 8 rows fill
	// exactly one block... which seals only on the next append, so it is a
	// full partial.
	if len(out1.Blocks) != 0 || len(out2.Blocks) != 0 {
		t.Fatalf("unexpected seals: %d, %d", len(out1.Blocks), len(out2.Blocks))
	}
	parts := ctx.Pool.TakePartials(9)
	if len(parts) != 1 || parts[0].NumRows() != 8 {
		t.Fatalf("partials = %d blocks", len(parts))
	}
}

func TestEmitterCloseWithNoRowsReleasesBlock(t *testing.T) {
	ctx := newCtx(1)
	out := &Output{}
	em := NewEmitter(ctx, out, 3, testSchema)
	// Force a checkout without writing: ensure() is internal, so append
	// then reset the case by using a fresh emitter and closing immediately.
	em.Close() // never wrote: no checkout, nothing to release
	if len(ctx.Pool.TakePartials(3)) != 0 {
		t.Fatal("no partials expected")
	}
	if ctx.Run.Checkouts() != 0 {
		t.Fatalf("checkouts = %d", ctx.Run.Checkouts())
	}
}

func TestEmitterAppendVariantsRoundTrip(t *testing.T) {
	twoCol := storage.NewSchema(
		storage.Column{Name: "a", Type: types.Int64},
		storage.Column{Name: "b", Type: types.Int64},
	)
	src := storage.NewBlock(twoCol, storage.ColumnStore, 256)
	src.AppendRow(types.NewInt64(1), types.NewInt64(2))

	ctx := newCtx(1)
	ctx.TempBlockBytes = 1 << 10
	out := &Output{}
	em := NewEmitter(ctx, out, 5, twoCol)
	em.AppendFrom(src, 0, []int{0, 1})
	em.AppendRaw(src, 0, []int{1}, src, 0, []int{0})
	em.Close()
	parts := ctx.Pool.TakePartials(5)
	if len(parts) != 1 || parts[0].NumRows() != 2 {
		t.Fatalf("partials = %v", parts)
	}
	b := parts[0]
	if b.Int64At(0, 0) != 1 || b.Int64At(1, 0) != 2 {
		t.Fatal("AppendFrom row wrong")
	}
	if b.Int64At(0, 1) != 2 || b.Int64At(1, 1) != 1 {
		t.Fatal("AppendRaw row wrong")
	}
	if out.RowsOut != 2 {
		t.Fatalf("rows out = %d", out.RowsOut)
	}
}
