package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

// stagedSrc exercises the StagedOperator protocol: Final fans out one work
// order per partition, each checking a pool block out and parking it on the
// operator; stage 0 hands the parked blocks to the out-edges in partition
// order in a single emit work order (stage 1 ends the stages). With failEmit
// the emit work order fails fatally, leaving the parked blocks reachable only
// through AbandonStages.
type stagedSrc struct {
	Base
	self     OpID
	parts    int
	failEmit bool

	mu     sync.Mutex
	parked []*storage.Block
	stages []int // NextStage invocations observed, in order
}

func (s *stagedSrc) Name() string   { return "staged" }
func (s *stagedSrc) NumInputs() int { return 0 }

func (s *stagedSrc) Final(*ExecCtx) []WorkOrder {
	s.parked = make([]*storage.Block, s.parts)
	wos := make([]WorkOrder, s.parts)
	for p := 0; p < s.parts; p++ {
		wos[p] = &stagedPartWO{s: s, part: p}
	}
	return wos
}

func (s *stagedSrc) NextStage(_ *ExecCtx, stage int) []WorkOrder {
	s.mu.Lock()
	s.stages = append(s.stages, stage)
	done := s.parked == nil
	s.mu.Unlock()
	if stage > 0 || done {
		return nil
	}
	return []WorkOrder{&stagedEmitWO{s: s}}
}

func (s *stagedSrc) AbandonStages() []*storage.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bs []*storage.Block
	for _, b := range s.parked {
		if b != nil {
			bs = append(bs, b)
		}
	}
	s.parked = nil
	return bs
}

type stagedPartWO struct {
	s    *stagedSrc
	part int
}

func (w *stagedPartWO) Inputs() []*storage.Block { return nil }

func (w *stagedPartWO) Run(ctx *ExecCtx, _ *Output) error {
	b := ctx.Pool.CheckOut(int(w.s.self), testSchema, ctx.TempFormat, ctx.TempBlockBytes)
	b.AppendRow(types.NewInt64(int64(w.part)))
	w.s.mu.Lock()
	w.s.parked[w.part] = b
	w.s.mu.Unlock()
	return nil
}

type stagedEmitWO struct{ s *stagedSrc }

func (w *stagedEmitWO) Inputs() []*storage.Block { return nil }

func (w *stagedEmitWO) Run(_ *ExecCtx, out *Output) error {
	if w.s.failEmit {
		return errors.New("emit exploded")
	}
	w.s.mu.Lock()
	for _, b := range w.s.parked {
		out.Blocks = append(out.Blocks, b)
		out.RowsOut += int64(b.NumRows())
	}
	w.s.parked = nil
	w.s.mu.Unlock()
	return nil
}

// orderSink records row values in Feed (scheduler) order and releases the
// blocks through a per-batch work order.
type orderSink struct {
	Base
	mu   sync.Mutex
	vals []int64
}

func (c *orderSink) Name() string   { return "ordersink" }
func (c *orderSink) NumInputs() int { return 1 }

func (c *orderSink) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	c.mu.Lock()
	for _, b := range blocks {
		for r := 0; r < b.NumRows(); r++ {
			c.vals = append(c.vals, b.Row(r)[0].I)
		}
	}
	c.mu.Unlock()
	return []WorkOrder{&releaseWO{blocks: blocks}}
}

type releaseWO struct{ blocks []*storage.Block }

func (w *releaseWO) Inputs() []*storage.Block { return w.blocks }
func (w *releaseWO) Run(*ExecCtx, *Output) error {
	return nil
}

func TestStagedOperatorEmitsAfterAllPartitions(t *testing.T) {
	src := &stagedSrc{parts: 6}
	sink := &orderSink{}
	plan := &Plan{}
	src.self = plan.AddOp(src)
	cid := plan.AddOp(sink)
	plan.Pipe(src.self, cid, 0, 1)
	ctx := newCtx(4)
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// The emit stage runs only after every partition work order completed,
	// and hands the blocks over in partition order — regardless of the order
	// the parallel partition work orders finished in.
	want := []int64{0, 1, 2, 3, 4, 5}
	if len(sink.vals) != len(want) {
		t.Fatalf("sink rows = %v, want %v", sink.vals, want)
	}
	for i, v := range want {
		if sink.vals[i] != v {
			t.Fatalf("sink rows = %v, want %v", sink.vals, want)
		}
	}
	if len(src.stages) != 2 || src.stages[0] != 0 || src.stages[1] != 1 {
		t.Fatalf("NextStage calls = %v, want [0 1]", src.stages)
	}
	r := ctx.Run.Robust()
	if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
		t.Fatalf("staged run leaked blocks: %+v", r)
	}
}

func TestStagedOperatorAbandonedBlocksReleasedOnFailure(t *testing.T) {
	src := &stagedSrc{parts: 4, failEmit: true}
	sink := &orderSink{}
	plan := &Plan{}
	src.self = plan.AddOp(src)
	cid := plan.AddOp(sink)
	plan.Pipe(src.self, cid, 0, 1)
	ctx := newCtx(2)
	if err := Run(plan, ctx, 1); err == nil {
		t.Fatal("run succeeded, want emit failure")
	}
	if len(sink.vals) != 0 {
		t.Fatalf("sink received %v from a failed run", sink.vals)
	}
	// The partition blocks lived only on the operator; cleanup must reclaim
	// them through AbandonStages.
	r := ctx.Run.Robust()
	if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
		t.Fatalf("abandoned stage blocks leaked: %+v", r)
	}
}
