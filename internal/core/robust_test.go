package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/types"
)

// transientErr is a minimal retryable error for scheduler tests.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// flaky emits one block of rows via a work order that fails its first failN
// attempts with a transient error before succeeding.
type flaky struct {
	Base
	failN int
	fatal error // if set, returned instead of the transient error
	runs  atomic.Int32
	rows  int
}

func (f *flaky) Name() string   { return "flaky" }
func (f *flaky) NumInputs() int { return 0 }

func (f *flaky) Start(*ExecCtx) []WorkOrder {
	return []WorkOrder{&flakyWO{f: f}}
}

type flakyWO struct{ f *flaky }

func (w *flakyWO) Inputs() []*storage.Block { return nil }

func (w *flakyWO) Run(_ *ExecCtx, out *Output) error {
	n := int(w.f.runs.Add(1))
	if n <= w.f.failN {
		if w.f.fatal != nil {
			return w.f.fatal
		}
		return &transientErr{"flaky failure"}
	}
	b := storage.NewBlock(testSchema, storage.RowStore, w.f.rows*8)
	for r := 0; r < w.f.rows; r++ {
		b.AppendRow(types.NewInt64(int64(r)))
	}
	out.Blocks = append(out.Blocks, b)
	return nil
}

func TestTransientFailureRetriesUntilSuccess(t *testing.T) {
	f := &flaky{failN: 3, rows: 5}
	c := &consumer{}
	plan := &Plan{}
	fid := plan.AddOp(f)
	cid := plan.AddOp(c)
	plan.Pipe(fid, cid, 0, 1)
	ctx := newCtx(2)
	ctx.MaxAttempts = 5
	ctx.RetryBackoff = time.Microsecond
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatalf("run failed despite retries: %v", err)
	}
	if c.rows != 5 {
		t.Fatalf("consumer rows = %d, want 5 (exactly one successful delivery)", c.rows)
	}
	r := ctx.Run.Robust()
	if r.Retries != 3 || r.FailedAttempts != 3 {
		t.Fatalf("retries=%d failedAttempts=%d, want 3/3", r.Retries, r.FailedAttempts)
	}
	per := ctx.Run.Op(int(fid))
	if per.Count != 4 || per.FailedAttempts != 3 {
		t.Fatalf("flaky op totals: count=%d failed=%d, want 4/3", per.Count, per.FailedAttempts)
	}
	if got := r.LeakedBlocks + r.OutstandingRefs; got != 0 {
		t.Fatalf("leak counters nonzero after faulty run: %+v", r)
	}
}

func TestRetryExhaustionReportsAttempts(t *testing.T) {
	f := &flaky{failN: 100, rows: 1}
	plan := &Plan{}
	plan.AddOp(f)
	ctx := newCtx(1)
	ctx.MaxAttempts = 3
	ctx.RetryBackoff = time.Microsecond
	err := Run(plan, ctx, 1)
	if err == nil || !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("want attempt-count error, got %v", err)
	}
	if got := f.runs.Load(); got != 3 {
		t.Fatalf("work order ran %d times, want 3", got)
	}
}

func TestFatalErrorIsNotRetried(t *testing.T) {
	f := &flaky{failN: 100, fatal: errors.New("corrupt input"), rows: 1}
	plan := &Plan{}
	plan.AddOp(f)
	ctx := newCtx(1)
	ctx.MaxAttempts = 5
	err := Run(plan, ctx, 1)
	if err == nil || !strings.Contains(err.Error(), "corrupt input") {
		t.Fatalf("want fatal error, got %v", err)
	}
	if got := f.runs.Load(); got != 1 {
		t.Fatalf("fatal work order ran %d times, want 1", got)
	}
}

// slowFailProducer: many slow work orders; one consumer work order fails
// fatally. The scheduler must cancel the remaining queued work promptly.
type failingConsumer struct {
	consumer
	failOnce atomic.Bool
}

func (c *failingConsumer) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	wos := make([]WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &failingConsumeWO{c: c, b: b}
	}
	return wos
}

type failingConsumeWO struct {
	c *failingConsumer
	b *storage.Block
}

func (w *failingConsumeWO) Inputs() []*storage.Block { return []*storage.Block{w.b} }

func (w *failingConsumeWO) Run(_ *ExecCtx, out *Output) error {
	if w.c.failOnce.CompareAndSwap(false, true) {
		return errors.New("consumer exploded")
	}
	time.Sleep(2 * time.Millisecond)
	atomic.AddInt64(&w.c.rows, int64(w.b.NumRows()))
	return nil
}

func TestMidQueryErrorCancelsQueuedWorkPromptly(t *testing.T) {
	// 200 blocks x 2ms serial consume time would take ~200ms at 2 workers if
	// the queue kept draining after the failure; the run must come back far
	// faster, drop the queued work orders, and leak nothing.
	p := &producer{nblocks: 200, rows: 2}
	c := &failingConsumer{}
	plan := &Plan{}
	pid := plan.AddOp(p)
	cid := plan.AddOp(c)
	plan.Pipe(pid, cid, 0, 1)
	ctx := newCtx(2)

	before := runtime.NumGoroutine()
	start := time.Now()
	err := Run(plan, ctx, 1)
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "consumer exploded") {
		t.Fatalf("want consumer error, got %v", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("failed run took %v; queued work was not canceled promptly", elapsed)
	}
	r := ctx.Run.Robust()
	if r.Cancellations == 0 {
		t.Fatal("no queued work orders were recorded as canceled")
	}
	if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
		t.Fatalf("aborted run leaked blocks: %+v", r)
	}
	// Workers must exit once Run returns (dispatch channel closed).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, got)
	}
}

func TestContextCancellationDropsQueuedWork(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	p := &producer{nblocks: 100, rows: 1}
	c := &consumer{}
	plan := &Plan{}
	pid := plan.AddOp(p)
	cid := plan.AddOp(c)
	plan.Pipe(pid, cid, 0, 1)
	ctx := newCtx(2)
	ctx.Ctx = cctx
	cancel() // canceled before the run even starts: nothing should execute
	err := Run(plan, ctx, 1)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	r := ctx.Run.Robust()
	if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
		t.Fatalf("canceled run leaked blocks: %+v", r)
	}
}

// emitN emits rows through the pool-backed emitter (so cancellation,
// deadline, and rollback paths see real pool blocks). sleep delays the
// attempt before the first append; failFirst makes attempt 1 sleep and later
// attempts run clean.
type emitN struct {
	Base
	self      OpID
	rows      int
	sleep     time.Duration
	sleepOnce bool
	runs      atomic.Int32
}

func (e *emitN) Name() string   { return "emitN" }
func (e *emitN) NumInputs() int { return 0 }
func (e *emitN) Start(*ExecCtx) []WorkOrder {
	return []WorkOrder{&emitNWO{op: e}}
}

type emitNWO struct{ op *emitN }

func (w *emitNWO) Inputs() []*storage.Block { return nil }

func (w *emitNWO) Run(ctx *ExecCtx, out *Output) error {
	n := w.op.runs.Add(1)
	if w.op.sleep > 0 && (!w.op.sleepOnce || n == 1) {
		time.Sleep(w.op.sleep)
	}
	em := NewEmitter(ctx, out, w.op.self, testSchema)
	for r := 0; r < w.op.rows; r++ {
		em.AppendRow(types.NewInt64(int64(r)))
	}
	return nil
}

func TestDeadlineAbortsAttemptAndRetrySucceeds(t *testing.T) {
	e := &emitN{rows: 3, sleep: 30 * time.Millisecond, sleepOnce: true}
	c := &consumer{}
	plan := &Plan{}
	eid := plan.AddOp(e)
	e.self = eid
	cid := plan.AddOp(c)
	plan.Pipe(eid, cid, 0, 1)
	ctx := newCtx(1)
	ctx.WODeadline = 5 * time.Millisecond
	ctx.MaxAttempts = 3
	ctx.RetryBackoff = time.Microsecond
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if c.rows != 3 {
		t.Fatalf("consumer rows = %d, want 3", c.rows)
	}
	r := ctx.Run.Robust()
	if r.DeadlineHits == 0 || r.Retries == 0 {
		t.Fatalf("deadline abort not recorded: %+v", r)
	}
}

func TestStallErrorReportsBufferedEdges(t *testing.T) {
	// A producer fills an edge whose consumer is gated behind a dependency
	// cycle: the stall error must name the edge and its undelivered blocks.
	plan := &Plan{}
	p := &producer{nblocks: 4, rows: 2}
	pid := plan.AddOp(p)
	c := &consumer{}
	cid := plan.AddOp(c)
	plan.Pipe(pid, cid, 0, 1)
	a := &gated{}
	b := &gated{}
	aid := plan.AddOp(a)
	bid := plan.AddOp(b)
	plan.Block(aid, bid)
	plan.Block(bid, aid)
	plan.Block(aid, cid) // consumer never starts
	ctx := newCtx(2)
	err := Run(plan, ctx, 1)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("want stall error, got %v", err)
	}
	if !strings.Contains(err.Error(), "undelivered blocks") ||
		!strings.Contains(err.Error(), "producer->consumer") {
		t.Fatalf("stall error does not report buffered edges: %v", err)
	}
	r := ctx.Run.Robust()
	if r.LeakedBlocks != 0 {
		t.Fatalf("stalled run leaked %d blocks", r.LeakedBlocks)
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	plan := &Plan{}
	plan.AddOp(&panicOp{})
	err := Run(plan, newCtx(1), 1)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("panic error lost the stack: %q", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic value missing from error: %v", err)
	}
}

func TestRollbackRestoresResumedPartialAndReleasesFreshBlocks(t *testing.T) {
	ctx := newCtx(1) // TempBlockBytes 64 → 8 rows per block
	const owner = 7

	// Attempt 1 succeeds with 3 rows: a partial is checked in.
	out1 := &Output{}
	em1 := NewEmitter(ctx, out1, owner, testSchema)
	for r := 0; r < 3; r++ {
		em1.AppendRow(types.NewInt64(int64(r)))
	}
	out1.Finish(nil)

	// Attempt 2 resumes the partial, appends 10 rows (sealing one full
	// block), then fails: everything must roll back to the 3-row state.
	out2 := &Output{}
	em2 := NewEmitter(ctx, out2, owner, testSchema)
	for r := 0; r < 10; r++ {
		em2.AppendRow(types.NewInt64(int64(100 + r)))
	}
	if len(out2.Blocks) == 0 {
		t.Fatal("test setup: attempt 2 sealed no block")
	}
	out2.Finish(errors.New("injected"))
	if out2.Blocks != nil || out2.RowsOut != 0 {
		t.Fatalf("failed attempt kept output: %d blocks, %d rows", len(out2.Blocks), out2.RowsOut)
	}

	// Attempt 3 resumes and appends one more row.
	out3 := &Output{}
	em3 := NewEmitter(ctx, out3, owner, testSchema)
	em3.AppendRow(types.NewInt64(99))
	out3.Finish(nil)

	parts := ctx.Pool.TakePartials(owner)
	if len(parts) != 1 {
		t.Fatalf("partials = %d, want 1", len(parts))
	}
	b := parts[0]
	want := []int64{0, 1, 2, 99}
	if b.NumRows() != len(want) {
		t.Fatalf("rows after rollback = %d, want %d", b.NumRows(), len(want))
	}
	for i, v := range want {
		if got := b.Int64At(0, i); got != v {
			t.Fatalf("row %d = %d, want %d (failed attempt's rows leaked in)", i, got, v)
		}
	}
	if n := ctx.Pool.PendingPartials(); n != 0 {
		t.Fatalf("pending partials = %d, want 0", n)
	}
}

// slowSink consumes slowly so memory pressure persists while producers queue.
type slowSink struct {
	consumer
}

func (c *slowSink) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	wos := make([]WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &slowSinkWO{c: c, b: b}
	}
	return wos
}

type slowSinkWO struct {
	c *slowSink
	b *storage.Block
}

func (w *slowSinkWO) Inputs() []*storage.Block { return []*storage.Block{w.b} }

func (w *slowSinkWO) Run(_ *ExecCtx, out *Output) error {
	time.Sleep(3 * time.Millisecond)
	atomic.AddInt64(&w.c.rows, int64(w.b.NumRows()))
	out.RowsIn = int64(w.b.NumRows())
	return nil
}

func TestSustainedMemoryPressureRaisesUoT(t *testing.T) {
	// Pool-backed producer under a 1-byte budget: every dispatch decision
	// sees the budget exceeded, so producer work orders keep getting held
	// while sink work orders run — past the hold limit the scheduler must
	// raise the edge UoT and keep going rather than crawl.
	e := &emitN{rows: 8}
	plan := &Plan{}
	eid := plan.AddOp(&multiEmit{op: e, n: 40}) // 40 independent producer WOs
	e.self = eid
	c := &slowSink{}
	cid := plan.AddOp(c)
	plan.Pipe(eid, cid, 0, 1)
	ctx := newCtx(2)
	ctx.MemoryBudget = 1
	if err := Run(plan, ctx, 1); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := atomic.LoadInt64(&c.rows); got != 40*8 {
		t.Fatalf("sink rows = %d, want %d", got, 40*8)
	}
	r := ctx.Run.Robust()
	if r.UoTRaises == 0 {
		t.Fatal("sustained memory pressure never raised the UoT")
	}
	if r.LeakedBlocks != 0 || r.OutstandingRefs != 0 {
		t.Fatalf("run leaked blocks: %+v", r)
	}
}

// multiEmit wraps emitN with n independent start work orders.
type multiEmit struct {
	Base
	op *emitN
	n  int
}

func (m *multiEmit) Name() string   { return "multiEmit" }
func (m *multiEmit) NumInputs() int { return 0 }
func (m *multiEmit) Start(*ExecCtx) []WorkOrder {
	wos := make([]WorkOrder, m.n)
	for i := range wos {
		wos[i] = &emitNWO{op: m.op}
	}
	return wos
}
