package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/uotctl"
)

// Run executes a plan: a single scheduler goroutine dispatches work orders
// to ctx.Workers worker goroutines, routing producer output blocks to
// consumers in groups of UoT blocks per pipelined edge (defaultUoT applies
// to edges that do not override it). Run returns after every operator has
// finished, after the run context is canceled, or after a work order fails
// fatally (transient failures are rolled back and retried up to
// ctx.MaxAttempts with exponential backoff). On any exit path the scheduler
// reclaims every intermediate block and verifies the zero-leak invariants.
func Run(plan *Plan, ctx *ExecCtx, defaultUoT int) error {
	if defaultUoT <= 0 {
		defaultUoT = 1
	}
	if ctx.Workers <= 0 {
		ctx.Workers = 1
	}
	s := &sched{plan: plan, ctx: ctx}
	s.build(defaultUoT)
	return s.run()
}

// memHoldLimit is how many times a block-producing work order is held back
// under memory pressure before the scheduler degrades: past it, the
// producer's out-edge UoTs are raised and the job dispatched anyway.
const memHoldLimit = 8

// maxRaisedUoT caps degradation-raised UoTs before snapping to UoTTable.
const maxRaisedUoT = 1 << 20

type job struct {
	op OpID
	wo WorkOrder
	// attempt counts completed executions of wo (0 for the first
	// dispatch); notBefore delays re-dispatch for retry backoff.
	attempt   int
	notBefore time.Time
	// Tracing annotations (zero when tracing is disabled): when the job
	// entered the queue and which UoT delivery batch fed it (-1 for work
	// orders not born from an edge delivery). edge is the pipelined edge
	// whose delivery created the job (-1 otherwise); the adaptive controller
	// uses it to attribute consumer service time back to the feeding edge.
	enqueueNS int64
	batch     int64
	edge      int32
}

type wres struct {
	op      OpID
	wo      WorkOrder
	out     *Output
	start   time.Time
	end     time.Time
	worker  int
	attempt int // 1-based: attempts completed including this one
	err     error
	// enqueueNS/batch/edge are carried through from the job for span events
	// and service-time attribution.
	enqueueNS int64
	batch     int64
	edge      int32
}

type edgeState struct {
	e            Edge
	uot          int
	start        int // resolved starting UoT (see ResolveUoT)
	buf          []*storage.Block
	producerDone bool
	delivered    bool // inputsOpen decremented at consumer
	// id is the edge's index in sched.edges (doubles as its tracer id);
	// batches counts UoT deliveries (batch ids); bufSince is when buf last
	// went non-empty (stall-time tracking; 0 while empty), maintained when
	// tracing or adaptation needs it.
	id       int32
	batches  int64
	bufSince int64
	// Adaptive-controller state: ctl is the edge's controller index (-1 for
	// static edges), lastDelivery the clock at the previous delivery
	// boundary, serviceNS the consumer work-order time attributed to this
	// edge since the last observation, faultedIn the blocks this edge's
	// deliveries had to fault back in from the spill tier since the last
	// observation, and the counters record every decision for the stats
	// snapshot.
	ctl          int
	lastDelivery int64
	serviceNS    int64
	faultedIn    int
	raises       int64
	lowers       int64
	holds        int64
	snaps        int64
}

type opState struct {
	id          OpID
	op          Operator
	deps        int
	inputsOpen  int
	depth       int // longest pipelined-edge distance from a leaf
	started     bool
	inflight    int
	queued      int
	finalIssued bool
	stage       int // next post-Final stage index (StagedOperator)
	done        bool
	maxDOP      int
	memHolds    int // consecutive memory-budget holds (degradation trigger)
	out         []*edgeState
	held        map[*storage.Block]struct{}
	scalarSlots []int
}

type sched struct {
	plan *Plan
	ctx  *ExecCtx

	states   []*opState
	edges    []*edgeState
	queue    []job
	rc       map[*storage.Block]int
	doneOps  int
	inflight int
	runErr   error

	// clock returns monotonic nanoseconds for edge stall/interval tracking:
	// the tracer's clock when tracing, a run-local clock when only the
	// adaptive controller needs it, nil when neither does (the static
	// untraced path stays timestamp-free).
	clock func() int64

	dispatch chan job
	results  chan wres
}

func (s *sched) build(defaultUoT int) {
	s.rc = make(map[*storage.Block]int)
	s.states = make([]*opState, len(s.plan.Ops))
	for i, op := range s.plan.Ops {
		s.states[i] = &opState{
			id:   OpID(i),
			op:   op,
			held: make(map[*storage.Block]struct{}),
		}
		if s.plan.MaxDOP != nil {
			s.states[i].maxDOP = s.plan.MaxDOP[OpID(i)]
		}
	}
	for _, e := range s.plan.Edges {
		switch e.Kind {
		case Pipelined:
			es := &edgeState{e: e, uot: ResolveUoT(e, defaultUoT, s.ctx.Adapt), ctl: -1}
			if s.ctx.Adapt != nil && es.uot != UoTTable {
				es.ctl = s.ctx.Adapt.AddEdge(es.uot)
				es.uot = s.ctx.Adapt.UoT(es.ctl) // controller clamps to its floor
			}
			es.start = es.uot
			s.edges = append(s.edges, es)
			s.states[e.From].out = append(s.states[e.From].out, es)
			s.states[e.To].inputsOpen++
		case Blocking:
			es := &edgeState{e: e, ctl: -1}
			s.edges = append(s.edges, es)
			s.states[e.From].out = append(s.states[e.From].out, es)
			s.states[e.To].deps++
		}
	}
	for i, es := range s.edges {
		es.id = int32(i)
	}
	for slot, op := range s.plan.ScalarSlots {
		s.states[op].scalarSlots = append(s.states[op].scalarSlots, slot)
	}
	if tr := s.ctx.Trace; tr.Enabled() {
		tr.SetWorkersIn(s.ctx.TraceRun, s.ctx.Workers)
		for i, st := range s.states {
			tr.RegisterOpIn(s.ctx.TraceRun, i, st.op.Name())
		}
		for i, es := range s.edges {
			tr.RegisterEdgeIn(s.ctx.TraceRun, i, trace.EdgeInfo{
				From: int(es.e.From), To: int(es.e.To),
				FromName:  s.states[es.e.From].op.Name(),
				ToName:    s.states[es.e.To].op.Name(),
				Input:     es.e.ToInput,
				Pipelined: es.e.Kind == Pipelined,
				UoT:       es.uot,
			})
		}
	}
	// Operator depth orders dispatch: a consumer's work orders take
	// priority over queued producer work orders, so with a low UoT a
	// consumer runs "as soon as it is available" (Section III-C) instead
	// of starving behind the producer's backlog. Plans are DAGs, so a
	// fixed number of relaxation rounds converges.
	for round := 0; round < len(s.states); round++ {
		changed := false
		for _, e := range s.plan.Edges {
			if e.Kind != Pipelined {
				continue
			}
			if d := s.states[e.From].depth + 1; d > s.states[e.To].depth {
				s.states[e.To].depth = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// ResolveUoT is the single place the Edge.UoT==0 fallback is resolved: an
// explicit per-edge value wins; otherwise an attached adaptive controller
// supplies its analytical-model prior, and absent both the run default
// applies. Blocking edges resolve to 0 (they transfer no pipelined blocks).
func ResolveUoT(e Edge, defaultUoT int, ad *uotctl.Controller) int {
	if e.Kind != Pipelined {
		return 0
	}
	if e.UoT != 0 {
		return e.UoT
	}
	if ad != nil {
		return ad.Prior()
	}
	if defaultUoT <= 0 {
		return 1
	}
	return defaultUoT
}

func (s *sched) run() error {
	if tr := s.ctx.Trace; tr.Enabled() {
		s.clock = tr.Now
	} else if s.ctx.Adapt != nil {
		base := now()
		s.clock = func() int64 { return now().Sub(base).Nanoseconds() }
	}
	if n := len(s.plan.ScalarSlots); len(s.ctx.Scalars) < n {
		s.ctx.Scalars = make([]types.Datum, n)
	}
	for _, st := range s.states {
		st.op.Init(s.ctx)
	}
	for _, st := range s.states {
		if st.deps == 0 {
			s.startOp(st)
		}
	}

	// With a shared executor the run spawns no workers: dispatched jobs are
	// submitted as tasks and complete through s.results, which is buffered
	// at the in-flight cap so a completing task never blocks on the
	// scheduler goroutine.
	s.results = make(chan wres, s.ctx.Workers)
	if s.ctx.Exec == nil {
		s.dispatch = make(chan job)
		for w := 0; w < s.ctx.Workers; w++ {
			go s.worker(w)
		}
		defer close(s.dispatch)
	}

	for s.doneOps < len(s.states) {
		if s.runErr == nil {
			if err := s.ctx.Canceled(); err != nil {
				s.fail(&CancelError{Cause: err})
			}
		}
		// Drain pending results before dispatching: pickJob then decides
		// on a fresh queue, and with one worker the schedule becomes fully
		// deterministic (what makes a seeded fault schedule replayable).
		select {
		case r := <-s.results:
			s.onComplete(r)
			continue
		default:
		}
		if s.inflight >= s.ctx.Workers {
			s.onComplete(<-s.results)
			continue
		}
		ji := s.pickJob()
		if ji < 0 {
			if s.inflight > 0 {
				s.onComplete(<-s.results)
				continue
			}
			if w, ok := s.backoffWait(); ok {
				// Every queued job is a retry waiting out its backoff.
				time.Sleep(w)
				continue
			}
			if s.runErr == nil {
				s.failStalled()
			}
			break
		}
		j := s.queue[ji]
		if s.ctx.Exec != nil {
			// Shared-executor dispatch: hand the job to the cross-query
			// pool. Submit may block for queue admission; completions of
			// this run's other tasks accumulate in the buffered results
			// channel meanwhile (at most Workers-1 of them are out).
			s.queue = append(s.queue[:ji], s.queue[ji+1:]...)
			s.states[j.op].queued--
			s.states[j.op].inflight++
			s.inflight++
			s.ctx.Exec.Submit(Task{
				Query:    s.ctx.Query,
				Priority: s.ctx.Priority,
				Run:      func(worker int) { s.runJob(j, worker, false) },
			})
			continue
		}
		select {
		case s.dispatch <- j:
			s.queue = append(s.queue[:ji], s.queue[ji+1:]...)
			s.states[j.op].queued--
			s.states[j.op].inflight++
			s.inflight++
		case r := <-s.results:
			s.onComplete(r)
		}
	}
	// Drain any stragglers (only possible after an error cleared the queue).
	for s.inflight > 0 {
		s.onComplete(<-s.results)
	}
	s.cleanup()
	s.checkInvariants()
	s.recordEdgeUoTs()
	s.ctx.Trace.EndRunIn(s.ctx.TraceRun, s.runErr != nil)
	return s.runErr
}

// recordEdgeUoTs publishes each pipelined edge's UoT trajectory — the
// resolved starting value, the final value, and per-decision counts — into
// the run's stats snapshot.
func (s *sched) recordEdgeUoTs() {
	if s.ctx.Run == nil {
		return
	}
	var out []stats.EdgeUoT
	for _, es := range s.edges {
		if es.e.Kind != Pipelined {
			continue
		}
		out = append(out, stats.EdgeUoT{
			From: int(es.e.From), To: int(es.e.To),
			FromName: s.states[es.e.From].op.Name(),
			ToName:   s.states[es.e.To].op.Name(),
			Input:    es.e.ToInput,
			Declared: es.e.UoT,
			Start:    es.start,
			Final:    es.uot,
			Raises:   es.raises,
			Lowers:   es.lowers,
			Holds:    es.holds,
			Snaps:    es.snaps,
		})
	}
	s.ctx.Run.SetEdgeUoTs(out)
}

// fail records the first fatal error and cancels all remaining queued work
// orders.
func (s *sched) fail(err error) {
	if s.runErr != nil {
		return
	}
	s.runErr = err
	if dropped := len(s.queue); dropped > 0 && s.ctx.Run != nil {
		s.ctx.Run.AddCancellations(int64(dropped))
	}
	s.queue = nil
	for _, o := range s.states {
		o.queued = 0
	}
}

// failStalled reports a scheduler stall (unreachable operator or missing
// edge), including which pipelined edges still buffer undelivered blocks —
// the bookkeeping that pins down where the data stopped flowing.
func (s *sched) failStalled() {
	var stuck []string
	for _, st := range s.states {
		if !st.done {
			stuck = append(stuck, fmt.Sprintf("%s{started=%v deps=%d inputsOpen=%d queued=%d inflight=%d finalIssued=%v}",
				st.op.Name(), st.started, st.deps, st.inputsOpen, st.queued, st.inflight, st.finalIssued))
		}
	}
	var buffered []string
	blocks := 0
	for _, es := range s.edges {
		if es.e.Kind == Pipelined && len(es.buf) > 0 {
			blocks += len(es.buf)
			buffered = append(buffered, fmt.Sprintf("%s->%s(input %d): %d blocks",
				s.states[es.e.From].op.Name(), s.states[es.e.To].op.Name(), es.e.ToInput, len(es.buf)))
		}
	}
	msg := fmt.Sprintf("core: scheduler stalled with %d/%d operators done (plan bug: unreachable operator or missing edge): %v",
		s.doneOps, len(s.states), stuck)
	if len(buffered) > 0 {
		msg += fmt.Sprintf("; %d undelivered blocks buffered on %d edge(s): %v", blocks, len(buffered), buffered)
	}
	s.fail(fmt.Errorf("%s", msg))
}

// backoffWait returns how long to sleep until the earliest backoff-delayed
// job becomes dispatchable; ok is false only when the queue is empty (a
// genuine stall). A job that came due between pickJob's clock sample and
// this one returns a zero wait so the loop re-picks immediately — with no
// work in flight a due job is always dispatchable, so this cannot livelock.
func (s *sched) backoffWait() (time.Duration, bool) {
	if s.runErr != nil || len(s.queue) == 0 {
		return 0, false
	}
	t := now()
	var earliest time.Time
	for _, j := range s.queue {
		if !j.notBefore.After(t) {
			return 0, true
		}
		if earliest.IsZero() || j.notBefore.Before(earliest) {
			earliest = j.notBefore
		}
	}
	return earliest.Sub(t), true
}

// pickJob returns the index of the dispatchable queued job belonging to the
// deepest operator (consumer priority), breaking ties by queue order; -1 if
// nothing is dispatchable. After an error, nothing is dispatchable. Jobs in
// retry backoff are skipped until due.
//
// When a temp-memory budget is set (a Section III-C scheduler policy) and
// live intermediate bytes exceed it, producer work orders — jobs of
// operators that are not at maximal depth among the queued jobs — are held
// back so consumers can drain buffered blocks first; if the queue holds only
// producers, one is dispatched anyway to guarantee progress. A producer held
// back more than memHoldLimit times in a row degrades instead of stalling
// further: the UoT on its out-edges is raised (coarser transfers, less
// scheduling churn) and the job dispatched.
func (s *sched) pickJob() int {
	if s.runErr != nil {
		return -1
	}
	var t time.Time
	best, bestDepth := -1, -1
	for i, j := range s.queue {
		if !j.notBefore.IsZero() {
			if t.IsZero() {
				t = now()
			}
			if j.notBefore.After(t) {
				continue
			}
		}
		st := s.states[j.op]
		if st.maxDOP != 0 && st.inflight >= st.maxDOP {
			continue
		}
		if st.depth > bestDepth {
			best, bestDepth = i, st.depth
		}
	}
	if best >= 0 && s.overBudget() && s.inflight > 0 && s.producesBlocks(s.queue[best].op) {
		st := s.states[s.queue[best].op]
		st.memHolds++
		if st.memHolds <= memHoldLimit {
			// Hold back block-producing work while over budget; the
			// in-flight work orders (consumers, by depth priority) will
			// complete, release their input blocks, and unblock the
			// queue. inflight > 0 guarantees progress.
			return -1
		}
		st.memHolds = 0
		s.pressureRaise(st)
	}
	return best
}

// pressureRaise raises the UoT of st's outgoing pipelined edges under
// sustained memory pressure: the scheduler trades transfer granularity for
// forward progress — the spectrum of Fig. 1 used as a degradation knob.
// Adaptive edges route through the controller (which doubles immediately,
// bypassing hysteresis, and arms a hold against re-lowering right after);
// static edges double inline, snapping to UoTTable past maxRaisedUoT.
func (s *sched) pressureRaise(st *opState) {
	for _, es := range st.out {
		if es.e.Kind != Pipelined || es.uot == UoTTable {
			continue
		}
		var a uotctl.Action
		switch {
		case es.ctl >= 0:
			a = s.ctx.Adapt.Pressure(es.ctl)
		case es.uot >= maxRaisedUoT:
			a = uotctl.Action{Dir: uotctl.Snap, UoT: UoTTable}
		default:
			a = uotctl.Action{Dir: uotctl.Raise, UoT: es.uot * 2}
		}
		s.applyUoT(es, a, true)
	}
}

// adapt feeds one delivery boundary's gauges to the adaptive controller and
// applies its decision to the edge. Called only for controller-managed edges
// (es.ctl >= 0) that just delivered.
func (s *sched) adapt(es *edgeState, delivered int, stallNS, nowNS int64) {
	sig := uotctl.Signals{
		Buffered:    len(es.buf),
		Delivered:   delivered,
		StallNS:     stallNS,
		ServiceNS:   es.serviceNS,
		QueueDepth:  len(s.queue),
		MemPressure: s.overBudget(),
		FaultedIn:   es.faultedIn,
	}
	if es.lastDelivery > 0 {
		sig.IntervalNS = nowNS - es.lastDelivery
	}
	es.lastDelivery = nowNS
	es.serviceNS = 0
	es.faultedIn = 0
	s.applyUoT(es, s.ctx.Adapt.Observe(es.ctl, sig), false)
}

// applyUoT applies one UoT decision — from the adaptive controller or the
// legacy static degradation path — to an edge: the new value, the per-edge
// decision counters behind the stats snapshot, the shared robustness
// counters, and a trace mark distinguishing raises, lowers, and terminal
// snaps (the mark's Edge/UoT fields name the edge and carry the new value).
// pressure marks decisions born from the memory-pressure path: only those
// count as UoTRaises, matching the counter's pre-adaptive meaning.
func (s *sched) applyUoT(es *edgeState, a uotctl.Action, pressure bool) {
	switch a.Dir {
	case uotctl.Raise:
		es.uot = a.UoT
		es.raises++
		if pressure && s.ctx.Run != nil {
			s.ctx.Run.AddUoTRaise()
		}
		s.ctx.Trace.MarkIn(s.ctx.TraceRun, trace.MarkUoTRaise, trace.Event{
			Op: int32(es.e.From), Edge: es.id, UoT: int64(es.uot),
			StartNS: s.ctx.Trace.Now(),
		})
	case uotctl.Lower:
		es.uot = a.UoT
		es.lowers++
		s.ctx.Trace.MarkIn(s.ctx.TraceRun, trace.MarkUoTLower, trace.Event{
			Op: int32(es.e.From), Edge: es.id, UoT: int64(es.uot),
			StartNS: s.ctx.Trace.Now(),
		})
	case uotctl.Snap:
		es.uot = UoTTable
		es.snaps++
		if s.ctx.Run != nil {
			s.ctx.Run.AddUoTSnap()
		}
		s.ctx.Trace.MarkIn(s.ctx.TraceRun, trace.MarkUoTSnap, trace.Event{
			Op: int32(es.e.From), Edge: es.id, UoT: int64(es.uot),
			StartNS: s.ctx.Trace.Now(),
		})
	default:
		es.holds++
	}
}

func (s *sched) overBudget() bool {
	return s.ctx.MemoryBudget > 0 && s.ctx.Run != nil &&
		s.ctx.Run.Intermediates.Live() > s.ctx.MemoryBudget
}

// producesBlocks reports whether an operator feeds pipelined consumers (its
// output occupies temp-block memory until drained).
func (s *sched) producesBlocks(id OpID) bool {
	for _, es := range s.states[id].out {
		if es.e.Kind == Pipelined {
			return true
		}
	}
	return false
}

func (s *sched) worker(id int) {
	// Label the worker goroutine so CPU/goroutine profiles attribute samples
	// to scheduler workers (`go tool pprof` tag filter "uot_worker").
	defer pprof.SetGoroutineLabels(context.Background())
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("uot_worker", strconv.Itoa(id))))
	lastOp := OpID(-1)
	for j := range s.dispatch {
		// A worker switching operators re-fills the instruction cache: the
		// IC term of the Section V model. Dedicated-worker mode only —
		// shared-executor workers interleave queries arbitrarily, so the
		// per-worker operator-affinity model does not transfer there.
		s.runJob(j, id, j.op != lastOp)
		lastOp = j.op
	}
}

// runJob executes one work-order attempt on the given worker and reports its
// result on s.results. It is the body shared by dedicated workers and
// shared-executor tasks; the results channel is buffered at the in-flight
// cap, so the send never blocks.
func (s *sched) runJob(j job, worker int, simSwitch bool) {
	out := &Output{}
	if simSwitch && s.ctx.Sim != nil {
		out.Sim += s.ctx.Sim.ContextSwitch()
	}
	start := now()
	var err error
	if cerr := s.ctx.Canceled(); cerr != nil {
		// Canceled while queued: report without running at all.
		err = cerr
	} else {
		err = runSafely(j.wo, s.ctx, out, start)
	}
	s.results <- wres{op: j.op, wo: j.wo, out: out, start: start, end: now(), worker: worker,
		attempt: j.attempt + 1, err: err, enqueueNS: j.enqueueNS, batch: j.batch, edge: j.edge}
}

// runSafely executes one work-order attempt. Panics are recovered into
// PanicError with the goroutine stack captured at the panic site; typed
// aborts from emitter interruption points (injected faults, cancellation,
// deadline) unwind to their underlying error. On any failure the attempt's
// materialized blocks are rolled back via Output.Finish before the result is
// reported, so a failed attempt leaves no trace in the temp-block pool.
func runSafely(wo WorkOrder, ctx *ExecCtx, out *Output, start time.Time) (err error) {
	if ctx.WODeadline > 0 {
		out.deadline = start.Add(ctx.WODeadline)
	}
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(*woAbort); ok {
				err = a.err
			} else {
				err = &PanicError{Val: r, Stack: debug.Stack()}
			}
		}
		if err == nil && ctx.WODeadline > 0 {
			// The attempt overran but completed; keep its result (it may
			// have mutated shared operator state, so a forced retry would
			// not be sound) and record the hit.
			if el := now().Sub(start); el > ctx.WODeadline && ctx.Run != nil {
				ctx.Run.AddDeadlineHit()
			}
		}
		out.Finish(err)
	}()
	return wo.Run(ctx, out)
}

// maxAttempts returns the per-work-order attempt bound (>= 1).
func (s *sched) maxAttempts() int {
	if s.ctx.MaxAttempts > 1 {
		return s.ctx.MaxAttempts
	}
	return 1
}

// retryBackoff returns the delay before re-dispatching a work order that
// failed `attempt` times: exponential from RetryBackoff (default 1ms),
// capped at 100ms.
func (s *sched) retryBackoff(attempt int) time.Duration {
	base := s.ctx.RetryBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << (attempt - 1)
	if maxB := 100 * time.Millisecond; d > maxB || d <= 0 {
		d = 100 * time.Millisecond
	}
	return d
}

func (s *sched) onComplete(r wres) {
	st := s.states[r.op]
	st.inflight--
	s.inflight--

	// Attribute the work order's wall time back to the edge whose delivery
	// spawned it: the controller's consumer service-time signal.
	if r.edge >= 0 {
		if es := s.edges[r.edge]; es.ctl >= 0 {
			es.serviceNS += r.end.Sub(r.start).Nanoseconds()
		}
	}

	retry := false
	if r.err != nil {
		if s.ctx.Run != nil {
			s.ctx.Run.AddFailedAttempt()
			var de *DeadlineError
			if errors.As(r.err, &de) {
				s.ctx.Run.AddDeadlineHit()
			}
		}
		retry = s.runErr == nil && r.attempt < s.maxAttempts() && IsTransient(r.err)
	}
	if s.ctx.Run != nil {
		s.ctx.Run.Record(stats.WorkOrder{
			OpID:        int(r.op),
			OpName:      st.op.Name(),
			Worker:      r.worker,
			Start:       r.start,
			End:         r.end,
			Sim:         r.out.Sim,
			Rows:        r.out.RowsIn,
			RowsOut:     r.out.RowsOut,
			ShardLocks:  r.out.ShardLocks,
			BatchedRows: r.out.BatchedRows,
			ScratchHits: r.out.ScratchHits,

			AggPartials:     r.out.AggPartials,
			AggMergeFanout:  r.out.AggMergeFanout,
			AggFastRows:     r.out.AggFastRows,
			AggFallbackRows: r.out.AggFallbackRows,

			SortRuns:         r.out.SortRuns,
			SortMergeFanout:  r.out.SortMergeFanout,
			SortFastRows:     r.out.SortFastRows,
			SortFallbackRows: r.out.SortFallbackRows,
			TopKPruned:       r.out.TopKPruned,

			ExchangeRows:      r.out.ExchangeRows,
			RepartitionFanout: r.out.RepartitionFanout,
			PartitionSkew:     r.out.PartitionSkew,

			Attempt:   r.attempt,
			Failed:    r.err != nil,
			Demotions: r.out.Demotions,
		})
	}
	if tr := s.ctx.Trace; tr.Enabled() {
		var flags uint8
		if r.err != nil {
			flags |= trace.FlagFailed
		}
		if retry {
			flags |= trace.FlagRetried
		}
		tr.SpanIn(s.ctx.TraceRun, trace.Event{
			Op:        int32(r.op),
			Worker:    int32(r.worker),
			Attempt:   int32(r.attempt),
			Batch:     r.batch,
			Flags:     flags,
			EnqueueNS: r.enqueueNS,
			StartNS:   tr.Since(r.start),
			EndNS:     tr.Since(r.end),
			Rows:      r.out.RowsIn,
			RowsOut:   r.out.RowsOut,
			Demotions: r.out.Demotions,

			SortRuns:         r.out.SortRuns,
			SortMergeFanout:  r.out.SortMergeFanout,
			SortFastRows:     r.out.SortFastRows,
			SortFallbackRows: r.out.SortFallbackRows,
			TopKPruned:       r.out.TopKPruned,

			ExchangeRows:      r.out.ExchangeRows,
			RepartitionFanout: r.out.RepartitionFanout,
			PartitionSkew:     r.out.PartitionSkew,
		})
	}
	if retry {
		// The attempt was rolled back by runSafely; the inputs stay held
		// and the same work order re-dispatches after backoff.
		if s.ctx.Run != nil {
			s.ctx.Run.AddRetry()
		}
		s.ctx.Trace.MarkIn(s.ctx.TraceRun, trace.MarkRetry, trace.Event{
			Op: int32(r.op), Attempt: int32(r.attempt), Batch: r.batch,
			StartNS: s.ctx.Trace.Now(),
		})
		s.queue = append(s.queue, job{
			op: r.op, wo: r.wo,
			attempt:   r.attempt,
			notBefore: now().Add(s.retryBackoff(r.attempt)),
			enqueueNS: s.ctx.Trace.Now(),
			batch:     r.batch,
			edge:      r.edge,
		})
		st.queued++
		return
	}
	if r.err != nil && s.runErr == nil {
		// Work orders that died of run cancellation (canceled while queued,
		// or aborted at an emitter interruption point) surface the raw
		// context error; type it like the run-loop path does.
		err := wrapCancel(r.err)
		if r.attempt > 1 {
			err = fmt.Errorf("core: work order for %s failed after %d attempts: %w", st.op.Name(), r.attempt, err)
		}
		s.fail(err)
	}
	// Release consumed intermediate blocks (kept until now so retried
	// attempts could re-read them).
	for _, b := range r.wo.Inputs() {
		if _, ok := st.held[b]; ok {
			delete(st.held, b)
			s.decRef(b)
		}
	}
	if s.runErr == nil {
		s.emit(st, r.out.Blocks, r.out.partTags)
	} else {
		// A straggler that completed after the run failed: its output
		// will never be delivered, so reclaim it here.
		for _, b := range r.out.Blocks {
			s.ctx.Pool.Release(b)
		}
	}
	s.check(st)
}

// emit routes blocks produced by st into its outgoing pipelined edges. An
// untagged block goes to every pipelined edge (the pre-exchange broadcast
// semantics); a partition-tagged block goes only to edges carrying its
// partition (plus any unpartitioned edges). A tagged block matching no edge
// is reclaimed immediately, preserving the zero-leak invariants.
func (s *sched) emit(st *opState, blocks []*storage.Block, tags map[*storage.Block]int) {
	if len(blocks) == 0 {
		return
	}
	touched := false
	evicted := 0
	var evictedBytes int64
	for _, b := range blocks {
		tag := -1
		if t, ok := tags[b]; ok {
			tag = t
		}
		// Reference count = number of non-adopting pipelined consumers the
		// block is actually routed to.
		refs, matched := 0, false
		for _, es := range st.out {
			if es.e.Kind != Pipelined || !edgeWants(es.e, tag) {
				continue
			}
			matched = true
			if !s.states[es.e.To].op.AdoptsInputs() {
				refs++
			}
		}
		if !matched {
			// No pipelined consumer takes this block — a partition-tagged
			// block whose partition no edge carries, or output of an operator
			// with only blocking/gate consumers (e.g. a scalar provider,
			// whose value travels via ScalarValue, not blocks). Reclaim it.
			s.ctx.Pool.Release(b)
			if s.ctx.Sim != nil {
				s.ctx.Sim.Evict(b)
			}
			continue
		}
		if refs > 0 {
			s.rc[b] = refs
		}
		for _, es := range st.out {
			if es.e.Kind == Pipelined && edgeWants(es.e, tag) {
				es.buf = append(es.buf, b)
			}
		}
		// The block is now sealed and parked awaiting delivery: cool it so
		// the spill tier may evict it under memory pressure (no-op without a
		// tier). Cool rebalances, so eviction rounds happen right here on the
		// scheduler goroutine; mark them on the trace.
		eb, ebytes := s.ctx.Pool.Cool(b)
		evicted += eb
		evictedBytes += ebytes
		touched = true
	}
	if evicted > 0 {
		s.ctx.Trace.MarkIn(s.ctx.TraceRun, trace.MarkSpill, trace.Event{
			Op: int32(st.id), Rows: int64(evicted), RowsOut: evictedBytes,
			StartNS: s.ctx.Trace.Now(),
		})
	}
	if !touched {
		return
	}
	for _, es := range st.out {
		if es.e.Kind == Pipelined {
			s.tryFlush(es)
			if s.runErr != nil {
				return // a delivery's fault-in failed; cleanup reclaims the rest
			}
		}
	}
}

// edgeWants reports whether a pipelined edge accepts a block with the given
// partition tag (-1 = untagged): unpartitioned edges accept everything,
// partitioned edges only their own partition. Untagged blocks broadcast.
func edgeWants(e Edge, tag int) bool {
	p := e.Partition()
	return p < 0 || tag < 0 || p == tag
}

// tryFlush hands buffered blocks to the consumer in UoT-sized groups. When
// tracing is enabled every transition ends with a gauge sample of the edge
// (buffered blocks vs. the UoT threshold, scheduler queue depth, stall time
// of the drained blocks, and memory-pool occupancy). Controller-managed
// edges additionally observe the adaptive controller at every delivery
// boundary — the same stall/interval bookkeeping feeds both, so the fully
// static untraced path stays timestamp-free.
func (s *sched) tryFlush(es *edgeState) {
	traced := es.e.Kind == Pipelined && s.ctx.Trace.Enabled()
	track := traced || es.ctl >= 0
	delivered := 0
	c := s.states[es.e.To]
	if !c.started {
		if track && len(es.buf) > 0 && es.bufSince == 0 {
			es.bufSince = s.clock()
		}
		if traced {
			s.sampleEdge(es, 0, 0)
		}
		return
	}
	for es.uot != UoTTable && len(es.buf) >= es.uot {
		chunk := es.buf[:es.uot:es.uot]
		es.buf = es.buf[es.uot:]
		delivered += len(chunk)
		s.deliver(c, es, chunk)
		if s.runErr != nil {
			return // fault-in failed; blocks left in es.buf go to cleanup
		}
	}
	if es.producerDone {
		if len(es.buf) > 0 {
			chunk := es.buf
			es.buf = nil
			delivered += len(chunk)
			s.deliver(c, es, chunk)
			if s.runErr != nil {
				return
			}
		}
		if !es.delivered {
			es.delivered = true
			c.inputsOpen--
			s.check(c)
		}
	}
	if track {
		var stall int64
		nowNS := s.clock()
		if delivered > 0 && es.bufSince > 0 {
			// How long the just-drained blocks waited buffered behind the
			// UoT threshold before the consumer could see them.
			stall = nowNS - es.bufSince
		}
		if len(es.buf) == 0 {
			es.bufSince = 0
		} else if delivered > 0 || es.bufSince == 0 {
			es.bufSince = nowNS
		}
		if es.ctl >= 0 && delivered > 0 && !es.producerDone {
			// Observe before the gauge sample so the sampled UoT threshold
			// (and the Prometheus uot_edge_uot_blocks gauge behind it)
			// reflects this boundary's decision.
			s.adapt(es, delivered, stall, nowNS)
		}
		if traced {
			s.sampleEdge(es, delivered, stall)
		}
	}
}

// sampleEdge records one per-edge gauge sample (tracing enabled only).
func (s *sched) sampleEdge(es *edgeState, delivered int, stallNS int64) {
	var pool int64
	if s.ctx.Run != nil {
		pool = s.ctx.Run.Intermediates.Live()
	}
	s.ctx.Trace.EdgeIn(s.ctx.TraceRun, trace.Event{
		Edge:       es.id,
		StartNS:    s.ctx.Trace.Now(),
		Buffered:   int32(len(es.buf)),
		UoT:        int64(es.uot),
		QueueDepth: int32(len(s.queue)),
		StallNS:    stallNS,
		PoolBytes:  pool,
	}, delivered)
}

// deliver hands one UoT group to the consumer. Every block is pinned first:
// a pinned block is ineligible for spill eviction for as long as operator
// code may touch its memory, and a block the tier already evicted is faulted
// back in synchronously — the read-through stall the delivery path pays in
// the Section V-C persistent-store regime. A fault-in that fails past the
// retry bound abandons the whole delivery: the consumer never sees the chunk,
// non-refcounted blocks are reclaimed inline, refcounted ones by cleanup.
func (s *sched) deliver(c *opState, es *edgeState, blocks []*storage.Block) {
	faulted := 0
	var faultBytes, faultStall int64
	for _, b := range blocks {
		pr, err := s.ctx.Pool.Pin(b)
		if err != nil {
			for _, rb := range blocks {
				if _, ok := s.rc[rb]; !ok {
					s.ctx.Pool.Release(rb)
					if s.ctx.Sim != nil {
						s.ctx.Sim.Evict(rb)
					}
				}
			}
			s.fail(fmt.Errorf("core: delivering %d block(s) to %s: %w", len(blocks), c.op.Name(), err))
			return
		}
		if pr.FaultedIn {
			faulted++
			faultBytes += pr.Bytes
			faultStall += pr.StallNS
		}
	}
	if faulted > 0 {
		es.faultedIn += faulted
		s.ctx.Trace.MarkIn(s.ctx.TraceRun, trace.MarkSpillFaultIn, trace.Event{
			Op: int32(es.e.To), Edge: es.id,
			Rows: int64(faulted), RowsOut: faultBytes, StallNS: faultStall,
			StartNS: s.ctx.Trace.Now(),
		})
	}
	if c.op.AdoptsInputs() {
		// Ownership leaves the pool with the Feed; the tier must not keep
		// tracking blocks it can no longer see released.
		for _, b := range blocks {
			s.ctx.Pool.Forget(b)
		}
	} else {
		for _, b := range blocks {
			if _, ok := s.rc[b]; ok {
				c.held[b] = struct{}{}
			}
		}
	}
	es.batches++
	s.enqueueBatch(c, c.op.Feed(s.ctx, es.e.ToInput, blocks), es.batches-1, es.id)
}

func (s *sched) enqueue(st *opState, wos []WorkOrder) {
	s.enqueueBatch(st, wos, -1, -1)
}

// enqueueBatch queues work orders annotated with the UoT delivery batch and
// edge that produced them (-1/-1 for Start/Final work orders).
func (s *sched) enqueueBatch(st *opState, wos []WorkOrder, batch int64, edge int32) {
	if s.runErr != nil {
		return
	}
	var enq int64
	if s.ctx.Trace.Enabled() {
		enq = s.ctx.Trace.Now()
	}
	for _, wo := range wos {
		s.queue = append(s.queue, job{op: st.id, wo: wo, enqueueNS: enq, batch: batch, edge: edge})
	}
	st.queued += len(wos)
}

func (s *sched) startOp(st *opState) {
	st.started = true
	s.enqueue(st, st.op.Start(s.ctx))
	for _, es := range s.edges {
		if es.e.Kind == Pipelined && es.e.To == st.id {
			s.tryFlush(es)
		}
	}
	s.check(st)
}

// check advances an operator through final work orders to completion.
func (s *sched) check(st *opState) {
	if st.done || !st.started {
		return
	}
	if st.inputsOpen > 0 || st.inflight > 0 || st.queued > 0 {
		return
	}
	if !st.finalIssued {
		st.finalIssued = true
		if wos := st.op.Final(s.ctx); len(wos) > 0 {
			s.enqueue(st, wos)
			return
		}
	}
	// Staged operators run post-Final waves: each wave must fully complete
	// before the next stage is asked for, which is what lets a later stage
	// hand ordered blocks to the out-edges in one deterministic work order.
	if so, ok := st.op.(StagedOperator); ok {
		for {
			wos := so.NextStage(s.ctx, st.stage)
			if wos == nil {
				break
			}
			st.stage++
			if len(wos) > 0 {
				s.enqueue(st, wos)
				return
			}
		}
	}
	s.finish(st)
}

func (s *sched) finish(st *opState) {
	st.done = true
	s.doneOps++

	// Publish scalar results before unblocking dependents.
	for _, slot := range st.scalarSlots {
		v, ok := st.op.ScalarValue()
		if !ok {
			if s.runErr == nil {
				s.runErr = fmt.Errorf("core: operator %q registered for scalar slot %d produced no scalar", st.op.Name(), slot)
			}
		} else {
			s.ctx.Scalars[slot] = v
		}
	}

	// Partially-filled output blocks are transferred at operator end. A
	// partitioned producer additionally drains each partition's pending
	// partial, tagged so it reaches only that partition's consumers.
	if s.runErr == nil {
		parts := s.ctx.Pool.TakePartials(int(st.id))
		s.emit(st, parts, nil)
		if po, ok := st.op.(PartitionedOutput); ok {
			for p := 0; p < po.OutputPartitions(); p++ {
				pb := s.ctx.Pool.TakePartials(PartOwner(st.id, p))
				if len(pb) == 0 {
					continue
				}
				tags := make(map[*storage.Block]int, len(pb))
				for _, b := range pb {
					tags[b] = p
				}
				s.emit(st, pb, tags)
			}
		}
	}

	st.op.Cleanup(s.ctx)

	for _, es := range st.out {
		switch es.e.Kind {
		case Pipelined:
			es.producerDone = true
			s.tryFlush(es)
		case Blocking:
			c := s.states[es.e.To]
			c.deps--
			if c.deps == 0 && !c.started {
				s.startOp(c)
			}
		}
	}

	// Blocks this operator buffered but never consumed through work orders.
	for b := range st.held {
		delete(st.held, b)
		s.decRef(b)
	}
}

// cleanup reclaims every intermediate block an aborted run left behind:
// refcounted blocks, blocks buffered on edges awaiting delivery, and partial
// blocks still checked into the pool. Successful runs release everything
// through the normal flow, so this is a no-op for them.
func (s *sched) cleanup() {
	if s.runErr == nil {
		return
	}
	released := make(map[*storage.Block]struct{})
	release := func(b *storage.Block) {
		if _, ok := released[b]; ok {
			return
		}
		released[b] = struct{}{}
		s.ctx.Pool.Release(b)
		if s.ctx.Sim != nil {
			s.ctx.Sim.Evict(b)
		}
	}
	for b := range s.rc {
		release(b)
		delete(s.rc, b)
	}
	for _, es := range s.edges {
		for _, b := range es.buf {
			release(b)
		}
		es.buf = nil
	}
	for _, st := range s.states {
		for b := range st.held {
			delete(st.held, b)
		}
		for _, b := range s.ctx.Pool.TakePartials(int(st.id)) {
			release(b)
		}
		if po, ok := st.op.(PartitionedOutput); ok {
			for p := 0; p < po.OutputPartitions(); p++ {
				for _, b := range s.ctx.Pool.TakePartials(PartOwner(st.id, p)) {
					release(b)
				}
			}
		}
		// Blocks materialized for an emit stage that will never run are in
		// no refcount, edge, or partial structure — only the operator knows
		// about them.
		if so, ok := st.op.(StagedOperator); ok {
			for _, b := range so.AbandonStages() {
				release(b)
			}
		}
		// Blocks an adopting sink already took (a partial result table) go
		// back too — ownership only transfers on success.
		if ao, ok := st.op.(AdoptingOperator); ok {
			for _, b := range ao.AbandonAdopted() {
				release(b)
			}
		}
	}
}

// checkInvariants verifies the zero-leak invariants after every run — no
// blocks buffered on edges, none held by operators, no partials checked into
// the pool, no refcount entries alive — records the counts in stats, and
// turns a violation on an otherwise successful run into an error (it means a
// scheduler bug, and silently leaking is worse than failing).
func (s *sched) checkInvariants() {
	bufBlocks := 0
	for _, es := range s.edges {
		bufBlocks += len(es.buf)
	}
	heldBlocks := 0
	for _, st := range s.states {
		heldBlocks += len(st.held)
	}
	partials := s.ctx.Pool.PendingPartials()
	refs := len(s.rc)
	if s.ctx.Run != nil {
		s.ctx.Run.SetLeaks(int64(bufBlocks+heldBlocks+partials), int64(refs))
	}
	if s.runErr == nil && bufBlocks+heldBlocks+partials+refs > 0 {
		s.runErr = fmt.Errorf("core: invariant violation after run: %d edge-buffered, %d held, %d partial blocks leaked, %d outstanding block refs",
			bufBlocks, heldBlocks, partials, refs)
	}
}

func (s *sched) decRef(b *storage.Block) {
	n, ok := s.rc[b]
	if !ok {
		return
	}
	n--
	if n > 0 {
		s.rc[b] = n
		return
	}
	delete(s.rc, b)
	s.ctx.Pool.Release(b)
	if s.ctx.Sim != nil {
		s.ctx.Sim.Evict(b)
	}
}
