package core

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// Run executes a plan: a single scheduler goroutine dispatches work orders
// to ctx.Workers worker goroutines, routing producer output blocks to
// consumers in groups of UoT blocks per pipelined edge (defaultUoT applies
// to edges that do not override it). Run returns after every operator has
// finished, or after the first work-order failure.
func Run(plan *Plan, ctx *ExecCtx, defaultUoT int) error {
	if defaultUoT <= 0 {
		defaultUoT = 1
	}
	if ctx.Workers <= 0 {
		ctx.Workers = 1
	}
	s := &sched{plan: plan, ctx: ctx}
	s.build(defaultUoT)
	return s.run()
}

type job struct {
	op OpID
	wo WorkOrder
}

type wres struct {
	op     OpID
	wo     WorkOrder
	out    *Output
	start  time.Time
	end    time.Time
	worker int
	err    error
}

type edgeState struct {
	e            Edge
	uot          int
	buf          []*storage.Block
	producerDone bool
	delivered    bool // inputsOpen decremented at consumer
}

type opState struct {
	id          OpID
	op          Operator
	deps        int
	inputsOpen  int
	depth       int // longest pipelined-edge distance from a leaf
	started     bool
	inflight    int
	queued      int
	finalIssued bool
	done        bool
	maxDOP      int
	out         []*edgeState
	held        map[*storage.Block]struct{}
	scalarSlots []int
}

type sched struct {
	plan *Plan
	ctx  *ExecCtx

	states   []*opState
	edges    []*edgeState
	queue    []job
	rc       map[*storage.Block]int
	doneOps  int
	inflight int
	runErr   error

	dispatch chan job
	results  chan wres
}

func (s *sched) build(defaultUoT int) {
	s.rc = make(map[*storage.Block]int)
	s.states = make([]*opState, len(s.plan.Ops))
	for i, op := range s.plan.Ops {
		s.states[i] = &opState{
			id:   OpID(i),
			op:   op,
			held: make(map[*storage.Block]struct{}),
		}
		if s.plan.MaxDOP != nil {
			s.states[i].maxDOP = s.plan.MaxDOP[OpID(i)]
		}
	}
	for _, e := range s.plan.Edges {
		switch e.Kind {
		case Pipelined:
			uot := e.UoT
			if uot == 0 {
				uot = defaultUoT
			}
			es := &edgeState{e: e, uot: uot}
			s.edges = append(s.edges, es)
			s.states[e.From].out = append(s.states[e.From].out, es)
			s.states[e.To].inputsOpen++
		case Blocking:
			es := &edgeState{e: e}
			s.edges = append(s.edges, es)
			s.states[e.From].out = append(s.states[e.From].out, es)
			s.states[e.To].deps++
		}
	}
	for slot, op := range s.plan.ScalarSlots {
		s.states[op].scalarSlots = append(s.states[op].scalarSlots, slot)
	}
	// Operator depth orders dispatch: a consumer's work orders take
	// priority over queued producer work orders, so with a low UoT a
	// consumer runs "as soon as it is available" (Section III-C) instead
	// of starving behind the producer's backlog. Plans are DAGs, so a
	// fixed number of relaxation rounds converges.
	for round := 0; round < len(s.states); round++ {
		changed := false
		for _, e := range s.plan.Edges {
			if e.Kind != Pipelined {
				continue
			}
			if d := s.states[e.From].depth + 1; d > s.states[e.To].depth {
				s.states[e.To].depth = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (s *sched) run() error {
	if n := len(s.plan.ScalarSlots); len(s.ctx.Scalars) < n {
		s.ctx.Scalars = make([]types.Datum, n)
	}
	for _, st := range s.states {
		st.op.Init(s.ctx)
	}
	for _, st := range s.states {
		if st.deps == 0 {
			s.startOp(st)
		}
	}

	s.dispatch = make(chan job)
	s.results = make(chan wres, s.ctx.Workers)
	for w := 0; w < s.ctx.Workers; w++ {
		go s.worker(w)
	}
	defer close(s.dispatch)

	for s.doneOps < len(s.states) {
		ji := s.pickJob()
		if ji < 0 {
			if s.inflight == 0 {
				if s.runErr != nil {
					return s.runErr
				}
				var stuck []string
				for _, st := range s.states {
					if !st.done {
						stuck = append(stuck, fmt.Sprintf("%s{started=%v deps=%d inputsOpen=%d}",
							st.op.Name(), st.started, st.deps, st.inputsOpen))
					}
				}
				return fmt.Errorf("core: scheduler stalled with %d/%d operators done (plan bug: unreachable operator or missing edge): %v",
					s.doneOps, len(s.states), stuck)
			}
			s.onComplete(<-s.results)
			continue
		}
		j := s.queue[ji]
		select {
		case s.dispatch <- j:
			s.queue = append(s.queue[:ji], s.queue[ji+1:]...)
			s.states[j.op].queued--
			s.states[j.op].inflight++
			s.inflight++
		case r := <-s.results:
			s.onComplete(r)
		}
	}
	// Drain any stragglers (only possible after an error cleared the queue).
	for s.inflight > 0 {
		s.onComplete(<-s.results)
	}
	return s.runErr
}

// pickJob returns the index of the dispatchable queued job belonging to the
// deepest operator (consumer priority), breaking ties by queue order; -1 if
// nothing is dispatchable. After an error, nothing is dispatchable.
//
// When a temp-memory budget is set (a Section III-C scheduler policy) and
// live intermediate bytes exceed it, producer work orders — jobs of
// operators that are not at maximal depth among the queued jobs — are held
// back so consumers can drain buffered blocks first; if the queue holds only
// producers, one is dispatched anyway to guarantee progress.
func (s *sched) pickJob() int {
	if s.runErr != nil {
		return -1
	}
	best, bestDepth := -1, -1
	for i, j := range s.queue {
		st := s.states[j.op]
		if st.maxDOP != 0 && st.inflight >= st.maxDOP {
			continue
		}
		if st.depth > bestDepth {
			best, bestDepth = i, st.depth
		}
	}
	if best >= 0 && s.overBudget() && s.inflight > 0 && s.producesBlocks(s.queue[best].op) {
		// Hold back block-producing work while over budget; the in-flight
		// work orders (consumers, by depth priority) will complete,
		// release their input blocks, and unblock the queue. inflight > 0
		// guarantees progress.
		return -1
	}
	return best
}

func (s *sched) overBudget() bool {
	return s.ctx.MemoryBudget > 0 && s.ctx.Run != nil &&
		s.ctx.Run.Intermediates.Live() > s.ctx.MemoryBudget
}

// producesBlocks reports whether an operator feeds pipelined consumers (its
// output occupies temp-block memory until drained).
func (s *sched) producesBlocks(id OpID) bool {
	for _, es := range s.states[id].out {
		if es.e.Kind == Pipelined {
			return true
		}
	}
	return false
}

func (s *sched) worker(id int) {
	lastOp := OpID(-1)
	for j := range s.dispatch {
		out := &Output{}
		if s.ctx.Sim != nil && j.op != lastOp {
			// A worker switching operators re-fills the instruction
			// cache: the IC term of the Section V model.
			out.Sim += s.ctx.Sim.ContextSwitch()
		}
		lastOp = j.op
		start := now()
		err := runSafely(j.wo, s.ctx, out)
		s.results <- wres{op: j.op, wo: j.wo, out: out, start: start, end: now(), worker: id, err: err}
	}
}

func runSafely(wo WorkOrder, ctx *ExecCtx, out *Output) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: work order panicked: %v", r)
		}
	}()
	wo.Run(ctx, out)
	return nil
}

func (s *sched) onComplete(r wres) {
	st := s.states[r.op]
	st.inflight--
	s.inflight--
	if r.err != nil && s.runErr == nil {
		s.runErr = r.err
		s.queue = nil
		for _, o := range s.states {
			o.queued = 0
		}
	}
	if s.ctx.Run != nil {
		s.ctx.Run.Record(stats.WorkOrder{
			OpID:        int(r.op),
			OpName:      st.op.Name(),
			Worker:      r.worker,
			Start:       r.start,
			End:         r.end,
			Sim:         r.out.Sim,
			Rows:        r.out.RowsIn,
			RowsOut:     r.out.RowsOut,
			ShardLocks:  r.out.ShardLocks,
			BatchedRows: r.out.BatchedRows,
			ScratchHits: r.out.ScratchHits,

			AggPartials:     r.out.AggPartials,
			AggMergeFanout:  r.out.AggMergeFanout,
			AggFastRows:     r.out.AggFastRows,
			AggFallbackRows: r.out.AggFallbackRows,
		})
	}
	// Release consumed intermediate blocks.
	for _, b := range r.wo.Inputs() {
		if _, ok := st.held[b]; ok {
			delete(st.held, b)
			s.decRef(b)
		}
	}
	if s.runErr == nil {
		s.emit(st, r.out.Blocks)
	}
	s.check(st)
}

// emit routes blocks produced by st into its outgoing pipelined edges.
func (s *sched) emit(st *opState, blocks []*storage.Block) {
	if len(blocks) == 0 {
		return
	}
	// Reference count = number of non-adopting pipelined consumers.
	refs := 0
	for _, es := range st.out {
		if es.e.Kind == Pipelined && !s.states[es.e.To].op.AdoptsInputs() {
			refs++
		}
	}
	for _, b := range blocks {
		if refs > 0 {
			s.rc[b] = refs
		}
	}
	for _, es := range st.out {
		if es.e.Kind != Pipelined {
			continue
		}
		es.buf = append(es.buf, blocks...)
		s.tryFlush(es)
	}
}

// tryFlush hands buffered blocks to the consumer in UoT-sized groups.
func (s *sched) tryFlush(es *edgeState) {
	c := s.states[es.e.To]
	if !c.started {
		return
	}
	for es.uot != UoTTable && len(es.buf) >= es.uot {
		chunk := es.buf[:es.uot:es.uot]
		es.buf = es.buf[es.uot:]
		s.deliver(c, es.e.ToInput, chunk)
	}
	if es.producerDone {
		if len(es.buf) > 0 {
			chunk := es.buf
			es.buf = nil
			s.deliver(c, es.e.ToInput, chunk)
		}
		if !es.delivered {
			es.delivered = true
			c.inputsOpen--
			s.check(c)
		}
	}
}

func (s *sched) deliver(c *opState, input int, blocks []*storage.Block) {
	if !c.op.AdoptsInputs() {
		for _, b := range blocks {
			if _, ok := s.rc[b]; ok {
				c.held[b] = struct{}{}
			}
		}
	}
	s.enqueue(c, c.op.Feed(s.ctx, input, blocks))
}

func (s *sched) enqueue(st *opState, wos []WorkOrder) {
	if s.runErr != nil {
		return
	}
	for _, wo := range wos {
		s.queue = append(s.queue, job{op: st.id, wo: wo})
	}
	st.queued += len(wos)
}

func (s *sched) startOp(st *opState) {
	st.started = true
	s.enqueue(st, st.op.Start(s.ctx))
	for _, es := range s.edges {
		if es.e.Kind == Pipelined && es.e.To == st.id {
			s.tryFlush(es)
		}
	}
	s.check(st)
}

// check advances an operator through final work orders to completion.
func (s *sched) check(st *opState) {
	if st.done || !st.started {
		return
	}
	if st.inputsOpen > 0 || st.inflight > 0 || st.queued > 0 {
		return
	}
	if !st.finalIssued {
		st.finalIssued = true
		if wos := st.op.Final(s.ctx); len(wos) > 0 {
			s.enqueue(st, wos)
			return
		}
	}
	s.finish(st)
}

func (s *sched) finish(st *opState) {
	st.done = true
	s.doneOps++

	// Publish scalar results before unblocking dependents.
	for _, slot := range st.scalarSlots {
		v, ok := st.op.ScalarValue()
		if !ok {
			if s.runErr == nil {
				s.runErr = fmt.Errorf("core: operator %q registered for scalar slot %d produced no scalar", st.op.Name(), slot)
			}
		} else {
			s.ctx.Scalars[slot] = v
		}
	}

	// Partially-filled output blocks are transferred at operator end.
	if s.runErr == nil {
		parts := s.ctx.Pool.TakePartials(int(st.id))
		s.emit(st, parts)
	}

	st.op.Cleanup(s.ctx)

	for _, es := range st.out {
		switch es.e.Kind {
		case Pipelined:
			es.producerDone = true
			s.tryFlush(es)
		case Blocking:
			c := s.states[es.e.To]
			c.deps--
			if c.deps == 0 && !c.started {
				s.startOp(c)
			}
		}
	}

	// Blocks this operator buffered but never consumed through work orders.
	for b := range st.held {
		delete(st.held, b)
		s.decRef(b)
	}
}

func (s *sched) decRef(b *storage.Block) {
	n, ok := s.rc[b]
	if !ok {
		return
	}
	n--
	if n > 0 {
		s.rc[b] = n
		return
	}
	delete(s.rc, b)
	s.ctx.Pool.Release(b)
	if s.ctx.Sim != nil {
		s.ctx.Sim.Evict(b)
	}
}
