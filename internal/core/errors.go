package core

import (
	"context"
	"errors"
	"fmt"
)

// Typed error taxonomy for query termination. Every way a query can stop
// short of success maps to exactly one sentinel, and every concrete error the
// scheduler returns matches its sentinel through errors.Is, so callers (the
// serving layer above all) branch on identity instead of parsing message
// strings:
//
//	res, err := session.Submit(req)
//	switch {
//	case errors.Is(err, session.ErrAdmissionRejected): // shed before running
//	case errors.Is(err, core.ErrQueryCancelled):       // caller cancelled
//	case errors.Is(err, core.ErrDeadlineExceeded):     // query or WO deadline
//	case errors.Is(err, core.ErrMemoryBudget):         // cannot fit the budget
//	}
//
// The concrete wrappers keep their full cause chains, so the pre-existing
// checks (errors.Is(err, context.Canceled), errors.As(&DeadlineError{}))
// continue to hold alongside the sentinels.
var (
	// ErrQueryCancelled marks a query terminated by caller cancellation
	// (context cancellation, session shutdown).
	ErrQueryCancelled = errors.New("query cancelled")
	// ErrDeadlineExceeded marks a query terminated by a deadline: the
	// run context's deadline, or a work-order deadline that exhausted its
	// retry budget.
	ErrDeadlineExceeded = errors.New("deadline exceeded")
	// ErrMemoryBudget marks a query that cannot be run within the
	// configured memory budget (admission-time rejection of an estimate
	// that exceeds the global budget).
	ErrMemoryBudget = errors.New("memory budget exceeded")
)

// CancelError is the scheduler's run-termination error for a canceled or
// timed-out run context. It replaces the former ad-hoc
// fmt.Errorf("core: run canceled: %w", ...) string: the cause chain is
// preserved (errors.Is against context.Canceled / context.DeadlineExceeded
// still holds), and the error additionally matches the typed taxonomy —
// ErrDeadlineExceeded when the context died of its deadline,
// ErrQueryCancelled otherwise.
type CancelError struct {
	// Cause is the context error (or an error wrapping it) that killed the
	// run.
	Cause error
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("core: run canceled: %v", e.Cause)
}

// Unwrap exposes the context error, keeping errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) intact.
func (e *CancelError) Unwrap() error { return e.Cause }

// Is maps the cancellation onto the typed taxonomy.
func (e *CancelError) Is(target error) bool {
	switch target {
	case ErrDeadlineExceeded:
		return errors.Is(e.Cause, context.DeadlineExceeded)
	case ErrQueryCancelled:
		return !errors.Is(e.Cause, context.DeadlineExceeded)
	}
	return false
}

// wrapCancel converts a fatal run error into its typed form: context errors
// (and errors wrapping them) become CancelError; everything else is returned
// unchanged.
func wrapCancel(err error) error {
	if err == nil {
		return nil
	}
	var ce *CancelError
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &CancelError{Cause: err}
	}
	return err
}
