package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

var testSchema = storage.NewSchema(storage.Column{Name: "k", Type: types.Int64})

func newCtx(workers int) *ExecCtx {
	run := stats.NewRun()
	return &ExecCtx{
		Pool:           storage.NewPool(&run.Intermediates, run.AddCheckout),
		Run:            run,
		TempBlockBytes: 64,
		TempFormat:     storage.RowStore,
		Workers:        workers,
	}
}

// producer emits nblocks blocks of rows each via its Start work orders.
type producer struct {
	Base
	nblocks int
	rows    int
	perWO   int // blocks per work order (default 1)
}

func (p *producer) Name() string   { return "producer" }
func (p *producer) NumInputs() int { return 0 }

func (p *producer) Start(*ExecCtx) []WorkOrder {
	per := p.perWO
	if per <= 0 {
		per = 1
	}
	var wos []WorkOrder
	for i := 0; i < p.nblocks; i += per {
		n := per
		if i+n > p.nblocks {
			n = p.nblocks - i
		}
		wos = append(wos, &produceWO{rows: p.rows, blocks: n, base: i})
	}
	return wos
}

type produceWO struct {
	rows, blocks, base int
}

func (w *produceWO) Inputs() []*storage.Block { return nil }

func (w *produceWO) Run(_ *ExecCtx, out *Output) error {
	for b := 0; b < w.blocks; b++ {
		blk := storage.NewBlock(testSchema, storage.RowStore, w.rows*8)
		for r := 0; r < w.rows; r++ {
			blk.AppendRow(types.NewInt64(int64(w.base*w.rows + b*w.rows + r)))
		}
		out.Blocks = append(out.Blocks, blk)
	}
	return nil
}

// consumer records the size of every Feed group and counts rows via work
// orders.
type consumer struct {
	Base
	mu        sync.Mutex
	feedSizes []int
	rows      int64
	started   time.Time
	finalAt   time.Time
}

func (c *consumer) Name() string   { return "consumer" }
func (c *consumer) NumInputs() int { return 1 }

func (c *consumer) Start(*ExecCtx) []WorkOrder {
	c.started = time.Now()
	return nil
}

func (c *consumer) Feed(_ *ExecCtx, _ int, blocks []*storage.Block) []WorkOrder {
	c.mu.Lock()
	c.feedSizes = append(c.feedSizes, len(blocks))
	c.mu.Unlock()
	wos := make([]WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &consumeWO{c: c, b: b}
	}
	return wos
}

func (c *consumer) Final(*ExecCtx) []WorkOrder {
	c.finalAt = time.Now()
	return nil
}

type consumeWO struct {
	c *consumer
	b *storage.Block
}

func (w *consumeWO) Inputs() []*storage.Block { return []*storage.Block{w.b} }

func (w *consumeWO) Run(_ *ExecCtx, out *Output) error {
	n := int64(w.b.NumRows())
	atomic.AddInt64(&w.c.rows, n)
	out.RowsIn = n
	return nil
}

func pipePlan(p *producer, c *consumer, uot int) *Plan {
	plan := &Plan{}
	pid := plan.AddOp(p)
	cid := plan.AddOp(c)
	plan.Pipe(pid, cid, 0, uot)
	return plan
}

func TestUoTBatching(t *testing.T) {
	cases := []struct {
		uot       int
		blocks    int
		wantFeeds []int
	}{
		{1, 5, []int{1, 1, 1, 1, 1}},
		{2, 5, []int{2, 2, 1}}, // remainder at producer end
		{3, 9, []int{3, 3, 3}},
		{UoTTable, 5, []int{5}}, // whole intermediate table at once
		{10, 5, []int{5}},       // UoT larger than output behaves like table
	}
	for _, tc := range cases {
		p := &producer{nblocks: tc.blocks, rows: 4}
		c := &consumer{}
		if err := Run(pipePlan(p, c, tc.uot), newCtx(1), 1); err != nil {
			t.Fatalf("uot=%d: %v", tc.uot, err)
		}
		if len(c.feedSizes) != len(tc.wantFeeds) {
			t.Fatalf("uot=%d: feeds %v, want %v", tc.uot, c.feedSizes, tc.wantFeeds)
		}
		for i := range c.feedSizes {
			if c.feedSizes[i] != tc.wantFeeds[i] {
				t.Fatalf("uot=%d: feeds %v, want %v", tc.uot, c.feedSizes, tc.wantFeeds)
			}
		}
		if c.rows != int64(tc.blocks*4) {
			t.Fatalf("uot=%d: rows %d, want %d", tc.uot, c.rows, tc.blocks*4)
		}
	}
}

func TestDefaultUoTAppliesToUnsetEdges(t *testing.T) {
	p := &producer{nblocks: 6, rows: 2}
	c := &consumer{}
	if err := Run(pipePlan(p, c, 0), newCtx(1), 3); err != nil { // edge UoT 0 -> default 3
		t.Fatal(err)
	}
	if len(c.feedSizes) != 2 || c.feedSizes[0] != 3 {
		t.Fatalf("feeds = %v, want [3 3]", c.feedSizes)
	}
}

func TestEveryBlockDeliveredExactlyOnceConcurrent(t *testing.T) {
	for _, uot := range []int{1, 2, 7, UoTTable} {
		p := &producer{nblocks: 40, rows: 3}
		c := &consumer{}
		if err := Run(pipePlan(p, c, uot), newCtx(8), 1); err != nil {
			t.Fatalf("uot=%d: %v", uot, err)
		}
		if c.rows != 120 {
			t.Fatalf("uot=%d: rows = %d, want 120", uot, c.rows)
		}
		total := 0
		for _, s := range c.feedSizes {
			total += s
		}
		if total != 40 {
			t.Fatalf("uot=%d: delivered %d blocks, want 40", uot, total)
		}
	}
}

// blockingConsumer observes when it is allowed to start.
type gated struct {
	Base
	startedAt atomic.Int64
}

func (g *gated) Name() string   { return "gated" }
func (g *gated) NumInputs() int { return 0 }
func (g *gated) Start(*ExecCtx) []WorkOrder {
	g.startedAt.Store(time.Now().UnixNano())
	return nil
}

// slowProducer emits blocks with a delay so ordering is observable.
type slowProducer struct {
	producer
	doneAt atomic.Int64
}

func (p *slowProducer) Name() string { return "slow" }
func (p *slowProducer) Start(ctx *ExecCtx) []WorkOrder {
	return []WorkOrder{&slowWO{p: p}}
}

type slowWO struct{ p *slowProducer }

func (w *slowWO) Inputs() []*storage.Block { return nil }
func (w *slowWO) Run(*ExecCtx, *Output) error {
	time.Sleep(20 * time.Millisecond)
	w.p.doneAt.Store(time.Now().UnixNano())
	return nil
}

func TestBlockingEdgeGatesStart(t *testing.T) {
	plan := &Plan{}
	sp := &slowProducer{}
	g := &gated{}
	pid := plan.AddOp(sp)
	gid := plan.AddOp(g)
	plan.Block(pid, gid)
	if err := Run(plan, newCtx(4), 1); err != nil {
		t.Fatal(err)
	}
	if g.startedAt.Load() < sp.doneAt.Load() {
		t.Fatal("gated operator started before its blocking dependency finished")
	}
}

// scalarProvider provides a fixed scalar.
type scalarProvider struct {
	Base
	v types.Datum
}

func (s *scalarProvider) Name() string                     { return "scalar" }
func (s *scalarProvider) NumInputs() int                   { return 0 }
func (s *scalarProvider) ScalarValue() (types.Datum, bool) { return s.v, true }

// scalarReader asserts the scalar is visible when it starts.
type scalarReader struct {
	Base
	slot int
	got  types.Datum
}

func (s *scalarReader) Name() string   { return "reader" }
func (s *scalarReader) NumInputs() int { return 0 }
func (s *scalarReader) Start(ctx *ExecCtx) []WorkOrder {
	s.got = ctx.Scalars[s.slot]
	return nil
}

func TestScalarSlotFilledBeforeDependentStarts(t *testing.T) {
	plan := &Plan{}
	p := &scalarProvider{v: types.NewFloat64(42.5)}
	pid := plan.AddOp(p)
	slot := plan.AddScalar(pid)
	r := &scalarReader{slot: slot}
	rid := plan.AddOp(r)
	plan.Block(pid, rid)
	if err := Run(plan, newCtx(2), 1); err != nil {
		t.Fatal(err)
	}
	if r.got.F != 42.5 {
		t.Fatalf("scalar = %v, want 42.5", r.got)
	}
}

func TestCycleReportsStall(t *testing.T) {
	plan := &Plan{}
	a := &gated{}
	b := &gated{}
	aid := plan.AddOp(a)
	bid := plan.AddOp(b)
	plan.Block(aid, bid)
	plan.Block(bid, aid)
	err := Run(plan, newCtx(2), 1)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("want stall error, got %v", err)
	}
}

type panicOp struct{ Base }

func (p *panicOp) Name() string   { return "panic" }
func (p *panicOp) NumInputs() int { return 0 }
func (p *panicOp) Start(*ExecCtx) []WorkOrder {
	return []WorkOrder{panicWO{}}
}

type panicWO struct{}

func (panicWO) Inputs() []*storage.Block    { return nil }
func (panicWO) Run(*ExecCtx, *Output) error { panic("boom") }

func TestWorkOrderPanicBecomesError(t *testing.T) {
	plan := &Plan{}
	plan.AddOp(&panicOp{})
	// A second healthy operator must not hang the run.
	plan.AddOp(&producer{nblocks: 3, rows: 1})
	err := Run(plan, newCtx(4), 1)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

// dopOp tracks its own concurrency.
type dopOp struct {
	Base
	cur, max atomic.Int64
	n        int
}

func (d *dopOp) Name() string   { return "dop" }
func (d *dopOp) NumInputs() int { return 0 }
func (d *dopOp) Start(*ExecCtx) []WorkOrder {
	wos := make([]WorkOrder, d.n)
	for i := range wos {
		wos[i] = &dopWO{d: d}
	}
	return wos
}

type dopWO struct{ d *dopOp }

func (w *dopWO) Inputs() []*storage.Block { return nil }
func (w *dopWO) Run(*ExecCtx, *Output) error {
	c := w.d.cur.Add(1)
	for {
		m := w.d.max.Load()
		if c <= m || w.d.max.CompareAndSwap(m, c) {
			break
		}
	}
	time.Sleep(time.Millisecond)
	w.d.cur.Add(-1)
	return nil
}

func TestMaxDOPCap(t *testing.T) {
	plan := &Plan{}
	d := &dopOp{n: 12}
	id := plan.AddOp(d)
	plan.MaxDOP = map[OpID]int{id: 2}
	if err := Run(plan, newCtx(8), 1); err != nil {
		t.Fatal(err)
	}
	if got := d.max.Load(); got > 2 {
		t.Fatalf("observed DOP %d exceeds cap 2", got)
	}
	// And without the cap, 8 workers should overlap more than 2.
	plan2 := &Plan{}
	d2 := &dopOp{n: 12}
	plan2.AddOp(d2)
	if err := Run(plan2, newCtx(8), 1); err != nil {
		t.Fatal(err)
	}
	if got := d2.max.Load(); got <= 2 {
		t.Logf("uncapped DOP only reached %d (scheduler timing); not fatal", got)
	}
}

func TestStatsRecorded(t *testing.T) {
	p := &producer{nblocks: 4, rows: 2}
	c := &consumer{}
	ctx := newCtx(2)
	if err := Run(pipePlan(p, c, 1), ctx, 1); err != nil {
		t.Fatal(err)
	}
	per := ctx.Run.PerOp()
	if len(per) != 2 {
		t.Fatalf("PerOp = %d entries", len(per))
	}
	if per[0].Count != 4 || per[1].Count != 4 {
		t.Fatalf("work order counts: %+v", per)
	}
	if per[1].Rows != 8 {
		t.Fatalf("consumer rows = %d", per[1].Rows)
	}
}

func TestFanOutDeliversToAllConsumers(t *testing.T) {
	plan := &Plan{}
	p := &producer{nblocks: 6, rows: 2}
	c1 := &consumer{}
	c2 := &consumer{}
	pid := plan.AddOp(p)
	c1id := plan.AddOp(c1)
	c2id := plan.AddOp(c2)
	plan.Pipe(pid, c1id, 0, 2)
	plan.Pipe(pid, c2id, 0, UoTTable)
	if err := Run(plan, newCtx(4), 1); err != nil {
		t.Fatal(err)
	}
	if c1.rows != 12 || c2.rows != 12 {
		t.Fatalf("fan-out rows: %d, %d", c1.rows, c2.rows)
	}
	if len(c2.feedSizes) != 1 || c2.feedSizes[0] != 6 {
		t.Fatalf("table-UoT consumer feeds = %v", c2.feedSizes)
	}
}
