package exec

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// aggVecSchema is the fixture for the vectorized-aggregation equivalence
// tests: two int group keys, a date key, a float measure (dyadic rationals so
// sums are exact under any accumulation order), and an int measure.
func aggVecSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "g1", Type: types.Int64},
		storage.Column{Name: "g2", Type: types.Int64},
		storage.Column{Name: "d", Type: types.Date},
		storage.Column{Name: "v", Type: types.Float64},
		storage.Column{Name: "i", Type: types.Int64},
	)
}

func aggVecBlocks(s *storage.Schema, format storage.Format, nBlocks, rowsPer int, seed int64) []*storage.Block {
	rng := rand.New(rand.NewSource(seed))
	blocks := make([]*storage.Block, nBlocks)
	for bi := range blocks {
		b := storage.NewBlock(s, format, rowsPer*s.RowWidth()+256)
		for r := 0; r < rowsPer; r++ {
			b.AppendRow(
				types.NewInt64(int64(rng.Intn(37))),
				types.NewInt64(int64(rng.Intn(5))),
				types.NewDate(int32(10000+rng.Intn(40))),
				types.NewFloat64(float64(rng.Intn(2048)-1024)/8),
				types.NewInt64(int64(rng.Intn(1000)-500)),
			)
		}
		blocks[bi] = b
	}
	return blocks
}

func eqDatum(a, b types.Datum) bool {
	return a.Ty == b.Ty && a.I == b.I && a.F == b.F && string(a.Bytes()) == string(b.Bytes())
}

func sortByKeys(rows [][]types.Datum, nKeys int) {
	sort.Slice(rows, func(i, j int) bool {
		for k := 0; k < nKeys; k++ {
			if c := types.Compare(rows[i][k], rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// requireSameRows compares two result sets after sorting by the group keys.
func requireSameRows(t *testing.T, got, want [][]types.Datum, nKeys int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row counts differ: fast %d, reference %d", len(got), len(want))
	}
	sortByKeys(got, nKeys)
	sortByKeys(want, nKeys)
	for r := range got {
		for c := range got[r] {
			if !eqDatum(got[r][c], want[r][c]) {
				t.Fatalf("row %d col %d: fast %+v, reference %+v\nfast row: %v\nref row:  %v",
					r, c, got[r][c], want[r][c], got[r], want[r])
			}
		}
	}
}

// runAggBoth builds a fast and a ForceReference operator from the same spec,
// runs both over the same blocks, and returns (fastRows, refRows).
func runAggBoth(t *testing.T, spec AggOpSpec, blocks []*storage.Block) ([][]types.Datum, [][]types.Datum) {
	t.Helper()
	fast := NewAgg(spec)
	fast.setID(10)
	if !fast.FastPath() {
		t.Fatal("operator did not qualify for the vectorized path")
	}
	refSpec := spec
	refSpec.ForceReference = true
	ref := NewAgg(refSpec)
	ref.setID(11)
	if ref.FastPath() {
		t.Fatal("ForceReference did not disable the vectorized path")
	}
	fastRows := allRows(runOp(t, execCtx(), fast, 10, blocks...))
	refRows := allRows(runOp(t, execCtx(), ref, 11, blocks...))
	return fastRows, refRows
}

func allAggSpecs(s *storage.Schema) []AggSpec {
	return []AggSpec{
		{Func: Count, Name: "cnt"},
		{Func: Count, Arg: expr.C(s, "i"), Name: "cnt_i"},
		{Func: Sum, Arg: expr.C(s, "i"), Name: "sum_i"},
		{Func: Sum, Arg: expr.C(s, "v"), Name: "sum_v"},
		{Func: Avg, Arg: expr.C(s, "i"), Name: "avg_i"},
		{Func: Avg, Arg: expr.C(s, "v"), Name: "avg_v"},
		{Func: Min, Arg: expr.C(s, "i"), Name: "min_i"},
		{Func: Max, Arg: expr.C(s, "i"), Name: "max_i"},
		{Func: Min, Arg: expr.C(s, "v"), Name: "min_v"},
		{Func: Max, Arg: expr.C(s, "v"), Name: "max_v"},
		{Func: Min, Arg: expr.C(s, "d"), Name: "min_d"},
		{Func: Max, Arg: expr.C(s, "d"), Name: "max_d"},
	}
}

func TestAggVecEquivalenceAllFuncs(t *testing.T) {
	s := aggVecSchema()
	for _, format := range []storage.Format{storage.ColumnStore, storage.RowStore} {
		blocks := aggVecBlocks(s, format, 8, 300, 42)
		fast, ref := runAggBoth(t, AggOpSpec{
			Name: "agg", InputSchema: s,
			GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
			Aggs: allAggSpecs(s),
		}, blocks)
		requireSameRows(t, fast, ref, 1)
	}
}

func TestAggVecEquivalenceTwoKeys(t *testing.T) {
	s := aggVecSchema()
	blocks := aggVecBlocks(s, storage.ColumnStore, 6, 257, 7)
	fast, ref := runAggBoth(t, AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy:      []expr.Expr{expr.C(s, "g1"), expr.C(s, "g2")},
		GroupByNames: []string{"g1", "g2"},
		Aggs: []AggSpec{
			{Func: Sum, Arg: expr.C(s, "v"), Name: "s"},
			{Func: Count, Name: "c"},
			{Func: Min, Arg: expr.C(s, "i"), Name: "mn"},
		},
	}, blocks)
	requireSameRows(t, fast, ref, 2)
}

func TestAggVecEquivalenceDateKey(t *testing.T) {
	s := aggVecSchema()
	blocks := aggVecBlocks(s, storage.ColumnStore, 4, 200, 13)
	fast, ref := runAggBoth(t, AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy:      []expr.Expr{expr.C(s, "d"), expr.C(s, "g2")},
		GroupByNames: []string{"d", "g2"},
		Aggs: []AggSpec{
			{Func: Sum, Arg: expr.C(s, "v"), Name: "s"},
			{Func: Max, Arg: expr.C(s, "d"), Name: "mx"},
		},
	}, blocks)
	requireSameRows(t, fast, ref, 2)
	// Date keys must come back typed as dates.
	if len(fast) == 0 || fast[0][0].Ty != types.Date {
		t.Fatalf("date group key lost its type: %+v", fast[0][0])
	}
}

func TestAggVecEquivalenceComputedArg(t *testing.T) {
	// Computed (non-ColRef) arguments take the per-row Eval branch of the
	// fast path but still accumulate into fixed-width cells.
	s := aggVecSchema()
	blocks := aggVecBlocks(s, storage.ColumnStore, 4, 128, 21)
	fast, ref := runAggBoth(t, AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
		Aggs: []AggSpec{
			{Func: Sum, Arg: expr.MulE(expr.C(s, "v"), expr.Float(2)), Name: "s2"},
			{Func: Min, Arg: expr.MulE(expr.C(s, "v"), expr.Float(4)), Name: "mn4"},
		},
	}, blocks)
	requireSameRows(t, fast, ref, 1)
}

func TestAggVecEmptyInputGrouped(t *testing.T) {
	s := aggVecSchema()
	fast, ref := runAggBoth(t, AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
		Aggs: []AggSpec{{Func: Count, Name: "c"}},
	}, nil)
	if len(fast) != 0 || len(ref) != 0 {
		t.Fatalf("grouped aggregation over empty input emitted rows: fast %d, ref %d", len(fast), len(ref))
	}
}

func TestAggVecScalarEquivalence(t *testing.T) {
	s := aggVecSchema()
	spec := AggOpSpec{
		Name: "agg", InputSchema: s,
		Aggs: []AggSpec{
			{Func: Avg, Arg: expr.C(s, "v"), Name: "a"},
			{Func: Sum, Arg: expr.C(s, "i"), Name: "s"},
			{Func: Min, Arg: expr.C(s, "v"), Name: "mn"},
			{Func: Count, Name: "c"},
		},
	}
	blocks := aggVecBlocks(s, storage.ColumnStore, 5, 111, 3)
	fast, ref := runAggBoth(t, spec, blocks)
	requireSameRows(t, fast, ref, 0)

	// ScalarValue must match between paths.
	f := NewAgg(spec)
	f.setID(12)
	runOp(t, execCtx(), f, 12, blocks...)
	refSpec := spec
	refSpec.ForceReference = true
	r := NewAgg(refSpec)
	r.setID(13)
	runOp(t, execCtx(), r, 13, blocks...)
	fv, fok := f.ScalarValue()
	rv, rok := r.ScalarValue()
	if !fok || !rok || !eqDatum(fv, rv) {
		t.Fatalf("scalar values differ: fast %v(%v), reference %v(%v)", fv, fok, rv, rok)
	}
}

func TestAggVecScalarEmptyInput(t *testing.T) {
	// A scalar aggregate over empty input yields exactly one zero row on
	// both paths (min/max come back as unset typed datums).
	s := aggVecSchema()
	fast, ref := runAggBoth(t, AggOpSpec{
		Name: "agg", InputSchema: s,
		Aggs: []AggSpec{
			{Func: Count, Name: "c"},
			{Func: Sum, Arg: expr.C(s, "v"), Name: "s"},
			{Func: Min, Arg: expr.C(s, "i"), Name: "mn"},
		},
	}, nil)
	if len(fast) != 1 || len(ref) != 1 {
		t.Fatalf("empty scalar agg rows: fast %d, ref %d", len(fast), len(ref))
	}
	requireSameRows(t, fast, ref, 0)
}

func TestAggVecFallbackTriggers(t *testing.T) {
	s := aggVecSchema()
	cs := storage.NewSchema(
		storage.Column{Name: "g1", Type: types.Int64},
		storage.Column{Name: "tag", Type: types.Char, Width: 4},
		storage.Column{Name: "v", Type: types.Float64},
	)
	cases := []struct {
		name string
		spec AggOpSpec
	}{
		{"three keys", AggOpSpec{
			Name: "agg", InputSchema: s,
			GroupBy:      []expr.Expr{expr.C(s, "g1"), expr.C(s, "g2"), expr.C(s, "d")},
			GroupByNames: []string{"g1", "g2", "d"},
			Aggs:         []AggSpec{{Func: Count, Name: "c"}},
		}},
		{"char key", AggOpSpec{
			Name: "agg", InputSchema: cs,
			GroupBy: []expr.Expr{expr.C(cs, "tag")}, GroupByNames: []string{"tag"},
			Aggs: []AggSpec{{Func: Count, Name: "c"}},
		}},
		{"computed key", AggOpSpec{
			Name: "agg", InputSchema: s,
			GroupBy:      []expr.Expr{expr.MulE(expr.C(s, "v"), expr.Float(2))},
			GroupByNames: []string{"v2"},
			Aggs:         []AggSpec{{Func: Count, Name: "c"}},
		}},
		{"count distinct", AggOpSpec{
			Name: "agg", InputSchema: s,
			GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
			Aggs: []AggSpec{{Func: CountDistinct, Arg: expr.C(s, "i"), Name: "cd"}},
		}},
		{"char agg arg", AggOpSpec{
			Name: "agg", InputSchema: cs,
			GroupBy: []expr.Expr{expr.C(cs, "g1")}, GroupByNames: []string{"g1"},
			Aggs: []AggSpec{{Func: Min, Arg: expr.C(cs, "tag"), Name: "mn"}},
		}},
	}
	for _, tc := range cases {
		if NewAgg(tc.spec).FastPath() {
			t.Errorf("%s: expected the reference fallback, got the fast path", tc.name)
		}
	}
	// Sanity: the eligible shape does qualify.
	if !NewAgg(AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
		Aggs: []AggSpec{{Func: Sum, Arg: expr.C(s, "v"), Name: "s"}},
	}).FastPath() {
		t.Error("eligible spec did not take the fast path")
	}
}

// TestAggVecConcurrent runs the vectorized path with many concurrent work
// orders (run under -race): thread-local partials on the free-list, then the
// 16 radix merge work orders concurrently, and compares against the
// sequential reference path.
func TestAggVecConcurrent(t *testing.T) {
	s := aggVecSchema()
	const nBlocks, rowsPer, workers = 32, 256, 8
	blocks := aggVecBlocks(s, storage.ColumnStore, nBlocks, rowsPer, 99)
	spec := AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy:      []expr.Expr{expr.C(s, "g1"), expr.C(s, "g2")},
		GroupByNames: []string{"g1", "g2"},
		Aggs:         allAggSpecs(s),
	}
	op := NewAgg(spec)
	op.setID(20)
	if !op.FastPath() {
		t.Fatal("spec did not qualify for the fast path")
	}
	ctx := execCtx()
	ctx.Workers = workers
	op.Init(ctx)

	runConcurrent := func(wos []core.WorkOrder) []core.Output {
		outs := make([]core.Output, len(wos))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, wo := range wos {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, wo core.WorkOrder) {
				defer wg.Done()
				outs[i].Finish(wo.Run(ctx, &outs[i]))
				<-sem
			}(i, wo)
		}
		wg.Wait()
		return outs
	}

	feedOuts := runConcurrent(op.Feed(ctx, 0, blocks))
	finalOuts := runConcurrent(op.Final(ctx))

	var emitted []*storage.Block
	var fastRows, partials, fanout int64
	for _, o := range append(feedOuts, finalOuts...) {
		emitted = append(emitted, o.Blocks...)
		fastRows += o.AggFastRows
		partials += o.AggPartials
		fanout += o.AggMergeFanout
	}
	emitted = append(emitted, ctx.Pool.TakePartials(20)...)

	if fastRows != nBlocks*rowsPer {
		t.Errorf("AggFastRows = %d, want %d", fastRows, nBlocks*rowsPer)
	}
	if partials < 1 || partials > workers {
		t.Errorf("AggPartials = %d, want 1..%d (free-list reuse)", partials, workers)
	}
	if fanout != aggParts {
		t.Errorf("AggMergeFanout = %d, want %d", fanout, aggParts)
	}
	if op.MemBytes() <= 0 {
		t.Error("fast path did not account partial-table memory")
	}

	refSpec := spec
	refSpec.ForceReference = true
	ref := NewAgg(refSpec)
	ref.setID(21)
	refRows := allRows(runOp(t, execCtx(), ref, 21, blocks...))
	requireSameRows(t, allRows(emitted), refRows, 2)

	// Cleanup must release exactly what was accounted.
	op.Cleanup(ctx)
	if live := ctx.Run.HashTables.Live(); live != 0 {
		t.Errorf("hash-table gauge after Cleanup = %d, want 0", live)
	}
}

func TestAggRefFallbackCounters(t *testing.T) {
	s := aggVecSchema()
	blocks := aggVecBlocks(s, storage.ColumnStore, 2, 100, 5)
	op := NewAgg(AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
		Aggs:           []AggSpec{{Func: Count, Name: "c"}},
		ForceReference: true,
	})
	op.setID(22)
	ctx := execCtx()
	op.Init(ctx)
	var fallback int64
	for _, wo := range op.Feed(ctx, 0, blocks) {
		out := &core.Output{}
		out.Finish(wo.Run(ctx, out))
		fallback += out.AggFallbackRows
	}
	if fallback != 200 {
		t.Errorf("AggFallbackRows = %d, want 200", fallback)
	}
	if op.MemBytes() <= 0 {
		t.Error("reference path did not account group-map memory")
	}
}

// TestAggRefDistinctMemAccounting checks the merge footprint fix: adopted and
// merged distinct sets must grow the operator gauge.
func TestAggRefDistinctMemAccounting(t *testing.T) {
	s := aggVecSchema()
	mkOp := func() *AggOp {
		op := NewAgg(AggOpSpec{
			Name: "agg", InputSchema: s,
			GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
			Aggs: []AggSpec{{Func: CountDistinct, Arg: expr.C(s, "i"), Name: "cd"}},
		})
		op.setID(23)
		return op
	}
	blocks := aggVecBlocks(s, storage.ColumnStore, 4, 250, 17)
	distinct := mkOp()
	runOp(t, execCtx(), distinct, 23, blocks...)
	count := NewAgg(AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy: []expr.Expr{expr.C(s, "g1")}, GroupByNames: []string{"g1"},
		Aggs:           []AggSpec{{Func: Count, Name: "c"}},
		ForceReference: true,
	})
	count.setID(25)
	runOp(t, execCtx(), count, 25, blocks...)
	if distinct.MemBytes() <= count.MemBytes() {
		t.Errorf("distinct sets not accounted: distinct %d <= plain %d",
			distinct.MemBytes(), count.MemBytes())
	}
}
