package exec

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
)

// This file gives every relational operator a canonical semantic encoding,
// consumed by internal/reuse to fingerprint plan subtrees. The contract:
//
//   - Canon() must capture everything that affects the operator's OUTPUT —
//     expressions, key columns, join type, projections, output schema
//     (column names included: a spliced cache entry replays the stored
//     schema verbatim), aggregate functions, sort terms, limits, and for
//     base scans the scanned table's identity and data version.
//   - Canon() must NOT capture anything the golden harness proves
//     result-invariant: UoT values, worker counts, block sizes/formats,
//     adaptive-controller settings, expected-row hints, bloom/LIP sizing,
//     fast-path-vs-reference switches, or display names.
//
// Operators that don't implement Canon (sinks, exchanges, partition clones)
// make their subtree unfingerprintable, which the reuse layer treats as
// "never cache, never splice" — conservative and always correct.

// Canonical is implemented by operators that can describe themselves for
// subplan fingerprinting.
type Canonical interface {
	Canon() string
}

func canonExprs(es []expr.Expr) string {
	var sb strings.Builder
	for i, e := range es {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(e.String())
	}
	return sb.String()
}

func canonInts(xs []int) string { return fmt.Sprintf("%v", xs) }

// Canon implements Canonical. A base scan's identity is the scanned table's
// process-unique UID plus its data version, so reloading a dataset or
// mutating a table changes every fingerprint built over it.
func (o *SelectOp) Canon() string {
	var sb strings.Builder
	sb.WriteString("select|src=")
	if o.base != nil {
		fmt.Fprintf(&sb, "%d@%d", o.base.UID(), o.base.Version())
	} else {
		sb.WriteString("pipe")
	}
	sb.WriteString("|pred=")
	if o.pred != nil {
		sb.WriteString(o.pred.String())
	}
	sb.WriteString("|proj=")
	sb.WriteString(canonExprs(o.projExprs))
	if len(o.lips) > 0 {
		// LIP filters prune this operator's own output, so they are
		// semantic here; the referenced build's subtree is hashed through
		// its blocking edge, the key column is recorded in place.
		sb.WriteString("|lip=")
		for i, l := range o.lips {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", l.KeyCol)
		}
	}
	sb.WriteString("|out=")
	sb.WriteString(o.out.String())
	return sb.String()
}

// BaseTable returns the scanned base table (nil for a piped select); the
// reuse layer collects these as a cached entry's invalidation dependencies.
func (o *SelectOp) BaseTable() *storage.Table { return o.base }

// Canon implements Canonical. ExpectedRows, BuildBloom, and PartitionLocal
// are sizing/perf knobs with no effect on join results, so they are
// excluded.
func (o *BuildHashOp) Canon() string {
	return fmt.Sprintf("build|keys=%s|payload=%s|keyonly=%t",
		canonInts(o.keyCols), canonInts(o.payloadIdx), o.keyOnly)
}

// Canon implements Canonical. The build side's content is hashed through
// the blocking build→probe edge, not here.
func (o *ProbeOp) Canon() string {
	res := ""
	if o.residual != nil {
		res = o.residual.String()
	}
	return fmt.Sprintf("probe|keys=%s|type=%s|residual=%s|pproj=%s|bproj=%s|out=%s",
		canonInts(o.keyCols), o.joinType.String(), res,
		canonInts(o.probeProj), canonInts(o.buildProj), o.out.String())
}

// Canon implements Canonical. ForceReference and PartitionLocal pick
// equivalent execution paths and are excluded.
func (o *AggOp) Canon() string {
	var sb strings.Builder
	sb.WriteString("agg|group=")
	sb.WriteString(canonExprs(o.groupBy))
	sb.WriteString("|aggs=")
	for i, a := range o.aggs {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(aggNames[a.Func])
		sb.WriteByte('(')
		if a.Arg != nil {
			sb.WriteString(a.Arg.String())
		} else {
			sb.WriteByte('*')
		}
		sb.WriteByte(')')
	}
	sb.WriteString("|out=")
	sb.WriteString(o.out.String())
	return sb.String()
}

// Canon implements Canonical.
func (o *SortOp) Canon() string {
	var sb strings.Builder
	sb.WriteString("sort|terms=")
	for i, t := range o.terms {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(t.Key.String())
		if t.Desc {
			sb.WriteString(" desc")
		}
	}
	fmt.Fprintf(&sb, "|limit=%d|out=%s", o.limit, o.schema.String())
	return sb.String()
}
