package exec

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

func execCtx() *core.ExecCtx {
	run := stats.NewRun()
	return &core.ExecCtx{
		Pool:           storage.NewPool(&run.Intermediates, run.AddCheckout),
		Run:            run,
		TempBlockBytes: 4 << 10,
		TempFormat:     storage.RowStore,
		Workers:        1,
	}
}

func inputBlock(vals ...float64) (*storage.Schema, *storage.Block) {
	s := storage.NewSchema(
		storage.Column{Name: "g", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Float64},
		storage.Column{Name: "tag", Type: types.Char, Width: 4},
	)
	b := storage.NewBlock(s, storage.ColumnStore, 16<<10)
	tags := []string{"aa", "bb"}
	for i, v := range vals {
		b.AppendRow(types.NewInt64(int64(i%2)), types.NewFloat64(v), types.NewString(tags[i%2]))
	}
	return s, b
}

// runOp drives an operator by hand: feed blocks, run all work orders, then
// final work orders; returns all emitted blocks.
func runOp(t *testing.T, ctx *core.ExecCtx, op core.Operator, id core.OpID, blocks ...*storage.Block) []*storage.Block {
	t.Helper()
	op.Init(ctx)
	var emitted []*storage.Block
	runWOs := func(wos []core.WorkOrder) {
		for _, wo := range wos {
			out := &core.Output{}
			if err := wo.Run(ctx, out); err != nil {
				t.Fatalf("work order failed: %v", err)
			}
			out.Finish(nil)
			emitted = append(emitted, out.Blocks...)
		}
	}
	runWOs(op.Start(ctx))
	if len(blocks) > 0 {
		runWOs(op.Feed(ctx, 0, blocks))
	}
	runWOs(op.Final(ctx))
	if so, ok := op.(core.StagedOperator); ok {
		for stage := 0; ; stage++ {
			wos := so.NextStage(ctx, stage)
			if wos == nil {
				break
			}
			runWOs(wos)
		}
	}
	emitted = append(emitted, ctx.Pool.TakePartials(int(id))...)
	return emitted
}

func allRows(blocks []*storage.Block) [][]types.Datum {
	var out [][]types.Datum
	for _, b := range blocks {
		for r := 0; r < b.NumRows(); r++ {
			out = append(out, b.Row(r))
		}
	}
	return out
}

func TestAggAllFunctions(t *testing.T) {
	s, b := inputBlock(1, 2, 3, 4, 5) // group 0: 1,3,5; group 1: 2,4
	op := NewAgg(AggOpSpec{
		Name:         "agg",
		InputSchema:  s,
		GroupBy:      []expr.Expr{expr.C(s, "g")},
		GroupByNames: []string{"g"},
		Aggs: []AggSpec{
			{Func: Sum, Arg: expr.C(s, "v"), Name: "s"},
			{Func: Count, Name: "c"},
			{Func: Avg, Arg: expr.C(s, "v"), Name: "a"},
			{Func: Min, Arg: expr.C(s, "v"), Name: "mn"},
			{Func: Max, Arg: expr.C(s, "v"), Name: "mx"},
		},
	})
	op.setID(1)
	rows := allRows(runOp(t, execCtx(), op, 1, b))
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		switch r[0].I {
		case 0:
			if r[1].F != 9 || r[2].I != 3 || r[3].F != 3 || r[4].F != 1 || r[5].F != 5 {
				t.Errorf("group 0 aggs wrong: %v", r)
			}
		case 1:
			if r[1].F != 6 || r[2].I != 2 || r[3].F != 3 || r[4].F != 2 || r[5].F != 4 {
				t.Errorf("group 1 aggs wrong: %v", r)
			}
		default:
			t.Errorf("unexpected group %d", r[0].I)
		}
	}
}

func TestAggMergeAcrossWorkOrders(t *testing.T) {
	// The same rows split across two blocks must aggregate identically to
	// one block (thread-local partials + merge).
	s, whole := inputBlock(1, 2, 3, 4, 5, 6)
	b1 := storage.NewBlock(s, storage.ColumnStore, 16<<10)
	b2 := storage.NewBlock(s, storage.ColumnStore, 16<<10)
	for r := 0; r < whole.NumRows(); r++ {
		dst := b1
		if r >= 3 {
			dst = b2
		}
		dst.AppendRow(whole.Row(r)...)
	}
	mk := func() *AggOp {
		op := NewAgg(AggOpSpec{
			Name: "agg", InputSchema: s,
			GroupBy: []expr.Expr{expr.C(s, "g")}, GroupByNames: []string{"g"},
			Aggs: []AggSpec{
				{Func: Sum, Arg: expr.C(s, "v"), Name: "s"},
				{Func: Min, Arg: expr.C(s, "v"), Name: "mn"},
			},
		})
		op.setID(2)
		return op
	}
	one := allRows(runOp(t, execCtx(), mk(), 2, whole))
	two := allRows(runOp(t, execCtx(), mk(), 2, b1, b2))
	if len(one) != len(two) {
		t.Fatalf("group counts differ: %d vs %d", len(one), len(two))
	}
	find := func(rows [][]types.Datum, g int64) []types.Datum {
		for _, r := range rows {
			if r[0].I == g {
				return r
			}
		}
		return nil
	}
	for g := int64(0); g < 2; g++ {
		a, b := find(one, g), find(two, g)
		if a[1].F != b[1].F || a[2].F != b[2].F {
			t.Errorf("group %d: split aggregation differs: %v vs %v", g, a, b)
		}
	}
}

func TestAggCharGroupKeysCopied(t *testing.T) {
	// Group keys of Char type must be copied out of the input block: the
	// block is reset (simulating recycling) before Final runs.
	s, b := inputBlock(1, 2, 3, 4)
	op := NewAgg(AggOpSpec{
		Name: "agg", InputSchema: s,
		GroupBy: []expr.Expr{expr.C(s, "tag")}, GroupByNames: []string{"tag"},
		Aggs: []AggSpec{{Func: Count, Name: "c"}},
	})
	op.setID(3)
	ctx := execCtx()
	op.Init(ctx)
	for _, wo := range op.Feed(ctx, 0, []*storage.Block{b}) {
		out := &core.Output{}
		out.Finish(wo.Run(ctx, out))
	}
	// Clobber the input block before finalization.
	b.Reset()
	b.AppendRow(types.NewInt64(9), types.NewFloat64(9), types.NewString("zz"))

	var emitted []*storage.Block
	for _, wo := range op.Final(ctx) {
		out := &core.Output{}
		out.Finish(wo.Run(ctx, out))
		emitted = append(emitted, out.Blocks...)
	}
	emitted = append(emitted, ctx.Pool.TakePartials(3)...)
	rows := allRows(emitted)
	seen := map[string]bool{}
	for _, r := range rows {
		seen[string(r[0].Bytes())] = true
	}
	if !seen["aa"] || !seen["bb"] || seen["zz"] {
		t.Fatalf("group keys aliased recycled block memory: %v", seen)
	}
}

func TestAggScalarValue(t *testing.T) {
	s, b := inputBlock(2, 4, 6)
	op := NewAgg(AggOpSpec{
		Name: "agg", InputSchema: s,
		Aggs: []AggSpec{{Func: Avg, Arg: expr.C(s, "v"), Name: "a"}},
	})
	op.setID(4)
	runOp(t, execCtx(), op, 4, b)
	v, ok := op.ScalarValue()
	if !ok || v.F != 4 {
		t.Fatalf("scalar = %v, %v", v, ok)
	}
}

func TestAggEmptyScalarEmitsZeroRow(t *testing.T) {
	s, _ := inputBlock()
	op := NewAgg(AggOpSpec{
		Name: "agg", InputSchema: s,
		Aggs: []AggSpec{{Func: Count, Name: "c"}, {Func: Sum, Arg: expr.C(s, "v"), Name: "s"}},
	})
	op.setID(5)
	rows := allRows(runOp(t, execCtx(), op, 5))
	if len(rows) != 1 || rows[0][0].I != 0 || rows[0][1].F != 0 {
		t.Fatalf("empty scalar agg = %v", rows)
	}
}

func TestSortStabilityAndDesc(t *testing.T) {
	s := storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "seq", Type: types.Int64},
	)
	b := storage.NewBlock(s, storage.RowStore, 8<<10)
	// Keys with ties; seq records insertion order.
	keys := []int64{3, 1, 3, 2, 1, 3}
	for i, k := range keys {
		b.AppendRow(types.NewInt64(k), types.NewInt64(int64(i)))
	}
	op := NewSort(SortSpec{
		Name: "sort", InputSchema: s,
		Terms: []SortTerm{{Key: expr.C(s, "k"), Desc: true}},
	})
	op.setID(6)
	rows := allRows(runOp(t, execCtx(), op, 6, b))
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	wantK := []int64{3, 3, 3, 2, 1, 1}
	wantSeq := []int64{0, 2, 5, 3, 1, 4} // ties keep arrival order (stable)
	for i, r := range rows {
		if r[0].I != wantK[i] || r[1].I != wantSeq[i] {
			t.Fatalf("row %d = %v, want k=%d seq=%d", i, r, wantK[i], wantSeq[i])
		}
	}
}

func TestSortLimitLargerThanInput(t *testing.T) {
	s, b := inputBlock(1, 2)
	op := NewSort(SortSpec{
		Name: "sort", InputSchema: s,
		Terms: []SortTerm{{Key: expr.C(s, "v")}},
		Limit: 100,
	})
	op.setID(7)
	if got := len(allRows(runOp(t, execCtx(), op, 7, b))); got != 2 {
		t.Fatalf("rows = %d", got)
	}
}

func TestSelectComputedProjection(t *testing.T) {
	s, b := inputBlock(1, 2, 3)
	op := NewSelect(SelectSpec{
		Name: "sel", InputSchema: s,
		Pred:      expr.Gt(expr.C(s, "v"), expr.Float(1)),
		Proj:      []expr.Expr{expr.MulE(expr.C(s, "v"), expr.Float(10))},
		ProjNames: []string{"v10"},
	})
	op.setID(8)
	rows := allRows(runOp(t, execCtx(), op, 8, b))
	if len(rows) != 2 || rows[0][0].F != 20 || rows[1][0].F != 30 {
		t.Fatalf("computed projection = %v", rows)
	}
}

func TestSelectBaseTableGeneratesWorkOrderPerBlock(t *testing.T) {
	s := storage.NewSchema(storage.Column{Name: "k", Type: types.Int64})
	tbl := storage.NewTable("t", s, storage.ColumnStore, 64) // 8 rows per block
	l := storage.NewLoader(tbl)
	for i := 0; i < 50; i++ {
		l.Append(types.NewInt64(int64(i)))
	}
	l.Close()
	op := NewSelect(SelectSpec{
		Name: "sel", Base: tbl,
		Proj: []expr.Expr{expr.C(s, "k")}, ProjNames: []string{"k"},
	})
	op.setID(9)
	ctx := execCtx()
	op.Init(ctx)
	wos := op.Start(ctx)
	if len(wos) != tbl.NumBlocks() {
		t.Fatalf("work orders = %d, blocks = %d", len(wos), tbl.NumBlocks())
	}
}

func TestReadBytesFormats(t *testing.T) {
	s := storage.NewSchema(
		storage.Column{Name: "a", Type: types.Int64},
		storage.Column{Name: "pad", Type: types.Char, Width: 56},
	)
	cb := storage.NewBlock(s, storage.ColumnStore, 6400)
	rb := storage.NewBlock(s, storage.RowStore, 6400)
	for i := 0; i < 100; i++ {
		cb.AppendRow(types.NewInt64(1), types.NewString("x"))
		rb.AppendRow(types.NewInt64(1), types.NewString("x"))
	}
	// Column store charges only the referenced column; row store the whole
	// tuple (the Section IV-B format effect).
	if got := readBytes(cb, []int{0}); got != 100*8 {
		t.Fatalf("column-store read bytes = %d", got)
	}
	if got := readBytes(rb, []int{0}); got != 100*64 {
		t.Fatalf("row-store read bytes = %d", got)
	}
}

func TestColRefsOnlyFastPath(t *testing.T) {
	s, _ := inputBlock(1)
	if colRefsOnly([]expr.Expr{expr.C(s, "g"), expr.C(s, "v")}) == nil {
		t.Error("plain column refs should use the copy fast path")
	}
	if colRefsOnly([]expr.Expr{expr.C(s, "g"), expr.MulE(expr.C(s, "v"), expr.Float(2))}) != nil {
		t.Error("computed projections must not use the fast path")
	}
	if colRefsOnly([]expr.Expr{expr.C2(s, "g")}) != nil {
		t.Error("secondary-side refs must not use the fast path")
	}
}

func TestJoinTypeStrings(t *testing.T) {
	for jt, want := range map[JoinType]string{
		Inner: "inner", LeftOuter: "left_outer", LeftSemi: "semi", LeftAnti: "anti",
	} {
		if jt.String() != want {
			t.Errorf("%d.String() = %q", jt, jt.String())
		}
	}
	if Sum.String() != "sum" || Max.String() != "max" {
		t.Error("agg func names wrong")
	}
}

// TestConcurrentBuildWorkOrdersWithBloom drives one build operator with many
// concurrent work orders over a bloom-enabled build (run under -race): the
// per-row operator mutex was replaced by the lock-free atomic bloom build
// plus the block-granular insert kernel, and no races may remain.
func TestConcurrentBuildWorkOrdersWithBloom(t *testing.T) {
	s := storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Float64},
	)
	const blocks, rowsPer = 24, 256
	in := make([]*storage.Block, blocks)
	for bi := range in {
		b := storage.NewBlock(s, storage.ColumnStore, rowsPer*16+64)
		for r := 0; r < rowsPer; r++ {
			b.AppendRow(types.NewInt64(int64(bi*rowsPer+r)), types.NewFloat64(float64(r)))
		}
		in[bi] = b
	}
	op := NewBuildHash(BuildSpec{
		Name: "build", InputSchema: s, KeyCols: []int{0}, Payload: []int{1},
		ExpectedRows: blocks * rowsPer, BuildBloom: true,
	})
	ctx := execCtx()
	op.Init(ctx)
	op.Start(ctx)
	wos := op.Feed(ctx, 0, in)
	if len(wos) != blocks {
		t.Fatalf("work orders = %d", len(wos))
	}
	var wg sync.WaitGroup
	outs := make([]*core.Output, len(wos))
	for i, wo := range wos {
		wg.Add(1)
		go func(i int, wo core.WorkOrder) {
			defer wg.Done()
			outs[i] = &core.Output{}
			outs[i].Finish(wo.Run(ctx, outs[i]))
		}(i, wo)
	}
	wg.Wait()
	if got := op.HT().Len(); got != blocks*rowsPer {
		t.Fatalf("table has %d entries, want %d", got, blocks*rowsPer)
	}
	var locks, batched int64
	for _, o := range outs {
		locks += o.ShardLocks
		batched += o.BatchedRows
	}
	if batched != blocks*rowsPer {
		t.Fatalf("batched rows = %d, want %d", batched, blocks*rowsPer)
	}
	// Lock amortization: far fewer acquisitions than rows (≤64 shards/block).
	if locks == 0 || locks > int64(blocks*64) {
		t.Fatalf("shard locks = %d, want 1..%d", locks, blocks*64)
	}
	flt := op.Bloom()
	for k := 0; k < blocks*rowsPer; k++ {
		if !flt.MayContain(int64(k)) {
			t.Fatalf("bloom lost key %d", k)
		}
	}
	// Key-only builds take the same batched path.
	ko := NewBuildHash(BuildSpec{
		Name: "ko", InputSchema: s, KeyCols: []int{0}, ExpectedRows: blocks * rowsPer,
	})
	ko.Init(ctx)
	ko.Start(ctx)
	var wg2 sync.WaitGroup
	for _, wo := range ko.Feed(ctx, 0, in) {
		wg2.Add(1)
		go func(wo core.WorkOrder) {
			defer wg2.Done()
			out := &core.Output{}
			out.Finish(wo.Run(ctx, out))
		}(wo)
	}
	wg2.Wait()
	if got := ko.HT().Len(); got != blocks*rowsPer {
		t.Fatalf("key-only table has %d entries, want %d", got, blocks*rowsPer)
	}
}
