package exec

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/types"
)

// sortTestBlocks builds nblocks blocks of rows each over a schema covering
// every normalized-key type, with narrow value domains so every term has
// plenty of duplicates (ties exercise stability).
func sortTestBlocks(seed int64, nblocks, rows int) (*storage.Schema, []*storage.Block) {
	s := storage.NewSchema(
		storage.Column{Name: "i", Type: types.Int64},
		storage.Column{Name: "d", Type: types.Date},
		storage.Column{Name: "f", Type: types.Float64},
		storage.Column{Name: "c4", Type: types.Char, Width: 4},
		storage.Column{Name: "c12", Type: types.Char, Width: 12},
		storage.Column{Name: "seq", Type: types.Int64},
	)
	r := rand.New(rand.NewSource(seed))
	prefixes := []string{"alpha", "beta", "gamma", "alphb"}
	var blocks []*storage.Block
	seq := int64(0)
	for bi := 0; bi < nblocks; bi++ {
		b := storage.NewBlock(s, storage.ColumnStore, 64<<10)
		for ri := 0; ri < rows; ri++ {
			// c12 values share 5-byte prefixes and differ past the 8-byte
			// normalized prefix, forcing the approximate tie-break path.
			c12 := prefixes[r.Intn(len(prefixes))] + string(rune('a'+r.Intn(3))) + "xy" + string(rune('a'+r.Intn(4)))
			b.AppendRow(
				types.NewInt64(int64(r.Intn(17))-8),
				types.NewDate(int32(r.Intn(30))),
				types.NewFloat64(float64(r.Intn(9))/4),
				types.NewString(string(rune('a'+r.Intn(5)))),
				types.NewString(c12),
				types.NewInt64(seq),
			)
			seq++
		}
		blocks = append(blocks, b)
	}
	return s, blocks
}

func rowsEqual(a, b [][]types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Ty != b[i][j].Ty || !types.Equal(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestSortFastMatchesReference is the order-sensitive equivalence matrix:
// for every term combination and limit, the normalized-key fast path must
// produce bit-identical output to the reference row sort — including tie
// order (both stable on arrival order).
func TestSortFastMatchesReference(t *testing.T) {
	s, blocks := sortTestBlocks(42, 3, 301)
	total := 3 * 301
	cases := []struct {
		name  string
		terms []SortTerm
	}{
		{"int_asc", []SortTerm{{Key: expr.C(s, "i")}}},
		{"int_desc", []SortTerm{{Key: expr.C(s, "i"), Desc: true}}},
		{"date_asc", []SortTerm{{Key: expr.C(s, "d")}}},
		{"float_desc", []SortTerm{{Key: expr.C(s, "f"), Desc: true}}},
		{"char4_asc", []SortTerm{{Key: expr.C(s, "c4")}}},
		{"char12_asc", []SortTerm{{Key: expr.C(s, "c12")}}},
		{"char12_desc", []SortTerm{{Key: expr.C(s, "c12"), Desc: true}}},
		{"int_float", []SortTerm{{Key: expr.C(s, "i")}, {Key: expr.C(s, "f"), Desc: true}}},
		{"date_char12_int", []SortTerm{
			{Key: expr.C(s, "d"), Desc: true},
			{Key: expr.C(s, "c12")},
			{Key: expr.C(s, "i")},
		}},
	}
	limits := []int{0, 1, 7, total, total + 10}
	for _, tc := range cases {
		for _, limit := range limits {
			fastOp := NewSort(SortSpec{Name: "fast", InputSchema: s, Terms: tc.terms, Limit: limit})
			refOp := NewSort(SortSpec{Name: "ref", InputSchema: s, Terms: tc.terms, Limit: limit, ForceReference: true})
			fastOp.setID(1)
			refOp.setID(2)
			if !fastOp.FastPath() {
				t.Fatalf("%s: fast path not taken", tc.name)
			}
			if refOp.FastPath() {
				t.Fatalf("%s: ForceReference ignored", tc.name)
			}
			fast := allRows(runOp(t, execCtx(), fastOp, 1, blocks...))
			ref := allRows(runOp(t, execCtx(), refOp, 2, blocks...))
			want := total
			if limit > 0 && limit < total {
				want = limit
			}
			if len(ref) != want {
				t.Fatalf("%s limit=%d: reference rows = %d, want %d", tc.name, limit, len(ref), want)
			}
			if !rowsEqual(fast, ref) {
				t.Fatalf("%s limit=%d: fast path diverges from reference (%d vs %d rows)",
					tc.name, limit, len(fast), len(ref))
			}
		}
	}
}

// TestSortComputedKeyUsesReference: a non-column key is ineligible for
// normalized-key encoding, so NewSort must keep the reference path.
func TestSortComputedKeyUsesReference(t *testing.T) {
	s, blocks := sortTestBlocks(7, 1, 50)
	op := NewSort(SortSpec{
		Name: "sort", InputSchema: s,
		Terms: []SortTerm{{Key: expr.MulE(expr.C(s, "f"), expr.Float(-1))}},
	})
	op.setID(3)
	if op.FastPath() {
		t.Fatal("computed key must not take the fast path")
	}
	rows := allRows(runOp(t, execCtx(), op, 3, blocks...))
	if len(rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][2].F < rows[i][2].F {
			t.Fatalf("row %d out of order: %v then %v", i, rows[i-1][2], rows[i][2])
		}
	}
}

// runSortConcurrent drives a sort operator the way the scheduler would with
// `workers` goroutines: run-generation work orders race, then the merge
// partition work orders race, then the staged emit runs alone.
func runSortConcurrent(t *testing.T, ctx *core.ExecCtx, op *SortOp, blocks []*storage.Block, workers int) []*storage.Block {
	t.Helper()
	op.Init(ctx)
	var mu sync.Mutex
	var emitted []*storage.Block
	runWave := func(wos []core.WorkOrder) {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, wo := range wos {
			wg.Add(1)
			go func(wo core.WorkOrder) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				out := &core.Output{}
				if err := wo.Run(ctx, out); err != nil {
					t.Errorf("work order failed: %v", err)
					return
				}
				out.Finish(nil)
				mu.Lock()
				emitted = append(emitted, out.Blocks...)
				mu.Unlock()
			}(wo)
		}
		wg.Wait()
	}
	var feedWOs []core.WorkOrder
	for _, b := range blocks {
		feedWOs = append(feedWOs, op.Feed(ctx, 0, []*storage.Block{b})...)
	}
	runWave(feedWOs)
	runWave(op.Final(ctx))
	for stage := 0; ; stage++ {
		wos := op.NextStage(ctx, stage)
		if wos == nil {
			break
		}
		runWave(wos)
	}
	return emitted
}

// TestSortParallelMatchesSequential runs enough rows to fan the merge out
// into several range partitions, races all work orders under -race, and
// requires output identical to the single-threaded reference path.
func TestSortParallelMatchesSequential(t *testing.T) {
	s, blocks := sortTestBlocks(99, 20, 1024) // 20480 rows: multi-partition merge
	terms := []SortTerm{{Key: expr.C(s, "i")}, {Key: expr.C(s, "seq"), Desc: true}}

	refOp := NewSort(SortSpec{Name: "ref", InputSchema: s, Terms: terms, ForceReference: true})
	refOp.setID(2)
	ref := allRows(runOp(t, execCtx(), refOp, 2, blocks...))

	ctx := execCtx()
	ctx.Workers = 8
	fastOp := NewSort(SortSpec{Name: "fast", InputSchema: s, Terms: terms})
	fastOp.setID(1)
	fast := allRows(runSortConcurrent(t, ctx, fastOp, blocks, 8))
	if !rowsEqual(fast, ref) {
		t.Fatalf("parallel fast sort diverges from reference (%d vs %d rows)", len(fast), len(ref))
	}
}

// TestSortTopKParallel races the top-k path (per-run bounded heaps, single
// merge partition) and checks the limit semantics against the reference.
func TestSortTopKParallel(t *testing.T) {
	s, blocks := sortTestBlocks(123, 12, 512)
	terms := []SortTerm{{Key: expr.C(s, "f"), Desc: true}, {Key: expr.C(s, "d")}}
	limit := 37

	refOp := NewSort(SortSpec{Name: "ref", InputSchema: s, Terms: terms, Limit: limit, ForceReference: true})
	refOp.setID(2)
	ref := allRows(runOp(t, execCtx(), refOp, 2, blocks...))

	ctx := execCtx()
	ctx.Workers = 8
	fastOp := NewSort(SortSpec{Name: "fast", InputSchema: s, Terms: terms, Limit: limit})
	fastOp.setID(1)
	fast := allRows(runSortConcurrent(t, ctx, fastOp, blocks, 8))
	if !rowsEqual(fast, ref) {
		t.Fatalf("parallel top-k diverges from reference (%d vs %d rows)", len(fast), len(ref))
	}
}

// TestSortFaultDemotionMatchesReference: a fault at the SortRun site demotes
// the operator permanently; completed runs are discarded and Final re-sorts
// everything on the reference path, so the output is still exact.
func TestSortFaultDemotionMatchesReference(t *testing.T) {
	s, blocks := sortTestBlocks(5, 4, 128)
	terms := []SortTerm{{Key: expr.C(s, "d")}, {Key: expr.C(s, "i"), Desc: true}}

	refOp := NewSort(SortSpec{Name: "ref", InputSchema: s, Terms: terms, ForceReference: true})
	refOp.setID(2)
	ref := allRows(runOp(t, execCtx(), refOp, 2, blocks...))

	ctx := execCtx()
	// Fire exactly once, at the third run-generation work order.
	ctx.Faults = faults.Replay([]faults.Event{{Site: faults.SortRun, Seq: 2, Kind: faults.KindError}})
	op := NewSort(SortSpec{Name: "fast", InputSchema: s, Terms: terms})
	op.setID(1)
	if !op.FastPath() {
		t.Fatal("fast path not taken")
	}
	op.Init(ctx)
	var emitted []*storage.Block
	demotions := int64(0)
	for _, b := range blocks {
		for _, wo := range op.Feed(ctx, 0, []*storage.Block{b}) {
			out := &core.Output{}
			err := wo.Run(ctx, out)
			demotions += out.Demotions
			if err != nil {
				// The scheduler would roll back and retry; the retry hits
				// the demoted check and no-ops.
				out = &core.Output{}
				if err := wo.Run(ctx, out); err != nil {
					t.Fatalf("retried work order failed: %v", err)
				}
				demotions += out.Demotions
			}
		}
	}
	finals := op.Final(ctx)
	if len(finals) != 1 {
		t.Fatalf("demoted Final fanned out %d work orders, want 1 reference sort", len(finals))
	}
	out := &core.Output{}
	if err := finals[0].Run(ctx, out); err != nil {
		t.Fatalf("reference sort failed: %v", err)
	}
	out.Finish(nil)
	emitted = append(emitted, out.Blocks...)
	if wos := op.NextStage(ctx, 0); wos != nil {
		t.Fatalf("demoted sort has no emit stage, got %d work orders", len(wos))
	}
	emitted = append(emitted, ctx.Pool.TakePartials(1)...)
	if demotions != 1 {
		t.Fatalf("demotions = %d, want 1", demotions)
	}
	if out.SortFallbackRows != int64(4*128) {
		t.Fatalf("SortFallbackRows = %d, want %d", out.SortFallbackRows, 4*128)
	}
	if !rowsEqual(allRows(emitted), ref) {
		t.Fatal("demoted sort diverges from reference")
	}
}

// TestSortCounters checks the sort kernel counters the work orders report.
func TestSortCounters(t *testing.T) {
	s, blocks := sortTestBlocks(11, 3, 64)
	op := NewSort(SortSpec{
		Name: "sort", InputSchema: s,
		Terms: []SortTerm{{Key: expr.C(s, "i")}},
		Limit: 10,
	})
	op.setID(4)
	ctx := execCtx()
	op.Init(ctx)
	var runs, fastRows, pruned, fanout, rowsOut int64
	drive := func(wos []core.WorkOrder) {
		for _, wo := range wos {
			out := &core.Output{}
			if err := wo.Run(ctx, out); err != nil {
				t.Fatalf("work order failed: %v", err)
			}
			out.Finish(nil)
			runs += out.SortRuns
			fastRows += out.SortFastRows
			pruned += out.TopKPruned
			fanout += out.SortMergeFanout
			rowsOut += out.RowsOut
			for _, b := range out.Blocks {
				ctx.Pool.Release(b)
			}
		}
	}
	for _, b := range blocks {
		drive(op.Feed(ctx, 0, []*storage.Block{b}))
	}
	drive(op.Final(ctx))
	for stage := 0; ; stage++ {
		wos := op.NextStage(ctx, stage)
		if wos == nil {
			break
		}
		drive(wos)
	}
	if runs != 3 {
		t.Fatalf("SortRuns = %d, want 3", runs)
	}
	if fastRows != 3*64 {
		t.Fatalf("SortFastRows = %d, want %d", fastRows, 3*64)
	}
	// Each 64-row run keeps at most 10 rows; rows rejected at Offer time are
	// pruned (heap evictions are not, so the exact count is data-dependent).
	if pruned <= 0 || pruned > 3*(64-10) {
		t.Fatalf("TopKPruned = %d, want in (0, %d]", pruned, 3*(64-10))
	}
	if fanout != 1 {
		t.Fatalf("SortMergeFanout = %d, want 1 (limited sort merges in one partition)", fanout)
	}
	if rowsOut != 10 {
		t.Fatalf("RowsOut = %d, want 10", rowsOut)
	}
}
