package exec

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/aggtable"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/types"
)

// AggFunc is an aggregation function.
type AggFunc uint8

// Aggregation functions.
const (
	Sum AggFunc = iota
	Count
	Avg
	Min
	Max
	// CountDistinct counts distinct Arg values per group (Q16's
	// count(distinct ps_suppkey)).
	CountDistinct
)

var aggNames = [...]string{"sum", "count", "avg", "min", "max", "count_distinct"}

// AggSpec is one aggregate: a function over an argument expression (nil Arg
// means COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	Name string
}

// aggParts is the radix merge fan-out: Final issues one merge work order per
// partition of the group-hash space (top aggPartBits hash bits), so partial
// tables merge in parallel with no shared lock.
const (
	aggPartBits = 4
	aggParts    = 1 << aggPartBits
)

// aggPartitioner maps group hashes to merge partitions (shared by Final's
// fan-out and the merge work orders' filters).
var aggPartitioner = types.NewPartitioner(aggParts)

// AggOp is a hash aggregation operator with two execution paths.
//
// The vectorized fast path handles the common TPC-H/SSB shape: at most two
// int64/date group keys, aggregates over numeric arguments (no
// CountDistinct, no char min/max). Work orders gather the key columns
// (storage.Block.GatherInt64/GatherDate), hash them in one vectorized pass
// (types.HashPairVec), and accumulate into a thread-local open-addressing
// aggtable.Table — no string keys, no per-row Datum boxing. Column-ref-only
// aggregate arguments accumulate through columnar kernels over gathered
// vectors; computed arguments fall back to per-row Eval but still write
// fixed-width cells. Partial tables persist across work orders on a
// free-list, and Final fans out one merge work order per radix partition of
// the hash space, so the merge parallelizes across the scheduler's workers
// instead of serializing on an operator mutex.
//
// The reference map path (per-row Eval, serialized group keys, one shared
// map behind a mutex) is retained for mixed-type keys, CountDistinct, char
// min/max, and as the correctness oracle the equivalence tests compare
// against.
type AggOp struct {
	core.Base
	self     core.OpID
	name     string
	groupBy  []expr.Expr
	aggs     []AggSpec
	out      *storage.Schema
	readCols []int

	// Reference-path state.
	mu        sync.Mutex
	groups    map[string]*aggGroup
	memBytes  int64 // atomic: approximate live bytes of the aggregation table(s)
	scalarVal types.Datum
	hasScalar bool

	// Fast-path plan: filled by initFastPath when the operator qualifies.
	fast      bool
	partLocal bool
	keyCols   []int
	keyIsDate []bool
	fAggs     []fastAgg

	// demoted flips (permanently, for the run) when a fault fires on the
	// vectorized path: subsequent work orders — including the retry of the
	// failed one — take the reference map path, which consults no fault
	// sites, and Final folds the already-built fast partials into the
	// reference groups before emitting.
	demoted atomic.Bool

	// Fast-path runtime state: the free-list of thread-local partials. pall
	// tracks every partial ever created (for the merge); pfree holds the
	// ones not currently owned by a running work order.
	pmu   sync.Mutex
	pfree []*aggPartial
	pall  []*aggPartial
}

// fastAgg is the fast path's per-aggregate plan: the aggtable accumulator
// descriptor plus how the argument is loaded (columnar gather of col, or
// per-row Eval of arg; col < 0 and arg == nil for COUNT).
type fastAgg struct {
	desc      aggtable.Agg
	col       int
	colIsDate bool
	arg       expr.Expr
}

// aggPartial is one thread-local partial aggregation state plus its reusable
// scratch vectors. A partial is owned by at most one work order at a time
// (free-list discipline), accumulates across all blocks it sees, and is
// merged once by the Final merge work orders — there is no per-block merge.
type aggPartial struct {
	tab       *aggtable.Table // grouped fast path
	cells     []aggtable.Cell // scalar fast path (no group keys)
	k0        []int64
	k1        []int64
	hashes    []uint64
	groupIdx  []int32
	argI      []int64
	argF      []float64
	lastBytes int64
}

type aggGroup struct {
	keys []types.Datum
	acc  []accCell
}

type accCell struct {
	sumF     float64
	sumI     int64
	count    int64
	minmax   types.Datum
	set      bool
	distinct map[string]struct{} // CountDistinct only
}

// AggOpSpec configures NewAgg.
type AggOpSpec struct {
	Name string
	// InputSchema is the pipelined input's schema.
	InputSchema *storage.Schema
	// GroupBy expressions with names; empty for a scalar aggregate.
	GroupBy      []expr.Expr
	GroupByNames []string
	// Aggs are the aggregates to compute.
	Aggs []AggSpec
	// ForceReference disables the vectorized fast path, keeping the
	// row-at-a-time map path (the equivalence tests' oracle and the micro
	// benchmarks' baseline).
	ForceReference bool
	// PartitionLocal marks a per-partition clone downstream of an exchange:
	// the clone sees only its partition's groups, so Final issues a single
	// merge work order instead of fanning out over the radix partitions —
	// the cross-partition parallelism already comes from the exchange.
	PartitionLocal bool
}

// NewAgg builds an aggregation operator.
func NewAgg(spec AggOpSpec) *AggOp {
	if len(spec.Aggs) == 0 {
		panic("exec: aggregation needs at least one aggregate")
	}
	cols := make([]storage.Column, 0, len(spec.GroupBy)+len(spec.Aggs))
	gb := expr.OutputSchema(spec.GroupBy, spec.GroupByNames)
	for i := range spec.GroupBy {
		cols = append(cols, gb.Col(i))
	}
	for _, a := range spec.Aggs {
		cols = append(cols, storage.Column{Name: a.Name, Type: aggType(a), Width: aggWidth(a)})
	}
	op := &AggOp{
		name:      spec.Name,
		groupBy:   spec.GroupBy,
		aggs:      spec.Aggs,
		out:       storage.NewSchema(cols...),
		groups:    make(map[string]*aggGroup),
		partLocal: spec.PartitionLocal,
	}
	all := append([]expr.Expr{}, spec.GroupBy...)
	for _, a := range spec.Aggs {
		if a.Arg != nil {
			all = append(all, a.Arg)
		}
	}
	op.readCols = expr.PrimaryCols(all...)
	if !spec.ForceReference {
		op.initFastPath()
	}
	return op
}

// initFastPath decides fast-path eligibility and compiles the per-key and
// per-aggregate plans. Requirements: ≤2 group keys, every key a plain
// int64/date column reference, no CountDistinct, no char-typed aggregate
// arguments.
func (o *AggOp) initFastPath() {
	if len(o.groupBy) > 2 {
		return
	}
	keyCols := make([]int, 0, len(o.groupBy))
	keyIsDate := make([]bool, 0, len(o.groupBy))
	for _, g := range o.groupBy {
		c, ok := expr.AsPrimaryColRef(g)
		if !ok || (c.Ty != types.Int64 && c.Ty != types.Date) {
			return
		}
		keyCols = append(keyCols, c.Col)
		keyIsDate = append(keyIsDate, c.Ty == types.Date)
	}
	fAggs := make([]fastAgg, 0, len(o.aggs))
	for _, a := range o.aggs {
		if a.Func == CountDistinct {
			return
		}
		if a.Arg != nil && a.Arg.Type() == types.Char {
			return
		}
		fa := fastAgg{col: -1}
		switch a.Func {
		case Sum:
			fa.desc.Kind = aggtable.Sum
		case Count:
			fa.desc.Kind = aggtable.Count
		case Avg:
			fa.desc.Kind = aggtable.Avg
		case Min:
			fa.desc.Kind = aggtable.Min
		case Max:
			fa.desc.Kind = aggtable.Max
		}
		if a.Func != Count && a.Arg != nil {
			fa.desc.Float = a.Arg.Type() == types.Float64
			if c, ok := expr.AsPrimaryColRef(a.Arg); ok {
				fa.col = c.Col
				fa.colIsDate = c.Ty == types.Date
			} else {
				fa.arg = a.Arg
			}
		}
		fAggs = append(fAggs, fa)
	}
	o.keyCols, o.keyIsDate, o.fAggs = keyCols, keyIsDate, fAggs
	o.fast = true
}

// FastPath reports whether the vectorized path is active (for tests and the
// bench harness).
func (o *AggOp) FastPath() bool { return o.fast }

func aggType(a AggSpec) types.TypeID {
	switch a.Func {
	case Count, CountDistinct:
		return types.Int64
	case Avg:
		return types.Float64
	case Sum:
		if a.Arg.Type() == types.Int64 {
			return types.Int64
		}
		return types.Float64
	default: // Min, Max
		return a.Arg.Type()
	}
}

func aggWidth(a AggSpec) int {
	if (a.Func == Min || a.Func == Max) && a.Arg.Type() == types.Char {
		if c, ok := a.Arg.(*expr.ColRef); ok {
			return c.Width
		}
		return 32
	}
	return 0
}

func (o *AggOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *AggOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *AggOp) NumInputs() int { return 1 }

// OutSchema returns the result schema: group columns then aggregates.
func (o *AggOp) OutSchema() *storage.Schema { return o.out }

// Feed implements core.Operator.
func (o *AggOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &aggWO{op: o, block: b}
	}
	return wos
}

// Final implements core.Operator. On the fast path with group keys it fans
// out one merge work order per radix partition, so merging partial tables
// parallelizes across workers; otherwise a single work order emits the
// merged groups.
func (o *AggOp) Final(ctx *core.ExecCtx) []core.WorkOrder {
	if o.fast && !o.demoted.Load() {
		if len(o.groupBy) == 0 {
			return []core.WorkOrder{&aggScalarFinalWO{op: o}}
		}
		if o.partLocal {
			// Partition-local clone: a single merge with the identity
			// partitioner (every group maps to partition 0) — the exchange
			// already split the group space across clones.
			return []core.WorkOrder{&aggMergeWO{op: o, part: 0, pr: types.NewPartitioner(1)}}
		}
		wos := make([]core.WorkOrder, aggParts)
		for p := 0; p < aggParts; p++ {
			wos[p] = &aggMergeWO{op: o, part: p, pr: aggPartitioner}
		}
		return wos
	}
	if o.fast {
		// Demoted mid-run: earlier blocks accumulated into fast partials,
		// later ones into the reference map. Fold the partials into the map
		// here, on the scheduler goroutine — Final runs exactly once, so the
		// fold can never double-apply, which it could if it lived inside a
		// retryable work order.
		o.foldPartials(ctx)
	}
	return []core.WorkOrder{&aggFinalWO{op: o}}
}

// foldPartials converts every fast-path partial (grouped tables and scalar
// cell rows) into reference-path groups and merges them into o.groups.
func (o *AggOp) foldPartials(ctx *core.ExecCtx) {
	local := make(map[string]*aggGroup)
	var keyBuf []byte
	for _, p := range o.pall {
		if t := p.tab; t != nil {
			for g := 0; g < t.Len(); g++ {
				k0, k1 := t.Key(g)
				keys := make([]types.Datum, len(o.keyCols))
				keyBuf = keyBuf[:0]
				keys[0] = o.keyDatum(0, k0)
				keyBuf = appendKey(keyBuf, keys[0])
				if len(o.keyCols) == 2 {
					keys[1] = o.keyDatum(1, k1)
					keyBuf = appendKey(keyBuf, keys[1])
				}
				grp := local[string(keyBuf)]
				if grp == nil {
					grp = &aggGroup{keys: keys, acc: make([]accCell, len(o.aggs))}
					local[string(keyBuf)] = grp
				}
				for j := range o.aggs {
					o.mergeCellInto(j, t.CellAt(int32(g), j), &grp.acc[j])
				}
			}
		}
		if p.cells != nil {
			grp := local[""]
			if grp == nil {
				grp = &aggGroup{acc: make([]accCell, len(o.aggs))}
				local[""] = grp
			}
			for j := range o.aggs {
				o.mergeCellInto(j, &p.cells[j], &grp.acc[j])
			}
		}
	}
	o.merge(ctx, local)
}

// mergeCellInto folds one fixed-width fast-path accumulator into a
// reference-path cell, field by field: both paths track Count on every kind,
// Sum/Avg mirror SumI/SumF, and Min/Max rebuild the comparable datum from
// the fixed-width view exactly as finishFastCell would.
func (o *AggOp) mergeCellInto(i int, c *aggtable.Cell, dst *accCell) {
	a := o.aggs[i]
	dst.count += c.Count
	dst.sumI += c.SumI
	dst.sumF += c.SumF
	if c.Set {
		var d types.Datum
		if a.Arg.Type() == types.Float64 {
			d = types.NewFloat64(c.MMF)
		} else {
			d = types.Datum{Ty: a.Arg.Type(), I: c.MMI}
		}
		if !dst.set ||
			(a.Func == Min && types.Compare(d, dst.minmax) < 0) ||
			(a.Func == Max && types.Compare(d, dst.minmax) > 0) {
			dst.minmax = d
			dst.set = true
		}
	}
}

// ScalarValue implements core.Operator: valid for scalar aggregates after
// the final work order ran.
func (o *AggOp) ScalarValue() (types.Datum, bool) { return o.scalarVal, o.hasScalar }

// Cleanup implements core.Operator.
func (o *AggOp) Cleanup(ctx *core.ExecCtx) {
	if ctx.Run != nil {
		ctx.Run.HashTables.Sub(atomic.LoadInt64(&o.memBytes))
	}
}

// MemBytes returns the approximate aggregation-table footprint.
func (o *AggOp) MemBytes() int64 { return atomic.LoadInt64(&o.memBytes) }

// getPartial hands out a free partial, creating one if none is available.
// One free-list lock acquisition per block, amortized like PR1's shard
// locks.
func (o *AggOp) getPartial(out *core.Output) *aggPartial {
	o.pmu.Lock()
	if n := len(o.pfree); n > 0 {
		p := o.pfree[n-1]
		o.pfree = o.pfree[:n-1]
		o.pmu.Unlock()
		out.ScratchHits++
		return p
	}
	p := &aggPartial{}
	o.pall = append(o.pall, p)
	o.pmu.Unlock()
	out.AggPartials++
	return p
}

func (o *AggOp) putPartial(p *aggPartial) {
	o.pmu.Lock()
	o.pfree = append(o.pfree, p)
	o.pmu.Unlock()
}

type aggWO struct {
	op    *AggOp
	block *storage.Block
}

func (w *aggWO) Inputs() []*storage.Block { return []*storage.Block{w.block} }

func (w *aggWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	b := w.block
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.ConsumedSeq(b, readBytes(b, o.readCols))
	}
	switch {
	case o.fast && !o.demoted.Load():
		// The fault site fires before the partial is checked out, so a
		// faulted attempt touches no accumulator state — the scheduler
		// rolls it back and the retry lands on the (now demoted)
		// reference path.
		if err := ctx.FaultAt(faults.AggUpsert); err != nil {
			if o.demoted.CompareAndSwap(false, true) {
				out.Demotions++
			}
			return err
		}
		if len(o.keyCols) > 0 {
			o.runFast(ctx, b, out)
		} else {
			o.runScalarFast(ctx, b, out)
		}
	default:
		o.runRef(ctx, b, out)
	}
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.RandomProbes(int64(n), atomic.LoadInt64(&o.memBytes)+1)
	}
	return nil
}

// gatherKey loads a group-key or integer-argument column as int64s, widening
// 4-byte date columns.
func gatherKey(b *storage.Block, col int, isDate bool, dst []int64) []int64 {
	if isDate {
		return b.GatherDate(col, dst)
	}
	return b.GatherInt64(col, dst)
}

// runFast is the vectorized grouped path: gather + hash the key columns once
// per block, map rows to dense group indexes in the thread-local partial
// table, then fold each aggregate column with a columnar kernel.
func (o *AggOp) runFast(ctx *core.ExecCtx, b *storage.Block, out *core.Output) {
	n := b.NumRows()
	if n == 0 {
		return
	}
	p := o.getPartial(out)
	p.k0 = gatherKey(b, o.keyCols[0], o.keyIsDate[0], p.k0)
	var k1 []int64
	if len(o.keyCols) == 2 {
		p.k1 = gatherKey(b, o.keyCols[1], o.keyIsDate[1], p.k1)
		k1 = p.k1
	}
	p.hashes = types.HashPairVec(p.k0, k1, p.hashes)
	if p.tab == nil {
		p.tab = aggtable.New(len(o.aggs), len(o.keyCols) == 2, 256)
	}
	p.groupIdx = p.tab.UpsertBlock(p.k0, k1, p.hashes, p.groupIdx)
	for j, fa := range o.fAggs {
		switch {
		case fa.desc.Kind == aggtable.Count:
			p.tab.AccumCount(j, p.groupIdx)
		case fa.col >= 0 && !fa.desc.Float:
			p.argI = gatherKey(b, fa.col, fa.colIsDate, p.argI)
			p.tab.AccumInt(j, fa.desc, p.groupIdx, p.argI)
		case fa.col >= 0:
			p.argF = b.GatherFloat64(fa.col, p.argF)
			p.tab.AccumFloat(j, fa.desc, p.groupIdx, p.argF)
		default: // computed argument: per-row Eval into fixed-width cells
			ec := expr.Ctx{B: b, Scalars: ctx.Scalars}
			for r := 0; r < n; r++ {
				ec.Row = r
				v := fa.arg.Eval(&ec)
				c := p.tab.CellAt(p.groupIdx[r], j)
				if fa.desc.Float {
					aggtable.UpdateFloat(c, fa.desc, v.F)
				} else {
					aggtable.UpdateInt(c, fa.desc, v.I)
				}
			}
		}
	}
	o.accountGrowth(ctx, p, p.tab.Bytes())
	o.putPartial(p)
	out.AggFastRows += int64(n)
	out.BatchedRows += int64(n)
}

// runScalarFast is the vectorized scalar path (no group keys): one cell row
// per partial, columnar folds, no hash table at all.
func (o *AggOp) runScalarFast(ctx *core.ExecCtx, b *storage.Block, out *core.Output) {
	n := b.NumRows()
	if n == 0 {
		return
	}
	p := o.getPartial(out)
	if p.cells == nil {
		p.cells = make([]aggtable.Cell, len(o.aggs))
		o.accountGrowth(ctx, p, int64(len(o.aggs))*64)
	}
	for j, fa := range o.fAggs {
		c := &p.cells[j]
		switch {
		case fa.desc.Kind == aggtable.Count:
			c.Count += int64(n)
		case fa.col >= 0 && !fa.desc.Float:
			p.argI = gatherKey(b, fa.col, fa.colIsDate, p.argI)
			for _, v := range p.argI {
				aggtable.UpdateInt(c, fa.desc, v)
			}
		case fa.col >= 0:
			p.argF = b.GatherFloat64(fa.col, p.argF)
			for _, v := range p.argF {
				aggtable.UpdateFloat(c, fa.desc, v)
			}
		default:
			ec := expr.Ctx{B: b, Scalars: ctx.Scalars}
			for r := 0; r < n; r++ {
				ec.Row = r
				v := fa.arg.Eval(&ec)
				if fa.desc.Float {
					aggtable.UpdateFloat(c, fa.desc, v.F)
				} else {
					aggtable.UpdateInt(c, fa.desc, v.I)
				}
			}
		}
	}
	o.putPartial(p)
	out.AggFastRows += int64(n)
	out.BatchedRows += int64(n)
}

// accountGrowth records a partial's footprint growth in the operator gauge
// and the run's hash-table memory class.
func (o *AggOp) accountGrowth(ctx *core.ExecCtx, p *aggPartial, nowBytes int64) {
	d := nowBytes - p.lastBytes
	if d == 0 {
		return
	}
	p.lastBytes = nowBytes
	atomic.AddInt64(&o.memBytes, d)
	if ctx.Run != nil {
		ctx.Run.HashTables.Add(d)
	}
}

// runRef is the retained row-at-a-time reference path: per-row Eval into a
// local map keyed by serialized group keys, merged into the shared map under
// the operator mutex. The group-key Datum slice is hoisted out of the row
// loop and CountDistinct serializes into a reusable scratch buffer, so the
// per-row allocations are the map entries themselves.
func (o *AggOp) runRef(ctx *core.ExecCtx, b *storage.Block, out *core.Output) {
	n := b.NumRows()
	local := make(map[string]*aggGroup)
	ec := expr.Ctx{B: b, Scalars: ctx.Scalars}
	var keyBuf, distBuf []byte
	keys := make([]types.Datum, len(o.groupBy))
	for r := 0; r < n; r++ {
		ec.Row = r
		keyBuf = keyBuf[:0]
		for i, g := range o.groupBy {
			keys[i] = g.Eval(&ec)
			keyBuf = appendKey(keyBuf, keys[i])
		}
		g := local[string(keyBuf)]
		if g == nil {
			g = &aggGroup{keys: copyDatums(keys), acc: make([]accCell, len(o.aggs))}
			local[string(keyBuf)] = g
		}
		for i, a := range o.aggs {
			cell := &g.acc[i]
			cell.count++
			if a.Arg == nil {
				continue
			}
			v := a.Arg.Eval(&ec)
			switch a.Func {
			case Sum, Avg:
				cell.sumF += v.Float()
				cell.sumI += v.I
			case CountDistinct:
				if cell.distinct == nil {
					cell.distinct = make(map[string]struct{})
				}
				distBuf = appendKey(distBuf[:0], v)
				if _, ok := cell.distinct[string(distBuf)]; !ok {
					cell.distinct[string(distBuf)] = struct{}{}
				}
			case Min:
				if !cell.set || types.Compare(v, cell.minmax) < 0 {
					cell.minmax = copyDatum(v)
					cell.set = true
				}
			case Max:
				if !cell.set || types.Compare(v, cell.minmax) > 0 {
					cell.minmax = copyDatum(v)
					cell.set = true
				}
			}
		}
	}
	o.merge(ctx, local)
	out.AggFallbackRows += int64(n)
}

// datumBytes approximates a datum's in-memory footprint: the struct itself
// plus any out-of-line char bytes.
func datumBytes(d types.Datum) int64 {
	const header = 48 // Datum struct: tag + int64 + float64 + slice header
	if d.Ty == types.Char {
		return header + int64(len(d.B))
	}
	return header
}

func (o *AggOp) merge(ctx *core.ExecCtx, local map[string]*aggGroup) {
	var grew int64
	o.mu.Lock()
	for k, g := range local {
		tgt := o.groups[k]
		if tgt == nil {
			o.groups[k] = g
			grew += int64(len(k)) + int64(len(g.acc))*48 + 48
			for i := range g.keys {
				grew += datumBytes(g.keys[i])
			}
			for i := range g.acc {
				if d := g.acc[i].distinct; d != nil {
					grew += int64(len(d)) * 24
				}
			}
			continue
		}
		for i := range g.acc {
			src, dst := &g.acc[i], &tgt.acc[i]
			dst.count += src.count
			dst.sumF += src.sumF
			dst.sumI += src.sumI
			if src.distinct != nil {
				if dst.distinct == nil {
					dst.distinct = src.distinct
					grew += int64(len(src.distinct)) * 24
				} else {
					before := len(dst.distinct)
					for k := range src.distinct {
						dst.distinct[k] = struct{}{}
					}
					grew += int64(len(dst.distinct)-before) * 24
				}
			}
			if src.set {
				f := o.aggs[i].Func
				if !dst.set || (f == Min && types.Compare(src.minmax, dst.minmax) < 0) ||
					(f == Max && types.Compare(src.minmax, dst.minmax) > 0) {
					dst.minmax = src.minmax
					dst.set = true
				}
			}
		}
	}
	o.mu.Unlock()
	if grew != 0 {
		atomic.AddInt64(&o.memBytes, grew)
		if ctx.Run != nil {
			ctx.Run.HashTables.Add(grew)
		}
	}
}

// aggMergeWO merges one radix partition of every partial table and emits its
// groups. Partitions are disjoint, so the scheduler runs the aggParts merge
// work orders concurrently with no locking.
type aggMergeWO struct {
	op   *AggOp
	part int
	pr   types.Partitioner
}

func (w *aggMergeWO) Inputs() []*storage.Block { return nil }

func (w *aggMergeWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	out.AggMergeFanout++
	var tabs []*aggtable.Table
	var groupsHint int
	for _, p := range o.pall {
		if p.tab != nil && p.tab.Len() > 0 {
			tabs = append(tabs, p.tab)
			groupsHint += p.tab.Len()
		}
	}
	if len(tabs) == 0 {
		return nil
	}
	em := core.NewEmitter(ctx, out, o.self, o.out)
	descs := make([]aggtable.Agg, len(o.fAggs))
	for j, fa := range o.fAggs {
		descs[j] = fa.desc
	}
	row := make([]types.Datum, o.out.NumCols())
	if len(tabs) == 1 {
		// Single partial (one worker, or one busy one): emit its partition
		// directly without building a merge table.
		t := tabs[0]
		for g := 0; g < t.Len(); g++ {
			if w.pr.Of(t.Hash(g)) == w.part {
				o.emitFastGroup(em, out, t, g, row)
			}
		}
		return nil
	}
	dst := aggtable.New(len(o.aggs), len(o.keyCols) == 2, groupsHint/w.pr.Parts()+16)
	for _, t := range tabs {
		dst.MergePartition(t, w.part, w.pr, descs)
	}
	for g := 0; g < dst.Len(); g++ {
		o.emitFastGroup(em, out, dst, g, row)
	}
	return nil
}

// emitFastGroup materializes one merged group as an output row into the
// caller's reused row buffer.
func (o *AggOp) emitFastGroup(em *core.Emitter, out *core.Output, t *aggtable.Table, g int, row []types.Datum) {
	k0, k1 := t.Key(g)
	row[0] = o.keyDatum(0, k0)
	nk := 1
	if len(o.keyCols) == 2 {
		row[1] = o.keyDatum(1, k1)
		nk = 2
	}
	for j := range o.aggs {
		row[nk+j] = finishFastCell(o.aggs[j], t.CellAt(int32(g), j))
	}
	em.AppendRow(row...)
	out.RowsIn++
}

// keyDatum rebuilds group key i from its widened int64 representation.
func (o *AggOp) keyDatum(i int, k int64) types.Datum {
	if o.keyIsDate[i] {
		return types.NewDate(int32(k))
	}
	return types.NewInt64(k)
}

// aggScalarFinalWO merges the scalar partials' cells and emits the single
// result row (SQL: a scalar aggregate over empty input still yields one
// row).
type aggScalarFinalWO struct{ op *AggOp }

func (w *aggScalarFinalWO) Inputs() []*storage.Block { return nil }

func (w *aggScalarFinalWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	cells := make([]aggtable.Cell, len(o.aggs))
	for _, p := range o.pall {
		if p.cells == nil {
			continue
		}
		for j := range cells {
			aggtable.MergeCell(&cells[j], &p.cells[j], o.fAggs[j].desc)
		}
	}
	em := core.NewEmitter(ctx, out, o.self, o.out)
	row := make([]types.Datum, len(o.aggs))
	for j := range o.aggs {
		row[j] = finishFastCell(o.aggs[j], &cells[j])
	}
	em.AppendRow(row...)
	out.RowsIn++
	o.scalarVal = row[0]
	o.hasScalar = true
	return nil
}

// finishFastCell converts a fixed-width accumulator into the result datum,
// mirroring finishCell on the reference path.
func finishFastCell(a AggSpec, c *aggtable.Cell) types.Datum {
	switch a.Func {
	case Count:
		return types.NewInt64(c.Count)
	case Avg:
		if c.Count == 0 {
			return types.NewFloat64(0)
		}
		return types.NewFloat64(c.SumF / float64(c.Count))
	case Sum:
		if a.Arg.Type() == types.Int64 {
			return types.NewInt64(c.SumI)
		}
		return types.NewFloat64(c.SumF)
	default: // Min, Max
		if !c.Set {
			return types.Datum{Ty: a.Arg.Type()}
		}
		if a.Arg.Type() == types.Float64 {
			return types.NewFloat64(c.MMF)
		}
		return types.Datum{Ty: a.Arg.Type(), I: c.MMI}
	}
}

type aggFinalWO struct{ op *AggOp }

func (w *aggFinalWO) Inputs() []*storage.Block { return nil }

func (w *aggFinalWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	if len(o.groupBy) == 0 && len(o.groups) == 0 {
		// SQL: a scalar aggregate over empty input yields one row. (The
		// insert is idempotent, so an attempt aborted mid-emit retries
		// cleanly.)
		o.groups[""] = &aggGroup{acc: make([]accCell, len(o.aggs))}
	}
	em := core.NewEmitter(ctx, out, o.self, o.out)
	row := make([]types.Datum, o.out.NumCols())
	for _, g := range o.groups {
		copy(row, g.keys)
		for i, a := range o.aggs {
			row[len(g.keys)+i] = finishCell(a, &g.acc[i])
		}
		em.AppendRow(row...)
		out.RowsIn++
	}
	if len(o.groupBy) == 0 {
		for g := range o.groups {
			o.scalarVal = finishCell(o.aggs[0], &o.groups[g].acc[0])
			o.hasScalar = true
		}
	}
	return nil
}

func finishCell(a AggSpec, c *accCell) types.Datum {
	switch a.Func {
	case Count:
		return types.NewInt64(c.count)
	case CountDistinct:
		return types.NewInt64(int64(len(c.distinct)))
	case Avg:
		if c.count == 0 {
			return types.NewFloat64(0)
		}
		return types.NewFloat64(c.sumF / float64(c.count))
	case Sum:
		if a.Arg.Type() == types.Int64 {
			return types.NewInt64(c.sumI)
		}
		return types.NewFloat64(c.sumF)
	default: // Min, Max
		if !c.set {
			return types.Datum{Ty: a.Arg.Type()}
		}
		return c.minmax
	}
}

// appendKey serializes a datum into a group key, preserving equality.
func appendKey(buf []byte, d types.Datum) []byte {
	switch d.Ty {
	case types.Char:
		b := types.TrimPad(d.B)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
		buf = append(buf, 'c')
		buf = append(buf, l[:]...)
		return append(buf, b...)
	case types.Float64:
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(int64(d.F*1e6))) // exact for TPC-H decimals
		buf = append(buf, 'f')
		return append(buf, v[:]...)
	default:
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(d.I))
		buf = append(buf, 'i')
		return append(buf, v[:]...)
	}
}

func copyDatum(d types.Datum) types.Datum {
	if d.Ty == types.Char {
		b := make([]byte, len(d.B))
		copy(b, d.B)
		d.B = b
	}
	return d
}

func copyDatums(ds []types.Datum) []types.Datum {
	out := make([]types.Datum, len(ds))
	for i, d := range ds {
		out[i] = copyDatum(d)
	}
	return out
}

// String renders the operator.
func (o *AggOp) String() string {
	return fmt.Sprintf("agg(%s,%d groups,%d aggs)", o.name, len(o.groupBy), len(o.aggs))
}

// FuncName returns the display name of an aggregate function.
func (f AggFunc) String() string { return aggNames[f] }
