package exec

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// AggFunc is an aggregation function.
type AggFunc uint8

// Aggregation functions.
const (
	Sum AggFunc = iota
	Count
	Avg
	Min
	Max
	// CountDistinct counts distinct Arg values per group (Q16's
	// count(distinct ps_suppkey)).
	CountDistinct
)

var aggNames = [...]string{"sum", "count", "avg", "min", "max", "count_distinct"}

// AggSpec is one aggregate: a function over an argument expression (nil Arg
// means COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	Name string
}

// AggOp is a hash aggregation operator. Work orders aggregate their input
// block into a thread-local table and merge it into the shared table at the
// end (so probe-style contention stays on the storage pool, not here); a
// single final work order emits the result blocks. With no group-by
// expressions the operator is a scalar aggregate and can feed a scalar
// parameter slot.
type AggOp struct {
	core.Base
	self     core.OpID
	name     string
	groupBy  []expr.Expr
	aggs     []AggSpec
	out      *storage.Schema
	readCols []int

	mu        sync.Mutex
	groups    map[string]*aggGroup
	memBytes  int64 // atomic: approximate live bytes of the aggregation table
	scalarVal types.Datum
	hasScalar bool
}

type aggGroup struct {
	keys []types.Datum
	acc  []accCell
}

type accCell struct {
	sumF     float64
	sumI     int64
	count    int64
	minmax   types.Datum
	set      bool
	distinct map[string]struct{} // CountDistinct only
}

// AggOpSpec configures NewAgg.
type AggOpSpec struct {
	Name string
	// InputSchema is the pipelined input's schema.
	InputSchema *storage.Schema
	// GroupBy expressions with names; empty for a scalar aggregate.
	GroupBy      []expr.Expr
	GroupByNames []string
	// Aggs are the aggregates to compute.
	Aggs []AggSpec
}

// NewAgg builds an aggregation operator.
func NewAgg(spec AggOpSpec) *AggOp {
	if len(spec.Aggs) == 0 {
		panic("exec: aggregation needs at least one aggregate")
	}
	cols := make([]storage.Column, 0, len(spec.GroupBy)+len(spec.Aggs))
	gb := expr.OutputSchema(spec.GroupBy, spec.GroupByNames)
	for i := range spec.GroupBy {
		cols = append(cols, gb.Col(i))
	}
	for _, a := range spec.Aggs {
		cols = append(cols, storage.Column{Name: a.Name, Type: aggType(a), Width: aggWidth(a)})
	}
	op := &AggOp{
		name:    spec.Name,
		groupBy: spec.GroupBy,
		aggs:    spec.Aggs,
		out:     storage.NewSchema(cols...),
		groups:  make(map[string]*aggGroup),
	}
	all := append([]expr.Expr{}, spec.GroupBy...)
	for _, a := range spec.Aggs {
		if a.Arg != nil {
			all = append(all, a.Arg)
		}
	}
	op.readCols = expr.PrimaryCols(all...)
	return op
}

func aggType(a AggSpec) types.TypeID {
	switch a.Func {
	case Count, CountDistinct:
		return types.Int64
	case Avg:
		return types.Float64
	case Sum:
		if a.Arg.Type() == types.Int64 {
			return types.Int64
		}
		return types.Float64
	default: // Min, Max
		return a.Arg.Type()
	}
}

func aggWidth(a AggSpec) int {
	if (a.Func == Min || a.Func == Max) && a.Arg.Type() == types.Char {
		if c, ok := a.Arg.(*expr.ColRef); ok {
			return c.Width
		}
		return 32
	}
	return 0
}

func (o *AggOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *AggOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *AggOp) NumInputs() int { return 1 }

// OutSchema returns the result schema: group columns then aggregates.
func (o *AggOp) OutSchema() *storage.Schema { return o.out }

// Feed implements core.Operator.
func (o *AggOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &aggWO{op: o, block: b}
	}
	return wos
}

// Final implements core.Operator: a single work order emits the merged
// groups.
func (o *AggOp) Final(*core.ExecCtx) []core.WorkOrder {
	return []core.WorkOrder{&aggFinalWO{op: o}}
}

// ScalarValue implements core.Operator: valid for scalar aggregates after
// the final work order ran.
func (o *AggOp) ScalarValue() (types.Datum, bool) { return o.scalarVal, o.hasScalar }

// Cleanup implements core.Operator.
func (o *AggOp) Cleanup(ctx *core.ExecCtx) {
	if ctx.Run != nil {
		ctx.Run.HashTables.Sub(atomic.LoadInt64(&o.memBytes))
	}
}

// MemBytes returns the approximate aggregation-table footprint.
func (o *AggOp) MemBytes() int64 { return atomic.LoadInt64(&o.memBytes) }

type aggWO struct {
	op    *AggOp
	block *storage.Block
}

func (w *aggWO) Inputs() []*storage.Block { return []*storage.Block{w.block} }

func (w *aggWO) Run(ctx *core.ExecCtx, out *core.Output) {
	o := w.op
	b := w.block
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.ConsumedSeq(b, readBytes(b, o.readCols))
	}

	local := make(map[string]*aggGroup)
	ec := expr.Ctx{B: b, Scalars: ctx.Scalars}
	var keyBuf []byte
	for r := 0; r < n; r++ {
		ec.Row = r
		keyBuf = keyBuf[:0]
		keys := make([]types.Datum, len(o.groupBy))
		for i, g := range o.groupBy {
			keys[i] = g.Eval(&ec)
			keyBuf = appendKey(keyBuf, keys[i])
		}
		g := local[string(keyBuf)]
		if g == nil {
			g = &aggGroup{keys: copyDatums(keys), acc: make([]accCell, len(o.aggs))}
			local[string(keyBuf)] = g
		}
		for i, a := range o.aggs {
			cell := &g.acc[i]
			cell.count++
			if a.Arg == nil {
				continue
			}
			v := a.Arg.Eval(&ec)
			switch a.Func {
			case Sum, Avg:
				cell.sumF += v.Float()
				cell.sumI += v.I
			case CountDistinct:
				if cell.distinct == nil {
					cell.distinct = make(map[string]struct{})
				}
				cell.distinct[string(appendKey(nil, v))] = struct{}{}
			case Min:
				if !cell.set || types.Compare(v, cell.minmax) < 0 {
					cell.minmax = copyDatum(v)
					cell.set = true
				}
			case Max:
				if !cell.set || types.Compare(v, cell.minmax) > 0 {
					cell.minmax = copyDatum(v)
					cell.set = true
				}
			}
		}
	}
	o.merge(ctx, local)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.RandomProbes(int64(n), atomic.LoadInt64(&o.memBytes)+1)
	}
}

func (o *AggOp) merge(ctx *core.ExecCtx, local map[string]*aggGroup) {
	var grew int64
	o.mu.Lock()
	for k, g := range local {
		tgt := o.groups[k]
		if tgt == nil {
			o.groups[k] = g
			grew += int64(len(k)) + int64(len(g.acc))*48 + 48
			continue
		}
		for i := range g.acc {
			src, dst := &g.acc[i], &tgt.acc[i]
			dst.count += src.count
			dst.sumF += src.sumF
			dst.sumI += src.sumI
			if src.distinct != nil {
				if dst.distinct == nil {
					dst.distinct = src.distinct
				} else {
					for k := range src.distinct {
						dst.distinct[k] = struct{}{}
					}
					grew += int64(len(src.distinct)) * 24
				}
			}
			if src.set {
				f := o.aggs[i].Func
				if !dst.set || (f == Min && types.Compare(src.minmax, dst.minmax) < 0) ||
					(f == Max && types.Compare(src.minmax, dst.minmax) > 0) {
					dst.minmax = src.minmax
					dst.set = true
				}
			}
		}
	}
	o.mu.Unlock()
	if grew != 0 {
		atomic.AddInt64(&o.memBytes, grew)
		if ctx.Run != nil {
			ctx.Run.HashTables.Add(grew)
		}
	}
}

type aggFinalWO struct{ op *AggOp }

func (w *aggFinalWO) Inputs() []*storage.Block { return nil }

func (w *aggFinalWO) Run(ctx *core.ExecCtx, out *core.Output) {
	o := w.op
	if len(o.groupBy) == 0 && len(o.groups) == 0 {
		// SQL: a scalar aggregate over empty input yields one row.
		o.groups[""] = &aggGroup{acc: make([]accCell, len(o.aggs))}
	}
	em := core.NewEmitter(ctx, out, o.self, o.out)
	defer em.Close()
	row := make([]types.Datum, o.out.NumCols())
	for _, g := range o.groups {
		copy(row, g.keys)
		for i, a := range o.aggs {
			row[len(g.keys)+i] = finishCell(a, &g.acc[i])
		}
		em.AppendRow(row...)
		out.RowsIn++
	}
	if len(o.groupBy) == 0 {
		for g := range o.groups {
			o.scalarVal = finishCell(o.aggs[0], &o.groups[g].acc[0])
			o.hasScalar = true
		}
	}
}

func finishCell(a AggSpec, c *accCell) types.Datum {
	switch a.Func {
	case Count:
		return types.NewInt64(c.count)
	case CountDistinct:
		return types.NewInt64(int64(len(c.distinct)))
	case Avg:
		if c.count == 0 {
			return types.NewFloat64(0)
		}
		return types.NewFloat64(c.sumF / float64(c.count))
	case Sum:
		if a.Arg.Type() == types.Int64 {
			return types.NewInt64(c.sumI)
		}
		return types.NewFloat64(c.sumF)
	default: // Min, Max
		if !c.set {
			return types.Datum{Ty: a.Arg.Type()}
		}
		return c.minmax
	}
}

// appendKey serializes a datum into a group key, preserving equality.
func appendKey(buf []byte, d types.Datum) []byte {
	switch d.Ty {
	case types.Char:
		b := types.TrimPad(d.B)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
		buf = append(buf, 'c')
		buf = append(buf, l[:]...)
		return append(buf, b...)
	case types.Float64:
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(int64(d.F*1e6))) // exact for TPC-H decimals
		buf = append(buf, 'f')
		return append(buf, v[:]...)
	default:
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(d.I))
		buf = append(buf, 'i')
		return append(buf, v[:]...)
	}
}

func copyDatum(d types.Datum) types.Datum {
	if d.Ty == types.Char {
		b := make([]byte, len(d.B))
		copy(b, d.B)
		d.B = b
	}
	return d
}

func copyDatums(ds []types.Datum) []types.Datum {
	out := make([]types.Datum, len(ds))
	for i, d := range ds {
		out[i] = copyDatum(d)
	}
	return out
}

// String renders the operator.
func (o *AggOp) String() string {
	return fmt.Sprintf("agg(%s,%d groups,%d aggs)", o.name, len(o.groupBy), len(o.aggs))
}

// FuncName returns the display name of an aggregate function.
func (f AggFunc) String() string { return aggNames[f] }
