// Package exec implements the relational operators that run on the core
// scheduler: select (scan + filter + project, with optional LIP sideways
// filters), hash-join build and probe (inner, left outer, semi, anti, with
// residual predicates), hash aggregation, sort with optional limit, and the
// result collector. Each operator turns its inputs into block-granular work
// orders; the unit of transfer between operators is entirely the scheduler's
// business.
package exec

import (
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/storage"
)

// selfID lets the plan builder hand each operator its own ID (needed for
// temp-block pool ownership).
type selfID interface{ setID(core.OpID) }

// AddOp appends op to the plan and assigns its ID.
func AddOp(p *core.Plan, op core.Operator) core.OpID {
	id := p.AddOp(op)
	if s, ok := op.(selfID); ok {
		s.setID(id)
	}
	return id
}

// readBytes returns the bytes a scan of rows in b touches: only the
// referenced columns for a column-store block, the full tuples for a
// row-store block (non-referenced columns ride along in the same cache
// lines — the Section IV-B effect).
func readBytes(b *storage.Block, cols []int) int64 {
	rows := int64(b.NumRows())
	if b.Format() == storage.ColumnStore {
		var w int64
		for _, c := range cols {
			w += int64(b.Schema().ColWidth(c))
		}
		return rows * w
	}
	return rows * int64(b.Schema().RowWidth())
}

// colRefsOnly returns the primary-side column indexes if every expression is
// a plain Primary ColRef (the fast copy path), else nil.
func colRefsOnly(exprs []expr.Expr) []int {
	idx := make([]int, len(exprs))
	for i, e := range exprs {
		c, ok := expr.AsPrimaryColRef(e)
		if !ok {
			return nil
		}
		idx[i] = c.Col
	}
	return idx
}
