package exec

import (
	"repro/internal/core"
	"repro/internal/storage"
)

// CollectOp is the plan sink: it adopts every block fed to it into a result
// table. Adopted blocks are never recycled, so the result stays valid after
// the run.
type CollectOp struct {
	core.Base
	result *storage.Table
}

// NewCollect builds a collector whose result table has the given schema.
func NewCollect(schema *storage.Schema, blockBytes int, format storage.Format) *CollectOp {
	return &CollectOp{result: storage.NewTable("result", schema, format, blockBytes)}
}

// Name implements core.Operator.
func (o *CollectOp) Name() string { return "collect" }

// NumInputs implements core.Operator.
func (o *CollectOp) NumInputs() int { return 1 }

// AdoptsInputs implements core.Operator.
func (o *CollectOp) AdoptsInputs() bool { return true }

// Feed implements core.Operator.
func (o *CollectOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	for _, b := range blocks {
		o.result.Append(b)
	}
	return nil
}

// Result returns the collected result table.
func (o *CollectOp) Result() *storage.Table { return o.result }

// AbandonAdopted implements core.AdoptingOperator: when a run aborts, the
// blocks already adopted into the result table are handed back to the
// scheduler's cleanup for release (the partial result is meaningless, and a
// serving layer must get every pool block back from a failed query). The
// collector is left with a fresh empty table.
func (o *CollectOp) AbandonAdopted() []*storage.Block {
	t := o.result
	o.result = storage.NewTable(t.Name(), t.Schema(), t.Format(), t.BlockBytes())
	return t.Blocks()
}
