package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/hashtable"
	"repro/internal/storage"
	"repro/internal/types"
)

// BuildHashOp consumes its input and builds a join hash table keyed on one
// or two integer columns, storing a projection of the build side as the
// per-entry payload. With BuildBloom set it also populates a bloom filter
// over the first key column for LIP consumers.
//
// Build work orders run the block-granular insert kernel
// (hashtable.InsertBlock): keys are gathered and hashed vectorized, and each
// hash-table shard lock is taken once per block instead of once per row.
// The bloom filter is populated with the same gathered key vector through
// lock-free atomic adds, so concurrent build work orders never serialize on
// an operator mutex. Insert scratch buffers are pooled across work orders,
// making the steady-state build allocation-free per block.
type BuildHashOp struct {
	core.Base
	self       core.OpID
	name       string
	keyCols    []int
	payloadIdx []int
	paySchema  *storage.Schema
	expected   int
	buildBloom bool
	keyOnly    bool

	ht        *hashtable.Table
	filter    *bloom.Filter
	scratch   sync.Pool // *hashtable.InsertScratch
	readCols  []int
	partLocal bool

	// demoted flips (permanently, for the run) when a fault fires on the
	// batch insert path: subsequent work orders — including the retry of the
	// failed one — take the row-at-a-time reference path, which consults no
	// fault sites. Graceful degradation instead of repeated failure.
	demoted atomic.Bool
}

// BuildSpec configures NewBuildHash.
type BuildSpec struct {
	Name string
	// InputSchema is the build input's schema.
	InputSchema *storage.Schema
	// KeyCols are one or two key column indexes in the input.
	KeyCols []int
	// Payload are the input columns stored per entry (what downstream
	// operators read from the build side). May be empty for semi/anti
	// joins that need only existence.
	Payload []int
	// ExpectedRows sizes the hash table (and bloom filter).
	ExpectedRows int
	// BuildBloom also builds a LIP bloom filter on KeyCols[0].
	BuildBloom bool
	// PartitionLocal marks a per-partition build clone downstream of an
	// exchange: the clone owns its hash table outright, so inserts run the
	// unlocked kernel (zero shard-lock acquisitions). The plan builder must
	// cap such clones at MaxDOP 1 — the exchange guarantees key disjointness
	// across clones, MaxDOP 1 guarantees exclusive table access within one.
	PartitionLocal bool
}

// NewBuildHash builds a hash-table build operator.
func NewBuildHash(spec BuildSpec) *BuildHashOp {
	if len(spec.KeyCols) == 0 || len(spec.KeyCols) > 2 {
		panic("exec: build needs 1 or 2 key columns")
	}
	op := &BuildHashOp{
		name:       spec.Name,
		keyCols:    spec.KeyCols,
		payloadIdx: spec.Payload,
		paySchema:  spec.InputSchema.Project(spec.Payload),
		expected:   spec.ExpectedRows,
		buildBloom: spec.BuildBloom,
		keyOnly:    len(spec.Payload) == 0,
		partLocal:  spec.PartitionLocal,
	}
	op.readCols = append(append([]int{}, spec.KeyCols...), spec.Payload...)
	return op
}

func (o *BuildHashOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *BuildHashOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *BuildHashOp) NumInputs() int { return 1 }

// Start implements core.Operator: the hash table is allocated lazily when
// the operator is unblocked, so staged ("one join at a time") plans hold
// only the live join's table in memory — the accounting Table II of the
// paper depends on.
func (o *BuildHashOp) Start(ctx *core.ExecCtx) []core.WorkOrder {
	cfg := hashtable.Config{
		PayloadSchema: o.paySchema, InitialCapacity: o.expected,
		Owned: o.partLocal,
	}
	if ctx.Run != nil {
		cfg.Gauge = &ctx.Run.HashTables
	}
	o.ht = hashtable.New(cfg)
	if o.buildBloom {
		n := o.expected
		if n < 1024 {
			n = 1024
		}
		o.filter = bloom.New(n, 10)
	}
	return nil
}

// HT returns the hash table (valid for probing once this operator is done).
func (o *BuildHashOp) HT() *hashtable.Table { return o.ht }

// Bloom returns the LIP filter (nil unless BuildBloom was set).
func (o *BuildHashOp) Bloom() *bloom.Filter { return o.filter }

// PayloadSchema returns the schema of per-entry payload tuples.
func (o *BuildHashOp) PayloadSchema() *storage.Schema { return o.paySchema }

// Feed implements core.Operator.
func (o *BuildHashOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &buildWO{op: o, block: b}
	}
	return wos
}

type buildWO struct {
	op    *BuildHashOp
	block *storage.Block
}

func (w *buildWO) Inputs() []*storage.Block { return []*storage.Block{w.block} }

func (w *buildWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	b := w.block
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.ConsumedSeq(b, readBytes(b, o.readCols))
	}
	if n > 0 {
		if o.demoted.Load() {
			o.insertRef(b)
		} else if err := w.runBatch(ctx, out); err != nil {
			// Fault sites fire before any table or filter mutation, so
			// returning here leaves shared state untouched — the scheduler
			// rolls the attempt back and re-dispatches it, and the retry
			// lands on the (now demoted) reference path.
			o.demote(out)
			return err
		}
	}
	if ctx.Sim != nil {
		// Hash-table inserts are random writes against the growing table.
		out.Sim += ctx.Sim.RandomProbes(int64(n), o.ht.UsedBytes())
	}
	out.RowsOut = int64(n)
	return nil
}

// runBatch inserts the block through the vectorized kernels. Both fault
// sites are consulted up front, strictly before the first shared-state
// mutation, so a faulted attempt has zero side effects to undo.
func (w *buildWO) runBatch(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	b := w.block
	if err := ctx.FaultAt(faults.HashInsert); err != nil {
		return err
	}
	if o.filter != nil {
		if err := ctx.FaultAt(faults.BloomBuild); err != nil {
			return err
		}
	}
	sc, _ := o.scratch.Get().(*hashtable.InsertScratch)
	if sc != nil {
		out.ScratchHits++
	} else {
		sc = &hashtable.InsertScratch{}
	}
	var locks int
	switch {
	case o.partLocal && o.keyOnly:
		locks = o.ht.InsertBlockOwnedKeyOnly(b, o.keyCols, sc)
	case o.partLocal:
		locks = o.ht.InsertBlockOwned(b, o.keyCols, o.payloadIdx, sc)
	case o.keyOnly:
		locks = o.ht.InsertBlockKeyOnly(b, o.keyCols, sc)
	default:
		locks = o.ht.InsertBlock(b, o.keyCols, o.payloadIdx, sc)
	}
	out.ShardLocks += int64(locks)
	out.BatchedRows += int64(b.NumRows())
	if o.filter != nil {
		// Reuse the kernel's gathered key column; atomic adds need no
		// operator-level lock.
		k0, _ := sc.Keys()
		o.filter.AddMany(k0)
	}
	o.scratch.Put(sc)
	return nil
}

// demote permanently switches the operator to the reference insert path and
// records the transition once.
func (o *BuildHashOp) demote(out *core.Output) {
	if o.demoted.CompareAndSwap(false, true) {
		out.Demotions++
	}
}

// insertRef is the row-at-a-time reference insert path used after demotion;
// it consults no fault sites.
func (o *BuildHashOp) insertRef(b *storage.Block) {
	n := b.NumRows()
	for r := 0; r < n; r++ {
		k0 := b.Int64At(o.keyCols[0], r)
		var k1 int64
		if len(o.keyCols) == 2 {
			k1 = b.Int64At(o.keyCols[1], r)
		}
		if o.keyOnly {
			o.ht.InsertKeyOnly(k0, k1)
		} else {
			o.ht.Insert(k0, k1, b, r, o.payloadIdx)
		}
		if o.filter != nil {
			o.filter.Add(k0)
		}
	}
}

// String renders the operator.
func (o *BuildHashOp) String() string { return fmt.Sprintf("build_hash(%s)", o.name) }

// JoinType selects the probe semantics. All variants preserve the probe
// side, so no shared match state is needed across work orders.
type JoinType uint8

const (
	// Inner emits one output row per (probe row, matching build row).
	Inner JoinType = iota
	// LeftOuter emits every probe row; unmatched rows zero-fill the build
	// columns.
	LeftOuter
	// LeftSemi emits probe rows with at least one match.
	LeftSemi
	// LeftAnti emits probe rows with no match.
	LeftAnti
)

// String returns the SQL-ish join name.
func (j JoinType) String() string {
	switch j {
	case Inner:
		return "inner"
	case LeftOuter:
		return "left_outer"
	case LeftSemi:
		return "semi"
	case LeftAnti:
		return "anti"
	default:
		return "join?"
	}
}

// ProbeOp probes a build operator's hash table with its pipelined input.
// The plan must add a blocking edge build→probe; the probe releases the hash
// table when it finishes.
//
// Probe work orders run vectorized: the probe-side key columns are gathered
// and hashed in one pass (types.HashPairVec) into pooled scratch buffers,
// and each row probes with hashtable.LookupHashed, so per-row work is one
// table walk with no re-hashing and the steady state allocates nothing per
// block.
type ProbeOp struct {
	core.Base
	self      core.OpID
	name      string
	build     *BuildHashOp
	keyCols   []int
	joinType  JoinType
	residual  expr.Expr // over Ctx{B: probe row, B2: build payload row}
	probeProj []int
	buildProj []int
	out       *storage.Schema
	readCols  []int
	scratch   sync.Pool // *probeScratch
}

// probeScratch holds one probe work order's reusable key and hash vectors.
type probeScratch struct {
	k0 []int64
	k1 []int64
	h  []uint64
}

// gather pulls the probe key columns of b into the scratch and hashes them.
func (sc *probeScratch) gather(b *storage.Block, keyCols []int) {
	sc.k0 = b.GatherInt64(keyCols[0], sc.k0)
	if len(keyCols) == 2 {
		sc.k1 = b.GatherInt64(keyCols[1], sc.k1)
	} else {
		sc.k1 = nil
	}
	sc.h = types.HashPairVec(sc.k0, sc.k1, sc.h)
}

// ProbeSpec configures NewProbe.
type ProbeSpec struct {
	Name string
	// Build is the operator whose hash table is probed.
	Build *BuildHashOp
	// InputSchema is the probe input's schema.
	InputSchema *storage.Schema
	// KeyCols are the probe-side key columns (must match the build's key
	// arity).
	KeyCols []int
	// JoinType selects the semantics (default Inner).
	JoinType JoinType
	// Residual is an extra join predicate evaluated over the (probe,
	// build-payload) row pair; may be nil.
	Residual expr.Expr
	// ProbeProj / BuildProj are the output columns taken from each side;
	// BuildProj indexes the build payload schema and must be empty for
	// semi/anti joins.
	ProbeProj []int
	BuildProj []int
	// Rename, if non-empty, renames the output columns (probe columns
	// first, then build columns).
	Rename []string
}

// NewProbe builds a probe operator.
func NewProbe(spec ProbeSpec) *ProbeOp {
	if (spec.JoinType == LeftSemi || spec.JoinType == LeftAnti) && len(spec.BuildProj) > 0 {
		panic("exec: semi/anti joins cannot project build columns")
	}
	cols := make([]storage.Column, 0, len(spec.ProbeProj)+len(spec.BuildProj))
	for _, c := range spec.ProbeProj {
		cols = append(cols, spec.InputSchema.Col(c))
	}
	pay := spec.Build.PayloadSchema()
	for _, c := range spec.BuildProj {
		cols = append(cols, pay.Col(c))
	}
	if len(spec.Rename) > 0 {
		if len(spec.Rename) != len(cols) {
			panic("exec: Rename length mismatch")
		}
		for i := range cols {
			cols[i].Name = spec.Rename[i]
		}
	}
	op := &ProbeOp{
		name:      spec.Name,
		build:     spec.Build,
		keyCols:   spec.KeyCols,
		joinType:  spec.JoinType,
		residual:  spec.Residual,
		probeProj: spec.ProbeProj,
		buildProj: spec.BuildProj,
		out:       storage.NewSchema(cols...),
	}
	op.readCols = append(append([]int{}, spec.KeyCols...), spec.ProbeProj...)
	op.readCols = append(op.readCols, expr.PrimaryCols(spec.Residual)...)
	return op
}

func (o *ProbeOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *ProbeOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *ProbeOp) NumInputs() int { return 1 }

// OutSchema returns the joined output schema.
func (o *ProbeOp) OutSchema() *storage.Schema { return o.out }

// Feed implements core.Operator.
func (o *ProbeOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &probeWO{op: o, block: b}
	}
	return wos
}

// Cleanup implements core.Operator: the probe is the hash table's consumer
// and releases its memory.
func (o *ProbeOp) Cleanup(*core.ExecCtx) { o.build.HT().Release() }

type probeWO struct {
	op    *ProbeOp
	block *storage.Block
}

func (w *probeWO) Inputs() []*storage.Block { return []*storage.Block{w.block} }

func (w *probeWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	b := w.block
	ht := o.build.HT()
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.ConsumedSeq(b, readBytes(b, o.readCols))
	}
	em := core.NewEmitter(ctx, out, o.self, o.out)
	ec := expr.Ctx{B: b, Scalars: ctx.Scalars}
	sc, _ := o.scratch.Get().(*probeScratch)
	if sc != nil {
		out.ScratchHits++
	} else {
		sc = &probeScratch{}
	}
	sc.gather(b, o.keyCols)
	out.BatchedRows += int64(n)
	for r := 0; r < n; r++ {
		k0 := sc.k0[r]
		var k1 int64
		if sc.k1 != nil {
			k1 = sc.k1[r]
		}
		matched := false
		ht.LookupHashed(sc.h[r], k0, k1, func(pb *storage.Block, prow int) bool {
			if o.residual != nil {
				ec.Row, ec.B2, ec.Row2 = r, pb, prow
				if o.residual.Eval(&ec).I == 0 {
					return true // keep scanning duplicates
				}
			}
			matched = true
			switch o.joinType {
			case Inner, LeftOuter:
				em.AppendRaw(b, r, o.probeProj, pb, prow, o.buildProj)
				return true
			default: // semi/anti need only existence
				return false
			}
		})
		switch o.joinType {
		case LeftSemi:
			if matched {
				em.AppendFrom(b, r, o.probeProj)
			}
		case LeftAnti:
			if !matched {
				em.AppendFrom(b, r, o.probeProj)
			}
		case LeftOuter:
			if !matched {
				em.AppendRaw(b, r, o.probeProj, nil, 0, o.buildProj)
			}
		}
	}
	o.scratch.Put(sc)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.RandomProbes(int64(n), ht.UsedBytes())
	}
	return nil
}

// String renders the operator.
func (o *ProbeOp) String() string {
	return fmt.Sprintf("probe(%s,%s)", o.name, o.joinType)
}
