package exec

import (
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
)

// CaptureOp is a passive tap the engine attaches to a fingerprinted
// interior node whose result the reuse cache wants: it is wired as one more
// pipelined consumer of the node, copying every delivered row into blocks
// of its own so the original data flow — refcounts, releases, adoption —
// is untouched. The copies are checked out of the run's pool (so they are
// accounted live while the run is in flight) but never checked in or
// emitted:
//
//   - on success the engine calls Take, disowns the bytes from the pool,
//     and hands the block set to the cache — the entry becomes a pinned,
//     immutable table;
//   - on abort the scheduler's cleanup collects the copies through
//     AbandonAdopted and releases them, so a failed run leaves no
//     partially-visible entry.
//
// Capture work orders copy rows with no emitter, no fault sites, and no
// interruption points, so they can never fail or be retried — the rollback
// machinery never sees them. The engine caps the operator at MaxDOP 1;
// the mutex is belt-and-braces for the scheduler-side finalizers.
type CaptureOp struct {
	core.Base
	self     core.OpID
	schema   *storage.Schema
	identity []int // identity projection, 0..NumCols-1
	maxBytes int64

	mu         sync.Mutex
	blocks     []*storage.Block
	cur        *storage.Block
	bytes      int64
	rows       int64
	overflowed bool
}

// NewCapture builds a capture tap for a producer with the given output
// schema. maxBytes caps the copied set: past it the capture abandons itself
// (releasing what it copied) rather than bloat the run, and Take returns
// nil.
func NewCapture(schema *storage.Schema, maxBytes int64) *CaptureOp {
	idx := make([]int, schema.NumCols())
	for i := range idx {
		idx[i] = i
	}
	return &CaptureOp{schema: schema, identity: idx, maxBytes: maxBytes}
}

func (o *CaptureOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *CaptureOp) Name() string { return "capture" }

// NumInputs implements core.Operator.
func (o *CaptureOp) NumInputs() int { return 1 }

// Feed implements core.Operator: one copy work order per delivery.
func (o *CaptureOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	return []core.WorkOrder{&captureWO{op: o, blocks: blocks}}
}

// Cleanup implements core.Operator: on the success path it finalizes the
// tail block (scheduler goroutine, after every work order completed).
func (o *CaptureOp) Cleanup(ctx *core.ExecCtx) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cur == nil {
		return
	}
	if o.cur.NumRows() > 0 {
		o.blocks = append(o.blocks, o.cur)
	} else {
		o.bytes -= int64(o.cur.AllocBytes())
		ctx.Pool.Release(o.cur)
	}
	o.cur = nil
}

// AbandonAdopted implements core.AdoptingOperator for the abort path: the
// copied blocks go back to the scheduler's cleanup for release. (The
// operator does not adopt its INPUT blocks — AdoptsInputs stays false so
// the producer's refcount flow is unchanged — but its copies are
// operator-owned blocks only it knows about, exactly what this hook
// surrenders.)
func (o *CaptureOp) AbandonAdopted() []*storage.Block {
	o.mu.Lock()
	defer o.mu.Unlock()
	bs := o.blocks
	if o.cur != nil {
		bs = append(bs, o.cur)
	}
	o.blocks, o.cur, o.bytes, o.rows = nil, nil, 0, 0
	o.overflowed = true // a half-captured set must never be admitted
	return bs
}

// Take returns the captured block set with its byte and row totals,
// resetting the operator. It returns nil blocks if the capture overflowed
// its byte cap (or was abandoned). The caller owns the blocks and must
// Disown their bytes from the pool before handing them to the cache.
func (o *CaptureOp) Take() (blocks []*storage.Block, bytes, rows int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.overflowed {
		return nil, 0, 0
	}
	blocks, bytes, rows = o.blocks, o.bytes, o.rows
	o.blocks, o.cur, o.bytes, o.rows = nil, nil, 0, 0
	return blocks, bytes, rows
}

type captureWO struct {
	op     *CaptureOp
	blocks []*storage.Block
}

// Inputs implements core.WorkOrder: the delivered blocks are refcounted
// intermediates, released by the scheduler once the copy completed.
func (w *captureWO) Inputs() []*storage.Block { return w.blocks }

// Run implements core.WorkOrder.
func (w *captureWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.overflowed {
		return nil
	}
	for _, b := range w.blocks {
		n := b.NumRows()
		for r := 0; r < n; r++ {
			if o.cur == nil {
				if o.maxBytes > 0 && o.bytes >= o.maxBytes {
					o.abandonLocked(ctx)
					return nil
				}
				o.cur = ctx.Pool.CheckOut(int(o.self), o.schema, ctx.TempFormat, ctx.TempBlockBytes)
				o.bytes += int64(o.cur.AllocBytes())
			}
			if !o.cur.AppendFrom(b, r, o.identity) {
				o.blocks = append(o.blocks, o.cur)
				o.cur = nil
				r--
				continue
			}
			o.rows++
		}
	}
	return nil
}

// abandonLocked releases everything copied so far and marks the capture
// overflowed; subsequent deliveries are dropped without copying.
func (o *CaptureOp) abandonLocked(ctx *core.ExecCtx) {
	for _, b := range o.blocks {
		ctx.Pool.Release(b)
	}
	if o.cur != nil {
		ctx.Pool.Release(o.cur)
	}
	o.blocks, o.cur, o.bytes, o.rows = nil, nil, 0, 0
	o.overflowed = true
}
