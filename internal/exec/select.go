package exec

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/storage"
)

// LIPRef attaches a lookahead-information-passing bloom filter to a select
// operator: tuples whose key column misses the filter of a downstream join's
// build side are dropped before materialization [Zhu et al.]. The referenced
// build operator must be connected to the select with a blocking edge so the
// filter is complete before the scan starts.
type LIPRef struct {
	Build  *BuildHashOp
	KeyCol int
}

// SelectOp scans a base table or a pipelined input, applies an optional
// predicate and LIP filters, and materializes a projection. It is the
// producer of every pipeline in the TPC-H plans, and — with a nil predicate
// — doubles as a projection/compute operator.
type SelectOp struct {
	core.Base
	self      core.OpID
	name      string
	base      *storage.Table // nil when fed by a pipelined input
	pred      expr.Expr      // may be nil
	projExprs []expr.Expr
	projIdx   []int // fast path: all projections are plain column refs
	readCols  []int // referenced columns, for cache-model charging
	lips      []LIPRef
	out       *storage.Schema
	scratch   sync.Pool // *selScratch
}

// selScratch is a pooled selection vector: filtered selects reuse one
// buffer across work orders instead of allocating a fresh []int32 per block.
type selScratch struct {
	sel []int32
}

// SelectSpec configures NewSelect.
type SelectSpec struct {
	Name string
	// Base is the table to scan; leave nil for a pipelined input.
	Base *storage.Table
	// InputSchema is the pipelined input's schema (required when Base is
	// nil).
	InputSchema *storage.Schema
	// Pred filters rows (nil keeps all).
	Pred expr.Expr
	// Proj are the output expressions, named by ProjNames.
	Proj      []expr.Expr
	ProjNames []string
	// LIPs are sideways bloom filters applied after Pred.
	LIPs []LIPRef
}

// NewSelect builds a select operator.
func NewSelect(spec SelectSpec) *SelectOp {
	if len(spec.Proj) == 0 {
		panic("exec: select needs at least one projection")
	}
	if len(spec.Proj) != len(spec.ProjNames) {
		panic("exec: Proj and ProjNames lengths differ")
	}
	op := &SelectOp{
		name:      spec.Name,
		base:      spec.Base,
		pred:      spec.Pred,
		projExprs: spec.Proj,
		lips:      spec.LIPs,
		out:       expr.OutputSchema(spec.Proj, spec.ProjNames),
	}
	op.projIdx = colRefsOnly(spec.Proj)
	all := append([]expr.Expr{spec.Pred}, spec.Proj...)
	op.readCols = expr.PrimaryCols(all...)
	for _, l := range spec.LIPs {
		op.readCols = append(op.readCols, l.KeyCol)
	}
	return op
}

func (o *SelectOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *SelectOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *SelectOp) NumInputs() int {
	if o.base != nil {
		return 0
	}
	return 1
}

// OutSchema returns the schema of the operator's output blocks.
func (o *SelectOp) OutSchema() *storage.Schema { return o.out }

// Start implements core.Operator: a base-table select emits one work order
// per storage block of the table.
func (o *SelectOp) Start(*core.ExecCtx) []core.WorkOrder {
	if o.base == nil {
		return nil
	}
	blocks := o.base.Blocks()
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &selectWO{op: o, block: b, isBase: true}
	}
	return wos
}

// Feed implements core.Operator: one work order per delivered block.
func (o *SelectOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &selectWO{op: o, block: b}
	}
	return wos
}

type selectWO struct {
	op     *SelectOp
	block  *storage.Block
	isBase bool
}

func (w *selectWO) Inputs() []*storage.Block {
	if w.isBase {
		return nil
	}
	return []*storage.Block{w.block}
}

func (w *selectWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	b := w.block
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		bytes := readBytes(b, o.readCols)
		if w.isBase {
			out.Sim += ctx.Sim.ScannedBase(bytes)
		} else {
			out.Sim += ctx.Sim.ConsumedSeq(b, bytes)
		}
	}
	em := core.NewEmitter(ctx, out, o.self, o.out)
	if o.pred == nil && len(o.lips) == 0 {
		// Dense path: pure projection, no selection vector needed.
		for r := 0; r < n; r++ {
			if o.projIdx != nil {
				em.AppendFrom(b, r, o.projIdx)
			} else {
				em.AppendRow(expr.EvalRow(o.projExprs, b, r, ctx.Scalars)...)
			}
		}
		return nil
	}
	// Vectorized path: build a selection vector in pooled scratch, refine it
	// through the LIP bloom filters, then materialize the survivors.
	sp, _ := o.scratch.Get().(*selScratch)
	if sp != nil {
		out.ScratchHits++
	} else {
		sp = &selScratch{}
	}
	var sel []int32
	if o.pred != nil {
		sel = expr.FilterBlock(o.pred, b, ctx.Scalars, sp.sel)
	} else {
		sel = expr.SelectAll(b, sp.sel)
	}
	var lipProbes int64
	for _, l := range o.lips {
		lipProbes += int64(len(sel))
		flt := l.Build.Bloom()
		kept := sel[:0]
		for _, r := range sel {
			if flt.MayContain(b.Int64At(l.KeyCol, int(r))) {
				kept = append(kept, r)
			}
		}
		sel = kept
	}
	for _, r := range sel {
		if o.projIdx != nil {
			em.AppendFrom(b, int(r), o.projIdx)
		} else {
			em.AppendRow(expr.EvalRow(o.projExprs, b, int(r), ctx.Scalars)...)
		}
	}
	out.BatchedRows += int64(n)
	sp.sel = sel[:0] // keep the (possibly re-grown) backing array
	o.scratch.Put(sp)
	if ctx.Sim != nil && lipProbes > 0 && len(o.lips) > 0 {
		// Bloom filters are small; probes are effectively L3-resident.
		out.Sim += ctx.Sim.RandomProbes(lipProbes, o.lips[0].Build.Bloom().Bytes())
	}
	return nil
}

// String renders the operator for plan display.
func (o *SelectOp) String() string {
	src := "pipe"
	if o.base != nil {
		src = o.base.Name()
	}
	pred := ""
	if o.pred != nil {
		pred = " WHERE " + o.pred.String()
	}
	return fmt.Sprintf("select(%s)%s", src, pred)
}
