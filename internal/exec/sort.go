package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/sorter"
	"repro/internal/storage"
	"repro/internal/types"
)

// SortTerm is one ORDER BY term.
type SortTerm struct {
	Key  expr.Expr
	Desc bool
}

const (
	// sortMaxMergeParts caps the range-partitioned merge fan-out.
	sortMaxMergeParts = 8
	// sortMinMergeRows is the minimum row count per merge partition; below
	// it extra partitions cost more in splitter overhead than they win.
	sortMinMergeRows = 4096
	// sortGatherBatch is how many merged rows are staged before a columnar
	// gather into the output block.
	sortGatherBatch = 1024
)

// SortOp is a blocking sort with an optional LIMIT (sort is inherently
// UoT = table, as the paper notes in Section V-B). The fast path encodes
// ORDER BY keys into normalized uint64 words and sorts each fed block into a
// run in its own work order as input arrives (radix sort for single-word
// keys, a bounded top-k heap when Limit > 0), then k-way-merges the runs in
// range-partitioned parallel work orders and emits through a columnar gather
// kernel in one deterministic emit stage. The reference row-at-a-time path
// is kept for non-column keys, ForceReference, and fault demotion; both
// paths order ties by arrival, so their results are bit-identical (the lone
// exception is data mixing -0.0 and +0.0 float keys, which the reference
// comparator cannot distinguish but normalized keys can).
type SortOp struct {
	core.Base
	self   core.OpID
	name   string
	terms  []SortTerm
	desc   []bool // per-term Desc, for types.CompareRows
	limit  int
	schema *storage.Schema
	blocks []*storage.Block // every fed block, arrival order (both paths)

	// rowScratch pools the reference path's row slice across retries.
	rowScratch []sortRow

	// Fast-path plan: filled by initFastPath when every term is a plain
	// column reference of a normalized-key type.
	fast   bool
	layout sorter.Layout
	cols   []int // source column per term

	// demoted flips (permanently, for the run) when a fault fires on the
	// fast path; Final then sorts everything through the reference path.
	demoted atomic.Bool

	mu      sync.Mutex
	runs    []sortRun      // one per fed block, indexed by run sequence
	scratch []*sortScratch // run-generation scratch free list

	// Merge state: built by Final on the scheduler goroutine, filled by the
	// merge work orders, handed to the out-edges by the emit stage.
	mruns []sorter.Run
	parts [][]*storage.Block
}

// sortRun is one block's sorted run: normalized key tuples in sorted order
// and the matching block row ids.
type sortRun struct {
	keys []uint64
	rows []int32
}

// sortScratch holds the reusable buffers of one run-generation work order.
type sortScratch struct {
	i64   []int64
	f64   []float64
	keys  []uint64
	ids   []int32
	kv    []sorter.KV
	kvTmp []sorter.KV
}

// SortSpec configures NewSort.
type SortSpec struct {
	Name string
	// InputSchema is the input (and output) schema.
	InputSchema *storage.Schema
	// Terms are the ORDER BY keys, highest priority first.
	Terms []SortTerm
	// Limit truncates the output (0 = no limit).
	Limit int
	// ForceReference disables the normalized-key fast path, keeping the
	// row-at-a-time reference sort (tests, benchmarks).
	ForceReference bool
}

// NewSort builds a sort operator.
func NewSort(spec SortSpec) *SortOp {
	if len(spec.Terms) == 0 {
		panic("exec: sort needs at least one term")
	}
	op := &SortOp{name: spec.Name, terms: spec.Terms, limit: spec.Limit, schema: spec.InputSchema}
	op.desc = make([]bool, len(spec.Terms))
	for i, t := range spec.Terms {
		op.desc[i] = t.Desc
	}
	if !spec.ForceReference {
		op.initFastPath()
	}
	return op
}

// initFastPath decides fast-path eligibility: every term must be a plain
// column reference of a type with a normalized-key encoding. Char columns
// wider than 8 bytes make the layout approximate (prefix words plus a
// full-value tie-break), which disables range-partitioned merging but keeps
// the vectorized run sort.
func (o *SortOp) initFastPath() {
	terms := make([]sorter.Term, 0, len(o.terms))
	cols := make([]int, 0, len(o.terms))
	for _, t := range o.terms {
		c, ok := expr.AsPrimaryColRef(t.Key)
		if !ok {
			return
		}
		st := sorter.Term{Desc: t.Desc}
		switch c.Ty {
		case types.Int64:
			st.Type = sorter.Int64
		case types.Date:
			st.Type = sorter.Date
		case types.Float64:
			st.Type = sorter.Float64
		case types.Char:
			st.Type = sorter.Bytes
			st.Width = c.Width
		default:
			return
		}
		terms = append(terms, st)
		cols = append(cols, c.Col)
	}
	o.layout = sorter.NewLayout(terms)
	o.cols = cols
	o.fast = true
}

// FastPath reports whether the normalized-key path is active (for tests and
// the bench harness).
func (o *SortOp) FastPath() bool { return o.fast }

func (o *SortOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *SortOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *SortOp) NumInputs() int { return 1 }

// OutSchema returns the output schema (same as input).
func (o *SortOp) OutSchema() *storage.Schema { return o.schema }

// Feed implements core.Operator. The reference path only buffers; the fast
// path additionally issues one run-generation work order per block, so run
// sorting overlaps with upstream production. Run work orders report nil
// Inputs: the scheduler keeps the fed blocks held until the operator
// finishes, which is exactly the lifetime the merge and emit stages need.
func (o *SortOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	var wos []core.WorkOrder
	for _, b := range blocks {
		o.mu.Lock()
		seq := len(o.blocks)
		o.blocks = append(o.blocks, b)
		o.runs = append(o.runs, sortRun{})
		o.mu.Unlock()
		if o.fast {
			wos = append(wos, &sortRunWO{op: o, block: b, seq: seq})
		}
	}
	return wos
}

// getScratch hands out a free run-generation scratch, creating one if none
// is available (one lock acquisition per block, like the agg partials).
func (o *SortOp) getScratch(out *core.Output) *sortScratch {
	o.mu.Lock()
	if n := len(o.scratch); n > 0 {
		sc := o.scratch[n-1]
		o.scratch = o.scratch[:n-1]
		o.mu.Unlock()
		out.ScratchHits++
		return sc
	}
	o.mu.Unlock()
	return &sortScratch{}
}

func (o *SortOp) putScratch(sc *sortScratch) {
	o.mu.Lock()
	o.scratch = append(o.scratch, sc)
	o.mu.Unlock()
}

// sortTie resolves approximate (wide Char) terms against source blocks; run
// indexes select the block, so callers align blocks with run order.
type sortTie struct {
	op     *SortOp
	blocks []*storage.Block
}

func (t *sortTie) Compare(term int, runA int, rowA int32, runB int, rowB int32) int {
	col := t.op.cols[term]
	c := types.Compare(
		t.blocks[runA].DatumAt(col, int(rowA)),
		t.blocks[runB].DatumAt(col, int(rowB)))
	if t.op.terms[term].Desc {
		c = -c
	}
	return c
}

// encodeBlock gathers and normalizes every term of one block into sc.keys
// (row-major, layout stride) and returns the key array.
func (o *SortOp) encodeBlock(b *storage.Block, sc *sortScratch, n int) []uint64 {
	words := o.layout.Words
	if cap(sc.keys) < n*words {
		sc.keys = make([]uint64, n*words)
	}
	keys := sc.keys[:n*words]
	for t := range o.terms {
		col := o.cols[t]
		switch o.layout.Terms[t].Type {
		case sorter.Int64:
			sc.i64 = b.GatherInt64(col, sc.i64)
			o.layout.EncodeInt64(t, sc.i64, nil, keys)
		case sorter.Date:
			sc.i64 = b.GatherDate(col, sc.i64)
			o.layout.EncodeInt64(t, sc.i64, nil, keys)
		case sorter.Float64:
			sc.f64 = b.GatherFloat64(col, sc.f64)
			o.layout.EncodeFloat64(t, sc.f64, nil, keys)
		case sorter.Bytes:
			o.layout.EncodeBytes(t, n, func(i int) []byte { return b.BytesAt(col, i) }, nil, keys)
		}
	}
	return keys
}

// sortRunWO sorts one fed block into a run: encode normalized keys, then
// radix-sort (single exact word), top-k (Limit > 0), or comparison-sort.
type sortRunWO struct {
	op    *SortOp
	block *storage.Block
	seq   int
}

// Inputs returns nil: the fed block must outlive this work order (the merge
// reads it), so it stays held by the scheduler until the operator finishes.
func (w *sortRunWO) Inputs() []*storage.Block { return nil }

func (w *sortRunWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	if o.demoted.Load() {
		return nil // Final re-sorts everything on the reference path
	}
	// The fault site fires before any run state exists, so a faulted attempt
	// mutates nothing; the retry lands here again and no-ops via demoted.
	if err := ctx.FaultAt(faults.SortRun); err != nil {
		if o.demoted.CompareAndSwap(false, true) {
			out.Demotions++
		}
		return err
	}
	b := w.block
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.ConsumedSeq(b, readBytes(b, o.cols))
	}
	var run sortRun
	if n > 0 {
		sc := o.getScratch(out)
		words := o.layout.Words
		var tie sorter.Tie
		if !o.layout.Exact {
			tie = &sortTie{op: o, blocks: []*storage.Block{b}}
		}
		keys := o.encodeBlock(b, sc, n)
		switch {
		case o.limit > 0:
			// Dedicated top-k: the run never materializes more than Limit
			// rows, and rejected rows are counted as pruned.
			tk := sorter.NewTopK(o.limit, &o.layout, 0, tie)
			var pruned int64
			for i := 0; i < n; i++ {
				if !tk.Offer(keys[i*words:(i+1)*words], int32(i)) {
					pruned++
				}
			}
			run.keys, run.rows = tk.Sorted()
			out.TopKPruned += pruned
		case words == 1 && o.layout.Exact:
			if cap(sc.kv) < n {
				sc.kv = make([]sorter.KV, n)
			}
			if cap(sc.kvTmp) < n {
				sc.kvTmp = make([]sorter.KV, n)
			}
			kv := sc.kv[:n]
			for i := 0; i < n; i++ {
				kv[i] = sorter.KV{Key: keys[i], ID: int32(i)}
			}
			sorted := sorter.SortKVs(kv, sc.kvTmp[:n])
			rk := make([]uint64, n)
			rr := make([]int32, n)
			for i, it := range sorted {
				rk[i], rr[i] = it.Key, it.ID
			}
			run.keys, run.rows = rk, rr
		default:
			if cap(sc.ids) < n {
				sc.ids = make([]int32, n)
			}
			ids := sc.ids[:n]
			for i := range ids {
				ids[i] = int32(i)
			}
			sorter.SortRows(&o.layout, keys, ids, 0, tie)
			rk := make([]uint64, 0, n*words)
			rr := make([]int32, n)
			for i, id := range ids {
				rk = append(rk, keys[int(id)*words:(int(id)+1)*words]...)
				rr[i] = id
			}
			run.keys, run.rows = rk, rr
		}
		o.putScratch(sc)
	}
	o.mu.Lock()
	o.runs[w.seq] = run
	o.mu.Unlock()
	out.SortRuns++
	out.SortFastRows += int64(n)
	out.BatchedRows += int64(n)
	return nil
}

// Final implements core.Operator. On the fast path it plans the k-way merge:
// sample splitters over the sorted runs and fan out one range-partitioned
// merge work order per partition (a single partition when a LIMIT bounds the
// output or an approximate layout prevents word-only range comparison). The
// reference path — and a demoted fast path — sorts everything in one work
// order as before.
func (o *SortOp) Final(ctx *core.ExecCtx) []core.WorkOrder {
	if !o.fast || o.demoted.Load() {
		return []core.WorkOrder{&sortWO{op: o}}
	}
	total := 0
	o.mruns = make([]sorter.Run, len(o.runs))
	for i := range o.runs {
		o.mruns[i] = sorter.Run{Keys: o.runs[i].keys, Rows: o.runs[i].rows, Seq: int32(i)}
		total += len(o.runs[i].rows)
	}
	parts := 1
	if o.limit == 0 && o.layout.Exact && ctx.Workers > 1 {
		parts = ctx.Workers
		if parts > sortMaxMergeParts {
			parts = sortMaxMergeParts
		}
		if byRows := total/sortMinMergeRows + 1; parts > byRows {
			parts = byRows
		}
	}
	splits := sorter.Splitters(o.mruns, &o.layout, parts)
	bounds := make([][]uint64, 0, len(splits)+2)
	bounds = append(bounds, nil)
	bounds = append(bounds, splits...)
	bounds = append(bounds, nil)
	np := len(bounds) - 1
	o.parts = make([][]*storage.Block, np)
	wos := make([]core.WorkOrder, np)
	for p := 0; p < np; p++ {
		wos[p] = &sortMergeWO{op: o, part: p, lo: bounds[p], hi: bounds[p+1]}
	}
	return wos
}

// sortMergeWO merges one key range of every run and materializes it into
// temporary blocks via the columnar gather kernel. The blocks are parked on
// the operator; the emit stage hands them to the out-edges in partition
// order once every partition completed.
type sortMergeWO struct {
	op     *SortOp
	part   int
	lo, hi []uint64 // partition bounds as key tuples; nil = open end
}

func (w *sortMergeWO) Inputs() []*storage.Block { return nil }

func (w *sortMergeWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	out.SortMergeFanout++
	runs := o.mruns
	lo := make([]int, len(runs))
	hi := make([]int, len(runs))
	for i := range runs {
		if w.lo != nil {
			lo[i] = sorter.LowerBound(&runs[i], &o.layout, w.lo)
		}
		if w.hi != nil {
			hi[i] = sorter.LowerBound(&runs[i], &o.layout, w.hi)
		} else {
			hi[i] = runs[i].Len()
		}
	}
	var tie sorter.Tie
	if !o.layout.Exact {
		tie = &sortTie{op: o, blocks: o.blocks}
	}
	m := sorter.NewMerge(runs, &o.layout, tie, lo, hi)

	proj := make([]int, o.schema.NumCols())
	for i := range proj {
		proj[i] = i
	}
	var blocks []*storage.Block
	abort := func(err error) error {
		for _, b := range blocks {
			ctx.Pool.Release(b)
		}
		return err
	}
	remaining := -1
	if o.limit > 0 {
		remaining = o.limit // single partition when limited, so this is global
	}
	var srcBuf, rowBuf [sortGatherBatch]int32
	var cur *storage.Block
	rows := int64(0)
	for {
		bn := 0
		for bn < sortGatherBatch && remaining != 0 {
			run, row, ok := m.Next()
			if !ok {
				break
			}
			srcBuf[bn], rowBuf[bn] = int32(run), row
			bn++
			if remaining > 0 {
				remaining--
			}
		}
		if bn == 0 {
			break
		}
		rows += int64(bn)
		at := 0
		for at < bn {
			if cur == nil {
				if err := ctx.Canceled(); err != nil {
					return abort(err)
				}
				cur = ctx.Pool.CheckOut(int(o.self), o.schema, ctx.TempFormat, ctx.TempBlockBytes)
				blocks = append(blocks, cur)
			}
			at += cur.AppendGather(o.blocks, srcBuf[at:bn], rowBuf[at:bn], proj)
			if cur.Full() {
				if ctx.Sim != nil {
					out.Sim += ctx.Sim.Produced(cur, int64(cur.UsedBytes()))
				}
				cur = nil
			}
		}
	}
	if cur != nil && ctx.Sim != nil {
		out.Sim += ctx.Sim.Produced(cur, int64(cur.UsedBytes()))
	}
	out.BatchedRows += rows
	o.mu.Lock()
	o.parts[w.part] = blocks
	o.mu.Unlock()
	return nil
}

// NextStage implements core.StagedOperator: once every merge partition
// completed, a single emit work order transfers the partition blocks to the
// out-edges in partition order — one deterministic hand-off instead of
// completion-order routing, which is what keeps the output ordered.
func (o *SortOp) NextStage(_ *core.ExecCtx, stage int) []core.WorkOrder {
	if stage > 0 || len(o.parts) == 0 {
		return nil
	}
	return []core.WorkOrder{&sortEmitWO{op: o}}
}

// AbandonStages implements core.StagedOperator: on a failed run the merged
// partition blocks live only here, so the scheduler reclaims them.
func (o *SortOp) AbandonStages() []*storage.Block {
	o.mu.Lock()
	defer o.mu.Unlock()
	var bs []*storage.Block
	for _, p := range o.parts {
		bs = append(bs, p...)
	}
	o.parts = nil
	return bs
}

type sortEmitWO struct{ op *SortOp }

func (w *sortEmitWO) Inputs() []*storage.Block { return nil }

func (w *sortEmitWO) Run(_ *core.ExecCtx, out *core.Output) error {
	o := w.op
	o.mu.Lock()
	for _, bs := range o.parts {
		for _, b := range bs {
			out.Blocks = append(out.Blocks, b)
			out.RowsOut += int64(b.NumRows())
		}
	}
	o.parts = nil
	o.mu.Unlock()
	return nil
}

// sortWO is the reference path: a single work order that boxes every key
// row into datums, stable-sorts with the shared multi-term comparator, and
// emits row-at-a-time.
type sortWO struct{ op *SortOp }

func (w *sortWO) Inputs() []*storage.Block { return nil }

type sortRow struct {
	blk  int32
	row  int32
	keys []types.Datum
}

func (w *sortWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	total := 0
	for _, b := range o.blocks {
		total += b.NumRows()
	}
	rows := o.rowScratch
	if cap(rows) < total {
		rows = make([]sortRow, 0, total)
	}
	rows = rows[:0]
	o.rowScratch = rows // pool the slice for a retried attempt
	nt := len(o.terms)
	// One flat backing array for every row's keys instead of a per-row make.
	flat := make([]types.Datum, total*nt)
	ec := expr.Ctx{Scalars: ctx.Scalars}
	at := 0
	for bi, b := range o.blocks {
		ec.B = b
		if ctx.Sim != nil {
			out.Sim += ctx.Sim.ConsumedSeq(b, int64(b.UsedBytes()))
		}
		for r := 0; r < b.NumRows(); r++ {
			ec.Row = r
			keys := flat[at : at+nt : at+nt]
			at += nt
			for i, t := range o.terms {
				keys[i] = copyDatum(t.Key.Eval(&ec))
			}
			rows = append(rows, sortRow{blk: int32(bi), row: int32(r), keys: keys})
		}
	}
	out.RowsIn = int64(total)
	sort.SliceStable(rows, func(i, j int) bool {
		return types.CompareRows(rows[i].keys, rows[j].keys, o.desc) < 0
	})
	if o.limit > 0 && len(rows) > o.limit {
		rows = rows[:o.limit]
	}

	ident := make([]int, o.schema.NumCols())
	for i := range ident {
		ident[i] = i
	}
	em := core.NewEmitter(ctx, out, o.self, o.schema)
	for _, r := range rows {
		em.AppendFrom(o.blocks[r.blk], int(r.row), ident)
	}
	out.SortFallbackRows += int64(total)
	// Drop the buffered input only after the emit loop finished: an attempt
	// aborted mid-emit (fault, deadline) keeps the blocks so the retry can
	// re-read them.
	o.blocks = nil
	return nil
}

// Cleanup implements core.Operator.
func (o *SortOp) Cleanup(*core.ExecCtx) {
	o.blocks, o.runs, o.mruns, o.scratch, o.rowScratch = nil, nil, nil, nil, nil
}

// String renders the operator.
func (o *SortOp) String() string {
	s := fmt.Sprintf("sort(%s,%d terms)", o.name, len(o.terms))
	if o.limit > 0 {
		s += fmt.Sprintf(" limit %d", o.limit)
	}
	return s
}
