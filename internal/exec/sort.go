package exec

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// SortTerm is one ORDER BY term.
type SortTerm struct {
	Key  expr.Expr
	Desc bool
}

// SortOp is a blocking sort with an optional LIMIT: it buffers its whole
// input (sort is inherently UoT = table, as the paper notes in Section V-B),
// sorts in a single final work order, and emits the ordered prefix.
type SortOp struct {
	core.Base
	self   core.OpID
	name   string
	terms  []SortTerm
	limit  int
	schema *storage.Schema
	blocks []*storage.Block
}

// SortSpec configures NewSort.
type SortSpec struct {
	Name string
	// InputSchema is the input (and output) schema.
	InputSchema *storage.Schema
	// Terms are the ORDER BY keys, highest priority first.
	Terms []SortTerm
	// Limit truncates the output (0 = no limit).
	Limit int
}

// NewSort builds a sort operator.
func NewSort(spec SortSpec) *SortOp {
	if len(spec.Terms) == 0 {
		panic("exec: sort needs at least one term")
	}
	return &SortOp{name: spec.Name, terms: spec.Terms, limit: spec.Limit, schema: spec.InputSchema}
}

func (o *SortOp) setID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *SortOp) Name() string { return o.name }

// NumInputs implements core.Operator.
func (o *SortOp) NumInputs() int { return 1 }

// OutSchema returns the output schema (same as input).
func (o *SortOp) OutSchema() *storage.Schema { return o.schema }

// Feed implements core.Operator: sort only buffers; the scheduler releases
// the buffered blocks after the operator finishes.
func (o *SortOp) Feed(_ *core.ExecCtx, _ int, blocks []*storage.Block) []core.WorkOrder {
	o.blocks = append(o.blocks, blocks...)
	return nil
}

// Final implements core.Operator.
func (o *SortOp) Final(*core.ExecCtx) []core.WorkOrder {
	return []core.WorkOrder{&sortWO{op: o}}
}

type sortWO struct{ op *SortOp }

func (w *sortWO) Inputs() []*storage.Block { return nil }

type sortRow struct {
	blk  int
	row  int
	keys []types.Datum
}

func (w *sortWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	var rows []sortRow
	ec := expr.Ctx{Scalars: ctx.Scalars}
	for bi, b := range o.blocks {
		ec.B = b
		if ctx.Sim != nil {
			out.Sim += ctx.Sim.ConsumedSeq(b, int64(b.UsedBytes()))
		}
		for r := 0; r < b.NumRows(); r++ {
			ec.Row = r
			keys := make([]types.Datum, len(o.terms))
			for i, t := range o.terms {
				keys[i] = copyDatum(t.Key.Eval(&ec))
			}
			rows = append(rows, sortRow{blk: bi, row: r, keys: keys})
		}
	}
	out.RowsIn = int64(len(rows))
	sort.SliceStable(rows, func(i, j int) bool {
		for k, t := range o.terms {
			c := types.Compare(rows[i].keys[k], rows[j].keys[k])
			if c == 0 {
				continue
			}
			if t.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if o.limit > 0 && len(rows) > o.limit {
		rows = rows[:o.limit]
	}

	ident := make([]int, o.schema.NumCols())
	for i := range ident {
		ident[i] = i
	}
	em := core.NewEmitter(ctx, out, o.self, o.schema)
	for _, r := range rows {
		em.AppendFrom(o.blocks[r.blk], r.row, ident)
	}
	// Drop the buffered input only after the emit loop finished: an attempt
	// aborted mid-emit (fault, deadline) keeps the blocks so the retry can
	// re-read them.
	o.blocks = nil
	return nil
}

// String renders the operator.
func (o *SortOp) String() string {
	s := fmt.Sprintf("sort(%s,%d terms)", o.name, len(o.terms))
	if o.limit > 0 {
		s += fmt.Sprintf(" limit %d", o.limit)
	}
	return s
}
