package types

import "testing"

func TestPartitionBits(t *testing.T) {
	cases := []struct {
		parts int
		bits  uint
	}{
		{-1, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{8, 3}, {9, 4}, {16, 4}, {64, 6}, {1024, 10},
	}
	for _, c := range cases {
		if got := PartitionBits(c.parts); got != c.bits {
			t.Errorf("PartitionBits(%d) = %d, want %d", c.parts, got, c.bits)
		}
	}
}

func TestPartitionerRange(t *testing.T) {
	for _, parts := range []int{0, 1, 2, 3, 7, 8, 16, 64} {
		p := NewPartitioner(parts)
		want := 1
		for want < parts {
			want <<= 1
		}
		if p.Parts() != want {
			t.Fatalf("NewPartitioner(%d).Parts() = %d, want %d", parts, p.Parts(), want)
		}
		seen := make(map[int]bool)
		for i := 0; i < 100000; i++ {
			h := Mix64(uint64(i))
			got := p.Of(h)
			if got < 0 || got >= p.Parts() {
				t.Fatalf("parts=%d: Of(%#x) = %d out of range [0,%d)", parts, h, got, p.Parts())
			}
			seen[got] = true
		}
		if len(seen) != p.Parts() {
			t.Errorf("parts=%d: only %d of %d partitions hit over 100k hashes", parts, len(seen), p.Parts())
		}
	}
}

// The partitioner must agree with the hand-rolled top-bits Radix it replaces.
func TestPartitionerMatchesRadix(t *testing.T) {
	for _, parts := range []int{1, 2, 4, 8, 16, 64} {
		p := NewPartitioner(parts)
		bits := PartitionBits(parts)
		for i := 0; i < 4096; i++ {
			h := Mix64(uint64(i) * 0x9e3779b97f4a7c15)
			if got, want := uint64(p.Of(h)), Radix(h, bits); got != want {
				t.Fatalf("parts=%d: Of(%#x) = %d, Radix = %d", parts, h, got, want)
			}
		}
	}
}

// The zero value is the single-partition identity: it maps every hash to 0,
// which is what merge kernels rely on to mean "all partitions".
func TestPartitionerZeroValue(t *testing.T) {
	var p Partitioner
	if p.Parts() != 1 || p.Bits() != 0 {
		t.Fatalf("zero Partitioner: Parts=%d Bits=%d, want 1/0", p.Parts(), p.Bits())
	}
	for _, h := range []uint64{0, 1, ^uint64(0), 0x8000000000000000} {
		if p.Of(h) != 0 {
			t.Fatalf("zero Partitioner.Of(%#x) = %d, want 0", h, p.Of(h))
		}
	}
}
