package types

import "math"

// Hashing for join keys and group-by keys. The engine keys hash tables on
// 64-bit mixes; splitmix64 is fast, stateless, and has full avalanche, which
// keeps linear-probing clusters short.

// Mix64 applies the splitmix64 finalizer to x.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashInt64 hashes a single integer key.
func HashInt64(v int64) uint64 { return Mix64(uint64(v)) }

// HashPair hashes a composite two-integer key.
func HashPair(a, b int64) uint64 {
	return Mix64(Mix64(uint64(a)) ^ uint64(b)*0x9e3779b97f4a7c15)
}

// HashPairVec hashes the composite keys (k0[i], k1[i]) into dst, reusing
// dst's backing array when it is large enough (block-granular batch hashing
// for the join build/probe kernels). k1 may be nil, meaning all-zero second
// keys — equivalent to HashPair(k0[i], 0) — so single-key tables avoid
// materializing a zero column. Hash values of 0 are forced to 1, so the
// output is usable directly as hash-table slot tags (0 = empty slot).
func HashPairVec(k0, k1 []int64, dst []uint64) []uint64 {
	n := len(k0)
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if k1 == nil {
		for i, a := range k0 {
			h := Mix64(Mix64(uint64(a)))
			if h == 0 {
				h = 1
			}
			dst[i] = h
		}
		return dst
	}
	_ = k1[n-1]
	for i, a := range k0 {
		h := Mix64(Mix64(uint64(a)) ^ uint64(k1[i])*0x9e3779b97f4a7c15)
		if h == 0 {
			h = 1
		}
		dst[i] = h
	}
	return dst
}

// Radix returns the radix partition of a hash value: its top `bits` bits.
// Partition bits are taken from the top of the hash so they are independent
// of both the hash-table slot index (low bits) and the join shard selector
// (bits 48..53); the parallel aggregation merge fans out one work order per
// partition.
func Radix(h uint64, bits uint) uint64 { return h >> (64 - bits) }

// PartitionBits returns the number of top hash bits needed to address parts
// radix partitions: the smallest b with 1<<b >= parts (0 for parts <= 1).
func PartitionBits(parts int) uint {
	bits := uint(0)
	for 1<<bits < parts {
		bits++
	}
	return bits
}

// Partitioner maps hash values onto a fixed set of radix partitions, so
// callers configure a partition *count* instead of hand-computing top-bit
// shifts at every site. The count is rounded up to a power of two (radix
// partitioning is top-bits based); Parts reports the effective count.
//
// The zero value and NewPartitioner(1) are the single-partition identity:
// every hash maps to partition 0 — which also makes it the "match all
// partitions" filter for merge kernels that test Of(h) == part.
type Partitioner struct {
	bits uint
	mask uint64
}

// NewPartitioner returns a partitioner over parts radix partitions, rounded
// up to a power of two (minimum 1).
func NewPartitioner(parts int) Partitioner {
	bits := PartitionBits(parts)
	return Partitioner{bits: bits, mask: 1<<bits - 1}
}

// Of returns the partition of hash value h: its top Bits() bits. Consistent
// with Radix(h, p.Bits()).
func (p Partitioner) Of(h uint64) int { return int((h >> (64 - p.bits)) & p.mask) }

// Parts returns the effective (power-of-two) partition count.
func (p Partitioner) Parts() int { return 1 << p.bits }

// Bits returns the number of top hash bits the partitioner consumes.
func (p Partitioner) Bits() uint { return p.bits }

// HashBytes hashes a byte string (FNV-1a folded through Mix64).
func HashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return Mix64(h)
}

// HashDatum hashes a datum consistently with Equal: equal datums hash equal.
// Int64 and Date hash by integer value; Float64 by its exact bit-equal
// integer when integral, else by bits (group-by floats in TPC-H are exact
// decimals, so this is stable).
func HashDatum(d Datum) uint64 {
	switch d.Ty {
	case Char:
		return HashBytes(TrimPad(d.B))
	case Float64:
		if f := d.F; f == float64(int64(f)) {
			return Mix64(uint64(int64(f)))
		}
		return Mix64(math.Float64bits(d.F))
	default:
		return Mix64(uint64(d.I))
	}
}
