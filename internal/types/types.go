// Package types defines the fixed-width value types used throughout the
// engine: 64-bit integers, 64-bit floats, dates (days since 1970-01-01,
// stored in 32 bits), and fixed-width character strings. TPC-H data needs
// nothing else; the engine does not support NULLs because TPC-H has none.
package types

import (
	"fmt"
	"strconv"
)

// TypeID identifies a value type.
type TypeID uint8

const (
	// Int64 is a signed 64-bit integer (keys, counts, quantities).
	Int64 TypeID = iota
	// Float64 is an IEEE-754 double (prices, discounts, aggregates).
	Float64
	// Date is a day count since 1970-01-01, stored in 4 bytes.
	Date
	// Char is a fixed-width byte string, padded with zero bytes.
	Char
)

// String returns the SQL-ish name of the type.
func (t TypeID) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Date:
		return "DATE"
	case Char:
		return "CHAR"
	default:
		return fmt.Sprintf("TypeID(%d)", uint8(t))
	}
}

// Width returns the in-block storage width of the type in bytes. Char widths
// are per-column and must be supplied by the schema; Width returns 0 for
// Char.
func (t TypeID) Width() int {
	switch t {
	case Int64:
		return 8
	case Float64:
		return 8
	case Date:
		return 4
	default:
		return 0
	}
}

// Datum is a single value of any supported type. Exactly one of I, F, or B
// is meaningful, selected by Ty; Date values use I (as a day count).
type Datum struct {
	Ty TypeID
	I  int64
	F  float64
	B  []byte
}

// NewInt64 returns an Int64 datum.
func NewInt64(v int64) Datum { return Datum{Ty: Int64, I: v} }

// NewFloat64 returns a Float64 datum.
func NewFloat64(v float64) Datum { return Datum{Ty: Float64, F: v} }

// NewDate returns a Date datum from a day count since 1970-01-01.
func NewDate(days int32) Datum { return Datum{Ty: Date, I: int64(days)} }

// NewChar returns a Char datum. The byte slice is referenced, not copied.
func NewChar(b []byte) Datum { return Datum{Ty: Char, B: b} }

// NewString returns a Char datum from a Go string.
func NewString(s string) Datum { return Datum{Ty: Char, B: []byte(s)} }

// Int returns the integer view of the datum (Int64 and Date).
func (d Datum) Int() int64 { return d.I }

// Float returns the float view of the datum. Int64 and Date datums are
// converted, so arithmetic expressions can mix numeric types.
func (d Datum) Float() float64 {
	if d.Ty == Float64 {
		return d.F
	}
	return float64(d.I)
}

// Bytes returns the raw bytes of a Char datum with trailing zero padding
// stripped.
func (d Datum) Bytes() []byte { return TrimPad(d.B) }

// TrimPad strips the trailing zero-byte padding from a fixed-width Char
// value.
func TrimPad(b []byte) []byte {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return b[:n]
}

// Compare orders two datums of the same type: -1, 0, +1. Char values compare
// bytewise with padding stripped; numeric values compare numerically even
// across Int64/Float64.
func Compare(a, b Datum) int {
	switch a.Ty {
	case Char:
		x, y := TrimPad(a.B), TrimPad(b.B)
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		for i := 0; i < n; i++ {
			if x[i] != y[i] {
				if x[i] < y[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(x) < len(y):
			return -1
		case len(x) > len(y):
			return 1
		}
		return 0
	case Float64:
		return cmpFloat(a.F, b.Float())
	default:
		if b.Ty == Float64 {
			return cmpFloat(float64(a.I), b.F)
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
}

func cmpFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// Equal reports whether two datums are equal under Compare.
func Equal(a, b Datum) bool { return Compare(a, b) == 0 }

// CompareRows orders two same-arity datum rows term by term under Compare,
// flipping term i when desc[i] is true (nil desc means all ascending). It is
// the one multi-term ordering used by both the engine's final-result sort
// and the sort operator's reference path.
func CompareRows(a, b []Datum, desc []bool) int {
	for i := range a {
		c := Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if desc != nil && desc[i] {
			return -c
		}
		return c
	}
	return 0
}

// String renders the datum for result printing and tests.
func (d Datum) String() string {
	switch d.Ty {
	case Int64:
		return strconv.FormatInt(d.I, 10)
	case Float64:
		return strconv.FormatFloat(d.F, 'f', 4, 64)
	case Date:
		y, m, day := FromDays(int32(d.I))
		return fmt.Sprintf("%04d-%02d-%02d", y, m, day)
	case Char:
		return string(TrimPad(d.B))
	default:
		return "?"
	}
}
