package types

// Date arithmetic on proleptic-Gregorian day counts since 1970-01-01. The
// generator and the TPC-H predicates only need date construction,
// year extraction, and day/month/year addition, so this file implements the
// civil-calendar conversions directly (no time.Time, which would drag in
// time zones and allocations).

// ToDays converts a civil date to a day count since 1970-01-01.
// Algorithm: Howard Hinnant's days_from_civil.
func ToDays(year, month, day int) int32 {
	y := int64(year)
	if month <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if month > 2 {
		mp = int64(month) - 3
	} else {
		mp = int64(month) + 9
	}
	doy := (153*mp+2)/5 + int64(day) - 1    // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy  // [0, 146096]
	return int32(era*146097 + doe - 719468) // shift epoch to 1970-01-01
}

// FromDays converts a day count since 1970-01-01 back to a civil date.
// Algorithm: Howard Hinnant's civil_from_days.
func FromDays(days int32) (year, month, day int) {
	z := int64(days) + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	day = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		month = int(mp + 3)
	} else {
		month = int(mp - 9)
	}
	if month <= 2 {
		y++
	}
	return int(y), month, day
}

// Year extracts the calendar year from a day count.
func Year(days int32) int {
	y, _, _ := FromDays(days)
	return y
}

// AddYears shifts a civil date by n years (clamping Feb 29 to Feb 28 when the
// target year is not a leap year), returning a day count.
func AddYears(days int32, n int) int32 {
	y, m, d := FromDays(days)
	y += n
	if m == 2 && d == 29 && !isLeap(y) {
		d = 28
	}
	return ToDays(y, m, d)
}

// AddMonths shifts a civil date by n months, clamping the day to the target
// month's length.
func AddMonths(days int32, n int) int32 {
	y, m, d := FromDays(days)
	mm := (m - 1) + n
	y += mm / 12
	m = mm%12 + 1
	if m <= 0 {
		m += 12
		y--
	}
	if dm := daysInMonth(y, m); d > dm {
		d = dm
	}
	return ToDays(y, m, d)
}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(y) {
			return 29
		}
		return 28
	}
}
