package types

import (
	"testing"
	"testing/quick"
)

func TestDatumConstructorsAndViews(t *testing.T) {
	if d := NewInt64(42); d.Int() != 42 || d.Float() != 42 {
		t.Fatalf("int datum views: %+v", d)
	}
	if d := NewFloat64(2.5); d.Float() != 2.5 {
		t.Fatalf("float datum view: %+v", d)
	}
	if d := NewDate(100); d.Int() != 100 || d.Float() != 100 {
		t.Fatalf("date datum views: %+v", d)
	}
	if d := NewString("abc"); string(d.Bytes()) != "abc" {
		t.Fatalf("char datum view: %+v", d)
	}
}

func TestTrimPad(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc\x00\x00", "abc"},
		{"abc", "abc"},
		{"", ""},
		{"\x00\x00", ""},
		{"a\x00b\x00", "a\x00b"},
	}
	for _, c := range cases {
		if got := string(TrimPad([]byte(c.in))); got != c.want {
			t.Errorf("TrimPad(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCompareNumeric(t *testing.T) {
	if Compare(NewInt64(1), NewInt64(2)) != -1 {
		t.Error("1 < 2")
	}
	if Compare(NewInt64(2), NewInt64(2)) != 0 {
		t.Error("2 == 2")
	}
	if Compare(NewFloat64(1.5), NewInt64(1)) != 1 {
		t.Error("1.5 > 1 (mixed)")
	}
	if Compare(NewInt64(1), NewFloat64(1.5)) != -1 {
		t.Error("1 < 1.5 (mixed)")
	}
	if Compare(NewDate(10), NewDate(11)) != -1 {
		t.Error("date ordering")
	}
}

func TestCompareChar(t *testing.T) {
	// Padding must not affect ordering or equality.
	if Compare(NewChar([]byte("ab\x00\x00")), NewString("ab")) != 0 {
		t.Error("padded == unpadded")
	}
	if Compare(NewString("ab"), NewString("abc")) != -1 {
		t.Error("prefix sorts first")
	}
	if Compare(NewString("b"), NewString("ab")) != 1 {
		t.Error("b > ab")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt64(a), NewInt64(b)) == -Compare(NewInt64(b), NewInt64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateRoundTrip(t *testing.T) {
	// Every day in the TPC-H date range must round-trip.
	start := ToDays(1992, 1, 1)
	end := ToDays(1998, 12, 31)
	for d := start; d <= end; d++ {
		y, m, day := FromDays(d)
		if back := ToDays(y, m, day); back != d {
			t.Fatalf("day %d -> %04d-%02d-%02d -> %d", d, y, m, day, back)
		}
	}
}

func TestKnownDates(t *testing.T) {
	if d := ToDays(1970, 1, 1); d != 0 {
		t.Errorf("epoch = %d, want 0", d)
	}
	if d := ToDays(1970, 1, 2); d != 1 {
		t.Errorf("epoch+1 = %d, want 1", d)
	}
	if d := ToDays(1995, 3, 15); Year(d) != 1995 {
		t.Errorf("Year(1995-03-15) = %d", Year(d))
	}
	// 1996 was a leap year: Feb has 29 days.
	feb29 := ToDays(1996, 2, 29)
	if y, m, d := FromDays(feb29); y != 1996 || m != 2 || d != 29 {
		t.Errorf("leap day decoded as %04d-%02d-%02d", y, m, d)
	}
}

func TestAddYearsMonths(t *testing.T) {
	d := ToDays(1995, 1, 1)
	if got := AddYears(d, 1); got != ToDays(1996, 1, 1) {
		t.Error("AddYears +1")
	}
	if got := AddMonths(d, 3); got != ToDays(1995, 4, 1) {
		t.Error("AddMonths +3")
	}
	if got := AddMonths(ToDays(1995, 12, 15), 1); got != ToDays(1996, 1, 15) {
		t.Error("AddMonths year wrap")
	}
	// leap clamp
	if got := AddYears(ToDays(1996, 2, 29), 1); got != ToDays(1997, 2, 28) {
		t.Error("AddYears leap clamp")
	}
	// month length clamp
	if got := AddMonths(ToDays(1995, 1, 31), 1); got != ToDays(1995, 2, 28) {
		t.Error("AddMonths day clamp")
	}
}

func TestAddMonthsNegative(t *testing.T) {
	if got := AddMonths(ToDays(1995, 1, 15), -1); got != ToDays(1994, 12, 15) {
		t.Error("AddMonths -1 across year boundary")
	}
}

func TestHashDatumConsistentWithEqual(t *testing.T) {
	// Padded and unpadded equal chars must hash equal.
	a, b := NewChar([]byte("xy\x00\x00")), NewString("xy")
	if !Equal(a, b) {
		t.Fatal("setup: values should be equal")
	}
	if HashDatum(a) != HashDatum(b) {
		t.Error("equal datums hash differently")
	}
	// Integral float hashes like the integer (used by mixed-type group keys).
	if HashDatum(NewFloat64(7)) != HashDatum(NewInt64(7)) {
		t.Error("integral float should hash like int")
	}
}

func TestMix64Distributes(t *testing.T) {
	// Sequential keys must not collide in the low bits (bucket selection).
	seen := map[uint64]bool{}
	for i := int64(0); i < 10000; i++ {
		h := HashInt64(i) & 0xffff
		seen[h] = true
	}
	// With 10k keys over 65536 slots, expect substantial spread; a weak
	// hash (identity) would give exactly 10000 distinct but clustered —
	// check spread over high bits too.
	if len(seen) < 5000 {
		t.Errorf("low-bit spread too small: %d", len(seen))
	}
}

func TestHashPairOrderSensitivity(t *testing.T) {
	if HashPair(1, 2) == HashPair(2, 1) {
		t.Error("HashPair should be order-sensitive")
	}
}

func TestDatumString(t *testing.T) {
	if s := NewDate(ToDays(1995, 3, 15)).String(); s != "1995-03-15" {
		t.Errorf("date string = %q", s)
	}
	if s := NewInt64(-3).String(); s != "-3" {
		t.Errorf("int string = %q", s)
	}
	if s := NewString("hi").String(); s != "hi" {
		t.Errorf("char string = %q", s)
	}
}

func TestHashPairVecMatchesHashPair(t *testing.T) {
	k0 := []int64{0, 1, -1, 1 << 40, 7, 7}
	k1 := []int64{0, 2, -2, 3, 0, 1}
	hs := HashPairVec(k0, k1, nil)
	if len(hs) != len(k0) {
		t.Fatalf("len = %d", len(hs))
	}
	for i := range k0 {
		want := HashPair(k0[i], k1[i])
		if want == 0 {
			want = 1
		}
		if hs[i] != want {
			t.Errorf("HashPairVec[%d] = %#x, want %#x", i, hs[i], want)
		}
	}
	// nil k1 means all-zero second keys.
	hs0 := HashPairVec(k0, nil, nil)
	for i := range k0 {
		want := HashPair(k0[i], 0)
		if want == 0 {
			want = 1
		}
		if hs0[i] != want {
			t.Errorf("single-key HashPairVec[%d] = %#x, want %#x", i, hs0[i], want)
		}
	}
	// Scratch reuse: a big-enough dst is reused, not reallocated.
	dst := make([]uint64, 0, 16)
	hs2 := HashPairVec(k0, k1, dst)
	if &hs2[0] != &dst[:1][0] {
		t.Error("HashPairVec did not reuse dst")
	}
	// Empty input.
	if got := HashPairVec(nil, nil, nil); len(got) != 0 {
		t.Errorf("empty input returned %v", got)
	}
	// No zero hashes (0 tags an empty hash-table slot).
	for i := int64(-5000); i < 5000; i++ {
		if h := HashPairVec([]int64{i}, nil, nil)[0]; h == 0 {
			t.Fatalf("zero hash for key %d", i)
		}
	}
}
