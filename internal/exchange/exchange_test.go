package exchange

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/types"
)

var scatterSchema = storage.NewSchema(
	storage.Column{Name: "k", Type: types.Int64},
	storage.Column{Name: "v", Type: types.Int64},
)

func newCtx(workers int) *core.ExecCtx {
	return &core.ExecCtx{
		Pool:           storage.NewPool(nil, nil),
		TempBlockBytes: 256,
		TempFormat:     storage.RowStore,
		Workers:        workers,
	}
}

// makeBlocks builds nblocks blocks of rows each with keys from keyFn.
func makeBlocks(nblocks, rows int, keyFn func(r int) int64) []*storage.Block {
	var out []*storage.Block
	n := 0
	for i := 0; i < nblocks; i++ {
		b := storage.NewBlock(scatterSchema, storage.RowStore, rows*16)
		for r := 0; r < rows; r++ {
			b.AppendRow(types.NewInt64(keyFn(n)), types.NewInt64(int64(n)))
			n++
		}
		out = append(out, b)
	}
	return out
}

// runScatter feeds blocks through op and returns every (partition, key, val)
// triple it emitted, draining finish-time partials like the scheduler would.
func runScatter(t *testing.T, ctx *core.ExecCtx, op *Op, blocks []*storage.Block) (map[[3]int64]int, *core.Output) {
	t.Helper()
	got := map[[3]int64]int{}
	agg := &core.Output{}
	collect := func(p int, b *storage.Block) {
		for r := 0; r < b.NumRows(); r++ {
			got[[3]int64{int64(p), b.Int64At(0, r), b.Int64At(1, r)}]++
		}
	}
	for _, wo := range op.Feed(ctx, 0, blocks) {
		out := &core.Output{}
		if err := wo.Run(ctx, out); err != nil {
			// Simulate the scheduler's rollback + retry of a transient fault.
			agg.Demotions += out.Demotions
			out.Finish(err)
			out = &core.Output{}
			if err := wo.Run(ctx, out); err != nil {
				t.Fatalf("retry failed: %v", err)
			}
		}
		out.Finish(nil)
		for _, b := range out.Blocks {
			p := out.PartitionTag(b)
			if p < 0 {
				t.Fatal("exchange emitted an untagged block")
			}
			collect(p, b)
		}
		agg.ExchangeRows += out.ExchangeRows
		agg.RepartitionFanout += out.RepartitionFanout
		agg.Demotions += out.Demotions
		agg.ScratchHits += out.ScratchHits
	}
	for p := 0; p < op.OutputPartitions(); p++ {
		for _, b := range ctx.Pool.TakePartials(core.PartOwner(0, p)) {
			collect(p, b)
		}
	}
	return got, agg
}

func TestScatterMatchesPartitioner(t *testing.T) {
	op := New(Spec{Name: "t", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: 4})
	op.SetID(0)
	ctx := newCtx(1)
	op.Init(ctx)
	const nblocks, rows = 8, 37
	blocks := makeBlocks(nblocks, rows, func(r int) int64 { return int64(r % 101) })
	got, out := runScatter(t, ctx, op, blocks)

	total := 0
	pr := op.Partitioner()
	for kv, n := range got {
		total += n
		k := []int64{kv[1]}
		h := types.HashPairVec(k, nil, nil)[0]
		if want := pr.Of(h); int(kv[0]) != want {
			t.Fatalf("key %d routed to partition %d, want %d", kv[1], kv[0], want)
		}
	}
	if total != nblocks*rows {
		t.Fatalf("scattered %d rows, want %d", total, nblocks*rows)
	}
	if out.ExchangeRows != int64(nblocks*rows) {
		t.Fatalf("ExchangeRows = %d, want %d", out.ExchangeRows, nblocks*rows)
	}
	if out.RepartitionFanout == 0 {
		t.Fatal("RepartitionFanout not recorded")
	}
}

func TestDemotedScatterPlacesRowsIdentically(t *testing.T) {
	const nblocks, rows = 6, 29
	key := func(r int) int64 { return int64(r*7 + 3) }

	ref := New(Spec{Name: "ref", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: 8})
	ref.SetID(0)
	ctxRef := newCtx(1)
	ref.Init(ctxRef)
	want, _ := runScatter(t, ctxRef, ref, makeBlocks(nblocks, rows, key))

	// The first Repartition consultation fires, demoting the operator; the
	// retried attempt and all later blocks take the reference path.
	op := New(Spec{Name: "dem", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: 8})
	op.SetID(0)
	ctx := newCtx(1)
	ctx.Faults = faults.Replay([]faults.Event{{Site: faults.Repartition, Seq: 0, Kind: faults.KindError}})
	op.Init(ctx)
	got, out := runScatter(t, ctx, op, makeBlocks(nblocks, rows, key))

	if out.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", out.Demotions)
	}
	if len(got) != len(want) {
		t.Fatalf("demoted scatter produced %d distinct rows, reference %d", len(got), len(want))
	}
	for kv, n := range want {
		if got[kv] != n {
			t.Fatalf("row %v: demoted count %d, reference %d", kv, got[kv], n)
		}
	}
}

func TestSkewGuardTripsOnConstantKey(t *testing.T) {
	op := New(Spec{Name: "skew", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: 4})
	op.SetID(0)
	ctx := newCtx(1)
	op.Init(ctx)
	runScatter(t, ctx, op, makeBlocks(4, 32, func(int) int64 { return 42 }))

	wos := op.Final(ctx)
	if len(wos) != 1 {
		t.Fatalf("Final returned %d work orders, want 1 (skew)", len(wos))
	}
	out := &core.Output{}
	if err := wos[0].Run(ctx, out); err != nil {
		t.Fatal(err)
	}
	if out.PartitionSkew != 1 {
		t.Fatalf("PartitionSkew = %d, want 1", out.PartitionSkew)
	}
	if !op.Skewed() {
		t.Fatal("Skewed() = false after constant-key scatter")
	}
}

func TestSkewGuardQuietOnUniformKeys(t *testing.T) {
	op := New(Spec{Name: "uniform", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: 4})
	op.SetID(0)
	ctx := newCtx(1)
	op.Init(ctx)
	runScatter(t, ctx, op, makeBlocks(8, 64, func(r int) int64 { return int64(r) }))
	if wos := op.Final(ctx); len(wos) != 0 {
		t.Fatalf("Final returned %d work orders on uniform keys, want 0", len(wos))
	}
	if op.Skewed() {
		t.Fatal("Skewed() = true on uniform keys")
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "nokeys", InputSchema: scatterSchema, Partitions: 2},
		{Name: "toomany", InputSchema: scatterSchema, KeyCols: []int{0, 1, 0}, Partitions: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) did not panic", spec.Name)
				}
			}()
			New(spec)
		}()
	}
}

func TestPartitionsRoundUpAndClamp(t *testing.T) {
	op := New(Spec{Name: "r", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: 5})
	if op.OutputPartitions() != 8 {
		t.Fatalf("Partitions 5 rounded to %d, want 8", op.OutputPartitions())
	}
	op = New(Spec{Name: "c", InputSchema: scatterSchema, KeyCols: []int{0}, Partitions: core.MaxPartitions * 4})
	if op.OutputPartitions() != core.MaxPartitions {
		t.Fatalf("oversized fan-out clamped to %d, want %d", op.OutputPartitions(), core.MaxPartitions)
	}
}
