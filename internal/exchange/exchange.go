// Package exchange implements the hash-partitioning exchange operator: the
// plan node that turns one block stream into P partition-local streams so
// that downstream per-partition operator clones (join builds, aggregations)
// own their state outright — no shard locks, no global radix merge.
//
// The operator follows the K9db/Pelton dataflow model: partitioned
// parallelism is expressed in the plan as an explicit EXCHANGE node joined to
// per-partition clones by partition-tagged edges, rather than hidden inside
// operator state. Each partition edge is an independent UoT-policed
// producer→consumer edge, so the paper's transfer-granularity spectrum
// applies per partition stream.
package exchange

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
)

// Spec configures an exchange operator.
type Spec struct {
	// Name labels the operator ("exchange(orders)").
	Name string
	// InputSchema is the schema of fed blocks; output blocks pass every
	// column through unchanged.
	InputSchema *storage.Schema
	// KeyCols are the 1 or 2 partitioning key columns (Int64 or Date).
	KeyCols []int
	// Partitions is the requested fan-out; it is rounded up to a power of
	// two and clamped to [1, core.MaxPartitions].
	Partitions int
}

// Op hash-partitions its input blocks by key into P partition-local output
// streams via Repartition work orders. Rows with equal keys always land in
// the same partition, which is the only property downstream partition-local
// joins and aggregations need for correctness.
type Op struct {
	core.Base
	self    core.OpID
	name    string
	schema  *storage.Schema
	keyCols []int
	dateKey []bool
	pr      types.Partitioner
	proj    []int // identity projection: pass all columns through
	cols    []int // all column indexes, for cache-model read accounting

	scratch sync.Pool // *scatterScratch

	// rowsPart counts scattered rows per partition (atomically updated by
	// concurrent scatter work orders; read by Final's skew guard).
	rowsPart []int64
	demoted  atomic.Bool
	skewed   bool
}

// New returns an exchange operator for spec. It panics on invalid specs
// (plan-construction errors): no key columns, more than two, or a key column
// that is neither Int64 nor Date.
func New(spec Spec) *Op {
	if len(spec.KeyCols) < 1 || len(spec.KeyCols) > 2 {
		panic(fmt.Sprintf("exchange: %d key columns (want 1 or 2)", len(spec.KeyCols)))
	}
	o := &Op{
		name:    spec.Name,
		schema:  spec.InputSchema,
		keyCols: spec.KeyCols,
		dateKey: make([]bool, len(spec.KeyCols)),
	}
	for i, c := range spec.KeyCols {
		switch spec.InputSchema.Col(c).Type {
		case types.Int64:
		case types.Date:
			o.dateKey[i] = true
		default:
			panic(fmt.Sprintf("exchange: key column %q is %v (want Int64 or Date)",
				spec.InputSchema.Col(c).Name, spec.InputSchema.Col(c).Type))
		}
	}
	parts := spec.Partitions
	if parts > core.MaxPartitions {
		parts = core.MaxPartitions
	}
	o.pr = types.NewPartitioner(parts)
	o.rowsPart = make([]int64, o.pr.Parts())
	o.proj = make([]int, spec.InputSchema.NumCols())
	for i := range o.proj {
		o.proj[i] = i
	}
	o.cols = o.proj
	return o
}

// SetID hands the operator its plan ID (the plan builder calls this right
// after AddOp; partition emitters key the temp-block pool with it).
func (o *Op) SetID(id core.OpID) { o.self = id }

// Name implements core.Operator.
func (o *Op) Name() string { return "exchange(" + o.name + ")" }

// NumInputs implements core.Operator.
func (o *Op) NumInputs() int { return 1 }

// OutputPartitions implements core.PartitionedOutput: the scheduler drains
// each partition's pending partial block when the operator finishes.
func (o *Op) OutputPartitions() int { return o.pr.Parts() }

// OutSchema returns the pass-through output schema.
func (o *Op) OutSchema() *storage.Schema { return o.schema }

// Partitioner returns the operator's key→partition mapping (tests assert
// routed blocks against it).
func (o *Op) Partitioner() types.Partitioner { return o.pr }

// Feed returns one Repartition work order per fed block, so the scatter
// parallelizes like any other block-granular kernel.
func (o *Op) Feed(ctx *core.ExecCtx, input int, blocks []*storage.Block) []core.WorkOrder {
	wos := make([]core.WorkOrder, len(blocks))
	for i, b := range blocks {
		wos[i] = &repartWO{op: o, b: b, in: blocks[i : i+1 : i+1]}
	}
	return wos
}

// Final runs the partition-skew guard: once every scatter completed, if one
// partition received more than half of all rows, a trace mark is logged and
// a follow-up work order records the PartitionSkew counter (so it flows
// through the normal stats pipeline like every other kernel counter).
func (o *Op) Final(ctx *core.ExecCtx) []core.WorkOrder {
	if o.pr.Parts() <= 1 {
		return nil
	}
	var total, max int64
	for p := range o.rowsPart {
		v := atomic.LoadInt64(&o.rowsPart[p])
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 || 2*max <= total {
		return nil
	}
	o.skewed = true
	ctx.Trace.MarkIn(ctx.TraceRun, trace.MarkPartitionSkew, trace.Event{
		Op: int32(o.self), StartNS: ctx.Trace.Now(), Rows: max, RowsOut: total,
	})
	return []core.WorkOrder{&skewWO{op: o}}
}

// Skewed reports whether the skew guard tripped (valid after the run).
func (o *Op) Skewed() bool { return o.skewed }

// scatterScratch holds the reusable buffers of the scatter kernel: gathered
// key columns, the hash vector, and the partition-grouped row permutation.
type scatterScratch struct {
	k0     []int64
	k1     []int64
	hashes []uint64
	rows   []int32
	counts []int32
	offs   []int32
}

// gather pulls the key columns of b (widening Date columns to int64) and
// hashes them vectorized.
func (sc *scatterScratch) gather(o *Op, b *storage.Block) {
	if o.dateKey[0] {
		sc.k0 = b.GatherDate(o.keyCols[0], sc.k0)
	} else {
		sc.k0 = b.GatherInt64(o.keyCols[0], sc.k0)
	}
	if len(o.keyCols) == 2 {
		if o.dateKey[1] {
			sc.k1 = b.GatherDate(o.keyCols[1], sc.k1)
		} else {
			sc.k1 = b.GatherInt64(o.keyCols[1], sc.k1)
		}
	} else {
		sc.k1 = nil
	}
	sc.hashes = types.HashPairVec(sc.k0, sc.k1, sc.hashes)
}

// repartWO scatters one block's rows into per-partition output streams.
type repartWO struct {
	op *Op
	b  *storage.Block
	in []*storage.Block
}

// Inputs implements core.WorkOrder.
func (w *repartWO) Inputs() []*storage.Block { return w.in }

// Run implements core.WorkOrder. The fast path counting-sorts row indexes by
// partition (one vectorized hash pass, one permutation pass) and bulk-appends
// each partition's run of rows into that partition's emitter; the demoted
// reference path routes rows one at a time with the same partition function,
// so a demotion changes the kernel, never the data placement.
func (w *repartWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	o := w.op
	b := w.b
	n := b.NumRows()
	out.RowsIn = int64(n)
	if ctx.Sim != nil {
		out.Sim += ctx.Sim.ConsumedSeq(b, readBytes(b, o.cols))
	}
	if n == 0 {
		return nil
	}
	// The demoted reference path consults no fault sites (like every other
	// operator's degradation target), so a demoted run always terminates.
	if o.demoted.Load() {
		return o.runRef(ctx, out, b)
	}
	// The fault site fires strictly before any partition stream is touched,
	// so a failed attempt needs no operator-state rollback.
	if err := ctx.FaultAt(faults.Repartition); err != nil {
		if o.demoted.CompareAndSwap(false, true) {
			out.Demotions++
		}
		return err
	}

	sc, _ := o.scratch.Get().(*scatterScratch)
	if sc != nil {
		out.ScratchHits++
	} else {
		sc = &scatterScratch{}
	}
	sc.gather(o, b)
	parts := o.pr.Parts()
	if cap(sc.rows) < n {
		sc.rows = make([]int32, n)
	}
	sc.rows = sc.rows[:n]
	if cap(sc.counts) < parts {
		sc.counts = make([]int32, parts)
		sc.offs = make([]int32, parts)
	}
	sc.counts = sc.counts[:parts]
	sc.offs = sc.offs[:parts]
	for p := range sc.counts {
		sc.counts[p] = 0
	}
	for _, h := range sc.hashes {
		sc.counts[o.pr.Of(h)]++
	}
	var sum int32
	for p, c := range sc.counts {
		sc.offs[p] = sum
		sum += c
	}
	for r, h := range sc.hashes {
		p := o.pr.Of(h)
		sc.rows[sc.offs[p]] = int32(r)
		sc.offs[p]++
	}
	// Emit each partition's contiguous run of row indexes. Emitter checkouts
	// are interruption points (cancellation, deadline, block-materialize
	// faults): if one fires, the attempt rolls back block-exactly and the
	// shared per-partition row counters below were never touched.
	start := int32(0)
	fan := int64(0)
	for p := 0; p < parts; p++ {
		cnt := sc.counts[p]
		if cnt == 0 {
			continue
		}
		em := core.NewPartEmitter(ctx, out, o.self, p, o.schema)
		em.AppendMany(b, sc.rows[start:start+cnt], o.proj)
		start += cnt
		fan++
	}
	for p := 0; p < parts; p++ {
		if sc.counts[p] > 0 {
			atomic.AddInt64(&o.rowsPart[p], int64(sc.counts[p]))
		}
	}
	out.ExchangeRows += int64(n)
	out.BatchedRows += int64(n)
	out.RepartitionFanout += fan
	o.scratch.Put(sc)
	return nil
}

// runRef is the demoted reference scatter: row-at-a-time hashing and
// appending with the identical partition function. Kept simple rather than
// fast — it is the degradation target of the Repartition fault site.
func (o *Op) runRef(ctx *core.ExecCtx, out *core.Output, b *storage.Block) error {
	parts := o.pr.Parts()
	ems := make([]*core.Emitter, parts)
	counts := make([]int64, parts)
	n := b.NumRows()
	for r := 0; r < n; r++ {
		k0 := o.keyAt(b, 0, r)
		var k1 int64
		if len(o.keyCols) == 2 {
			k1 = o.keyAt(b, 1, r)
		}
		h := types.HashPair(k0, k1)
		if h == 0 {
			h = 1 // match HashPairVec's non-zero forcing
		}
		p := o.pr.Of(h)
		if ems[p] == nil {
			ems[p] = core.NewPartEmitter(ctx, out, o.self, p, o.schema)
		}
		ems[p].AppendFrom(b, r, o.proj)
		counts[p]++
	}
	fan := int64(0)
	for p, c := range counts {
		if c > 0 {
			atomic.AddInt64(&o.rowsPart[p], c)
			fan++
		}
	}
	out.ExchangeRows += int64(n)
	out.RepartitionFanout += fan
	return nil
}

// keyAt reads key column i of row r, widening Date values like gather does.
func (o *Op) keyAt(b *storage.Block, i, r int) int64 {
	if o.dateKey[i] {
		return int64(b.DateAt(o.keyCols[i], r))
	}
	return b.Int64At(o.keyCols[i], r)
}

// skewWO records one skew-guard trip into the stats pipeline.
type skewWO struct{ op *Op }

// Run implements core.WorkOrder.
func (w *skewWO) Run(ctx *core.ExecCtx, out *core.Output) error {
	out.PartitionSkew = 1
	return nil
}

// Inputs implements core.WorkOrder.
func (w *skewWO) Inputs() []*storage.Block { return nil }

// readBytes mirrors exec's cache-model accounting: referenced columns for
// column-store blocks, full tuples for row-store blocks.
func readBytes(b *storage.Block, cols []int) int64 {
	rows := int64(b.NumRows())
	if b.Format() == storage.ColumnStore {
		var w int64
		for _, c := range cols {
			w += int64(b.Schema().ColWidth(c))
		}
		return rows * w
	}
	return rows * int64(b.Schema().RowWidth())
}
